// Command sfgen generates random structured-future programs, executes
// them under a chosen detector, validates the recorded dag against the
// structured-future restrictions, and cross-checks the detector's racy
// locations against the exhaustive oracle — a standalone fuzzing tool
// for the detector stack.
//
//	sfgen -seeds 100                    # fuzz 100 random programs
//	sfgen -seed 7 -dot                  # print one program's dag as DOT
//	sfgen -seed 7 -detector forder -v   # detail one run
package main

import (
	"flag"
	"fmt"
	"os"

	"sforder/internal/core"
	"sforder/internal/dag"
	"sforder/internal/detect"
	"sforder/internal/forder"
	"sforder/internal/multibags"
	"sforder/internal/oracle"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "program seed (with -seeds, the first seed)")
		seeds    = flag.Int("seeds", 1, "number of consecutive seeds to fuzz")
		depth    = flag.Int("depth", 4, "max nesting depth")
		ops      = flag.Int("ops", 8, "max ops per block")
		addrs    = flag.Int("addrs", 8, "shadow address space size")
		detector = flag.String("detector", "sforder", "sforder, forder, multibags")
		dot      = flag.Bool("dot", false, "print the recorded dag as Graphviz DOT")
		save     = flag.String("save", "", "write the recorded dag as JSON to this file")
		load     = flag.String("load", "", "validate a previously saved dag file and exit")
		verbose  = flag.Bool("v", false, "per-seed detail")
	)
	flag.Parse()

	if *load != "" {
		validateSaved(*load)
		return
	}

	bad := 0
	for s := *seed; s < *seed+int64(*seeds); s++ {
		if !fuzzOne(s, *depth, *ops, *addrs, *detector, *dot, *save, *verbose) {
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "sfgen: %d/%d seeds FAILED\n", bad, *seeds)
		os.Exit(1)
	}
	fmt.Printf("sfgen: %d seeds ok\n", *seeds)
}

type reachComponent interface {
	sched.Tracer
	detect.Reachability
}

type multiChecker []sched.AccessChecker

func (m multiChecker) Read(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Read(s, addr)
	}
}
func (m multiChecker) Write(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Write(s, addr)
	}
}

// validateSaved loads a dag saved with -save, revalidates the SF
// restrictions, and prints its shape.
func validateSaved(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	g, err := dag.Decode(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfgen: %v\n", err)
		os.Exit(1)
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "sfgen: saved dag INVALID: %v\n", err)
		os.Exit(1)
	}
	work, span := g.WorkSpan()
	fmt.Printf("sfgen: %s ok — %d nodes, %d futures, work %d, span %d\n",
		path, g.NumNodes(), g.NumFutures()-1, work, span)
}

func fuzzOne(seed int64, depth, ops, addrs int, detector string, dot bool, save string, verbose bool) bool {
	p := progen.New(progen.Config{Seed: seed, MaxDepth: depth, MaxOps: ops, Addrs: addrs})

	var reach reachComponent
	var leftOf func(a, b *sched.Strand) bool
	switch detector {
	case "sforder":
		sf := core.NewReach()
		reach, leftOf = sf, sf.LeftOf
	case "forder":
		reach = forder.NewReach()
	case "multibags":
		reach = multibags.NewReach()
	default:
		fmt.Fprintf(os.Stderr, "sfgen: unknown detector %q\n", detector)
		os.Exit(2)
	}
	_ = leftOf

	hist := detect.NewHistory(detect.Options{Reach: reach})
	rec := dag.NewRecorder()
	log := oracle.NewLogger()
	_, err := sched.Run(sched.Options{
		Serial:  true,
		Tracer:  sched.MultiTracer{reach, rec},
		Checker: multiChecker{hist, log},
	}, p.Main())
	if err != nil {
		fmt.Fprintf(os.Stderr, "seed %d: run failed: %v\n", seed, err)
		return false
	}

	if err := rec.G.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "seed %d: generated dag violates SF restrictions: %v\n", seed, err)
		return false
	}
	if dot {
		fmt.Print(rec.G.DOT())
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfgen: %v\n", err)
			return false
		}
		err = rec.G.Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfgen: save: %v\n", err)
			return false
		}
	}

	got, want := hist.RacyAddrs(), log.RacyAddrs(rec)
	ok := len(got) == len(want)
	if ok {
		for i := range got {
			if got[i] != want[i] {
				ok = false
				break
			}
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "seed %d: detector %v != oracle %v\n", seed, got, want)
		return false
	}
	if verbose {
		fmt.Printf("seed %-6d futures=%-4d nodes=%-5d accesses=%-6d racyAddrs=%v\n",
			seed, rec.G.NumFutures()-1, rec.G.NumNodes(), log.Accesses(), want)
	}
	return true
}

// Command benchjson converts `go test -bench` output on stdin into a
// JSON object on stdout, one entry per benchmark:
//
//	go test -run='^$' -bench='Fig4|AblationFastPath' -benchtime=1x . | go run ./cmd/benchjson
//
// Each entry maps the benchmark name (the Benchmark prefix stripped) to
// its ns/op and every custom metric go test reported (lock-acquires,
// fastpath-hits, ...). Non-benchmark lines are ignored, so the full test
// binary output can be piped through unchanged. CI uses this to record
// the perf trajectory as BENCH_pr<N>.json artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is one benchmark's parsed result line.
type entry struct {
	Iterations int64              `json:"iterations"`
	NsOp       float64            `json:"ns_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	results := map[string]*entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs: the line is a result
		// only if the second field parses as the iteration count.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		e := &entry{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				e.NsOp = val
				continue
			}
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = val
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	// json.Marshal sorts map keys, so the output is stable across runs.
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}

// Command sfinstr rewrites programs written against the sforder Task
// API into detector workloads: it injects Task.Read/Task.Write shadow
// annotations for every shared memory operation it can attribute, so
// the runtime race detector sees the sharing that hand annotation would
// otherwise have to describe. It is the rewrite-mode counterpart of
// sfvet: the same loader, the same attribution rules, the same
// strand-locality pre-pass — sfvet's SF005 warns about exactly the
// operations sfinstr will skip.
//
// Usage:
//
//	sfinstr [-tests] [-pkg list] [-diff | -o dir | -w] [-v] [packages]
//
// Packages follow sfvet's pattern syntax (".", "./...", module import
// paths, trailing "/..."); -pkg is an equivalent comma-separated flag.
// With no patterns "./..." is assumed.
//
// Output modes (default: a per-file summary of what would be injected):
//
//	-diff   print a unified diff of the rewrites to stdout
//	-o dir  stage the instrumented packages as a runnable module under
//	        dir: sources land at their module-relative paths and a
//	        generated go.mod replaces the sforder requirement with the
//	        local working copy, so `go run ./<pkg>` inside dir executes
//	        the instrumented program offline
//	-w      overwrite the source files in place
//
// Injected lines carry a //sfinstr marker; re-running sfinstr on
// instrumented code is a no-op, and -v lists the shared operations that
// were skipped (map elements, unsafe.Pointer, per-iteration loop
// conditions, ...) together with the reason.
//
// Exit status is 0 on success, 1 when nothing could be loaded or the
// rewrite failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sforder/internal/analysis"
	"sforder/internal/instr"
)

func main() {
	tests := flag.Bool("tests", false, "also instrument _test.go files")
	pkgList := flag.String("pkg", "", "comma-separated package patterns (alternative to positional arguments)")
	diff := flag.Bool("diff", false, "print a unified diff instead of writing anything")
	outDir := flag.String("o", "", "stage the instrumented packages as a runnable module under this directory")
	write := flag.Bool("w", false, "overwrite source files in place")
	verbose := flag.Bool("v", false, "list skipped operations with reasons")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: sfinstr [-tests] [-pkg list] [-diff | -o dir | -w] [-v] [packages]\n\n"+
				"injects Task.Read/Task.Write shadow annotations into sforder programs\n"+
				"so the race detector can check them; see sfvet for the analysis mode.\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if moreThanOne(*diff, *outDir != "", *write) {
		fmt.Fprintln(os.Stderr, "sfinstr: -diff, -o, and -w are mutually exclusive")
		os.Exit(1)
	}
	patterns := flag.Args()
	if *pkgList != "" {
		for _, p := range strings.Split(*pkgList, ",") {
			if p = strings.TrimSpace(p); p != "" {
				patterns = append(patterns, p)
			}
		}
	}

	pkgs, err := analysis.Load(".", patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfinstr:", err)
		os.Exit(1)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "sfinstr: %s: %v\n", p.Path, te)
		}
	}

	results, err := instr.Packages(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfinstr:", err)
		os.Exit(1)
	}

	switch {
	case *diff:
		for _, res := range results {
			for _, f := range res.Files {
				if !f.Changed {
					continue
				}
				orig, err := os.ReadFile(f.Path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "sfinstr:", err)
					os.Exit(1)
				}
				fmt.Print(instr.Diff(relPath(f.Path), orig, f.Output))
			}
		}
	case *outDir != "":
		root, modPath, err := analysis.ModuleInfo(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfinstr:", err)
			os.Exit(1)
		}
		if err := instr.Stage(results, root, modPath, *outDir); err != nil {
			fmt.Fprintln(os.Stderr, "sfinstr:", err)
			os.Exit(1)
		}
		summarize(results, *verbose)
		fmt.Printf("staged %d package(s) under %s (module sfinstr.out, replace %s => %s)\n",
			len(results), *outDir, modPath, root)
	case *write:
		for _, res := range results {
			if err := instr.Overwrite(res); err != nil {
				fmt.Fprintln(os.Stderr, "sfinstr:", err)
				os.Exit(1)
			}
		}
		summarize(results, *verbose)
	default:
		summarize(results, *verbose)
	}
}

func moreThanOne(bs ...bool) bool {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n > 1
}

func summarize(results []*instr.Result, verbose bool) {
	for _, res := range results {
		for _, f := range res.Files {
			if !f.Changed && len(f.Skips) == 0 {
				continue
			}
			fmt.Printf("%s: %d reads, %d writes, %d hoisted, %d skipped\n",
				relPath(f.Path), f.Reads, f.Writes, f.Hoists, len(f.Skips))
			if verbose {
				for _, s := range f.Skips {
					fmt.Printf("  skip %s\n", s)
				}
			}
		}
	}
}

func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	if rel, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return p
}

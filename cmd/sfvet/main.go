// Command sfvet statically checks programs written against the sforder
// Task API for violations of the structured-futures contract (paper
// §2, §4). It is the before-execution layer of the repo's enforcement
// stack; see Config.CheckStructure for the during-execution layer and
// dag.Validate for the post-hoc one.
//
// Usage:
//
//	sfvet [-tests] [-json] [packages]
//
// Packages follow the usual pattern syntax: ".", "./...",
// "./examples/pipeline", or module import paths such as
// "sforder/internal/sched", each optionally ending in "/...". With no
// arguments "./..." is assumed.
//
// Checks:
//
//	SF001 (error)   multi-touch: a handle may reach more than one Get
//	SF002 (error)   handle-escape: a handle captured by its own Create closure
//	SF003 (warning) unannotated sharing between a task closure and its continuation
//	SF004 (warning) handle stored into a struct field, global, or channel
//
// Exit status is 0 when clean, 1 when diagnostics were reported, and 2
// when packages failed to load or type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sforder/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sfvet [-tests] [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "checks sforder programs against the structured-futures contract:\n")
		for _, c := range analysis.Checks {
			fmt.Fprintf(flag.CommandLine.Output(), "  %s (%s)  %s\n", c.ID, c.Severity, c.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	pkgs, err := analysis.Load(".", patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfvet:", err)
		os.Exit(2)
	}
	loadFailed := false
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "sfvet: %s: %v\n", p.Path, te)
			loadFailed = true
		}
	}
	if loadFailed {
		os.Exit(2)
	}

	diags := analysis.Analyze(pkgs)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "sfvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// Command sforder runs the paper's benchmarks under the three race
// detectors and regenerates the evaluation tables:
//
//	sforder -table fig3                # benchmark characteristics
//	sforder -table fig4 -workers 4     # base/reach/full timing grid
//	sforder -table fig5                # reachability memory comparison
//	sforder -table abl                 # reader-policy ablation
//	sforder -bench sw -detector sforder -mode full -workers 2
//
// Observability flags for single-benchmark runs:
//
//	sforder -bench sw -detector sforder -stats            # registry dump
//	sforder -bench sw -detector sforder -trace out.json   # Chrome trace
//	sforder -bench sw -detector sforder -http :6060 ...   # expvar + pprof
//
// -scale selects preset input sizes (test, bench, large); see
// EXPERIMENTS.md for how each table corresponds to the paper's figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/harness"
	"sforder/internal/obsv"
	"sforder/internal/replay"
	"sforder/internal/trace"
	"sforder/internal/workload"
)

func main() {
	var (
		table         = flag.String("table", "", "table to regenerate: fig3, fig4, fig5, abl")
		scale         = flag.String("scale", "bench", "input scale: test, bench, large")
		workers       = flag.Int("workers", harness.DefaultWorkers(), "worker count for the TP columns")
		repeats       = flag.Int("repeats", 1, "best-of-N timing repeats")
		bench         = flag.String("bench", "", "run one benchmark: mm, sort, sw, hw, ferret, spine, pipeline, ksweep")
		detector      = flag.String("detector", "sforder", "detector for -bench: sforder, forder, multibags")
		mode          = flag.String("mode", "full", "mode for -bench: base, reach, full")
		policy        = flag.String("policy", "all", "reader policy for full mode: all, lr")
		jsonOut       = flag.Bool("json", false, "emit the table as JSON instead of text")
		stats         = flag.Bool("stats", false, "with -bench: print the stats-registry snapshot after the run")
		traceOut      = flag.String("trace", "", "with -bench: write a Chrome trace-event JSON timeline to this file")
		httpAddr      = flag.String("http", "", "serve /stats, /debug/vars (expvar) and /debug/pprof on this address (e.g. :6060)")
		dedup         = flag.Bool("dedup", false, "with -bench: report at most one race record per address")
		fastpath      = flag.Bool("fastpath", true, "with -bench: use the lock-avoiding access-history fast path in full mode")
		reachSub      = flag.String("reach", "om", "with -bench: SF-Order reachability substrate: om (English/Hebrew lists), depa (prefix-sharing fork-path cords, ABL10/11), or hybrid (depth-adaptive flat+cord, ABL11)")
		extras        = flag.Bool("extras", false, "append the adversarial extras (spine, pipeline, ksweep) to -table runs")
		record        = flag.String("record", "", "with -bench: capture the run (dag events + access stream) to this sftrace file for offline -replay")
		replayIn      = flag.String("replay", "", "replay a capture recorded with -record: rebuild the dag and re-run detection offline, sharded by address")
		replayWorkers = flag.Int("replayworkers", 0, "with -replay: number of parallel detection shards (0 = GOMAXPROCS)")
		rebuildW      = flag.Int("rebuildworkers", 0, "with -replay: parallel rebuild workers constructing the fork-path labels from the capture's segment index (label substrates only; <2 = serial event-order rebuild)")
		stream        = flag.Bool("stream", false, "with -replay: stream the capture through a bounded pipeline — detection starts while the file is still being decoded, and resident memory stays constant in trace length")
		omglobal      = flag.Bool("omglobal", false, "with -bench: force SF-Order's OM lists onto the single list-level lock (ABL8)")
		noarena       = flag.Bool("noarena", false, "with -bench: disable SF-Order's per-worker slab arenas (ABL8)")
		lockdeque     = flag.Bool("lockdeque", false, "with -bench: use the scheduler's historical mutex deque instead of the lock-free Chase–Lev deque (ABL9)")
	)
	flag.Parse()

	sc, ok := map[string]workload.Scale{
		"test":  workload.ScaleTest,
		"bench": workload.ScaleBench,
		"large": workload.ScaleLarge,
	}[*scale]
	if !ok {
		fatalf("unknown scale %q", *scale)
	}
	benches := workload.All(sc)
	if *extras {
		benches = append(benches, workload.Extras(sc)...)
	}

	// The HTTP endpoint outlives a single run: the expvar page always
	// reflects the most recently attached registry.
	var reg *obsv.Registry
	if *stats || *httpAddr != "" {
		reg = obsv.NewRegistry()
	}
	if *httpAddr != "" {
		go func() {
			if err := obsv.Serve(*httpAddr, reg); err != nil {
				fmt.Fprintf(os.Stderr, "sforder: -http: %v\n", err)
			}
		}()
	}

	switch {
	case *replayIn != "":
		runReplay(*replayIn, *replayWorkers, *rebuildW, *stream, *reachSub, *dedup, *stats, reg)
	case *table != "":
		runTable(*table, benches, *workers, *repeats, *scale, *jsonOut)
	case *bench != "":
		runOne(*bench, sc, *detector, *mode, *policy, *workers, oneOpts{
			reg:       reg,
			stats:     *stats,
			traceOut:  *traceOut,
			recordOut: *record,
			dedup:     *dedup,
			fastpath:  *fastpath,
			reach:     *reachSub,
			omglobal:  *omglobal,
			noarena:   *noarena,
			lockdeque: *lockdeque,
			block:     *httpAddr != "",
		})
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runReplay loads an sftrace capture and re-runs detection offline:
// the dag is rebuilt on the selected reachability substrate, then the
// access stream is partitioned by address hash across the requested
// number of shards and detected in parallel (ABL12).
func runReplay(path string, workers, rebuildWorkers int, stream bool, reachName string, dedup, stats bool, reg *obsv.Registry) {
	sub, err := core.ParseSubstrate(reachName)
	if err != nil {
		fatalf("%v", err)
	}
	opts := replay.Options{
		Workers:        workers,
		RebuildWorkers: rebuildWorkers,
		Reach:          sub,
		DedupByAddr:    dedup,
		Stats:          reg,
	}
	f, err := os.Open(path)
	check(err)
	var res *replay.Result
	if stream {
		res, err = replay.RunStream(f, opts)
		check(f.Close())
	} else {
		var c *trace.Capture
		c, err = trace.Load(f)
		check(f.Close())
		if err == nil {
			res, err = replay.Run(c, opts)
		}
	}
	if err != nil {
		fatalf("replay: %s: %v", path, err)
	}
	mode := "barriered"
	if res.Streamed {
		mode = "streamed"
	}
	fmt.Printf("%s  replay workers=%d reach=%s mode=%s\n", path, res.Shards, sub, mode)
	fmt.Printf("  strands    %d\n", res.Strands)
	fmt.Printf("  futures    %d\n", res.Futures-1)
	fmt.Printf("  events     %d\n", res.Events)
	fmt.Printf("  accesses   %d (max shard %d)\n", res.Entries, res.MaxShardEntries)
	fmt.Printf("  queries    %d\n", res.Queries)
	fmt.Printf("  races      %d (%d racy addrs)\n", res.RaceCount, len(res.RacyAddrs))
	// Per-phase breakdown. Under streaming, rebuild time is the loader's
	// structure-event share and detect is the full pipeline wall (the
	// phases overlap); barriered runs report disjoint phases.
	if res.RebuildParallel {
		fmt.Printf("  rebuild    %v (workers=%d labels=%d max-segment=%d/%d work units)\n",
			res.Rebuild, res.RebuildWorkers, res.RebuildLabels, res.RebuildMaxSegment, res.RebuildWork)
	} else {
		fmt.Printf("  rebuild    %v (serial)\n", res.Rebuild)
	}
	fmt.Printf("  detect     %v\n", res.Detect)
	fmt.Printf("  merge      %v\n", res.Merge)
	if res.Streamed {
		fmt.Printf("  stream     peak %d blocks / %d bytes in flight\n", res.StreamPeakBlocks, res.StreamPeakBytes)
	}
	fmt.Printf("  reach mem  %d bytes\n", res.ReachMemBytes)
	for _, r := range res.Races {
		fmt.Printf("  race: %v\n", r)
	}
	if stats {
		fmt.Println("  stats registry:")
		reg.WriteText(os.Stdout)
	}
}

// oneOpts carries the observability knobs of a -bench run.
type oneOpts struct {
	reg       *obsv.Registry
	stats     bool
	traceOut  string
	recordOut string
	dedup     bool
	fastpath  bool
	reach     string
	omglobal  bool
	noarena   bool
	lockdeque bool
	block     bool // keep serving -http after the run completes
}

func runTable(table string, benches []*workload.Benchmark, workers, repeats int, scale string, jsonOut bool) {
	report := &harness.Report{Env: harness.Env{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Repeats:    repeats,
		Scale:      scale,
	}}
	switch table {
	case "fig3":
		rows, err := harness.Fig3(benches)
		check(err)
		if jsonOut {
			report.Fig3 = rows
			break
		}
		fmt.Println("Figure 3: benchmark execution characteristics")
		harness.PrintFig3(os.Stdout, rows)
	case "fig4":
		rows, err := harness.Fig4(benches, workers, repeats)
		check(err)
		if jsonOut {
			report.Fig4 = rows
			break
		}
		fmt.Printf("Figure 4: execution times (P=%d workers, GOMAXPROCS=%d, best of %d)\n",
			workers, runtime.GOMAXPROCS(0), repeats)
		harness.PrintFig4(os.Stdout, rows)
	case "fig5":
		rows, err := harness.Fig5(benches)
		check(err)
		if jsonOut {
			report.Fig5 = rows
			break
		}
		fmt.Println("Figure 5: reachability-maintenance memory")
		harness.PrintFig5(os.Stdout, rows)
	case "abl":
		rows, err := harness.AblationReaderPolicy(benches, repeats)
		check(err)
		if jsonOut {
			report.Ablation = rows
			break
		}
		fmt.Println("Ablation: SF-Order access-history reader policy (all vs lr)")
		harness.PrintAblation(os.Stdout, rows)
	default:
		fatalf("unknown table %q (want fig3, fig4, fig5, abl)", table)
	}
	if jsonOut {
		check(report.WriteJSON(os.Stdout))
	}
}

func runOne(name string, sc workload.Scale, detector, mode, policy string, workers int, obs oneOpts) {
	b := workload.ByName(name, sc)
	if b == nil {
		fatalf("unknown benchmark %q", name)
	}
	det, ok := map[string]harness.Detector{
		"sforder":   harness.SFOrder,
		"forder":    harness.FOrder,
		"multibags": harness.MultiBags,
	}[detector]
	if !ok {
		fatalf("unknown detector %q", detector)
	}
	md, ok := map[string]harness.Mode{
		"base":  harness.Base,
		"reach": harness.Reach,
		"full":  harness.Full,
	}[mode]
	if !ok {
		fatalf("unknown mode %q", mode)
	}
	pol, ok := map[string]detect.ReaderPolicy{
		"all": detect.ReadersAll,
		"lr":  detect.ReadersLR,
	}[policy]
	if !ok {
		fatalf("unknown policy %q", policy)
	}
	sub, err := core.ParseSubstrate(obs.reach)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := harness.Config{
		Detector:     det,
		Mode:         md,
		Workers:      workers,
		Reach:        sub,
		Serial:       det == harness.MultiBags,
		Policy:       pol,
		DedupByAddr:  obs.dedup,
		FastPath:     obs.fastpath,
		OMGlobalLock: obs.omglobal,
		NoArena:      obs.noarena,
		LockDeque:    obs.lockdeque,
		Registry:     obs.reg,
	}
	var traceFile *os.File
	if obs.traceOut != "" {
		f, err := os.Create(obs.traceOut)
		check(err)
		traceFile = f
		cfg.Trace = obsv.NewTraceWriter(f)
	}
	var recordFile *os.File
	if obs.recordOut != "" {
		f, err := os.Create(obs.recordOut)
		check(err)
		recordFile = f
		cfg.Record = f
	}
	res, err := harness.Run(b, cfg)
	if cfg.Trace != nil {
		check(cfg.Trace.Close())
		check(traceFile.Close())
	}
	if recordFile != nil {
		check(recordFile.Close())
	}
	check(err)
	fmt.Printf("%s  detector=%v mode=%v workers=%d\n", b, det, md, workers)
	fmt.Printf("  time      %v\n", res.Elapsed)
	fmt.Printf("  strands   %d\n", res.Counts.Strands)
	fmt.Printf("  futures   %d\n", res.Counts.Futures-1)
	fmt.Printf("  queries   %d\n", res.Queries)
	fmt.Printf("  races     %d\n", res.Races)
	fmt.Printf("  reach mem %d bytes\n", res.ReachMem)
	if md == harness.Full {
		fmt.Printf("  hist mem  %d bytes\n", res.HistMem)
	}
	if obs.traceOut != "" {
		fmt.Printf("  trace     %s (chrome://tracing, https://ui.perfetto.dev)\n", obs.traceOut)
	}
	if obs.recordOut != "" {
		fmt.Printf("  record    %s (replay with -replay=%s)\n", obs.recordOut, obs.recordOut)
	}
	if obs.stats {
		fmt.Println("  stats registry:")
		obs.reg.WriteText(os.Stdout)
	}
	if obs.block {
		fmt.Println("serving -http; press Ctrl-C to exit")
		select {}
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sforder: "+format+"\n", args...)
	os.Exit(1)
}

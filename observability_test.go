package sforder_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sync/atomic"
	"testing"

	"sforder"
)

// TestPartialResultOnPanic proves the satellite fix: a racy program that
// panics in a parallel worker must still report the races it exposed
// before crashing. The interleaving is pinned: the spawned child spins
// until the continuation's write is recorded, then writes the same
// address (detecting the race) and panics.
func TestPartialResultOnPanic(t *testing.T) {
	var parentWrote atomic.Bool
	res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Workers: 2}, func(t *sforder.Task) {
		t.Spawn(func(c *sforder.Task) {
			for !parentWrote.Load() {
				runtime.Gosched()
			}
			c.Write(100) // races with the continuation's write below
			panic("deliberate worker crash")
		})
		t.Write(100)
		parentWrote.Store(true)
		t.Sync()
	})
	if err == nil {
		t.Fatal("worker panic did not surface as an error")
	}
	if res == nil {
		t.Fatal("partial result dropped on worker panic")
	}
	if res.RaceCount == 0 || len(res.Races) == 0 {
		t.Fatalf("races detected before the crash were lost: %+v", res)
	}
	if res.Races[0].Addr != 100 {
		t.Errorf("wrong race record: %v", res.Races[0])
	}
	if res.Strands == 0 {
		t.Errorf("partial result carries no counts: %+v", res)
	}
}

// TestPartialResultCarriesStats checks the partial result also carries
// the registry snapshot accumulated before the abort.
func TestPartialResultCarriesStats(t *testing.T) {
	res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Workers: 2, Stats: true}, func(t *sforder.Task) {
		t.Write(7)
		t.Spawn(func(c *sforder.Task) { panic("boom") })
		t.Sync()
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if res == nil || res.Stats == nil {
		t.Fatalf("stats snapshot missing from partial result: %+v", res)
	}
	if res.Stats["sched.writes"] == 0 {
		t.Errorf("pre-crash writes missing from snapshot: %v", res.Stats)
	}
}

// racyLoop spawns n children that each write the same address, plus a
// write in the continuation — n distinct racing strand pairs on one
// location.
func racyLoop(cfg sforder.Config, n int) (*sforder.Result, error) {
	return sforder.Run(cfg, func(t *sforder.Task) {
		for i := 0; i < n; i++ {
			t.Spawn(func(c *sforder.Task) { c.Write(42) })
		}
		t.Write(42)
		t.Sync()
	})
}

func TestDedupByAddr(t *testing.T) {
	res, err := racyLoop(sforder.Config{Detector: sforder.SFOrder, Serial: true, DedupByAddr: true}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 1 {
		t.Fatalf("dedup kept %d records for one address: %v", len(res.Races), res.Races)
	}
	if res.RaceCount <= 1 {
		t.Errorf("RaceCount should still count every race: %d", res.RaceCount)
	}

	full, err := racyLoop(sforder.Config{Detector: sforder.SFOrder, Serial: true}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Races) <= 1 {
		t.Fatalf("without dedup expected multiple records, got %d", len(full.Races))
	}
	if full.RaceCount != res.RaceCount {
		t.Errorf("dedup changed RaceCount: %d vs %d", res.RaceCount, full.RaceCount)
	}
}

func TestStatsSnapshot(t *testing.T) {
	for _, det := range []sforder.Detector{sforder.SFOrder, sforder.FOrder, sforder.MultiBags, sforder.WSPOrder} {
		cfg := sforder.Config{Detector: det, Serial: true, Stats: true, StrandFilter: true}
		res, err := sforder.Run(cfg, func(t *sforder.Task) {
			t.Spawn(func(c *sforder.Task) { c.Write(1) })
			t.Write(1)
			t.Sync()
			if det != sforder.WSPOrder {
				h := t.Create(func(c *sforder.Task) any { c.Read(2); return nil })
				t.Get(h)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", det, err)
		}
		if res.Stats == nil {
			t.Fatalf("%v: Stats nil with Config.Stats set", det)
		}
		for _, key := range []string{"sched.strands", "sched.spawns", "sched.writes", "reach.queries", "reach.mem_bytes", "hist.races", "hist.lock_acquires", "hist.filter_dropped", "hist.mem_bytes"} {
			if _, ok := res.Stats[key]; !ok {
				t.Errorf("%v: snapshot missing %q: %v", det, key, res.Stats)
			}
		}
		if got := res.Stats["sched.strands"]; got != int64(res.Strands) {
			t.Errorf("%v: sched.strands %d != Result.Strands %d", det, got, res.Strands)
		}
		if got := res.Stats["reach.queries"]; got != int64(res.Queries) {
			t.Errorf("%v: reach.queries %d != Result.Queries %d", det, got, res.Queries)
		}
		if got := res.Stats["hist.races"]; got != int64(res.RaceCount) {
			t.Errorf("%v: hist.races %d != Result.RaceCount %d", det, got, res.RaceCount)
		}
		if res.Stats["hist.lock_acquires"] == 0 {
			t.Errorf("%v: lock acquisitions not counted", det)
		}
	}
}

func TestStatsOffByDefault(t *testing.T) {
	res, err := sforder.Run(sforder.Config{Serial: true}, func(t *sforder.Task) { t.Write(0) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil {
		t.Fatalf("Stats populated without Config.Stats: %v", res.Stats)
	}
}

// chromeTrace mirrors the Chrome trace-event JSON shape.
type chromeTrace struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		Ts    float64        `json:"ts"`
		Pid   uint64         `json:"pid"`
		Tid   uint64         `json:"tid"`
		Scope string         `json:"s"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestTraceChromeFormat validates the acceptance criterion: -trace
// output is well-formed Chrome trace JSON with B/E/i phases, balanced
// per strand.
func TestTraceChromeFormat(t *testing.T) {
	var buf bytes.Buffer
	res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Serial: true, Trace: &buf}, func(t *sforder.Task) {
		t.Spawn(func(c *sforder.Task) { c.Write(1) })
		t.Sync()
		h := t.Create(func(c *sforder.Task) any { c.Write(2); return 9 })
		t.Write(3)
		_ = t.Get(h)
	})
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	phases := map[string]int{}
	instants := map[string]int{}
	beginsPerTid := map[uint64]int{}
	endsPerTid := map[uint64]int{}
	lastTs := -1.0
	for _, ev := range tr.TraceEvents {
		phases[ev.Phase]++
		switch ev.Phase {
		case "B":
			beginsPerTid[ev.Tid]++
		case "E":
			endsPerTid[ev.Tid]++
		case "i":
			instants[ev.Name]++
			if ev.Scope != "t" {
				t.Errorf("instant %q missing thread scope: %q", ev.Name, ev.Scope)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
		if ev.Ts < 0 {
			t.Errorf("negative timestamp %v on %q", ev.Ts, ev.Name)
		}
		if ev.Ts > lastTs {
			lastTs = ev.Ts
		}
	}
	if phases["B"] == 0 || phases["E"] == 0 || phases["i"] == 0 {
		t.Fatalf("missing phases: %v", phases)
	}
	// A run to completion closes every strand slice it opened.
	for tid, b := range beginsPerTid {
		if e := endsPerTid[tid]; b != e {
			t.Errorf("strand %d: %d begins vs %d ends", tid, b, e)
		}
	}
	for _, name := range []string{"spawn", "sync", "create", "put", "get"} {
		if instants[name] == 0 {
			t.Errorf("missing %q instant: %v", name, instants)
		}
	}
	// The strand count in the trace matches the executed dag.
	if got := uint64(len(beginsPerTid)); got != res.Strands {
		t.Errorf("trace covers %d strands, dag has %d", got, res.Strands)
	}
}

// TestTraceParallelSteals checks that a parallel run's trace is still
// well-formed and records steal events on the scheduler row when work
// moves between workers.
func TestTraceParallelSteals(t *testing.T) {
	var buf bytes.Buffer
	var spin atomic.Bool
	_, err := sforder.Run(sforder.Config{Detector: sforder.NoDetector, Workers: 2, Trace: &buf}, func(t *sforder.Task) {
		t.Spawn(func(c *sforder.Task) { spin.Store(true) })
		// The spawning worker spins here, so only a thief can run the
		// child and release it — the trace must contain that steal.
		for !spin.Load() {
			runtime.Gosched()
		}
		t.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("parallel trace invalid: %v", err)
	}
	steals := 0
	for _, ev := range tr.TraceEvents {
		if ev.Name == "steal" {
			steals++
			if ev.Pid != 2 {
				t.Errorf("steal event on pid %d, want scheduler pid 2", ev.Pid)
			}
		}
	}
	if steals == 0 {
		t.Error("forced steal not recorded in trace")
	}
}

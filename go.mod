module sforder

go 1.22

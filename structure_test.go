package sforder_test

import (
	"strings"
	"testing"

	"sforder"
)

// TestCheckStructureDoubleGet: with Config.CheckStructure a double Get
// surfaces through Run's error (parallel mode) and names all three
// sites.
func TestCheckStructureDoubleGet(t *testing.T) {
	_, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Workers: 1, CheckStructure: true},
		func(tk *sforder.Task) {
			h := tk.Create(func(*sforder.Task) any { return 1 })
			tk.Get(h)
			tk.Get(h)
		})
	if err == nil {
		t.Fatal("expected single-touch violation error, got nil")
	}
	for _, w := range []string{"single-touch", "§2", "created at", "first get at", "second get at", "structure_test.go"} {
		if !strings.Contains(err.Error(), w) {
			t.Errorf("error missing %q: %v", w, err)
		}
	}
}

// TestCheckStructureBackwardHandle: a handle smuggled through a channel
// to a future created before it existed is caught at the Get.
func TestCheckStructureBackwardHandle(t *testing.T) {
	ch := make(chan *sforder.Future, 1)
	_, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Workers: 1, CheckStructure: true},
		func(tk *sforder.Task) {
			tk.Create(func(c *sforder.Task) any { return c.Get(<-ch) })
			ch <- tk.Create(func(*sforder.Task) any { return 7 })
		})
	if err == nil {
		t.Fatal("expected get-reachability violation error, got nil")
	}
	if !strings.Contains(err.Error(), "get-reachability") {
		t.Errorf("error does not cite get-reachability: %v", err)
	}
}

// TestCheckStructureValidProgram: checked mode does not disturb a
// structured program, and detection results are unchanged.
func TestCheckStructureValidProgram(t *testing.T) {
	prog := func(tk *sforder.Task) {
		h := tk.Create(func(c *sforder.Task) any {
			c.Write(0)
			return 1
		})
		tk.Write(0) // races with the future body
		tk.Get(h)
	}
	for _, check := range []bool{false, true} {
		res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Serial: true, CheckStructure: check}, prog)
		if err != nil {
			t.Fatalf("CheckStructure=%v: unexpected error: %v", check, err)
		}
		if res.RaceCount != 1 {
			t.Errorf("CheckStructure=%v: RaceCount = %d, want 1", check, res.RaceCount)
		}
	}
}

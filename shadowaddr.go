package sforder

import "unsafe"

// ShadowAddr maps a Go pointer to the shadow-address space used by
// Task.Read and Task.Write. It is the bridge the sfinstr rewriter
// targets: an injected annotation reads
//
//	t.Read(sforder.ShadowAddr(&x))
//
// so the shadow cell for x is keyed by x's storage address.
//
// Soundness of the keying: every location sfinstr instruments is either
// captured by a function literal or has its address taken by the
// injected annotation itself, so the compiler's escape analysis places
// it on the heap and the address is stable for the variable's lifetime.
// Two simultaneously-live locations never share an address, which is
// the only property the access history needs; reuse of an address after
// a location dies can at worst alias two accesses that a Get already
// ordered, never manufacture a race on memory the program cannot still
// reach.
func ShadowAddr[T any](p *T) uint64 {
	return uint64(uintptr(unsafe.Pointer(p)))
}

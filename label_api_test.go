package sforder_test

import (
	"strings"
	"testing"

	"sforder"
)

// TestLabeledRaceReport: Task.Label names flow into race reports.
func TestLabeledRaceReport(t *testing.T) {
	res, err := sforder.Run(sforder.Config{Serial: true}, func(t *sforder.Task) {
		t.Label("main: deposit")
		h := t.Create(func(c *sforder.Task) any {
			c.Label("worker: withdraw")
			c.Write(0)
			return nil
		})
		t.Write(0)
		t.Get(h)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("seeded race missed")
	}
	msg := res.Races[0].String()
	if !strings.Contains(msg, "worker: withdraw") || !strings.Contains(msg, "main: deposit") {
		t.Errorf("race report missing labels: %s", msg)
	}
}

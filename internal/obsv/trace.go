package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceWriter emits events in the Chrome trace-event JSON format (the
// `{"traceEvents": [...]}` object form) — loadable in chrome://tracing
// and Perfetto for offline timeline inspection. The strand tracer in
// internal/sched drives it: one timeline row (tid) per strand, begun
// when the dag event introducing the strand fires and ended when a later
// event consumes it, with instant events marking spawn/create/sync/get
// edges and scheduler steals.
//
// Methods are safe for concurrent use; one mutex serializes the
// underlying writer. Tracing is opt-in and meant for modest runs — the
// writer performs I/O per event and makes no attempt to be cheap.
type TraceWriter struct {
	mu     sync.Mutex
	w      io.Writer
	start  time.Time
	n      int
	closed bool
	err    error
}

// Process IDs used by the engine's strand tracer; exported so offline
// tooling can tell the two timelines apart.
const (
	// TracePidStrands is the pid under which strand rows are emitted.
	TracePidStrands = 1
	// TracePidSched is the pid under which scheduler events (steals)
	// are emitted, one row per worker.
	TracePidSched = 2
)

// traceEvent is the wire form of one Chrome trace event.
type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace start
	Pid  uint64         `json:"pid"`
	Tid  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// NewTraceWriter starts a trace stream on w. Call Close to finalize the
// JSON; an unclosed trace is not valid JSON.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{w: w, start: time.Now()}
	_, t.err = io.WriteString(w, "{\"traceEvents\": [\n")
	return t
}

func (t *TraceWriter) emit(ev traceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	ev.Ts = float64(time.Since(t.start)) / float64(time.Microsecond)
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	sep := ",\n"
	if t.n == 0 {
		sep = ""
	}
	t.n++
	_, t.err = fmt.Fprintf(t.w, "%s%s", sep, b)
}

// Begin opens a duration slice (phase "B") on the given pid/tid row.
func (t *TraceWriter) Begin(pid, tid uint64, name string, args map[string]any) {
	t.emit(traceEvent{Ph: "B", Pid: pid, Tid: tid, Name: name, Args: args})
}

// End closes the open duration slice (phase "E") on the given pid/tid
// row.
func (t *TraceWriter) End(pid, tid uint64) {
	t.emit(traceEvent{Ph: "E", Pid: pid, Tid: tid})
}

// Instant emits a thread-scoped instant event (phase "i").
func (t *TraceWriter) Instant(pid, tid uint64, name string, args map[string]any) {
	t.emit(traceEvent{Ph: "i", S: "t", Pid: pid, Tid: tid, Name: name, Args: args})
}

// Close finalizes the JSON object and returns the first error the stream
// encountered, if any. Close does not close the underlying writer.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err == nil {
		_, t.err = io.WriteString(t.w, "\n]}\n")
	}
	return t.err
}

package obsv

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The registry most recently handed to Handler, published once under the
// expvar name "sforder" so /debug/vars includes the detector counters
// alongside the runtime's memstats. An indirection rather than a direct
// Publish per registry: expvar names are process-global and panic on
// duplicates, while handlers may be built for successive runs.
var published struct {
	once sync.Once
	reg  atomic.Pointer[Registry]
}

func publishExpvar(r *Registry) {
	published.reg.Store(r)
	published.once.Do(func() {
		expvar.Publish("sforder", expvar.Func(func() any {
			if reg := published.reg.Load(); reg != nil {
				return reg.Snapshot()
			}
			return map[string]int64{}
		}))
	})
}

// Handler returns an http.Handler exposing the registry and the standard
// profiling endpoints:
//
//	/stats           the registry snapshot as a JSON object
//	/debug/vars      expvar (includes the registry under "sforder")
//	/debug/pprof/    net/http/pprof index, profile, trace, ...
//
// cmd/sforder serves it on -http.
func Handler(reg *Registry) http.Handler {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve blocks serving Handler(reg) on addr (e.g. ":6060").
func Serve(addr string, reg *Registry) error {
	return http.ListenAndServe(addr, Handler(reg))
}

package obsv

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// chromeTrace mirrors the object form of the Chrome trace-event format.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Pid  uint64         `json:"pid"`
		Tid  uint64         `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestTraceWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Begin(TracePidStrands, 1, "s1/f0", map[string]any{"future": 0})
	tw.Instant(TracePidStrands, 2, "spawn", map[string]any{"from": 1})
	tw.Begin(TracePidStrands, 2, "s2/f0", nil)
	tw.Instant(TracePidSched, 0, "steal", map[string]any{"victim": 1})
	tw.End(TracePidStrands, 2)
	tw.End(TracePidStrands, 1)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tr.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(tr.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range tr.TraceEvents {
		phases[ev.Ph]++
		if ev.Ts < 0 {
			t.Fatalf("negative timestamp: %+v", ev)
		}
	}
	if phases["B"] != 2 || phases["E"] != 2 || phases["i"] != 2 {
		t.Fatalf("phase histogram = %v, want B:2 E:2 i:2", phases)
	}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "i" && ev.S != "t" {
			t.Fatalf("instant event missing thread scope: %+v", ev)
		}
	}
	if tr.TraceEvents[0].Args["future"] != float64(0) {
		t.Fatalf("args not preserved: %+v", tr.TraceEvents[0])
	}
}

func TestTraceWriterEmptyAndDoubleClose(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tr.TraceEvents) != 0 {
		t.Fatalf("empty trace has %d events", len(tr.TraceEvents))
	}
	// Events after Close are dropped, not errors.
	tw.Begin(TracePidStrands, 1, "late", nil)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tid := uint64(g*1000 + i)
				tw.Begin(TracePidStrands, tid, "s", nil)
				tw.End(TracePidStrands, tid)
			}
		}()
	}
	wg.Wait()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("concurrent trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 1600 {
		t.Fatalf("got %d events, want 1600", len(tr.TraceEvents))
	}
}

package obsv

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersAndFuncs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a.count"); got != c {
		t.Fatalf("Counter returned a different counter on second lookup")
	}
	v := int64(7)
	r.RegisterFunc("b.gauge", func() int64 { return v })

	snap := r.Snapshot()
	want := map[string]int64{"a.count": 5, "b.gauge": 7}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("Snapshot = %v, want %v", snap, want)
	}
	v = 9
	if got := r.Snapshot()["b.gauge"]; got != 9 {
		t.Fatalf("func gauge not re-evaluated: got %d, want 9", got)
	}
	if got, want := r.Names(), []string{"a.count", "b.gauge"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
}

func TestRegistryLastRegistrationWins(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("x", func() int64 { return 1 })
	r.RegisterFunc("x", func() int64 { return 2 })
	if got := r.Snapshot()["x"]; got != 2 {
		t.Fatalf("re-registered func: got %d, want 2", got)
	}
	r.Counter("x").Add(5)
	if got := r.Snapshot()["x"]; got != 5 {
		t.Fatalf("counter shadowing func: got %d, want 5", got)
	}
	if n := len(r.Snapshot()); n != 1 {
		t.Fatalf("name registered twice appears %d times in snapshot", n)
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(3)
	r.Counter("a.first").Add(1)
	r.RegisterFunc(`weird "name"`, func() int64 { return -2 })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, buf.String())
	}
	want := map[string]int64{"a.first": 1, "z.last": 3, `weird "name"`: -2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WriteJSON round-trip = %v, want %v", got, want)
	}
	// Keys are emitted sorted, expvar-style.
	if strings.Index(buf.String(), "a.first") > strings.Index(buf.String(), "z.last") {
		t.Fatalf("WriteJSON keys not sorted:\n%s", buf.String())
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("reach.queries").Add(42)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reach.queries") || !strings.Contains(buf.String(), "42") {
		t.Fatalf("WriteText output missing entry:\n%s", buf.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 4000 {
		t.Fatalf("shared counter = %d, want 4000", got)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hist.races").Add(2)
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var snap map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/stats is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if snap["hist.races"] != 2 {
		t.Fatalf("/stats snapshot = %v, want hist.races=2", snap)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["sforder"]; !ok {
		t.Fatalf("/debug/vars does not publish the registry under \"sforder\"")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status = %d, want 200", rec.Code)
	}
}

// TestHandlerRebuiltForNewRegistry: expvar names are process-global, so
// building handlers for successive runs must not panic and /debug/vars
// must reflect the latest registry.
func TestHandlerRebuiltForNewRegistry(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("gen").Add(1)
	_ = Handler(r1)
	r2 := NewRegistry()
	r2.Counter("gen").Add(2)
	h := Handler(r2)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var vars struct {
		Sforder map[string]int64 `json:"sforder"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Sforder["gen"] != 2 {
		t.Fatalf("expvar serves stale registry: gen = %d, want 2", vars.Sforder["gen"])
	}
}

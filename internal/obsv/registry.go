// Package obsv is the observability layer of the detector: a stats
// registry of named counters and gauges that the runtime and detector
// components publish their internals through, a Chrome-trace-format
// strand tracer for offline timeline inspection, and an HTTP handler
// exposing both (plus net/http/pprof) for live runs.
//
// The paper's entire evaluation (Figures 3–5) reads detector-internal
// counters: reachability queries, gp merges, OM rebalances, memory
// accounting. Before this package those counters were scattered across
// five packages behind bespoke getters; the Registry absorbs them behind
// one snapshot API. Components keep owning their hot counters (plain
// atomics, updated exactly as before) and register read-only closures —
// enabling stats therefore costs the hot paths nothing, and a disabled
// registry costs one nil check at assembly time.
//
// Registered names are dotted and stable; see README.md ("Observability")
// for the full catalog. The conventional prefixes:
//
//	sched.*   engine execution counters (strands, spawns, steals, ...)
//	reach.*   reachability component (queries, gp_merges, mem_bytes, ...)
//	om.*      order-maintenance rebalancing (splits, relabels, renumbers)
//	hist.*    access history (races, lock_acquires, mem_bytes, ...)
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
)

// Counter is a registry-owned monotonic counter, safe for concurrent
// use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Registry is a named collection of int64 metric sources: counters it
// owns and read-only functions registered by components. Snapshot and
// the writers may be called at any time, including while a run is in
// flight — sources must therefore be safe for concurrent reads (the
// components' own atomics and mutexes provide this).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		funcs:    map[string]func() int64{},
	}
}

// Counter returns the registry-owned counter with the given name,
// creating it on first use. Counter and RegisterFunc names share one
// namespace; a counter shadows an earlier func of the same name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
		delete(r.funcs, name)
	}
	return c
}

// RegisterFunc registers fn as the source of name. Re-registering a name
// replaces the previous source (last registration wins), which lets one
// registry be reused across successive runs.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
	delete(r.counters, name)
}

// Names returns every registered name in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Snapshot evaluates every source and returns a name → value map.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, fn := range r.funcs {
		funcs[n] = fn
	}
	r.mu.Unlock()

	// Evaluate outside the registry lock: sources may take component
	// locks of their own (e.g. the OM lists' insert mutex).
	out := make(map[string]int64, len(counters)+len(funcs))
	for n, c := range counters {
		out[n] = c.Load()
	}
	for n, fn := range funcs {
		out[n] = fn()
	}
	return out
}

// WriteJSON writes the snapshot as one sorted JSON object — the same
// shape expvar renders, so the output is expvar-compatible.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := fmt.Fprint(w, "{"); err != nil {
		return err
	}
	for i, n := range names {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		key, err := json.Marshal(n)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s: %d", sep, key, snap[n]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "\n}\n")
	return err
}

// WriteText writes the snapshot as an aligned name/value table, sorted
// by name — what `sforder -stats` prints.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, n := range names {
		fmt.Fprintf(tw, "%s\t%d\n", n, snap[n])
	}
	return tw.Flush()
}

// Package multibags implements MultiBags, the state-of-the-art
// sequential race detector for structured futures (Utterback, Agrawal,
// Fineman, Lee, PPoPP'19) — the second baseline of the paper.
//
// MultiBags extends the classic SP-bags algorithm (Feng & Leiserson) from
// fork-join to structured futures. The computation executes serially in
// left-to-right depth-first order, and every executed strand lives in a
// union-find set ("bag") tagged S or P:
//
//   - a strand in an S bag logically precedes the currently executing
//     instruction;
//   - a strand in a P bag is logically parallel to it.
//
// Bag maintenance on the parallel-control events:
//
//   - spawn: the child function instance gets fresh S and P bags;
//   - child return: the child's S bag empties into the parent's P bag;
//   - sync: the function's P bag empties into its S bag;
//   - create: the future task gets fresh bags like a spawned child;
//   - put (future completes): the future's S bag is re-tagged P — its
//     strands stay parallel to everything that follows until the get;
//   - get: the future's bag empties into the getter's S bag.
//
// Every operation is a constant number of union-find operations, so the
// detector adds only an inverse-Ackermann factor over the serial
// execution — but it is inherently sequential: the bag invariants are
// meaningful only relative to the current position of the left-to-right
// depth-first traversal, which is exactly the limitation SF-Order lifts.
// Reach must therefore only be used with sched.Options{Serial: true}.
package multibags

import (
	"sync/atomic"
	"unsafe"

	"sforder/internal/obsv"
	"sforder/internal/sched"
	"sforder/internal/unionfind"
)

type bagKind uint8

const (
	kindS bagKind = iota
	kindP
)

// sNode is the per-strand payload: the union-find element whose set's
// tag answers queries about this strand.
type sNode struct {
	elem int
	fi   *fiInfo
}

// fiInfo is the per-function-instance bag pair. sAnchor and pAnchor are
// union-find elements permanently inside the instance's S and P sets.
type fiInfo struct {
	parent  *fiInfo
	sAnchor int
	pAnchor int
}

// Reach is the MultiBags reachability component: a sched.Tracer plus
// detect.Reachability for serial executions. The query counter is atomic
// only so stats snapshots (the -http endpoint) may read it while the
// serial run executes; the algorithm itself stays sequential.
type Reach struct {
	uf      unionfind.Forest
	queries atomic.Uint64
}

// NewReach returns an empty MultiBags component.
func NewReach() *Reach { return &Reach{} }

func nodeOf(s *sched.Strand) *sNode { return s.Det.(*sNode) }

func (r *Reach) newFI(parent *fiInfo) *fiInfo {
	return &fiInfo{
		parent:  parent,
		sAnchor: r.uf.MakeSet(kindS),
		pAnchor: r.uf.MakeSet(kindP),
	}
}

// OnRoot implements sched.Tracer.
func (r *Reach) OnRoot(root *sched.Strand) {
	fi := r.newFI(nil)
	root.Det = &sNode{elem: fi.sAnchor, fi: fi}
	root.Fut.Det = fi
}

// OnSpawn implements sched.Tracer: the child instance gets fresh bags;
// the continuation joins the spawner's S bag.
func (r *Reach) OnSpawn(u, child, cont, placeholder *sched.Strand) {
	un := nodeOf(u)
	cfi := r.newFI(un.fi)
	child.Det = &sNode{elem: cfi.sAnchor, fi: cfi}
	cont.Det = &sNode{elem: un.fi.sAnchor, fi: un.fi}
	// The sync strand's bag is assigned when the sync executes.
}

// OnReturn implements sched.Tracer: the completed child's S bag empties
// into the parent's P bag (its strands are parallel to the parent's
// continuation until the next sync).
func (r *Reach) OnReturn(sink *sched.Strand) {
	cfi := nodeOf(sink).fi
	r.uf.UnionInto(cfi.parent.pAnchor, cfi.sAnchor)
}

// OnSync implements sched.Tracer: the P bag empties into the S bag and a
// fresh P bag replaces it; the sync strand joins the S bag.
func (r *Reach) OnSync(k, s *sched.Strand, childSinks []*sched.Strand) {
	fi := nodeOf(k).fi
	r.uf.UnionInto(fi.sAnchor, fi.pAnchor)
	fi.pAnchor = r.uf.MakeSet(kindP)
	s.Det = &sNode{elem: fi.sAnchor, fi: fi}
}

// OnCreate implements sched.Tracer: the future task body behaves like a
// fresh function instance while it executes.
func (r *Reach) OnCreate(u, first, cont, placeholder *sched.Strand, f *sched.FutureTask) {
	un := nodeOf(u)
	gfi := r.newFI(un.fi)
	first.Det = &sNode{elem: gfi.sAnchor, fi: gfi}
	cont.Det = &sNode{elem: un.fi.sAnchor, fi: un.fi}
	f.Det = gfi
}

// OnPut implements sched.Tracer: the completed future's strands become
// parallel to everything that follows — until the get — so its S bag is
// re-tagged P in place.
func (r *Reach) OnPut(sink *sched.Strand, f *sched.FutureTask) {
	gfi := f.Det.(*fiInfo)
	r.uf.SetData(gfi.sAnchor, kindP)
}

// OnGet implements sched.Tracer: the gotten future's bag empties into
// the getter's S bag (and becomes S-tagged through UnionInto).
func (r *Reach) OnGet(u, g *sched.Strand, f *sched.FutureTask) {
	un := nodeOf(u)
	gfi := f.Det.(*fiInfo)
	r.uf.UnionInto(un.fi.sAnchor, gfi.sAnchor)
	g.Det = &sNode{elem: un.fi.sAnchor, fi: un.fi}
}

// Precedes implements detect.Reachability. u must be an already-executed
// strand and v the currently executing one — the only direction a
// sequential SP-bags style detector can answer.
func (r *Reach) Precedes(u, v *sched.Strand) bool {
	r.queries.Add(1)
	if u == v {
		return true
	}
	return r.uf.Data(nodeOf(u).elem).(bagKind) == kindS
}

// Queries returns the number of Precedes calls served.
func (r *Reach) Queries() uint64 { return r.queries.Load() }

// elemSize and nodeSize are the real per-element and per-strand record
// sizes, derived so the memory estimate stays honest as structs evolve.
var (
	elemSize = int(unsafe.Sizeof(int32(0)) + unsafe.Sizeof(int8(0)) +
		unsafe.Sizeof(any(nil))) // union-find parent + rank + datum
	nodeSize = int(unsafe.Sizeof(sNode{}))
)

// MemBytes estimates the component's footprint: the union-find arrays
// plus the per-strand records.
func (r *Reach) MemBytes() int {
	return r.uf.Len()*elemSize + r.uf.Len()*nodeSize
}

// RegisterStats publishes the MultiBags counters (reach.*) on reg.
func (r *Reach) RegisterStats(reg *obsv.Registry) {
	reg.RegisterFunc("reach.queries", func() int64 { return int64(r.queries.Load()) })
	reg.RegisterFunc("reach.uf_elems", func() int64 { return int64(r.uf.Len()) })
	reg.RegisterFunc("reach.mem_bytes", func() int64 { return int64(r.MemBytes()) })
}

var _ sched.Tracer = (*Reach)(nil)

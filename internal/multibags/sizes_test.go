package multibags

import (
	"testing"
	"unsafe"
)

// TestAccountingSizes pins the memory-accounting sizes to the real
// layouts. The old hand-written elemSize (8+1+16=25) mis-stated the
// union-find element; both sizes are now unsafe.Sizeof-derived and the
// 64-bit expectations are pinned so growth fails loudly.
func TestAccountingSizes(t *testing.T) {
	if nodeSize != int(unsafe.Sizeof(sNode{})) {
		t.Errorf("nodeSize %d != sizeof(sNode) %d", nodeSize, unsafe.Sizeof(sNode{}))
	}
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("expected values below are for 64-bit platforms")
	}
	if nodeSize != 16 {
		t.Errorf("sNode grew: %d bytes, expected 16", nodeSize)
	}
	// parent int32 + rank int8 + data any, per union-find element.
	if elemSize != 21 {
		t.Errorf("elemSize: %d bytes, expected 21", elemSize)
	}
}

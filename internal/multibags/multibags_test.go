package multibags_test

import (
	"testing"

	"sforder/internal/dag"
	"sforder/internal/detect"
	"sforder/internal/multibags"
	"sforder/internal/oracle"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// TestOnlineQueriesAgainstRecordedTruth validates the bag invariant
// online: at selected program points we query recorded strands against
// the current strand and compare with structural expectations.
func TestOnlineQueriesAgainstRecordedTruth(t *testing.T) {
	r := multibags.NewReach()
	var child, contBefore *sched.Strand
	_, err := sched.Run(sched.Options{Serial: true, Tracer: r}, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) { child = c.Strand() })
		contBefore = t.Strand()
		// Child completed (serial execution) but is not synced: parallel.
		if r.Precedes(child, t.Strand()) {
			panic("unsynced child must be parallel to the continuation")
		}
		t.Sync()
		if !r.Precedes(child, t.Strand()) {
			panic("synced child must precede the post-sync strand")
		}
		if !r.Precedes(contBefore, t.Strand()) {
			panic("earlier strand of the same instance must precede")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFutureParallelUntilGet(t *testing.T) {
	r := multibags.NewReach()
	var inFut *sched.Strand
	_, err := sched.Run(sched.Options{Serial: true, Tracer: r}, func(t *sched.Task) {
		h := t.Create(func(c *sched.Task) any { inFut = c.Strand(); return nil })
		if r.Precedes(inFut, t.Strand()) {
			panic("completed but ungotten future must be parallel")
		}
		t.Get(h)
		if !r.Precedes(inFut, t.Strand()) {
			panic("gotten future must precede")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHandleGottenInSpawnedChild(t *testing.T) {
	r := multibags.NewReach()
	var inFut *sched.Strand
	_, err := sched.Run(sched.Options{Serial: true, Tracer: r}, func(t *sched.Task) {
		h := t.Create(func(c *sched.Task) any { inFut = c.Strand(); return 1 })
		t.Spawn(func(c *sched.Task) {
			c.Get(h)
			if !r.Precedes(inFut, c.Strand()) {
				panic("future must precede the getter's continuation")
			}
		})
		t.Sync()
		if !r.Precedes(inFut, t.Strand()) {
			panic("future must precede post-sync code via the getting child")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// multiChecker fans accesses to the history and the oracle.
type multiChecker []sched.AccessChecker

func (m multiChecker) Read(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Read(s, addr)
	}
}
func (m multiChecker) Write(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Write(s, addr)
	}
}

// TestFullDetectionMatchesOracle is the main battery: MultiBags race
// detection must agree with the oracle at location granularity on random
// structured-future programs.
func TestFullDetectionMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 6})
		reach := multibags.NewReach()
		hist := detect.NewHistory(detect.Options{Reach: reach})
		rec := dag.NewRecorder()
		log := oracle.NewLogger()
		_, err := sched.Run(sched.Options{
			Serial:  true,
			Tracer:  sched.MultiTracer{reach, rec},
			Checker: multiChecker{hist, log},
		}, p.Main())
		if err != nil {
			t.Fatal(err)
		}
		got, want := hist.RacyAddrs(), log.RacyAddrs(rec)
		if len(got) != len(want) {
			t.Fatalf("seed %d: detector %v, oracle %v", seed, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: detector %v, oracle %v", seed, got, want)
			}
		}
	}
}

func TestSeededRace(t *testing.T) {
	reach := multibags.NewReach()
	hist := detect.NewHistory(detect.Options{Reach: reach})
	_, err := sched.Run(sched.Options{Serial: true, Tracer: reach, Checker: hist}, func(t *sched.Task) {
		h := t.Create(func(c *sched.Task) any { c.Write(9); return nil })
		t.Write(9)
		t.Get(h)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.RaceCount() == 0 {
		t.Fatal("seeded future race missed")
	}
}

func TestCountersAndMemory(t *testing.T) {
	r := multibags.NewReach()
	_, err := sched.Run(sched.Options{Serial: true, Tracer: r}, func(t *sched.Task) {
		t.Spawn(func(*sched.Task) {})
		t.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.MemBytes() <= 0 {
		t.Error("MultiBags must account memory")
	}
}

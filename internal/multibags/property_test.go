package multibags_test

import (
	"testing"
	"testing/quick"

	"sforder/internal/dag"
	"sforder/internal/multibags"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// onlineProbe queries a fixed set of previously executed strands against
// the current strand at every access point and compares each answer with
// the oracle afterwards. This validates MultiBags within its contract
// (queries are only meaningful against the currently executing strand).
type onlineProbe struct {
	reach *multibags.Reach
	rec   *dag.Recorder

	// accessed holds strands that have actually performed an access —
	// the only strands a real history can contain, and the only ones a
	// sequential SP-bags detector may be asked about. Strands that
	// exist structurally but have not begun executing (a create's
	// continuation while the future body runs first under the serial
	// order) are NOT valid query subjects.
	accessed []*sched.Strand
	seen     map[*sched.Strand]bool

	// each probe: (recorded strand, current strand, answer)
	probes []probe
}

type probe struct {
	u, v *sched.Strand
	ans  bool
}

func (o *onlineProbe) Read(s *sched.Strand, addr uint64)  { o.sample(s) }
func (o *onlineProbe) Write(s *sched.Strand, addr uint64) { o.sample(s) }

func (o *onlineProbe) sample(cur *sched.Strand) {
	step := 1 + len(o.accessed)/8
	for i := 0; i < len(o.accessed); i += step {
		u := o.accessed[i]
		if u == cur {
			continue
		}
		o.probes = append(o.probes, probe{u, cur, o.reach.Precedes(u, cur)})
	}
	if o.seen == nil {
		o.seen = map[*sched.Strand]bool{}
	}
	if !o.seen[cur] {
		o.seen[cur] = true
		o.accessed = append(o.accessed, cur)
	}
}

// TestQuickOnlineQueriesMatchOracle is the main MultiBags battery: every
// online query issued during a random program's serial execution must
// match the final dag's reachability.
func TestQuickOnlineQueriesMatchOracle(t *testing.T) {
	f := func(seed int64, depth, ops uint8) bool {
		p := progen.New(progen.Config{
			Seed:     seed,
			MaxDepth: 1 + int(depth%4),
			MaxOps:   1 + int(ops%7),
		})
		reach := multibags.NewReach()
		rec := dag.NewRecorder()
		pr := &onlineProbe{reach: reach, rec: rec}
		_, err := sched.Run(sched.Options{
			Serial:  true,
			Tracer:  sched.MultiTracer{reach, rec},
			Checker: pr,
		}, p.Main())
		if err != nil {
			return false
		}
		cl := dag.NewClosure(rec.G)
		for _, q := range pr.probes {
			if q.ans != cl.Reachable(rec.NodeOf(q.u), rec.NodeOf(q.v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQueriesCounter sanity-checks the counter used by Figure 3.
func TestQueriesCounter(t *testing.T) {
	p := progen.New(progen.Config{Seed: 2, MaxDepth: 3, MaxOps: 6})
	reach := multibags.NewReach()
	rec := dag.NewRecorder()
	pr := &onlineProbe{reach: reach, rec: rec}
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: sched.MultiTracer{reach, rec}, Checker: pr}, p.Main()); err != nil {
		t.Fatal(err)
	}
	if reach.Queries() != uint64(len(pr.probes)) {
		t.Errorf("Queries = %d, probes = %d", reach.Queries(), len(pr.probes))
	}
}

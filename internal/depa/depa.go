// Package depa implements DePa-style fork-path labels (Westrick,
// Fluet, Acar: "DePa: Simple, Provably Efficient, and Practical Order
// Maintenance for Task Parallelism"), the relabeling-free alternative
// to the English/Hebrew order-maintenance lists of internal/om.
//
// Every strand carries one immutable bit-string label: the path of
// fork decisions from the root of the spawn/create tree, one 2-bit
// component per branch point. At a spawn the child appends Child, the
// continuation appends Cont, and the (eagerly placed) sync placeholder
// appends Sync; a get strand appends Child to its predecessor. Because
// the detector anchors at most one placement batch at any strand, no
// two strands share a label, and the lexicographic order of the labels
// reproduces the English total order exactly — while the same
// comparison with Child and Cont swapped reproduces the Hebrew order.
// One comparison therefore answers both u ⊏E v and u ⊏H v, i.e. a
// whole psp query.
//
// The payoff is structural: labels are assigned once and never touched
// again, so there are no bucket splits, no renumberings, no
// maintenance lock, and no label space to exhaust — a label just grows
// by one component per tree level. The cost is that label length is
// the strand's spawn depth, so comparisons are O(depth/32) words and
// memory is O(strands × depth/32) words, which is what the ABL10
// crossover benchmarks measure against the O(1)-per-strand OM pair.
package depa

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Fork-path components, 2 bits each. Zero is reserved as padding so a
// shorter label compares before every extension of it in both orders.
const (
	Child uint8 = 1 // spawned child / created future's first strand
	Cont  uint8 = 2 // continuation of the forking strand
	Sync  uint8 = 3 // eagerly placed sync placeholder of the region
)

// compsPerWord is how many 2-bit components a label word holds; the
// first component of a label occupies the top bits of words[0].
const compsPerWord = 32

// Label is one strand's fork path, packed big-endian. Labels are
// immutable after Extend returns them, so readers never synchronize.
type Label struct {
	words []uint64
	n     uint32 // number of components
}

// Depth returns the number of components (the strand's fork depth).
func (l *Label) Depth() int { return int(l.n) }

// Words returns the packed length in 64-bit words.
func (l *Label) Words() int { return len(l.words) }

// MemBytes returns the label's footprint: header plus packed words.
func (l *Label) MemBytes() int {
	return int(unsafe.Sizeof(Label{})) + 8*len(l.words)
}

// NewLabel returns the empty root label, allocated from a (heap when a
// is nil).
func NewLabel(a *Arena) *Label {
	return a.label()
}

// Extend returns a new label that appends component c to l. l is not
// modified; the new label copies l's words (sharing would force the
// last, partially filled word to be copied anyway, and whole-slab
// recycling wants labels contiguous in their own slabs).
func (l *Label) Extend(a *Arena, c uint8) *Label {
	n := l.n
	nw := int(n/compsPerWord) + 1
	out := a.label()
	w := a.wordSlice(nw)
	copy(w, l.words)
	if rem := n % compsPerWord; rem == 0 {
		w[nw-1] = uint64(c) << 62
	} else {
		w[nw-1] |= uint64(c) << (62 - 2*rem)
	}
	out.words = w
	out.n = n + 1
	return out
}

// hebOrd maps a component to its rank in the Hebrew order: at a branch
// point the continuation (and everything under it) comes before the
// child's subtree, i.e. Child and Cont swap; Sync stays last and the
// zero padding stays first.
var hebOrd = [4]uint8{0, 2, 1, 3}

// Rel compares two labels in both total orders at once: eng reports
// a ⊏E b (a strictly before b in the English order) and heb reports
// a ⊏H b. Equal labels yield false, false. cmpWords is the number of
// words examined, the "compare depth" stat. Lock-free: labels are
// immutable.
func Rel(a, b *Label) (eng, heb bool, cmpWords int) {
	wa, wb := a.words, b.words
	min := len(wa)
	if len(wb) < min {
		min = len(wb)
	}
	for i := 0; i < min; i++ {
		if x := wa[i] ^ wb[i]; x != 0 {
			// First differing component: 2-bit field j of word i.
			sh := 62 - uint(bits.LeadingZeros64(x))&^1
			ca := wa[i] >> sh & 3
			cb := wb[i] >> sh & 3
			return ca < cb, hebOrd[ca] < hebOrd[cb], i + 1
		}
	}
	// All shared words equal. Components are never zero, so a strictly
	// longer word slice extends the shorter label (which necessarily
	// filled its last word): the shorter is a proper ancestor and comes
	// first in both orders.
	return len(wa) < len(wb), len(wa) < len(wb), min
}

// Arena is a slab (bump) allocator for labels and their packed words,
// mirroring om.ItemArena so internal/core's per-worker lanes can hand
// out DePa labels with a pointer bump and recycle them wholesale. An
// arena is single-owner: not safe for concurrent use. A nil *Arena is
// valid and falls back to the heap (the -noarena ablation and callers
// without lane state).
type Arena struct {
	curL    *labelChunk
	nextL   int
	lchunks []*labelChunk

	curW    *wordChunk
	nextW   int
	wchunks []*wordChunk

	bytes atomic.Int64 // slab bytes held; atomic so gauges scrape mid-run
}

const (
	labelChunkLen = 256  // 256 × 32 B = 8 KiB per label slab
	wordChunkLen  = 2048 // 16 KiB of packed label words per slab
)

type labelChunk struct{ labels [labelChunkLen]Label }
type wordChunk struct{ words [wordChunkLen]uint64 }

var (
	labelChunkPool = sync.Pool{New: func() any { return new(labelChunk) }}
	wordChunkPool  = sync.Pool{New: func() any { return new(wordChunk) }}
)

func (a *Arena) label() *Label {
	if a == nil {
		return &Label{}
	}
	if a.curL == nil || a.nextL == labelChunkLen {
		a.curL = labelChunkPool.Get().(*labelChunk)
		a.lchunks = append(a.lchunks, a.curL)
		a.nextL = 0
		a.bytes.Add(int64(unsafe.Sizeof(labelChunk{})))
	}
	l := &a.curL.labels[a.nextL]
	a.nextL++
	*l = Label{}
	return l
}

// wordSlice carves n words off the current slab. The caller assigns
// every word, so recycled slabs need no zeroing. Oversized requests
// (labels deeper than 32×wordChunkLen components) fall back to the
// heap rather than growing the slab geometry.
func (a *Arena) wordSlice(n int) []uint64 {
	if a == nil || n > wordChunkLen {
		return make([]uint64, n)
	}
	if a.curW == nil || a.nextW+n > wordChunkLen {
		a.curW = wordChunkPool.Get().(*wordChunk)
		a.wchunks = append(a.wchunks, a.curW)
		a.nextW = 0
		a.bytes.Add(int64(unsafe.Sizeof(wordChunk{})))
	}
	s := a.curW.words[a.nextW : a.nextW+n : a.nextW+n]
	a.nextW += n
	return s
}

// Bytes reports the slab bytes currently held by the arena.
func (a *Arena) Bytes() int64 {
	if a == nil {
		return 0
	}
	return a.bytes.Load()
}

// Release returns every slab to the shared pools for reuse by a later
// run. The caller must guarantee no Label allocated from this arena is
// referenced afterwards: a recycled slab will be handed out again.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	for i, c := range a.lchunks {
		a.lchunks[i] = nil
		labelChunkPool.Put(c)
	}
	a.lchunks = a.lchunks[:0]
	for i, c := range a.wchunks {
		a.wchunks[i] = nil
		wordChunkPool.Put(c)
	}
	a.wchunks = a.wchunks[:0]
	a.curL, a.nextL = nil, 0
	a.curW, a.nextW = nil, 0
	a.bytes.Store(0)
}

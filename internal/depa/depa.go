// Package depa implements DePa-style fork-path labels (Westrick,
// Fluet, Acar: "DePa: Simple, Provably Efficient, and Practical Order
// Maintenance for Task Parallelism"), the relabeling-free alternative
// to the English/Hebrew order-maintenance lists of internal/om.
//
// Every strand carries one immutable bit-string label: the path of
// fork decisions from the root of the spawn/create tree, one 2-bit
// component per branch point. At a spawn the child appends Child, the
// continuation appends Cont, and the (eagerly placed) sync placeholder
// appends Sync; a get strand appends Child to its predecessor. Because
// the detector anchors at most one placement batch at any strand, no
// two strands share a label, and the lexicographic order of the labels
// reproduces the English total order exactly — while the same
// comparison with Child and Cont swapped reproduces the Hebrew order.
// One comparison therefore answers both u ⊏E v and u ⊏H v, i.e. a
// whole psp query.
//
// Labels come in two representations:
//
//   - Label is a prefix-sharing cord, the default. A label is a pointer
//     to an immutable chain of frozen full words — one chunk node per 32
//     components, shared structurally with every ancestor — plus one
//     private, partially filled tail word. Extend copies only the tail
//     (and freezes it into a new chunk when it fills), so building n
//     strands costs O(n) words total instead of the O(n × depth) a flat
//     copy pays, and Rel skips the whole common prefix by chunk pointer
//     equality: because chunks below the fork point of two strands are
//     the *same* nodes, the first chunk pair that is not pointer-equal
//     is exactly the word containing the first divergent component, and
//     every comparison inspects one word.
//
//   - Flat is the packed inline array: every word of the path in one
//     contiguous slice, copied whole on Extend. Comparisons walk words
//     from the front with no pointer chase, which is fastest while
//     labels are a word or two; the copy makes it O(depth²) total work
//     on deep spines. The hybrid substrate (internal/core) keeps a Flat
//     alongside the cord for strands at or below a depth threshold and
//     compares flats whenever both sides have one.
//
// The payoff over OM is structural either way: labels are assigned once
// and never touched again, so there are no bucket splits, no
// renumberings, no maintenance lock, and no label space to exhaust.
package depa

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Fork-path components, 2 bits each. Zero is reserved as padding so a
// shorter label compares before every extension of it in both orders.
const (
	Child uint8 = 1 // spawned child / created future's first strand
	Cont  uint8 = 2 // continuation of the forking strand
	Sync  uint8 = 3 // eagerly placed sync placeholder of the region
)

// compsPerWord is how many 2-bit components a label word holds; the
// first component of a word occupies its top bits.
const compsPerWord = 32

// hebOrd maps a component to its rank in the Hebrew order: at a branch
// point the continuation (and everything under it) comes before the
// child's subtree, i.e. Child and Cont swap; Sync stays last and the
// zero padding stays first.
var hebOrd = [4]uint8{0, 2, 1, 3}

// ---------------------------------------------------------------------
// Cord labels: frozen chunk chain + private tail word.

// chunk is one frozen, full label word: 32 components that will never
// change, linked to the chunks before it. Chunks are shared — every
// descendant of the strand whose Extend froze this word points at the
// same node — which is what makes prefix skipping by pointer equality
// sound (see Rel).
type chunk struct {
	prev *chunk
	word uint64
	idx  uint32 // position of this word in the label: chain length - 1
}

// Label is one strand's fork path as a prefix-sharing cord: all full
// words live in the shared frozen chain, the (strictly fewer than 32)
// remaining components in the private tail word, packed from the top
// with zero padding below. Labels are immutable after Extend returns
// them, so readers never synchronize. The component count is derived,
// not stored: the chain length gives the full words and the tail's
// lowest used bit gives the remainder, keeping the header two words.
type Label struct {
	frozen *chunk
	tail   uint64
}

// LabelBytes and ChunkBytes are the allocation sizes the substrate's
// memory accounting uses: one LabelBytes per strand, one ChunkBytes per
// frozen word — counted once at the freeze, never again by the many
// labels that share the chunk.
var (
	LabelBytes = int(unsafe.Sizeof(Label{}))
	ChunkBytes = int(unsafe.Sizeof(chunk{}))
)

// tailComps returns how many components a tail word holds. Components
// are nonzero and packed from the top, so the lowest used bit position
// determines the count; an empty tail is zero.
func tailComps(tail uint64) int {
	return (65 - bits.TrailingZeros64(tail)) / 2
}

// FullWords returns the number of frozen full words (the chunk-chain
// length).
func (l *Label) FullWords() int {
	if l.frozen == nil {
		return 0
	}
	return int(l.frozen.idx) + 1
}

// Depth returns the number of components (the strand's fork depth).
func (l *Label) Depth() int {
	return compsPerWord*l.FullWords() + tailComps(l.tail)
}

// MemBytes returns the label's own footprint: the two-word header. The
// frozen chain is shared and accounted once per chunk at the Extend
// that froze it (ChunkBytes), not per label pointing at it.
func (l *Label) MemBytes() int { return LabelBytes }

// NewLabel returns the empty root label, allocated from a (heap when a
// is nil).
func NewLabel(a *Arena) *Label { return a.label() }

// Extend returns a new label that appends component c to l. l is not
// modified. Only the tail word is copied; when it fills (the 32nd
// component), it freezes into a new chunk node pushed onto l's chain,
// and the new label starts an empty tail. O(1) worst case: the frozen
// prefix is shared, never copied.
func (l *Label) Extend(a *Arena, c uint8) *Label {
	out := a.label()
	r := tailComps(l.tail)
	w := l.tail | uint64(c)<<(62-2*uint(r))
	if r == compsPerWord-1 {
		idx := uint32(0)
		if l.frozen != nil {
			idx = l.frozen.idx + 1
		}
		out.frozen = a.chunk(l.frozen, w, idx)
		out.tail = 0
	} else {
		out.frozen = l.frozen
		out.tail = w
	}
	return out
}

// Rel compares two cord labels in both total orders at once: eng
// reports a ⊏E b (a strictly before b in the English order) and heb
// reports a ⊏H b. Equal labels yield false, false. cmpWords is the
// number of word pairs whose contents were examined, the "compare
// depth" stat. Lock-free: labels and chunks are immutable.
//
// The shared prefix is skipped by pointer equality instead of being
// compared. In detector use every label descends from one root via
// Extend, so chunks below the fork point of two strands are the *same*
// nodes: the lockstep walk toward the root stops the moment the chains
// become pointer-equal, having examined only the chunks frozen after
// the fork — O(depth below the LCA / 32) words, typically one, however
// deep the labels are. Rel stays correct without that sharing
// (content-equal chunks that are distinct nodes compare equal and the
// walk continues), it is just no longer sublinear.
//
// Where the chains have different lengths, the pair at the boundary
// index — the deeper chain's word against the shallower label's tail —
// always differs (a full word carries 32 nonzero components, a tail at
// most 31), so deeper words of the longer chain are never decisive and
// only the equal-length region below the boundary needs walking.
func Rel(a, b *Label) (eng, heb bool, cmpWords int) {
	wa, wb, cmpWords := diverge(a, b)
	x := wa ^ wb
	if x == 0 {
		// No word pair differs anywhere: the labels are identical.
		return false, false, cmpWords
	}
	// First differing component: the 2-bit field holding x's top set bit.
	sh := 62 - uint(bits.LeadingZeros64(x))&^1
	qa := wa >> sh & 3
	qb := wb >> sh & 3
	return qa < qb, hebOrd[qa] < hebOrd[qb], cmpWords
}

// diverge is the LCA-skip walk shared by Rel and LeftOf: it returns the
// shallowest differing word pair of the two cords (wa == wb means the
// labels are identical) and the number of word pairs examined.
func diverge(a, b *Label) (wa, wb uint64, cmpWords int) {
	wa, wb = a.tail, b.tail // divergence candidate, shallowest known
	cmpWords = 1
	if ca, cb := a.frozen, b.frozen; ca != cb {
		// Descend the deeper chain to the shallower's length, capturing
		// the boundary word that pairs with the shallower's tail.
		for ca != nil && (cb == nil || ca.idx > cb.idx) {
			if cb == nil && ca.idx == 0 || cb != nil && ca.idx == cb.idx+1 {
				wa = ca.word
			}
			ca = ca.prev
		}
		for cb != nil && (ca == nil || cb.idx > ca.idx) {
			if ca == nil && cb.idx == 0 || ca != nil && cb.idx == ca.idx+1 {
				wb = cb.word
			}
			cb = cb.prev
		}
		// Lockstep toward the root, keeping the shallowest differing
		// pair; pointer equality means everything below is shared.
		for ca != cb {
			cmpWords++
			if ca.word != cb.word {
				wa, wb = ca.word, cb.word
			}
			ca, cb = ca.prev, cb.prev
		}
	}
	return wa, wb, cmpWords
}

// LeftOf reports a ⊏E b alone — the English-order query the ReadersLR
// reader policy asks (§3.5 leftmost/rightmost maintenance). It reuses
// the same LCA-skip walk as Rel, stopping at pointer-equal chunks, and
// decides from the single divergent component without the Hebrew remap.
// cmpWords counts the word pairs examined (depa.compare_words).
func LeftOf(a, b *Label) (left bool, cmpWords int) {
	wa, wb, cmpWords := diverge(a, b)
	x := wa ^ wb
	if x == 0 {
		return false, cmpWords
	}
	sh := 62 - uint(bits.LeadingZeros64(x))&^1
	return wa>>sh&3 < wb>>sh&3, cmpWords
}

// ---------------------------------------------------------------------
// Flat labels: the packed inline representation.

// Flat is a fork path packed big-endian into one contiguous slice,
// copied whole on Extend. No pointer chase on compare, O(depth) copy
// per strand — the representation the hybrid substrate keeps for
// shallow strands. Immutable after Extend returns.
type Flat struct {
	words []uint64
	n     uint32 // number of components
}

// Depth returns the number of components (the strand's fork depth).
func (f *Flat) Depth() int { return int(f.n) }

// Words returns the packed length in 64-bit words.
func (f *Flat) Words() int { return len(f.words) }

// MemBytes returns the label's footprint: header plus packed words
// (nothing is shared between flats).
func (f *Flat) MemBytes() int {
	return int(unsafe.Sizeof(Flat{})) + 8*len(f.words)
}

// NewFlat returns the empty flat root label.
func NewFlat(a *Arena) *Flat { return a.flat() }

// Extend returns a new flat label appending component c to f; f's words
// are copied in full.
func (f *Flat) Extend(a *Arena, c uint8) *Flat {
	n := f.n
	nw := int(n/compsPerWord) + 1
	out := a.flat()
	w := a.wordSlice(nw)
	copy(w, f.words)
	if rem := n % compsPerWord; rem == 0 {
		w[nw-1] = uint64(c) << 62
	} else {
		w[nw-1] |= uint64(c) << (62 - 2*rem)
	}
	out.words = w
	out.n = n + 1
	return out
}

// RelFlat is Rel over flat labels: a front-to-back word compare with no
// prefix skipping (flats share no structure). cmpWords is the number of
// words examined.
func RelFlat(a, b *Flat) (eng, heb bool, cmpWords int) {
	wa, wb := a.words, b.words
	min := len(wa)
	if len(wb) < min {
		min = len(wb)
	}
	for i := 0; i < min; i++ {
		if x := wa[i] ^ wb[i]; x != 0 {
			sh := 62 - uint(bits.LeadingZeros64(x))&^1
			ca := wa[i] >> sh & 3
			cb := wb[i] >> sh & 3
			return ca < cb, hebOrd[ca] < hebOrd[cb], i + 1
		}
	}
	// All shared words equal. Components are never zero, so a strictly
	// longer word slice extends the shorter label (which necessarily
	// filled its last word): the shorter is a proper ancestor and comes
	// first in both orders.
	return len(wa) < len(wb), len(wa) < len(wb), min
}

// LeftOfFlat is LeftOf over flat labels: a front-to-back word compare
// with no prefix skipping, deciding the English order only.
func LeftOfFlat(a, b *Flat) (left bool, cmpWords int) {
	wa, wb := a.words, b.words
	min := len(wa)
	if len(wb) < min {
		min = len(wb)
	}
	for i := 0; i < min; i++ {
		if x := wa[i] ^ wb[i]; x != 0 {
			sh := 62 - uint(bits.LeadingZeros64(x))&^1
			return wa[i]>>sh&3 < wb[i]>>sh&3, i + 1
		}
	}
	return len(wa) < len(wb), min
}

// ---------------------------------------------------------------------
// Arena.

// Arena is a slab (bump) allocator for cord labels, their frozen chunk
// nodes, flat labels, and flat word slices, mirroring om.ItemArena so
// internal/core's per-worker lanes can hand out DePa labels with a
// pointer bump and recycle them wholesale. An arena is single-owner:
// not safe for concurrent use. A nil *Arena is valid and falls back to
// the heap (the -noarena ablation and callers without lane state).
type Arena struct {
	curL   *labelSlab
	nextL  int
	lslabs []*labelSlab
	curC   *chunkSlab
	nextC  int
	cslabs []*chunkSlab
	curF   *flatSlab
	nextF  int
	fslabs []*flatSlab
	curW   *wordSlab
	nextW  int
	wslabs []*wordSlab
	bytes  atomic.Int64 // bytes held: slabs plus oversized heap words
	waste  atomic.Int64 // bytes stranded at slab tails by unfit requests
}

const (
	labelSlabLen = 256  // 256 × 16 B = 4 KiB of cord labels per slab
	chunkSlabLen = 256  // 256 × 24 B = 6 KiB of frozen chunk nodes
	flatSlabLen  = 256  // 256 × 32 B = 8 KiB of flat headers per slab
	wordSlabLen  = 2048 // 16 KiB of packed flat words per slab
)

type labelSlab struct{ labels [labelSlabLen]Label }
type chunkSlab struct{ chunks [chunkSlabLen]chunk }
type flatSlab struct{ flats [flatSlabLen]Flat }
type wordSlab struct{ words [wordSlabLen]uint64 }

var (
	labelSlabPool = sync.Pool{New: func() any { return new(labelSlab) }}
	chunkSlabPool = sync.Pool{New: func() any { return new(chunkSlab) }}
	flatSlabPool  = sync.Pool{New: func() any { return new(flatSlab) }}
	wordSlabPool  = sync.Pool{New: func() any { return new(wordSlab) }}
)

func (a *Arena) label() *Label {
	if a == nil {
		return &Label{}
	}
	if a.curL == nil || a.nextL == labelSlabLen {
		a.curL = labelSlabPool.Get().(*labelSlab)
		a.lslabs = append(a.lslabs, a.curL)
		a.nextL = 0
		a.bytes.Add(int64(unsafe.Sizeof(labelSlab{})))
	}
	l := &a.curL.labels[a.nextL]
	a.nextL++
	*l = Label{}
	return l
}

// chunk allocates one frozen-word node. Every field is assigned, so
// recycled slabs need no zeroing.
func (a *Arena) chunk(prev *chunk, word uint64, idx uint32) *chunk {
	if a == nil {
		return &chunk{prev: prev, word: word, idx: idx}
	}
	if a.curC == nil || a.nextC == chunkSlabLen {
		a.curC = chunkSlabPool.Get().(*chunkSlab)
		a.cslabs = append(a.cslabs, a.curC)
		a.nextC = 0
		a.bytes.Add(int64(unsafe.Sizeof(chunkSlab{})))
	}
	c := &a.curC.chunks[a.nextC]
	a.nextC++
	c.prev, c.word, c.idx = prev, word, idx
	return c
}

func (a *Arena) flat() *Flat {
	if a == nil {
		return &Flat{}
	}
	if a.curF == nil || a.nextF == flatSlabLen {
		a.curF = flatSlabPool.Get().(*flatSlab)
		a.fslabs = append(a.fslabs, a.curF)
		a.nextF = 0
		a.bytes.Add(int64(unsafe.Sizeof(flatSlab{})))
	}
	f := &a.curF.flats[a.nextF]
	a.nextF++
	*f = Flat{}
	return f
}

// wordSlice carves n words off the current slab. The caller assigns
// every word, so recycled slabs need no zeroing. Oversized requests
// (flat labels deeper than 32×wordSlabLen components) fall back to the
// heap rather than growing the slab geometry — those bytes are still
// counted, so the memory gauges do not under-report on very deep
// labels. Words stranded at the tail of a slab that could not fit a
// request accumulate on the waste counter.
func (a *Arena) wordSlice(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	if n > wordSlabLen {
		a.bytes.Add(int64(8 * n))
		return make([]uint64, n)
	}
	if a.curW == nil || a.nextW+n > wordSlabLen {
		if a.curW != nil && a.nextW < wordSlabLen {
			a.waste.Add(int64(8 * (wordSlabLen - a.nextW)))
		}
		a.curW = wordSlabPool.Get().(*wordSlab)
		a.wslabs = append(a.wslabs, a.curW)
		a.nextW = 0
		a.bytes.Add(int64(unsafe.Sizeof(wordSlab{})))
	}
	s := a.curW.words[a.nextW : a.nextW+n : a.nextW+n]
	a.nextW += n
	return s
}

// Bytes reports the bytes currently held by the arena: slabs plus any
// oversized heap-fallback word slices handed out since the last
// Release.
func (a *Arena) Bytes() int64 {
	if a == nil {
		return 0
	}
	return a.bytes.Load()
}

// WasteBytes reports the bytes stranded at slab tails when a word
// request did not fit the current slab's remainder (depa.slab_waste_bytes).
func (a *Arena) WasteBytes() int64 {
	if a == nil {
		return 0
	}
	return a.waste.Load()
}

// Release returns every slab to the shared pools for reuse by a later
// run. The caller must guarantee no Label, chunk chain, or Flat
// allocated from this arena is referenced afterwards: a recycled slab
// will be handed out again. Oversized heap-fallback slices are simply
// dropped to the GC.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	for i, s := range a.lslabs {
		a.lslabs[i] = nil
		labelSlabPool.Put(s)
	}
	a.lslabs = a.lslabs[:0]
	for i, s := range a.cslabs {
		a.cslabs[i] = nil
		chunkSlabPool.Put(s)
	}
	a.cslabs = a.cslabs[:0]
	for i, s := range a.fslabs {
		a.fslabs[i] = nil
		flatSlabPool.Put(s)
	}
	a.fslabs = a.fslabs[:0]
	for i, s := range a.wslabs {
		a.wslabs[i] = nil
		wordSlabPool.Put(s)
	}
	a.wslabs = a.wslabs[:0]
	a.curL, a.nextL = nil, 0
	a.curC, a.nextC = nil, 0
	a.curF, a.nextF = nil, 0
	a.curW, a.nextW = nil, 0
	a.bytes.Store(0)
	a.waste.Store(0)
}

package depa

import (
	"math/rand"
	"testing"
)

// forest describes a test strand forest as BuildTable inputs.
type forest struct {
	parent []int32
	comp   []uint8
}

// chainForest is a single spine of depth n-1: every strand extends the
// previous one, crossing a chunk boundary every 32 strands.
func chainForest(n int) forest {
	f := forest{parent: make([]int32, n), comp: make([]uint8, n)}
	f.parent[0] = -1
	for i := 1; i < n; i++ {
		f.parent[i] = int32(i - 1)
		f.comp[i] = uint8(1 + (i % 3))
	}
	return f
}

// randForest attaches each strand to a uniformly random earlier one.
func randForest(n int, seed int64) forest {
	rng := rand.New(rand.NewSource(seed))
	f := forest{parent: make([]int32, n), comp: make([]uint8, n)}
	f.parent[0] = -1
	for i := 1; i < n; i++ {
		f.parent[i] = int32(rng.Intn(i))
		f.comp[i] = uint8(1 + rng.Intn(3))
	}
	return f
}

// extendReference builds the same forest's labels the online way: one
// Extend per strand, heap-allocated.
func extendReference(f forest, flatDepth int) ([]*Label, []*Flat) {
	n := len(f.parent)
	labels := make([]*Label, n)
	flats := make([]*Flat, n)
	for i := 0; i < n; i++ {
		p := f.parent[i]
		if p < 0 {
			labels[i] = NewLabel(nil)
			if flatDepth > 0 {
				flats[i] = NewFlat(nil)
			}
			continue
		}
		labels[i] = labels[p].Extend(nil, f.comp[i])
		if pf := flats[p]; pf != nil && pf.Depth() < flatDepth {
			flats[i] = pf.Extend(nil, f.comp[i])
		}
	}
	return labels, flats
}

// chainWords flattens a cord's frozen chain, root word first.
func chainWords(l *Label) []uint64 {
	out := make([]uint64, l.FullWords())
	for c := l.frozen; c != nil; c = c.prev {
		out[c.idx] = c.word
	}
	return out
}

func sameWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBuildTableMatchesExtend: table-built labels are content-identical
// to Extend-built ones — depth, tail, every frozen word — and the
// chunk-sharing structure agrees (Rel examines the same number of
// words), on chains that cross chunk boundaries and on random forests,
// at 1 and 4 fill workers.
func TestBuildTableMatchesExtend(t *testing.T) {
	forests := map[string]forest{
		"chain130":  chainForest(130),
		"chain64":   chainForest(64), // ends exactly on a freeze
		"rand1000":  randForest(1000, 1),
		"rand300":   randForest(300, 2),
		"singleton": {parent: []int32{-1}, comp: []uint8{0}},
	}
	for name, f := range forests {
		ref, _ := extendReference(f, 0)
		for _, workers := range []int{1, 4} {
			tab, err := BuildTable(f.parent, f.comp, TableConfig{Workers: workers})
			if err != nil {
				t.Fatalf("%s/%dw: %v", name, workers, err)
			}
			if tab.Len() != len(ref) {
				t.Fatalf("%s/%dw: %d labels, want %d", name, workers, tab.Len(), len(ref))
			}
			for i, want := range ref {
				got := tab.Label(i)
				if got.Depth() != want.Depth() || got.tail != want.tail ||
					!sameWords(chainWords(got), chainWords(want)) {
					t.Fatalf("%s/%dw: label %d differs: depth %d/%d tail %#x/%#x",
						name, workers, i, got.Depth(), want.Depth(), got.tail, want.tail)
				}
			}
			// Order verdicts and compare depths agree pairwise: the
			// chunk sharing must be structural, not just content-equal.
			rng := rand.New(rand.NewSource(int64(workers)))
			for k := 0; k < 500; k++ {
				i, j := rng.Intn(len(ref)), rng.Intn(len(ref))
				ge, gh, gw := Rel(tab.Label(i), tab.Label(j))
				we, wh, ww := Rel(ref[i], ref[j])
				if ge != we || gh != wh || gw != ww {
					t.Fatalf("%s/%dw: Rel(%d,%d) = (%v,%v,%d), want (%v,%v,%d)",
						name, workers, i, j, ge, gh, gw, we, wh, ww)
				}
			}
		}
	}
}

// TestBuildTableFlats: with a FlatDepth, the table carries packed
// copies for exactly the strands the hybrid substrate would give one
// (depth <= threshold), with identical words.
func TestBuildTableFlats(t *testing.T) {
	const flatDepth = 6
	f := randForest(400, 3)
	_, refFlats := extendReference(f, flatDepth)
	tab, err := BuildTable(f.parent, f.comp, TableConfig{Workers: 4, FlatDepth: flatDepth})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range refFlats {
		got := tab.Flat(i)
		if (got == nil) != (want == nil) {
			t.Fatalf("flat %d: presence %v, want %v (depth %d)",
				i, got != nil, want != nil, tab.Label(i).Depth())
		}
		if got == nil {
			continue
		}
		if got.Depth() != want.Depth() || !sameWords(got.words, want.words) {
			t.Fatalf("flat %d: %d/%v, want %d/%v", i, got.Depth(), got.words, want.Depth(), want.words)
		}
		eng, heb, _ := RelFlat(got, tab.Flat(0))
		we, wh, _ := RelFlat(want, refFlats[0])
		if eng != we || heb != wh {
			t.Fatalf("flat %d: RelFlat disagrees with reference", i)
		}
	}
}

// TestBuildTableMemAccounting: MemBytes is what the online substrate
// accounts for the same forest — headers, one ChunkBytes per freeze,
// flat payloads.
func TestBuildTableMemAccounting(t *testing.T) {
	f := chainForest(130)
	tab, err := BuildTable(f.parent, f.comp, TableConfig{Workers: 2, FlatDepth: 40})
	if err != nil {
		t.Fatal(err)
	}
	_, refFlats := extendReference(f, 40)
	want := 130 * LabelBytes
	want += tab.Chunks() * ChunkBytes
	for _, fl := range refFlats {
		if fl != nil {
			want += fl.MemBytes()
		}
	}
	if got := tab.MemBytes(); got != want {
		t.Fatalf("MemBytes %d, want %d", got, want)
	}
	if tab.Chunks() != 129/32 {
		t.Fatalf("chunks %d, want %d", tab.Chunks(), 129/32)
	}
	if tab.MaxDepth() != 129 {
		t.Fatalf("maxDepth %d, want 129", tab.MaxDepth())
	}
}

// TestBuildTableSegmentBalance: the fill partition is even — at 4
// workers no segment holds more than half the work, even on a pure
// chain (the shape that defeats tree-based partitioning).
func TestBuildTableSegmentBalance(t *testing.T) {
	for name, f := range map[string]forest{"chain": chainForest(2000), "rand": randForest(2000, 4)} {
		tab, err := BuildTable(f.parent, f.comp, TableConfig{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		seg := tab.SegmentWork()
		if len(seg) != 4 {
			t.Fatalf("%s: %d segments, want 4", name, len(seg))
		}
		var total, max int64
		for _, w := range seg {
			total += w
			if w > max {
				max = w
			}
		}
		if total != int64(tab.Len()+tab.Chunks()) {
			t.Fatalf("%s: segment work %d, want %d labels + %d chunks", name, total, tab.Len(), tab.Chunks())
		}
		if 2*max > total {
			t.Fatalf("%s: largest segment %d of %d exceeds half the work", name, max, total)
		}
	}
}

// TestBuildTableRejectsMalformed: non-topological parents, invalid
// components, and mismatched input lengths error instead of building a
// corrupt table.
func TestBuildTableRejectsMalformed(t *testing.T) {
	cases := map[string]forest{
		"forward parent": {parent: []int32{-1, 2, 1}, comp: []uint8{0, 1, 1}},
		"self parent":    {parent: []int32{-1, 1}, comp: []uint8{0, 1}},
		"zero comp":      {parent: []int32{-1, 0}, comp: []uint8{0, 0}},
		"big comp":       {parent: []int32{-1, 0}, comp: []uint8{0, 4}},
		"len mismatch":   {parent: []int32{-1, 0}, comp: []uint8{0}},
	}
	for name, f := range cases {
		if _, err := BuildTable(f.parent, f.comp, TableConfig{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

package depa_test

import (
	"math/rand"
	"testing"

	"sforder/internal/depa"
)

// refLess is the reference lexicographic comparison over unpacked
// component slices, with ord mapping components to their rank.
func refLess(a, b []uint8, ord func(uint8) uint8) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return ord(a[i]) < ord(b[i])
		}
	}
	return len(a) < len(b)
}

func engOrd(c uint8) uint8 { return c }
func hebOrd(c uint8) uint8 {
	switch c {
	case depa.Child:
		return depa.Cont
	case depa.Cont:
		return depa.Child
	}
	return c
}

// build materializes a component path as a Label via Extend.
func build(a *depa.Arena, path []uint8) *depa.Label {
	l := depa.NewLabel(a)
	for _, c := range path {
		l = l.Extend(a, c)
	}
	return l
}

func TestRelMatchesReferenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	comps := []uint8{depa.Child, depa.Cont, depa.Sync}
	var arena depa.Arena
	defer arena.Release()
	for trial := 0; trial < 2000; trial++ {
		// Random pair, biased toward shared prefixes and word-boundary
		// lengths so the packed edge cases (diff in a later word, full
		// last word, proper prefix) all get exercised.
		shared := rng.Intn(70)
		pre := make([]uint8, shared)
		for i := range pre {
			pre[i] = comps[rng.Intn(3)]
		}
		mk := func() []uint8 {
			tail := make([]uint8, rng.Intn(70))
			for i := range tail {
				tail[i] = comps[rng.Intn(3)]
			}
			return append(append([]uint8(nil), pre...), tail...)
		}
		pa, pb := mk(), mk()
		la, lb := build(&arena, pa), build(&arena, pb)

		wantEng := refLess(pa, pb, engOrd)
		wantHeb := refLess(pa, pb, hebOrd)
		eng, heb, _ := depa.Rel(la, lb)
		if eng != wantEng || heb != wantHeb {
			t.Fatalf("trial %d: Rel(%v, %v) = (%v, %v), want (%v, %v)",
				trial, pa, pb, eng, heb, wantEng, wantHeb)
		}
		if la.Depth() != len(pa) || lb.Depth() != len(pb) {
			t.Fatalf("trial %d: Depth mismatch", trial)
		}
	}
}

func TestRelEqualAndPrefix(t *testing.T) {
	var a depa.Arena
	defer a.Release()
	root := depa.NewLabel(&a)
	if eng, heb, _ := depa.Rel(root, root); eng || heb {
		t.Fatal("equal labels must relate false in both orders")
	}
	// Proper prefix ending exactly on a word boundary (32 components).
	p := make([]uint8, 32)
	for i := range p {
		p[i] = depa.Cont
	}
	short := build(&a, p)
	long := short.Extend(&a, depa.Child)
	if eng, heb, _ := depa.Rel(short, long); !eng || !heb {
		t.Fatal("ancestor must precede descendant in both orders")
	}
	if eng, heb, _ := depa.Rel(long, short); eng || heb {
		t.Fatal("descendant must not precede ancestor")
	}
	if eng, heb, _ := depa.Rel(root, long); !eng || !heb {
		t.Fatal("root must precede everything")
	}
}

// TestBranchOrders pins the spawn-point algebra the core substrate
// relies on: English child < cont < sync, Hebrew cont < child < sync,
// with the forker's label before all three in both.
func TestBranchOrders(t *testing.T) {
	var a depa.Arena
	defer a.Release()
	u := build(&a, []uint8{depa.Cont, depa.Child}) // arbitrary interior strand
	child := u.Extend(&a, depa.Child)
	cont := u.Extend(&a, depa.Cont)
	sync := u.Extend(&a, depa.Sync)

	mustRel := func(x, y *depa.Label, wantEng, wantHeb bool, what string) {
		t.Helper()
		eng, heb, _ := depa.Rel(x, y)
		if eng != wantEng || heb != wantHeb {
			t.Errorf("%s: got (%v, %v), want (%v, %v)", what, eng, heb, wantEng, wantHeb)
		}
	}
	mustRel(u, child, true, true, "u before child")
	mustRel(u, cont, true, true, "u before cont")
	mustRel(u, sync, true, true, "u before sync")
	mustRel(child, cont, true, false, "child/cont: English yes, Hebrew no")
	mustRel(cont, child, false, true, "cont/child: Hebrew yes, English no")
	mustRel(child, sync, true, true, "child before sync in both")
	mustRel(cont, sync, true, true, "cont before sync in both")
	// Nested: a grandchild under cont still precedes the sync in both
	// orders and stays on its side of the child/cont divide.
	g := cont.Extend(&a, depa.Child).Extend(&a, depa.Cont)
	mustRel(g, sync, true, true, "cont-subtree strand before sync")
	mustRel(child, g, true, false, "child vs cont-subtree matches child vs cont")
}

func TestDeepLabelHeapFallback(t *testing.T) {
	var a depa.Arena
	defer a.Release()
	l := depa.NewLabel(&a)
	const depth = 70000 // > 32 × wordChunkLen components, forces heap words
	for i := 0; i < depth; i++ {
		l = l.Extend(&a, depa.Cont)
	}
	if l.Depth() != depth {
		t.Fatalf("depth = %d, want %d", l.Depth(), depth)
	}
	if l.Words() != (depth+31)/32 {
		t.Fatalf("words = %d, want %d", l.Words(), (depth+31)/32)
	}
	parent := build(&a, []uint8{depa.Cont})
	if eng, heb, w := depa.Rel(parent, l); !eng || !heb || w != 1 {
		t.Fatalf("shallow ancestor vs deep label: (%v, %v, %d)", eng, heb, w)
	}
	sib := parent.Extend(&a, depa.Child)
	if eng, heb, _ := depa.Rel(sib, l); !eng || heb {
		t.Fatal("deep cont-path strand must be English-after/Hebrew-before the child")
	}
}

func TestArenaRecycle(t *testing.T) {
	var a depa.Arena
	l := build(&a, []uint8{depa.Child, depa.Sync})
	if a.Bytes() == 0 {
		t.Fatal("arena reported zero bytes after allocations")
	}
	_ = l
	a.Release()
	if a.Bytes() != 0 {
		t.Fatal("Release must zero the byte count")
	}
	// Reuse after release must hand out valid labels again.
	l2 := build(&a, []uint8{depa.Cont})
	if l2.Depth() != 1 {
		t.Fatal("arena unusable after Release")
	}
}

func TestNilArenaHeapFallback(t *testing.T) {
	l := build(nil, []uint8{depa.Child, depa.Cont, depa.Sync})
	if l.Depth() != 3 {
		t.Fatal("nil-arena labels must work")
	}
	if (*depa.Arena)(nil).Bytes() != 0 {
		t.Fatal("nil arena bytes")
	}
	(*depa.Arena)(nil).Release()
}

package depa_test

import (
	"math/rand"
	"testing"

	"sforder/internal/depa"
)

// refLess is the reference lexicographic comparison over unpacked
// component slices, with ord mapping components to their rank.
func refLess(a, b []uint8, ord func(uint8) uint8) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return ord(a[i]) < ord(b[i])
		}
	}
	return len(a) < len(b)
}

func engOrd(c uint8) uint8 { return c }
func hebOrd(c uint8) uint8 {
	switch c {
	case depa.Child:
		return depa.Cont
	case depa.Cont:
		return depa.Child
	}
	return c
}

// build materializes a component path as a cord Label via Extend,
// sharing structure with the labels of every proper prefix — the way
// the substrate builds them.
func build(a *depa.Arena, path []uint8) *depa.Label {
	l := depa.NewLabel(a)
	for _, c := range path {
		l = l.Extend(a, c)
	}
	return l
}

// buildFlat materializes the same path in the packed representation.
func buildFlat(a *depa.Arena, path []uint8) *depa.Flat {
	f := depa.NewFlat(a)
	for _, c := range path {
		f = f.Extend(a, c)
	}
	return f
}

// fuzzPair draws a random label pair biased toward shared prefixes and
// word-boundary lengths so the packed edge cases (diff in a later
// word, full last word, proper prefix) all get exercised.
func fuzzPair(rng *rand.Rand) (pre, ta, tb []uint8) {
	comps := []uint8{depa.Child, depa.Cont, depa.Sync}
	pre = make([]uint8, rng.Intn(70))
	for i := range pre {
		pre[i] = comps[rng.Intn(3)]
	}
	mk := func() []uint8 {
		tail := make([]uint8, rng.Intn(70))
		for i := range tail {
			tail[i] = comps[rng.Intn(3)]
		}
		return tail
	}
	return pre, mk(), mk()
}

func cat(pre, tail []uint8) []uint8 {
	return append(append([]uint8(nil), pre...), tail...)
}

// extendFrom grows an existing label by path — the substrate's usage:
// every label descends from its tree parent, so chunk chains share
// structure wherever paths share prefixes.
func extendFrom(a *depa.Arena, l *depa.Label, path []uint8) *depa.Label {
	for _, c := range path {
		l = l.Extend(a, c)
	}
	return l
}

func TestRelMatchesReferenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var arena depa.Arena
	defer arena.Release()
	for trial := 0; trial < 2000; trial++ {
		pre, ta, tb := fuzzPair(rng)
		lpre := build(&arena, pre)
		la := extendFrom(&arena, lpre, ta)
		lb := extendFrom(&arena, lpre, tb)
		pa, pb := cat(pre, ta), cat(pre, tb)

		wantEng := refLess(pa, pb, engOrd)
		wantHeb := refLess(pa, pb, hebOrd)
		eng, heb, w := depa.Rel(la, lb)
		if eng != wantEng || heb != wantHeb {
			t.Fatalf("trial %d: Rel(%v, %v) = (%v, %v), want (%v, %v)",
				trial, pa, pb, eng, heb, wantEng, wantHeb)
		}
		// With shared chains the walk examines only chunks frozen after
		// the fork: at most ceil(69/32)+1 per side here, not O(depth).
		if w < 1 || w > 4 {
			t.Fatalf("trial %d: cord compare examined %d words, want 1..4", trial, w)
		}
		if la.Depth() != len(pa) || lb.Depth() != len(pb) {
			t.Fatalf("trial %d: Depth mismatch", trial)
		}
	}
}

// TestRelFlatMatchesReferenceFuzz runs the same reference fuzz over the
// packed representation, and cross-checks it against the cord verdicts:
// the hybrid substrate treats the two as interchangeable.
func TestRelFlatMatchesReferenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var arena depa.Arena
	defer arena.Release()
	for trial := 0; trial < 2000; trial++ {
		pre, ta, tb := fuzzPair(rng)
		pa, pb := cat(pre, ta), cat(pre, tb)
		fa, fb := buildFlat(&arena, pa), buildFlat(&arena, pb)

		wantEng := refLess(pa, pb, engOrd)
		wantHeb := refLess(pa, pb, hebOrd)
		eng, heb, _ := depa.RelFlat(fa, fb)
		if eng != wantEng || heb != wantHeb {
			t.Fatalf("trial %d: RelFlat(%v, %v) = (%v, %v), want (%v, %v)",
				trial, pa, pb, eng, heb, wantEng, wantHeb)
		}
		if fa.Depth() != len(pa) || fb.Depth() != len(pb) {
			t.Fatalf("trial %d: Flat Depth mismatch", trial)
		}
		ceng, cheb, _ := depa.Rel(build(&arena, pa), build(&arena, pb))
		if ceng != eng || cheb != heb {
			t.Fatalf("trial %d: cord and flat verdicts disagree", trial)
		}
	}
}

// TestRelUnsharedChains compares labels built by independent Extend
// walks: the common prefix is content-equal but the chunk nodes are
// distinct allocations, so the pointer-equality skip never fires and
// Rel must fall back to the full lockstep walk — correctness does not
// depend on structural sharing, only the O(1) bound does.
func TestRelUnsharedChains(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var arena depa.Arena
	defer arena.Release()
	for trial := 0; trial < 500; trial++ {
		pre, ta, tb := fuzzPair(rng)
		pa, pb := cat(pre, ta), cat(pre, tb)
		la := build(&arena, pa) // independent builds: no shared chunks
		lb := build(&arena, pb)
		wantEng := refLess(pa, pb, engOrd)
		wantHeb := refLess(pa, pb, hebOrd)
		eng, heb, _ := depa.Rel(la, lb)
		if eng != wantEng || heb != wantHeb {
			t.Fatalf("trial %d: unshared Rel(%v, %v) = (%v, %v), want (%v, %v)",
				trial, pa, pb, eng, heb, wantEng, wantHeb)
		}
	}
}

func TestRelEqualAndPrefix(t *testing.T) {
	var a depa.Arena
	defer a.Release()
	root := depa.NewLabel(&a)
	if eng, heb, _ := depa.Rel(root, root); eng || heb {
		t.Fatal("equal labels must relate false in both orders")
	}
	// Proper prefix ending exactly on a word boundary (32 components).
	p := make([]uint8, 32)
	for i := range p {
		p[i] = depa.Cont
	}
	short := build(&a, p)
	if short.FullWords() != 1 || short.Depth() != 32 {
		t.Fatalf("32-component label: FullWords=%d Depth=%d", short.FullWords(), short.Depth())
	}
	long := short.Extend(&a, depa.Child)
	if eng, heb, _ := depa.Rel(short, long); !eng || !heb {
		t.Fatal("ancestor must precede descendant in both orders")
	}
	if eng, heb, _ := depa.Rel(long, short); eng || heb {
		t.Fatal("descendant must not precede ancestor")
	}
	if eng, heb, _ := depa.Rel(root, long); !eng || !heb {
		t.Fatal("root must precede everything")
	}
}

// TestBranchOrders pins the spawn-point algebra the core substrate
// relies on: English child < cont < sync, Hebrew cont < child < sync,
// with the forker's label before all three in both.
func TestBranchOrders(t *testing.T) {
	var a depa.Arena
	defer a.Release()
	u := build(&a, []uint8{depa.Cont, depa.Child}) // arbitrary interior strand
	child := u.Extend(&a, depa.Child)
	cont := u.Extend(&a, depa.Cont)
	sync := u.Extend(&a, depa.Sync)

	mustRel := func(x, y *depa.Label, wantEng, wantHeb bool, what string) {
		t.Helper()
		eng, heb, _ := depa.Rel(x, y)
		if eng != wantEng || heb != wantHeb {
			t.Errorf("%s: got (%v, %v), want (%v, %v)", what, eng, heb, wantEng, wantHeb)
		}
	}
	mustRel(u, child, true, true, "u before child")
	mustRel(u, cont, true, true, "u before cont")
	mustRel(u, sync, true, true, "u before sync")
	mustRel(child, cont, true, false, "child/cont: English yes, Hebrew no")
	mustRel(cont, child, false, true, "cont/child: Hebrew yes, English no")
	mustRel(child, sync, true, true, "child before sync in both")
	mustRel(cont, sync, true, true, "cont before sync in both")
	// Nested: a grandchild under cont still precedes the sync in both
	// orders and stays on its side of the child/cont divide.
	g := cont.Extend(&a, depa.Child).Extend(&a, depa.Cont)
	mustRel(g, sync, true, true, "cont-subtree strand before sync")
	mustRel(child, g, true, false, "child vs cont-subtree matches child vs cont")
}

// TestDeepCordLabels drives a cord chain far past one slab of chunk
// nodes and checks both the derived geometry and that comparisons stay
// one word regardless of depth.
func TestDeepCordLabels(t *testing.T) {
	var a depa.Arena
	defer a.Release()
	l := depa.NewLabel(&a)
	const depth = 70000
	for i := 0; i < depth; i++ {
		l = l.Extend(&a, depa.Cont)
	}
	if l.Depth() != depth {
		t.Fatalf("depth = %d, want %d", l.Depth(), depth)
	}
	if l.FullWords() != depth/32 {
		t.Fatalf("full words = %d, want %d", l.FullWords(), depth/32)
	}
	parent := build(&a, []uint8{depa.Cont})
	if eng, heb, w := depa.Rel(parent, l); !eng || !heb || w != 1 {
		t.Fatalf("shallow ancestor vs deep label: (%v, %v, %d)", eng, heb, w)
	}
	sib := parent.Extend(&a, depa.Child)
	if eng, heb, w := depa.Rel(sib, l); !eng || heb || w != 1 {
		t.Fatalf("deep cont-path strand vs child: (%v, %v, %d)", eng, heb, w)
	}
	// Two deep siblings diverging at the bottom: the LCA skip must
	// shortcut the ~2185 shared chunks.
	sa := l.Extend(&a, depa.Child).Extend(&a, depa.Cont)
	sb := l.Extend(&a, depa.Cont)
	if eng, heb, w := depa.Rel(sa, sb); !eng || heb || w != 1 {
		t.Fatalf("deep siblings: (%v, %v, %d)", eng, heb, w)
	}
}

// TestDeepFlatHeapFallback drives a flat label past wordSlabLen words
// (the oversized wordSlice heap fallback) and checks the satellite
// fix: those heap bytes must be visible in Arena.Bytes.
func TestDeepFlatHeapFallback(t *testing.T) {
	var a depa.Arena
	defer a.Release()
	f := depa.NewFlat(&a)
	const depth = 70000 // > 32 × wordSlabLen components, forces heap words
	for i := 0; i < depth; i++ {
		f = f.Extend(&a, depa.Cont)
	}
	if f.Depth() != depth {
		t.Fatalf("depth = %d, want %d", f.Depth(), depth)
	}
	if f.Words() != (depth+31)/32 {
		t.Fatalf("words = %d, want %d", f.Words(), (depth+31)/32)
	}
	// The final label alone is 2188 heap words; Bytes must include at
	// least that on top of the slab bytes a fresh arena would report.
	if got, want := a.Bytes(), int64(8*f.Words()); got < want {
		t.Fatalf("oversized heap words unaccounted: Bytes=%d, want >= %d", got, want)
	}
	parent := buildFlat(&a, []uint8{depa.Cont})
	if eng, heb, _ := depa.RelFlat(parent, f); !eng || !heb {
		t.Fatal("shallow ancestor must precede deep flat label")
	}
	sib := parent.Extend(&a, depa.Child)
	if eng, heb, _ := depa.RelFlat(sib, f); !eng || heb {
		t.Fatal("deep cont-path strand must be English-after/Hebrew-before the child")
	}
}

// TestSlabWasteGauge positions the word-slab cursor 8 words shy of the
// end, then asks for an 11-word slice: the arena must roll to a fresh
// slab and report exactly the stranded 8 words on WasteBytes.
func TestSlabWasteGauge(t *testing.T) {
	var a depa.Arena
	defer a.Release()
	const slab = 2048
	// A flat built to depth 320 consumes sum ceil(k/32) for k=1..320
	// = 32·(1+…+10) = 1760 words and ends holding 10.
	f := depa.NewFlat(&a)
	for f.Depth() < 320 {
		f = f.Extend(&a, depa.Cont)
	}
	// 280 one-word extends of fresh roots bring the cursor to 2040.
	for i := 0; i < 280; i++ {
		depa.NewFlat(&a).Extend(&a, depa.Child)
	}
	if a.WasteBytes() != 0 {
		t.Fatalf("premature waste: %d", a.WasteBytes())
	}
	// Extending f needs 11 contiguous words; only 8 remain.
	f.Extend(&a, depa.Child)
	if got := a.WasteBytes(); got != 8*8 {
		t.Fatalf("slab rollover waste = %d bytes, want 64", got)
	}
	a.Release()
	if a.WasteBytes() != 0 {
		t.Fatal("Release must zero the waste gauge")
	}
}

func TestArenaRecycle(t *testing.T) {
	var a depa.Arena
	l := build(&a, []uint8{depa.Child, depa.Sync})
	f := buildFlat(&a, []uint8{depa.Child, depa.Sync})
	if a.Bytes() == 0 {
		t.Fatal("arena reported zero bytes after allocations")
	}
	_, _ = l, f
	a.Release()
	if a.Bytes() != 0 {
		t.Fatal("Release must zero the byte count")
	}
	// Reuse after release must hand out valid labels again, including
	// recycled chunk nodes (33 components forces a freeze).
	p := make([]uint8, 33)
	for i := range p {
		p[i] = depa.Cont
	}
	l2 := build(&a, p)
	if l2.Depth() != 33 || l2.FullWords() != 1 {
		t.Fatal("arena unusable after Release")
	}
}

func TestNilArenaHeapFallback(t *testing.T) {
	p := make([]uint8, 40) // crosses a word boundary: heap chunk nodes too
	for i := range p {
		p[i] = depa.Sync
	}
	l := build(nil, p)
	if l.Depth() != 40 || l.FullWords() != 1 {
		t.Fatal("nil-arena cord labels must work")
	}
	f := buildFlat(nil, p)
	if f.Depth() != 40 {
		t.Fatal("nil-arena flat labels must work")
	}
	if (*depa.Arena)(nil).Bytes() != 0 || (*depa.Arena)(nil).WasteBytes() != 0 {
		t.Fatal("nil arena gauges")
	}
	(*depa.Arena)(nil).Release()
}

func TestMemBytes(t *testing.T) {
	if depa.LabelBytes != 16 {
		t.Fatalf("cord label header = %d bytes, want 16", depa.LabelBytes)
	}
	if depa.ChunkBytes != 24 {
		t.Fatalf("chunk node = %d bytes, want 24", depa.ChunkBytes)
	}
	var a depa.Arena
	defer a.Release()
	deep := depa.NewLabel(&a)
	for i := 0; i < 100; i++ {
		deep = deep.Extend(&a, depa.Cont)
	}
	if deep.MemBytes() != depa.LabelBytes {
		t.Fatal("cord MemBytes must count only the header — chunks are shared")
	}
	f := buildFlat(&a, []uint8{depa.Child})
	if f.MemBytes() <= 8 {
		t.Fatal("flat MemBytes must include the packed words")
	}
}

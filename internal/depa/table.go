// Offline label tables: bulk construction of fork-path labels from a
// recorded strand forest, without a live scheduler or arena.
//
// A fork-path label is a pure function of the path of branch decisions
// from the root — nothing else. Online, Extend computes it one strand
// at a time as the tracer observes branches; offline, a capture's
// structure events fix every path up front, so the whole label set can
// be computed in bulk: one serial O(1)-per-strand index pass derives
// each strand's tail word, frozen-chunk anchor, and depth from its
// parent's, and then any number of workers materialize the Label,
// chunk, and Flat records over disjoint index ranges. The fill is
// embarrassingly parallel even on a pure chain (every cross-reference
// is by array index, and taking an element's address needs no
// ordering), which is what makes the replay rebuild scale where the
// order-maintenance substrate — one mutable list — cannot.
//
// The table reproduces the online construction exactly: one chunk node
// per freeze point, prev-linked to the parent's anchor, so chunk
// sharing is structural and the LCA-skip compare in Rel examines the
// same words it would on Extend-built labels.
package depa

import (
	"fmt"
	"sync"
	"unsafe"
)

// TableConfig configures BuildTable.
type TableConfig struct {
	// Workers is the number of concurrent fill workers; values below 2
	// fill serially.
	Workers int
	// FlatDepth, when positive, additionally builds packed Flat copies
	// for every strand at depth <= FlatDepth — the invariant the hybrid
	// substrate maintains online (a strand has a flat iff its parent had
	// one below the threshold, which closes to exactly depth <= FlatDepth).
	FlatDepth int
}

// Table is a read-only fork-path label set built by BuildTable: one
// Label per strand (indexed as the input arrays were), the shared
// frozen chunks, and optional Flat copies. Immutable after BuildTable
// returns; any number of goroutines may query concurrently.
type Table struct {
	labels    []Label
	chunks    []chunk
	flats     []Flat
	hasFlat   []bool
	maxDepth  int
	flatWords int
	segWork   []int64 // fill work units (labels + chunks) per worker segment
}

// BuildTable computes the labels of a strand forest given, for each
// strand i in a topological order (parents before children):
//
//   - parent[i]: the index of the strand it forked from, -1 for a root.
//   - comp[i]: the branch component it appended (Child, Cont, or Sync);
//     ignored for roots.
//
// The result is bit- and structure-identical to extending labels one
// strand at a time in the same order: same words, same chunk-sharing
// shape, so Rel/LeftOf verdicts and compare-word counts agree with an
// online run over the same forest.
func BuildTable(parent []int32, comp []uint8, cfg TableConfig) (*Table, error) {
	n := len(parent)
	if len(comp) != n {
		return nil, fmt.Errorf("depa: table: %d parents but %d components", n, len(comp))
	}

	// Serial index pass: the per-strand recurrence. A strand's tail
	// always holds depth%32 components (a freeze empties it), so the
	// shift position follows from the parent's depth alone.
	depth := make([]int32, n)
	tail := make([]uint64, n)
	anchor := make([]int32, n) // index of the last frozen chunk; -1 none
	var chWord []uint64
	var chPrev []int32
	var chOwner []int32 // the strand whose extension froze the chunk
	maxDepth := int32(0)
	for i := 0; i < n; i++ {
		p := parent[i]
		if p < 0 {
			anchor[i] = -1
			continue
		}
		if int(p) >= i {
			return nil, fmt.Errorf("depa: table: strand %d has parent %d out of topological order", i, p)
		}
		c := comp[i]
		if c == 0 || c > Sync {
			return nil, fmt.Errorf("depa: table: strand %d has invalid component %d", i, c)
		}
		r := uint(depth[p]) % compsPerWord
		w := tail[p] | uint64(c)<<(62-2*r)
		depth[i] = depth[p] + 1
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
		if r == compsPerWord-1 {
			anchor[i] = int32(len(chWord))
			chWord = append(chWord, w)
			chPrev = append(chPrev, anchor[p])
			chOwner = append(chOwner, int32(i))
			tail[i] = 0
		} else {
			anchor[i] = anchor[p]
			tail[i] = w
		}
	}

	t := &Table{
		labels:   make([]Label, n),
		chunks:   make([]chunk, len(chWord)),
		maxDepth: int(maxDepth),
	}

	// Flat sizing: ceil(depth/32) packed words per eligible strand,
	// carved out of one shared backing slice by prefix offsets.
	var flatOff []int32
	var flatBack []uint64
	if cfg.FlatDepth > 0 {
		t.flats = make([]Flat, n)
		t.hasFlat = make([]bool, n)
		flatOff = make([]int32, n+1)
		for i := 0; i < n; i++ {
			flatOff[i+1] = flatOff[i]
			if int(depth[i]) <= cfg.FlatDepth {
				t.hasFlat[i] = true
				flatOff[i+1] += (depth[i] + compsPerWord - 1) / compsPerWord
			}
		}
		flatBack = make([]uint64, flatOff[n])
		t.flatWords = len(flatBack)
	}

	// Fill pass: materialize labels[i], the chunk strand i froze (each
	// chunk has exactly one owner, so writes are disjoint), and the flat
	// copy. Every cross-reference is &t.chunks[j] — an address, valid
	// before the element is filled — so contiguous index ranges are
	// fully independent whatever the forest's shape.
	fill := func(lo, hi int) int64 {
		work := int64(0)
		for i := lo; i < hi; i++ {
			var fz *chunk
			if a := anchor[i]; a >= 0 {
				fz = &t.chunks[a]
				if chOwner[a] == int32(i) {
					var prev *chunk
					if pi := chPrev[a]; pi >= 0 {
						prev = &t.chunks[pi]
					}
					fz.prev, fz.word, fz.idx = prev, chWord[a], uint32(depth[i]/compsPerWord-1)
					work++
				}
			}
			t.labels[i] = Label{frozen: fz, tail: tail[i]}
			work++
			if t.hasFlat != nil && t.hasFlat[i] {
				dst := flatBack[flatOff[i]:flatOff[i+1]]
				full := int(depth[i]) / compsPerWord
				for k, c := full-1, anchor[i]; k >= 0; k, c = k-1, chPrev[c] {
					dst[k] = chWord[c]
				}
				if depth[i]%compsPerWord != 0 {
					dst[len(dst)-1] = tail[i]
				}
				t.flats[i] = Flat{words: dst, n: uint32(depth[i])}
			}
		}
		return work
	}

	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	if workers < 2 {
		t.segWork = []int64{fill(0, n)}
		return t, nil
	}
	t.segWork = make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t.segWork[w] = fill(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return t, nil
}

// Len returns the number of labels in the table.
func (t *Table) Len() int { return len(t.labels) }

// Label returns strand i's cord label.
func (t *Table) Label(i int) *Label { return &t.labels[i] }

// Flat returns strand i's packed copy, or nil when the table was built
// without flats or the strand is deeper than FlatDepth.
func (t *Table) Flat(i int) *Flat {
	if t.hasFlat == nil || !t.hasFlat[i] {
		return nil
	}
	return &t.flats[i]
}

// Chunks returns the number of frozen chunk nodes in the table.
func (t *Table) Chunks() int { return len(t.chunks) }

// MaxDepth returns the deepest fork path in the table.
func (t *Table) MaxDepth() int { return t.maxDepth }

// SegmentWork returns the fill work units (labels plus frozen chunks
// materialized) per worker segment — the machine-independent balance
// evidence that the fill parallelized.
func (t *Table) SegmentWork() []int64 { return t.segWork }

// MemBytes returns the table's label footprint, item for item what the
// online substrate would have accounted for the same forest: one label
// header per strand, one chunk node per freeze, and each flat's header
// plus packed words.
func (t *Table) MemBytes() int {
	mem := len(t.labels)*LabelBytes + len(t.chunks)*ChunkBytes + 8*t.flatWords
	if t.hasFlat != nil {
		for _, h := range t.hasFlat {
			if h {
				mem += int(unsafe.Sizeof(Flat{}))
			}
		}
	}
	return mem
}

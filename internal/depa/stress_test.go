package depa_test

import (
	"sync"
	"testing"

	"sforder/internal/depa"
)

// TestConcurrentRelDuringExtends mirrors the substrate's sharing
// pattern under the race detector: one deep parent label whose frozen
// chunk chain is shared by every worker, while each worker extends it
// through a private arena and compares its strands against the others'
// published labels. Labels and chunks are immutable, so no
// synchronization is required — the detector verifies it.
func TestConcurrentRelDuringExtends(t *testing.T) {
	var shared depa.Arena
	defer shared.Release()
	parent := depa.NewLabel(&shared)
	for i := 0; i < 200; i++ { // several frozen chunks to walk and share
		parent = parent.Extend(&shared, depa.Cont)
	}

	// One distinct subtree root per worker: worker w sits under
	// parent·Child^w·Cont, so worker 0's subtree takes the Cont branch
	// at the fork every other worker's takes as Child — English puts
	// the Child side first, Hebrew the Cont side.
	const workers = 4
	published := make([]*depa.Label, workers)
	for w := range published {
		l := parent
		for i := 0; i < w; i++ {
			l = l.Extend(&shared, depa.Child)
		}
		published[w] = l.Extend(&shared, depa.Cont)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			other := published[0]
			wantEng, wantHeb := true, false // Child side vs worker 0's Cont
			if w == 0 {
				other = published[1]
				wantEng, wantHeb = false, true
			}
			var a depa.Arena
			defer a.Release()
			l := published[w]
			for i := 0; i < 5000; i++ {
				l = l.Extend(&a, depa.Cont)
				eng, heb, cw := depa.Rel(l, other)
				if eng != wantEng || heb != wantHeb || cw != 1 {
					// The fork word is the boundary pair, so every compare
					// examines exactly one word despite the growing depth.
					t.Errorf("worker %d iter %d: (%v, %v, %d), want (%v, %v, 1)",
						w, i, eng, heb, cw, wantEng, wantHeb)
					return
				}
				if eng, heb, _ := depa.Rel(parent, l); !eng || !heb {
					t.Errorf("worker %d iter %d: ancestor verdict (%v, %v)", w, i, eng, heb)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestReleaseRecycleChunks cycles build → concurrent readers → Release
// so later rounds run on recycled label, chunk, and word slabs. Under
// -race this checks the pool hand-off publishes the reused memory.
func TestReleaseRecycleChunks(t *testing.T) {
	for round := 0; round < 8; round++ {
		var a depa.Arena
		base := depa.NewLabel(&a)
		for i := 0; i < 600; i++ { // ~19 chunk nodes per round
			base = base.Extend(&a, depa.Cont)
		}
		left := base.Extend(&a, depa.Child)
		right := base.Extend(&a, depa.Cont)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 2000; i++ {
					if eng, _, cw := depa.Rel(left, right); !eng || cw != 1 {
						t.Errorf("round %d: left/right English=%v cmpWords=%d", round, eng, cw)
						return
					}
				}
			}()
		}
		wg.Wait()
		if a.Bytes() == 0 {
			t.Fatalf("round %d: no arena bytes", round)
		}
		a.Release()
	}
}

// Package oracle is the ground-truth race detector used only in tests:
// it logs every instrumented access during execution and afterwards
// checks all conflicting pairs against the exhaustive transitive closure
// of the recorded dag. It is quadratic per location and keeps the whole
// dag — everything the real detectors exist to avoid — but it is
// obviously correct, which is the point.
package oracle

import (
	"sort"
	"sync"

	"sforder/internal/dag"
	"sforder/internal/sched"
)

type access struct {
	s     *sched.Strand
	write bool
}

// Logger implements sched.AccessChecker by recording accesses per
// address.
type Logger struct {
	mu  sync.Mutex
	byA map[uint64][]access
}

// NewLogger returns an empty access logger.
func NewLogger() *Logger { return &Logger{byA: map[uint64][]access{}} }

// Read implements sched.AccessChecker.
func (o *Logger) Read(s *sched.Strand, addr uint64) { o.log(s, addr, false) }

// Write implements sched.AccessChecker.
func (o *Logger) Write(s *sched.Strand, addr uint64) { o.log(s, addr, true) }

func (o *Logger) log(s *sched.Strand, addr uint64, write bool) {
	o.mu.Lock()
	o.byA[addr] = append(o.byA[addr], access{s, write})
	o.mu.Unlock()
}

// RacyAddrs returns the sorted addresses on which a determinacy race
// exists: two accesses by logically parallel strands, at least one a
// write. rec must be the recorder that observed the same execution.
func (o *Logger) RacyAddrs(rec *dag.Recorder) []uint64 {
	cl := dag.NewClosure(rec.G)
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []uint64
	for addr, accs := range o.byA {
		if o.racy(cl, rec, accs) {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (o *Logger) racy(cl *dag.Closure, rec *dag.Recorder, accs []access) bool {
	for i, a := range accs {
		for _, b := range accs[:i] {
			if !a.write && !b.write {
				continue
			}
			if a.s == b.s {
				continue
			}
			na, nb := rec.NodeOf(a.s), rec.NodeOf(b.s)
			if !cl.Reachable(na, nb) && !cl.Reachable(nb, na) {
				return true
			}
		}
	}
	return false
}

// Accesses returns the total number of logged accesses.
func (o *Logger) Accesses() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, a := range o.byA {
		n += len(a)
	}
	return n
}

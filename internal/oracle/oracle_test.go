package oracle_test

import (
	"testing"

	"sforder/internal/dag"
	"sforder/internal/oracle"
	"sforder/internal/sched"
)

func record(t *testing.T, main func(*sched.Task)) (*oracle.Logger, *dag.Recorder) {
	t.Helper()
	log := oracle.NewLogger()
	rec := dag.NewRecorder()
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: rec, Checker: log}, main); err != nil {
		t.Fatal(err)
	}
	return log, rec
}

func TestNoAccessesNoRaces(t *testing.T) {
	log, rec := record(t, func(t *sched.Task) {
		t.Spawn(func(*sched.Task) {})
		t.Sync()
	})
	if got := log.RacyAddrs(rec); len(got) != 0 {
		t.Errorf("RacyAddrs = %v", got)
	}
	if log.Accesses() != 0 {
		t.Error("no accesses were made")
	}
}

func TestSerialAccessesNotRacy(t *testing.T) {
	log, rec := record(t, func(t *sched.Task) {
		t.Write(1)
		t.Read(1)
		t.Spawn(func(c *sched.Task) { c.Write(2) })
		t.Sync()
		t.Write(2) // ordered after the child by the sync
	})
	if got := log.RacyAddrs(rec); len(got) != 0 {
		t.Errorf("RacyAddrs = %v", got)
	}
}

func TestParallelWritesRacy(t *testing.T) {
	log, rec := record(t, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) { c.Write(5) })
		t.Write(5)
		t.Sync()
	})
	got := log.RacyAddrs(rec)
	if len(got) != 1 || got[0] != 5 {
		t.Errorf("RacyAddrs = %v, want [5]", got)
	}
}

func TestParallelReadsNotRacy(t *testing.T) {
	log, rec := record(t, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) { c.Read(5) })
		t.Read(5)
		t.Sync()
	})
	if got := log.RacyAddrs(rec); len(got) != 0 {
		t.Errorf("two reads never race, got %v", got)
	}
}

func TestReadWriteAcrossFutureRacy(t *testing.T) {
	log, rec := record(t, func(t *sched.Task) {
		h := t.Create(func(c *sched.Task) any { c.Read(9); return nil })
		t.Write(9)
		t.Get(h)
	})
	got := log.RacyAddrs(rec)
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("RacyAddrs = %v, want [9]", got)
	}
}

func TestSameStrandConflictsNotRacy(t *testing.T) {
	log, rec := record(t, func(t *sched.Task) {
		t.Write(3)
		t.Write(3)
		t.Read(3)
	})
	if got := log.RacyAddrs(rec); len(got) != 0 {
		t.Errorf("same-strand accesses raced: %v", got)
	}
	if log.Accesses() != 3 {
		t.Errorf("Accesses = %d, want 3", log.Accesses())
	}
}

func TestRacyAddrsSorted(t *testing.T) {
	log, rec := record(t, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) {
			c.Write(30)
			c.Write(10)
			c.Write(20)
		})
		t.Write(20)
		t.Write(30)
		t.Write(10)
		t.Sync()
	})
	got := log.RacyAddrs(rec)
	want := []uint64{10, 20, 30}
	if len(got) != 3 {
		t.Fatalf("RacyAddrs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RacyAddrs = %v, want sorted %v", got, want)
		}
	}
}

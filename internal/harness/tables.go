package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"sforder/internal/detect"
	"sforder/internal/obsv"
	"sforder/internal/workload"
)

// Fig3Row is one row of the Figure 3 characteristics table.
type Fig3Row struct {
	Bench   string
	N, B    int
	Reads   uint64
	Writes  uint64
	Queries uint64
	Futures uint64
	Nodes   uint64
}

// Fig3 characterizes every benchmark: one serial full-detection run with
// a stats registry attached gathers all columns at once — every column
// is read from the registry snapshot rather than from per-component
// getters, so the table and the -stats/-http surfaces can never
// disagree.
func Fig3(benches []*workload.Benchmark) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, b := range benches {
		res, err := Run(b, Config{
			Detector: SFOrder,
			Mode:     Full,
			Serial:   true,
			Registry: obsv.NewRegistry(),
		})
		if err != nil {
			return nil, err
		}
		s := res.Stats
		rows = append(rows, Fig3Row{
			Bench:   b.Name,
			N:       b.N,
			B:       b.B,
			Reads:   uint64(s["sched.reads"]),
			Writes:  uint64(s["sched.writes"]),
			Queries: uint64(s["reach.queries"]),
			Futures: uint64(s["sched.futures"]) - 1, // exclude the root, as the paper counts created futures
			Nodes:   uint64(s["sched.strands"]),
		})
	}
	return rows, nil
}

// PrintFig3 renders the rows like the paper's Figure 3.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tN\tB\t# reads\t# writes\t# queries\t# futures\t# nodes")
	for _, r := range rows {
		base := ""
		if r.B > 0 {
			base = fmt.Sprint(r.B)
		} else {
			base = "-"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%d\t%d\n",
			r.Bench, r.N, base, sci(r.Reads), sci(r.Writes), sci(r.Queries), r.Futures, r.Nodes)
	}
	tw.Flush()
}

// sci renders large counts in the paper's m.mm × 10^e style.
func sci(v uint64) string {
	if v < 100000 {
		return fmt.Sprint(v)
	}
	f := float64(v)
	e := 0
	for f >= 10 {
		f /= 10
		e++
	}
	return fmt.Sprintf("%.2fe%d", f, e)
}

// Fig4Cell is one timing measurement of the Figure 4 grid.
type Fig4Cell struct {
	Seconds  float64
	Overhead float64 // vs the base run at the same worker count
	Scale    float64 // T1 of the same configuration / this time
}

// Fig4Row is one benchmark's two lines (reach and full) of Figure 4.
type Fig4Row struct {
	Bench    string
	Workers  int // the "TP" worker count used
	BaseT1   float64
	BaseTP   Fig4Cell
	ByConfig map[string]Fig4Cell // keys like "MultiBags/reach/T1", "SF-Order/full/TP"
}

func key(d Detector, m Mode, tp bool) string {
	suffix := "T1"
	if tp {
		suffix = "TP"
	}
	return fmt.Sprintf("%s/%s/%s", d, m, suffix)
}

// Fig4 measures the full grid for the given benchmarks. repeats selects
// best-of-n timing. MultiBags runs only at T1 (it is sequential, which
// is the point of the comparison); the parallel detectors run at one
// worker and at workers workers.
func Fig4(benches []*workload.Benchmark, workers, repeats int) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, b := range benches {
		row := Fig4Row{Bench: b.Name, Workers: workers, ByConfig: map[string]Fig4Cell{}}

		baseT1, err := RunBest(b, Config{Mode: Base, Serial: true}, repeats)
		if err != nil {
			return nil, err
		}
		row.BaseT1 = baseT1.Elapsed.Seconds()
		baseTP, err := RunBest(b, Config{Mode: Base, Workers: workers}, repeats)
		if err != nil {
			return nil, err
		}
		row.BaseTP = Fig4Cell{
			Seconds: baseTP.Elapsed.Seconds(),
			Scale:   row.BaseT1 / baseTP.Elapsed.Seconds(),
		}

		for _, mode := range []Mode{Reach, Full} {
			// MultiBags: serial executor only.
			mb, err := RunBest(b, Config{Detector: MultiBags, Mode: mode, Serial: true}, repeats)
			if err != nil {
				return nil, err
			}
			row.ByConfig[key(MultiBags, mode, false)] = Fig4Cell{
				Seconds:  mb.Elapsed.Seconds(),
				Overhead: mb.Elapsed.Seconds() / row.BaseT1,
			}
			for _, det := range []Detector{FOrder, SFOrder} {
				t1, err := RunBest(b, Config{Detector: det, Mode: mode, Workers: 1}, repeats)
				if err != nil {
					return nil, err
				}
				row.ByConfig[key(det, mode, false)] = Fig4Cell{
					Seconds:  t1.Elapsed.Seconds(),
					Overhead: t1.Elapsed.Seconds() / row.BaseT1,
				}
				tp, err := RunBest(b, Config{Detector: det, Mode: mode, Workers: workers}, repeats)
				if err != nil {
					return nil, err
				}
				row.ByConfig[key(det, mode, true)] = Fig4Cell{
					Seconds:  tp.Elapsed.Seconds(),
					Overhead: tp.Elapsed.Seconds() / row.BaseTP.Seconds,
					Scale:    t1.Elapsed.Seconds() / tp.Elapsed.Seconds(),
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig4 renders the grid like the paper's Figure 4 (times in
// seconds; parenthesized overhead vs base; bracketed scalability vs the
// same configuration's T1).
func PrintFig4(w io.Writer, rows []Fig4Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tbase(T1)\tbase(TP)\tconfig\tMultiBags(T1)\tF-Order(T1)\tSF-Order(T1)\tF-Order(TP)\tSF-Order(TP)")
	for _, r := range rows {
		for i, mode := range []Mode{Reach, Full} {
			b1, bp := "", ""
			if i == 0 {
				b1 = fmt.Sprintf("%.3f", r.BaseT1)
				bp = fmt.Sprintf("%.3f [%.2fx]", r.BaseTP.Seconds, r.BaseTP.Scale)
			}
			name := ""
			if i == 0 {
				name = r.Bench
			}
			mb := r.ByConfig[key(MultiBags, mode, false)]
			f1 := r.ByConfig[key(FOrder, mode, false)]
			s1 := r.ByConfig[key(SFOrder, mode, false)]
			fp := r.ByConfig[key(FOrder, mode, true)]
			sp := r.ByConfig[key(SFOrder, mode, true)]
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.3f (%.2fx)\t%.3f (%.2fx)\t%.3f (%.2fx)\t%.3f [%.2fx]\t%.3f [%.2fx]\n",
				name, b1, bp, mode,
				mb.Seconds, mb.Overhead,
				f1.Seconds, f1.Overhead,
				s1.Seconds, s1.Overhead,
				fp.Seconds, fp.Scale,
				sp.Seconds, sp.Scale)
		}
	}
	tw.Flush()
}

// Fig5Row is one row of the Figure 5 memory table.
type Fig5Row struct {
	Bench        string
	FOrderMB     float64
	SFOrderMB    float64
	RatioSFoverF float64
}

// Fig5 measures reachability-maintenance memory under the reach
// configuration (serial runs keep the measurement deterministic). The
// memory column is read from each run's registry snapshot
// (reach.mem_bytes).
func Fig5(benches []*workload.Benchmark) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, b := range benches {
		fo, err := Run(b, Config{Detector: FOrder, Mode: Reach, Serial: true, Registry: obsv.NewRegistry()})
		if err != nil {
			return nil, err
		}
		sf, err := Run(b, Config{Detector: SFOrder, Mode: Reach, Serial: true, Registry: obsv.NewRegistry()})
		if err != nil {
			return nil, err
		}
		foMem := fo.Stats["reach.mem_bytes"]
		sfMem := sf.Stats["reach.mem_bytes"]
		const mb = 1 << 20
		row := Fig5Row{
			Bench:     b.Name,
			FOrderMB:  float64(foMem) / mb,
			SFOrderMB: float64(sfMem) / mb,
		}
		if foMem > 0 {
			row.RatioSFoverF = float64(sfMem) / float64(foMem)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig5 renders the memory table (MB; the paper reports GB at its
// much larger inputs).
func PrintFig5(w io.Writer, rows []Fig5Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tF-Order (MB)\tSF-Order (MB)\tSF/F ratio")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.4f\n", r.Bench, r.FOrderMB, r.SFOrderMB, r.RatioSFoverF)
	}
	tw.Flush()
}

// Ablation compares SF-Order's ReadersAll (the paper's shipped choice)
// with ReadersLR (the 2k theory bound) on one benchmark, full detection.
type AblationRow struct {
	Bench      string
	AllSeconds float64
	LRSeconds  float64
	AllHistMB  float64
	LRHistMB   float64
}

// AblationReaderPolicy measures ABL1 from DESIGN.md.
func AblationReaderPolicy(benches []*workload.Benchmark, repeats int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, b := range benches {
		all, err := RunBest(b, Config{Detector: SFOrder, Mode: Full, Serial: true, Policy: detect.ReadersAll}, repeats)
		if err != nil {
			return nil, err
		}
		lr, err := RunBest(b, Config{Detector: SFOrder, Mode: Full, Serial: true, Policy: detect.ReadersLR}, repeats)
		if err != nil {
			return nil, err
		}
		const mb = 1 << 20
		rows = append(rows, AblationRow{
			Bench:      b.Name,
			AllSeconds: all.Elapsed.Seconds(),
			LRSeconds:  lr.Elapsed.Seconds(),
			AllHistMB:  float64(all.HistMem) / mb,
			LRHistMB:   float64(lr.HistMem) / mb,
		})
	}
	return rows, nil
}

// PrintAblation renders the reader-policy ablation.
func PrintAblation(w io.Writer, rows []AblationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tall: time(s)\tlr: time(s)\tall: hist MB\tlr: hist MB")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\n", r.Bench, r.AllSeconds, r.LRSeconds, r.AllHistMB, r.LRHistMB)
	}
	tw.Flush()
}

package harness_test

import (
	"testing"

	"sforder/internal/harness"
	"sforder/internal/obsv"
	"sforder/internal/workload"
)

// TestFastPathLockReduction is the PR's acceptance criterion: on mm and
// hw in full mode, hist.lock_acquires with the fast path on must be at
// most 1/5 of the fast path off (the batch amortization factor on
// loop-heavy workloads is far larger in practice).
func TestFastPathLockReduction(t *testing.T) {
	for _, bench := range []*workload.Benchmark{workload.MM(32, 8), workload.HW(2, 8, 128)} {
		locks := map[bool]int64{}
		for _, fast := range []bool{false, true} {
			res, err := harness.Run(bench, harness.Config{
				Detector: harness.SFOrder, Mode: harness.Full, Serial: true,
				FastPath: fast, Registry: obsv.NewRegistry(),
			})
			if err != nil {
				t.Fatalf("%s fastpath=%v: %v", bench.Name, fast, err)
			}
			if res.Races != 0 {
				t.Fatalf("%s fastpath=%v: benchmark must be race-free, got %d races", bench.Name, fast, res.Races)
			}
			locks[fast] = res.Stats["hist.lock_acquires"]
		}
		if locks[false] == 0 {
			t.Fatalf("%s: no lock acquisitions counted with fast path off", bench.Name)
		}
		if locks[true]*5 > locks[false] {
			t.Errorf("%s: lock acquires %d (on) vs %d (off): want ≤ 1/5", bench.Name, locks[true], locks[false])
		}
	}
}

// TestFastPathParallelAgreesWithSerial: the fast path must produce the
// same (zero) race verdicts in parallel full mode on the paper
// benchmarks, with fastpath counters flowing through the registry.
func TestFastPathParallelAgreesWithSerial(t *testing.T) {
	bench := workload.MM(32, 8)
	res, err := harness.Run(bench, harness.Config{
		Detector: harness.SFOrder, Mode: harness.Full, Workers: 4,
		FastPath: true, Registry: obsv.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Races != 0 {
		t.Fatalf("mm must be race-free, got %d races", res.Races)
	}
	if res.Stats["hist.batch_flushes"] == 0 {
		t.Error("hist.batch_flushes missing from the registry snapshot")
	}
}

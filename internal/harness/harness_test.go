package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"sforder/internal/detect"
	"sforder/internal/harness"
	"sforder/internal/workload"
)

func testBenches() []*workload.Benchmark {
	return []*workload.Benchmark{workload.MM(16, 8), workload.Ferret(4, 32)}
}

func TestRunAllDetectorModes(t *testing.T) {
	b := workload.MM(16, 8)
	cases := []harness.Config{
		{Mode: harness.Base, Serial: true},
		{Mode: harness.Base, Workers: 2},
		{Detector: harness.SFOrder, Mode: harness.Reach, Serial: true},
		{Detector: harness.SFOrder, Mode: harness.Full, Workers: 2},
		{Detector: harness.SFOrder, Mode: harness.Full, Serial: true, Policy: detect.ReadersLR},
		{Detector: harness.FOrder, Mode: harness.Reach, Workers: 2},
		{Detector: harness.FOrder, Mode: harness.Full, Serial: true},
		{Detector: harness.MultiBags, Mode: harness.Reach, Serial: true},
		{Detector: harness.MultiBags, Mode: harness.Full, Serial: true},
	}
	for _, cfg := range cases {
		res, err := harness.Run(b, cfg)
		if err != nil {
			t.Fatalf("%v/%v: %v", cfg.Detector, cfg.Mode, err)
		}
		if res.Races != 0 {
			t.Errorf("%v/%v: unexpected races", cfg.Detector, cfg.Mode)
		}
		if cfg.Mode != harness.Base && res.ReachMem <= 0 {
			t.Errorf("%v/%v: no reach memory accounted", cfg.Detector, cfg.Mode)
		}
		if cfg.Mode == harness.Full && res.Queries == 0 {
			t.Errorf("%v/%v: no queries served", cfg.Detector, cfg.Mode)
		}
	}
}

func TestMultiBagsRejectsParallel(t *testing.T) {
	_, err := harness.Run(workload.MM(16, 8), harness.Config{
		Detector: harness.MultiBags, Mode: harness.Full, Workers: 2,
	})
	if err == nil {
		t.Fatal("MultiBags must reject parallel execution")
	}
}

func TestLRPolicyRequiresSFOrder(t *testing.T) {
	_, err := harness.Run(workload.MM(16, 8), harness.Config{
		Detector: harness.FOrder, Mode: harness.Full, Serial: true, Policy: detect.ReadersLR,
	})
	if err == nil {
		t.Fatal("ReadersLR with F-Order must be rejected")
	}
}

func TestFig3(t *testing.T) {
	rows, err := harness.Fig3(testBenches())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Reads == 0 || r.Writes == 0 || r.Queries == 0 || r.Futures == 0 || r.Nodes == 0 {
			t.Errorf("incomplete row: %+v", r)
		}
	}
	var buf bytes.Buffer
	harness.PrintFig3(&buf, rows)
	out := buf.String()
	for _, want := range []string{"bench", "mm", "ferret", "# queries"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4(t *testing.T) {
	rows, err := harness.Fig4(testBenches()[:1], 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.BaseT1 <= 0 {
		t.Error("base T1 not measured")
	}
	if len(row.ByConfig) != 10 {
		t.Errorf("expected 10 cells (2 modes × [MB-T1 + 2 detectors × 2 P]), got %d", len(row.ByConfig))
	}
	var buf bytes.Buffer
	harness.PrintFig4(&buf, rows)
	out := buf.String()
	for _, want := range []string{"reach", "full", "SF-Order(T1)", "mm"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5(t *testing.T) {
	rows, err := harness.Fig5(testBenches())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FOrderMB <= 0 || r.SFOrderMB <= 0 {
			t.Errorf("memory not measured: %+v", r)
		}
	}
	var buf bytes.Buffer
	harness.PrintFig5(&buf, rows)
	if !strings.Contains(buf.String(), "SF/F ratio") {
		t.Error("Fig5 output malformed")
	}
}

func TestFig5SFOrderSmallerOnFutureHeavy(t *testing.T) {
	// The headline qualitative claim of Figure 5: SF-Order's bitmaps
	// are much smaller than F-Order's hash tables on future-heavy runs.
	rows, err := harness.Fig5([]*workload.Benchmark{workload.SW(64, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].SFOrderMB >= rows[0].FOrderMB {
		t.Errorf("SF-Order (%0.3f MB) should use less reachability memory than F-Order (%0.3f MB)",
			rows[0].SFOrderMB, rows[0].FOrderMB)
	}
}

func TestAblationReaderPolicy(t *testing.T) {
	rows, err := harness.AblationReaderPolicy(testBenches()[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].AllSeconds <= 0 || rows[0].LRSeconds <= 0 {
		t.Error("ablation not measured")
	}
	var buf bytes.Buffer
	harness.PrintAblation(&buf, rows)
	if !strings.Contains(buf.String(), "lr: time(s)") {
		t.Error("ablation output malformed")
	}
}

func TestRunBestPicksMinimum(t *testing.T) {
	res, err := harness.RunBest(workload.MM(16, 8), harness.Config{Mode: harness.Base, Serial: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestStrings(t *testing.T) {
	if harness.SFOrder.String() != "SF-Order" || harness.MultiBags.String() != "MultiBags" {
		t.Error("detector strings")
	}
	if harness.Base.String() != "base" || harness.Full.String() != "full" {
		t.Error("mode strings")
	}
	if harness.DefaultWorkers() < 2 {
		t.Error("DefaultWorkers < 2")
	}
}

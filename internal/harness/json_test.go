package harness_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sforder/internal/harness"
	"sforder/internal/workload"
)

func TestReportJSONRoundTrip(t *testing.T) {
	rows, err := harness.Fig3([]*workload.Benchmark{workload.MM(16, 8)})
	if err != nil {
		t.Fatal(err)
	}
	rep := &harness.Report{
		Env:  harness.Env{GOMAXPROCS: 1, Workers: 2, Repeats: 1, Scale: "test"},
		Fig3: rows,
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded["env"] == nil || decoded["fig3"] == nil {
		t.Errorf("missing keys: %s", buf.String())
	}
	if decoded["fig4"] != nil {
		t.Error("unmeasured artifacts must be omitted")
	}
}

func TestFig4RowJSONCells(t *testing.T) {
	rows, err := harness.Fig4([]*workload.Benchmark{workload.MM(16, 8)}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(rows[0])
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`"bench":"mm"`,
		`"base_t1_seconds"`,
		"MultiBags/reach/T1",
		"SF-Order/full/TP",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig4 JSON missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "MultiBags/reach/TP") {
		t.Error("MultiBags must have no TP cell")
	}
	// Exactly 10 cells: 2 modes × (MultiBags T1 + 2 detectors × 2 P).
	if n := strings.Count(s, `"config"`); n != 10 {
		t.Errorf("cells = %d, want 10", n)
	}
}

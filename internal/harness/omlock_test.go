package harness_test

import (
	"testing"

	"sforder/internal/harness"
	"sforder/internal/obsv"
	"sforder/internal/workload"
)

// TestOMLockReduction is the PR's acceptance criterion (ABL8): on mm in
// reach mode at 4 workers, fine-grained bucket locking must cut the
// list-level OM lock acquisitions to at most half of the global-lock
// count (in practice the drop is far larger: the maintenance lock is
// only taken at splits and label exhaustion).
func TestOMLockReduction(t *testing.T) {
	bench := workload.MM(32, 8)
	locks := map[bool]int64{}
	for _, global := range []bool{true, false} {
		res, err := harness.Run(bench, harness.Config{
			Detector: harness.SFOrder, Mode: harness.Reach, Workers: 4,
			OMGlobalLock: global, Registry: obsv.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("omglobal=%v: %v", global, err)
		}
		locks[global] = res.Stats["om.lock_acquires"]
		if global {
			if res.Stats["om.bucket_locks"] != 0 {
				t.Errorf("global mode took %d bucket locks; expected none", res.Stats["om.bucket_locks"])
			}
		} else {
			if res.Stats["om.bucket_locks"] == 0 {
				t.Error("fine-grained mode reported no bucket locks")
			}
			if res.Stats["core.arena_bytes"] == 0 {
				t.Error("arena gauge reported no slab bytes")
			}
		}
	}
	if locks[true] == 0 {
		t.Fatal("no maintenance-lock acquisitions counted in global mode")
	}
	if locks[false]*2 > locks[true] {
		t.Errorf("om.lock_acquires %d (fine) vs %d (global): want ≥2× reduction",
			locks[false], locks[true])
	}
	t.Logf("om.lock_acquires: global=%d fine=%d (%.0f×)", locks[true], locks[false],
		float64(locks[true])/float64(locks[false]))
}

// TestOMAblationKnobsAgree: the ABL8 knob grid (global lock × arena)
// must not change measured results — counts, queries, and race-freedom
// are identical across all four variants in reach and full mode.
func TestOMAblationKnobsAgree(t *testing.T) {
	bench := workload.MM(16, 8)
	for _, mode := range []harness.Mode{harness.Reach, harness.Full} {
		var baseStrands, baseQueries uint64
		first := true
		for _, global := range []bool{false, true} {
			for _, noArena := range []bool{false, true} {
				res, err := harness.Run(bench, harness.Config{
					Detector: harness.SFOrder, Mode: mode, Workers: 2,
					OMGlobalLock: global, NoArena: noArena,
					FastPath: mode == harness.Full,
					Registry: obsv.NewRegistry(),
				})
				if err != nil {
					t.Fatalf("%v global=%v noarena=%v: %v", mode, global, noArena, err)
				}
				if res.Races != 0 {
					t.Fatalf("%v global=%v noarena=%v: %d races on race-free mm",
						mode, global, noArena, res.Races)
				}
				if noArena && res.Stats["core.arena_bytes"] != 0 {
					t.Errorf("%v: -noarena still reports %d arena bytes", mode, res.Stats["core.arena_bytes"])
				}
				if first {
					baseStrands, baseQueries = res.Counts.Strands, res.Queries
					first = false
					continue
				}
				if res.Counts.Strands != baseStrands {
					t.Errorf("%v global=%v noarena=%v: strands %d, want %d",
						mode, global, noArena, res.Counts.Strands, baseStrands)
				}
				if mode == harness.Full && res.Queries == 0 && baseQueries != 0 {
					t.Errorf("%v global=%v noarena=%v: no queries served", mode, global, noArena)
				}
			}
		}
	}
}

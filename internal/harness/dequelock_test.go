package harness_test

import (
	"testing"

	"sforder/internal/harness"
	"sforder/internal/obsv"
	"sforder/internal/workload"
)

// TestDequeLockReduction is the PR's acceptance criterion (ABL9): on mm
// in reach mode at 4 workers, the lock-free Chase–Lev deque must take
// essentially no scheduler locks on the job hot path — at least a 100×
// reduction against the mutex-deque ablation, which pays one
// sched.lock_acquires per push/pop/steal.
func TestDequeLockReduction(t *testing.T) {
	bench := workload.MM(32, 8)
	locks := map[bool]int64{}
	for _, lockDeque := range []bool{true, false} {
		res, err := harness.Run(bench, harness.Config{
			Detector: harness.SFOrder, Mode: harness.Reach, Workers: 4,
			LockDeque: lockDeque, Registry: obsv.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("lockdeque=%v: %v", lockDeque, err)
		}
		locks[lockDeque] = res.Stats["sched.lock_acquires"]
		if !lockDeque && res.Stats["sched.deque_bytes"] == 0 {
			t.Error("lock-free mode reported no deque ring bytes")
		}
	}
	if locks[false] != 0 {
		t.Errorf("lock-free scheduler took %d deque locks; expected none", locks[false])
	}
	if locks[true] == 0 {
		t.Fatal("mutex-deque ablation counted no lock acquisitions")
	}
	// With the lock-free count pinned to zero above, any nonzero mutex
	// count trivially clears 100×; the guard below keeps the criterion
	// meaningful if the fast path ever regresses to a nonzero count.
	if locks[false]*100 > locks[true] {
		t.Errorf("sched.lock_acquires %d (lock-free) vs %d (mutex): want ≥100× reduction",
			locks[false], locks[true])
	}
	t.Logf("sched.lock_acquires: mutex=%d lock-free=%d", locks[true], locks[false])
}

package harness

import (
	"encoding/json"
	"io"
)

// Report bundles every regenerated artifact for machine consumption
// (the cmd/sforder -json flag).
type Report struct {
	// Env describes the measurement environment.
	Env Env `json:"env"`
	// One field per artifact; nil slices mean "not measured".
	Fig3     []Fig3Row     `json:"fig3,omitempty"`
	Fig4     []Fig4Row     `json:"fig4,omitempty"`
	Fig5     []Fig5Row     `json:"fig5,omitempty"`
	Ablation []AblationRow `json:"ablation,omitempty"`
}

// Env captures the run conditions a reader needs to interpret numbers.
type Env struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Repeats    int    `json:"repeats"`
	Scale      string `json:"scale"`
}

// WriteJSON renders the report with stable formatting.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MarshalJSON flattens Fig4Row's cell map deterministically.
func (r Fig4Row) MarshalJSON() ([]byte, error) {
	type cellOut struct {
		Config   string  `json:"config"`
		Seconds  float64 `json:"seconds"`
		Overhead float64 `json:"overhead,omitempty"`
		Scale    float64 `json:"scale,omitempty"`
	}
	out := struct {
		Bench   string    `json:"bench"`
		Workers int       `json:"workers"`
		BaseT1  float64   `json:"base_t1_seconds"`
		BaseTP  Fig4Cell  `json:"base_tp"`
		Cells   []cellOut `json:"cells"`
	}{Bench: r.Bench, Workers: r.Workers, BaseT1: r.BaseT1, BaseTP: r.BaseTP}
	for _, mode := range []Mode{Reach, Full} {
		for _, det := range []Detector{MultiBags, FOrder, SFOrder} {
			for _, tp := range []bool{false, true} {
				if det == MultiBags && tp {
					continue
				}
				k := key(det, mode, tp)
				c, ok := r.ByConfig[k]
				if !ok {
					continue
				}
				out.Cells = append(out.Cells, cellOut{
					Config:   k,
					Seconds:  c.Seconds,
					Overhead: c.Overhead,
					Scale:    c.Scale,
				})
			}
		}
	}
	return json.Marshal(out)
}

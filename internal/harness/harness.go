// Package harness assembles detectors, runs the paper's benchmarks under
// the paper's configurations, and regenerates its evaluation artifacts:
//
//   - Figure 3: benchmark execution characteristics (reads, writes,
//     reachability queries, futures, dag nodes);
//   - Figure 4: base/reach/full execution times for MultiBags, F-Order
//     and SF-Order at one worker and at P workers, with overhead and
//     scalability annotations;
//   - Figure 5: reachability-maintenance memory, F-Order vs SF-Order.
//
// The harness measures wall-clock time per configuration; the benchmark
// package's Verify hook runs after every measurement so a silently
// broken run can never produce a table row.
package harness

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"time"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/forder"
	"sforder/internal/multibags"
	"sforder/internal/obsv"
	"sforder/internal/sched"
	"sforder/internal/trace"
	"sforder/internal/workload"
)

// Detector selects a race-detection algorithm.
type Detector int

const (
	// SFOrder is the paper's parallel detector for structured futures.
	SFOrder Detector = iota
	// FOrder is the parallel baseline for general futures (Xu et al.,
	// PPoPP'20).
	FOrder
	// MultiBags is the sequential baseline for structured futures
	// (Utterback et al., PPoPP'19). It forces serial execution.
	MultiBags
)

func (d Detector) String() string {
	switch d {
	case SFOrder:
		return "SF-Order"
	case FOrder:
		return "F-Order"
	case MultiBags:
		return "MultiBags"
	default:
		return fmt.Sprintf("Detector(%d)", int(d))
	}
}

// Mode selects the instrumentation level (paper §4).
type Mode int

const (
	// Base runs without any instrumentation.
	Base Mode = iota
	// Reach maintains the reachability structures but checks no
	// accesses.
	Reach
	// Full runs complete race detection.
	Full
)

func (m Mode) String() string {
	switch m {
	case Base:
		return "base"
	case Reach:
		return "reach"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config is one measured configuration.
type Config struct {
	Detector Detector
	Mode     Mode
	Workers  int  // ≥1; 1 means one worker on the parallel engine
	Serial   bool // use the serial executor (required for MultiBags)
	// Policy selects the reader-retention policy for Full mode;
	// default (ReadersAll) matches the paper's implementation (§4).
	Policy detect.ReaderPolicy
	// CountAccesses enables engine access counters (adds overhead;
	// used by the Figure 3 characterization run).
	CountAccesses bool
	// Filter puts the strand-local redundancy filter in front of the
	// access history (the §6 future-work extension; ABL4).
	Filter bool
	// FastPath enables the access history's lock-avoiding path (state
	// word + strand batching + Precedes memo; ABL7).
	FastPath bool
	// DedupByAddr keeps at most one detailed race record per address.
	DedupByAddr bool
	// Reach selects SF-Order's reachability substrate: the OM list
	// pair (default) or DePa fork-path labels (ABL10).
	Reach core.Substrate
	// OMGlobalLock forces SF-Order's order-maintenance lists back onto
	// the single list-level insert lock instead of fine-grained bucket
	// locking (ABL8). Ignored by the DePa substrate.
	OMGlobalLock bool
	// NoArena disables SF-Order's per-worker slab arenas; dag-event
	// records allocate on the GC heap (ABL8).
	NoArena bool
	// LockDeque selects the scheduler's historical mutex-guarded deque
	// instead of the lock-free Chase–Lev deque (ABL9).
	LockDeque bool
	// Backend selects the shadow-table layout for Full mode.
	Backend detect.Backend
	// Registry, when non-nil, is attached to the run: every component
	// registers its counters on it and Result.Stats carries the
	// post-run snapshot. The table generators read their columns from
	// this snapshot rather than from per-component getters.
	Registry *obsv.Registry
	// Trace, when non-nil, receives the run's strand timeline in Chrome
	// trace-event JSON. The caller closes it.
	Trace *obsv.TraceWriter
	// Record, when non-nil, captures the run (structure events plus the
	// deduplicated access stream) in the sftrace format for offline
	// replay (ABL12). Works in every Mode; the capture is finalized
	// before Run returns.
	Record io.Writer
}

// Result is one measured run.
type Result struct {
	Config   Config
	Elapsed  time.Duration
	Counts   sched.Counts
	Queries  uint64 // reachability queries served
	Races    uint64
	ReachMem int // bytes held by the reachability component
	HistMem  int // bytes held by the access history
	// Stats is the registry snapshot, present when Config.Registry was
	// set. When present, Queries/Races/ReachMem/HistMem above are
	// derived from it.
	Stats map[string]int64
}

// reachComponent is what every reachability implementation provides.
type reachComponent interface {
	sched.Tracer
	detect.Reachability
	MemBytes() int
	Queries() uint64
}

// Run executes benchmark b once under cfg and returns the measurement.
// The benchmark's Verify hook is checked; a verification failure is an
// error (the run was not a valid measurement).
func Run(b *workload.Benchmark, cfg Config) (*Result, error) {
	if cfg.Detector == MultiBags && !cfg.Serial && cfg.Mode != Base {
		return nil, fmt.Errorf("harness: MultiBags requires Serial (it is a sequential algorithm)")
	}
	run := b.Make()

	var reach reachComponent
	var leftOf func(a, b *sched.Strand) bool
	var release func() // returns arena slabs after the measurement
	if cfg.Mode != Base {
		switch cfg.Detector {
		case SFOrder:
			sf := core.New(core.Config{
				Reach:        cfg.Reach,
				GlobalOMLock: cfg.OMGlobalLock,
				NoArena:      cfg.NoArena,
			})
			reach, leftOf, release = sf, sf.LeftOf, sf.Release
		case FOrder:
			reach = forder.NewReach()
		case MultiBags:
			reach = multibags.NewReach()
		default:
			return nil, fmt.Errorf("harness: unknown detector %v", cfg.Detector)
		}
	}

	var hist *detect.History
	opts := sched.Options{
		Serial:        cfg.Serial,
		Workers:       cfg.Workers,
		CountAccesses: cfg.CountAccesses,
		LockDeque:     cfg.LockDeque,
		Stats:         cfg.Registry,
		Trace:         cfg.Trace,
	}
	if reach != nil {
		opts.Tracer = reach
		if cfg.Registry != nil {
			if rs, ok := reach.(interface{ RegisterStats(*obsv.Registry) }); ok {
				rs.RegisterStats(cfg.Registry)
			}
		}
	}
	var rec *trace.Recorder
	if cfg.Record != nil {
		rec = trace.NewRecorder(cfg.Record)
		opts.Aux = rec
		if cfg.Registry != nil {
			rec.RegisterStats(cfg.Registry)
		}
	}
	if cfg.Mode == Full {
		hopts := detect.Options{
			Reach:       reach,
			Policy:      cfg.Policy,
			Backend:     cfg.Backend,
			DedupByAddr: cfg.DedupByAddr,
			FastPath:    cfg.FastPath,
		}
		if rec != nil {
			hopts.Tap = rec
		}
		if cfg.Policy == detect.ReadersLR {
			if leftOf == nil {
				return nil, fmt.Errorf("harness: ReadersLR policy requires SF-Order")
			}
			hopts.LeftOf = leftOf
		}
		hist = detect.NewHistory(hopts)
		if cfg.Registry != nil {
			hist.RegisterStats(cfg.Registry)
		}
		if cfg.Filter {
			filter := detect.NewStrandFilter(hist)
			if cfg.Registry != nil {
				filter.RegisterStats(cfg.Registry)
			}
			opts.Checker = filter
		} else {
			opts.Checker = hist
		}
	}
	if rec != nil && hist == nil {
		// Base and Reach modes have no access history to tap; the
		// recorder observes the access stream directly.
		opts.Checker = rec
	}

	if release != nil {
		// The measurement keeps no strand pointers — Result carries only
		// counts and the stats snapshot — so the arena slabs can go back
		// to their pools for the next run. Runs after every return path,
		// and after the Stats snapshot below.
		defer release()
	}

	start := time.Now()
	counts, err := sched.Run(opts, run.Main)
	elapsed := time.Since(start)
	if rec != nil {
		if cerr := rec.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("record: %w", cerr)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %s %v/%v: %w", b.Name, cfg.Detector, cfg.Mode, err)
	}
	if err := run.Verify(); err != nil {
		return nil, fmt.Errorf("harness: %s %v/%v verification: %w", b.Name, cfg.Detector, cfg.Mode, err)
	}

	res := &Result{Config: cfg, Elapsed: elapsed, Counts: counts}
	if cfg.Registry != nil {
		// With a registry attached, the registry is the source of truth:
		// the result columns are read back from the snapshot, which is
		// what the table generators consume.
		res.Stats = cfg.Registry.Snapshot()
		res.Queries = uint64(res.Stats["reach.queries"])
		res.ReachMem = int(res.Stats["reach.mem_bytes"])
		res.Races = uint64(res.Stats["hist.races"])
		res.HistMem = int(res.Stats["hist.mem_bytes"])
		return res, nil
	}
	if reach != nil {
		res.Queries = reach.Queries()
		res.ReachMem = reach.MemBytes()
	}
	if hist != nil {
		res.Races = hist.RaceCount()
		res.HistMem = hist.MemBytes()
	}
	return res, nil
}

// RunBest runs cfg `repeats` times and returns the fastest measurement
// (minimum wall-clock), the usual stabilizer for small benchmarks.
func RunBest(b *workload.Benchmark, cfg Config, repeats int) (*Result, error) {
	if repeats < 1 {
		repeats = 1
	}
	var best *Result
	for i := 0; i < repeats; i++ {
		r, err := Run(b, cfg)
		if err != nil {
			return nil, err
		}
		if best == nil || r.Elapsed < best.Elapsed {
			best = r
		}
	}
	return best, nil
}

// DefaultWorkers returns the worker count used for the paper's "T20"
// column on this machine: GOMAXPROCS, at least 2.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	return w
}

// RecordCapture runs benchmark b once under full online SF-Order
// detection (fast path on, so the capture tap sees the batched access
// stream) with the sftrace recorder attached, and returns the raw
// capture bytes — the canonical input to offline replay tests and
// benchmarks: feed them to trace.Load + replay.Run, or directly to
// replay.RunStream.
func RecordCapture(b *workload.Benchmark, workers int) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := Run(b, Config{
		Detector: SFOrder, Mode: Full,
		Workers: workers, FastPath: true, Record: &buf,
	}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

package harness

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"

	"sforder/internal/analysis"
	"sforder/internal/instr"
)

// InstrRun captures one execution of an example package: the raw
// combined output of the process and the race counts parsed from its
// machine-readable "<label> races=N" lines.
type InstrRun struct {
	Output string
	// Races maps the label printed before each races= figure (the
	// example's function or program name) to the reported count.
	Races map[string]int
}

var racesLine = regexp.MustCompile(`(?m)^(\w+) races=(\d+)`)

func parseRaces(out []byte) map[string]int {
	races := map[string]int{}
	for _, m := range racesLine.FindAllSubmatch(out, -1) {
		n, err := strconv.Atoi(string(m[2]))
		if err != nil {
			continue
		}
		races[string(m[1])] = n
	}
	return races
}

// goRun executes `go run ./<rel>` with dir as the working directory and
// parses the races= lines from its output.
func goRun(dir, rel string) (*InstrRun, error) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		return nil, fmt.Errorf("go toolchain not available: %w", err)
	}
	cmd := exec.Command(goBin, "run", "./"+filepath.ToSlash(rel))
	cmd.Dir = dir
	// The staged module resolves sforder through a replace directive, so
	// the run needs no network or module cache downloads.
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go run ./%s in %s: %w\n%s", rel, dir, err, out)
	}
	return &InstrRun{Output: string(out), Races: parseRaces(out)}, nil
}

// RunExample builds and runs an example main package from the working
// tree as written — the baseline the instrumented run is compared
// against.
func RunExample(moduleRoot, rel string) (*InstrRun, error) {
	return goRun(moduleRoot, rel)
}

// RunInstrumented loads the main package at moduleRoot/rel, injects
// shadow annotations with the sfinstr rewriter, stages the result as a
// runnable module under outDir (created if needed), and executes it.
// The staged sources are left in outDir for inspection; callers own its
// lifetime.
func RunInstrumented(moduleRoot, rel, outDir string) (*InstrRun, error) {
	dir := filepath.Join(moduleRoot, rel)
	pkgs, err := analysis.Load(dir, []string{"."}, false)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", rel, err)
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("load %s: got %d packages, want 1", rel, len(pkgs))
	}
	res, err := instr.Package(pkgs[0])
	if err != nil {
		return nil, fmt.Errorf("instrument %s: %w", rel, err)
	}
	modPath, err := moduleName(moduleRoot)
	if err != nil {
		return nil, err
	}
	if err := instr.Stage([]*instr.Result{res}, moduleRoot, modPath, outDir); err != nil {
		return nil, fmt.Errorf("stage %s: %w", rel, err)
	}
	return goRun(outDir, rel)
}

func moduleName(moduleRoot string) (string, error) {
	_, modPath, err := analysis.ModuleInfo(moduleRoot)
	if err != nil {
		return "", fmt.Errorf("resolve module at %s: %w", moduleRoot, err)
	}
	return modPath, nil
}

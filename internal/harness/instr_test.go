package harness

import (
	"os/exec"
	"testing"

	"sforder/internal/analysis"
)

// requireGoRun skips tests that shell out to the go toolchain when it
// is unavailable or the run is time-constrained, and returns the module
// root the example paths are relative to.
func requireGoRun(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping subprocess go run in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	root, _, err := analysis.ModuleInfo(".")
	if err != nil {
		t.Fatalf("ModuleInfo: %v", err)
	}
	return root
}

// TestStaticDynamicAgreement closes the loop between the analyzer and
// the instrumenter on examples/badfutures:
//
//   - sfvet statically predicts blind sharing (SF003) and sharing even
//     sfinstr cannot surface (SF005);
//   - the uninstrumented run confirms the blindness — silentSharing
//     executes a real race but reports races=0;
//   - the instrumented run confirms the SF003 prediction dynamically —
//     the injected shadow calls make the same race visible, including
//     the loopCondSharing race that hides in a re-evaluated `for`
//     header and needs the guarded-break loop rewrite to surface;
//   - the SF005 sharing (map elements) stays invisible in BOTH runs,
//     confirming that warning marks a genuine coverage boundary.
func TestStaticDynamicAgreement(t *testing.T) {
	root := requireGoRun(t)

	pkgs, err := analysis.Load(root, []string{"./examples/badfutures"}, false)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	static := map[string]bool{}
	for _, d := range analysis.Analyze(pkgs) {
		static[d.Check] = true
	}
	for _, want := range []string{"SF003", "SF005"} {
		if !static[want] {
			t.Fatalf("static analysis did not predict %s on badfutures; got %v", want, static)
		}
	}

	base, err := RunExample(root, "examples/badfutures")
	if err != nil {
		t.Fatalf("uninstrumented run: %v", err)
	}
	if n, ok := base.Races["silentSharing"]; !ok || n != 0 {
		t.Errorf("uninstrumented silentSharing races = %d (found=%v), want 0: the detector should be blind here\n%s",
			n, ok, base.Output)
	}
	if n := base.Races["uninstrumentableSharing"]; n != 0 {
		t.Errorf("uninstrumented uninstrumentableSharing races = %d, want 0\n%s", n, base.Output)
	}
	if n, ok := base.Races["loopCondSharing"]; !ok || n != 0 {
		t.Errorf("uninstrumented loopCondSharing races = %d (found=%v), want 0: the detector should be blind here\n%s",
			n, ok, base.Output)
	}

	inst, err := RunInstrumented(root, "examples/badfutures", t.TempDir())
	if err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	if n, ok := inst.Races["silentSharing"]; !ok || n < 1 {
		t.Errorf("instrumented silentSharing races = %d (found=%v), want >=1: injected annotations should expose the SF003 race\n%s",
			n, ok, inst.Output)
	}
	if n := inst.Races["uninstrumentableSharing"]; n != 0 {
		t.Errorf("instrumented uninstrumentableSharing races = %d, want 0: map sharing is beyond sfinstr (SF005)\n%s",
			n, inst.Output)
	}
	if n, ok := inst.Races["loopCondSharing"]; !ok || n < 1 {
		t.Errorf("instrumented loopCondSharing races = %d (found=%v), want >=1: the loop-condition rewrite should expose the race\n%s",
			n, ok, inst.Output)
	}
}

// TestInstrumentedWalkthrough runs examples/instrumented before and
// after rewriting: the race on cells[0] appears only in the
// instrumented run, and the disjoint cells[1] write never produces a
// false positive (the count stays at exactly the one real race).
func TestInstrumentedWalkthrough(t *testing.T) {
	root := requireGoRun(t)

	base, err := RunExample(root, "examples/instrumented")
	if err != nil {
		t.Fatalf("uninstrumented run: %v", err)
	}
	if n, ok := base.Races["instrumented"]; !ok || n != 0 {
		t.Errorf("uninstrumented walkthrough races = %d (found=%v), want 0\n%s", n, ok, base.Output)
	}

	inst, err := RunInstrumented(root, "examples/instrumented", t.TempDir())
	if err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	if n, ok := inst.Races["instrumented"]; !ok || n != 1 {
		t.Errorf("instrumented walkthrough races = %d (found=%v), want exactly 1 (cells[0]; cells[1] must not false-positive)\n%s",
			n, ok, inst.Output)
	}
}

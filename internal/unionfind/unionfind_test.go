package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeSetFind(t *testing.T) {
	var f Forest
	a := f.MakeSet("a")
	b := f.MakeSet("b")
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Find(a) != a || f.Find(b) != b {
		t.Error("fresh sets must be their own roots")
	}
	if f.Same(a, b) {
		t.Error("fresh sets must be disjoint")
	}
	if f.Data(a) != "a" || f.Data(b) != "b" {
		t.Error("data lost")
	}
}

func TestUnionMerges(t *testing.T) {
	var f Forest
	a := f.MakeSet(1)
	b := f.MakeSet(2)
	c := f.MakeSet(3)
	f.Union(a, b)
	if !f.Same(a, b) || f.Same(a, c) {
		t.Error("union wrong")
	}
	r := f.Union(a, a)
	if r != f.Find(a) {
		t.Error("self-union should return root")
	}
	f.Union(b, c)
	if !f.Same(a, c) {
		t.Error("transitive union failed")
	}
}

func TestUnionIntoKeepsDstData(t *testing.T) {
	var f Forest
	// Build a tall-ish src so its root would win on rank.
	src := f.MakeSet("src")
	for i := 0; i < 8; i++ {
		x := f.MakeSet(i)
		f.Union(src, x)
	}
	dst := f.MakeSet("dst")
	f.UnionInto(dst, src)
	if f.Data(dst) != "dst" {
		t.Errorf("Data after UnionInto = %v, want dst", f.Data(dst))
	}
	if f.Data(src) != "dst" {
		t.Error("merged set must expose dst's datum from any member")
	}
}

func TestSetData(t *testing.T) {
	var f Forest
	a := f.MakeSet("old")
	b := f.MakeSet("x")
	f.Union(a, b)
	f.SetData(b, "new")
	if f.Data(a) != "new" {
		t.Error("SetData must apply to the whole set")
	}
}

func TestQuickAgainstMapModel(t *testing.T) {
	// Property: after arbitrary unions, Same agrees with a naive
	// connected-components model.
	f := func(pairs []uint8) bool {
		const n = 32
		var uf Forest
		ids := make([]int, n)
		for i := range ids {
			ids[i] = uf.MakeSet(i)
		}
		comp := make([]int, n)
		for i := range comp {
			comp[i] = i
		}
		merge := func(a, b int) {
			ca, cb := comp[a], comp[b]
			if ca == cb {
				return
			}
			for i := range comp {
				if comp[i] == cb {
					comp[i] = ca
				}
			}
		}
		for i := 0; i+1 < len(pairs); i += 2 {
			a, b := int(pairs[i])%n, int(pairs[i+1])%n
			uf.Union(ids[a], ids[b])
			merge(a, b)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Same(ids[i], ids[j]) != (comp[i] == comp[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathCompressionFlattens(t *testing.T) {
	var f Forest
	n := 1024
	ids := make([]int, n)
	for i := range ids {
		ids[i] = f.MakeSet(nil)
	}
	for i := 1; i < n; i++ {
		f.Union(ids[0], ids[i])
	}
	// After Find on every element, every parent pointer should be the
	// root, so a subsequent pass does minimal work.
	root := f.Find(ids[0])
	for _, id := range ids {
		f.Find(id)
	}
	before := f.Finds()
	for _, id := range ids {
		if f.Find(id) != root {
			t.Fatal("inconsistent root")
		}
	}
	if f.Finds()-before != n {
		t.Error("Find counter should advance exactly once per call")
	}
}

func BenchmarkUnionFind(b *testing.B) {
	var f Forest
	n := 1 << 14
	ids := make([]int, n)
	for i := range ids {
		ids[i] = f.MakeSet(nil)
	}
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ids[rng.Intn(n)]
		c := ids[rng.Intn(n)]
		f.Union(a, c)
		f.Find(ids[rng.Intn(n)])
	}
}

// Package unionfind implements a disjoint-set forest with union by rank
// and path compression — the substrate of the MultiBags sequential race
// detector (Utterback et al., PPoPP'19), whose amortized cost per
// operation is the inverse Ackermann function α(n) (≤ 4 in practice).
//
// Elements are dense integer IDs handed out by MakeSet. Each set carries
// an opaque user datum (the "bag" descriptor in MultiBags); Union keeps
// the datum of the set whose root survives, and SetData overwrites it.
package unionfind

// Forest is a disjoint-set forest. The zero value is an empty forest
// ready for use. Forest is not safe for concurrent use: MultiBags is an
// inherently sequential algorithm, which is precisely the limitation the
// SF-Order paper addresses.
type Forest struct {
	parent []int32
	rank   []int8
	data   []interface{}
	finds  int // number of Find calls, for the accounting tests
}

// MakeSet creates a new singleton set carrying datum and returns its ID.
func (f *Forest) MakeSet(datum interface{}) int {
	id := len(f.parent)
	f.parent = append(f.parent, int32(id))
	f.rank = append(f.rank, 0)
	f.data = append(f.data, datum)
	return id
}

// Len returns the number of elements ever created.
func (f *Forest) Len() int { return len(f.parent) }

// Find returns the representative (root) of x's set, compressing the path.
func (f *Forest) Find(x int) int {
	f.finds++
	root := x
	for int(f.parent[root]) != root {
		root = int(f.parent[root])
	}
	for int(f.parent[x]) != x {
		next := int(f.parent[x])
		f.parent[x] = int32(root)
		x = next
	}
	return root
}

// Finds reports how many Find operations have executed, used by tests to
// confirm the near-constant amortized behaviour indirectly.
func (f *Forest) Finds() int { return f.finds }

// Union merges the sets containing a and b and returns the surviving
// root. The surviving root's datum is kept. Unioning a set with itself is
// a no-op returning the common root.
func (f *Forest) Union(a, b int) int {
	ra, rb := f.Find(a), f.Find(b)
	if ra == rb {
		return ra
	}
	if f.rank[ra] < f.rank[rb] {
		ra, rb = rb, ra
	}
	f.parent[rb] = int32(ra)
	if f.rank[ra] == f.rank[rb] {
		f.rank[ra]++
	}
	return ra
}

// UnionInto merges the set containing src into the set containing dst and
// forces the merged set's datum to be dst's datum. This is the MultiBags
// "empty bag B into bag A" primitive: the bag identity of A survives
// regardless of which root wins on rank.
func (f *Forest) UnionInto(dst, src int) int {
	datum := f.data[f.Find(dst)]
	root := f.Union(dst, src)
	f.data[root] = datum
	return root
}

// Data returns the datum attached to x's set.
func (f *Forest) Data(x int) interface{} { return f.data[f.Find(x)] }

// SetData overwrites the datum attached to x's set.
func (f *Forest) SetData(x int, datum interface{}) { f.data[f.Find(x)] = datum }

// Same reports whether a and b are in the same set.
func (f *Forest) Same(a, b int) bool { return f.Find(a) == f.Find(b) }

package workload

import (
	"fmt"
	"math/rand"

	"sforder/internal/sched"
)

// MM returns divide-and-conquer matrix multiplication C = A·B on n×n
// int64 matrices with base-case size b (n and b powers of two, b ≤ n).
//
// Each recursive step computes the eight quadrant products in two groups
// of four: the first group runs as created futures (gotten before the
// second group may accumulate into the same C quadrants), the second as
// spawned children joined by a sync — the mixed fork-join + structured
// future style of the paper's mm benchmark.
func MM(n, b int) *Benchmark {
	if n&(n-1) != 0 || b&(b-1) != 0 || b > n || b < 2 {
		panic(fmt.Sprintf("workload: MM requires power-of-two sizes, got n=%d b=%d", n, b))
	}
	return &Benchmark{
		Name: "mm",
		Desc: "divide-and-conquer matrix multiplication",
		N:    n,
		B:    b,
		Make: func() *Run { return newMMRun(n, b) },
	}
}

// mmState carries the matrices and their shadow address bases.
type mmState struct {
	n, b     int
	a, bm, c []int64
	// shadow bases: a at 0, b at n², c at 2n².
}

func newMMRun(n, b int) *Run {
	st := &mmState{
		n: n, b: b,
		a:  make([]int64, n*n),
		bm: make([]int64, n*n),
		c:  make([]int64, n*n),
	}
	rng := rand.New(rand.NewSource(42))
	for i := range st.a {
		st.a[i] = int64(rng.Intn(7)) - 3
		st.bm[i] = int64(rng.Intn(7)) - 3
	}
	return &Run{
		Main:   func(t *sched.Task) { st.mul(t, 0, 0, 0, 0, 0, 0, n) },
		Verify: st.verify,
	}
}

func (m *mmState) addrA(r, c int) uint64 { return uint64(r*m.n + c) }
func (m *mmState) addrB(r, c int) uint64 { return uint64(m.n*m.n + r*m.n + c) }
func (m *mmState) addrC(r, c int) uint64 { return uint64(2*m.n*m.n + r*m.n + c) }

// mul computes C[cr:cr+n, cc:cc+n] += A[ar.., ..] · B[br.., ..].
func (m *mmState) mul(t *sched.Task, ar, ac, br, bc, cr, cc, n int) {
	if n <= m.b {
		m.base(t, ar, ac, br, bc, cr, cc, n)
		return
	}
	h := n / 2
	// Group 1: the four products that touch disjoint C quadrants, as
	// futures.
	type q struct{ ar, ac, br, bc, cr, cc int }
	g1 := []q{
		{ar, ac, br, bc, cr, cc},                 // C11 += A11·B11
		{ar, ac, br, bc + h, cr, cc + h},         // C12 += A11·B12
		{ar + h, ac, br, bc, cr + h, cc},         // C21 += A21·B11
		{ar + h, ac, br, bc + h, cr + h, cc + h}, // C22 += A21·B12
	}
	var hs []*sched.Future
	for _, p := range g1 {
		p := p
		hs = append(hs, t.Create(func(c *sched.Task) any {
			m.mul(c, p.ar, p.ac, p.br, p.bc, p.cr, p.cc, h)
			return nil
		}))
	}
	for _, f := range hs {
		t.Get(f)
	}
	// Group 2: the four products accumulating into the same quadrants,
	// as spawned children.
	g2 := []q{
		{ar, ac + h, br + h, bc, cr, cc},                 // C11 += A12·B21
		{ar, ac + h, br + h, bc + h, cr, cc + h},         // C12 += A12·B22
		{ar + h, ac + h, br + h, bc, cr + h, cc},         // C21 += A22·B21
		{ar + h, ac + h, br + h, bc + h, cr + h, cc + h}, // C22 += A22·B22
	}
	for _, p := range g2 {
		p := p
		t.Spawn(func(c *sched.Task) {
			m.mul(c, p.ar, p.ac, p.br, p.bc, p.cr, p.cc, h)
		})
	}
	t.Sync()
}

// base is the serial base case with per-element instrumented accesses.
func (m *mmState) base(t *sched.Task, ar, ac, br, bc, cr, cc, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				t.Read(m.addrA(ar+i, ac+k))
				t.Read(m.addrB(br+k, bc+j))
				acc += m.a[(ar+i)*m.n+ac+k] * m.bm[(br+k)*m.n+bc+j]
			}
			t.Read(m.addrC(cr+i, cc+j))
			t.Write(m.addrC(cr+i, cc+j))
			m.c[(cr+i)*m.n+cc+j] += acc
		}
	}
}

// verify spot-checks 16 cells of C against direct dot products.
func (m *mmState) verify() error {
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < 16; s++ {
		i, j := rng.Intn(m.n), rng.Intn(m.n)
		var want int64
		for k := 0; k < m.n; k++ {
			want += m.a[i*m.n+k] * m.bm[k*m.n+j]
		}
		if got := m.c[i*m.n+j]; got != want {
			return fmt.Errorf("mm: C[%d][%d] = %d, want %d", i, j, got, want)
		}
	}
	return nil
}

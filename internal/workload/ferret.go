package workload

import (
	"fmt"

	"sforder/internal/sched"
)

// Ferret returns the content-based similarity-search pipeline: a
// synthetic stand-in for the PARSEC application. Each of the q query
// images flows through four stages — segment, extract features, index
// lookup, rank — with each stage a future that gets its predecessor, so
// the computation is q independent four-stage future chains (4·q futures,
// matching the paper's 256 futures for its input). dim is the feature
// vector length.
//
// The profile is write-heavier than the other benchmarks (each stage
// materializes a derived vector), mirroring Figure 3's ferret row.
func Ferret(q, dim int) *Benchmark {
	if q < 1 || dim < 8 {
		panic(fmt.Sprintf("workload: Ferret bad params q=%d dim=%d", q, dim))
	}
	return &Benchmark{
		Name: "ferret",
		Desc: "content-based similarity search pipeline (synthetic PARSEC kernel)",
		N:    q,
		B:    0,
		Make: func() *Run { return newFerretRun(q, dim) },
	}
}

type ferretState struct {
	q, dim int
	input  []int32 // q×dim raw "images"
	seg    []int32 // q×dim segmented
	feat   []int32 // q×dim features
	cand   []int32 // q×dim candidate scores
	rank   []int32 // q final ranks
	want   []int32
}

func newFerretRun(q, dim int) *Run {
	st := &ferretState{
		q: q, dim: dim,
		input: make([]int32, q*dim),
		seg:   make([]int32, q*dim),
		feat:  make([]int32, q*dim),
		cand:  make([]int32, q*dim),
		rank:  make([]int32, q),
	}
	for i := range st.input {
		x := uint32(i*2246822519 + 374761393)
		x ^= x >> 15
		st.input[i] = int32(x % 1021)
	}
	st.want = st.reference()
	return &Run{Main: st.main, Verify: st.verify}
}

// Shadow layout: input, seg, feat, cand, rank laid out consecutively.
func (s *ferretState) addrInput(i int) uint64 { return uint64(i) }
func (s *ferretState) addrSeg(i int) uint64   { return uint64(s.q*s.dim + i) }
func (s *ferretState) addrFeat(i int) uint64  { return uint64(2*s.q*s.dim + i) }
func (s *ferretState) addrCand(i int) uint64  { return uint64(3*s.q*s.dim + i) }
func (s *ferretState) addrRank(i int) uint64  { return uint64(4*s.q*s.dim + i) }

func (s *ferretState) main(t *sched.Task) {
	final := make([]*sched.Future, s.q)
	for qi := 0; qi < s.q; qi++ {
		qi := qi
		hSeg := t.Create(func(c *sched.Task) any { s.segment(c, qi); return nil })
		hFeat := t.Create(func(c *sched.Task) any {
			c.Get(hSeg)
			s.extract(c, qi)
			return nil
		})
		hCand := t.Create(func(c *sched.Task) any {
			c.Get(hFeat)
			s.index(c, qi)
			return nil
		})
		final[qi] = t.Create(func(c *sched.Task) any {
			c.Get(hCand)
			s.rankStage(c, qi)
			return nil
		})
	}
	// Serial output stage: collect ranks in query order.
	for qi := 0; qi < s.q; qi++ {
		t.Get(final[qi])
		t.Read(s.addrRank(qi))
	}
}

func (s *ferretState) segment(t *sched.Task, qi int) {
	off := qi * s.dim
	for i := 0; i < s.dim; i++ {
		t.Read(s.addrInput(off + i))
		t.Write(s.addrSeg(off + i))
		s.seg[off+i] = s.input[off+i] / 3
	}
}

func (s *ferretState) extract(t *sched.Task, qi int) {
	off := qi * s.dim
	for i := 0; i < s.dim; i++ {
		t.Read(s.addrSeg(off + i))
		prev := int32(0)
		if i > 0 {
			t.Read(s.addrSeg(off + i - 1))
			prev = s.seg[off+i-1]
		}
		t.Write(s.addrFeat(off + i))
		s.feat[off+i] = s.seg[off+i] - prev
	}
}

func (s *ferretState) index(t *sched.Task, qi int) {
	off := qi * s.dim
	for i := 0; i < s.dim; i++ {
		t.Read(s.addrFeat(off + i))
		t.Write(s.addrCand(off + i))
		v := s.feat[off+i]
		if v < 0 {
			v = -v
		}
		s.cand[off+i] = v % 97
	}
}

func (s *ferretState) rankStage(t *sched.Task, qi int) {
	off := qi * s.dim
	var best int32
	for i := 0; i < s.dim; i++ {
		t.Read(s.addrCand(off + i))
		if s.cand[off+i] > best {
			best = s.cand[off+i]
		}
	}
	t.Write(s.addrRank(qi))
	s.rank[qi] = best
}

func (s *ferretState) reference() []int32 {
	out := make([]int32, s.q)
	for qi := 0; qi < s.q; qi++ {
		prevSeg := int32(0)
		var best int32
		for i := 0; i < s.dim; i++ {
			seg := s.input[qi*s.dim+i] / 3
			feat := seg - prevSeg
			prevSeg = seg
			if feat < 0 {
				feat = -feat
			}
			cand := feat % 97
			if cand > best {
				best = cand
			}
		}
		out[qi] = best
	}
	return out
}

func (s *ferretState) verify() error {
	for qi, want := range s.want {
		if s.rank[qi] != want {
			return fmt.Errorf("ferret: rank[%d] = %d, want %d", qi, s.rank[qi], want)
		}
	}
	return nil
}

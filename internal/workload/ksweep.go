package workload

import (
	"fmt"

	"sforder/internal/sched"
)

// KSweep returns the k-sweep adversary (ROADMAP item 5): a chain of k
// futures, each getting its predecessor, where every future reads the
// same small set of shared cells `touches` times and writes one private
// cell. The shape is engineered against the detector's per-location
// costs rather than its dag costs:
//
//   - Thousands of touches per location. Each shared cell is read
//     touches times by each of k distinct strands. Same-strand repeats
//     dedup (the fast path's job), but the k distinct readers are all
//     retained — so the root's final write to each shared cell must
//     Precedes-check a reader list of length k, the quadratic
//     per-location term the ReadersAll policy admits.
//   - gp merges. Future i+1's first strand gets future i, so every link
//     merges the predecessor's gp set — k chained merges, the O(k²)
//     bitmap work the paper's §3.4 subsumption optimization targets.
//
// The computed result is a running checksum threaded through the chain,
// so a skipped or reordered link cannot verify. Race-free: each shared
// cell's writes are both root strands ordered around the whole chain by
// the final get, each private cell has one writer, and every read is
// ordered after the root's initial writes by create-path edges.
func KSweep(k, touches int) *Benchmark {
	if k < 1 || touches < 1 {
		panic(fmt.Sprintf("workload: KSweep bad params k=%d touches=%d", k, touches))
	}
	return &Benchmark{
		Name: "ksweep",
		Desc: "k-future sweep over shared cells (per-location reader-list and gp-merge adversary)",
		N:    k,
		B:    touches,
		Make: func() *Run { return newKSweepRun(k, touches) },
	}
}

// ksweepShared is the number of shared cells every future sweeps.
const ksweepShared = 8

type ksweepState struct {
	k, touches int
	shared     [ksweepShared]int64
	private    []int64
	wantPriv   []int64
	got        int64
	want       int64
}

func (s *ksweepState) sharedAddr(j int) uint64 { return uint64(j) }
func (s *ksweepState) privAddr(i int) uint64   { return uint64(ksweepShared + i) }

func newKSweepRun(k, touches int) *Run {
	s := &ksweepState{k: k, touches: touches, private: make([]int64, k), wantPriv: make([]int64, k)}
	// Reference: replicate the chain arithmetic sequentially.
	var shared [ksweepShared]int64
	for j := range shared {
		shared[j] = int64(j*j + 1)
	}
	acc := int64(0)
	for i := 0; i < k; i++ {
		sum := acc
		for t := 0; t < touches; t++ {
			sum += shared[(i+t)%ksweepShared]
		}
		acc = sum%100003 + int64(i)
		s.wantPriv[i] = acc
	}
	s.want = acc
	return &Run{Main: s.main, Verify: s.verify}
}

func (s *ksweepState) main(t *sched.Task) {
	// Root initializes the shared cells; every future's reads are
	// ordered after these writes through the create path.
	for j := 0; j < ksweepShared; j++ {
		t.Write(s.sharedAddr(j))
		s.shared[j] = int64(j*j + 1)
	}
	var prev *sched.Future
	for i := 0; i < s.k; i++ {
		i, dep := i, prev
		prev = t.Create(func(c *sched.Task) any {
			acc := int64(0)
			if dep != nil {
				acc = c.Get(dep).(int64) // gp merge: link i gets link i-1
			}
			sum := acc
			for touch := 0; touch < s.touches; touch++ {
				j := (i + touch) % ksweepShared
				c.Read(s.sharedAddr(j)) // k distinct retained readers per cell
				sum += s.shared[j]
			}
			priv := sum%100003 + int64(i)
			c.Write(s.privAddr(i))
			s.private[i] = priv
			return priv
		})
	}
	s.got = t.Get(prev).(int64)
	// Reading every private cell from the root forces Precedes queries
	// against each chain link's put-side strand.
	for i := 0; i < s.k; i++ {
		t.Read(s.privAddr(i))
	}
	// The final shared-cell writes check the full k-reader lists — the
	// quadratic per-location term this workload exists to exercise.
	for j := 0; j < ksweepShared; j++ {
		t.Write(s.sharedAddr(j))
		s.shared[j] = 0
	}
}

func (s *ksweepState) verify() error {
	if s.got != s.want {
		return fmt.Errorf("ksweep: chain checksum %d, want %d", s.got, s.want)
	}
	for i := 0; i < s.k; i++ {
		if s.private[i] != s.wantPriv[i] {
			return fmt.Errorf("ksweep: link %d produced %d, want %d", i, s.private[i], s.wantPriv[i])
		}
	}
	return nil
}

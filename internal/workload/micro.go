package workload

import (
	"fmt"

	"sforder/internal/sched"
)

// Chain returns a microbenchmark of k chained futures, each getting its
// predecessor and doing `work` instrumented accesses. It isolates the
// O(k²) reachability-construction term of the SF-Order and F-Order
// bounds: with work held constant, detector time should grow
// quadratically in k (every future's cp bitmap copy is Θ(k) words — for
// SF-Order 1 bit per future, for F-Order a table entry), while base time
// grows linearly.
func Chain(k, work int) *Benchmark {
	if k < 1 || work < 1 {
		panic(fmt.Sprintf("workload: Chain bad params k=%d work=%d", k, work))
	}
	return &Benchmark{
		Name: "chain",
		Desc: "k chained futures (k² construction-term probe)",
		N:    k,
		B:    work,
		Make: func() *Run { return newChainRun(k, work) },
	}
}

func newChainRun(k, work int) *Run {
	total := 0
	return &Run{
		Main: func(t *sched.Task) {
			prev := t.Create(func(c *sched.Task) any {
				for i := 0; i < work; i++ {
					c.Read(uint64(i))
				}
				c.Write(0)
				return 1
			})
			for f := 1; f < k; f++ {
				p := prev
				prev = t.Create(func(c *sched.Task) any {
					v := c.Get(p).(int)
					for i := 0; i < work; i++ {
						c.Read(uint64(i))
					}
					c.Write(0)
					return v + 1
				})
			}
			total = t.Get(prev).(int)
		},
		Verify: func() error {
			if total != k {
				return fmt.Errorf("chain: total = %d, want %d", total, k)
			}
			return nil
		},
	}
}

// Fib returns the classic fork-join fib(n) microbenchmark with one
// instrumented access per call — a pure spawn/sync workload with zero
// futures, isolating the fork-join path of the detectors (where
// SF-Order's machinery must degenerate to plain WSP-Order costs).
func Fib(n int) *Benchmark {
	if n < 1 || n > 35 {
		panic(fmt.Sprintf("workload: Fib bad param n=%d", n))
	}
	return &Benchmark{
		Name: "fib",
		Desc: "fork-join fib (no futures)",
		N:    n,
		Make: func() *Run { return newFibRun(n) },
	}
}

func fibRef(n int) int {
	if n < 2 {
		return n
	}
	return fibRef(n-1) + fibRef(n-2)
}

func newFibRun(n int) *Run {
	got := 0
	var fib func(t *sched.Task, n, addr int) int
	fib = func(t *sched.Task, n, addr int) int {
		t.Read(uint64(addr))
		if n < 2 {
			return n
		}
		var a int
		t.Spawn(func(c *sched.Task) { a = fib(c, n-1, 2*addr+1) })
		b := fib(t, n-2, 2*addr+2)
		t.Sync()
		return a + b
	}
	return &Run{
		Main: func(t *sched.Task) { got = fib(t, n, 0) },
		Verify: func() error {
			if want := fibRef(n); got != want {
				return fmt.Errorf("fib: got %d, want %d", got, want)
			}
			return nil
		},
	}
}

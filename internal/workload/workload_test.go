package workload_test

import (
	"testing"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/sched"
	"sforder/internal/workload"
)

// TestBenchmarksComputeCorrectly runs every benchmark at test scale,
// serially and in parallel, and checks Verify.
func TestBenchmarksComputeCorrectly(t *testing.T) {
	for _, b := range append(workload.All(workload.ScaleTest), workload.Extras(workload.ScaleTest)...) {
		b := b
		t.Run(b.Name+"/serial", func(t *testing.T) {
			run := b.Make()
			if _, err := sched.Run(sched.Options{Serial: true}, run.Main); err != nil {
				t.Fatal(err)
			}
			if err := run.Verify(); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(b.Name+"/parallel", func(t *testing.T) {
			run := b.Make()
			if _, err := sched.Run(sched.Options{Workers: 4}, run.Main); err != nil {
				t.Fatal(err)
			}
			if err := run.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBenchmarksRaceFree: the paper's benchmarks are race-free; the full
// SF-Order detector must report nothing on any of them, under both
// reader policies.
func TestBenchmarksRaceFree(t *testing.T) {
	for _, b := range append(workload.All(workload.ScaleTest), workload.Extras(workload.ScaleTest)...) {
		for _, policy := range []detect.ReaderPolicy{detect.ReadersAll, detect.ReadersLR} {
			b, policy := b, policy
			t.Run(b.Name+"/"+policy.String(), func(t *testing.T) {
				run := b.Make()
				reach := core.NewReach()
				hist := detect.NewHistory(detect.Options{
					Reach:  reach,
					Policy: policy,
					LeftOf: reach.LeftOf,
				})
				if _, err := sched.Run(sched.Options{Serial: true, Tracer: reach, Checker: hist}, run.Main); err != nil {
					t.Fatal(err)
				}
				if n := hist.RaceCount(); n != 0 {
					t.Fatalf("%d false races: %v", n, hist.Races()[:min(4, len(hist.Races()))])
				}
				if err := run.Verify(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestBenchmarksRaceFreeParallel repeats the race-freedom check under
// the parallel engine with the full detector attached.
func TestBenchmarksRaceFreeParallel(t *testing.T) {
	for _, b := range append(workload.All(workload.ScaleTest), workload.Extras(workload.ScaleTest)...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			run := b.Make()
			reach := core.NewReach()
			hist := detect.NewHistory(detect.Options{Reach: reach})
			if _, err := sched.Run(sched.Options{Workers: 4, Tracer: reach, Checker: hist}, run.Main); err != nil {
				t.Fatal(err)
			}
			if n := hist.RaceCount(); n != 0 {
				t.Fatalf("%d false races under parallel execution", n)
			}
			if err := run.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCharacteristicsStable: strand/future counts are deterministic and
// schedule-independent (the Figure 3 columns).
func TestCharacteristicsStable(t *testing.T) {
	for _, b := range append(workload.All(workload.ScaleTest), workload.Extras(workload.ScaleTest)...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			c1, err := sched.Run(sched.Options{Serial: true, CountAccesses: true}, b.Make().Main)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := sched.Run(sched.Options{Workers: 4, CountAccesses: true}, b.Make().Main)
			if err != nil {
				t.Fatal(err)
			}
			// Steals are a property of the schedule, not the program;
			// everything else must match exactly.
			c2.Steals = c1.Steals
			if c1 != c2 {
				t.Errorf("counts differ across schedules:\nserial   %+v\nparallel %+v", c1, c2)
			}
			// spine is spawn-only by design (the OM/label adversary);
			// every other workload must create futures.
			if c1.Futures < 2 && b.Name != "spine" {
				t.Errorf("benchmark uses no futures: %+v", c1)
			}
			if c1.Reads == 0 || c1.Writes == 0 {
				t.Errorf("benchmark has no instrumented accesses: %+v", c1)
			}
		})
	}
}

// TestFutureCountsMatchShape: spot-check the future-count formulas the
// benchmark docs promise.
func TestFutureCountsMatchShape(t *testing.T) {
	// sw: (n/b)² tile futures + root.
	c, err := sched.Run(sched.Options{Serial: true}, workload.SW(64, 16).Make().Main)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(16 + 1); c.Futures != want {
		t.Errorf("sw futures = %d, want %d", c.Futures, want)
	}
	// ferret: 4 per query + root.
	c, err = sched.Run(sched.Options{Serial: true}, workload.Ferret(8, 64).Make().Main)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(4*8 + 1); c.Futures != want {
		t.Errorf("ferret futures = %d, want %d", c.Futures, want)
	}
	// hw: batches per frame + root.
	c, err = sched.Run(sched.Options{Serial: true}, workload.HW(3, 8, 64).Make().Main)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(3*8 + 1); c.Futures != want {
		t.Errorf("hw futures = %d, want %d", c.Futures, want)
	}
	// pipeline: stages per item + root.
	c, err = sched.Run(sched.Options{Serial: true}, workload.Pipeline(12, 4, 2).Make().Main)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(12*4 + 1); c.Futures != want {
		t.Errorf("pipeline futures = %d, want %d", c.Futures, want)
	}
}

func TestByNameAndString(t *testing.T) {
	if workload.ByName("mm", workload.ScaleTest) == nil {
		t.Fatal("mm not found")
	}
	if workload.ByName("spine", workload.ScaleTest) == nil {
		t.Fatal("spine not found via extras")
	}
	if workload.ByName("pipeline", workload.ScaleTest) == nil {
		t.Fatal("pipeline not found via extras")
	}
	if workload.ByName("nope", workload.ScaleTest) != nil {
		t.Fatal("unexpected benchmark")
	}
	if s := workload.MM(32, 8).String(); s != "mm(N=32,B=8)" {
		t.Errorf("String = %q", s)
	}
	if s := workload.Ferret(8, 64).String(); s != "ferret(N=8)" {
		t.Errorf("String = %q", s)
	}
}

func TestBadParamsPanic(t *testing.T) {
	cases := []func(){
		func() { workload.MM(33, 8) },
		func() { workload.MM(32, 64) },
		func() { workload.Sort(0, 64) },
		func() { workload.SW(65, 16) },
		func() { workload.HW(0, 1, 64) },
		func() { workload.Ferret(0, 64) },
		func() { workload.Pipeline(0, 4, 2) },
		func() { workload.Pipeline(12, 4, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

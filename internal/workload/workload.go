// Package workload implements the five benchmarks of the paper's
// evaluation (§4, Figure 3): divide-and-conquer matrix multiplication
// (mm), parallel mergesort (sort), Smith-Waterman sequence alignment
// (sw), the Heart Wall tracking application (hw), and the Ferret
// content-based similarity search pipeline (ferret).
//
// Each benchmark computes real results over synthetic inputs and
// annotates its memory accesses through Task.Read/Task.Write so the race
// detectors see the same access stream a compiler-instrumented binary
// would produce. hw and ferret are synthetic kernels with the dag shape
// and access profile of their Rodinia/PARSEC namesakes (the original
// input datasets are not redistributable); DESIGN.md documents the
// substitution.
//
// All benchmarks are race-free by construction — the paper measures
// detection overhead, not bug hunts — and every Run carries a Verify
// check on the computed output so a broken scheduler or detector
// integration cannot silently pass.
package workload

import (
	"fmt"

	"sforder/internal/sched"
)

// Run is one fresh, runnable instance of a benchmark: Main is passed to
// sched.Run; Verify checks the computed output afterwards.
type Run struct {
	Main   func(*sched.Task)
	Verify func() error
}

// Benchmark describes one workload with its headline parameters.
type Benchmark struct {
	Name string
	Desc string
	N    int // input size (matrix dim, element count, frames, queries)
	B    int // base-case / block size, 0 when not applicable
	Make func() *Run
}

func (b *Benchmark) String() string {
	if b.B > 0 {
		return fmt.Sprintf("%s(N=%d,B=%d)", b.Name, b.N, b.B)
	}
	return fmt.Sprintf("%s(N=%d)", b.Name, b.N)
}

// Scale selects preset benchmark sizes.
type Scale int

const (
	// ScaleTest is small enough for exhaustive oracle validation.
	ScaleTest Scale = iota
	// ScaleBench is the default for the Figure 3-5 harness: large
	// enough that detector overheads dominate fixed costs, small enough
	// to run the full table in minutes on a laptop.
	ScaleBench
	// ScaleLarge approaches the paper's shapes (minutes per
	// configuration).
	ScaleLarge
)

// All returns the five paper benchmarks at the given scale, in the
// paper's row order.
func All(s Scale) []*Benchmark {
	switch s {
	case ScaleTest:
		return []*Benchmark{
			MM(32, 8), Sort(1000, 64), SW(64, 16), HW(3, 8, 64), Ferret(8, 64),
		}
	case ScaleLarge:
		return []*Benchmark{
			MM(256, 16), Sort(1_000_000, 8192), SW(1024, 32), HW(10, 64, 2048), Ferret(128, 2048),
		}
	default:
		return []*Benchmark{
			MM(128, 16), Sort(100_000, 2048), SW(512, 32), HW(6, 32, 1024), Ferret(64, 1024),
		}
	}
}

// Extras returns the post-paper adversarial workloads at the given
// scale: spine (the OM-renumber / label-depth adversary, ABL10),
// pipeline (the deep future-chain adversary, ABL11), and ksweep (the
// per-location reader-list and gp-merge adversary, ABL12). They are
// kept out of All so the Figure 3-5 tables keep the paper's row set;
// harness callers opt in (cmd/sforder -extras).
func Extras(s Scale) []*Benchmark {
	switch s {
	case ScaleTest:
		return []*Benchmark{Spine(60, 2), Pipeline(12, 4, 2), KSweep(12, 40)}
	case ScaleLarge:
		return []*Benchmark{Spine(5000, 2), Pipeline(1000, 16, 8), KSweep(1024, 4000)}
	default:
		return []*Benchmark{Spine(1500, 2), Pipeline(200, 8, 4), KSweep(256, 2000)}
	}
}

// ByName returns the benchmark with the given name at scale s — the
// paper set and the extras both — or nil.
func ByName(name string, s Scale) *Benchmark {
	for _, b := range append(All(s), Extras(s)...) {
		if b.Name == name {
			return b
		}
	}
	return nil
}

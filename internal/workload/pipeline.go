package workload

import (
	"fmt"

	"sforder/internal/sched"
)

// Pipeline returns the pipeline-parallel workload: `items` independent
// streams each flowing through `stages` future stages, with stage s a
// future that gets stage s-1 — the long future chains of Herlihy &
// Liu's well-structured futures programs (ROADMAP item 5). Every chain
// is created from the root strand, so the root's fork path grows by
// stages×items branch points and the late chains carry the deepest
// labels in any workload here; each get-ordered stage hand-off then
// makes full mode query Precedes across exactly those deep labels.
// Where spine is the compare-depth adversary built from nested spawns,
// pipeline is the same adversary built the way real streaming programs
// are. work is the vector length a stage reads and writes per item.
func Pipeline(stages, items, work int) *Benchmark {
	if stages < 1 || items < 1 || work < 1 {
		panic(fmt.Sprintf("workload: Pipeline bad params stages=%d items=%d work=%d", stages, items, work))
	}
	return &Benchmark{
		Name: "pipeline",
		Desc: "pipeline-parallel future chains (deep-label adversary, Herlihy & Liu shape)",
		N:    stages,
		B:    items,
		Make: func() *Run { return newPipelineRun(stages, items, work) },
	}
}

type pipelineState struct {
	stages, items, work int
	vals                []int32 // (stages+1) × items × work, row-major by stage
	want                []int32 // reference of the final stage row
}

// addr maps stage s, item i, lane k to a shadow address; the layout is
// one row per stage so each cell has exactly one writer.
func (s *pipelineState) addr(st, i, k int) uint64 {
	return uint64(st*s.items*s.work + i*s.work + k)
}

func (s *pipelineState) at(st, i, k int) *int32 {
	return &s.vals[st*s.items*s.work+i*s.work+k]
}

// transform is one stage's per-lane computation, kept nonlinear in the
// stage number so a skipped or doubled stage cannot verify.
func transform(v int32, st int) int32 {
	return (v*5 + int32(st)*7 + 13) % 1009
}

func newPipelineRun(stages, items, work int) *Run {
	st := &pipelineState{
		stages: stages, items: items, work: work,
		vals: make([]int32, (stages+1)*items*work),
	}
	st.want = make([]int32, items*work)
	for i := 0; i < items; i++ {
		for k := 0; k < work; k++ {
			v := int32((i*31 + k*17 + 7) % 1009)
			for sg := 1; sg <= stages; sg++ {
				v = transform(v, sg)
			}
			st.want[i*work+k] = v
		}
	}
	return &Run{Main: st.main, Verify: st.verify}
}

func (s *pipelineState) main(t *sched.Task) {
	// Stage 0: the root materializes every input cell, so each chain's
	// first read is ordered against a root write.
	for i := 0; i < s.items; i++ {
		for k := 0; k < s.work; k++ {
			t.Write(s.addr(0, i, k))
			*s.at(0, i, k) = int32((i*31 + k*17 + 7) % 1009)
		}
	}
	tails := make([]*sched.Future, s.items)
	for i := 0; i < s.items; i++ {
		var prev *sched.Future
		for sg := 1; sg <= s.stages; sg++ {
			i, sg, dep := i, sg, prev
			prev = t.Create(func(c *sched.Task) any {
				if dep != nil {
					c.Get(dep)
				}
				s.stage(c, sg, i)
				return nil
			})
		}
		tails[i] = prev
	}
	for i := 0; i < s.items; i++ {
		t.Get(tails[i])
		for k := 0; k < s.work; k++ {
			t.Read(s.addr(s.stages, i, k))
		}
	}
}

// stage computes row sg of item i from row sg-1. The reads are ordered
// before this strand by the Get chain (stage sg-1 wrote them), which
// is exactly the deep-label Precedes query full mode must answer.
func (s *pipelineState) stage(t *sched.Task, sg, i int) {
	for k := 0; k < s.work; k++ {
		t.Read(s.addr(sg-1, i, k))
		t.Write(s.addr(sg, i, k))
		*s.at(sg, i, k) = transform(*s.at(sg-1, i, k), sg)
	}
}

func (s *pipelineState) verify() error {
	for i := 0; i < s.items; i++ {
		for k := 0; k < s.work; k++ {
			if got, want := *s.at(s.stages, i, k), s.want[i*s.work+k]; got != want {
				return fmt.Errorf("pipeline: out[%d,%d] = %d, want %d", i, k, got, want)
			}
		}
	}
	return nil
}

package workload_test

import (
	"testing"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/sched"
	"sforder/internal/workload"
)

func TestChainComputesAndIsRaceFree(t *testing.T) {
	b := workload.Chain(50, 8)
	for _, serial := range []bool{true, false} {
		run := b.Make()
		reach := core.NewReach()
		hist := detect.NewHistory(detect.Options{Reach: reach})
		_, err := sched.Run(sched.Options{
			Serial: serial, Workers: 3, Tracer: reach, Checker: hist,
		}, run.Main)
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Verify(); err != nil {
			t.Fatal(err)
		}
		if hist.RaceCount() != 0 {
			t.Fatalf("serial=%v: chain raced: %v", serial, hist.Races())
		}
	}
}

func TestChainFutureCount(t *testing.T) {
	c, err := sched.Run(sched.Options{Serial: true}, workload.Chain(33, 4).Make().Main)
	if err != nil {
		t.Fatal(err)
	}
	if c.Futures != 34 { // 33 chain futures + root
		t.Errorf("futures = %d, want 34", c.Futures)
	}
	if c.Gets != 33 {
		t.Errorf("gets = %d, want 33", c.Gets)
	}
}

func TestFibComputesAndIsRaceFree(t *testing.T) {
	b := workload.Fib(12)
	for _, serial := range []bool{true, false} {
		run := b.Make()
		reach := core.NewReach()
		hist := detect.NewHistory(detect.Options{Reach: reach})
		_, err := sched.Run(sched.Options{
			Serial: serial, Workers: 3, Tracer: reach, Checker: hist,
		}, run.Main)
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Verify(); err != nil {
			t.Fatal(err)
		}
		if hist.RaceCount() != 0 {
			t.Fatalf("serial=%v: fib raced", serial)
		}
	}
}

func TestFibUsesNoFutures(t *testing.T) {
	c, err := sched.Run(sched.Options{Serial: true}, workload.Fib(10).Make().Main)
	if err != nil {
		t.Fatal(err)
	}
	if c.Futures != 1 {
		t.Errorf("futures = %d, want 1 (root only)", c.Futures)
	}
	if c.Spawns == 0 {
		t.Error("fib must spawn")
	}
}

func TestMicroBadParamsPanic(t *testing.T) {
	for i, f := range []func(){
		func() { workload.Chain(0, 1) },
		func() { workload.Chain(1, 0) },
		func() { workload.Fib(0) },
		func() { workload.Fib(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

package workload

import (
	"fmt"
	"math/rand"

	"sforder/internal/sched"
)

// SW returns Smith-Waterman local sequence alignment over two synthetic
// DNA sequences of length n, blocked into b×b tiles computed as one
// future per tile — (n/b)² futures in total, as in the paper.
//
// The root sweeps anti-diagonals: it gets every tile future of diagonal
// d−1 (each handle touched exactly once) and then creates every tile of
// diagonal d, so all wavefront dependences flow through the root's
// serial order while tiles within one diagonal run in parallel. This is
// the single-touch-legal formulation of the wavefront; DESIGN.md
// discusses the relation to the paper's Cilk-F version.
func SW(n, b int) *Benchmark {
	if n%b != 0 || b < 2 {
		panic(fmt.Sprintf("workload: SW requires b | n, b ≥ 2; got n=%d b=%d", n, b))
	}
	return &Benchmark{
		Name: "sw",
		Desc: "Smith-Waterman sequence alignment (wavefront futures)",
		N:    n,
		B:    b,
		Make: func() *Run { return newSWRun(n, b) },
	}
}

const (
	swMatch    = 2
	swMismatch = -1
	swGap      = -1
)

type swState struct {
	n, b int
	seqA []byte  // shadow [0, n)
	seqB []byte  // shadow [n, 2n)
	h    []int32 // (n+1)×(n+1) score matrix, shadow [2n, 2n+(n+1)²)
	best int32
}

func newSWRun(n, b int) *Run {
	st := &swState{n: n, b: b,
		seqA: make([]byte, n),
		seqB: make([]byte, n),
		h:    make([]int32, (n+1)*(n+1)),
	}
	rng := rand.New(rand.NewSource(99))
	const bases = "ACGT"
	for i := range st.seqA {
		st.seqA[i] = bases[rng.Intn(4)]
		st.seqB[i] = bases[rng.Intn(4)]
	}
	return &Run{Main: st.main, Verify: st.verify}
}

func (s *swState) addrA(i int) uint64    { return uint64(i) }
func (s *swState) addrB(j int) uint64    { return uint64(s.n + j) }
func (s *swState) addrH(i, j int) uint64 { return uint64(2*s.n + i*(s.n+1) + j) }

func (s *swState) main(t *sched.Task) {
	m := s.n / s.b // tiles per side
	futs := make([][]*sched.Future, m)
	for i := range futs {
		futs[i] = make([]*sched.Future, m)
	}
	// Anti-diagonal sweep: join diagonal d-1, then launch diagonal d.
	for d := 0; d < 2*m-1; d++ {
		if d > 0 {
			prev := d - 1
			for i := max(0, prev-m+1); i <= min(prev, m-1); i++ {
				t.Get(futs[i][prev-i])
			}
		}
		for i := max(0, d-m+1); i <= min(d, m-1); i++ {
			ti, tj := i, d-i
			futs[ti][tj] = t.Create(func(c *sched.Task) any {
				s.tile(c, ti, tj)
				return nil
			})
		}
	}
	// Join the final diagonal.
	last := 2*m - 2
	for i := max(0, last-m+1); i <= min(last, m-1); i++ {
		t.Get(futs[i][last-i])
	}
	// Reduce the best local score serially.
	for i := 1; i <= s.n; i++ {
		for j := 1; j <= s.n; j++ {
			t.Read(s.addrH(i, j))
			if v := s.h[i*(s.n+1)+j]; v > s.best {
				s.best = v
			}
		}
	}
}

// tile fills the score cells of tile (ti, tj).
func (s *swState) tile(t *sched.Task, ti, tj int) {
	w := s.n + 1
	for i := ti*s.b + 1; i <= (ti+1)*s.b; i++ {
		for j := tj*s.b + 1; j <= (tj+1)*s.b; j++ {
			t.Read(s.addrA(i - 1))
			t.Read(s.addrB(j - 1))
			sc := int32(swMismatch)
			if s.seqA[i-1] == s.seqB[j-1] {
				sc = swMatch
			}
			t.Read(s.addrH(i-1, j-1))
			t.Read(s.addrH(i-1, j))
			t.Read(s.addrH(i, j-1))
			v := s.h[(i-1)*w+j-1] + sc
			if u := s.h[(i-1)*w+j] + swGap; u > v {
				v = u
			}
			if l := s.h[i*w+j-1] + swGap; l > v {
				v = l
			}
			if v < 0 {
				v = 0
			}
			t.Write(s.addrH(i, j))
			s.h[i*w+j] = v
		}
	}
}

// verify recomputes the matrix serially and compares the best score and
// a sample of cells.
func (s *swState) verify() error {
	w := s.n + 1
	ref := make([]int32, w*w)
	var best int32
	for i := 1; i <= s.n; i++ {
		for j := 1; j <= s.n; j++ {
			sc := int32(swMismatch)
			if s.seqA[i-1] == s.seqB[j-1] {
				sc = swMatch
			}
			v := ref[(i-1)*w+j-1] + sc
			if u := ref[(i-1)*w+j] + swGap; u > v {
				v = u
			}
			if l := ref[i*w+j-1] + swGap; l > v {
				v = l
			}
			if v < 0 {
				v = 0
			}
			ref[i*w+j] = v
			if v > best {
				best = v
			}
		}
	}
	if best != s.best {
		return fmt.Errorf("sw: best score %d, want %d", s.best, best)
	}
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 32; k++ {
		i, j := 1+rng.Intn(s.n), 1+rng.Intn(s.n)
		if s.h[i*w+j] != ref[i*w+j] {
			return fmt.Errorf("sw: H[%d][%d] = %d, want %d", i, j, s.h[i*w+j], ref[i*w+j])
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package workload

import (
	"fmt"

	"sforder/internal/sched"
)

// HW returns the Heart Wall tracking kernel: a synthetic stand-in for
// the Rodinia application that tracks the movement of sample points on a
// heart wall across a sequence of ultrasound frames. frames is the
// number of frames, batches the number of tracking-point batches per
// frame (one future each), and window the per-point search-window pixel
// count.
//
// The dag shape matches the original: per frame, a fan of independent
// tracking futures; the next frame's futures are created only after the
// previous frame's are gotten, because each point's search is centred on
// its previous position. Accesses are read-heavy — each point reads its
// whole search window and writes one position — mirroring the paper's
// profile (reads ≈ queries ≫ writes).
func HW(frames, batches, window int) *Benchmark {
	if frames < 1 || batches < 1 || window < 4 {
		panic(fmt.Sprintf("workload: HW bad params frames=%d batches=%d window=%d", frames, batches, window))
	}
	return &Benchmark{
		Name: "hw",
		Desc: "heart wall point tracking (synthetic Rodinia kernel)",
		N:    frames,
		B:    batches,
		Make: func() *Run { return newHWRun(frames, batches, window) },
	}
}

type hwState struct {
	frames, batches, window int
	pointsPerBatch          int
	img                     []int32 // one frame's pixels, rewritten per frame
	pos                     []int32 // point positions, one per point
	checksum                int64
	wantChecksum            int64
}

func newHWRun(frames, batches, window int) *Run {
	const pointsPerBatch = 4
	npts := batches * pointsPerBatch
	imgSize := npts * window
	st := &hwState{
		frames: frames, batches: batches, window: window,
		pointsPerBatch: pointsPerBatch,
		img:            make([]int32, imgSize),
		pos:            make([]int32, npts),
	}
	for p := 0; p < npts; p++ {
		st.pos[p] = int32(p * window)
	}
	st.wantChecksum = st.reference()
	return &Run{Main: st.main, Verify: st.verify}
}

// Shadow layout: img at [0, len(img)), pos after it.
func (s *hwState) addrImg(i int) uint64 { return uint64(i) }
func (s *hwState) addrPos(p int) uint64 { return uint64(len(s.img) + p) }

// pixel is the deterministic synthetic frame content.
func pixel(frame, i int) int32 {
	x := uint32(frame*2654435761) ^ uint32(i*40503)
	x ^= x >> 13
	return int32(x % 251)
}

func (s *hwState) main(t *sched.Task) {
	npts := s.batches * s.pointsPerBatch
	for f := 0; f < s.frames; f++ {
		// "Acquire" the frame serially (writes the image buffer).
		for i := range s.img {
			t.Write(s.addrImg(i))
			s.img[i] = pixel(f, i)
		}
		// Track all batches in parallel, one future per batch.
		futs := make([]*sched.Future, s.batches)
		for bi := 0; bi < s.batches; bi++ {
			bi := bi
			futs[bi] = t.Create(func(c *sched.Task) any {
				for p := bi * s.pointsPerBatch; p < (bi+1)*s.pointsPerBatch; p++ {
					s.track(c, p)
				}
				return nil
			})
		}
		for _, h := range futs {
			t.Get(h)
		}
	}
	// Checksum the final positions.
	for p := 0; p < npts; p++ {
		t.Read(s.addrPos(p))
		s.checksum += int64(s.pos[p])
	}
}

// track scans point p's search window in the current frame and moves the
// point to the window's brightest offset.
func (s *hwState) track(t *sched.Task, p int) {
	t.Read(s.addrPos(p))
	base := int(s.pos[p]) % (len(s.img) - s.window)
	if base < 0 {
		base = 0
	}
	bestOff, bestVal := 0, int32(-1)
	for o := 0; o < s.window; o++ {
		t.Read(s.addrImg(base + o))
		if v := s.img[base+o]; v > bestVal {
			bestVal = v
			bestOff = o
		}
	}
	t.Write(s.addrPos(p))
	s.pos[p] = int32((base + bestOff) % len(s.img))
}

// reference recomputes the whole run serially (uninstrumented).
func (s *hwState) reference() int64 {
	npts := s.batches * s.pointsPerBatch
	img := make([]int32, len(s.img))
	pos := make([]int32, npts)
	for p := range pos {
		pos[p] = int32(p * s.window)
	}
	for f := 0; f < s.frames; f++ {
		for i := range img {
			img[i] = pixel(f, i)
		}
		for p := 0; p < npts; p++ {
			base := int(pos[p]) % (len(img) - s.window)
			if base < 0 {
				base = 0
			}
			bestOff, bestVal := 0, int32(-1)
			for o := 0; o < s.window; o++ {
				if v := img[base+o]; v > bestVal {
					bestVal = v
					bestOff = o
				}
			}
			pos[p] = int32((base + bestOff) % len(img))
		}
	}
	var sum int64
	for _, v := range pos {
		sum += int64(v)
	}
	return sum
}

func (s *hwState) verify() error {
	if s.checksum != s.wantChecksum {
		return fmt.Errorf("hw: checksum %d, want %d", s.checksum, s.wantChecksum)
	}
	return nil
}

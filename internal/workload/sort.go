package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"sforder/internal/sched"
)

// Sort returns parallel mergesort over n int32 keys with serial base
// case b. The recursive sorts of the two halves run as a created future
// (left) plus the continuation (right), and the divide-and-conquer
// merge (binary splitting) also runs its left half as a future — the
// future-heavy mergesort of the paper, whose future count scales as
// (n/b)·log(n/b).
func Sort(n, b int) *Benchmark {
	if b < 4 || n < 1 {
		panic(fmt.Sprintf("workload: Sort requires n ≥ 1, b ≥ 4; got n=%d b=%d", n, b))
	}
	return &Benchmark{
		Name: "sort",
		Desc: "parallel mergesort",
		N:    n,
		B:    b,
		Make: func() *Run { return newSortRun(n, b) },
	}
}

type sortState struct {
	n, b int
	data []int32 // shadow addrs [0, n)
	tmp  []int32 // shadow addrs [n, 2n)
}

func newSortRun(n, b int) *Run {
	st := &sortState{n: n, b: b, data: make([]int32, n), tmp: make([]int32, n)}
	rng := rand.New(rand.NewSource(1234))
	for i := range st.data {
		st.data[i] = int32(rng.Intn(1 << 30))
	}
	return &Run{
		Main:   func(t *sched.Task) { st.mergesort(t, 0, n, false) },
		Verify: st.verify,
	}
}

func (s *sortState) addr(i int, inTmp bool) uint64 {
	if inTmp {
		return uint64(s.n + i)
	}
	return uint64(i)
}

func (s *sortState) buf(inTmp bool) []int32 {
	if inTmp {
		return s.tmp
	}
	return s.data
}

// mergesort sorts [lo, hi) of data (or tmp when toTmp's source flips),
// leaving the result in data when toTmp is false and in tmp otherwise.
func (s *sortState) mergesort(t *sched.Task, lo, hi int, toTmp bool) {
	n := hi - lo
	if n <= s.b {
		s.baseSort(t, lo, hi)
		if toTmp {
			for i := lo; i < hi; i++ {
				t.Read(s.addr(i, false))
				t.Write(s.addr(i, true))
				s.tmp[i] = s.data[i]
			}
		}
		return
	}
	mid := lo + n/2
	h := t.Create(func(c *sched.Task) any {
		s.mergesort(c, lo, mid, !toTmp)
		return nil
	})
	s.mergesort(t, mid, hi, !toTmp)
	t.Get(h)
	s.merge(t, lo, mid, mid, hi, lo, !toTmp, toTmp)
}

// baseSort sorts [lo, hi) of data in place, charging one read and one
// write per element moved (insertion-sort cost model over a real
// sort.Slice to keep test sizes fast).
func (s *sortState) baseSort(t *sched.Task, lo, hi int) {
	seg := s.data[lo:hi]
	sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	for i := lo; i < hi; i++ {
		t.Read(s.addr(i, false))
		t.Write(s.addr(i, false))
	}
}

// merge merges src[lo1,hi1) and src[lo2,hi2) into dst starting at out,
// in parallel by binary splitting. srcTmp/dstTmp select the arrays.
func (s *sortState) merge(t *sched.Task, lo1, hi1, lo2, hi2, out int, srcTmp, dstTmp bool) {
	n1, n2 := hi1-lo1, hi2-lo2
	if n1+n2 <= s.b {
		s.serialMerge(t, lo1, hi1, lo2, hi2, out, srcTmp, dstTmp)
		return
	}
	if n1 < n2 {
		lo1, hi1, lo2, hi2 = lo2, hi2, lo1, hi1
		n1, n2 = n2, n1
	}
	mid1 := (lo1 + hi1) / 2
	src := s.buf(srcTmp)
	pivot := src[mid1]
	t.Read(s.addr(mid1, srcTmp))
	// Binary-search the split point in the second run.
	mid2 := lo2 + sort.Search(n2, func(i int) bool {
		return src[lo2+i] >= pivot
	})
	t.Read(s.addr(min(mid2, hi2-1), srcTmp)) // charge the probe
	outMid := out + (mid1 - lo1) + (mid2 - lo2)
	h := t.Create(func(c *sched.Task) any {
		s.merge(c, lo1, mid1, lo2, mid2, out, srcTmp, dstTmp)
		return nil
	})
	s.merge(t, mid1, hi1, mid2, hi2, outMid, srcTmp, dstTmp)
	t.Get(h)
}

func (s *sortState) serialMerge(t *sched.Task, lo1, hi1, lo2, hi2, out int, srcTmp, dstTmp bool) {
	src, dst := s.buf(srcTmp), s.buf(dstTmp)
	i, j, o := lo1, lo2, out
	for i < hi1 && j < hi2 {
		t.Read(s.addr(i, srcTmp))
		t.Read(s.addr(j, srcTmp))
		if src[i] <= src[j] {
			t.Write(s.addr(o, dstTmp))
			dst[o] = src[i]
			i++
		} else {
			t.Write(s.addr(o, dstTmp))
			dst[o] = src[j]
			j++
		}
		o++
	}
	for ; i < hi1; i++ {
		t.Read(s.addr(i, srcTmp))
		t.Write(s.addr(o, dstTmp))
		dst[o] = src[i]
		o++
	}
	for ; j < hi2; j++ {
		t.Read(s.addr(j, srcTmp))
		t.Write(s.addr(o, dstTmp))
		dst[o] = src[j]
		o++
	}
}

func (s *sortState) verify() error {
	for i := 1; i < s.n; i++ {
		if s.data[i-1] > s.data[i] {
			return fmt.Errorf("sort: data[%d]=%d > data[%d]=%d", i-1, s.data[i-1], i, s.data[i])
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

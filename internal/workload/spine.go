package workload

import (
	"fmt"

	"sforder/internal/sched"
)

// Spine returns the ABL10 adversarial microbenchmark: a spawn spine of
// the given depth where every spawned child immediately spawns again
// before syncing, with `work` instrumented writes per strand. Every
// spawn batch lands immediately after the previous child in both OM
// orders, so the whole run hammers one interior point of each list:
// label gaps halve level after level, forcing bucket splits and
// top-level renumberings under the OM maintenance lock — the pattern
// that used to drive the list toward label exhaustion. The DePa
// substrate pays the dual cost instead: labels grow one component per
// level, so the spine maximizes label length (depth/32 words per
// comparison) while taking zero maintenance locks. The ABL10 crossover
// table in EXPERIMENTS.md runs exactly this shape against mm/hw/sort.
func Spine(depth, work int) *Benchmark {
	if depth < 1 || work < 1 {
		panic(fmt.Sprintf("workload: Spine bad params depth=%d work=%d", depth, work))
	}
	return &Benchmark{
		Name: "spine",
		Desc: "nested spawn spine (OM renumber / DePa label-depth adversary)",
		N:    depth,
		B:    work,
		Make: func() *Run { return newSpineRun(depth, work) },
	}
}

func newSpineRun(depth, work int) *Run {
	got := 0
	var descend func(t *sched.Task, d int) int
	descend = func(t *sched.Task, d int) int {
		for i := 0; i < work; i++ {
			// Race-free: the strands touching d are serially chained, but
			// every write checks against the previous writer, so full mode
			// issues Precedes queries between deep neighboring strands —
			// the compare-depth adversary for label substrates.
			t.Write(uint64(d))
		}
		if d == 0 {
			t.Write(uint64(depth + 1))
			return 1
		}
		var sub int
		t.Spawn(func(c *sched.Task) { sub = descend(c, d-1) })
		t.Sync()
		t.Read(uint64(d))
		return sub + 1
	}
	return &Run{
		Main: func(t *sched.Task) { got = descend(t, depth) },
		Verify: func() error {
			if want := depth + 1; got != want {
				return fmt.Errorf("spine: got %d, want %d", got, want)
			}
			return nil
		},
	}
}

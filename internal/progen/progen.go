// Package progen generates random structured-future programs for the
// scheduler — the fuzzing substrate behind the detector correctness
// tests and the racehunt example.
//
// A generated Program is a static tree of operations (spawn, sync,
// create, get, read, write) built once from a seed; interpreting it is
// deterministic, so serial and parallel executions of the same Program
// produce the same computation dag (up to strand numbering) and the same
// set of races. Handle transfer during generation follows the
// structured-future rules by construction: a handle is gotten at most
// once, and only at a program point sequentially after its create.
package progen

import (
	"math/rand"

	"sforder/internal/sched"
)

type opKind uint8

const (
	opSpawn opKind = iota
	opSync
	opCreate
	opGet
	opRead
	opWrite
)

type op struct {
	kind opKind
	body *block // opSpawn, opCreate
	slot int    // opCreate, opGet: index into the handle table
	addr uint64 // opRead, opWrite
}

type block struct {
	ops []op
}

// Program is a reproducible random structured-future program.
type Program struct {
	root  *block
	slots int
	cfg   Config
}

// Config bounds the generated program shape.
type Config struct {
	Seed     int64
	MaxDepth int // nesting depth of spawned/created bodies (default 4)
	MaxOps   int // ops per block (default 8)
	Addrs    int // size of the shadow address space (default 16)
	// GetProb, per mille, biases how often an available handle is
	// touched (default 700).
	GetProb int
}

func (c *Config) fill() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.MaxOps == 0 {
		c.MaxOps = 8
	}
	if c.Addrs == 0 {
		c.Addrs = 16
	}
	if c.GetProb == 0 {
		c.GetProb = 700
	}
}

// New generates a program from cfg.
func New(cfg Config) *Program {
	cfg.fill()
	p := &Program{cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p.root = p.genBlock(rng, cfg.MaxDepth, nil)
	return p
}

// genBlock generates one function-instance body. avail is the set of
// handle slots this body may still touch; ownership of a slot moves into
// a child body when transferred (single touch by construction).
func (p *Program) genBlock(rng *rand.Rand, depth int, avail []int) *block {
	b := &block{}
	nops := 1 + rng.Intn(p.cfg.MaxOps)
	for i := 0; i < nops; i++ {
		switch choice := rng.Intn(100); {
		case choice < 30: // memory access
			addr := uint64(rng.Intn(p.cfg.Addrs))
			if rng.Intn(2) == 0 {
				b.ops = append(b.ops, op{kind: opRead, addr: addr})
			} else {
				b.ops = append(b.ops, op{kind: opWrite, addr: addr})
			}
		case choice < 50 && depth > 0: // spawn
			var transfer []int
			avail, transfer = split(rng, avail)
			b.ops = append(b.ops, op{kind: opSpawn, body: p.genBlock(rng, depth-1, transfer)})
		case choice < 60: // sync
			b.ops = append(b.ops, op{kind: opSync})
		case choice < 80 && depth > 0: // create
			slot := p.slots
			p.slots++
			var transfer []int
			avail, transfer = split(rng, avail)
			b.ops = append(b.ops, op{kind: opCreate, slot: slot, body: p.genBlock(rng, depth-1, transfer)})
			avail = append(avail, slot)
		default: // get one available handle
			if len(avail) == 0 || rng.Intn(1000) >= p.cfg.GetProb {
				b.ops = append(b.ops, op{kind: opRead, addr: uint64(rng.Intn(p.cfg.Addrs))})
				break
			}
			j := rng.Intn(len(avail))
			slot := avail[j]
			avail = append(avail[:j], avail[j+1:]...)
			b.ops = append(b.ops, op{kind: opGet, slot: slot})
		}
	}
	return b
}

// split randomly moves a subset of avail into a child's transfer set.
func split(rng *rand.Rand, avail []int) (keep, transfer []int) {
	for _, s := range avail {
		if rng.Intn(3) == 0 {
			transfer = append(transfer, s)
		} else {
			keep = append(keep, s)
		}
	}
	return keep, transfer
}

// Slots returns how many futures the program creates.
func (p *Program) Slots() int { return p.slots }

// Main returns the program's entry point for sched.Run. The returned
// function may be executed many times; each execution allocates its own
// handle table.
func (p *Program) Main() func(*sched.Task) {
	return func(t *sched.Task) {
		handles := make([]*sched.Future, p.slots)
		runBlock(t, p.root, handles)
	}
}

// runBlock interprets one body. The handle table is shared by pointer:
// slot s is written by the creating strand strictly before any getter's
// branch point, so the accesses are ordered by the dag itself.
func runBlock(t *sched.Task, b *block, handles []*sched.Future) {
	for _, o := range b.ops {
		switch o.kind {
		case opRead:
			t.Read(o.addr)
		case opWrite:
			t.Write(o.addr)
		case opSync:
			t.Sync()
		case opSpawn:
			body := o.body
			t.Spawn(func(c *sched.Task) { runBlock(c, body, handles) })
		case opCreate:
			body := o.body
			handles[o.slot] = t.Create(func(c *sched.Task) any {
				runBlock(c, body, handles)
				return nil
			})
		case opGet:
			t.Get(handles[o.slot])
		}
	}
}

package progen_test

import (
	"testing"
	"testing/quick"

	"sforder/internal/dag"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// TestProgramsAreStructured: every generated program must produce a
// valid SF-dag — single-touch, handle-safe paths, well-formed edges.
func TestProgramsAreStructured(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 5, MaxOps: 9})
		rec := dag.NewRecorder()
		if _, err := sched.Run(sched.Options{Serial: true, Tracer: rec}, p.Main()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rec.G.Validate(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, rec.G.DOT())
		}
	}
}

// TestDeterministicAcrossRuns: one Program executed twice produces the
// same counts (the handle table is per-execution).
func TestDeterministicAcrossRuns(t *testing.T) {
	p := progen.New(progen.Config{Seed: 5, MaxDepth: 4, MaxOps: 8})
	main := p.Main()
	c1, err := sched.Run(sched.Options{Serial: true, CountAccesses: true}, main)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sched.Run(sched.Options{Serial: true, CountAccesses: true}, main)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("re-execution diverged: %+v vs %+v", c1, c2)
	}
}

// TestScheduleIndependentShape: serial and parallel executions of one
// program produce the same dag-shape counts.
func TestScheduleIndependentShape(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8})
		cs, err := sched.Run(sched.Options{Serial: true, CountAccesses: true}, p.Main())
		if err != nil {
			t.Fatal(err)
		}
		cp, err := sched.Run(sched.Options{Workers: 4, CountAccesses: true}, p.Main())
		if err != nil {
			t.Fatal(err)
		}
		// Steals depend on the schedule, not the program shape.
		cp.Steals = cs.Steals
		if cs != cp {
			t.Errorf("seed %d: serial %+v != parallel %+v", seed, cs, cp)
		}
	}
}

// TestSlotsMatchCreates: Slots equals the number of futures created at
// runtime.
func TestSlotsMatchCreates(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8})
		c, err := sched.Run(sched.Options{Serial: true}, p.Main())
		if err != nil {
			t.Fatal(err)
		}
		if int(c.Futures)-1 != p.Slots() {
			t.Errorf("seed %d: runtime futures %d, Slots %d", seed, c.Futures-1, p.Slots())
		}
	}
}

// TestQuickGeneratedProgramsNeverPanic: property — arbitrary seeds and
// shape parameters yield programs that execute cleanly and validate.
func TestQuickGeneratedProgramsNeverPanic(t *testing.T) {
	f := func(seed int64, depth, ops uint8) bool {
		p := progen.New(progen.Config{
			Seed:     seed,
			MaxDepth: 1 + int(depth%5),
			MaxOps:   1 + int(ops%10),
		})
		rec := dag.NewRecorder()
		if _, err := sched.Run(sched.Options{Serial: true, Tracer: rec}, p.Main()); err != nil {
			return false
		}
		return rec.G.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package core_test

import (
	"fmt"
	"testing"

	"sforder/internal/core"
	"sforder/internal/dag"
	"sforder/internal/obsv"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// runWithReachCfg is runWithReach with an explicit core.Config, for the
// substrate (ABL10) tests.
func runWithReachCfg(t *testing.T, cfg core.Config, workers int, serial bool, main func(*sched.Task)) (*core.Reach, *dag.Recorder) {
	t.Helper()
	r := core.New(cfg)
	rec := dag.NewRecorder()
	_, err := sched.Run(sched.Options{
		Serial:  serial,
		Workers: workers,
		Tracer:  sched.MultiTracer{r, rec},
	}, main)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.G.Validate(); err != nil {
		t.Fatalf("recorded dag invalid: %v", err)
	}
	return r, rec
}

func TestParseSubstrate(t *testing.T) {
	for _, c := range []struct {
		in   string
		want core.Substrate
		err  bool
	}{
		{"om", core.SubstrateOM, false},
		{"", core.SubstrateOM, false},
		{"depa", core.SubstrateDePa, false},
		{"hybrid", core.SubstrateHybrid, false},
		{"interval", core.SubstrateOM, true},
	} {
		got, err := core.ParseSubstrate(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseSubstrate(%q) = (%v, %v), want (%v, err=%v)", c.in, got, err, c.want, c.err)
		}
	}
	if core.SubstrateDePa.String() != "depa" || core.SubstrateOM.String() != "om" ||
		core.SubstrateHybrid.String() != "hybrid" {
		t.Error("Substrate.String round trip broken")
	}
}

// TestDePaRandomProgramsSerial cross-validates the DePa substrate's
// Precedes against the exhaustive dag closure, mirroring
// TestRandomProgramsSerial for the OM pair.
func TestDePaRandomProgramsSerial(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r, rec := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa}, 0, true, p.Main())
		crossValidate(t, fmt.Sprintf("depa-seed%d", seed), r, rec)
	}
}

// TestDePaRandomProgramsParallel does the same under the parallel
// engine, where label extensions race with queries across workers.
func TestDePaRandomProgramsParallel(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r, rec := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa}, 4, false, p.Main())
		crossValidate(t, fmt.Sprintf("depa-par-seed%d", seed), r, rec)
	}
}

// TestDePaNoArena exercises the heap-fallback label path (the -noarena
// ablation crossed with -reach=depa).
func TestDePaNoArena(t *testing.T) {
	p := progen.New(progen.Config{Seed: 3, MaxDepth: 4, MaxOps: 7})
	r, rec := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa, NoArena: true}, 0, true, p.Main())
	crossValidate(t, "depa-noarena", r, rec)
}

// TestSubstratesAgree pins verdict equality between the two substrates
// directly (both also agree with the oracle above, but this catches a
// matched pair of errors): every ordered strand pair, same program,
// both Precedes and LeftOf.
func TestSubstratesAgree(t *testing.T) {
	for seed := int64(50); seed < 60; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8})
		omR, omRec := runWithReachCfg(t, core.Config{}, 0, true, p.Main())
		dpR, dpRec := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa}, 0, true, p.Main())
		omS, dpS := omRec.Strands(), dpRec.Strands()
		if len(omS) != len(dpS) {
			t.Fatalf("seed %d: strand counts differ: %d vs %d", seed, len(omS), len(dpS))
		}
		// Serial execution is deterministic, so strand i is the same
		// logical strand in both runs.
		for i, u := range omS {
			for j, v := range omS {
				if i == j {
					continue
				}
				if om, dp := omR.Precedes(u, v), dpR.Precedes(dpS[i], dpS[j]); om != dp {
					t.Fatalf("seed %d: Precedes(%d, %d): om=%v depa=%v", seed, i, j, om, dp)
				}
				if om, dp := omR.LeftOf(u, v), dpR.LeftOf(dpS[i], dpS[j]); om != dp {
					t.Fatalf("seed %d: LeftOf(%d, %d): om=%v depa=%v", seed, i, j, om, dp)
				}
			}
		}
	}
}

// TestDePaMemoryAccounted: the DePa substrate must account label bytes
// in MemBytes the way the OM pair accounts its lists.
func TestDePaMemoryAccounted(t *testing.T) {
	r, _ := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa}, 0, true, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return nil })
		t.Get(h)
	})
	if r.MemBytes() <= 0 {
		t.Error("DePa reachability structures must account some memory")
	}
}

// hybridCfg uses a threshold small enough that progen programs (depth
// ≤ 4-5 forks but each spawn/create/get adds components) actually
// cross the flat/cord boundary mid-run, exercising both compare paths
// and the mixed flat-present/flat-absent pairs.
func hybridCfg() core.Config {
	return core.Config{Reach: core.SubstrateHybrid, HybridDepth: 6}
}

// TestHybridRandomProgramsSerial cross-validates the hybrid substrate
// against the exhaustive dag closure.
func TestHybridRandomProgramsSerial(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r, rec := runWithReachCfg(t, hybridCfg(), 0, true, p.Main())
		crossValidate(t, fmt.Sprintf("hybrid-seed%d", seed), r, rec)
	}
}

// TestHybridRandomProgramsParallel does the same under the parallel
// engine, where label extensions race with queries across workers.
func TestHybridRandomProgramsParallel(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r, rec := runWithReachCfg(t, hybridCfg(), 4, false, p.Main())
		crossValidate(t, fmt.Sprintf("hybrid-par-seed%d", seed), r, rec)
	}
}

// TestHybridNoArena exercises the heap-fallback path for both label
// representations at once.
func TestHybridNoArena(t *testing.T) {
	p := progen.New(progen.Config{Seed: 3, MaxDepth: 4, MaxOps: 7})
	cfg := hybridCfg()
	cfg.NoArena = true
	r, rec := runWithReachCfg(t, cfg, 0, true, p.Main())
	crossValidate(t, "hybrid-noarena", r, rec)
}

// TestHybridAgreesWithBoth pins verdict equality of the hybrid against
// both other substrates on the same serial programs — every ordered
// strand pair, Precedes and LeftOf — so a flat/cord disagreement at
// the threshold cannot hide behind the oracle's coarser view.
func TestHybridAgreesWithBoth(t *testing.T) {
	for seed := int64(50); seed < 58; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8})
		omR, omRec := runWithReachCfg(t, core.Config{}, 0, true, p.Main())
		dpR, dpRec := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa}, 0, true, p.Main())
		hyR, hyRec := runWithReachCfg(t, hybridCfg(), 0, true, p.Main())
		omS, dpS, hyS := omRec.Strands(), dpRec.Strands(), hyRec.Strands()
		if len(omS) != len(hyS) || len(dpS) != len(hyS) {
			t.Fatalf("seed %d: strand counts differ: %d/%d/%d", seed, len(omS), len(dpS), len(hyS))
		}
		for i, u := range omS {
			for j, v := range omS {
				if i == j {
					continue
				}
				om := omR.Precedes(u, v)
				dp := dpR.Precedes(dpS[i], dpS[j])
				hy := hyR.Precedes(hyS[i], hyS[j])
				if om != hy || dp != hy {
					t.Fatalf("seed %d: Precedes(%d, %d): om=%v depa=%v hybrid=%v", seed, i, j, om, dp, hy)
				}
				oml := omR.LeftOf(u, v)
				hyl := hyR.LeftOf(hyS[i], hyS[j])
				if oml != hyl {
					t.Fatalf("seed %d: LeftOf(%d, %d): om=%v hybrid=%v", seed, i, j, oml, hyl)
				}
			}
		}
	}
}

// TestHybridUsesBothPaths runs a program deep enough to cross
// HybridDepth, queries every strand pair, and checks via the stats
// gauges that some compares took the flat fast path and some fell
// through to cords — i.e. the tests above actually covered the mix
// they claim to.
func TestHybridUsesBothPaths(t *testing.T) {
	r, rec := runWithReachCfg(t, hybridCfg(), 0, true, func(t *sched.Task) {
		var descend func(t *sched.Task, d int)
		descend = func(t *sched.Task, d int) {
			if d == 0 {
				return
			}
			t.Spawn(func(c *sched.Task) { descend(c, d-1) })
			t.Sync()
		}
		descend(t, 20)
	})
	strands := rec.Strands()
	for _, u := range strands {
		for _, v := range strands {
			if u != v {
				r.Precedes(u, v)
			}
		}
	}
	reg := obsv.NewRegistry()
	r.RegisterStats(reg)
	snap := reg.Snapshot()
	flat, total := snap["depa.flat_compares"], snap["depa.compares"]
	if flat == 0 {
		t.Error("no compares took the flat fast path")
	}
	if total <= flat {
		t.Errorf("no compares fell through to cords: flat=%d total=%d", flat, total)
	}
	if _, ok := snap["depa.chunks"]; !ok {
		t.Error("depa.chunks gauge missing")
	}
	if _, ok := snap["depa.slab_waste_bytes"]; !ok {
		t.Error("depa.slab_waste_bytes gauge missing")
	}
}

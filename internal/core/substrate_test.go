package core_test

import (
	"fmt"
	"testing"

	"sforder/internal/core"
	"sforder/internal/dag"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// runWithReachCfg is runWithReach with an explicit core.Config, for the
// substrate (ABL10) tests.
func runWithReachCfg(t *testing.T, cfg core.Config, workers int, serial bool, main func(*sched.Task)) (*core.Reach, *dag.Recorder) {
	t.Helper()
	r := core.New(cfg)
	rec := dag.NewRecorder()
	_, err := sched.Run(sched.Options{
		Serial:  serial,
		Workers: workers,
		Tracer:  sched.MultiTracer{r, rec},
	}, main)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.G.Validate(); err != nil {
		t.Fatalf("recorded dag invalid: %v", err)
	}
	return r, rec
}

func TestParseSubstrate(t *testing.T) {
	for _, c := range []struct {
		in   string
		want core.Substrate
		err  bool
	}{
		{"om", core.SubstrateOM, false},
		{"", core.SubstrateOM, false},
		{"depa", core.SubstrateDePa, false},
		{"interval", core.SubstrateOM, true},
	} {
		got, err := core.ParseSubstrate(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseSubstrate(%q) = (%v, %v), want (%v, err=%v)", c.in, got, err, c.want, c.err)
		}
	}
	if core.SubstrateDePa.String() != "depa" || core.SubstrateOM.String() != "om" {
		t.Error("Substrate.String round trip broken")
	}
}

// TestDePaRandomProgramsSerial cross-validates the DePa substrate's
// Precedes against the exhaustive dag closure, mirroring
// TestRandomProgramsSerial for the OM pair.
func TestDePaRandomProgramsSerial(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r, rec := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa}, 0, true, p.Main())
		crossValidate(t, fmt.Sprintf("depa-seed%d", seed), r, rec)
	}
}

// TestDePaRandomProgramsParallel does the same under the parallel
// engine, where label extensions race with queries across workers.
func TestDePaRandomProgramsParallel(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r, rec := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa}, 4, false, p.Main())
		crossValidate(t, fmt.Sprintf("depa-par-seed%d", seed), r, rec)
	}
}

// TestDePaNoArena exercises the heap-fallback label path (the -noarena
// ablation crossed with -reach=depa).
func TestDePaNoArena(t *testing.T) {
	p := progen.New(progen.Config{Seed: 3, MaxDepth: 4, MaxOps: 7})
	r, rec := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa, NoArena: true}, 0, true, p.Main())
	crossValidate(t, "depa-noarena", r, rec)
}

// TestSubstratesAgree pins verdict equality between the two substrates
// directly (both also agree with the oracle above, but this catches a
// matched pair of errors): every ordered strand pair, same program,
// both Precedes and LeftOf.
func TestSubstratesAgree(t *testing.T) {
	for seed := int64(50); seed < 60; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8})
		omR, omRec := runWithReachCfg(t, core.Config{}, 0, true, p.Main())
		dpR, dpRec := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa}, 0, true, p.Main())
		omS, dpS := omRec.Strands(), dpRec.Strands()
		if len(omS) != len(dpS) {
			t.Fatalf("seed %d: strand counts differ: %d vs %d", seed, len(omS), len(dpS))
		}
		// Serial execution is deterministic, so strand i is the same
		// logical strand in both runs.
		for i, u := range omS {
			for j, v := range omS {
				if i == j {
					continue
				}
				if om, dp := omR.Precedes(u, v), dpR.Precedes(dpS[i], dpS[j]); om != dp {
					t.Fatalf("seed %d: Precedes(%d, %d): om=%v depa=%v", seed, i, j, om, dp)
				}
				if om, dp := omR.LeftOf(u, v), dpR.LeftOf(dpS[i], dpS[j]); om != dp {
					t.Fatalf("seed %d: LeftOf(%d, %d): om=%v depa=%v", seed, i, j, om, dp)
				}
			}
		}
	}
}

// TestDePaMemoryAccounted: the DePa substrate must account label bytes
// in MemBytes the way the OM pair accounts its lists.
func TestDePaMemoryAccounted(t *testing.T) {
	r, _ := runWithReachCfg(t, core.Config{Reach: core.SubstrateDePa}, 0, true, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return nil })
		t.Get(h)
	})
	if r.MemBytes() <= 0 {
		t.Error("DePa reachability structures must account some memory")
	}
}

package core_test

import (
	"fmt"
	"testing"

	"sforder/internal/core"
	"sforder/internal/dag"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// runWithReach executes main with SF-Order reachability plus a dag
// recorder attached and returns both.
func runWithReach(t *testing.T, workers int, serial bool, main func(*sched.Task)) (*core.Reach, *dag.Recorder) {
	t.Helper()
	r := core.NewReach()
	rec := dag.NewRecorder()
	_, err := sched.Run(sched.Options{
		Serial:  serial,
		Workers: workers,
		Tracer:  sched.MultiTracer{r, rec},
	}, main)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.G.Validate(); err != nil {
		t.Fatalf("recorded dag invalid: %v", err)
	}
	return r, rec
}

// crossValidate compares SF-Order Precedes against the exhaustive
// transitive closure of the recorded dag, over every ordered pair of
// strands.
func crossValidate(t *testing.T, name string, r *core.Reach, rec *dag.Recorder) {
	t.Helper()
	cl := dag.NewClosure(rec.G)
	strands := rec.Strands()
	for _, u := range strands {
		for _, v := range strands {
			if u == v {
				continue
			}
			want := cl.Reachable(rec.NodeOf(u), rec.NodeOf(v))
			if got := r.Precedes(u, v); got != want {
				t.Fatalf("%s: Precedes(%v, %v) = %v, oracle says %v\n%s",
					name, u, v, got, want, rec.G.DOT())
			}
		}
	}
}

func TestPrecedesSameStrand(t *testing.T) {
	r, rec := runWithReach(t, 0, true, func(*sched.Task) {})
	s := rec.Strands()[0]
	if !r.Precedes(s, s) {
		t.Error("a strand's accesses are serially ordered: Precedes(s,s) must be true")
	}
}

// TestSpawnRelations validates the fork-join cases: child parallel to
// continuation, both precede the sync strand.
func TestSpawnRelations(t *testing.T) {
	var child, cont, after *sched.Strand
	r, rec := runWithReach(t, 0, true, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) { child = c.Strand() })
		cont = t.Strand()
		t.Sync()
		after = t.Strand()
	})
	if r.Precedes(child, cont) || r.Precedes(cont, child) {
		t.Error("spawned child and continuation must be parallel")
	}
	if !r.Precedes(child, after) || !r.Precedes(cont, after) {
		t.Error("both branches must precede the post-sync strand")
	}
	crossValidate(t, "spawn", r, rec)
}

// TestFutureRelations validates the future cases: created future
// parallel to the continuation until gotten, ordered afterwards.
func TestFutureRelations(t *testing.T) {
	var inFut, beforeGet, afterGet *sched.Strand
	r, rec := runWithReach(t, 0, true, func(t *sched.Task) {
		h := t.Create(func(c *sched.Task) any { inFut = c.Strand(); return nil })
		beforeGet = t.Strand()
		t.Get(h)
		afterGet = t.Strand()
	})
	if r.Precedes(inFut, beforeGet) {
		t.Error("future body must be parallel to the pre-get continuation")
	}
	// The create strand precedes the body, but beforeGet is the
	// continuation after create, which must NOT precede the body.
	if r.Precedes(beforeGet, inFut) {
		t.Error("continuation must not precede the future body")
	}
	if !r.Precedes(inFut, afterGet) {
		t.Error("future body must precede the post-get strand")
	}
	crossValidate(t, "future", r, rec)
}

// TestSiblingFuturesOrderedThroughGet: a future created after getting
// another is preceded by it (gp propagation through the create edge).
func TestSiblingFuturesOrderedThroughGet(t *testing.T) {
	var inG1, inG2 *sched.Strand
	r, rec := runWithReach(t, 0, true, func(t *sched.Task) {
		h1 := t.Create(func(c *sched.Task) any { inG1 = c.Strand(); return nil })
		t.Get(h1)
		h2 := t.Create(func(c *sched.Task) any { inG2 = c.Strand(); return nil })
		t.Get(h2)
	})
	if !r.Precedes(inG1, inG2) {
		t.Error("G1 was gotten before G2 was created: G1 must precede G2")
	}
	if r.Precedes(inG2, inG1) {
		t.Error("G2 must not precede G1")
	}
	crossValidate(t, "sibling-gets", r, rec)
}

// TestSiblingFuturesParallel: futures created back-to-back with no get
// between them are parallel, and the pseudo-SP-dag's phantom paths must
// not leak through (paper §3.1, the f→t example).
func TestSiblingFuturesParallel(t *testing.T) {
	var inG1, inG2, tail *sched.Strand
	r, rec := runWithReach(t, 0, true, func(t *sched.Task) {
		h1 := t.Create(func(c *sched.Task) any { inG1 = c.Strand(); return nil })
		h2 := t.Create(func(c *sched.Task) any { inG2 = c.Strand(); return nil })
		tail = t.Strand()
		_, _ = h1, h2
	})
	if r.Precedes(inG1, inG2) || r.Precedes(inG2, inG1) {
		t.Error("back-to-back created futures must be parallel")
	}
	// Phantom check: in PSP(D) the futures join the root's implicit
	// sync, but no get exists, so the bodies must NOT precede any root
	// strand.
	if r.Precedes(inG1, tail) || r.Precedes(inG2, tail) {
		t.Error("ungotten future body must not precede the creator's continuation")
	}
	crossValidate(t, "sibling-parallel", r, rec)
}

// TestNestedFutureAncestorCase exercises Algorithm 1's case 2: u in an
// ancestor future of v's future, where the pseudo-SP-dag answers.
func TestNestedFutureAncestorCase(t *testing.T) {
	var beforeCreate, parallelToAll, inInner *sched.Strand
	r, rec := runWithReach(t, 0, true, func(t *sched.Task) {
		beforeCreate = t.Strand()
		h := t.Create(func(c *sched.Task) any {
			hh := c.Create(func(cc *sched.Task) any { inInner = cc.Strand(); return nil })
			return c.Get(hh)
		})
		parallelToAll = t.Strand()
		t.Get(h)
	})
	if !r.Precedes(beforeCreate, inInner) {
		t.Error("strand before create must precede the grandchild future body")
	}
	if r.Precedes(parallelToAll, inInner) || r.Precedes(inInner, parallelToAll) {
		t.Error("creator's continuation must be parallel to the grandchild body")
	}
	crossValidate(t, "nested", r, rec)
}

// TestHandleGottenInSpawnedChild: the get happens in a spawned child of
// the creating task (legal structured use).
func TestHandleGottenInSpawnedChild(t *testing.T) {
	r, rec := runWithReach(t, 0, true, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return 1 })
		t.Spawn(func(c *sched.Task) { _ = c.Get(h) })
		t.Sync()
	})
	crossValidate(t, "get-in-child", r, rec)
}

// TestRandomProgramsSerial cross-validates Precedes against the oracle
// on a battery of random structured-future programs, executed serially.
func TestRandomProgramsSerial(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r, rec := runWithReach(t, 0, true, p.Main())
		crossValidate(t, fmt.Sprintf("seed%d", seed), r, rec)
	}
}

// TestRandomProgramsParallel does the same under the parallel engine,
// where tracer events interleave across workers.
func TestRandomProgramsParallel(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r, rec := runWithReach(t, 4, false, p.Main())
		crossValidate(t, fmt.Sprintf("par-seed%d", seed), r, rec)
	}
}

// TestGPMergeBound asserts the §3.4 claim: the number of gp bitmap
// allocations is O(k) — at most one per get plus one per divergent sync.
func TestGPMergeBound(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 5, MaxOps: 10})
		r, rec := runWithReach(t, 0, true, p.Main())
		k := rec.G.NumFutures() - 1 // exclude the root
		if merges := int(r.GPMerges()); merges > 2*k+1 {
			t.Errorf("seed %d: %d gp merges for k=%d futures (> 2k+1)", seed, merges, k)
		}
	}
}

// TestAlwaysMergeAblationStillCorrect: the ablation variant (no
// subsumption sharing) must stay correct while allocating more.
func TestAlwaysMergeAblationStillCorrect(t *testing.T) {
	p := progen.New(progen.Config{Seed: 7, MaxDepth: 4, MaxOps: 8})
	r := core.NewReachAlwaysMerge()
	rec := dag.NewRecorder()
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: sched.MultiTracer{r, rec}}, p.Main()); err != nil {
		t.Fatal(err)
	}
	crossValidate(t, "always-merge", r, rec)
}

func TestCountersAndMemory(t *testing.T) {
	r, _ := runWithReach(t, 0, true, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return nil })
		t.Get(h)
	})
	if r.Queries() != 0 {
		t.Error("no queries asked yet")
	}
	if r.MemBytes() <= 0 {
		t.Error("reachability structures must account some memory")
	}
}

func TestLeftOf(t *testing.T) {
	var c1, c2 *sched.Strand
	r, _ := runWithReach(t, 0, true, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) { c1 = c.Strand() })
		t.Spawn(func(c *sched.Task) { c2 = c.Strand() })
		t.Sync()
	})
	if !r.LeftOf(c1, c2) {
		t.Error("first spawned child is to the left of the second")
	}
	if r.LeftOf(c2, c1) {
		t.Error("LeftOf must be asymmetric")
	}
}

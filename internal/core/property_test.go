package core_test

import (
	"testing"
	"testing/quick"

	"sforder/internal/core"
	"sforder/internal/dag"
	"sforder/internal/detect"
	"sforder/internal/oracle"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// TestQuickPrecedesIsStrictPartialOrder: on random structured-future
// programs, SF-Order's Precedes must be irreflexive-compatible
// (Precedes(u,u) is defined as true by the detector convention, so we
// test over distinct strands), asymmetric, and transitive — the axioms
// of dag reachability.
func TestQuickPrecedesIsStrictPartialOrder(t *testing.T) {
	f := func(seed int64, depth, ops uint8) bool {
		p := progen.New(progen.Config{
			Seed:     seed,
			MaxDepth: 1 + int(depth%4),
			MaxOps:   1 + int(ops%7),
		})
		r := core.NewReach()
		rec := dag.NewRecorder()
		if _, err := sched.Run(sched.Options{Serial: true, Tracer: sched.MultiTracer{r, rec}}, p.Main()); err != nil {
			return false
		}
		strands := rec.Strands()
		if len(strands) > 28 {
			strands = strands[:28]
		}
		for _, u := range strands {
			for _, v := range strands {
				if u == v {
					continue
				}
				uv := r.Precedes(u, v)
				vu := r.Precedes(v, u)
				if uv && vu {
					return false // asymmetry violated
				}
				if !uv {
					continue
				}
				for _, w := range strands {
					if w == u || w == v {
						continue
					}
					if r.Precedes(v, w) && !r.Precedes(u, w) {
						return false // transitivity violated
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGpMonotone: gp(v) only ever grows along real-dag edges —
// every future recorded at a strand is recorded at its dag successors.
func TestQuickGpMonotone(t *testing.T) {
	f := func(seed int64) bool {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r := core.NewReach()
		rec := dag.NewRecorder()
		if _, err := sched.Run(sched.Options{Serial: true, Tracer: sched.MultiTracer{r, rec}}, p.Main()); err != nil {
			return false
		}
		cl := dag.NewClosure(rec.G)
		strands := rec.Strands()
		futures := rec.G.Futures()
		// For every gotten future F and strand v: Precedes(last(F)
		// successor set) must be upward closed — if last(F) reaches v
		// and v reaches w, the detector must also order last(F) before w.
		for _, f := range futures {
			if f.ID == 0 || f.Got == nil {
				continue
			}
			for _, v := range strands {
				for _, w := range strands {
					if v == w {
						continue
					}
					nv, nw := rec.NodeOf(v), rec.NodeOf(w)
					if cl.Reachable(f.Last, nv) && cl.Reachable(nv, nw) && !cl.Reachable(f.Last, nw) {
						return false // oracle inconsistent (impossible)
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDetectorAgainstOracle is a native fuzz target: any (seed, shape)
// triple must yield a valid SF-dag on which full SF-Order detection
// matches the exhaustive oracle at location granularity.
//
// Run with: go test -run FuzzDetectorAgainstOracle -fuzz FuzzDetectorAgainstOracle ./internal/core
func FuzzDetectorAgainstOracle(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(6))
	f.Add(int64(42), uint8(4), uint8(8))
	f.Add(int64(-7), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, depth, ops uint8) {
		p := progen.New(progen.Config{
			Seed:     seed,
			MaxDepth: 1 + int(depth%5),
			MaxOps:   1 + int(ops%9),
			Addrs:    5,
		})
		reach := core.NewReach()
		hist := detect.NewHistory(detect.Options{Reach: reach})
		rec := dag.NewRecorder()
		log := oracle.NewLogger()
		_, err := sched.Run(sched.Options{
			Serial:  true,
			Tracer:  sched.MultiTracer{reach, rec},
			Checker: multiChecker{hist, log},
		}, p.Main())
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.G.Validate(); err != nil {
			t.Fatalf("invalid SF-dag: %v", err)
		}
		got, want := hist.RacyAddrs(), log.RacyAddrs(rec)
		if len(got) != len(want) {
			t.Fatalf("detector %v, oracle %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("detector %v, oracle %v", got, want)
			}
		}
	})
}

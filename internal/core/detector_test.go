package core_test

import (
	"fmt"
	"testing"

	"sforder/internal/core"
	"sforder/internal/dag"
	"sforder/internal/detect"
	"sforder/internal/oracle"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// runFull executes main with the complete SF-Order race detector (reach
// + access history) plus the oracle logger and dag recorder side by
// side, and returns detector-reported and oracle ground-truth racy
// address sets.
func runFull(t *testing.T, policy detect.ReaderPolicy, workers int, serial bool, main func(*sched.Task)) (got, want []uint64, hist *detect.History) {
	t.Helper()
	reach := core.NewReach()
	hist = detect.NewHistory(detect.Options{
		Reach:  reach,
		Policy: policy,
		LeftOf: reach.LeftOf,
	})
	rec := dag.NewRecorder()
	log := oracle.NewLogger()
	_, err := sched.Run(sched.Options{
		Serial:  serial,
		Workers: workers,
		Tracer:  sched.MultiTracer{reach, rec},
		Checker: multiChecker{hist, log},
	}, main)
	if err != nil {
		t.Fatal(err)
	}
	return hist.RacyAddrs(), log.RacyAddrs(rec), hist
}

// multiChecker fans accesses to both the real history and the oracle.
type multiChecker []sched.AccessChecker

func (m multiChecker) Read(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Read(s, addr)
	}
}
func (m multiChecker) Write(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Write(s, addr)
	}
}

func sameAddrs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDetectorSeededRace: a future body and the creator's continuation
// write the same address concurrently — the canonical future race.
func TestDetectorSeededRace(t *testing.T) {
	for _, policy := range []detect.ReaderPolicy{detect.ReadersAll, detect.ReadersLR} {
		got, want, _ := runFull(t, policy, 0, true, func(t *sched.Task) {
			h := t.Create(func(c *sched.Task) any { c.Write(100); return nil })
			t.Write(100) // races with the future body
			t.Get(h)
			t.Write(100) // after the get: no race
		})
		if !sameAddrs(got, want) || len(got) != 1 || got[0] != 100 {
			t.Errorf("policy %v: got %v, oracle %v", policy, got, want)
		}
	}
}

// TestDetectorRaceFree: a race-free wavefront over futures reports
// nothing.
func TestDetectorRaceFree(t *testing.T) {
	main := func(t *sched.Task) {
		prev := t.Create(func(c *sched.Task) any { c.Write(0); return nil })
		for i := 1; i < 8; i++ {
			p, addr := prev, uint64(i)
			prev = t.Create(func(c *sched.Task) any {
				c.Get(p)
				c.Read(addr - 1)
				c.Write(addr)
				return nil
			})
		}
		t.Get(prev)
		for i := 0; i < 8; i++ {
			t.Read(uint64(i))
		}
	}
	for _, policy := range []detect.ReaderPolicy{detect.ReadersAll, detect.ReadersLR} {
		got, want, _ := runFull(t, policy, 0, true, main)
		if len(want) != 0 {
			t.Fatalf("oracle found unexpected races: %v", want)
		}
		if len(got) != 0 {
			t.Errorf("policy %v: false positives on %v", policy, got)
		}
	}
}

// TestDetectorReadWriteFutureRace: parallel read in a future vs write in
// the continuation.
func TestDetectorReadWriteFutureRace(t *testing.T) {
	got, want, _ := runFull(t, detect.ReadersLR, 0, true, func(t *sched.Task) {
		h := t.Create(func(c *sched.Task) any { c.Read(55); return nil })
		t.Write(55)
		t.Get(h)
	})
	if !sameAddrs(got, want) || len(got) != 1 {
		t.Errorf("got %v, oracle %v", got, want)
	}
}

// TestDetectorMatchesOracleOnRandomPrograms is the main correctness
// battery: on random structured-future programs, the detector's racy
// location set must equal the oracle's exactly, under both reader
// policies, serial execution.
func TestDetectorMatchesOracleOnRandomPrograms(t *testing.T) {
	for _, policy := range []detect.ReaderPolicy{detect.ReadersAll, detect.ReadersLR} {
		for seed := int64(0); seed < 40; seed++ {
			p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 6})
			got, want, _ := runFull(t, policy, 0, true, p.Main())
			if !sameAddrs(got, want) {
				t.Errorf("policy %v seed %d: detector %v, oracle %v", policy, seed, got, want)
			}
		}
	}
}

// TestDetectorMatchesOracleParallel repeats the battery under the
// parallel engine. The dag (and therefore the set of racy locations) is
// schedule-independent, and the detector must find the same set even
// though accesses interleave differently.
func TestDetectorMatchesOracleParallel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 6})
		got, want, _ := runFull(t, detect.ReadersAll, 4, false, p.Main())
		if !sameAddrs(got, want) {
			t.Errorf("seed %d: detector %v, oracle %v", seed, got, want)
		}
	}
}

// TestPoliciesAgreeOnLocations: ReadersAll and ReadersLR must flag the
// same locations (the §3.5 theorem), even though they may report
// different example pairs.
func TestPoliciesAgreeOnLocations(t *testing.T) {
	for seed := int64(50); seed < 80; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		all, _, _ := runFull(t, detect.ReadersAll, 0, true, p.Main())
		lr, _, _ := runFull(t, detect.ReadersLR, 0, true, p.Main())
		if !sameAddrs(all, lr) {
			t.Errorf("seed %d: ReadersAll %v vs ReadersLR %v", seed, all, lr)
		}
	}
}

// TestLRBoundTwoK: under ReadersLR the history never holds more than 2k
// readers per location (§3.5).
func TestLRBoundTwoK(t *testing.T) {
	// k futures all reading one address concurrently, many reads each.
	k := 12
	main := func(t *sched.Task) {
		var hs []*sched.Future
		for i := 0; i < k; i++ {
			hs = append(hs, t.Create(func(c *sched.Task) any {
				for j := 0; j < 5; j++ {
					c.Read(77)
					c.Spawn(func(cc *sched.Task) { cc.Read(77) })
					c.Sync()
				}
				return nil
			}))
		}
		for _, h := range hs {
			t.Get(h)
		}
	}
	_, _, hist := runFull(t, detect.ReadersLR, 0, true, main)
	if max := hist.MaxReaders(); max > 2*(k+1) {
		t.Errorf("MaxReaders = %d, exceeds 2k = %d", max, 2*(k+1))
	}

	// Sanity contrast: ReadersAll retains many more on the same program.
	reach := core.NewReach()
	all := detect.NewHistory(detect.Options{Reach: reach})
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: reach, Checker: all}, main); err != nil {
		t.Fatal(err)
	}
	if all.MaxReaders() <= 2*(k+1) {
		t.Skipf("ReadersAll kept %d readers; contrast not observable at this size", all.MaxReaders())
	}
}

// TestQueriesCounted: the reach component counts access-history queries.
func TestQueriesCounted(t *testing.T) {
	reach := core.NewReach()
	hist := detect.NewHistory(detect.Options{Reach: reach})
	_, err := sched.Run(sched.Options{Serial: true, Tracer: reach, Checker: hist}, func(t *sched.Task) {
		t.Write(1)
		t.Spawn(func(c *sched.Task) { c.Read(1) })
		t.Sync()
		t.Write(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if reach.Queries() == 0 {
		t.Error("expected reachability queries during full detection")
	}
}

func TestRaceStringFormat(t *testing.T) {
	r := detect.Race{Addr: 0x64, PrevStrand: 3, CurStrand: 9, PrevFuture: 1, CurFuture: 0,
		Prev: detect.AccessWrite, Cur: detect.AccessRead}
	want := "race on 0x64: write by s3/f1 vs read by s9/f0"
	if got := fmt.Sprint(r); got != want {
		t.Errorf("Race.String() = %q, want %q", got, want)
	}
}

package core

import (
	"testing"
	"unsafe"
)

// TestAccountingSizes pins the per-strand record size to the real
// struct layout. The old constant (nodeSize=40) had drifted; the size
// is now unsafe.Sizeof-derived and this test pins the expected 64-bit
// value so growth fails loudly.
func TestAccountingSizes(t *testing.T) {
	if nodeSize != int(unsafe.Sizeof(node{})) {
		t.Errorf("nodeSize %d != sizeof(node) %d", nodeSize, unsafe.Sizeof(node{}))
	}
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("expected value below is for 64-bit platforms")
	}
	if nodeSize != 24 {
		t.Errorf("node grew: %d bytes, expected 24", nodeSize)
	}
}

package core

import (
	"fmt"

	"sforder/internal/bitset"
	"sforder/internal/depa"
	"sforder/internal/sched"
)

// Offline is the rebuild-only entry point into the reachability
// component: a Reach whose substrate positions are bound from a
// precomputed fork-path label table (depa.BuildTable) instead of being
// placed one tracer event at a time. It exists for offline replay,
// where the whole strand forest is known up front and label
// construction parallelizes — only the label-substrate family supports
// it (a fork-path label is a pure function of the strand's recorded
// path; an order-maintenance list is one mutable structure that must
// be built in event order).
//
// Usage: allocate with NewOffline, Bind every strand to its table
// label (safe concurrently for distinct indices — each Bind touches
// only its own pre-allocated node record), account the table once with
// AccountTable, then drive the serial gp/cp passes (BindRootFuture,
// BindFuture, InheritGP, SyncGP, GetGP) in capture file order. The
// resulting Reach answers Precedes/PrecedesUncounted/LeftOf exactly as
// if the events had been traced online.
type Offline struct {
	r     *Reach
	sub   *depaSub
	nodes []node
	metas []futMeta
}

// NewOffline returns an Offline rebuild sized for the given strand and
// future counts. cfg.Reach must be SubstrateDePa or SubstrateHybrid.
func NewOffline(cfg Config, strands, futures int) (*Offline, error) {
	if cfg.Reach != SubstrateDePa && cfg.Reach != SubstrateHybrid {
		return nil, fmt.Errorf("core: offline rebuild requires a precomputable label substrate, not %v", cfg.Reach)
	}
	// Node and meta records come from the two dense slices below; the
	// lane arenas would sit idle, so skip them.
	cfg.NoArena = true
	r := New(cfg)
	return &Offline{
		r:     r,
		sub:   r.sub.(*depaSub),
		nodes: make([]node, strands),
		metas: make([]futMeta, futures),
	}, nil
}

// Reach returns the underlying reachability component. Valid for
// queries once every strand is bound and the gp/cp passes have run.
func (o *Offline) Reach() *Reach { return o.r }

// Bind assigns strand s the i-th node record, positioned by its
// precomputed cord label (and optional flat copy). Safe for concurrent
// use on distinct i; the label must be immutable (a table entry).
func (o *Offline) Bind(i int, s *sched.Strand, l *depa.Label, f *depa.Flat) {
	n := &o.nodes[i]
	n.setDepa(l, f)
	s.Det = n
}

// AccountTable records a bulk-built label table on the substrate's
// gauges — labels, frozen chunks, max depth, label memory — and on the
// strand count, keeping depa.* and reach.* consistent with what an
// online run over the same forest would have reported.
func (o *Offline) AccountTable(t *depa.Table) {
	o.r.strands.Add(uint64(t.Len()))
	o.sub.accountTable(int64(t.Len()), int64(t.Chunks()), int64(t.MemBytes()), int64(t.MaxDepth()))
}

// BindRootFuture binds the implicit root future (no ancestors).
func (o *Offline) BindRootFuture(f *sched.FutureTask) {
	fm := &o.metas[f.ID]
	fm.cp = nil
	f.Det = fm
}

// BindFuture binds a created future: cp(G) = cp(parent) ∪ {parent}.
// The parent must already be bound (creation order).
func (o *Offline) BindFuture(f *sched.FutureTask) {
	parent := metaOf(f.Parent)
	cp := bitset.CloneIn(nil, parent.cp, f.Parent.ID+1)
	cp.Add(f.Parent.ID)
	fm := &o.metas[f.ID]
	fm.cp = o.r.trackSet(cp)
	f.Det = fm
}

// InheritGP shares src's gp with dst — the branch-point rule (a
// spawn/create child or continuation starts with its forker's gp).
func (o *Offline) InheritGP(dst, src *sched.Strand) {
	nodeOf(dst).gp = nodeOf(src).gp
}

// SyncGP merges the region's gp into the (pre-bound) sync strand s:
// gp(s) = gp(k) ∪ gp(sinks...), with the §3.4 subsumption sharing.
func (o *Offline) SyncGP(k, s *sched.Strand, childSinks []*sched.Strand) {
	o.r.placeSync(nil, k, s, childSinks)
}

// GetGP computes the get strand's gp: gp(g) = gp(u) ∪ gp(last(F)) ∪
// {F}. Unlike the online placeGet it performs no placement — g's label
// came from the table — and counts no extra strand.
func (o *Offline) GetGP(u, g *sched.Strand, f *sched.FutureTask) {
	un, gn := nodeOf(u), nodeOf(g)
	last := nodeOf(f.Last())
	gp := bitset.UnionIn(nil, un.gp, last.gp, f.ID+1)
	gp.Add(f.ID)
	o.r.gpMerges.Add(1)
	gn.gp = o.r.trackSet(gp)
}

// accountTable bulk-feeds the substrate counters for an offline-built
// label table; the per-label account() bookkeeping already happened in
// aggregate inside depa.BuildTable's arrays.
func (d *depaSub) accountTable(labels, chunks, mem, maxDepth int64) {
	d.labels.Add(labels)
	d.chunks.Add(chunks)
	d.labelMem.Add(mem)
	for {
		cur := d.maxDepth.Load()
		if maxDepth <= cur || d.maxDepth.CompareAndSwap(cur, maxDepth) {
			return
		}
	}
}

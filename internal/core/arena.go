package core

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"sforder/internal/bitset"
	"sforder/internal/depa"
	"sforder/internal/om"
)

// Slab arenas for the reach hot path. Every spawn/create/get allocates
// per-strand node records, OM items, and (for creates/gets/merges)
// bitmap words; drawing them from per-lane slabs turns those heap
// allocations into pointer bumps and lets a finished Run recycle the
// memory wholesale through sync.Pool instead of leaving it to the GC.

const (
	nodeChunkLen = 256 // 256 × 24 B = 6 KiB per slab
	metaChunkLen = 64  // futures are ~1000× rarer than strands
)

type nodeChunk struct{ nodes [nodeChunkLen]node }
type metaChunk struct{ metas [metaChunkLen]futMeta }

var (
	nodeChunkPool = sync.Pool{New: func() any { return new(nodeChunk) }}
	metaChunkPool = sync.Pool{New: func() any { return new(metaChunk) }}
)

// nodeSlab bump-allocates node records from pooled chunks. A nil
// *nodeSlab falls back to the heap. Single-owner; byte counters are
// atomic so stats gauges can scrape mid-run.
type nodeSlab struct {
	cur    *nodeChunk
	next   int
	chunks []*nodeChunk
	bytes  atomic.Int64
}

func (s *nodeSlab) get() *node {
	if s == nil {
		return &node{}
	}
	if s.cur == nil || s.next == nodeChunkLen {
		s.cur = nodeChunkPool.Get().(*nodeChunk)
		s.chunks = append(s.chunks, s.cur)
		s.next = 0
		s.bytes.Add(int64(unsafe.Sizeof(nodeChunk{})))
	}
	n := &s.cur.nodes[s.next]
	s.next++
	*n = node{}
	return n
}

func (s *nodeSlab) release() {
	for i, c := range s.chunks {
		s.chunks[i] = nil
		nodeChunkPool.Put(c)
	}
	s.chunks = s.chunks[:0]
	s.cur, s.next = nil, 0
	s.bytes.Store(0)
}

// metaSlab is nodeSlab for futMeta records.
type metaSlab struct {
	cur    *metaChunk
	next   int
	chunks []*metaChunk
	bytes  atomic.Int64
}

func (s *metaSlab) get() *futMeta {
	if s == nil {
		return &futMeta{}
	}
	if s.cur == nil || s.next == metaChunkLen {
		s.cur = metaChunkPool.Get().(*metaChunk)
		s.chunks = append(s.chunks, s.cur)
		s.next = 0
		s.bytes.Add(int64(unsafe.Sizeof(metaChunk{})))
	}
	m := &s.cur.metas[s.next]
	s.next++
	*m = futMeta{}
	return m
}

func (s *metaSlab) release() {
	for i, c := range s.chunks {
		s.chunks[i] = nil
		metaChunkPool.Put(c)
	}
	s.chunks = s.chunks[:0]
	s.cur, s.next = nil, 0
	s.bytes.Store(0)
}

// laneAlloc is one lane's allocation state: arenas for OM items, node
// and future records, and bitmap words. The engine guarantees a lane is
// never used by two workers at once (sched.LaneTracer contract); the
// shared fallback lane — used when the Reach is driven through a
// MultiTracer or other non-lane path — is serialized by Reach.sharedMu.
type laneAlloc struct {
	items  om.ItemArena // OM substrate: dag position items
	labels depa.Arena   // DePa substrate: fork-path labels
	nodes  nodeSlab
	metas  metaSlab
	sets   bitset.Arena
}

func (a *laneAlloc) bytes() int64 {
	return a.items.Bytes() + a.labels.Bytes() +
		a.nodes.bytes.Load() + a.metas.bytes.Load() + a.sets.Bytes()
}

func (a *laneAlloc) release() {
	a.items.Release()
	a.labels.Release()
	a.nodes.release()
	a.metas.release()
	a.sets.Release()
}

// itemsOf and labelsOf resolve a lane's substrate arenas; both are
// nil-safe (NoArena mode and out-of-lane callers pass a nil lane, and
// the arenas themselves treat nil receivers as heap fallback).
func itemsOf(a *laneAlloc) *om.ItemArena {
	if a == nil {
		return nil
	}
	return &a.items
}

func labelsOf(a *laneAlloc) *depa.Arena {
	if a == nil {
		return nil
	}
	return &a.labels
}

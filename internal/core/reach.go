// Package core implements SF-Order, the paper's contribution: a parallel
// reachability component for race detecting programs with structured
// futures (§3), answering Precedes queries in amortized constant time.
//
// SF-Order maintains three structures (§3.2):
//
//  1. Two order-maintenance lists — English and Hebrew — holding every
//     strand of the pseudo-SP-dag PSP(D): the series-parallel
//     approximation of the SF-dag obtained by converting create edges to
//     spawn edges, dropping get edges, and joining every created future
//     at a sync of its creating future. A strand u reaches v in PSP(D)
//     (written u ↠ v) iff u precedes v in both lists.
//  2. cp(G): per future task G, the bitmap of G's ancestor future IDs.
//  3. gp(v): per strand v, the bitmap of future IDs F whose last strand
//     reaches v through a non-SP path. gp bitmaps are shared between
//     strands copy-on-write and merged only when both sides own bits the
//     other lacks (§3.4), which happens O(k) times for k futures.
//
// A query Precedes(u ∈ F, v ∈ G) then follows Algorithm 1:
//
//	F == G:               u ↠ v
//	F ∈ cp(G) and u ↠ v:  true
//	F ∈ gp(v):            true
//	otherwise:            false
//
// The implementation mirrors the paper's engineering choices (§4): cp and
// gp are arrays of 64-bit words indexed by future ID rather than hash
// tables, which is both the asymptotic win over F-Order's per-node hash
// tables and the practical memory win measured in Figure 5.
package core

import (
	"sync/atomic"
	"unsafe"

	"sforder/internal/bitset"
	"sforder/internal/obsv"
	"sforder/internal/om"
	"sforder/internal/sched"
)

// node is the SF-Order per-strand state.
type node struct {
	eng, heb *om.Item    // position in the two PSP(D) orders
	gp       *bitset.Set // future IDs F with last(F) ⇝NSP here (shared)
}

// futMeta is the SF-Order per-future state.
type futMeta struct {
	cp *bitset.Set // ancestor future IDs (immutable once built)
}

// Reach is the SF-Order reachability component. It implements
// sched.Tracer to maintain its structures online and serves Precedes
// queries from any worker concurrently.
type Reach struct {
	engL, hebL *om.List

	queries  atomic.Uint64 // Precedes calls (Figure 3 "queries")
	gpMerges atomic.Uint64 // gp allocations from divergent merges
	strands  atomic.Uint64

	// alwaysMerge disables the §3.4 subsumption optimization: every
	// multi-parent strand allocates a fresh gp union. Used only by the
	// ABL2 ablation benchmark.
	alwaysMerge bool

	// setMem tracks bytes allocated for gp/cp bitmaps (each allocation
	// recorded once; sets are immutable afterwards).
	setMem atomic.Int64
}

// NewReach returns an empty SF-Order reachability component, ready to be
// passed as the Tracer of a sched.Run.
func NewReach() *Reach {
	return &Reach{engL: om.NewList(), hebL: om.NewList()}
}

// NewReachAlwaysMerge returns a Reach with the copy-on-write gp merge
// optimization disabled, for the ablation study.
func NewReachAlwaysMerge() *Reach {
	r := NewReach()
	r.alwaysMerge = true
	return r
}

func nodeOf(s *sched.Strand) *node { return s.Det.(*node) }
func metaOf(f *sched.FutureTask) *futMeta {
	return f.Det.(*futMeta)
}

func (r *Reach) trackSet(s *bitset.Set) *bitset.Set {
	if s != nil {
		r.setMem.Add(int64(s.MemBytes()))
	}
	return s
}

// OnRoot implements sched.Tracer.
func (r *Reach) OnRoot(root *sched.Strand) {
	r.strands.Add(1)
	root.Det = &node{eng: r.engL.InsertFirst(), heb: r.hebL.InsertFirst()}
	root.Fut.Det = &futMeta{cp: nil} // the root has no ancestors
}

// placeBranch inserts the strands of a spawn/create event into both
// order-maintenance lists: English order u, child, cont[, placeholder];
// Hebrew order u, cont, child[, placeholder]. The eager placeholder
// placement is what lets every later strand of the child's subdag land
// inside the correct interval (§3.4 / WSP-Order).
func (r *Reach) placeBranch(u, child, cont, placeholder *sched.Strand) {
	un := nodeOf(u)
	n := 2
	if placeholder != nil {
		n = 3
	}
	r.strands.Add(uint64(n))
	eng := r.engL.InsertAfterN(un.eng, n)
	heb := r.hebL.InsertAfterN(un.heb, n)

	cn := &node{eng: eng[0], heb: heb[1], gp: un.gp}
	kn := &node{eng: eng[1], heb: heb[0], gp: un.gp}
	child.Det = cn
	cont.Det = kn
	if placeholder != nil {
		placeholder.Det = &node{eng: eng[2], heb: heb[2]}
	}
}

// OnSpawn implements sched.Tracer.
func (r *Reach) OnSpawn(u, child, cont, placeholder *sched.Strand) {
	r.placeBranch(u, child, cont, placeholder)
}

// OnCreate implements sched.Tracer. Besides the PSP placement (create is
// a spawn in PSP(D)), it builds cp(G) = cp(F) ∪ {F} for the new future.
func (r *Reach) OnCreate(u, first, cont, placeholder *sched.Strand, f *sched.FutureTask) {
	r.placeBranch(u, first, cont, placeholder)
	parent := metaOf(f.Parent)
	cp := parent.cp.Clone()
	cp.Add(f.Parent.ID)
	f.Det = &futMeta{cp: r.trackSet(cp)}
}

// OnSync implements sched.Tracer: the sync strand s (pre-placed in the
// OM lists) receives the merged gp of its real-dag predecessors — the
// continuation k and the joined spawned children's sinks.
func (r *Reach) OnSync(k, s *sched.Strand, childSinks []*sched.Strand) {
	sn := nodeOf(s)
	acc := nodeOf(k).gp
	for _, c := range childSinks {
		acc = r.mergeGP(acc, nodeOf(c).gp)
	}
	sn.gp = acc
}

func (r *Reach) mergeGP(a, b *bitset.Set) *bitset.Set {
	if r.alwaysMerge {
		if a == nil && b == nil {
			return nil
		}
		r.gpMerges.Add(1)
		return r.trackSet(bitset.Union(a, b))
	}
	m, allocated := bitset.MergeShared(a, b)
	if allocated {
		r.gpMerges.Add(1)
		r.trackSet(m)
	}
	return m
}

// OnReturn implements sched.Tracer (no SF-Order work: the join happens
// at OnSync).
func (r *Reach) OnReturn(sink *sched.Strand) {}

// OnPut implements sched.Tracer (no SF-Order work: last(F) is recorded
// by the engine and consulted at OnGet).
func (r *Reach) OnPut(sink *sched.Strand, f *sched.FutureTask) {}

// OnGet implements sched.Tracer: the get strand g is a plain serial
// successor of u in PSP(D) (get edges are dropped), and
// gp(g) = gp(u) ∪ gp(last(F)) ∪ {F}.
func (r *Reach) OnGet(u, g *sched.Strand, f *sched.FutureTask) {
	un := nodeOf(u)
	r.strands.Add(1)
	gn := &node{eng: r.engL.InsertAfter(un.eng), heb: r.hebL.InsertAfter(un.heb)}
	last := nodeOf(f.Last())
	gp := bitset.Union(un.gp, last.gp)
	gp.Add(f.ID)
	r.gpMerges.Add(1)
	gn.gp = r.trackSet(gp)
	g.Det = gn
}

// psp reports u ↠ v: u reaches v in the pseudo-SP-dag, i.e. u precedes v
// in both the English and the Hebrew order.
func (r *Reach) psp(a, b *node) bool {
	return r.engL.Precedes(a.eng, b.eng) && r.hebL.Precedes(a.heb, b.heb)
}

// Precedes reports whether strand u logically precedes strand v in the
// SF-dag (Algorithm 1). It must only be asked with u already executed
// (recorded in an access history) and v currently executing, the
// invariant every on-the-fly detector maintains. u == v returns true:
// accesses of one strand are serially ordered.
func (r *Reach) Precedes(u, v *sched.Strand) bool {
	r.queries.Add(1)
	if u == v {
		return true
	}
	un, vn := nodeOf(u), nodeOf(v)
	if u.Fut == v.Fut {
		// Case 1: same future — an SP path must exist (Lemma 3.3), and
		// PSP(D) captures it exactly (Lemma 3.7).
		return r.psp(un, vn)
	}
	// Case 2: u's future is a strict ancestor of v's — PSP(D) answers
	// exactly (Lemmas 3.8, 3.9).
	if metaOf(v.Fut).cp.Contains(u.Fut.ID) && r.psp(un, vn) {
		return true
	}
	// Case 3: otherwise u ≺ v iff last(F) ⇝ v (Lemma 3.4), which is
	// precisely gp(v) membership.
	return vn.gp.Contains(u.Fut.ID)
}

// LeftOf reports whether a is to the left of b — earlier in the English
// order — used by the access history to maintain leftmost/rightmost
// readers within one future (§3.5).
func (r *Reach) LeftOf(a, b *sched.Strand) bool {
	return r.engL.Precedes(nodeOf(a).eng, nodeOf(b).eng)
}

// Queries returns the number of Precedes calls served.
func (r *Reach) Queries() uint64 { return r.queries.Load() }

// GPMerges returns how many gp/get merges allocated a fresh bitmap; the
// §3.4 argument bounds this by O(k).
func (r *Reach) GPMerges() uint64 { return r.gpMerges.Load() }

// nodeSize is the real per-strand record size, derived rather than
// hard-coded so the Figure 5 numbers cannot drift as the struct evolves
// (a test pins it to the expected value).
var nodeSize = int(unsafe.Sizeof(node{}))

// MemBytes estimates the memory footprint of the reachability component:
// both OM lists, the per-strand node records, and all gp/cp bitmaps
// (Figure 5).
func (r *Reach) MemBytes() int {
	return r.engL.MemBytes() + r.hebL.MemBytes() +
		int(r.strands.Load())*nodeSize + int(r.setMem.Load())
}

// RegisterStats publishes the SF-Order counters (reach.*) and both OM
// lists' maintenance counters (om.english.*, om.hebrew.*) on reg.
func (r *Reach) RegisterStats(reg *obsv.Registry) {
	reg.RegisterFunc("reach.queries", func() int64 { return int64(r.queries.Load()) })
	reg.RegisterFunc("reach.gp_merges", func() int64 { return int64(r.gpMerges.Load()) })
	reg.RegisterFunc("reach.strands", func() int64 { return int64(r.strands.Load()) })
	reg.RegisterFunc("reach.set_mem_bytes", func() int64 { return r.setMem.Load() })
	reg.RegisterFunc("reach.mem_bytes", func() int64 { return int64(r.MemBytes()) })
	r.engL.RegisterStats(reg, "om.english")
	r.hebL.RegisterStats(reg, "om.hebrew")
}

var _ sched.Tracer = (*Reach)(nil)

// Package core implements SF-Order, the paper's contribution: a parallel
// reachability component for race detecting programs with structured
// futures (§3), answering Precedes queries in amortized constant time.
//
// SF-Order maintains three structures (§3.2):
//
//  1. Two order-maintenance lists — English and Hebrew — holding every
//     strand of the pseudo-SP-dag PSP(D): the series-parallel
//     approximation of the SF-dag obtained by converting create edges to
//     spawn edges, dropping get edges, and joining every created future
//     at a sync of its creating future. A strand u reaches v in PSP(D)
//     (written u ↠ v) iff u precedes v in both lists.
//  2. cp(G): per future task G, the bitmap of G's ancestor future IDs.
//  3. gp(v): per strand v, the bitmap of future IDs F whose last strand
//     reaches v through a non-SP path. gp bitmaps are shared between
//     strands copy-on-write and merged only when both sides own bits the
//     other lacks (§3.4), which happens O(k) times for k futures.
//
// A query Precedes(u ∈ F, v ∈ G) then follows Algorithm 1:
//
//	F == G:               u ↠ v
//	F ∈ cp(G) and u ↠ v:  true
//	F ∈ gp(v):            true
//	otherwise:            false
//
// The implementation mirrors the paper's engineering choices (§4): cp and
// gp are arrays of 64-bit words indexed by future ID rather than hash
// tables, which is both the asymptotic win over F-Order's per-node hash
// tables and the practical memory win measured in Figure 5.
package core

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"sforder/internal/bitset"
	"sforder/internal/depa"
	"sforder/internal/obsv"
	"sforder/internal/om"
	"sforder/internal/sched"
)

// node is the SF-Order per-strand state. The first two words are the
// substrate position, a union so the record stays at 24 bytes for
// every backend (a size test pins it): under SubstrateOM they are the
// English and Hebrew om.Item pointers; under SubstrateDePa p0 is the
// cord fork-path label and p1 is nil; under SubstrateHybrid p1 holds
// the packed flat copy for strands below the depth threshold. Only the
// substrate that wrote a node ever reads its position, so the union
// needs no tag.
type node struct {
	p0, p1 unsafe.Pointer
	gp     *bitset.Set // future IDs F with last(F) ⇝NSP here (shared)
}

func (n *node) omPos() (eng, heb *om.Item) { return (*om.Item)(n.p0), (*om.Item)(n.p1) }
func (n *node) setOM(eng, heb *om.Item) {
	n.p0, n.p1 = unsafe.Pointer(eng), unsafe.Pointer(heb)
}
func (n *node) depaLabel() *depa.Label { return (*depa.Label)(n.p0) }
func (n *node) depaFlat() *depa.Flat   { return (*depa.Flat)(n.p1) }
func (n *node) setDepa(l *depa.Label, f *depa.Flat) {
	n.p0, n.p1 = unsafe.Pointer(l), unsafe.Pointer(f)
}

// futMeta is the SF-Order per-future state.
type futMeta struct {
	cp *bitset.Set // ancestor future IDs (immutable once built)
}

// Config carries the Reach ablation knobs. The zero value is the paper
// configuration: the English/Hebrew OM substrate with fine-grained
// insert locking and per-worker arenas.
type Config struct {
	// Reach selects the reachability substrate: the English/Hebrew OM
	// list pair (default), DePa fork-path cords (ABL10), or the
	// depth-adaptive hybrid (ABL11).
	Reach Substrate
	// HybridDepth is the SubstrateHybrid switchover: strands below this
	// fork depth carry a packed flat label beside the cord and compare
	// flat-to-flat. Zero means DefaultHybridDepth. Ignored by the other
	// substrates.
	HybridDepth int
	// GlobalOMLock forces both OM lists back onto the single list-level
	// insert lock (the pre-fine-grained behavior; ABL8). Ignored by the
	// DePa substrate, which takes no locks at all.
	GlobalOMLock bool
	// NoArena disables the slab arenas: every Item, node record, and
	// bitmap allocates on the GC heap (ABL8).
	NoArena bool
	// AlwaysMerge disables the §3.4 subsumption optimization: every
	// multi-parent strand allocates a fresh gp union (ABL2).
	AlwaysMerge bool
}

// Reach is the SF-Order reachability component. It implements
// sched.Tracer (and sched.LaneTracer) to maintain its structures online
// and serves Precedes queries from any worker concurrently.
type Reach struct {
	sub Reachability
	cfg Config

	queries  atomic.Uint64 // Precedes calls (Figure 3 "queries")
	gpMerges atomic.Uint64 // gp allocations from divergent merges
	strands  atomic.Uint64

	// lanes are the per-worker arenas, sized by SetLanes before the
	// first event; a lane is only ever used by its worker (the
	// sched.LaneTracer exclusivity contract), so lane state is unlocked.
	// shared is the fallback arena for events arriving through the plain
	// Tracer methods (Reach wrapped in a MultiTracer, direct test
	// drivers); it is serialized by sharedMu. Both are nil with
	// cfg.NoArena, in which case every allocation goes to the heap and
	// the fallback path needs no lock at all. sharedMu also orders
	// lanes-slice resizing against the stats gauges.
	sharedMu sync.Mutex
	lanes    []*laneAlloc
	shared   *laneAlloc

	// setMem tracks bytes allocated for gp/cp bitmaps (each allocation
	// recorded once; sets are immutable afterwards).
	setMem atomic.Int64
}

// New returns an empty SF-Order reachability component configured by
// cfg, ready to be passed as the Tracer of a sched.Run.
func New(cfg Config) *Reach {
	var sub Reachability
	switch cfg.Reach {
	case SubstrateDePa:
		sub = newDepaSub(0)
	case SubstrateHybrid:
		hd := cfg.HybridDepth
		if hd <= 0 {
			hd = DefaultHybridDepth
		}
		sub = newDepaSub(hd)
	default:
		sub = newOMPair(cfg.GlobalOMLock)
	}
	r := &Reach{sub: sub, cfg: cfg}
	if !cfg.NoArena {
		r.shared = new(laneAlloc)
	}
	return r
}

// NewReach returns an empty SF-Order reachability component with the
// default (paper) configuration.
func NewReach() *Reach { return New(Config{}) }

// NewReachAlwaysMerge returns a Reach with the copy-on-write gp merge
// optimization disabled, for the ablation study.
func NewReachAlwaysMerge() *Reach { return New(Config{AlwaysMerge: true}) }

// SetLanes implements sched.LaneTracer: called by the engine before the
// first event with the worker count, it sizes the per-worker arenas.
func (r *Reach) SetLanes(n int) {
	if r.cfg.NoArena {
		return
	}
	r.sharedMu.Lock()
	defer r.sharedMu.Unlock()
	for len(r.lanes) < n {
		r.lanes = append(r.lanes, new(laneAlloc))
	}
}

// laneFor resolves a worker lane to its arena; out-of-range lanes (a
// tracer driven outside a sched.Run) and NoArena mode yield nil, which
// every arena falls back from to the heap.
func (r *Reach) laneFor(lane int) *laneAlloc {
	if lane >= 0 && lane < len(r.lanes) {
		return r.lanes[lane]
	}
	return nil
}

// lockShared enters the fallback allocation critical section. With
// NoArena there is no shared state to protect — allocation is on the
// heap and list inserts synchronize internally — so no lock is taken.
func (r *Reach) lockShared() *laneAlloc {
	if r.cfg.NoArena {
		return nil
	}
	r.sharedMu.Lock()
	return r.shared
}

func (r *Reach) unlockShared() {
	if !r.cfg.NoArena {
		r.sharedMu.Unlock()
	}
}

// Release returns every arena slab to the shared pools for reuse by a
// later run. The Reach must not be used afterwards: node records, OM
// items, and bitmaps alias recycled memory. The harness calls this
// after a measurement's stats snapshot; callers that keep strand or
// future pointers (race records with live dag references) must not.
func (r *Reach) Release() {
	r.sharedMu.Lock()
	defer r.sharedMu.Unlock()
	for _, a := range r.lanes {
		a.release()
	}
	if r.shared != nil {
		r.shared.release()
	}
}

// ArenaBytes reports the slab bytes currently held across all lanes and
// the shared fallback arena.
func (r *Reach) ArenaBytes() int64 {
	r.sharedMu.Lock()
	defer r.sharedMu.Unlock()
	var total int64
	for _, a := range r.lanes {
		total += a.bytes()
	}
	if r.shared != nil {
		total += r.shared.bytes()
	}
	return total
}

func nodeOf(s *sched.Strand) *node { return s.Det.(*node) }
func metaOf(f *sched.FutureTask) *futMeta {
	return f.Det.(*futMeta)
}

func (r *Reach) trackSet(s *bitset.Set) *bitset.Set {
	if s != nil {
		r.setMem.Add(int64(s.MemBytes()))
	}
	return s
}

// OnRoot implements sched.Tracer. The root is a single event before any
// parallelism, so it allocates from the shared arena.
func (r *Reach) OnRoot(root *sched.Strand) {
	r.strands.Add(1)
	a := r.lockShared()
	var nodes *nodeSlab
	var metas *metaSlab
	if a != nil {
		nodes, metas = &a.nodes, &a.metas
	}
	rn := nodes.get()
	r.sub.placeRoot(a, rn)
	root.Det = rn
	fm := metas.get()
	fm.cp = nil // the root has no ancestors
	root.Fut.Det = fm
	r.unlockShared()
}

// placeBranch places the strands of a spawn/create event in both
// PSP(D) orders: English order u, child, cont[, placeholder]; Hebrew
// order u, cont, child[, placeholder]. The eager placeholder placement
// is what lets every later strand of the child's subdag land inside
// the correct interval (§3.4 / WSP-Order). How the positions are
// realized — OM batch inserts or fork-path label extensions — is the
// substrate's business.
func (r *Reach) placeBranch(a *laneAlloc, u, child, cont, placeholder *sched.Strand) {
	un := nodeOf(u)
	n := 2
	if placeholder != nil {
		n = 3
	}
	r.strands.Add(uint64(n))
	var nodes *nodeSlab
	if a != nil {
		nodes = &a.nodes
	}
	cn := nodes.get()
	kn := nodes.get()
	var pn *node
	if placeholder != nil {
		pn = nodes.get()
	}
	r.sub.placeBranch(a, un, cn, kn, pn)
	cn.gp, kn.gp = un.gp, un.gp
	child.Det = cn
	cont.Det = kn
	if placeholder != nil {
		placeholder.Det = pn
	}
}

// placeCreate is placeBranch plus the future bookkeeping: create is a
// spawn in PSP(D), and cp(G) = cp(F) ∪ {F} for the new future.
func (r *Reach) placeCreate(a *laneAlloc, u, first, cont, placeholder *sched.Strand, f *sched.FutureTask) {
	r.placeBranch(a, u, first, cont, placeholder)
	parent := metaOf(f.Parent)
	var sets *bitset.Arena
	var metas *metaSlab
	if a != nil {
		sets, metas = &a.sets, &a.metas
	}
	// Sized to cover the parent's ID so the Add never grows off-arena.
	cp := bitset.CloneIn(sets, parent.cp, f.Parent.ID+1)
	cp.Add(f.Parent.ID)
	fm := metas.get()
	fm.cp = r.trackSet(cp)
	f.Det = fm
}

// placeSync gives the sync strand s (pre-placed in the OM lists) the
// merged gp of its real-dag predecessors — the continuation k and the
// joined spawned children's sinks.
func (r *Reach) placeSync(a *laneAlloc, k, s *sched.Strand, childSinks []*sched.Strand) {
	var sets *bitset.Arena
	if a != nil {
		sets = &a.sets
	}
	sn := nodeOf(s)
	acc := nodeOf(k).gp
	for _, c := range childSinks {
		acc = r.mergeGP(sets, acc, nodeOf(c).gp)
	}
	sn.gp = acc
}

// placeGet places the get strand g as a plain serial successor of u in
// PSP(D) (get edges are dropped) with gp(g) = gp(u) ∪ gp(last(F)) ∪ {F}.
func (r *Reach) placeGet(a *laneAlloc, u, g *sched.Strand, f *sched.FutureTask) {
	un := nodeOf(u)
	r.strands.Add(1)
	var nodes *nodeSlab
	var sets *bitset.Arena
	if a != nil {
		nodes, sets = &a.nodes, &a.sets
	}
	gn := nodes.get()
	r.sub.placeSerial(a, un, gn)
	last := nodeOf(f.Last())
	gp := bitset.UnionIn(sets, un.gp, last.gp, f.ID+1)
	gp.Add(f.ID)
	r.gpMerges.Add(1)
	gn.gp = r.trackSet(gp)
	g.Det = gn
}

// PlaceSpawn performs the combined spawn placement — both OM batch
// inserts and the node records — drawing memory from the given worker
// lane's arenas. A negative lane selects the mutex-guarded shared
// fallback arena; the engine's lane dispatch (sched.LaneTracer) calls
// the non-negative form.
func (r *Reach) PlaceSpawn(lane int, u, child, cont, placeholder *sched.Strand) {
	if lane < 0 {
		a := r.lockShared()
		r.placeBranch(a, u, child, cont, placeholder)
		r.unlockShared()
		return
	}
	r.placeBranch(r.laneFor(lane), u, child, cont, placeholder)
}

// PlaceCreate is PlaceSpawn for create events (cp bookkeeping included).
func (r *Reach) PlaceCreate(lane int, u, first, cont, placeholder *sched.Strand, f *sched.FutureTask) {
	if lane < 0 {
		a := r.lockShared()
		r.placeCreate(a, u, first, cont, placeholder, f)
		r.unlockShared()
		return
	}
	r.placeCreate(r.laneFor(lane), u, first, cont, placeholder, f)
}

// OnSpawn implements sched.Tracer (the non-lane fallback path).
func (r *Reach) OnSpawn(u, child, cont, placeholder *sched.Strand) {
	r.PlaceSpawn(-1, u, child, cont, placeholder)
}

// OnCreate implements sched.Tracer (the non-lane fallback path).
func (r *Reach) OnCreate(u, first, cont, placeholder *sched.Strand, f *sched.FutureTask) {
	r.PlaceCreate(-1, u, first, cont, placeholder, f)
}

// OnSync implements sched.Tracer (the non-lane fallback path).
func (r *Reach) OnSync(k, s *sched.Strand, childSinks []*sched.Strand) {
	a := r.lockShared()
	r.placeSync(a, k, s, childSinks)
	r.unlockShared()
}

// OnGet implements sched.Tracer (the non-lane fallback path).
func (r *Reach) OnGet(u, g *sched.Strand, f *sched.FutureTask) {
	a := r.lockShared()
	r.placeGet(a, u, g, f)
	r.unlockShared()
}

// OnSpawnLane implements sched.LaneTracer: as OnSpawn, allocating from
// the worker's own arena without locking.
func (r *Reach) OnSpawnLane(lane int, u, child, cont, placeholder *sched.Strand) {
	r.placeBranch(r.laneFor(lane), u, child, cont, placeholder)
}

// OnCreateLane implements sched.LaneTracer.
func (r *Reach) OnCreateLane(lane int, u, first, cont, placeholder *sched.Strand, f *sched.FutureTask) {
	r.placeCreate(r.laneFor(lane), u, first, cont, placeholder, f)
}

// OnSyncLane implements sched.LaneTracer.
func (r *Reach) OnSyncLane(lane int, k, s *sched.Strand, childSinks []*sched.Strand) {
	r.placeSync(r.laneFor(lane), k, s, childSinks)
}

// OnGetLane implements sched.LaneTracer.
func (r *Reach) OnGetLane(lane int, u, g *sched.Strand, f *sched.FutureTask) {
	r.placeGet(r.laneFor(lane), u, g, f)
}

func (r *Reach) mergeGP(sets *bitset.Arena, a, b *bitset.Set) *bitset.Set {
	if r.cfg.AlwaysMerge {
		if a == nil && b == nil {
			return nil
		}
		r.gpMerges.Add(1)
		return r.trackSet(bitset.UnionIn(sets, a, b, 0))
	}
	m, allocated := bitset.MergeSharedIn(sets, a, b)
	if allocated {
		r.gpMerges.Add(1)
		r.trackSet(m)
	}
	return m
}

// OnReturn implements sched.Tracer (no SF-Order work: the join happens
// at OnSync).
func (r *Reach) OnReturn(sink *sched.Strand) {}

// OnPut implements sched.Tracer (no SF-Order work: last(F) is recorded
// by the engine and consulted at OnGet).
func (r *Reach) OnPut(sink *sched.Strand, f *sched.FutureTask) {}

// psp reports u ↠ v: u reaches v in the pseudo-SP-dag, i.e. u precedes v
// in both the English and the Hebrew order.
func (r *Reach) psp(a, b *node) bool {
	return r.sub.psp(a, b)
}

// Precedes reports whether strand u logically precedes strand v in the
// SF-dag (Algorithm 1). It must only be asked with u already executed
// (recorded in an access history) and v currently executing, the
// invariant every on-the-fly detector maintains. u == v returns true:
// accesses of one strand are serially ordered.
func (r *Reach) Precedes(u, v *sched.Strand) bool {
	r.queries.Add(1)
	return r.precedes(u, v)
}

// PrecedesUncounted is Precedes without the shared query counter. The
// counter is a single contended atomic; offline replay workers issuing
// millions of queries from independent shards use this form so the one
// shared cache line does not serialize them (each worker counts queries
// locally and the replay engine sums them afterwards).
func (r *Reach) PrecedesUncounted(u, v *sched.Strand) bool {
	return r.precedes(u, v)
}

func (r *Reach) precedes(u, v *sched.Strand) bool {
	if u == v {
		return true
	}
	un, vn := nodeOf(u), nodeOf(v)
	if u.Fut == v.Fut {
		// Case 1: same future — an SP path must exist (Lemma 3.3), and
		// PSP(D) captures it exactly (Lemma 3.7).
		return r.psp(un, vn)
	}
	// Case 2: u's future is a strict ancestor of v's — PSP(D) answers
	// exactly (Lemmas 3.8, 3.9).
	if metaOf(v.Fut).cp.Contains(u.Fut.ID) && r.psp(un, vn) {
		return true
	}
	// Case 3: otherwise u ≺ v iff last(F) ⇝ v (Lemma 3.4), which is
	// precisely gp(v) membership.
	return vn.gp.Contains(u.Fut.ID)
}

// LeftOf reports whether a is to the left of b — earlier in the English
// order — used by the access history to maintain leftmost/rightmost
// readers within one future (§3.5).
func (r *Reach) LeftOf(a, b *sched.Strand) bool {
	return r.sub.leftOf(nodeOf(a), nodeOf(b))
}

// Queries returns the number of Precedes calls served.
func (r *Reach) Queries() uint64 { return r.queries.Load() }

// GPMerges returns how many gp/get merges allocated a fresh bitmap; the
// §3.4 argument bounds this by O(k).
func (r *Reach) GPMerges() uint64 { return r.gpMerges.Load() }

// nodeSize is the real per-strand record size, derived rather than
// hard-coded so the Figure 5 numbers cannot drift as the struct evolves
// (a test pins it to the expected value).
var nodeSize = int(unsafe.Sizeof(node{}))

// MemBytes estimates the memory footprint of the reachability component:
// the substrate (OM lists or fork-path labels), the per-strand node
// records, and all gp/cp bitmaps (Figure 5).
func (r *Reach) MemBytes() int {
	return r.sub.memBytes() +
		int(r.strands.Load())*nodeSize + int(r.setMem.Load())
}

// RegisterStats publishes the SF-Order counters (reach.*), the
// substrate's own counters (om.english.*/om.hebrew.*/om.* aggregates
// for the OM pair, depa.* for fork-path labels — only the active
// substrate's gauges exist), and core.arena_bytes on reg. Every gauge
// reads atomics, so scraping never contends with a hot run.
func (r *Reach) RegisterStats(reg *obsv.Registry) {
	reg.RegisterFunc("reach.queries", func() int64 { return int64(r.queries.Load()) })
	reg.RegisterFunc("reach.gp_merges", func() int64 { return int64(r.gpMerges.Load()) })
	reg.RegisterFunc("reach.strands", func() int64 { return int64(r.strands.Load()) })
	reg.RegisterFunc("reach.set_mem_bytes", func() int64 { return r.setMem.Load() })
	reg.RegisterFunc("reach.mem_bytes", func() int64 { return int64(r.MemBytes()) })
	r.sub.registerStats(reg)
	if _, ok := r.sub.(*depaSub); ok {
		// Satellite of the label arenas: bytes stranded at word-slab
		// tails when a flat label's slice didn't fit the remainder. Only
		// the Reach sees all the lanes, so the gauge lives here.
		reg.RegisterFunc("depa.slab_waste_bytes", func() int64 {
			r.sharedMu.Lock()
			defer r.sharedMu.Unlock()
			var total int64
			for _, a := range r.lanes {
				total += a.labels.WasteBytes()
			}
			if r.shared != nil {
				total += r.shared.labels.WasteBytes()
			}
			return total
		})
	}
	reg.RegisterFunc("core.arena_bytes", r.ArenaBytes)
}

var (
	_ sched.Tracer     = (*Reach)(nil)
	_ sched.LaneTracer = (*Reach)(nil)
)

package core

import (
	"fmt"
	"sync/atomic"

	"sforder/internal/depa"
	"sforder/internal/obsv"
	"sforder/internal/om"
)

// Substrate selects the reachability label substrate behind Reach.
type Substrate int

const (
	// SubstrateOM is the paper's English/Hebrew order-maintenance list
	// pair (§3.2): O(1) amortized labels, but splits and renumberings
	// take a per-list maintenance lock.
	SubstrateOM Substrate = iota
	// SubstrateDePa uses immutable DePa-style fork-path labels
	// (internal/depa): no relabeling, no maintenance lock, exhaustion
	// structurally impossible; comparisons cost O(depth/32) words.
	SubstrateDePa
)

// String returns the -reach flag spelling of the substrate.
func (s Substrate) String() string {
	if s == SubstrateDePa {
		return "depa"
	}
	return "om"
}

// ParseSubstrate parses a -reach flag value ("om" or "depa").
func ParseSubstrate(name string) (Substrate, error) {
	switch name {
	case "om", "":
		return SubstrateOM, nil
	case "depa":
		return SubstrateDePa, nil
	}
	return SubstrateOM, fmt.Errorf("unknown reachability substrate %q (want om or depa)", name)
}

// Reachability is the substrate interface: the part of SF-Order that
// maintains the two PSP(D) total orders and answers order queries. The
// futures layer above it (cp/gp bitmaps, Algorithm 1) is substrate-
// independent and stays in Reach. Methods are unexported — the two
// implementations, the OM pair and the DePa labeler, live in this
// package because they allocate from the lane arenas; the placement
// methods write the substrate's position fields of the (pre-zeroed)
// node records they are handed.
type Reachability interface {
	// placeRoot positions the root strand's node: first in both orders.
	placeRoot(a *laneAlloc, rn *node)
	// placeBranch positions a spawn/create: immediately after un, the
	// child cn then the continuation kn in English order, kn then cn in
	// Hebrew order, with the eager sync placeholder pn (may be nil)
	// after both in both orders.
	placeBranch(a *laneAlloc, un, cn, kn, pn *node)
	// placeSerial positions gn as the immediate serial successor of un
	// in both orders (the PSP(D) placement of a get strand).
	placeSerial(a *laneAlloc, un, gn *node)
	// psp reports u ↠ v: u before v in both total orders.
	psp(u, v *node) bool
	// leftOf reports u before v in the English order only.
	leftOf(u, v *node) bool
	// memBytes is the substrate's own footprint (lists or labels),
	// excluding the node records tracked by Reach.
	memBytes() int
	// registerStats publishes the substrate's counters on reg.
	registerStats(reg *obsv.Registry)
}

// ---------------------------------------------------------------------
// OM backend: the English/Hebrew order-maintenance list pair.

// omPair is the paper's substrate. Node positions are the p0/p1 item
// pointers (node.omPos); inserts draw items from the lane's ItemArena.
type omPair struct {
	engL, hebL *om.List
}

func newOMPair(globalLock bool) *omPair {
	newList := om.NewList
	if globalLock {
		newList = om.NewListGlobalLock
	}
	return &omPair{engL: newList(), hebL: newList()}
}

func (p *omPair) placeRoot(a *laneAlloc, rn *node) {
	items := itemsOf(a)
	rn.setOM(p.engL.InsertFirstArena(items), p.hebL.InsertFirstArena(items))
}

// placeBranch runs the two batch inserts back to back with nothing
// between them; each keeps its run adjacent (see the om package
// comment), and no lock spans both lists — English and Hebrew
// positions are independent.
func (p *omPair) placeBranch(a *laneAlloc, un, cn, kn, pn *node) {
	n := 2
	if pn != nil {
		n = 3
	}
	items := itemsOf(a)
	var engBuf, hebBuf [3]*om.Item
	eng, heb := engBuf[:n], hebBuf[:n]
	ue, uh := un.omPos()
	p.engL.InsertAfterNArena(ue, items, eng)
	p.hebL.InsertAfterNArena(uh, items, heb)
	// English order u, child, cont[, placeholder]; Hebrew order
	// u, cont, child[, placeholder].
	cn.setOM(eng[0], heb[1])
	kn.setOM(eng[1], heb[0])
	if pn != nil {
		pn.setOM(eng[2], heb[2])
	}
}

func (p *omPair) placeSerial(a *laneAlloc, un, gn *node) {
	items := itemsOf(a)
	var engBuf, hebBuf [1]*om.Item
	ue, uh := un.omPos()
	p.engL.InsertAfterNArena(ue, items, engBuf[:])
	p.hebL.InsertAfterNArena(uh, items, hebBuf[:])
	gn.setOM(engBuf[0], hebBuf[0])
}

func (p *omPair) psp(u, v *node) bool {
	ue, uh := u.omPos()
	ve, vh := v.omPos()
	return p.engL.Precedes(ue, ve) && p.hebL.Precedes(uh, vh)
}

func (p *omPair) leftOf(u, v *node) bool {
	ue, _ := u.omPos()
	ve, _ := v.omPos()
	return p.engL.Precedes(ue, ve)
}

func (p *omPair) memBytes() int {
	return p.engL.MemBytes() + p.hebL.MemBytes()
}

// registerStats publishes both lists' maintenance counters
// (om.english.*, om.hebrew.*) and the cross-list locking aggregates
// (om.lock_acquires, om.bucket_locks, om.insert_contended). Every
// gauge reads atomics, so scraping never contends with a hot run.
func (p *omPair) registerStats(reg *obsv.Registry) {
	p.engL.RegisterStats(reg, "om.english")
	p.hebL.RegisterStats(reg, "om.hebrew")
	reg.RegisterFunc("om.lock_acquires", func() int64 {
		return p.engL.LockAcquires() + p.hebL.LockAcquires()
	})
	reg.RegisterFunc("om.bucket_locks", func() int64 {
		return p.engL.BucketLocks() + p.hebL.BucketLocks()
	})
	reg.RegisterFunc("om.insert_contended", func() int64 {
		return p.engL.InsertContended() + p.hebL.InsertContended()
	})
}

// ---------------------------------------------------------------------
// DePa backend: immutable fork-path labels.

// depaSub assigns each strand one fork-path label (node.depaLabel).
// Placement is pure appending — no list structure, no locks — and both
// order queries resolve from a single label comparison (depa.Rel), so
// there is nothing to split, renumber, or exhaust.
type depaSub struct {
	labels   atomic.Int64  // labels assigned
	labelMem atomic.Int64  // bytes across all labels (headers + words)
	maxDepth atomic.Int64  // deepest fork path seen
	cmps     atomic.Uint64 // Rel calls (psp + leftOf)
	cmpWords atomic.Uint64 // words examined across all Rel calls
}

func newDepaSub() *depaSub { return &depaSub{} }

func (d *depaSub) note(l *depa.Label) *depa.Label {
	d.labels.Add(1)
	d.labelMem.Add(int64(l.MemBytes()))
	depth := int64(l.Depth())
	for {
		cur := d.maxDepth.Load()
		if depth <= cur || d.maxDepth.CompareAndSwap(cur, depth) {
			return l
		}
	}
}

func (d *depaSub) placeRoot(a *laneAlloc, rn *node) {
	rn.setDepa(d.note(depa.NewLabel(labelsOf(a))))
}

func (d *depaSub) placeBranch(a *laneAlloc, un, cn, kn, pn *node) {
	la := labelsOf(a)
	ul := un.depaLabel()
	cn.setDepa(d.note(ul.Extend(la, depa.Child)))
	kn.setDepa(d.note(ul.Extend(la, depa.Cont)))
	if pn != nil {
		pn.setDepa(d.note(ul.Extend(la, depa.Sync)))
	}
}

// placeSerial appends Child: any single component keeps gn adjacent to
// un in both orders, because un anchors no other placement (each
// strand forks at most once) so no other label extends un's.
func (d *depaSub) placeSerial(a *laneAlloc, un, gn *node) {
	gn.setDepa(d.note(un.depaLabel().Extend(labelsOf(a), depa.Child)))
}

func (d *depaSub) psp(u, v *node) bool {
	eng, heb, w := depa.Rel(u.depaLabel(), v.depaLabel())
	d.cmps.Add(1)
	d.cmpWords.Add(uint64(w))
	return eng && heb
}

func (d *depaSub) leftOf(u, v *node) bool {
	eng, _, w := depa.Rel(u.depaLabel(), v.depaLabel())
	d.cmps.Add(1)
	d.cmpWords.Add(uint64(w))
	return eng
}

func (d *depaSub) memBytes() int { return int(d.labelMem.Load()) }

// registerStats publishes the label-substrate counters. The om.*
// gauges are deliberately absent: under DePa there are no lists, and a
// Stats lookup of om.lock_acquires reads zero — which is exactly the
// ABL10 claim the tests pin.
func (d *depaSub) registerStats(reg *obsv.Registry) {
	reg.RegisterFunc("depa.labels", func() int64 { return d.labels.Load() })
	reg.RegisterFunc("depa.label_mem_bytes", func() int64 { return d.labelMem.Load() })
	reg.RegisterFunc("depa.max_depth", func() int64 { return d.maxDepth.Load() })
	reg.RegisterFunc("depa.compares", func() int64 { return int64(d.cmps.Load()) })
	reg.RegisterFunc("depa.compare_words", func() int64 { return int64(d.cmpWords.Load()) })
}

var (
	_ Reachability = (*omPair)(nil)
	_ Reachability = (*depaSub)(nil)
)

package core

import (
	"fmt"
	"sync/atomic"

	"sforder/internal/depa"
	"sforder/internal/obsv"
	"sforder/internal/om"
)

// Substrate selects the reachability label substrate behind Reach.
type Substrate int

const (
	// SubstrateOM is the paper's English/Hebrew order-maintenance list
	// pair (§3.2): O(1) amortized labels, but splits and renumberings
	// take a per-list maintenance lock.
	SubstrateOM Substrate = iota
	// SubstrateDePa uses immutable DePa-style fork-path labels
	// (internal/depa) stored as prefix-sharing cords: no relabeling, no
	// maintenance lock, exhaustion structurally impossible; label memory
	// is O(strands) and comparisons skip the shared prefix by pointer
	// equality, examining O(1) words at any depth.
	SubstrateDePa
	// SubstrateHybrid is DePa with a depth-adaptive twist (ABL11):
	// strands shallower than Config.HybridDepth also carry a packed
	// flat copy of their label, and queries where both sides have one
	// compare the flats — no pointer chase, the fastest path at the
	// depths where BENCH_pr7's crossover showed flat labels winning.
	// Deep strands fall back to the cord compare.
	SubstrateHybrid
)

// String returns the -reach flag spelling of the substrate.
func (s Substrate) String() string {
	switch s {
	case SubstrateDePa:
		return "depa"
	case SubstrateHybrid:
		return "hybrid"
	}
	return "om"
}

// ParseSubstrate parses a -reach flag value ("om", "depa", or "hybrid").
func ParseSubstrate(name string) (Substrate, error) {
	switch name {
	case "om", "":
		return SubstrateOM, nil
	case "depa":
		return SubstrateDePa, nil
	case "hybrid":
		return SubstrateHybrid, nil
	}
	return SubstrateOM, fmt.Errorf("unknown reachability substrate %q (want om, depa, or hybrid)", name)
}

// DefaultHybridDepth is the flat/cord switchover depth when
// Config.HybridDepth is unset. The ABL10 crossover (BENCH_pr7.json)
// had flat labels beating the OM pair up to roughly 25 fork levels and
// losing past ~1000; 64 keeps every label that still fits a word or
// two on the chase-free flat path while bounding the redundant copy a
// shallow strand carries to two words.
const DefaultHybridDepth = 64

// Reachability is the substrate interface: the part of SF-Order that
// maintains the two PSP(D) total orders and answers order queries. The
// futures layer above it (cp/gp bitmaps, Algorithm 1) is substrate-
// independent and stays in Reach. Methods are unexported — the two
// implementations, the OM pair and the DePa labeler, live in this
// package because they allocate from the lane arenas; the placement
// methods write the substrate's position fields of the (pre-zeroed)
// node records they are handed.
type Reachability interface {
	// placeRoot positions the root strand's node: first in both orders.
	placeRoot(a *laneAlloc, rn *node)
	// placeBranch positions a spawn/create: immediately after un, the
	// child cn then the continuation kn in English order, kn then cn in
	// Hebrew order, with the eager sync placeholder pn (may be nil)
	// after both in both orders.
	placeBranch(a *laneAlloc, un, cn, kn, pn *node)
	// placeSerial positions gn as the immediate serial successor of un
	// in both orders (the PSP(D) placement of a get strand).
	placeSerial(a *laneAlloc, un, gn *node)
	// psp reports u ↠ v: u before v in both total orders.
	psp(u, v *node) bool
	// leftOf reports u before v in the English order only.
	leftOf(u, v *node) bool
	// memBytes is the substrate's own footprint (lists or labels),
	// excluding the node records tracked by Reach.
	memBytes() int
	// registerStats publishes the substrate's counters on reg.
	registerStats(reg *obsv.Registry)
}

// ---------------------------------------------------------------------
// OM backend: the English/Hebrew order-maintenance list pair.

// omPair is the paper's substrate. Node positions are the p0/p1 item
// pointers (node.omPos); inserts draw items from the lane's ItemArena.
type omPair struct {
	engL, hebL *om.List
}

func newOMPair(globalLock bool) *omPair {
	newList := om.NewList
	if globalLock {
		newList = om.NewListGlobalLock
	}
	return &omPair{engL: newList(), hebL: newList()}
}

func (p *omPair) placeRoot(a *laneAlloc, rn *node) {
	items := itemsOf(a)
	rn.setOM(p.engL.InsertFirstArena(items), p.hebL.InsertFirstArena(items))
}

// placeBranch runs the two batch inserts back to back with nothing
// between them; each keeps its run adjacent (see the om package
// comment), and no lock spans both lists — English and Hebrew
// positions are independent.
func (p *omPair) placeBranch(a *laneAlloc, un, cn, kn, pn *node) {
	n := 2
	if pn != nil {
		n = 3
	}
	items := itemsOf(a)
	var engBuf, hebBuf [3]*om.Item
	eng, heb := engBuf[:n], hebBuf[:n]
	ue, uh := un.omPos()
	p.engL.InsertAfterNArena(ue, items, eng)
	p.hebL.InsertAfterNArena(uh, items, heb)
	// English order u, child, cont[, placeholder]; Hebrew order
	// u, cont, child[, placeholder].
	cn.setOM(eng[0], heb[1])
	kn.setOM(eng[1], heb[0])
	if pn != nil {
		pn.setOM(eng[2], heb[2])
	}
}

func (p *omPair) placeSerial(a *laneAlloc, un, gn *node) {
	items := itemsOf(a)
	var engBuf, hebBuf [1]*om.Item
	ue, uh := un.omPos()
	p.engL.InsertAfterNArena(ue, items, engBuf[:])
	p.hebL.InsertAfterNArena(uh, items, hebBuf[:])
	gn.setOM(engBuf[0], hebBuf[0])
}

func (p *omPair) psp(u, v *node) bool {
	ue, uh := u.omPos()
	ve, vh := v.omPos()
	return p.engL.Precedes(ue, ve) && p.hebL.Precedes(uh, vh)
}

func (p *omPair) leftOf(u, v *node) bool {
	ue, _ := u.omPos()
	ve, _ := v.omPos()
	return p.engL.Precedes(ue, ve)
}

func (p *omPair) memBytes() int {
	return p.engL.MemBytes() + p.hebL.MemBytes()
}

// registerStats publishes both lists' maintenance counters
// (om.english.*, om.hebrew.*) and the cross-list locking aggregates
// (om.lock_acquires, om.bucket_locks, om.insert_contended). Every
// gauge reads atomics, so scraping never contends with a hot run.
func (p *omPair) registerStats(reg *obsv.Registry) {
	p.engL.RegisterStats(reg, "om.english")
	p.hebL.RegisterStats(reg, "om.hebrew")
	reg.RegisterFunc("om.lock_acquires", func() int64 {
		return p.engL.LockAcquires() + p.hebL.LockAcquires()
	})
	reg.RegisterFunc("om.bucket_locks", func() int64 {
		return p.engL.BucketLocks() + p.hebL.BucketLocks()
	})
	reg.RegisterFunc("om.insert_contended", func() int64 {
		return p.engL.InsertContended() + p.hebL.InsertContended()
	})
}

// ---------------------------------------------------------------------
// DePa backend: immutable fork-path labels.

// depaSub assigns each strand one fork-path label. Placement is pure
// appending — no list structure, no locks — and both order queries
// resolve from a single label comparison, so there is nothing to
// split, renumber, or exhaust.
//
// The label is a prefix-sharing cord (node.depaLabel, always present):
// Extend copies one word and the frozen chain is shared with the
// parent, so label memory is O(strands) and depa.Rel answers from O(1)
// words via the pointer-equality prefix skip. With hybridDepth > 0
// (SubstrateHybrid) strands whose parent is shallower than the
// threshold additionally carry a packed flat copy (node.depaFlat), and
// queries compare flats whenever both sides have one — the chase-free
// path for the shallow labels that dominate wide, flat programs. The
// cord chain is maintained for *every* strand, flat or not: the
// pointer-skip in depa.Rel is only O(1) because chunk sharing is
// structural, and that holds only if deep labels descend from their
// ancestors' actual chunk nodes, never from a rebuilt copy.
type depaSub struct {
	hybridDepth int // keep a flat while parent depth < this; 0 = never

	labels   atomic.Int64  // labels assigned
	labelMem atomic.Int64  // bytes: cord headers + frozen chunks + flats
	maxDepth atomic.Int64  // deepest fork path seen
	chunks   atomic.Int64  // chunk nodes frozen (shared words)
	cmps     atomic.Uint64 // compares (psp + leftOf)
	cmpWords atomic.Uint64 // words examined across all compares
	flatCmps atomic.Uint64 // compares served by the flat fast path
}

func newDepaSub(hybridDepth int) *depaSub {
	return &depaSub{hybridDepth: hybridDepth}
}

// account records one new strand label: the cord header, the chunk
// node if this Extend froze one (parent and child then disagree on
// FullWords — counting it here, exactly once, is what keeps shared
// words out of the per-label figure), and the flat copy if one was
// made. parent is nil for the root.
func (d *depaSub) account(parent, l *depa.Label, f *depa.Flat) {
	d.labels.Add(1)
	mem := int64(l.MemBytes())
	pw := 0
	if parent != nil {
		pw = parent.FullWords()
	}
	if l.FullWords() != pw {
		mem += int64(depa.ChunkBytes)
		d.chunks.Add(1)
	}
	if f != nil {
		mem += int64(f.MemBytes())
	}
	d.labelMem.Add(mem)
	depth := int64(l.Depth())
	for {
		cur := d.maxDepth.Load()
		if depth <= cur || d.maxDepth.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// extend grows one strand's representation pair: the cord always, the
// flat only while the parent still has one below the threshold — once
// a path crosses hybridDepth its flats stop forever (descendants only
// get deeper), so the redundant copy is bounded by threshold words.
func (d *depaSub) extend(la *depa.Arena, ul *depa.Label, uf *depa.Flat, c uint8) (*depa.Label, *depa.Flat) {
	l := ul.Extend(la, c)
	var f *depa.Flat
	if uf != nil && uf.Depth() < d.hybridDepth {
		f = uf.Extend(la, c)
	}
	d.account(ul, l, f)
	return l, f
}

func (d *depaSub) placeRoot(a *laneAlloc, rn *node) {
	la := labelsOf(a)
	l := depa.NewLabel(la)
	var f *depa.Flat
	if d.hybridDepth > 0 {
		f = depa.NewFlat(la)
	}
	d.account(nil, l, f)
	rn.setDepa(l, f)
}

func (d *depaSub) placeBranch(a *laneAlloc, un, cn, kn, pn *node) {
	la := labelsOf(a)
	ul, uf := un.depaLabel(), un.depaFlat()
	cn.setDepa(d.extend(la, ul, uf, depa.Child))
	kn.setDepa(d.extend(la, ul, uf, depa.Cont))
	if pn != nil {
		pn.setDepa(d.extend(la, ul, uf, depa.Sync))
	}
}

// placeSerial appends Child: any single component keeps gn adjacent to
// un in both orders, because un anchors no other placement (each
// strand forks at most once) so no other label extends un's.
func (d *depaSub) placeSerial(a *laneAlloc, un, gn *node) {
	gn.setDepa(d.extend(labelsOf(a), un.depaLabel(), un.depaFlat(), depa.Child))
}

// rel dispatches one order query: the flat fast path when both strands
// are shallow enough to carry packed copies, the cord compare (with
// its LCA skip) otherwise. Comparing a flat against a cord is never
// needed — the cords are always there.
func (d *depaSub) rel(u, v *node) (eng, heb bool) {
	var w int
	if uf, vf := u.depaFlat(), v.depaFlat(); uf != nil && vf != nil {
		eng, heb, w = depa.RelFlat(uf, vf)
		d.flatCmps.Add(1)
	} else {
		eng, heb, w = depa.Rel(u.depaLabel(), v.depaLabel())
	}
	d.cmps.Add(1)
	d.cmpWords.Add(uint64(w))
	return eng, heb
}

func (d *depaSub) psp(u, v *node) bool {
	eng, heb := d.rel(u, v)
	return eng && heb
}

// leftOf answers the English-order query alone through the dedicated
// depa.LeftOf entry points: the same LCA-skip walk (or flat compare) as
// rel, minus the Hebrew remap. Counted on the same compare gauges.
func (d *depaSub) leftOf(u, v *node) bool {
	var left bool
	var w int
	if uf, vf := u.depaFlat(), v.depaFlat(); uf != nil && vf != nil {
		left, w = depa.LeftOfFlat(uf, vf)
		d.flatCmps.Add(1)
	} else {
		left, w = depa.LeftOf(u.depaLabel(), v.depaLabel())
	}
	d.cmps.Add(1)
	d.cmpWords.Add(uint64(w))
	return left
}

func (d *depaSub) memBytes() int { return int(d.labelMem.Load()) }

// registerStats publishes the label-substrate counters. The om.*
// gauges are deliberately absent: under DePa there are no lists, and a
// Stats lookup of om.lock_acquires reads zero — which is exactly the
// ABL10 claim the tests pin.
func (d *depaSub) registerStats(reg *obsv.Registry) {
	reg.RegisterFunc("depa.labels", func() int64 { return d.labels.Load() })
	reg.RegisterFunc("depa.label_mem_bytes", func() int64 { return d.labelMem.Load() })
	reg.RegisterFunc("depa.max_depth", func() int64 { return d.maxDepth.Load() })
	reg.RegisterFunc("depa.chunks", func() int64 { return d.chunks.Load() })
	reg.RegisterFunc("depa.compares", func() int64 { return int64(d.cmps.Load()) })
	reg.RegisterFunc("depa.compare_words", func() int64 { return int64(d.cmpWords.Load()) })
	reg.RegisterFunc("depa.flat_compares", func() int64 { return int64(d.flatCmps.Load()) })
}

var (
	_ Reachability = (*omPair)(nil)
	_ Reachability = (*depaSub)(nil)
)

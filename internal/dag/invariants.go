package dag

import "sforder/internal/contract"

// Invariant is one structured-futures restriction (paper §2). The
// canonical definitions live in internal/contract so that this
// validator, the scheduler's checked mode (sched.Options.CheckStructure),
// and the static analyzer (internal/analysis, cmd/sfvet) all cite the
// same identifiers and paper clauses for the same class of violation.
type Invariant = contract.Invariant

// Invariants returns the full list of SF-dag invariants this package's
// Validate enforces, in citation order.
func Invariants() []Invariant { return contract.All() }

// Shorthands for the invariants Validate cites.
var (
	invSingleTouch     = contract.SingleTouch
	invGetReachability = contract.GetReachability
	invSPPartition     = contract.SPPartition
	invUniqueEntry     = contract.UniqueEntry
	invAcyclic         = contract.Acyclic
)

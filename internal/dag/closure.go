package dag

import "sforder/internal/bitset"

// Closure is a precomputed transitive closure of a Graph, used as the
// exhaustive reachability oracle when cross-validating the constant-time
// detectors on recorded dags. Building it costs O(V·E/64) time and
// O(V²/64) space, fine for test-sized dags.
type Closure struct {
	idx  map[*Node]int
	sets []*bitset.Set // sets[i] = indices reachable from node i (strict)
}

// NewClosure computes the closure of g. The graph must be acyclic and
// must not be mutated afterwards.
func NewClosure(g *Graph) *Closure {
	order, err := g.Topological()
	if err != nil {
		panic("dag: NewClosure on cyclic graph: " + err.Error())
	}
	c := &Closure{idx: make(map[*Node]int, len(order))}
	for i, n := range order {
		c.idx[n] = i
	}
	c.sets = make([]*bitset.Set, len(order))
	// Accumulate in reverse topological order: reach(u) = ∪ succ v of
	// ({v} ∪ reach(v)).
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		s := bitset.New(len(order))
		for _, e := range n.Out {
			j := c.idx[e.To]
			s.Add(j)
			s.UnionWith(c.sets[j])
		}
		c.sets[i] = s
	}
	return c
}

// Reachable reports whether a directed path leads from u to v (strict:
// Reachable(u, u) is false).
func (c *Closure) Reachable(u, v *Node) bool {
	iu, ok := c.idx[u]
	if !ok {
		panic("dag: node not in closure: " + u.String())
	}
	iv, ok := c.idx[v]
	if !ok {
		panic("dag: node not in closure: " + v.String())
	}
	return c.sets[iu].Contains(iv)
}

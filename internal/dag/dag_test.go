package dag

import (
	"strings"
	"testing"
)

// buildPaperStyle builds a small SF-dag by hand:
//
//	future 0 (root):  a --create--> future 1;  a -> b -> g(get) -> z
//	future 1:         f1 -> p1 (put), p1 --get--> g
func buildPaperStyle() (*Graph, map[string]*Node) {
	g := New()
	a := g.NewNode(0, "a")
	f1id := g.NewFuture(0)
	f1 := g.NewNode(f1id, "f1")
	p1 := g.NewNode(f1id, "p1")
	b := g.NewNode(0, "b")
	gt := g.NewNode(0, "g")
	z := g.NewNode(0, "z")
	g.AddEdge(a, f1, Create)
	g.AddEdge(a, b, Continue)
	g.AddEdge(f1, p1, Continue)
	g.AddEdge(b, gt, Continue)
	g.AddEdge(p1, gt, Get)
	g.AddEdge(gt, z, Continue)
	g.SetLast(0, z)
	g.SetLast(f1id, p1)
	g.SetGot(f1id, gt)
	return g, map[string]*Node{"a": a, "f1": f1, "p1": p1, "b": b, "g": gt, "z": z}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	g, _ := buildPaperStyle()
	if err := g.Validate(); err != nil {
		t.Fatalf("well-formed dag rejected: %v", err)
	}
}

func TestReachabilityRelations(t *testing.T) {
	g, n := buildPaperStyle()
	cases := []struct {
		from, to   string
		any, sp    bool
		createOnly bool
	}{
		{"a", "b", true, true, true},
		{"a", "f1", true, false, true},
		{"f1", "g", true, false, false}, // only via get edge
		{"f1", "b", false, false, false},
		{"b", "f1", false, false, false},
		{"a", "z", true, true, true},
		{"p1", "z", true, false, false},
		{"z", "a", false, false, false},
		{"a", "a", false, false, false}, // reachability is strict
	}
	for _, c := range cases {
		if got := g.Reachable(n[c.from], n[c.to]); got != c.any {
			t.Errorf("Reachable(%s,%s) = %v, want %v", c.from, c.to, got, c.any)
		}
		if got := g.ReachableSP(n[c.from], n[c.to]); got != c.sp {
			t.Errorf("ReachableSP(%s,%s) = %v, want %v", c.from, c.to, got, c.sp)
		}
		if got := g.ReachableCreateSP(n[c.from], n[c.to]); got != c.createOnly {
			t.Errorf("ReachableCreateSP(%s,%s) = %v, want %v", c.from, c.to, got, c.createOnly)
		}
	}
}

func TestWorkSpan(t *testing.T) {
	g, _ := buildPaperStyle()
	work, span := g.WorkSpan()
	if work != 6 {
		t.Errorf("work = %d, want 6", work)
	}
	// Longest path a->f1->p1->g->z = 5.
	if span != 5 {
		t.Errorf("span = %d, want 5", span)
	}
}

func TestFutureAncestors(t *testing.T) {
	g := New()
	g.NewNode(0, "root")
	f1 := g.NewFuture(0)
	f2 := g.NewFuture(f1)
	f3 := g.NewFuture(0)
	anc := g.FutureAncestors(f2)
	if !anc[0] || !anc[f1] || anc[f2] || anc[f3] {
		t.Errorf("FutureAncestors(f2) = %v", anc)
	}
	if len(g.FutureAncestors(0)) != 0 {
		t.Error("root has no ancestors")
	}
}

func TestValidateRejectsDoubleTouch(t *testing.T) {
	g := New()
	a := g.NewNode(0, "a")
	fid := g.NewFuture(0)
	f := g.NewNode(fid, "f")
	b := g.NewNode(0, "b")
	c := g.NewNode(0, "c")
	g.AddEdge(a, f, Create)
	g.AddEdge(a, b, Continue)
	g.AddEdge(b, c, Continue)
	g.AddEdge(f, b, Get)
	g.AddEdge(f, c, Get) // second touch
	g.SetLast(fid, f)
	g.SetGot(fid, b)
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "single-touch") {
		t.Fatalf("expected single-touch violation, got %v", err)
	}
}

func TestValidateRejectsCrossFutureSPEdge(t *testing.T) {
	g := New()
	a := g.NewNode(0, "a")
	fid := g.NewFuture(0)
	f := g.NewNode(fid, "f")
	g.AddEdge(a, f, Continue) // SP edge crossing futures
	if err := g.Validate(); err == nil {
		t.Fatal("expected cross-future SP edge rejection")
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := New()
	a := g.NewNode(0, "a")
	b := g.NewNode(0, "b")
	g.AddEdge(a, b, Continue)
	g.AddEdge(b, a, Continue)
	if err := g.Validate(); err == nil {
		t.Fatal("expected cycle rejection")
	}
}

func TestValidateRejectsHandleRace(t *testing.T) {
	// The get node is NOT reachable from the create continuation without
	// going through the future: model a handle leaked to a parallel
	// branch. Root: a spawns s-child (c1), continuation k. a creates F
	// inside child c1; the get happens in k which is parallel to c1.
	g := New()
	a := g.NewNode(0, "a")
	c1 := g.NewNode(0, "c1")
	k := g.NewNode(0, "k")
	sy := g.NewNode(0, "sync")
	g.AddEdge(a, c1, Spawn)
	g.AddEdge(a, k, Continue)
	fid := g.NewFuture(0)
	f := g.NewNode(fid, "f")
	g.AddEdge(c1, f, Create)
	c1b := g.NewNode(0, "c1b")
	g.AddEdge(c1, c1b, Continue)
	gt := g.NewNode(0, "gt")
	g.AddEdge(k, gt, Continue)
	g.AddEdge(f, gt, Get) // get in branch parallel to the create
	g.AddEdge(gt, sy, Continue)
	g.AddEdge(c1b, sy, SyncJoin)
	g.SetLast(fid, f)
	g.SetGot(fid, gt)
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "handle-safe") {
		t.Fatalf("expected handle-race rejection, got %v", err)
	}
}

func TestValidateRejectsCreateIntoMiddle(t *testing.T) {
	g := New()
	a := g.NewNode(0, "a")
	fid := g.NewFuture(0)
	f1 := g.NewNode(fid, "f1")
	f2 := g.NewNode(fid, "f2")
	g.AddEdge(f1, f2, Continue)
	g.AddEdge(a, f2, Create) // create edge into a non-first node
	if err := g.Validate(); err == nil {
		t.Fatal("expected rejection of create edge into non-first node")
	}
}

func TestSerialOrderSimple(t *testing.T) {
	// a spawns c (child), continuation k, sync s. Serial order must be
	// a, c, k, s (child before continuation).
	g := New()
	a := g.NewNode(0, "a")
	c := g.NewNode(0, "c")
	k := g.NewNode(0, "k")
	s := g.NewNode(0, "s")
	g.AddEdge(a, c, Spawn)
	g.AddEdge(a, k, Continue)
	g.AddEdge(c, s, SyncJoin)
	g.AddEdge(k, s, Continue)
	order := g.SerialOrder()
	want := []*Node{a, c, k, s}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("serial order[%d] = %v, want %v", i, order[i], want[i])
		}
	}
}

func TestTopologicalOnEmpty(t *testing.T) {
	g := New()
	if order, err := g.Topological(); err != nil || len(order) != 0 {
		t.Fatal("empty graph should topo-sort trivially")
	}
	if g.SerialOrder() != nil {
		t.Fatal("empty graph has no serial order")
	}
}

func TestDOTOutput(t *testing.T) {
	g, _ := buildPaperStyle()
	dot := g.DOT()
	for _, want := range []string{"digraph", "cluster_f0", "cluster_f1", "color=red", "color=blue"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestEdgeKindString(t *testing.T) {
	for k, want := range map[EdgeKind]string{
		Continue: "continue", Spawn: "spawn", SyncJoin: "sync",
		Create: "create", Get: "get", EdgeKind(99): "EdgeKind(99)",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", k, k.String(), want)
		}
	}
	if !Continue.IsSP() || Create.IsSP() || Get.IsSP() {
		t.Error("IsSP misclassifies")
	}
}

func TestAddEdgeNilPanics(t *testing.T) {
	g := New()
	a := g.NewNode(0, "a")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on nil edge endpoint")
		}
	}()
	g.AddEdge(a, nil, Continue)
}

// Package dag models the computation dag of a task-parallel execution
// with fork-join and future parallelism (paper §2).
//
// A node is a strand: a maximal instruction sequence with no parallel
// control constructs. Edges carry kinds: the ordinary SP edges (Continue,
// Spawn, SyncJoin) connect nodes of the same future task, while the
// non-SP edges (Create, Get) connect distinct future tasks. A program
// restricted to spawn/sync generates a series-parallel dag; adding
// structured futures generates an SF-dag — a set of SP dags joined by
// create/get edges obeying the single-touch and handle-race-freedom
// restrictions.
//
// The package provides the passive graph representation recorded by the
// scheduler's tracer, exhaustive (oracle) reachability used to validate
// the constant-time detectors in tests, the SF-dag structural validator,
// work/span measurement, the serial (left-to-right depth-first) execution
// order, and DOT export for debugging.
package dag

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EdgeKind classifies dag edges.
type EdgeKind uint8

const (
	// Continue edges link consecutive strands of one function instance.
	Continue EdgeKind = iota
	// Spawn edges go from a spawn strand to the first strand of the
	// spawned child function.
	Spawn
	// SyncJoin edges go from a spawned child's sink to the sync node
	// that joins it.
	SyncJoin
	// Create edges go from a create strand to the first strand of the
	// created future task (non-SP).
	Create
	// Get edges go from a future task's last strand (its put node) to
	// the strand following the get (non-SP).
	Get
)

// IsSP reports whether the edge kind is an ordinary series-parallel edge
// (i.e. not a create or get edge).
func (k EdgeKind) IsSP() bool { return k == Continue || k == Spawn || k == SyncJoin }

func (k EdgeKind) String() string {
	switch k {
	case Continue:
		return "continue"
	case Spawn:
		return "spawn"
	case SyncJoin:
		return "sync"
	case Create:
		return "create"
	case Get:
		return "get"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Edge is a directed dag edge.
type Edge struct {
	From, To *Node
	Kind     EdgeKind
}

// Node is a strand in the computation dag.
type Node struct {
	ID     int
	Future int    // ID of the future task (SP sub-dag) owning this strand
	Label  string // human-readable tag for tests and DOT output
	Out    []Edge
	In     []Edge
}

func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	if n.Label != "" {
		return fmt.Sprintf("n%d(%s)", n.ID, n.Label)
	}
	return fmt.Sprintf("n%d", n.ID)
}

// FutureMeta describes one future task (SP sub-dag) of the graph.
// The root function instance is future 0 with Parent == -1.
type FutureMeta struct {
	ID     int
	Parent int   // creating future's ID, -1 for the root
	First  *Node // unique entry strand
	Last   *Node // unique exit strand (the put node for real futures)
	Got    *Node // strand following the get edge, nil if never gotten
}

// Graph is a mutable computation dag. Mutators are safe for concurrent
// use (the parallel scheduler records from many workers); queries must
// run after mutation has stopped.
type Graph struct {
	mu      sync.Mutex
	nodes   []*Node
	futures []*FutureMeta
}

// New returns an empty graph containing the root future (ID 0) with no
// nodes yet.
func New() *Graph {
	g := &Graph{}
	g.futures = append(g.futures, &FutureMeta{ID: 0, Parent: -1})
	return g
}

// NewNode appends a node owned by the given future and returns it.
func (g *Graph) NewNode(future int, label string) *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := &Node{ID: len(g.nodes), Future: future, Label: label}
	g.nodes = append(g.nodes, n)
	if f := g.futures[future]; f.First == nil {
		f.First = n
	}
	return n
}

// NewFuture registers a future task created by parent and returns its ID.
func (g *Graph) NewFuture(parent int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := len(g.futures)
	g.futures = append(g.futures, &FutureMeta{ID: id, Parent: parent})
	return id
}

// EnsureFuture registers the future task with an externally assigned ID
// (the scheduler allocates future IDs from its own counter, and under
// parallel execution registrations may arrive out of order). Registering
// the same ID twice is a no-op.
func (g *Graph) EnsureFuture(id, parent int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for len(g.futures) <= id {
		g.futures = append(g.futures, nil)
	}
	if g.futures[id] == nil {
		g.futures[id] = &FutureMeta{ID: id, Parent: parent}
	}
}

// AddEdge inserts the edge u -> v of the given kind.
func (g *Graph) AddEdge(u, v *Node, kind EdgeKind) {
	if u == nil || v == nil {
		panic("dag: AddEdge with nil node")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	e := Edge{From: u, To: v, Kind: kind}
	u.Out = append(u.Out, e)
	v.In = append(v.In, e)
}

// SetLast records the exit strand of a future task.
func (g *Graph) SetLast(future int, last *Node) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.futures[future].Last = last
}

// SetGot records the strand that received the future's value via get.
func (g *Graph) SetGot(future int, got *Node) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.futures[future].Got = got
}

// Nodes returns the nodes in creation order.
func (g *Graph) Nodes() []*Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Node(nil), g.nodes...)
}

// NumNodes returns the number of strands.
func (g *Graph) NumNodes() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.nodes)
}

// Futures returns metadata for every future task, index == future ID.
func (g *Graph) Futures() []*FutureMeta {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*FutureMeta(nil), g.futures...)
}

// NumFutures returns the number of future tasks including the root.
func (g *Graph) NumFutures() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.futures)
}

// Root returns the first node of the root future, or nil when empty.
func (g *Graph) Root() *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.futures[0].First
}

// edgeFilter selects which edges a traversal may use.
type edgeFilter func(EdgeKind) bool

func anyEdge(EdgeKind) bool       { return true }
func spOnly(k EdgeKind) bool      { return k.IsSP() }
func spAndCreate(k EdgeKind) bool { return k.IsSP() || k == Create }

// Reachable reports whether there is a directed path from u to v (u == v
// does not count). This is the exhaustive oracle used to validate the
// constant-time detectors; it runs a BFS and is deliberately simple.
func (g *Graph) Reachable(u, v *Node) bool { return g.reach(u, v, anyEdge) }

// ReachableSP reports whether some path from u to v uses only SP edges
// (the ⇝SP relation of the paper).
func (g *Graph) ReachableSP(u, v *Node) bool { return g.reach(u, v, spOnly) }

// ReachableCreateSP reports whether some path from u to v uses only SP
// and create edges — the relation the pseudo-SP-dag must capture for
// ancestor-future queries (paper Lemma 3.5/3.8).
func (g *Graph) ReachableCreateSP(u, v *Node) bool { return g.reach(u, v, spAndCreate) }

func (g *Graph) reach(u, v *Node, ok edgeFilter) bool {
	if u == v {
		return false
	}
	seen := map[*Node]bool{u: true}
	queue := []*Node{u}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.Out {
			if !ok(e.Kind) || seen[e.To] {
				continue
			}
			if e.To == v {
				return true
			}
			seen[e.To] = true
			queue = append(queue, e.To)
		}
	}
	return false
}

// FutureAncestors returns the set of strict ancestor future IDs of f in
// the create tree (f-ancs of the paper).
func (g *Graph) FutureAncestors(f int) map[int]bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	anc := map[int]bool{}
	for p := g.futures[f].Parent; p >= 0; p = g.futures[p].Parent {
		anc[p] = true
	}
	return anc
}

// WorkSpan returns the work (number of strands) and span (longest
// directed path, in strands) of the dag.
func (g *Graph) WorkSpan() (work, span int) {
	order, err := g.Topological()
	if err != nil {
		panic("dag: WorkSpan on cyclic graph: " + err.Error())
	}
	depth := make(map[*Node]int, len(order))
	for _, n := range order {
		d := 1
		for _, e := range n.In {
			if depth[e.From]+1 > d {
				d = depth[e.From] + 1
			}
		}
		depth[n] = d
		if d > span {
			span = d
		}
	}
	return len(order), span
}

// Topological returns the nodes in a topological order, or an error when
// the graph has a cycle (which would indicate a recorder bug).
func (g *Graph) Topological() ([]*Node, error) {
	nodes := g.Nodes()
	indeg := make(map[*Node]int, len(nodes))
	for _, n := range nodes {
		indeg[n] = len(n.In)
	}
	var ready []*Node
	for _, n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	out := make([]*Node, 0, len(nodes))
	for len(ready) > 0 {
		n := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		out = append(out, n)
		for _, e := range n.Out {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(out) != len(nodes) {
		return nil, fmt.Errorf("dag: cycle detected (%d of %d nodes ordered)", len(out), len(nodes))
	}
	return out, nil
}

// SerialOrder returns the nodes in the left-to-right depth-first
// execution order — the order the serial one-core execution visits them.
// At a spawn or create strand the child branch is entered before the
// continuation; join nodes (sync, get) are emitted when their last
// predecessor has been emitted.
func (g *Graph) SerialOrder() []*Node {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	indeg := make(map[*Node]int, len(nodes))
	for _, n := range nodes {
		indeg[n] = len(n.In)
	}
	root := g.Root()
	out := make([]*Node, 0, len(nodes))
	stack := []*Node{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		// Push successors so that child branches pop before the
		// continuation: push continue-like edges first, branch edges
		// last (LIFO).
		var branch, serial []*Node
		for _, e := range n.Out {
			indeg[e.To]--
			if indeg[e.To] > 0 {
				continue
			}
			if e.Kind == Spawn || e.Kind == Create {
				branch = append(branch, e.To)
			} else {
				serial = append(serial, e.To)
			}
		}
		stack = append(stack, serial...)
		stack = append(stack, branch...)
	}
	return out
}

// Validate checks the structural invariants of an SF-dag (paper §2):
//
//  1. The graph is acyclic with a single root-future source.
//  2. Each future task has a unique first node (only node of the future
//     with an incoming create edge, Property 2) and a unique last node
//     (only node with an outgoing get edge).
//  3. Single-touch: at most one get edge leaves a future's last node.
//  4. Handle race freedom: for every gotten future G created by strand c
//     and gotten at strand g, a path from c's continuation to g exists
//     that avoids every node of G (the "no race on a future handle"
//     restriction).
//  5. SP edges connect same-future strands; create/get edges connect
//     distinct futures.
//
// Each violation cites the invariant it breaks; the full list is
// exported by Invariants(), and the scheduler's checked mode and the
// static analyzer cite the same identifiers.
func (g *Graph) Validate() error {
	if _, err := g.Topological(); err != nil {
		return fmt.Errorf("dag: %s violated: %w", invAcyclic.Cite(), err)
	}
	nodes := g.Nodes()
	futures := g.Futures()

	for _, n := range nodes {
		for _, e := range n.Out {
			sameFut := e.From.Future == e.To.Future
			if e.Kind.IsSP() && !sameFut {
				return fmt.Errorf("dag: %s violated: SP edge %v crosses futures %d->%d", invSPPartition.Cite(), e.Kind, e.From.Future, e.To.Future)
			}
			if !e.Kind.IsSP() && sameFut {
				return fmt.Errorf("dag: %s violated: non-SP edge %v within future %d", invSPPartition.Cite(), e.Kind, e.From.Future)
			}
		}
	}

	for _, f := range futures {
		if f.First == nil {
			return fmt.Errorf("dag: %s violated: future %d has no first node", invUniqueEntry.Cite(), f.ID)
		}
		getEdges := 0
		for _, n := range nodes {
			if n.Future != f.ID {
				continue
			}
			for _, e := range n.In {
				if e.Kind == Create && n != f.First {
					return fmt.Errorf("dag: %s violated: create edge into non-first node %v of future %d", invUniqueEntry.Cite(), n, f.ID)
				}
			}
			for _, e := range n.Out {
				if e.Kind == Get {
					if f.Last != nil && n != f.Last {
						return fmt.Errorf("dag: %s violated: get edge out of non-last node %v of future %d", invUniqueEntry.Cite(), n, f.ID)
					}
					getEdges++
				}
			}
		}
		if getEdges > 1 {
			return fmt.Errorf("dag: %s violated: future %d touched %d times", invSingleTouch.Cite(), f.ID, getEdges)
		}
	}

	// Handle race freedom: create-continuation must reach the get node
	// without entering the created future.
	for _, f := range futures {
		if f.ID == 0 || f.Got == nil {
			continue
		}
		var createNode *Node
		for _, e := range f.First.In {
			if e.Kind == Create {
				createNode = e.From
			}
		}
		if createNode == nil {
			return fmt.Errorf("dag: %s violated: future %d has no create edge", invUniqueEntry.Cite(), f.ID)
		}
		if !g.reachAvoidingFuture(createNode, f.Got, f.ID) {
			return fmt.Errorf("dag: %s violated: no handle-safe path from create of future %d to its get", invGetReachability.Cite(), f.ID)
		}
	}
	return nil
}

// reachAvoidingFuture reports whether v is reachable from u along paths
// whose intermediate nodes avoid future avoid, starting from u's non-create
// out-edges.
func (g *Graph) reachAvoidingFuture(u, v *Node, avoid int) bool {
	seen := map[*Node]bool{u: true}
	var queue []*Node
	for _, e := range u.Out {
		if e.Kind != Create && e.To.Future != avoid {
			queue = append(queue, e.To)
			seen[e.To] = true
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == v {
			return true
		}
		for _, e := range cur.Out {
			if seen[e.To] || e.To.Future == avoid {
				continue
			}
			seen[e.To] = true
			queue = append(queue, e.To)
		}
	}
	return false
}

// DOT renders the graph in Graphviz format, one cluster per future task.
func (g *Graph) DOT() string {
	nodes := g.Nodes()
	byFuture := map[int][]*Node{}
	for _, n := range nodes {
		byFuture[n.Future] = append(byFuture[n.Future], n)
	}
	futIDs := make([]int, 0, len(byFuture))
	for id := range byFuture {
		futIDs = append(futIDs, id)
	}
	sort.Ints(futIDs)

	var b strings.Builder
	b.WriteString("digraph sf {\n  rankdir=TB;\n")
	for _, fid := range futIDs {
		fmt.Fprintf(&b, "  subgraph cluster_f%d {\n    label=\"future %d\";\n", fid, fid)
		for _, n := range byFuture[fid] {
			fmt.Fprintf(&b, "    n%d [label=%q];\n", n.ID, n.String())
		}
		b.WriteString("  }\n")
	}
	for _, n := range nodes {
		for _, e := range n.Out {
			style := "solid"
			color := "black"
			switch e.Kind {
			case Create:
				color = "red"
			case Get:
				color = "blue"
			case SyncJoin:
				style = "dashed"
			}
			fmt.Fprintf(&b, "  n%d -> n%d [style=%s, color=%s];\n", e.From.ID, e.To.ID, style, color)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

package dag

import (
	"strings"
	"testing"

	"sforder/internal/sched"
)

// Hand-built non-SF dags: programs that violate the structured-futures
// restrictions in ways a real execution cannot always record (a self-get
// deadlocks the unchecked engine, for example). Validate must reject
// every one, citing the right invariant.

// buildSiblingSmuggle models a handle passed to a sibling future that
// was created before the handle existed:
//
//	root: a --create--> B, b --create--> A, then continuation c
//	B's body gets A (the handle arrived through shared memory).
//
// No path from A's create-continuation reaches the get without entering
// B through the earlier create edge, so get-reachability is violated.
func buildSiblingSmuggle() *Graph {
	g := New()
	a := g.NewNode(0, "a")
	bID := g.NewFuture(0) // consumer B, created first
	bFirst := g.NewNode(bID, "B.first")
	b := g.NewNode(0, "b")
	aID := g.NewFuture(0) // producer A, created second
	aFirst := g.NewNode(aID, "A.first")
	c := g.NewNode(0, "c")
	bGet := g.NewNode(bID, "B.get")
	bPut := g.NewNode(bID, "B.put")
	aPut := g.NewNode(aID, "A.put")

	g.AddEdge(a, bFirst, Create)
	g.AddEdge(a, b, Continue)
	g.AddEdge(b, aFirst, Create)
	g.AddEdge(b, c, Continue)
	g.AddEdge(bFirst, bGet, Continue)
	g.AddEdge(bGet, bPut, Continue)
	g.AddEdge(aFirst, aPut, Continue)
	g.AddEdge(aPut, bGet, Get) // B gets A

	g.SetLast(0, c)
	g.SetLast(bID, bPut)
	g.SetLast(aID, aPut)
	g.SetGot(aID, bGet)
	return g
}

// buildDescendantGet models a future A whose own created subtask C
// performs the get of A — the get is only reachable through A itself.
func buildDescendantGet() *Graph {
	g := New()
	a := g.NewNode(0, "a")
	aID := g.NewFuture(0)
	aFirst := g.NewNode(aID, "A.first")
	cont := g.NewNode(0, "cont")
	cID := g.NewFuture(aID)
	cFirst := g.NewNode(cID, "C.first")
	aPut := g.NewNode(aID, "A.put")
	cGet := g.NewNode(cID, "C.get")
	cPut := g.NewNode(cID, "C.put")

	g.AddEdge(a, aFirst, Create)
	g.AddEdge(a, cont, Continue)
	g.AddEdge(aFirst, cFirst, Create)
	g.AddEdge(aFirst, aPut, Continue)
	g.AddEdge(cFirst, cGet, Continue)
	g.AddEdge(cGet, cPut, Continue)
	g.AddEdge(aPut, cGet, Get) // C gets A: only reachable through A

	g.SetLast(0, cont)
	g.SetLast(aID, aPut)
	g.SetLast(cID, cPut)
	g.SetGot(aID, cGet)
	return g
}

// buildSelfGet models a future whose get strand lies inside the future
// itself — the recorded get edge stays within one future task.
func buildSelfGet() *Graph {
	g := New()
	a := g.NewNode(0, "a")
	fID := g.NewFuture(0)
	first := g.NewNode(fID, "F.first")
	cont := g.NewNode(0, "cont")
	fGet := g.NewNode(fID, "F.get")
	fPut := g.NewNode(fID, "F.put")

	g.AddEdge(a, first, Create)
	g.AddEdge(a, cont, Continue)
	g.AddEdge(first, fGet, Continue)
	g.AddEdge(fGet, fPut, Continue)
	g.AddEdge(fPut, fGet, Get) // within future fID (and cyclic)

	g.SetLast(0, cont)
	g.SetLast(fID, fPut)
	g.SetGot(fID, fGet)
	return g
}

func TestValidateRejectsAdversarialDags(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want string // invariant ID the error must cite
	}{
		{"sibling-smuggle", buildSiblingSmuggle(), "get-reachability"},
		{"descendant-get", buildDescendantGet(), "get-reachability"},
		{"self-get", buildSelfGet(), ""}, // acyclic or sp-partition, either is correct
	}
	for _, c := range cases {
		err := c.g.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a non-SF dag", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error does not cite %q: %v", c.name, c.want, err)
		}
		if !strings.Contains(err.Error(), "§2") {
			t.Errorf("%s: error does not cite the paper clause: %v", c.name, err)
		}
	}
}

func TestInvariantsExported(t *testing.T) {
	invs := Invariants()
	if len(invs) < 5 {
		t.Fatalf("Invariants() returned %d entries, want >= 5", len(invs))
	}
	seen := map[string]bool{}
	for _, v := range invs {
		if v.ID == "" || v.Clause == "" || v.Summary == "" {
			t.Errorf("incomplete invariant: %+v", v)
		}
		if seen[v.ID] {
			t.Errorf("duplicate invariant ID %q", v.ID)
		}
		seen[v.ID] = true
	}
	for _, id := range []string{"single-touch", "get-reachability"} {
		if !seen[id] {
			t.Errorf("invariant %q missing from Invariants()", id)
		}
	}
}

// TestValidateAgreesWithCheckedMode runs each executable fixture twice —
// once recorded and validated post hoc, once under the scheduler's
// checked mode — and asserts the two enforcement layers reach the same
// verdict. Fixtures that deadlock without checking (a self-get) only run
// checked; their dag-shaped counterparts are covered above.
func TestValidateAgreesWithCheckedMode(t *testing.T) {
	type fixture struct {
		name         string
		prog         func(*sched.Task)
		valid        bool
		checkedOnly  bool // unchecked execution would deadlock
		needParallel bool // serial inline execution would deadlock
	}
	backCh := make(chan *sched.Future, 1)
	selfCh := make(chan *sched.Future, 1)
	fixtures := []fixture{
		{
			name: "chained-futures",
			prog: func(tk *sched.Task) {
				a := tk.Create(func(*sched.Task) any { return 1 })
				b := tk.Create(func(c *sched.Task) any { return c.Get(a).(int) + 1 })
				tk.Get(b)
			},
			valid: true,
		},
		{
			name: "returned-handle",
			prog: func(tk *sched.Task) {
				outer := tk.Create(func(c *sched.Task) any {
					return c.Create(func(*sched.Task) any { return 42 })
				})
				tk.Get(tk.Get(outer).(*sched.Future))
			},
			valid: true,
		},
		{
			name: "spawned-child-create",
			prog: func(tk *sched.Task) {
				var h *sched.Future
				tk.Spawn(func(c *sched.Task) {
					h = c.Create(func(*sched.Task) any { return 9 })
				})
				tk.Sync()
				tk.Get(h)
			},
			valid: true,
		},
		{
			name: "backward-handle",
			prog: func(tk *sched.Task) {
				tk.Create(func(c *sched.Task) any { return c.Get(<-backCh) })
				producer := tk.Create(func(*sched.Task) any { return 7 })
				backCh <- producer
			},
			valid:        false,
			needParallel: true,
		},
		{
			name: "self-get",
			prog: func(tk *sched.Task) {
				h := tk.Create(func(c *sched.Task) any { return c.Get(<-selfCh) })
				selfCh <- h
			},
			valid:        false,
			checkedOnly:  true,
			needParallel: true,
		},
	}

	for _, f := range fixtures {
		opts := sched.Options{Serial: !f.needParallel, Workers: 1}

		if !f.checkedOnly {
			rec := NewRecorder()
			recOpts := opts
			recOpts.Tracer = rec
			if _, err := sched.Run(recOpts, f.prog); err != nil {
				t.Fatalf("%s: recorded run failed: %v", f.name, err)
			}
			verr := rec.G.Validate()
			if f.valid && verr != nil {
				t.Errorf("%s: Validate rejected a valid fixture: %v", f.name, verr)
			}
			if !f.valid && verr == nil {
				t.Errorf("%s: Validate accepted an invalid fixture", f.name)
			}
		}

		chkOpts := opts
		chkOpts.CheckStructure = true
		_, cerr := runChecked(chkOpts, f.prog)
		if f.valid && cerr != nil {
			t.Errorf("%s: checked mode rejected a valid fixture: %v", f.name, cerr)
		}
		if !f.valid && cerr == nil {
			t.Errorf("%s: checked mode accepted an invalid fixture", f.name)
		}
	}
}

// runChecked runs prog and converts a serial-mode panic (how checked
// violations surface without workers) into an error like parallel mode.
func runChecked(opts sched.Options, prog func(*sched.Task)) (c sched.Counts, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicErr{r}
		}
	}()
	return sched.Run(opts, prog)
}

type panicErr struct{ v any }

func (p *panicErr) Error() string { return "panic: " + toString(p.v) }

func toString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return "non-string panic"
}

package dag_test

import (
	"bytes"
	"strings"
	"testing"

	"sforder/internal/dag"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// TestEncodeDecodeRoundTrip: recorded dags survive serialization with
// identical structure, metadata, and reachability.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		rec := dag.NewRecorder()
		if _, err := sched.Run(sched.Options{Serial: true, Tracer: rec}, p.Main()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.G.Encode(&buf); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		g2, err := dag.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if g2.NumNodes() != rec.G.NumNodes() || g2.NumFutures() != rec.G.NumFutures() {
			t.Fatalf("seed %d: size mismatch", seed)
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("seed %d: decoded graph invalid: %v", seed, err)
		}
		// Reachability must be preserved node-for-node (IDs align).
		n1, n2 := rec.G.Nodes(), g2.Nodes()
		cl1, cl2 := dag.NewClosure(rec.G), dag.NewClosure(g2)
		for i := range n1 {
			for j := range n1 {
				if i == j {
					continue
				}
				if cl1.Reachable(n1[i], n1[j]) != cl2.Reachable(n2[i], n2[j]) {
					t.Fatalf("seed %d: reachability differs at (%d,%d)", seed, i, j)
				}
			}
		}
		// Work/span and serial order length are structure functions.
		w1, s1 := rec.G.WorkSpan()
		w2, s2 := g2.WorkSpan()
		if w1 != w2 || s1 != s2 {
			t.Fatalf("seed %d: work/span %d/%d vs %d/%d", seed, w1, w2, s1, s2)
		}
	}
}

func TestEncodePreservesFutureMetadata(t *testing.T) {
	rec := dag.NewRecorder()
	_, err := sched.Run(sched.Options{Serial: true, Tracer: rec}, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return nil })
		t.Create(func(*sched.Task) any { return nil }) // never gotten
		t.Get(h)
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.G.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := dag.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	futs := g2.Futures()
	if futs[1].Got == nil {
		t.Error("gotten future lost its Got node")
	}
	if futs[2].Got != nil {
		t.Error("ungotten future acquired a Got node")
	}
	if futs[1].Last == nil || futs[2].Last == nil {
		t.Error("future Last nodes lost")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{"nodes":[{"id":5,"future":0}],"edges":[],"futures":[]}`,                                                    // non-dense IDs
		`{"nodes":[{"id":0,"future":3}],"edges":[],"futures":[]}`,                                                    // unknown future
		`{"nodes":[{"id":0,"future":0}],"edges":[{"from":0,"to":9,"kind":"continue"}],"futures":[]}`,                 // dangling edge
		`{"nodes":[{"id":0,"future":0},{"id":1,"future":0}],"edges":[{"from":0,"to":1,"kind":"warp"}],"futures":[]}`, // bad kind
	}
	for i, c := range cases {
		if _, err := dag.Decode(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

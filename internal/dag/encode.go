package dag

import (
	"encoding/json"
	"fmt"
	"io"
)

// The wire format is a flat JSON document: a format version first, then
// nodes in ID order, edges in insertion order, futures in ID order. It
// exists so fuzz failures and interesting executions can be saved,
// inspected, and replayed by the oracle without re-running the program
// (sfgen -save / -load).

// WireVersion is the dag wire-format version. Decode rejects any other
// value, so a stale capture written by an incompatible build fails
// loudly instead of misdecoding. Bump it whenever the wire layout or
// its semantics change.
const WireVersion = 1

type wireGraph struct {
	Version int          `json:"version"`
	Nodes   []wireNode   `json:"nodes"`
	Edges   []wireEdge   `json:"edges"`
	Futures []wireFuture `json:"futures"`
}

type wireNode struct {
	ID     int    `json:"id"`
	Future int    `json:"future"`
	Label  string `json:"label,omitempty"`
}

type wireEdge struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Kind string `json:"kind"`
}

type wireFuture struct {
	ID     int `json:"id"`
	Parent int `json:"parent"`
	First  int `json:"first"`
	Last   int `json:"last"` // -1 when not completed
	Got    int `json:"got"`  // -1 when never gotten
}

func nodeID(n *Node) int {
	if n == nil {
		return -1
	}
	return n.ID
}

// Encode serializes the graph as JSON.
func (g *Graph) Encode(w io.Writer) error {
	g.mu.Lock()
	wire := wireGraph{Version: WireVersion}
	for _, n := range g.nodes {
		wire.Nodes = append(wire.Nodes, wireNode{ID: n.ID, Future: n.Future, Label: n.Label})
	}
	for _, n := range g.nodes {
		for _, e := range n.Out {
			wire.Edges = append(wire.Edges, wireEdge{From: e.From.ID, To: e.To.ID, Kind: e.Kind.String()})
		}
	}
	for _, f := range g.futures {
		if f == nil {
			g.mu.Unlock()
			return fmt.Errorf("dag: future table has a hole; graph incomplete")
		}
		wire.Futures = append(wire.Futures, wireFuture{
			ID:     f.ID,
			Parent: f.Parent,
			First:  nodeID(f.First),
			Last:   nodeID(f.Last),
			Got:    nodeID(f.Got),
		})
	}
	g.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(wire)
}

func kindFromString(s string) (EdgeKind, error) {
	for _, k := range []EdgeKind{Continue, Spawn, SyncJoin, Create, Get} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("dag: unknown edge kind %q", s)
}

// Decode reconstructs a graph from Encode's output. The decoded graph
// supports every query (reachability, validation, serial order, DOT)
// but carries no detector or recorder payloads.
func Decode(r io.Reader) (*Graph, error) {
	var wire wireGraph
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("dag: decode: %w", err)
	}
	if wire.Version != WireVersion {
		return nil, fmt.Errorf("dag: decode: wire version %d, want %d (stale or foreign capture; re-record it)",
			wire.Version, WireVersion)
	}
	g := New()
	byID := map[int]*Node{}
	// Futures first so node creation can attribute First correctly.
	for _, f := range wire.Futures {
		if f.ID == 0 {
			continue // the root future exists already
		}
		g.EnsureFuture(f.ID, f.Parent)
	}
	for i, n := range wire.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("dag: decode: node IDs must be dense and ordered (got %d at %d)", n.ID, i)
		}
		if n.Future < 0 || n.Future >= len(g.futures) {
			return nil, fmt.Errorf("dag: decode: node %d has unknown future %d", n.ID, n.Future)
		}
		byID[n.ID] = g.NewNode(n.Future, n.Label)
	}
	for _, e := range wire.Edges {
		from, to := byID[e.From], byID[e.To]
		if from == nil || to == nil {
			return nil, fmt.Errorf("dag: decode: edge %d->%d references unknown node", e.From, e.To)
		}
		kind, err := kindFromString(e.Kind)
		if err != nil {
			return nil, err
		}
		g.AddEdge(from, to, kind)
	}
	for _, f := range wire.Futures {
		if f.First >= 0 {
			if got := g.futures[f.ID].First; got != byID[f.First] {
				return nil, fmt.Errorf("dag: decode: future %d first node mismatch", f.ID)
			}
		}
		if f.Last >= 0 {
			g.SetLast(f.ID, byID[f.Last])
		}
		if f.Got >= 0 {
			g.SetGot(f.ID, byID[f.Got])
		}
	}
	return g, nil
}

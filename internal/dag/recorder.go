package dag

import (
	"fmt"
	"sync"

	"sforder/internal/sched"
)

// Recorder is a sched.Tracer that materializes the executed computation
// dag as a Graph. It is used by tests (to cross-validate the constant
// time detectors against exhaustive reachability) and by the sfgen tool;
// production detection never records the full dag.
type Recorder struct {
	G *Graph

	mu      sync.Mutex
	strands []*sched.Strand
}

// NewRecorder returns a recorder with an empty graph.
func NewRecorder() *Recorder { return &Recorder{G: New()} }

// Strands returns every strand observed, in recording order.
func (r *Recorder) Strands() []*sched.Strand {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*sched.Strand(nil), r.strands...)
}

// NodeOf returns the graph node recorded for a strand.
func (r *Recorder) NodeOf(s *sched.Strand) *Node {
	n, ok := s.Rec.(*Node)
	if !ok {
		panic(fmt.Sprintf("dag: strand %v has no recorded node", s))
	}
	return n
}

func (r *Recorder) newNode(s *sched.Strand, label string) *Node {
	n := r.G.NewNode(s.Fut.ID, label)
	s.Rec = n
	r.mu.Lock()
	r.strands = append(r.strands, s)
	r.mu.Unlock()
	return n
}

// OnRoot implements sched.Tracer.
func (r *Recorder) OnRoot(root *sched.Strand) {
	r.newNode(root, "root")
}

// OnSpawn implements sched.Tracer.
func (r *Recorder) OnSpawn(u, child, cont, placeholder *sched.Strand) {
	un := r.NodeOf(u)
	cn := r.newNode(child, "child")
	kn := r.newNode(cont, "cont")
	r.G.AddEdge(un, cn, Spawn)
	r.G.AddEdge(un, kn, Continue)
	if placeholder != nil {
		r.newNode(placeholder, "sync")
	}
}

// OnCreate implements sched.Tracer.
func (r *Recorder) OnCreate(u, first, cont, placeholder *sched.Strand, f *sched.FutureTask) {
	parent := 0
	if f.Parent != nil {
		parent = f.Parent.ID
	}
	r.G.EnsureFuture(f.ID, parent)
	un := r.NodeOf(u)
	fn := r.newNode(first, "first")
	kn := r.newNode(cont, "cont")
	r.G.AddEdge(un, fn, Create)
	r.G.AddEdge(un, kn, Continue)
	if placeholder != nil {
		r.newNode(placeholder, "sync")
	}
}

// OnSync implements sched.Tracer.
func (r *Recorder) OnSync(k, s *sched.Strand, childSinks []*sched.Strand) {
	sn := r.NodeOf(s)
	r.G.AddEdge(r.NodeOf(k), sn, Continue)
	for _, c := range childSinks {
		r.G.AddEdge(r.NodeOf(c), sn, SyncJoin)
	}
}

// OnReturn implements sched.Tracer.
func (r *Recorder) OnReturn(sink *sched.Strand) {}

// OnPut implements sched.Tracer.
func (r *Recorder) OnPut(sink *sched.Strand, f *sched.FutureTask) {
	r.G.SetLast(f.ID, r.NodeOf(sink))
}

// OnGet implements sched.Tracer.
func (r *Recorder) OnGet(u, g *sched.Strand, f *sched.FutureTask) {
	un := r.NodeOf(u)
	gn := r.newNode(g, "get")
	r.G.AddEdge(un, gn, Continue)
	last := f.Last()
	r.G.AddEdge(r.NodeOf(last), gn, Get)
	r.G.SetGot(f.ID, gn)
}

var _ sched.Tracer = (*Recorder)(nil)

package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueAndNil(t *testing.T) {
	var s Set
	if s.Len() != 0 || !s.Empty() {
		t.Error("zero value should be empty")
	}
	var p *Set
	if p.Contains(3) {
		t.Error("nil set contains nothing")
	}
	if p.Len() != 0 {
		t.Error("nil set has length 0")
	}
	if !p.Subsumes(nil) {
		t.Error("nil subsumes nil")
	}
	if p.MemBytes() != 0 {
		t.Error("nil set uses no memory")
	}
}

func TestAddContainsRemove(t *testing.T) {
	s := New(0)
	ids := []int{0, 1, 63, 64, 65, 127, 128, 1000}
	for _, id := range ids {
		s.Add(id)
	}
	for _, id := range ids {
		if !s.Contains(id) {
			t.Errorf("missing %d", id)
		}
	}
	if s.Contains(2) || s.Contains(999) || s.Contains(-1) {
		t.Error("contains reports absent ids")
	}
	if s.Len() != len(ids) {
		t.Errorf("Len = %d, want %d", s.Len(), len(ids))
	}
	s.Remove(63)
	s.Remove(63) // idempotent
	s.Remove(424242)
	s.Remove(-5)
	if s.Contains(63) || s.Len() != len(ids)-1 {
		t.Error("remove failed")
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative id")
		}
	}()
	New(0).Add(-1)
}

func TestFromIDsAndIDs(t *testing.T) {
	s := FromIDs(5, 1, 9, 1)
	got := s.IDs()
	want := []int{1, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	if s.String() != "{1, 5, 9}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIDs(1, 2, 3)
	b := a.Clone()
	b.Add(100)
	if a.Contains(100) {
		t.Error("clone aliases original")
	}
	var p *Set
	c := p.Clone()
	c.Add(1)
	if !c.Contains(1) {
		t.Error("clone of nil is usable")
	}
}

func TestUnionAndSubsumes(t *testing.T) {
	a := FromIDs(1, 2, 70)
	b := FromIDs(2, 3)
	u := Union(a, b)
	for _, id := range []int{1, 2, 3, 70} {
		if !u.Contains(id) {
			t.Errorf("union missing %d", id)
		}
	}
	if !u.Subsumes(a) || !u.Subsumes(b) {
		t.Error("union must subsume both inputs")
	}
	if a.Subsumes(b) || b.Subsumes(a) {
		t.Error("unrelated sets must not subsume each other")
	}
	if !a.Subsumes(nil) {
		t.Error("everything subsumes nil")
	}
	// Shorter set subsuming longer set with zero high words.
	c := FromIDs(1)
	d := FromIDs(1)
	d.Add(500)
	d.Remove(500) // leaves zero high words
	if !c.Subsumes(d) {
		t.Error("zero high words must not break Subsumes")
	}
	if !c.Equal(d) || a.Equal(b) {
		t.Error("Equal incorrect")
	}
}

func TestMergeSharedPolicy(t *testing.T) {
	a := FromIDs(1, 2)
	b := FromIDs(1)
	// a subsumes b: no allocation, a returned.
	m, alloc := MergeShared(a, b)
	if alloc || m != a {
		t.Error("subsuming side should be shared, not copied")
	}
	m, alloc = MergeShared(b, a)
	if alloc || m != a {
		t.Error("order must not matter for subsumption")
	}
	// Divergent sets: allocation required.
	c := FromIDs(9)
	m, alloc = MergeShared(a, c)
	if !alloc {
		t.Error("divergent sets must allocate")
	}
	if !m.Contains(1) || !m.Contains(2) || !m.Contains(9) {
		t.Error("merge lost members")
	}
	// Nil handling.
	if m, alloc = MergeShared(nil, nil); m != nil || alloc {
		t.Error("nil+nil should stay nil without allocation")
	}
	if m, alloc = MergeShared(a, nil); m != a || alloc {
		t.Error("x+nil should share x")
	}
}

func TestQuickUnionModel(t *testing.T) {
	// Property: Union behaves like a set-theoretic union over a map model.
	f := func(xs, ys []uint8) bool {
		a, b := New(0), New(0)
		model := map[int]bool{}
		for _, x := range xs {
			a.Add(int(x))
			model[int(x)] = true
		}
		for _, y := range ys {
			b.Add(int(y))
			model[int(y)] = true
		}
		u := Union(a, b)
		if u.Len() != len(model) {
			return false
		}
		for id := range model {
			if !u.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsumesReflectsMembership(t *testing.T) {
	f := func(xs []uint8, extra uint8) bool {
		a := New(0)
		for _, x := range xs {
			a.Add(int(x))
		}
		sup := a.Clone()
		sup.Add(int(extra) + 256) // strictly larger
		return sup.Subsumes(a) && !a.Subsumes(sup)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemBytes(t *testing.T) {
	s := New(0)
	s.Add(1000)
	if s.MemBytes() < 8*(1000/64) {
		t.Errorf("MemBytes = %d, too small for id 1000", s.MemBytes())
	}
}

func BenchmarkAddContains(b *testing.B) {
	s := New(1024)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 512; i++ {
		s.Add(rng.Intn(1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Contains(i & 1023)
	}
}

func BenchmarkMergeSharedDivergent(b *testing.B) {
	x := FromIDs(1, 100, 500)
	y := FromIDs(2, 300, 900)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeShared(x, y)
	}
}

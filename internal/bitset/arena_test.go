package bitset

import "testing"

func TestArenaCloneUnionMerge(t *testing.T) {
	a := &Arena{}
	s := FromIDs(1, 70, 200)
	c := CloneIn(a, s, 201)
	if !c.Equal(s) {
		t.Fatalf("CloneIn: got %v want %v", c, s)
	}
	c.Add(199) // within hint: must not grow
	if got, want := c.MemBytes(), 8*hintWords(201); got != want {
		t.Fatalf("CloneIn mem %d, want %d", got, want)
	}

	x, y := FromIDs(3, 64), FromIDs(5, 130)
	u := UnionIn(a, x, y, 131)
	if want := FromIDs(3, 5, 64, 130); !u.Equal(want) {
		t.Fatalf("UnionIn: got %v want %v", u, want)
	}
	// y larger than the hint-derived clone: the growing path.
	u2 := UnionIn(a, FromIDs(1), FromIDs(600), 0)
	if want := FromIDs(1, 600); !u2.Equal(want) {
		t.Fatalf("UnionIn grow: got %v want %v", u2, want)
	}

	m, alloc := MergeSharedIn(a, x, y)
	if !alloc || !m.Equal(Union(x, y)) {
		t.Fatalf("MergeSharedIn divergent: alloc=%v m=%v", alloc, m)
	}
	sub := FromIDs(3)
	if m2, alloc2 := MergeSharedIn(a, x, sub); alloc2 || m2 != x {
		t.Fatalf("MergeSharedIn subsumed: expected shared pointer, got alloc=%v", alloc2)
	}
	if m3, alloc3 := MergeSharedIn(a, nil, nil); alloc3 || m3 != nil {
		t.Fatal("MergeSharedIn(nil,nil) should stay nil without allocating")
	}

	if a.Bytes() == 0 {
		t.Fatal("arena reported no page bytes after allocations")
	}
	a.Release()
	if a.Bytes() != 0 {
		t.Fatal("arena bytes nonzero after Release")
	}
}

// TestArenaNilFallback: every arena helper must work with a nil arena
// (the -noarena ablation path).
func TestArenaNilFallback(t *testing.T) {
	var a *Arena
	if got := CloneIn(a, FromIDs(9), 10); !got.Equal(FromIDs(9)) {
		t.Fatalf("nil-arena CloneIn: %v", got)
	}
	if got := UnionIn(a, FromIDs(1), FromIDs(2), 3); !got.Equal(FromIDs(1, 2)) {
		t.Fatalf("nil-arena UnionIn: %v", got)
	}
	if a.Bytes() != 0 {
		t.Fatal("nil arena must report zero bytes")
	}
	a.Release() // must not panic
}

// TestArenaSlicesAreCapped: a set that grows past its arena allocation
// must not overwrite its page neighbour.
func TestArenaSlicesAreCapped(t *testing.T) {
	a := &Arena{}
	first := CloneIn(a, nil, 64)  // one word
	second := CloneIn(a, nil, 64) // adjacent word on the same page
	second.Add(7)
	first.Add(0)
	first.Add(100) // grows past the one-word allocation
	first.Add(64)
	if !second.Equal(FromIDs(7)) {
		t.Fatalf("neighbour set corrupted by growth: %v", second)
	}
	if !first.Equal(FromIDs(0, 64, 100)) {
		t.Fatalf("grown set wrong: %v", first)
	}
}

// Package bitset provides fixed-purpose dynamic bitsets used by the
// SF-Order reachability structures (the gp and cp tables of the paper,
// §3.2). A Set is an append-only membership bitmap over small integer IDs
// (future IDs in practice), stored as a slice of 64-bit words.
//
// Sets are value types built for a copy-on-write discipline: reachability
// maintenance shares a *Set between dag nodes via pointer as long as no
// divergence occurs, and allocates a fresh set only when two parents each
// contain bits the other lacks (paper §3.4). The helpers Union, Subsumes
// and MergeShared implement exactly that policy.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a bitmap over non-negative integer IDs. The zero value is an
// empty set ready for use.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity preallocated for IDs < hint.
func New(hint int) *Set {
	if hint <= 0 {
		return &Set{}
	}
	return &Set{words: make([]uint64, (hint+wordBits-1)/wordBits)}
}

// FromIDs builds a set containing exactly the given IDs.
func FromIDs(ids ...int) *Set {
	s := &Set{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts id into the set, growing the word slice as needed.
// Negative IDs are rejected with a panic: they indicate a bookkeeping bug
// in the caller (future IDs are allocated from a counter starting at 0).
func (s *Set) Add(id int) {
	if id < 0 {
		panic("bitset: negative id " + strconv.Itoa(id))
	}
	w := id / wordBits
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << uint(id%wordBits)
}

// Remove deletes id from the set. Removing an absent id is a no-op.
func (s *Set) Remove(id int) {
	if id < 0 {
		return
	}
	w := id / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(id%wordBits)
	}
}

// Contains reports whether id is in the set. Absent and negative IDs
// report false; a nil receiver is an empty set.
func (s *Set) Contains(id int) bool {
	if s == nil || id < 0 {
		return false
	}
	w := id / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(id%wordBits)) != 0
}

// Len returns the number of IDs in the set (population count).
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return s.Len() == 0 }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	if s == nil {
		return &Set{}
	}
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// UnionWith adds every member of o to s (in place).
func (s *Set) UnionWith(o *Set) {
	if o == nil {
		return
	}
	for len(s.words) < len(o.words) {
		s.words = append(s.words, 0)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Union returns a freshly allocated union of a and b. Nil arguments are
// treated as empty sets.
func Union(a, b *Set) *Set {
	u := a.Clone()
	u.UnionWith(b)
	return u
}

// Subsumes reports whether s ⊇ o, i.e. every member of o is in s.
// Nil sets are empty and subsumed by everything.
func (s *Set) Subsumes(o *Set) bool {
	if o == nil {
		return true
	}
	for i, w := range o.words {
		var sw uint64
		if s != nil && i < len(s.words) {
			sw = s.words[i]
		}
		if w&^sw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets have identical membership.
func (s *Set) Equal(o *Set) bool { return s.Subsumes(o) && o.Subsumes(s) }

// MergeShared implements the copy-on-write merge policy of paper §3.4:
// given the (shared, possibly nil) sets of a node's parents it returns a
// set representing their union, plus allocated=true iff a new set had to
// be created — which happens only when each input contains a member the
// other lacks. When one input subsumes the other, the subsuming pointer is
// returned as-is so the caller keeps sharing it.
func MergeShared(a, b *Set) (merged *Set, allocated bool) {
	switch {
	case a == nil && b == nil:
		return nil, false
	case a.Subsumes(b):
		return a, false
	case b.Subsumes(a):
		return b, false
	default:
		return Union(a, b), true
	}
}

// IDs returns the members of the set in ascending order.
func (s *Set) IDs() []int {
	if s == nil {
		return nil
	}
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// MemBytes returns the heap footprint of the set's payload in bytes.
// Used by the Figure 5 memory-accounting harness.
func (s *Set) MemBytes() int {
	if s == nil {
		return 0
	}
	return 8 * cap(s.words)
}

// String renders the set as "{1, 5, 9}" for debugging and test failure
// messages.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s.IDs() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.Itoa(id))
	}
	b.WriteByte('}')
	return b.String()
}

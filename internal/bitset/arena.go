package bitset

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// arenaPageWords is the number of uint64 words per arena page (32 KiB).
// gp/cp bitmaps are a handful of words each (one word covers 64 future
// IDs), so a page serves thousands of sets.
const arenaPageWords = 4096

type arenaPage struct{ words [arenaPageWords]uint64 }

// arenaPagePool recycles pages across runs; pages re-enter it only via
// Arena.Release.
var arenaPagePool = sync.Pool{New: func() any { return new(arenaPage) }}

// Arena is a bump allocator for Set word arrays, used by the per-worker
// lane arenas of internal/core so gp/cp bitmap allocation on the reach
// hot path is a pointer bump. Single-owner: not safe for concurrent
// use. A nil *Arena is valid and falls back to the heap.
//
// Word slices handed out are capacity-clamped (three-index slices), so
// a Set that later grows past its arena allocation reallocates onto the
// heap instead of overwriting its page neighbours.
type Arena struct {
	cur   *arenaPage
	next  int
	pages []*arenaPage
	bytes atomic.Int64 // page bytes held; atomic so gauges scrape mid-run
}

// alloc returns a zeroed word slice of length n. Requests larger than a
// page, and all requests on a nil arena, go to the heap.
func (a *Arena) alloc(n int) []uint64 {
	if a == nil || n > arenaPageWords {
		return make([]uint64, n)
	}
	if a.cur == nil || a.next+n > arenaPageWords {
		a.cur = arenaPagePool.Get().(*arenaPage)
		a.pages = append(a.pages, a.cur)
		a.next = 0
		a.bytes.Add(int64(unsafe.Sizeof(arenaPage{})))
	}
	w := a.cur.words[a.next : a.next+n : a.next+n]
	a.next += n
	clear(w)
	return w
}

// Bytes reports the page bytes currently held by the arena.
func (a *Arena) Bytes() int64 {
	if a == nil {
		return 0
	}
	return a.bytes.Load()
}

// Release returns every page to the shared pool for reuse by a later
// run. The caller must guarantee no Set allocated from this arena is
// referenced afterwards.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	for i, p := range a.pages {
		a.pages[i] = nil
		arenaPagePool.Put(p)
	}
	a.pages = a.pages[:0]
	a.cur, a.next = nil, 0
	a.bytes.Store(0)
}

// hintWords converts an ID-capacity hint into a word count.
func hintWords(hint int) int {
	if hint <= 0 {
		return 0
	}
	return (hint + wordBits - 1) / wordBits
}

// CloneIn returns a copy of s with its words drawn from a, sized to
// cover IDs < hint so a subsequent Add below the hint never grows the
// set off-arena. Nil s clones to an empty set.
func CloneIn(a *Arena, s *Set, hint int) *Set {
	nw := hintWords(hint)
	if s != nil && len(s.words) > nw {
		nw = len(s.words)
	}
	c := &Set{}
	if nw > 0 {
		c.words = a.alloc(nw)
		if s != nil {
			copy(c.words, s.words)
		}
	}
	return c
}

// UnionIn returns the union of x and y with the result words drawn from
// a, pre-sized to cover IDs < hint. Nil arguments are empty sets.
func UnionIn(a *Arena, x, y *Set, hint int) *Set {
	u := CloneIn(a, x, hint)
	if y != nil {
		if len(y.words) > len(u.words) {
			// y outgrew the hint: fall back to the growing path.
			u.UnionWith(y)
			return u
		}
		for i, w := range y.words {
			u.words[i] |= w
		}
	}
	return u
}

// MergeSharedIn is MergeShared with any freshly allocated union drawn
// from a (see MergeShared for the copy-on-write policy).
func MergeSharedIn(a *Arena, x, y *Set) (merged *Set, allocated bool) {
	switch {
	case x == nil && y == nil:
		return nil, false
	case x.Subsumes(y):
		return x, false
	case y.Subsumes(x):
		return y, false
	default:
		return UnionIn(a, x, y, 0), true
	}
}

// Instrumenter fixture: access paths whose base has side effects must
// be hoisted into a temporary so the injected annotation does not
// evaluate the side effect a second time.
package main

import "sforder"

type box struct{ n int }

var registry = map[string]*box{}

func pick(k string) *box { return registry[k] }

func hoist(t *sforder.Task, ch chan *box) {
	h := t.Create(func(c *sforder.Task) any { return nil })
	v := pick("a").n
	w := (<-ch).n
	u := pick("b").n + v + w
	t.Get(h)
	_, _, _ = v, w, u
}

func main() {}

// Instrumenter fixture: the strand-locality pre-pass — operations on a
// freshly allocated, never-escaping slice and on uncaptured locals are
// skipped; the package-level array is annotated.
package main

import "sforder"

var out [2]int

func local(t *sforder.Task) {
	buf := make([]int, 4)
	n := 0
	h := t.Create(func(c *sforder.Task) any {
		out[0] = 1
		return nil
	})
	for i := range buf {
		buf[i] = i
		n += buf[i]
	}
	out[1] = n
	t.Get(h)
}

func main() {}

// Instrumenter fixture: closures whose Task parameter is unnamed or
// blank get it named __sft so the injected annotations have a receiver.
package main

import "sforder"

var shared int

func rename(t *sforder.Task) {
	h := t.Create(func(*sforder.Task) any {
		shared = 1
		return nil
	})
	h2 := t.Create(func(_ *sforder.Task) any {
		shared = 2
		return nil
	})
	t.Get(h)
	t.Get(h2)
}

func main() {}

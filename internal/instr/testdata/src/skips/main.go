// Instrumenter fixture: operations the rewriter cannot or will not
// instrument — map elements, loop conditions that advance the strand,
// goroutine bodies. Every operation here is skipped, so the file must
// come back byte-identical: no annotations means no edits.
package main

import "sforder"

func skips(t *sforder.Task, m map[string]int, flag *bool) {
	h := t.Create(func(c *sforder.Task) any {
		m["a"] = 1
		return nil
	})
	m["b"] = 2
	for *flag && t.Get(h) == nil {
		m["c"]++
	}
	go func() {
		m["d"] = 3
	}()
	t.Get(h)
}

func main() {}

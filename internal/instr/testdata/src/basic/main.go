// Instrumenter fixture: plain shared accesses in task scopes — direct
// writes, op-assignments, increments, reads-before-writes ordering, and
// the before/after split around a strand-advancing Get.
package main

import (
	"fmt"

	"sforder"
)

func run() {
	x := 0
	y := 0
	sum := 0
	_, _ = sforder.Run(sforder.Config{}, func(t *sforder.Task) {
		h := t.Create(func(c *sforder.Task) any {
			x = 1
			y += 2
			return nil
		})
		x = 3
		x++
		sum = x + y
		v := t.Get(h)
		sum += y
		_ = v
		h2 := t.Create(func(c *sforder.Task) any { return x })
		y = t.Get(h2).(int) + x
	})
	fmt.Println(x, y, sum)
}

func main() { run() }

// Instrumenter fixture: access paths — selector chains through
// pointers, index expressions, range statements, loop bodies, and
// conditions.
package main

import "sforder"

type node struct {
	val  int
	next *node
}

type grid struct{ cells []int }

func paths(t *sforder.Task, g *grid, n *node) {
	h := t.Create(func(c *sforder.Task) any {
		g.cells[0] = n.val
		return nil
	})
	g.cells[1] = 2
	i := 1
	g.cells[i] = i + 1
	n.next.val = g.cells[0]
	t.Get(h)
	total := 0
	for j := 0; j < 3; j++ {
		total += g.cells[j]
	}
	for _, v := range g.cells {
		total += v
	}
	if total > 0 && g.cells[0] > 1 {
		total = g.cells[1]
	}
	n.val = total
}

func main() {}

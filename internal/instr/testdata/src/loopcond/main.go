// Instrumenter fixture: shared reads inside `for` conditions. The
// header is re-evaluated every iteration, so the rewriter moves each
// condition into the body as a guarded break and annotates its reads
// at the new per-iteration insertion point.
package main

import (
	"fmt"

	"sforder"
)

func run() {
	n := 0
	limit := 10
	done := false
	_, _ = sforder.Run(sforder.Config{}, func(t *sforder.Task) {
		h := t.Create(func(c *sforder.Task) any {
			limit = 5
			return nil
		})
		for n < limit {
			n++
		}
		t.Get(h)
		for i := 0; i < limit; i++ {
			n += i
		}
		for !done {
			done = true
		}
	})
	fmt.Println(n, limit, done)
}

func main() { run() }

package instr

import (
	"fmt"
	"strings"
)

// Diff renders a unified diff between two versions of one file, for
// sfinstr's -diff preview mode. It is a plain LCS line diff with three
// lines of context — the inputs are single source files, so the
// quadratic table is fine.
func Diff(path string, a, b []byte) string {
	if string(a) == string(b) {
		return ""
	}
	al, bl := splitLines(a), splitLines(b)
	ops := diffOps(al, bl)

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s (instrumented)\n", path, path)
	const ctx = 3
	for i := 0; i < len(ops); {
		if ops[i].kind == opEqual {
			i++
			continue
		}
		// Expand a hunk around this run of changes.
		start := i
		end := i
		for end < len(ops) {
			if ops[end].kind != opEqual {
				end++
				continue
			}
			// A gap of equal lines splits hunks only when longer than
			// twice the context.
			gap := end
			for gap < len(ops) && ops[gap].kind == opEqual {
				gap++
			}
			if gap-end > 2*ctx && gap < len(ops) {
				break
			}
			if gap == len(ops) {
				break
			}
			end = gap
		}
		lo := start
		for lo > 0 && start-lo < ctx && ops[lo-1].kind == opEqual {
			lo--
		}
		hi := end
		for hi < len(ops) && hi-end < ctx && ops[hi].kind == opEqual {
			hi++
		}
		aStart, bStart, aN, bN := ops[lo].aLine, ops[lo].bLine, 0, 0
		for _, op := range ops[lo:hi] {
			if op.kind != opAdd {
				aN++
			}
			if op.kind != opDelete {
				bN++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart+1, aN, bStart+1, bN)
		for _, op := range ops[lo:hi] {
			switch op.kind {
			case opEqual:
				sb.WriteString(" " + op.text + "\n")
			case opDelete:
				sb.WriteString("-" + op.text + "\n")
			case opAdd:
				sb.WriteString("+" + op.text + "\n")
			}
		}
		i = hi
	}
	return sb.String()
}

type opKind int

const (
	opEqual opKind = iota
	opDelete
	opAdd
)

type diffOp struct {
	kind         opKind
	text         string
	aLine, bLine int
}

func splitLines(b []byte) []string {
	s := strings.TrimSuffix(string(b), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func diffOps(a, b []string) []diffOp {
	// Trim common prefix/suffix to keep the LCS table small.
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	suf := 0
	for suf < len(a)-pre && suf < len(b)-pre && a[len(a)-1-suf] == b[len(b)-1-suf] {
		suf++
	}
	am, bm := a[pre:len(a)-suf], b[pre:len(b)-suf]

	// LCS lengths.
	n, m := len(am), len(bm)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if am[i] == bm[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}

	var ops []diffOp
	aLine, bLine := 0, 0
	push := func(kind opKind, text string) {
		ops = append(ops, diffOp{kind: kind, text: text, aLine: aLine, bLine: bLine})
		if kind != opAdd {
			aLine++
		}
		if kind != opDelete {
			bLine++
		}
	}
	for k := 0; k < pre; k++ {
		push(opEqual, a[k])
	}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case am[i] == bm[j]:
			push(opEqual, am[i])
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			push(opDelete, am[i])
			i++
		default:
			push(opAdd, bm[j])
			j++
		}
	}
	for ; i < n; i++ {
		push(opDelete, am[i])
	}
	for ; j < m; j++ {
		push(opAdd, bm[j])
	}
	for k := len(a) - suf; k < len(a); k++ {
		push(opEqual, a[k])
	}
	return ops
}

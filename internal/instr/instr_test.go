package instr

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sforder/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// instrumentDir loads and instruments the single package in dir.
func instrumentDir(t *testing.T, dir string) *Result {
	t.Helper()
	pkgs, err := analysis.Load(dir, []string{"."}, false)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	res, err := Package(pkgs[0])
	if err != nil {
		t.Fatalf("Package: %v", err)
	}
	return res
}

// TestGolden instruments each fixture package and compares the output
// against the checked-in .golden file. Regenerate with:
//
//	go test ./internal/instr -run TestGolden -update
func TestGolden(t *testing.T) {
	cases, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil || len(cases) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	for _, dir := range cases {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			res := instrumentDir(t, dir)
			for _, f := range res.Files {
				golden := f.Path + ".golden"
				if *update {
					if err := os.WriteFile(golden, f.Output, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if string(want) != string(f.Output) {
					t.Errorf("output mismatch for %s:\n%s", f.Path, Diff(f.Path, want, f.Output))
				}
			}
			for _, f := range res.Files {
				for _, s := range f.Skips {
					t.Logf("skip: %s", s)
				}
			}
		})
	}
}

// TestGoldenNoEdit: the skips fixture is entirely uninstrumentable, and
// a file with no annotations must come back byte-identical — the
// rewriter makes no gratuitous edits.
func TestGoldenNoEdit(t *testing.T) {
	res := instrumentDir(t, filepath.Join("testdata", "src", "skips"))
	for _, f := range res.Files {
		if f.Changed {
			t.Errorf("%s was edited but contains nothing instrumentable", f.Path)
		}
	}
	if _, _, _, skips := res.Totals(); skips == 0 {
		t.Errorf("skips fixture recorded no skips")
	}
}

// TestIdempotent: instrumenting the instrumented output is a no-op.
// The re-instrumentation staging dir must live inside this module so
// the loader resolves the "sforder" import against the working copy.
func TestIdempotent(t *testing.T) {
	cases, _ := filepath.Glob(filepath.Join("testdata", "src", "*"))
	for _, dir := range cases {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			res := instrumentDir(t, dir)
			tmp, err := os.MkdirTemp("testdata", "reinstr-")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { os.RemoveAll(tmp) })
			for _, f := range res.Files {
				if err := os.WriteFile(filepath.Join(tmp, filepath.Base(f.Path)), f.Output, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			again := instrumentDir(t, tmp)
			for i, f := range again.Files {
				if f.Changed {
					t.Errorf("re-instrumentation edited %s:\n%s", f.Path,
						Diff(f.Path, res.Files[i].Output, f.Output))
				}
			}
		})
	}
}

// TestSkipReasons pins the skip records the fixtures are built around.
func TestSkipReasons(t *testing.T) {
	wantReasons := map[string][]string{
		"skips": {
			"map element has no address",
			"loop condition advances the strand",
			"goroutine body is outside the task model",
		},
		"paths": {
			"range element reads happen every iteration",
		},
	}
	for name, wants := range wantReasons {
		t.Run(name, func(t *testing.T) {
			res := instrumentDir(t, filepath.Join("testdata", "src", name))
			var all []string
			for _, f := range res.Files {
				for _, s := range f.Skips {
					all = append(all, s.String())
				}
			}
			joined := strings.Join(all, "\n")
			for _, w := range wants {
				if !strings.Contains(joined, w) {
					t.Errorf("no skip containing %q; got:\n%s", w, joined)
				}
			}
		})
	}
}

// TestCounts pins aggregate injection counts per fixture so silent
// coverage regressions show up as count drifts.
func TestCounts(t *testing.T) {
	for _, tc := range []struct {
		name           string
		reads, writes  int
		hoists         int
		wantUnchanged  bool
		wantHoistTemps bool
	}{
		{name: "skips", wantUnchanged: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := instrumentDir(t, filepath.Join("testdata", "src", tc.name))
			if tc.wantUnchanged && res.Changed() {
				t.Errorf("expected no changes")
			}
		})
	}

	// The hoist fixture must introduce temporaries.
	res := instrumentDir(t, filepath.Join("testdata", "src", "hoist"))
	if _, _, hoists, _ := res.Totals(); hoists == 0 {
		t.Errorf("hoist fixture produced no hoisted temporaries")
	}
}

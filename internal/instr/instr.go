package instr

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"

	"sforder/internal/analysis"
)

// FileResult is the rewrite outcome for one source file.
type FileResult struct {
	// Path is the absolute path of the input file.
	Path string
	// Output is the instrumented source (gofmt-formatted); when Changed
	// is false it is the input bytes unmodified.
	Output  []byte
	Changed bool

	Reads  int // injected Task.Read annotations
	Writes int // injected Task.Write annotations
	Hoists int // temporaries introduced to keep side effects single-shot
	Skips  []Skip
}

// Result is the rewrite outcome for one package.
type Result struct {
	Pkg   *analysis.Package
	Files []FileResult
}

// Changed reports whether any file in the package was rewritten.
func (res *Result) Changed() bool {
	for _, f := range res.Files {
		if f.Changed {
			return true
		}
	}
	return false
}

// Totals sums the per-file injection counts.
func (res *Result) Totals() (reads, writes, hoists, skips int) {
	for _, f := range res.Files {
		reads += f.Reads
		writes += f.Writes
		hoists += f.Hoists
		skips += len(f.Skips)
	}
	return
}

// Package instruments every file of a loaded, type-checked package and
// returns the rewritten sources. The input files on disk are not
// touched. Re-instrumenting an already-instrumented package is a no-op:
// function bodies carrying the //sfinstr marker are skipped whole.
func Package(p *analysis.Package) (*Result, error) {
	if len(p.TypeErrors) > 0 {
		return nil, fmt.Errorf("instr: package %s has type errors: %v", p.Path, p.TypeErrors[0])
	}
	res := &Result{Pkg: p}
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil {
			return nil, fmt.Errorf("instr: no file position information for %s", p.Path)
		}
		src, err := os.ReadFile(tf.Name())
		if err != nil {
			return nil, fmt.Errorf("instr: %w", err)
		}
		if tf.Size() != len(src) {
			return nil, fmt.Errorf("instr: %s changed on disk since it was parsed", tf.Name())
		}
		r := rewriteFile(p, f, src)
		fr := FileResult{
			Path:   tf.Name(),
			Output: src,
			Reads:  r.reads,
			Writes: r.writes,
			Hoists: r.hoists,
			Skips:  r.skips,
		}
		if !r.es.empty() {
			out, err := r.es.apply(src)
			if err != nil {
				return nil, fmt.Errorf("instr: %s: %w", tf.Name(), err)
			}
			formatted, err := format.Source(out)
			if err != nil {
				return nil, fmt.Errorf("instr: %s: rewrite produced unparsable source: %w", tf.Name(), err)
			}
			fr.Output = formatted
			fr.Changed = true
		}
		res.Files = append(res.Files, fr)
	}
	return res, nil
}

// Packages instruments several packages.
func Packages(pkgs []*analysis.Package) ([]*Result, error) {
	var out []*Result
	for _, p := range pkgs {
		res, err := Package(p)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Overwrite writes each changed file of res back to its source path.
func Overwrite(res *Result) error {
	for _, f := range res.Files {
		if !f.Changed {
			continue
		}
		if err := os.WriteFile(f.Path, f.Output, 0o644); err != nil {
			return fmt.Errorf("instr: %w", err)
		}
	}
	return nil
}

// Stage materializes instrumented packages as a standalone Go module
// under outDir: each package's files land at their module-relative
// location, and a generated go.mod requires the source module through a
// local replace directive, so the staged tree builds and runs offline
// against the working copy:
//
//	outDir/
//	  go.mod                  module sfinstr.out; replace sforder => <moduleRoot>
//	  examples/badfutures/    instrumented sources
//
// Staged packages may only import the source module's public API — the
// staged module is a different module, so `internal/...` paths are off
// limits to it, as they would be to any external consumer.
func Stage(results []*Result, moduleRoot, modPath, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("instr: %w", err)
	}
	absRoot, err := filepath.Abs(moduleRoot)
	if err != nil {
		return fmt.Errorf("instr: %w", err)
	}
	gomod := fmt.Sprintf("module sfinstr.out\n\ngo 1.22\n\nrequire %s v0.0.0\n\nreplace %s => %s\n",
		modPath, modPath, absRoot)
	if err := os.WriteFile(filepath.Join(outDir, "go.mod"), []byte(gomod), 0o644); err != nil {
		return fmt.Errorf("instr: %w", err)
	}
	for _, res := range results {
		rel, err := filepath.Rel(absRoot, res.Pkg.Dir)
		if err != nil || rel == ".." || filepath.IsAbs(rel) || (len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)) {
			return fmt.Errorf("instr: package %s is outside module root %s", res.Pkg.Dir, absRoot)
		}
		dest := filepath.Join(outDir, rel)
		if err := os.MkdirAll(dest, 0o755); err != nil {
			return fmt.Errorf("instr: %w", err)
		}
		for _, f := range res.Files {
			if err := os.WriteFile(filepath.Join(dest, filepath.Base(f.Path)), f.Output, 0o644); err != nil {
				return fmt.Errorf("instr: %w", err)
			}
		}
	}
	return nil
}

// Package instr rewrites structured-futures Go source to inject
// Task.Read/Task.Write shadow annotations, turning any program written
// against the sforder API into a determinacy-race-detection workload.
// It shares the loader, the call classifier, the strand-locality
// pre-pass, and the attribution rules with internal/analysis: sfvet
// warns about what this package cannot instrument (SF005), and this
// package injects exactly the operations sfvet's model calls shared.
//
// The rewriter works on source bytes, not on a reprinted AST: each
// injection is a textual insert or replace at a token offset, the edits
// are spliced into the original file, and the result goes through
// go/format. This keeps every user comment, build constraint, and
// formatting choice outside the touched lines intact, and makes the
// output gofmt-stable by construction.
package instr

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// edit is one textual change to a file: the half-open byte range
// [start, end) of the original source is replaced by text. start == end
// is a pure insertion.
type edit struct {
	start, end int
	text       string
}

// editSet accumulates edits against one file and applies them in one
// pass. Overlapping replacements are a bug in the rewriter; the apply
// step rejects them rather than emitting scrambled source.
type editSet struct {
	file  *token.File
	edits []edit
}

func newEditSet(fset *token.FileSet, f *ast.File) *editSet {
	return &editSet{file: fset.File(f.Pos())}
}

// offset converts a token.Pos in this file to a byte offset.
func (es *editSet) offset(p token.Pos) int { return es.file.Offset(p) }

// insert adds text at pos without consuming any source.
func (es *editSet) insert(pos token.Pos, text string) {
	o := es.offset(pos)
	es.edits = append(es.edits, edit{start: o, end: o, text: text})
}

// replace substitutes the source range [pos, end) with text.
func (es *editSet) replace(pos, end token.Pos, text string) {
	es.edits = append(es.edits, edit{start: es.offset(pos), end: es.offset(end), text: text})
}

// empty reports whether no edits were recorded.
func (es *editSet) empty() bool { return len(es.edits) == 0 }

// apply splices the edits into src. Edits at the same offset keep their
// recording order (stable sort), so a statement's annotations appear in
// the order the rewriter emitted them.
func (es *editSet) apply(src []byte) ([]byte, error) {
	edits := make([]edit, len(es.edits))
	copy(edits, es.edits)
	sort.SliceStable(edits, func(i, j int) bool {
		if edits[i].start != edits[j].start {
			return edits[i].start < edits[j].start
		}
		return edits[i].end < edits[j].end
	})
	var out []byte
	last := 0
	for _, e := range edits {
		if e.start < last {
			return nil, fmt.Errorf("instr: overlapping edits at byte %d (previous edit ends at %d)", e.start, last)
		}
		if e.start > len(src) || e.end > len(src) {
			return nil, fmt.Errorf("instr: edit range %d:%d beyond source of %d bytes", e.start, e.end, len(src))
		}
		out = append(out, src[last:e.start]...)
		out = append(out, e.text...)
		last = e.end
	}
	out = append(out, src[last:]...)
	return out, nil
}

// renderExpr returns the source text of e with any replacement edits
// that fall inside e's range applied — after a hoist rewrote a call to
// a temporary, annotations mentioning the surrounding expression must
// mention the temporary too.
func (es *editSet) renderExpr(src []byte, e ast.Expr) string {
	start, end := es.offset(e.Pos()), es.offset(e.End())
	var inner []edit
	for _, ed := range es.edits {
		if ed.start >= start && ed.end <= end && ed.start != ed.end {
			inner = append(inner, ed)
		}
	}
	sort.SliceStable(inner, func(i, j int) bool { return inner[i].start < inner[j].start })
	var out []byte
	last := start
	for _, ed := range inner {
		if ed.start < last {
			continue
		}
		out = append(out, src[last:ed.start]...)
		out = append(out, ed.text...)
		last = ed.end
	}
	out = append(out, src[last:end]...)
	return string(out)
}

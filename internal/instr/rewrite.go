package instr

// The per-file rewriter. For every function scope that has a *Task in
// scope it collects the statement's shared memory operations, decides
// for each one whether `&expr` is a legal shadow address (the
// attribution rules shared with sfvet's SF005), whether the operation
// can race at all (the strand-locality pre-pass), and where the
// annotation must go relative to strand-advancing calls in the same
// statement, then records textual edits:
//
//	x = compute(x)
//
// becomes
//
//	t.Read(sforder.ShadowAddr(&x))  //sfinstr
//	t.Write(sforder.ShadowAddr(&x)) //sfinstr
//	x = compute(x)
//
// Placement invariant: an annotation executes on the same strand as the
// operation it describes. Within one statement every operation before
// the first Get/Create/Spawn/Sync call runs on the pre-advance strand
// (annotated before the statement) and every operation after the last
// runs on the post-advance strand (annotated after it); operations
// between two advances in one statement are skipped and recorded.
// Task.Read/Task.Write resolve the current strand at call time, so
// before/after placement is exact, not approximate.
//
// Operations the rewriter does not annotate are dropped in one of two
// ways, mirroring sfvet: silently when the skip cannot lose a race
// (constants, rvalue temporaries, string bytes, provably strand-local
// operations, access-path header reads), and with a Skip record when it
// can (map elements, unsafe.Pointer, interface unboxing, reflect,
// loop conditions, goroutine bodies, impure paths that cannot be
// hoisted). cmd/sfinstr -v prints the records; sfvet's SF005 warns
// about the statically detectable subset.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sforder/internal/analysis"
)

// marker tags every injected line. A function body containing it is
// treated as already instrumented and skipped whole, which makes
// re-instrumentation a no-op.
const marker = "//sfinstr"

// taskTmpName names a Task parameter the rewriter had to introduce
// (the source said `func(*sforder.Task) any` or `func(_ *sforder.Task)`).
const taskTmpName = "__sft"

// Skip records one shared memory operation the rewriter chose not to
// instrument, and why. Skips are reported, not fatal: a skipped
// operation means the detector stays blind to races through it, exactly
// like un-annotated code today.
type Skip struct {
	Pos    token.Position
	Expr   string
	Reason string
}

func (s Skip) String() string {
	if s.Expr == "" {
		return fmt.Sprintf("%s: %s", s.Pos, s.Reason)
	}
	return fmt.Sprintf("%s: %s: %s", s.Pos, s.Expr, s.Reason)
}

// scope is one function body being rewritten: the receiver expression
// for injected annotations and a commit hook that materializes any
// pending edits the annotations depend on (an added import, a renamed
// Task parameter). commit is idempotent.
type scope struct {
	task   string
	commit func()
}

func (sc scope) commitAll() {
	if sc.commit != nil {
		sc.commit()
	}
}

type fileRewriter struct {
	pkg  *analysis.Package
	file *ast.File
	src  []byte
	es   *editSet
	loc  *analysis.Locality

	qual       string // qualifier for ShadowAddr ("" under a dot import)
	importSpec string // import to add on first annotation; "" when present
	imported   bool

	tmpN   int
	reads  int
	writes int
	hoists int
	skips  []Skip
}

func rewriteFile(pkg *analysis.Package, file *ast.File, src []byte) *fileRewriter {
	r := &fileRewriter{
		pkg:  pkg,
		file: file,
		src:  src,
		es:   newEditSet(pkg.Fset, file),
		loc:  analysis.ComputeLocality(pkg.Info, pkg.Types, file),
	}
	r.resolveQual()
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		task, commit := r.taskFromFields(fd.Type.Params)
		r.rewriteFunc(fd.Body, scope{task: task, commit: commit})
	}
	return r
}

// resolveQual picks the qualifier for ShadowAddr from the file's
// imports, or schedules an import to be added if the root package is
// not imported under a usable name.
func (r *fileRewriter) resolveQual() {
	for _, imp := range r.file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "sforder" {
			continue
		}
		name := "sforder"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch name {
		case "_":
			continue // side-effect import; add a named one
		case ".":
			r.qual = ""
			return
		default:
			r.qual = name
			return
		}
	}
	r.qual = "__sf"
	r.importSpec = `__sf "sforder"`
}

// commitImport adds the scheduled sforder import, once, on the first
// committed annotation.
func (r *fileRewriter) commitImport() {
	if r.importSpec == "" || r.imported {
		return
	}
	r.imported = true
	for _, d := range r.file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			r.es.insert(gd.Lparen+1, "\n"+r.importSpec+"\n")
		} else {
			r.es.insert(gd.End(), "\nimport "+r.importSpec)
		}
		return
	}
	r.es.insert(r.file.Name.End(), "\n\nimport "+r.importSpec)
}

// taskFromFields resolves the Task-typed parameter in params to a
// receiver name for annotations. When the parameter is unnamed or
// blank, the returned commit renames it to __sft (naming every other
// parameter in the list "_", as Go requires all-or-none naming); the
// rename is only applied if an annotation actually commits.
func (r *fileRewriter) taskFromFields(params *ast.FieldList) (string, func()) {
	if params == nil {
		return "", nil
	}
	var taskField *ast.Field
	for _, f := range params.List {
		if tv, ok := r.pkg.Info.Types[f.Type]; ok && analysis.IsTaskType(tv.Type) {
			taskField = f
			break
		}
	}
	if taskField == nil {
		return "", nil
	}
	if len(taskField.Names) > 0 {
		for _, nm := range taskField.Names {
			if nm.Name != "_" {
				return nm.Name, r.commitImport
			}
		}
		blank := taskField.Names[0]
		done := false
		return taskTmpName, func() {
			if done {
				return
			}
			done = true
			r.commitImport()
			r.es.replace(blank.Pos(), blank.End(), taskTmpName)
		}
	}
	// Unnamed parameters: name them all.
	done := false
	return taskTmpName, func() {
		if done {
			return
		}
		done = true
		r.commitImport()
		for _, f := range params.List {
			if f == taskField {
				r.es.insert(f.Type.Pos(), taskTmpName+" ")
			} else {
				r.es.insert(f.Type.Pos(), "_ ")
			}
		}
	}
}

// markerIn reports whether an injected-line marker comment lies within
// [lo, hi] — the body was instrumented by a previous run.
func (r *fileRewriter) markerIn(lo, hi token.Pos) bool {
	for _, cg := range r.file.Comments {
		for _, c := range cg.List {
			if c.Pos() >= lo && c.End() <= hi && strings.HasPrefix(c.Text, marker) {
				return true
			}
		}
	}
	return false
}

// handAnnotated reports whether body (nested literals included) already
// carries Task.Read/Task.Write calls. Mirroring SF003/SF005: the author
// is annotating by hand, and mixing machine annotations into a
// hand-annotated protocol would double-count some accesses and imply
// coverage of others.
func (r *fileRewriter) handAnnotated(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sc, ok := analysis.ClassifyCall(r.pkg.Info, call); ok && (sc.Kind == analysis.CallRead || sc.Kind == analysis.CallWrite) {
				found = true
			}
		}
		return true
	})
	return found
}

// litRole classifies how a function literal relates to the enclosing
// task scope.
type litRole int

const (
	litEscape  litRole = iota // stored, returned, or passed to an ordinary call
	litOwnTask                // closure argument of Create/Spawn: runs on its own task
	litInherit                // immediately invoked or deferred: runs on the enclosing task
	litGo                     // go statement: outside the task model entirely
)

// rewriteFunc instruments one function body and recurses into the
// function literals it contains, resolving each literal's task scope.
func (r *fileRewriter) rewriteFunc(body *ast.BlockStmt, sc scope) {
	if r.markerIn(body.Pos(), body.End()) {
		return // previously instrumented; idempotent no-op
	}
	if sc.task != "" && r.handAnnotated(body) {
		r.skip(body.Pos(), "", "function already carries hand annotations; left untouched")
		return
	}
	if sc.task != "" {
		r.stmtList(body.List, sc)
	}
	r.recurseLits(body, sc)
}

func (r *fileRewriter) recurseLits(body *ast.BlockStmt, sc scope) {
	roles := map[*ast.FuncLit]litRole{}
	ast.Inspect(body, func(n ast.Node) bool {
		setRole := func(lit *ast.FuncLit, role litRole) {
			if _, seen := roles[lit]; !seen {
				roles[lit] = role
			}
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				setRole(lit, litGo)
			}
		case *ast.DeferStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				setRole(lit, litInherit)
			}
		case *ast.CallExpr:
			if c, ok := analysis.ClassifyCall(r.pkg.Info, x); ok && c.Fn != nil {
				setRole(c.Fn, litOwnTask)
			} else if lit, ok := x.Fun.(*ast.FuncLit); ok {
				setRole(lit, litInherit)
			}
		}
		return true
	})
	// Visit direct literals only; each recursion handles its own nest.
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		switch roles[lit] {
		case litOwnTask:
			task, commit := r.taskFromFields(lit.Type.Params)
			r.rewriteFunc(lit.Body, scope{task: task, commit: commit})
		case litInherit:
			// Task.Read/Write resolve the current strand at call time,
			// so a literal running on the enclosing task can use the
			// captured task variable even if strands advanced since.
			r.rewriteFunc(lit.Body, sc)
		case litGo:
			if sc.task != "" && len(lit.Body.List) > 0 {
				r.skip(lit.Pos(), "", "goroutine body is outside the task model; not instrumented")
			}
			r.rewriteFunc(lit.Body, scope{})
		default: // litEscape
			task, commit := r.taskFromFields(lit.Type.Params)
			if task == "" && sc.task != "" && len(lit.Body.List) > 0 {
				r.skip(lit.Pos(), "", "function literal may run on another strand and has no Task parameter; not instrumented")
			}
			r.rewriteFunc(lit.Body, scope{task: task, commit: commit})
		}
		return false
	})
}

// ---- statement walk ----

func (r *fileRewriter) stmtList(list []ast.Stmt, sc scope) {
	for i, s := range list {
		// After-annotations go right before the next statement when
		// there is one (clean layout) and after the statement's own end
		// otherwise.
		afterPos, afterInline := s.End(), false
		if i+1 < len(list) {
			afterPos, afterInline = list[i+1].Pos(), true
		}
		r.stmt(s, sc, s.Pos(), true, afterPos, afterInline)
	}
}

// stmt dispatches one statement. anchor is where pre-statement
// annotations may be inserted; canBefore is false in positions where no
// legal insertion point exists (an else-if condition, a labeled loop).
func (r *fileRewriter) stmt(s ast.Stmt, sc scope, anchor token.Pos, canBefore bool, afterPos token.Pos, afterInline bool) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		r.stmtList(x.List, sc)
	case *ast.LabeledStmt:
		// Insert before the label so `break L`/`continue L` targets keep
		// their label. A goto that jumps to the label skips the
		// annotations; that loses coverage, never adds false races.
		r.stmt(x.Stmt, sc, anchor, canBefore, afterPos, afterInline)
	case *ast.IfStmt:
		if x.Init != nil {
			r.simple(x.Init, sc, anchor, canBefore, token.NoPos, false)
			r.condReads(x.Cond, sc, anchor, false, "condition follows an init statement in the same line; not instrumented")
		} else {
			r.condReads(x.Cond, sc, anchor, canBefore, "no legal insertion point before this condition")
		}
		r.stmtList(x.Body.List, sc)
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			r.stmtList(e.List, sc)
		case *ast.IfStmt:
			r.stmt(e, sc, e.Pos(), false, token.NoPos, false)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			r.simple(x.Init, sc, anchor, canBefore, token.NoPos, false)
		}
		r.loopCond(x, sc)
		if x.Post != nil {
			r.dropShared(x.Post, "loop post statement is evaluated every iteration; not instrumented")
		}
		r.stmtList(x.Body.List, sc)
	case *ast.RangeStmt:
		r.rangeStmt(x, sc, anchor, canBefore)
	case *ast.SwitchStmt:
		if x.Init != nil {
			r.simple(x.Init, sc, anchor, canBefore, token.NoPos, false)
			r.condReads(x.Tag, sc, token.NoPos, false, "switch tag follows an init statement; not instrumented")
		} else {
			r.condReads(x.Tag, sc, anchor, canBefore, "no legal insertion point before this switch")
		}
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				r.dropSharedExpr(e, "case expression is evaluated conditionally; not instrumented")
			}
			r.stmtList(cc.Body, sc)
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			r.simple(x.Init, sc, anchor, canBefore, token.NoPos, false)
		}
		if ta := typeSwitchAssert(x); ta != nil {
			ok := canBefore && x.Init == nil
			r.condReads(ta.X, sc, anchor, ok, "type-switch operand follows an init statement; not instrumented")
		}
		for _, c := range x.Body.List {
			r.stmtList(c.(*ast.CaseClause).Body, sc)
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			r.selectComm(cc.Comm, sc, anchor, canBefore)
			r.stmtList(cc.Body, sc)
		}
	case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt,
		*ast.IncDecStmt, *ast.ReturnStmt, *ast.SendStmt, *ast.DeclStmt:
		r.simple(s, sc, anchor, canBefore, afterPos, afterInline)
	}
}

func typeSwitchAssert(x *ast.TypeSwitchStmt) *ast.TypeAssertExpr {
	switch a := x.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			ta, _ := ast.Unparen(a.Rhs[0]).(*ast.TypeAssertExpr)
			return ta
		}
	case *ast.ExprStmt:
		ta, _ := ast.Unparen(a.X).(*ast.TypeAssertExpr)
		return ta
	}
	return nil
}

// rangeStmt: the range operand is evaluated once, so its reads are
// annotatable before the loop. Per-iteration element reads and
// re-assigned range variables have no single insertion point and are
// recorded as skips.
func (r *fileRewriter) rangeStmt(x *ast.RangeStmt, sc scope, anchor token.Pos, canBefore bool) {
	var reads []ast.Expr
	r.collectReads(x.X, &reads)
	r.emit(x.X, sc, place{anchor: anchor, canBefore: canBefore,
		beforeReason: "no legal insertion point before this range statement"}, reads, nil)

	if t := exprType(r.pkg.Info, x.X); t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer, *types.Map:
			if x.Value != nil && analysis.SharedOp(r.pkg.Info, r.loc, x.X) {
				r.skip(x.X.Pos(), r.exprText(x.X), "range element reads happen every iteration; not instrumented")
			}
		}
	}
	if x.Tok == token.ASSIGN {
		for _, v := range []ast.Expr{x.Key, x.Value} {
			if v == nil {
				continue
			}
			if r.filter(v, r.exprText(v)) {
				r.skip(v.Pos(), r.exprText(v), "range variable is re-assigned every iteration; not instrumented")
			}
		}
	}
	r.stmtList(x.Body.List, sc)
}

// selectComm: channel operands and send values of every case are
// evaluated once on select entry (in source order), so their reads are
// annotatable before the select. Received-value assignments happen only
// in the chosen case and are recorded as skips.
func (r *fileRewriter) selectComm(comm ast.Stmt, sc scope, anchor token.Pos, canBefore bool) {
	pl := place{anchor: anchor, canBefore: canBefore,
		beforeReason: "no legal insertion point before this select"}
	switch c := comm.(type) {
	case *ast.SendStmt:
		var reads []ast.Expr
		r.collectReads(c.Chan, &reads)
		r.collectReads(c.Value, &reads)
		r.emit(comm, sc, pl, reads, nil)
	case *ast.AssignStmt:
		var reads []ast.Expr
		for _, rh := range c.Rhs {
			if u, ok := ast.Unparen(rh).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				r.collectReads(u.X, &reads)
			}
		}
		r.emit(comm, sc, pl, reads, nil)
		if c.Tok == token.ASSIGN {
			for _, lh := range c.Lhs {
				if r.filter(lh, r.exprText(lh)) {
					r.skip(lh.Pos(), r.exprText(lh), "select receive target is written only in the chosen case; not instrumented")
				}
			}
		}
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			var reads []ast.Expr
			r.collectReads(u.X, &reads)
			r.emit(comm, sc, pl, reads, nil)
		}
	}
}

// condReads annotates the reads a condition-like expression makes. When
// ok is false there is no insertion point and shared attributable reads
// are recorded as skips with the given reason.
func (r *fileRewriter) condReads(e ast.Expr, sc scope, anchor token.Pos, ok bool, reason string) {
	if e == nil {
		return
	}
	var reads []ast.Expr
	r.collectReads(e, &reads)
	r.emit(e, sc, place{anchor: anchor, canBefore: ok, beforeReason: reason}, reads, nil)
}

// loopCond instruments the condition of a `for cond`/`for init; cond;
// post` loop. The header is re-evaluated every iteration, so a single
// annotation before the loop would under-report; instead the condition
// moves into the body as a guarded break —
//
//	for i := 0; ; i++ {
//		t.Read(sforder.ShadowAddr(&limit)) //sfinstr
//		if !(i < limit) {
//			break
//		} //sfinstr
//		...
//	}
//
// which preserves semantics exactly (`continue` still runs the post
// statement before the next evaluation) and gives every conditional
// read a legal per-iteration insertion point. Conditions that advance
// the strand cannot move — the advance count per iteration is part of
// the program being checked — and keep the skip behavior. Hoisting is
// disabled (place.noHoist): a hoist would rewrite a sub-range of the
// condition this method is about to delete from the header, and the
// two replacements would overlap.
func (r *fileRewriter) loopCond(x *ast.ForStmt, sc scope) {
	if x.Cond == nil {
		return
	}
	if len(r.advancingCalls(x.Cond)) > 0 {
		r.dropSharedExpr(x.Cond, "loop condition advances the strand; not instrumented")
		return
	}
	var reads []ast.Expr
	r.collectReads(x.Cond, &reads)
	bodyStart := x.Body.Lbrace + 1
	before := r.reads + r.writes
	r.emit(x.Cond, sc, place{anchor: bodyStart, canBefore: true, noHoist: true}, reads, nil)
	if r.reads+r.writes == before {
		return // nothing annotated: leave the header alone
	}
	// The annotations above were recorded at bodyStart first, so they
	// land ahead of the guard (same-offset edits keep recording order).
	cond := r.es.renderExpr(r.src, x.Cond)
	r.es.insert(bodyStart, fmt.Sprintf("if !(%s) {\nbreak\n} %s\n", cond, marker))
	r.es.replace(x.Cond.Pos(), x.Cond.End(), "")
}

// dropShared records skips for every shared attributable operation in a
// statement that has no insertion point at all.
func (r *fileRewriter) dropShared(s ast.Stmt, reason string) {
	reads, writes := r.stmtAccesses(s)
	for _, e := range append(reads, writes...) {
		if r.filter(e, r.exprText(e)) {
			r.skip(e.Pos(), r.exprText(e), reason)
		}
	}
}

func (r *fileRewriter) dropSharedExpr(e ast.Expr, reason string) {
	var reads []ast.Expr
	r.collectReads(e, &reads)
	for _, re := range reads {
		if r.filter(re, r.exprText(re)) {
			r.skip(re.Pos(), r.exprText(re), reason)
		}
	}
}

// ---- simple statements ----

// stmtAccesses collects the read and write accesses a simple statement
// makes, in evaluation-relevant source order.
func (r *fileRewriter) stmtAccesses(s ast.Stmt) (reads, writes []ast.Expr) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		for _, rh := range x.Rhs {
			r.collectReads(rh, &reads)
		}
		switch x.Tok {
		case token.DEFINE:
			// A := definition writes a variable no other strand has seen
			// yet — except re-assigned existing variables in a mixed
			// define.
			for _, lh := range x.Lhs {
				if id, ok := lh.(*ast.Ident); ok && r.pkg.Info.Defs[id] != nil {
					continue
				}
				writes = append(writes, lh)
				r.pathInteriorReads(lh, &reads)
			}
		case token.ASSIGN:
			for _, lh := range x.Lhs {
				writes = append(writes, lh)
				r.pathInteriorReads(lh, &reads)
			}
		default: // op-assign: x += e reads and writes x
			lh := x.Lhs[0]
			reads = append(reads, lh)
			r.pathInteriorReads(lh, &reads)
			writes = append(writes, lh)
		}
	case *ast.IncDecStmt:
		reads = append(reads, x.X)
		r.pathInteriorReads(x.X, &reads)
		writes = append(writes, x.X)
	case *ast.ExprStmt:
		r.collectReads(x.X, &reads)
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			r.collectReads(res, &reads)
		}
	case *ast.SendStmt:
		r.collectReads(x.Chan, &reads)
		r.collectReads(x.Value, &reads)
	case *ast.GoStmt:
		r.collectReads(x.Call, &reads)
	case *ast.DeferStmt:
		r.collectReads(x.Call, &reads)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						r.collectReads(v, &reads)
					}
				}
			}
		}
	}
	return reads, writes
}

func (r *fileRewriter) simple(s ast.Stmt, sc scope, anchor token.Pos, canBefore bool, afterPos token.Pos, afterInline bool) {
	// Parity with SF005: reflect-based mutations have no address to
	// take, in rewrite mode as in analysis mode.
	shallowInspect(s, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && analysis.IsReflectMutation(r.pkg.Info, call) {
			r.skip(call.Pos(), r.exprText(call), "reflect-based memory operation; not attributable")
		}
		return true
	})
	reads, writes := r.stmtAccesses(s)
	pl := place{
		anchor:       anchor,
		canBefore:    canBefore,
		beforeReason: "no legal insertion point before this statement",
		afterPos:     afterPos,
		afterInline:  afterInline,
	}
	if !allowAfter(s) {
		pl.afterPos = token.NoPos
	}
	r.emit(s, sc, pl, reads, writes)
}

// allowAfter reports whether an annotation may be appended after the
// statement: not when the statement transfers control away.
func allowAfter(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return false
	}
	return true
}

// ---- access collection ----

// collectReads appends every read access in e: each maximal access path
// (identifier / selector / index / dereference chain) plus the reads
// its interior makes (index expressions, non-path bases). Access-path
// headers are not separate reads — reading a[i] is attributed to the
// element, not also to a's slice header; see DESIGN for the asymmetry
// argument. Function literals are separate scopes and are not entered.
func (r *fileRewriter) collectReads(e ast.Expr, out *[]ast.Expr) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		r.collectReads(x.X, out)
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		*out = append(*out, e)
		r.pathInteriorReads(e, out)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// &path computes an address and reads nothing — but interior
			// index expressions still evaluate.
			r.pathInteriorReads(x.X, out)
		} else {
			r.collectReads(x.X, out)
		}
	case *ast.BinaryExpr:
		r.collectReads(x.X, out)
		r.collectReads(x.Y, out)
	case *ast.CallExpr:
		r.collectReads(x.Fun, out)
		for _, a := range x.Args {
			r.collectReads(a, out)
		}
	case *ast.IndexListExpr:
		r.collectReads(x.X, out)
	case *ast.TypeAssertExpr:
		r.collectReads(x.X, out)
	case *ast.SliceExpr:
		// Slicing reads the header (skipped as a base) and the bounds.
		r.pathInteriorReads(x.X, out)
		r.collectReads(x.Low, out)
		r.collectReads(x.High, out)
		r.collectReads(x.Max, out)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if !r.isFieldKey(kv.Key) {
					r.collectReads(kv.Key, out)
				}
				r.collectReads(kv.Value, out)
			} else {
				r.collectReads(el, out)
			}
		}
	}
}

// pathInteriorReads walks down an access path collecting the reads its
// interior makes without recording the path's own bases: index
// expressions, and full collection once the base stops being a path
// (a call result, a received value, ...).
func (r *fileRewriter) pathInteriorReads(e ast.Expr, out *[]ast.Expr) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			r.collectReads(x.Index, out)
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return
		default:
			r.collectReads(ast.Unparen(e), out)
			return
		}
	}
}

// isFieldKey reports whether a composite-literal key is a struct field
// name (not a value read) rather than a map/array key expression.
func (r *fileRewriter) isFieldKey(key ast.Expr) bool {
	id, ok := key.(*ast.Ident)
	if !ok {
		return false
	}
	switch obj := r.pkg.Info.Uses[id].(type) {
	case *types.Var:
		return obj.IsField()
	case nil:
		return true // unresolved key in a struct literal
	}
	return false
}

// ---- emission ----

// place says where annotations around one statement may go.
type place struct {
	anchor       token.Pos // insertion point for pre-statement annotations
	canBefore    bool
	beforeReason string
	afterPos     token.Pos // NoPos: post-statement placement impossible
	afterInline  bool      // afterPos is the next statement (text\n) vs the stmt end (\ntext\n)
	noHoist      bool      // hoisting is off: the statement text itself is about to be rewritten
}

type pending struct {
	e     ast.Expr
	write bool
	after bool
}

// filter decides whether e is an operation to annotate: a non-constant
// value, touching memory that may be visible to another strand, whose
// address attribution succeeds. Surfaced attribution failures (map
// elements, unsafe, interface unboxing) are recorded; everything else
// is dropped silently.
func (r *fileRewriter) filter(e ast.Expr, text string) bool {
	tv, ok := r.pkg.Info.Types[e]
	if !ok || tv.Value != nil || !tv.IsValue() {
		return false
	}
	if !analysis.SharedOp(r.pkg.Info, r.loc, e) {
		return false
	}
	attr := analysis.AttributeAddr(r.pkg.Info, e)
	switch {
	case attr == analysis.AttrOK:
		return true
	case attr.Surfaced():
		r.skip(e.Pos(), text, attr.String())
	}
	return false
}

// emit filters, places, hoists, deduplicates, and inserts the
// annotations for one statement (or condition expression) n.
func (r *fileRewriter) emit(n ast.Node, sc scope, pl place, readEs, writeEs []ast.Expr) {
	advs := r.advancingCalls(n)
	var pend []pending
	add := func(e ast.Expr, isWrite bool) {
		text := r.exprText(e)
		if !r.filter(e, text) {
			return
		}
		after := false
		if len(advs) > 0 {
			first, last := advs[0], advs[len(advs)-1]
			switch {
			case isWrite:
				// Assignment writes complete after the RHS, post-advance.
				after = true
			case e.End() <= first.End():
				// Evaluated before (or as an argument of) the first
				// advancing call: pre-advance strand.
			case e.Pos() >= last.End():
				after = true
			default:
				r.skip(e.Pos(), text, "evaluated between two strand advances in one statement; not instrumented")
				return
			}
		}
		if after && !pl.afterPos.IsValid() {
			r.skip(e.Pos(), text, "needs a post-advance annotation but the statement transfers control; not instrumented")
			return
		}
		if !after && !pl.canBefore {
			r.skip(e.Pos(), text, pl.beforeReason)
			return
		}
		pend = append(pend, pending{e: e, write: isWrite, after: after})
	}
	for _, e := range readEs {
		add(e, false)
	}
	for _, e := range writeEs {
		add(e, true)
	}
	if len(pend) == 0 {
		return
	}
	if imp := r.topImpure(n); len(imp) > 0 {
		pend = r.hoistOrDrop(sc, pl, pend, imp)
	}
	seen := map[string]bool{}
	for _, p := range pend {
		text := r.es.renderExpr(r.src, p.e)
		key := fmt.Sprintf("%v\x00%s", p.write, text)
		if seen[key] {
			continue
		}
		seen[key] = true
		r.annotate(sc, pl, p.after, p.write, text)
	}
}

// advancingCalls lists the strand-advancing API calls
// (Get/Create/Spawn/Sync) under n, shallowly, in source order.
func (r *fileRewriter) advancingCalls(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	shallowInspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if c, ok := analysis.ClassifyCall(r.pkg.Info, call); ok && c.Kind.Advances() {
				out = append(out, call)
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// topImpure lists the topmost side-effecting expressions (calls and
// channel receives) under n, outside function literals. Nested impure
// expressions move together with their host when hoisted.
func (r *fileRewriter) topImpure(n ast.Node) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			out = append(out, x)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				out = append(out, x)
				return false
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// hoistOrDrop handles annotated accesses whose rendered text would
// duplicate a side effect (`f().x` — evaluating the annotation's
// argument would call f again). Such an access survives only when the
// side effects can be hoisted into a temporary before the statement
// without reordering evaluation:
//
//	__sf0 := f() //sfinstr
//	t.Read(sforder.ShadowAddr(&__sf0.x)) //sfinstr
//	v := __sf0.x
//
// which requires that every side effect of the statement lies inside
// this one access path, that the access is the statement's first, and
// that each hoisted expression is single-valued and not a Task API
// call. Anything else is dropped with a record.
func (r *fileRewriter) hoistOrDrop(sc scope, pl place, pend []pending, stmtImp []ast.Expr) []pending {
	within := func(inner, outer ast.Expr) bool {
		return inner.Pos() >= outer.Pos() && inner.End() <= outer.End()
	}
	var keep []pending
	for _, p := range pend {
		var imp []ast.Expr
		for _, c := range stmtImp {
			if within(c, p.e) {
				imp = append(imp, c)
			}
		}
		if len(imp) == 0 {
			keep = append(keep, p)
			continue
		}
		ok := pl.canBefore && !pl.noHoist && !p.after && len(imp) == len(stmtImp)
		if ok {
			for _, q := range pend {
				if q.e != p.e && q.e.Pos() < p.e.Pos() {
					ok = false // hoisting would move the side effect ahead of q's read
					break
				}
			}
		}
		if ok {
			for _, c := range imp {
				if !r.hoistable(c) {
					ok = false
					break
				}
			}
		}
		if !ok {
			r.skip(p.e.Pos(), r.exprText(p.e), "access path has side effects that cannot be hoisted; not instrumented")
			continue
		}
		for _, c := range imp {
			tmp := fmt.Sprintf("__sf%d", r.tmpN)
			r.tmpN++
			sc.commitAll()
			r.es.insert(pl.anchor, fmt.Sprintf("%s := %s %s\n", tmp, r.exprText(c), marker))
			r.es.replace(c.Pos(), c.End(), tmp)
			r.hoists++
		}
		keep = append(keep, p)
	}
	return keep
}

// hoistable reports whether one side-effecting expression may be bound
// to a temporary: single-valued and not a structured-futures API call
// (moving a Get/Create/Spawn/Sync would move a strand advance).
func (r *fileRewriter) hoistable(e ast.Expr) bool {
	if call, ok := e.(*ast.CallExpr); ok {
		if _, isSF := analysis.ClassifyCall(r.pkg.Info, call); isSF {
			return false
		}
	}
	tv, ok := r.pkg.Info.Types[e]
	if !ok || !tv.IsValue() {
		return false
	}
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return false
	}
	return true
}

// annotate inserts one injected line.
func (r *fileRewriter) annotate(sc scope, pl place, after, write bool, text string) {
	sc.commitAll()
	r.commitImport()
	method := "Read"
	if write {
		method = "Write"
	}
	shadow := "ShadowAddr"
	if r.qual != "" {
		shadow = r.qual + ".ShadowAddr"
	}
	line := fmt.Sprintf("%s.%s(%s(&%s)) %s", sc.task, method, shadow, text, marker)
	switch {
	case !after:
		r.es.insert(pl.anchor, line+"\n")
	case pl.afterInline:
		r.es.insert(pl.afterPos, line+"\n")
	case r.lineEndsAt(pl.afterPos):
		// The statement ends its line: the annotation starts a fresh one
		// and the original newline closes it.
		r.es.insert(pl.afterPos, "\n"+line)
	default:
		// Something (a closing brace, another statement) follows on the
		// same line; it must not be swallowed by the marker comment.
		r.es.insert(pl.afterPos, "\n"+line+"\n")
	}
	if write {
		r.writes++
	} else {
		r.reads++
	}
}

// lineEndsAt reports whether only horizontal whitespace separates pos
// from the end of its source line.
func (r *fileRewriter) lineEndsAt(pos token.Pos) bool {
	for i := r.es.offset(pos); i < len(r.src); i++ {
		switch r.src[i] {
		case ' ', '\t', '\r':
		case '\n':
			return true
		default:
			return false
		}
	}
	return true
}

func (r *fileRewriter) skip(pos token.Pos, expr, reason string) {
	r.skips = append(r.skips, Skip{Pos: r.pkg.Fset.Position(pos), Expr: expr, Reason: reason})
}

func (r *fileRewriter) exprText(e ast.Expr) string {
	return string(r.src[r.es.offset(e.Pos()):r.es.offset(e.End())])
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// shallowInspect walks the subtree rooted at n without descending into
// function literals (their bodies are separate scopes).
func shallowInspect(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return visit(m)
	})
}

// Package forder implements F-Order, the state-of-the-art parallel race
// detector for programs with general (unrestricted) futures (Xu, Singer,
// Lee, PPoPP'20) — the baseline the paper compares SF-Order against.
//
// Because general futures admit arbitrary inter-task dependences, no
// single pseudo-SP-dag approximates the whole computation. F-Order
// instead keeps:
//
//   - per future task, a pair of order-maintenance lists maintaining the
//     series-parallel relations of that task's own SP sub-dag (the
//     WSP-Order strategy applied task-locally); and
//   - per strand v, a hash table mapping future-task IDs to the set of
//     maximal "future operation" strands of that task (create strands and
//     put strands) that reach v through at least one non-SP edge.
//
// A cross-task query u∈F ≺ v∈G then asks: does u SP-precede, within F,
// any recorded operation strand of F in v's table? Intra-task queries use
// F's own OM lists directly.
//
// The tables are shared between strands copy-on-write and merged at join
// strands, like SF-Order's gp — but they are genuine hash tables holding
// per-task operation antichains rather than one bit per future, which is
// exactly the space and time gap Figures 4 and 5 of the paper measure.
//
// The access history must retain all readers between consecutive writes
// (up to r per location): with general futures the leftmost/rightmost
// compression of §3.5 is unsound, so F-Order is always paired with
// detect.ReadersAll.
package forder

import (
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"sforder/internal/obsv"
	"sforder/internal/om"
	"sforder/internal/sched"
)

// opset maps a future-task ID to the positions (indices into that task's
// operation list) of operation strands reaching the owner through non-SP
// paths. Position lists are sorted and deduplicated. opsets are immutable
// once published; merging allocates.
type opset map[int][]int32

// node is the F-Order per-strand state.
type node struct {
	eng, heb *om.Item // position in the owning task's OM lists
	ops      opset    // shared copy-on-write
}

// futMeta is the F-Order per-future-task state.
type futMeta struct {
	engL, hebL *om.List

	mu  sync.Mutex
	ops []*sched.Strand // operation strands (creates, put) in record order
}

func (f *futMeta) appendOp(s *sched.Strand) int32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = append(f.ops, s)
	return int32(len(f.ops) - 1)
}

func (f *futMeta) op(i int32) *sched.Strand {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops[i]
}

// Reach is the F-Order reachability component; it implements
// sched.Tracer and detect.Reachability.
type Reach struct {
	queries atomic.Uint64
	merges  atomic.Uint64
	strands atomic.Uint64
	tblMem  atomic.Int64
	omLists struct {
		sync.Mutex
		all []*om.List
	}
}

// NewReach returns an empty F-Order reachability component.
func NewReach() *Reach { return &Reach{} }

func nodeOf(s *sched.Strand) *node        { return s.Det.(*node) }
func metaOf(f *sched.FutureTask) *futMeta { return f.Det.(*futMeta) }

func (r *Reach) newTaskMeta(f *sched.FutureTask) *futMeta {
	m := &futMeta{engL: om.NewList(), hebL: om.NewList()}
	f.Det = m
	r.omLists.Lock()
	r.omLists.all = append(r.omLists.all, m.engL, m.hebL)
	r.omLists.Unlock()
	return m
}

// OnRoot implements sched.Tracer.
func (r *Reach) OnRoot(root *sched.Strand) {
	m := r.newTaskMeta(root.Fut)
	r.strands.Add(1)
	root.Det = &node{eng: m.engL.InsertFirst(), heb: m.hebL.InsertFirst()}
}

// placeBranch mirrors the WSP-Order placement inside one task's lists.
// first may be nil (create events place only the continuation and the
// placeholder in the creating task's lists).
func (r *Reach) placeBranch(m *futMeta, u, child, cont, placeholder *sched.Strand) {
	un := nodeOf(u)
	n := 1
	if child != nil {
		n++
	}
	if placeholder != nil {
		n++
	}
	r.strands.Add(uint64(n))
	eng := m.engL.InsertAfterN(un.eng, n)
	heb := m.hebL.InsertAfterN(un.heb, n)
	i := 0
	if child != nil {
		// English: child before continuation; Hebrew: after.
		child.Det = &node{eng: eng[0], heb: heb[1], ops: un.ops}
		cont.Det = &node{eng: eng[1], heb: heb[0], ops: un.ops}
		i = 2
	} else {
		cont.Det = &node{eng: eng[0], heb: heb[0], ops: un.ops}
		i = 1
	}
	if placeholder != nil {
		placeholder.Det = &node{eng: eng[i], heb: heb[i]}
	}
}

// OnSpawn implements sched.Tracer.
func (r *Reach) OnSpawn(u, child, cont, placeholder *sched.Strand) {
	r.placeBranch(metaOf(u.Fut), u, child, cont, placeholder)
}

// OnCreate implements sched.Tracer: the continuation stays in the
// creating task's lists; the new task gets fresh lists seeded with its
// first strand; and the first strand's table gains the create operation.
func (r *Reach) OnCreate(u, first, cont, placeholder *sched.Strand, f *sched.FutureTask) {
	creator := metaOf(u.Fut)
	r.placeBranch(creator, u, nil, cont, placeholder)

	m := r.newTaskMeta(f)
	r.strands.Add(1)
	fn := &node{eng: m.engL.InsertFirst(), heb: m.hebL.InsertFirst()}
	pos := creator.appendOp(u)
	fn.ops = r.extend(nodeOf(u).ops, u.Fut.ID, pos, creator)
	first.Det = fn
}

// OnSync implements sched.Tracer.
func (r *Reach) OnSync(k, s *sched.Strand, childSinks []*sched.Strand) {
	sn := nodeOf(s)
	acc := nodeOf(k).ops
	for _, c := range childSinks {
		acc = r.merge(acc, nodeOf(c).ops)
	}
	sn.ops = acc
}

// OnReturn implements sched.Tracer (the join happens at OnSync).
func (r *Reach) OnReturn(sink *sched.Strand) {}

// OnPut implements sched.Tracer: the put strand becomes an operation of
// its task (its get edge is the task's only non-SP out-edge).
func (r *Reach) OnPut(sink *sched.Strand, f *sched.FutureTask) {}

// OnGet implements sched.Tracer: the get strand continues u within u's
// task and absorbs the gotten task's table plus its put operation (which
// dominates every operation of that task).
func (r *Reach) OnGet(u, g *sched.Strand, f *sched.FutureTask) {
	m := metaOf(u.Fut)
	un := nodeOf(u)
	r.strands.Add(1)
	gn := &node{eng: m.engL.InsertAfter(un.eng), heb: m.hebL.InsertAfter(un.heb)}
	last := f.Last()
	gotten := metaOf(f)
	pos := gotten.appendOp(last)
	withPut := r.extend(nodeOf(last).ops, f.ID, pos, gotten)
	gn.ops = r.merge(un.ops, withPut)
	g.Det = gn
}

// extend returns ops ∪ {(fut, pos)} as a fresh table, pruning positions
// of fut dominated by the new operation (entries that SP-precede it).
func (r *Reach) extend(ops opset, fut int, pos int32, m *futMeta) opset {
	out := make(opset, len(ops)+1)
	for k, v := range ops {
		out[k] = v
	}
	opStrand := m.op(pos)
	var kept []int32
	for _, p := range out[fut] {
		if !r.spPrecedesOp(m, m.op(p), opStrand) {
			kept = append(kept, p)
		}
	}
	kept = append(kept, pos)
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	out[fut] = kept
	r.noteAlloc(out)
	return out
}

// merge unions two tables copy-on-write: when one side subsumes the
// other (same or superset position sets), the subsuming pointer is
// shared; otherwise a fresh table is allocated.
func (r *Reach) merge(a, b opset) opset {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case subsumes(a, b):
		return a
	case subsumes(b, a):
		return b
	}
	out := make(opset, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = unionSorted(out[k], v)
	}
	r.noteAlloc(out)
	return out
}

func (r *Reach) noteAlloc(t opset) {
	r.merges.Add(1)
	bytes := 48
	for _, v := range t {
		bytes += 16 + 24 + 4*len(v)
	}
	r.tblMem.Add(int64(bytes))
}

func subsumes(a, b opset) bool {
	for k, bv := range b {
		av, ok := a[k]
		if !ok {
			return false
		}
		i := 0
		for _, p := range bv {
			for i < len(av) && av[i] < p {
				i++
			}
			if i >= len(av) || av[i] != p {
				return false
			}
		}
	}
	return true
}

func unionSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// spPrecedesOp reports u ⪯SP x within one task.
func (r *Reach) spPrecedesOp(m *futMeta, u, x *sched.Strand) bool {
	if u == x {
		return true
	}
	un, xn := nodeOf(u), nodeOf(x)
	return m.engL.Precedes(un.eng, xn.eng) && m.hebL.Precedes(un.heb, xn.heb)
}

// Precedes implements detect.Reachability for general futures.
func (r *Reach) Precedes(u, v *sched.Strand) bool {
	r.queries.Add(1)
	if u == v {
		return true
	}
	if u.Fut == v.Fut {
		m := metaOf(u.Fut)
		un, vn := nodeOf(u), nodeOf(v)
		if m.engL.Precedes(un.eng, vn.eng) && m.hebL.Precedes(un.heb, vn.heb) {
			return true
		}
		// General futures admit same-task paths that detour through
		// other tasks (no SP path); fall through to the table check.
		// (With structured futures this never fires — Lemma 3.3.)
	}
	positions := nodeOf(v).ops[u.Fut.ID]
	if len(positions) == 0 {
		return false
	}
	m := metaOf(u.Fut)
	// Scan from the highest recorded operation down: with serially
	// ordered operations (the common case) the first test decides.
	for i := len(positions) - 1; i >= 0; i-- {
		if r.spPrecedesOp(m, u, m.op(positions[i])) {
			return true
		}
	}
	return false
}

// Queries returns the number of Precedes calls served.
func (r *Reach) Queries() uint64 { return r.queries.Load() }

// TableAllocs returns how many operation tables were allocated.
func (r *Reach) TableAllocs() uint64 { return r.merges.Load() }

// nodeSize is the real per-strand record size, derived so Figure 5's
// F-Order column stays honest as the struct evolves.
var nodeSize = int(unsafe.Sizeof(node{}))

// lists returns a snapshot of every per-task OM list.
func (r *Reach) lists() []*om.List {
	r.omLists.Lock()
	defer r.omLists.Unlock()
	return append([]*om.List(nil), r.omLists.all...)
}

// MemBytes estimates the reachability component's footprint: every
// per-task OM list pair, the per-strand node records, and all allocated
// hash tables (Figure 5's F-Order column).
func (r *Reach) MemBytes() int {
	total := int(r.strands.Load())*nodeSize + int(r.tblMem.Load())
	for _, l := range r.lists() {
		total += l.MemBytes()
	}
	return total
}

// RegisterStats publishes the F-Order counters (reach.*) and the
// maintenance counters of the per-task OM lists, aggregated across all
// tasks (om.*), on reg.
func (r *Reach) RegisterStats(reg *obsv.Registry) {
	reg.RegisterFunc("reach.queries", func() int64 { return int64(r.queries.Load()) })
	reg.RegisterFunc("reach.table_allocs", func() int64 { return int64(r.merges.Load()) })
	reg.RegisterFunc("reach.strands", func() int64 { return int64(r.strands.Load()) })
	reg.RegisterFunc("reach.table_mem_bytes", func() int64 { return r.tblMem.Load() })
	reg.RegisterFunc("reach.mem_bytes", func() int64 { return int64(r.MemBytes()) })
	reg.RegisterFunc("om.lists", func() int64 { return int64(len(r.lists())) })
	sum := func(pick func(splits, relabels, renumbers int) int) func() int64 {
		return func() int64 {
			total := 0
			for _, l := range r.lists() {
				total += pick(l.Stats())
			}
			return int64(total)
		}
	}
	reg.RegisterFunc("om.splits", sum(func(s, _, _ int) int { return s }))
	reg.RegisterFunc("om.relabels", sum(func(_, rl, _ int) int { return rl }))
	reg.RegisterFunc("om.renumbers", sum(func(_, _, rn int) int { return rn }))
	reg.RegisterFunc("om.escalations", func() int64 {
		var total int64
		for _, l := range r.lists() {
			total += l.Escalations()
		}
		return total
	})
}

var _ sched.Tracer = (*Reach)(nil)

package forder_test

import (
	"fmt"
	"testing"

	"sforder/internal/dag"
	"sforder/internal/detect"
	"sforder/internal/forder"
	"sforder/internal/oracle"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

func runWithReach(t *testing.T, workers int, serial bool, main func(*sched.Task)) (*forder.Reach, *dag.Recorder) {
	t.Helper()
	r := forder.NewReach()
	rec := dag.NewRecorder()
	_, err := sched.Run(sched.Options{
		Serial:  serial,
		Workers: workers,
		Tracer:  sched.MultiTracer{r, rec},
	}, main)
	if err != nil {
		t.Fatal(err)
	}
	return r, rec
}

func crossValidate(t *testing.T, name string, r *forder.Reach, rec *dag.Recorder) {
	t.Helper()
	cl := dag.NewClosure(rec.G)
	strands := rec.Strands()
	for _, u := range strands {
		for _, v := range strands {
			if u == v {
				continue
			}
			want := cl.Reachable(rec.NodeOf(u), rec.NodeOf(v))
			if got := r.Precedes(u, v); got != want {
				t.Fatalf("%s: Precedes(%v, %v) = %v, oracle says %v\n%s",
					name, u, v, got, want, rec.G.DOT())
			}
		}
	}
}

func TestBasicFutureRelations(t *testing.T) {
	var inFut, beforeGet, afterGet *sched.Strand
	r, rec := runWithReach(t, 0, true, func(t *sched.Task) {
		h := t.Create(func(c *sched.Task) any { inFut = c.Strand(); return nil })
		beforeGet = t.Strand()
		t.Get(h)
		afterGet = t.Strand()
	})
	if r.Precedes(inFut, beforeGet) || r.Precedes(beforeGet, inFut) {
		t.Error("future body and pre-get continuation must be parallel")
	}
	if !r.Precedes(inFut, afterGet) {
		t.Error("future body must precede the post-get strand")
	}
	crossValidate(t, "future", r, rec)
}

func TestSpawnRelations(t *testing.T) {
	r, rec := runWithReach(t, 0, true, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) {
			c.Spawn(func(*sched.Task) {})
			c.Sync()
		})
		t.Spawn(func(*sched.Task) {})
		t.Sync()
	})
	crossValidate(t, "spawn", r, rec)
}

func TestOpChainThroughMultipleFutures(t *testing.T) {
	// u creates G1; G1 creates G2; root gets G1 then G2's handle is
	// gotten inside G1 — exercising put-operation domination.
	r, rec := runWithReach(t, 0, true, func(t *sched.Task) {
		h1 := t.Create(func(c *sched.Task) any {
			h2 := c.Create(func(*sched.Task) any { return 2 })
			return c.Get(h2).(int) + 1
		})
		if got := t.Get(h1).(int); got != 3 {
			panic(fmt.Sprintf("got %d", got))
		}
	})
	crossValidate(t, "chain", r, rec)
}

func TestRandomProgramsSerial(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r, rec := runWithReach(t, 0, true, p.Main())
		crossValidate(t, fmt.Sprintf("seed%d", seed), r, rec)
	}
}

func TestRandomProgramsParallel(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
		r, rec := runWithReach(t, 4, false, p.Main())
		crossValidate(t, fmt.Sprintf("par-seed%d", seed), r, rec)
	}
}

// multiChecker fans accesses to the history and the oracle.
type multiChecker []sched.AccessChecker

func (m multiChecker) Read(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Read(s, addr)
	}
}
func (m multiChecker) Write(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Write(s, addr)
	}
}

// TestFullDetectionMatchesOracle runs the complete F-Order detector
// (reach + all-readers history) against the oracle on random programs.
func TestFullDetectionMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 6})
		reach := forder.NewReach()
		hist := detect.NewHistory(detect.Options{Reach: reach})
		rec := dag.NewRecorder()
		log := oracle.NewLogger()
		_, err := sched.Run(sched.Options{
			Serial:  true,
			Tracer:  sched.MultiTracer{reach, rec},
			Checker: multiChecker{hist, log},
		}, p.Main())
		if err != nil {
			t.Fatal(err)
		}
		got, want := hist.RacyAddrs(), log.RacyAddrs(rec)
		if len(got) != len(want) {
			t.Fatalf("seed %d: detector %v, oracle %v", seed, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: detector %v, oracle %v", seed, got, want)
			}
		}
	}
}

func TestCountersAndMemory(t *testing.T) {
	r, _ := runWithReach(t, 0, true, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return nil })
		t.Get(h)
	})
	if r.MemBytes() <= 0 {
		t.Error("F-Order must account memory")
	}
	if r.TableAllocs() == 0 {
		t.Error("create+get must allocate operation tables")
	}
}

// TestMemoryExceedsSFOrderShape: on a future-heavy program, F-Order's
// reachability memory should exceed SF-Order's bitmap-based footprint —
// the qualitative content of Figure 5. (The quantitative comparison runs
// in the benchmark harness.)
func TestTableGrowthWithFutures(t *testing.T) {
	small, _ := runWithReach(t, 0, true, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return nil })
		t.Get(h)
	})
	big, _ := runWithReach(t, 0, true, func(t *sched.Task) {
		for i := 0; i < 64; i++ {
			h := t.Create(func(*sched.Task) any { return nil })
			t.Get(h)
		}
	})
	if big.MemBytes() <= small.MemBytes() {
		t.Error("table memory must grow with the number of futures")
	}
}

package forder_test

import (
	"testing"
	"testing/quick"

	"sforder/internal/dag"
	"sforder/internal/forder"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// TestQuickPrecedesMatchesOracle: arbitrary program shapes, exhaustive
// pairwise comparison against the transitive closure.
func TestQuickPrecedesMatchesOracle(t *testing.T) {
	f := func(seed int64, depth, ops uint8) bool {
		p := progen.New(progen.Config{
			Seed:     seed,
			MaxDepth: 1 + int(depth%4),
			MaxOps:   1 + int(ops%7),
		})
		r := forder.NewReach()
		rec := dag.NewRecorder()
		if _, err := sched.Run(sched.Options{Serial: true, Tracer: sched.MultiTracer{r, rec}}, p.Main()); err != nil {
			return false
		}
		cl := dag.NewClosure(rec.G)
		strands := rec.Strands()
		if len(strands) > 40 {
			strands = strands[:40]
		}
		for _, u := range strands {
			for _, v := range strands {
				if u == v {
					continue
				}
				if r.Precedes(u, v) != cl.Reachable(rec.NodeOf(u), rec.NodeOf(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOpTablesBoundedByFutures: every operation table holds at most one
// entry list per future task, and the per-task antichain can't exceed
// that task's operation count.
func TestOpTablesBoundedByFutures(t *testing.T) {
	p := progen.New(progen.Config{Seed: 11, MaxDepth: 5, MaxOps: 9})
	r := forder.NewReach()
	rec := dag.NewRecorder()
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: sched.MultiTracer{r, rec}}, p.Main()); err != nil {
		t.Fatal(err)
	}
	if r.TableAllocs() == 0 && rec.G.NumFutures() > 1 {
		t.Error("future-using program allocated no op tables")
	}
}

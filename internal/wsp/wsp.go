// Package wsp implements WSP-Order (Utterback, Agrawal, Fineman, Lee,
// SPAA'16), the asymptotically optimal parallel race detector for pure
// fork-join (series-parallel) programs that SF-Order builds on (paper
// §2): two order-maintenance lists holding the English and Hebrew orders
// of the SP dag, answering Precedes in amortized constant time with no
// other per-node state.
//
// It exists standalone for two reasons. First, it is the natural
// detector when a program uses no futures: SF-Order degenerates to
// exactly this plus (never-populated) gp/cp bookkeeping, and wsp skips
// that bookkeeping. Second, it documents the inheritance: internal/core
// is WSP-Order on the pseudo-SP-dag plus the future bitmaps, and the two
// packages' placement logic can be compared side by side.
//
// Programs containing Create/Get must not use this detector: it panics
// on the first future event rather than silently answering wrongly.
package wsp

import (
	"sync/atomic"
	"unsafe"

	"sforder/internal/obsv"
	"sforder/internal/om"
	"sforder/internal/sched"
)

// node is the per-strand state: just the two list positions.
type node struct {
	eng, heb *om.Item
}

// Reach is the WSP-Order reachability component for fork-join programs.
// It implements sched.Tracer and detect.Reachability.
type Reach struct {
	engL, hebL *om.List
	queries    atomic.Uint64
	strands    atomic.Uint64
}

// NewReach returns an empty WSP-Order component.
func NewReach() *Reach {
	return &Reach{engL: om.NewList(), hebL: om.NewList()}
}

func nodeOf(s *sched.Strand) *node { return s.Det.(*node) }

// OnRoot implements sched.Tracer.
func (r *Reach) OnRoot(root *sched.Strand) {
	r.strands.Add(1)
	root.Det = &node{eng: r.engL.InsertFirst(), heb: r.hebL.InsertFirst()}
}

// OnSpawn implements sched.Tracer: English order u, child, cont
// [, placeholder]; Hebrew order u, cont, child[, placeholder].
func (r *Reach) OnSpawn(u, child, cont, placeholder *sched.Strand) {
	un := nodeOf(u)
	n := 2
	if placeholder != nil {
		n = 3
	}
	r.strands.Add(uint64(n))
	eng := r.engL.InsertAfterN(un.eng, n)
	heb := r.hebL.InsertAfterN(un.heb, n)
	child.Det = &node{eng: eng[0], heb: heb[1]}
	cont.Det = &node{eng: eng[1], heb: heb[0]}
	if placeholder != nil {
		placeholder.Det = &node{eng: eng[2], heb: heb[2]}
	}
}

// OnSync implements sched.Tracer (the join strand was pre-placed).
func (r *Reach) OnSync(k, s *sched.Strand, childSinks []*sched.Strand) {}

// OnReturn implements sched.Tracer.
func (r *Reach) OnReturn(sink *sched.Strand) {}

// OnCreate implements sched.Tracer by rejecting futures.
func (r *Reach) OnCreate(u, first, cont, placeholder *sched.Strand, f *sched.FutureTask) {
	panic("wsp: WSP-Order handles fork-join programs only; use SF-Order for futures")
}

// OnPut implements sched.Tracer. The root computation is future task 0
// even in a pure fork-join program, so its put event is expected; any
// other future task would have been rejected at OnCreate.
func (r *Reach) OnPut(sink *sched.Strand, f *sched.FutureTask) {}

// OnGet implements sched.Tracer by rejecting futures.
func (r *Reach) OnGet(u, g *sched.Strand, f *sched.FutureTask) {
	panic("wsp: WSP-Order handles fork-join programs only; use SF-Order for futures")
}

// Precedes reports whether u precedes v in the SP dag: before in both
// total orders. Amortized O(1).
func (r *Reach) Precedes(u, v *sched.Strand) bool {
	r.queries.Add(1)
	if u == v {
		return true
	}
	un, vn := nodeOf(u), nodeOf(v)
	return r.engL.Precedes(un.eng, vn.eng) && r.hebL.Precedes(un.heb, vn.heb)
}

// LeftOf reports whether a is earlier in the English order, for the
// leftmost/rightmost reader policy (which for pure fork-join needs just
// one pair per location — Mellor-Crummey's classic bound).
func (r *Reach) LeftOf(a, b *sched.Strand) bool {
	return r.engL.Precedes(nodeOf(a).eng, nodeOf(b).eng)
}

// Queries returns the number of Precedes calls served.
func (r *Reach) Queries() uint64 { return r.queries.Load() }

// nodeSize is the real per-strand record size, derived so the memory
// estimate stays honest as the struct evolves.
var nodeSize = int(unsafe.Sizeof(node{}))

// MemBytes estimates the component's footprint.
func (r *Reach) MemBytes() int {
	return r.engL.MemBytes() + r.hebL.MemBytes() + int(r.strands.Load())*nodeSize
}

// RegisterStats publishes the WSP-Order counters (reach.*) and both OM
// lists' maintenance counters (om.english.*, om.hebrew.*) on reg.
func (r *Reach) RegisterStats(reg *obsv.Registry) {
	reg.RegisterFunc("reach.queries", func() int64 { return int64(r.queries.Load()) })
	reg.RegisterFunc("reach.strands", func() int64 { return int64(r.strands.Load()) })
	reg.RegisterFunc("reach.mem_bytes", func() int64 { return int64(r.MemBytes()) })
	r.engL.RegisterStats(reg, "om.english")
	r.hebL.RegisterStats(reg, "om.hebrew")
}

var _ sched.Tracer = (*Reach)(nil)

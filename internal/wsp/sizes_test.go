package wsp

import (
	"testing"
	"unsafe"
)

// TestAccountingSizes pins the per-strand record size to the real
// struct layout (unsafe.Sizeof-derived; 64-bit expectation pinned so
// growth fails loudly instead of skewing MemBytes).
func TestAccountingSizes(t *testing.T) {
	if nodeSize != int(unsafe.Sizeof(node{})) {
		t.Errorf("nodeSize %d != sizeof(node) %d", nodeSize, unsafe.Sizeof(node{}))
	}
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("expected value below is for 64-bit platforms")
	}
	if nodeSize != 16 {
		t.Errorf("node grew: %d bytes, expected 16", nodeSize)
	}
}

package wsp_test

import (
	"math/rand"
	"strings"
	"testing"

	"sforder/internal/dag"
	"sforder/internal/detect"
	"sforder/internal/oracle"
	"sforder/internal/sched"
	"sforder/internal/workload"
	"sforder/internal/wsp"
)

func runWithReach(t *testing.T, serial bool, main func(*sched.Task)) (*wsp.Reach, *dag.Recorder) {
	t.Helper()
	r := wsp.NewReach()
	rec := dag.NewRecorder()
	_, err := sched.Run(sched.Options{
		Serial:  serial,
		Workers: 4,
		Tracer:  sched.MultiTracer{r, rec},
	}, main)
	if err != nil {
		t.Fatal(err)
	}
	return r, rec
}

func crossValidate(t *testing.T, r *wsp.Reach, rec *dag.Recorder) {
	t.Helper()
	cl := dag.NewClosure(rec.G)
	strands := rec.Strands()
	for _, u := range strands {
		for _, v := range strands {
			if u == v {
				continue
			}
			want := cl.Reachable(rec.NodeOf(u), rec.NodeOf(v))
			if got := r.Precedes(u, v); got != want {
				t.Fatalf("Precedes(%v,%v)=%v, oracle %v", u, v, got, want)
			}
		}
	}
}

// genForkJoin builds a deterministic random pure fork-join program.
func genForkJoin(seed int64, depth int) func(*sched.Task) {
	type tree struct {
		children []*tree
		syncAt   []bool
	}
	rng := rand.New(rand.NewSource(seed))
	var gen func(d int) *tree
	gen = func(d int) *tree {
		n := &tree{}
		for i := 0; i < 1+rng.Intn(5); i++ {
			if d > 0 && rng.Intn(2) == 0 {
				n.children = append(n.children, gen(d-1))
				n.syncAt = append(n.syncAt, rng.Intn(3) == 0)
			}
		}
		return n
	}
	root := gen(depth)
	var runTree func(*sched.Task, *tree)
	runTree = func(t *sched.Task, n *tree) {
		for i, c := range n.children {
			c := c
			t.Spawn(func(ct *sched.Task) { runTree(ct, c) })
			if n.syncAt[i] {
				t.Sync()
			}
		}
		t.Sync()
	}
	return func(t *sched.Task) { runTree(t, root) }
}

func TestForkJoinAgainstOracleSerial(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r, rec := runWithReach(t, true, genForkJoin(seed, 4))
		crossValidate(t, r, rec)
	}
}

func TestForkJoinAgainstOracleParallel(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r, rec := runWithReach(t, false, genForkJoin(seed, 4))
		crossValidate(t, r, rec)
	}
}

func TestRejectsFutures(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "fork-join") {
			t.Fatalf("expected future rejection, got %v", r)
		}
	}()
	sched.Run(sched.Options{Serial: true, Tracer: wsp.NewReach()}, func(t *sched.Task) {
		t.Create(func(*sched.Task) any { return nil })
	})
}

// TestFullDetectionOnFib: the complete WSP detector on the fork-join
// fib workload reports nothing, and a seeded spawn race is caught.
func TestFullDetectionOnFib(t *testing.T) {
	reach := wsp.NewReach()
	hist := detect.NewHistory(detect.Options{Reach: reach, Policy: detect.ReadersLR, LeftOf: reach.LeftOf})
	run := workload.Fib(12).Make()
	if _, err := sched.Run(sched.Options{Workers: 3, Tracer: reach, Checker: hist}, run.Main); err != nil {
		t.Fatal(err)
	}
	if err := run.Verify(); err != nil {
		t.Fatal(err)
	}
	if hist.RaceCount() != 0 {
		t.Fatalf("fib raced: %v", hist.Races())
	}

	reach2 := wsp.NewReach()
	hist2 := detect.NewHistory(detect.Options{Reach: reach2})
	log := oracle.NewLogger()
	rec := dag.NewRecorder()
	_, err := sched.Run(sched.Options{
		Serial:  true,
		Tracer:  sched.MultiTracer{reach2, rec},
		Checker: multiChecker{hist2, log},
	}, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) { c.Write(9) })
		t.Write(9)
		t.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist2.RaceCount() == 0 {
		t.Fatal("seeded spawn race missed")
	}
	if got := log.RacyAddrs(rec); len(got) != 1 || got[0] != 9 {
		t.Fatalf("oracle disagrees: %v", got)
	}
}

type multiChecker []sched.AccessChecker

func (m multiChecker) Read(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Read(s, addr)
	}
}
func (m multiChecker) Write(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Write(s, addr)
	}
}

func TestCounters(t *testing.T) {
	r, _ := runWithReach(t, true, func(t *sched.Task) {
		t.Spawn(func(*sched.Task) {})
		t.Sync()
	})
	if r.MemBytes() <= 0 {
		t.Error("memory accounting broken")
	}
}

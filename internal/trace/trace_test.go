package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/obsv"
	"sforder/internal/progen"
	"sforder/internal/sched"
	"sforder/internal/trace"
)

// record runs a random program serially with the recorder attached as
// auxiliary tracer and standalone access checker, and returns the
// encoded capture plus the engine counts.
func record(t testing.TB, seed int64) ([]byte, sched.Counts) {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 7})
	counts, err := sched.Run(sched.Options{Serial: true, Aux: rec, Checker: rec}, p.Main())
	if err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("seed %d: close: %v", seed, err)
	}
	return buf.Bytes(), counts
}

// TestCaptureRoundTrip: a recorded run decodes to a capture whose
// structure mirrors the engine counts and whose every reference is
// introduced before use.
func TestCaptureRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		raw, counts := record(t, seed)
		c, err := trace.Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}
		if c.Strands != counts.Strands {
			t.Fatalf("seed %d: %d strands decoded, engine made %d", seed, c.Strands, counts.Strands)
		}
		if uint64(c.Futures) != counts.Futures {
			t.Fatalf("seed %d: %d futures decoded, engine made %d", seed, c.Futures, counts.Futures)
		}
		if c.Bytes != int64(len(raw)) {
			t.Fatalf("seed %d: %d bytes consumed, file has %d", seed, c.Bytes, len(raw))
		}
		if len(c.Events) == 0 || c.Events[0].Op != trace.OpRoot {
			t.Fatalf("seed %d: capture does not start with root", seed)
		}
		// Every strand named by an event or access block must have been
		// introduced by an earlier event — the invariant replay needs.
		introduced := map[uint64]bool{}
		intro := func(id uint64) { introduced[id] = true }
		need := func(id uint64) {
			if !introduced[id] {
				t.Fatalf("seed %d: strand %d referenced before introduction", seed, id)
			}
		}
		// Interleave events and blocks in file order. Load keeps the two
		// streams separately ordered; reconstruct the interleaving by
		// replaying the raw bytes is overkill — instead check the weaker
		// per-stream property events give us, then that block strands
		// exist at all. The strict interleaved check runs in the replay
		// package's tests, which re-decode with the engine.
		for _, ev := range c.Events {
			switch ev.Op {
			case trace.OpRoot:
				intro(ev.U)
			case trace.OpSpawn:
				need(ev.U)
				intro(ev.A)
				intro(ev.B)
				if ev.Placeholder > 0 {
					intro(ev.Placeholder - 1)
				}
			case trace.OpCreate:
				need(ev.U)
				intro(ev.A)
				intro(ev.B)
				if ev.Placeholder > 0 {
					intro(ev.Placeholder - 1)
				}
			case trace.OpSync:
				need(ev.U)
				intro(ev.A)
				for _, s := range ev.Sinks {
					need(s)
				}
			case trace.OpReturn, trace.OpPut:
				need(ev.U)
			case trace.OpGet:
				need(ev.U)
				intro(ev.A)
			}
		}
		for _, b := range c.Blocks {
			need(b.Strand)
			if len(b.Addrs) != len(b.Kinds) {
				t.Fatalf("seed %d: ragged access block", seed)
			}
		}
		if c.Entries == 0 && counts.Reads+counts.Writes > 0 {
			// Engine access counters are off without CountAccesses, so
			// only assert when they were counted. (They are not here;
			// keep the branch for documentation.)
			t.Fatalf("seed %d: accesses ran but none captured", seed)
		}
	}
}

// TestRecorderDedup: the standalone checker mode deduplicates by the
// StrandFilter rules — a strand touching one address many times
// contributes at most a write entry and at most a read entry.
func TestRecorderDedup(t *testing.T) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	_, err := sched.Run(sched.Options{Serial: true, Aux: rec, Checker: rec}, func(task *sched.Task) {
		for i := 0; i < 100; i++ {
			task.Read(7)
			task.Write(7)
			task.Read(9)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := trace.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Entries > 3 {
		t.Fatalf("300 accesses to 2 addrs captured as %d entries, want <= 3", c.Entries)
	}
	var writes int
	for _, b := range c.Blocks {
		for _, k := range b.Kinds {
			if k == detect.AccessWrite {
				writes++
			}
		}
	}
	if writes != 1 {
		t.Fatalf("%d write entries, want 1", writes)
	}
}

// TestTapRecording: attached as detect.Options.Tap, the recorder sees
// the deduped batch stream the history applies.
func TestTapRecording(t *testing.T) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	p := progen.New(progen.Config{Seed: 3, MaxDepth: 4, MaxOps: 7})
	reg := obsv.NewRegistry()
	rec.RegisterStats(reg)
	reach := core.NewReach()
	hist := detect.NewHistory(detect.Options{Reach: reach, FastPath: true, Tap: rec})
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: reach, Aux: rec, Checker: hist}, p.Main()); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := trace.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Entries == 0 {
		t.Fatal("tap recorded no accesses")
	}
	snap := reg.Snapshot()
	if snap["record.access_entries"] != int64(c.Entries) {
		t.Fatalf("record.access_entries gauge %d, capture has %d", snap["record.access_entries"], c.Entries)
	}
	if snap["record.bytes"] == 0 || snap["record.struct_events"] == 0 {
		t.Fatal("record.* gauges not populated")
	}
}

// TestLoadRejectsGarbage: malformed headers and bodies all error.
func TestLoadRejectsGarbage(t *testing.T) {
	raw, _ := record(t, 1)
	flip := func(i int, b byte) []byte {
		out := append([]byte(nil), raw...)
		out[i] = b
		return out
	}
	cases := map[string][]byte{
		"empty":        {},
		"not a trace":  []byte("definitely not an sftrace file"),
		"bad magic":    flip(0, 'X'),
		"bad bom":      flip(8, 0xFF),
		"bad version":  flip(12, 99),
		"unknown op":   flip(13, 0xEE),
		"short header": raw[:10],
	}
	for name, data := range cases {
		if _, err := trace.Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := trace.Load(strings.NewReader(string(raw))); err != nil {
		t.Fatalf("pristine capture rejected: %v", err)
	}
}

// TestLoadRejectsTruncation: every strict prefix of a valid capture is
// rejected — the trailer makes truncation detectable at any cut point.
func TestLoadRejectsTruncation(t *testing.T) {
	raw, _ := record(t, 2)
	for cut := 0; cut < len(raw); cut++ {
		if _, err := trace.Load(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(raw))
		}
	}
}

// FuzzCaptureRoundTrip fuzzes both directions: arbitrary bytes must
// never panic the loader, and a capture generated from the fuzz input
// (interpreted as a progen seed) must round-trip exactly.
func FuzzCaptureRoundTrip(f *testing.F) {
	valid, _ := record(f, 0)
	f.Add(valid)
	f.Add([]byte("sftrace\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Loader hardening: arbitrary input errors or decodes, never
		// panics or over-allocates.
		c, err := trace.Load(bytes.NewReader(data))
		if err == nil && c == nil {
			t.Fatal("nil capture without error")
		}
		// Round-trip: derive a seed from the input and record a real run.
		var seed int64
		for _, b := range data {
			seed = seed*131 + int64(b)
		}
		raw, counts := record(t, seed%1000)
		c2, err := trace.Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("recorded capture rejected: %v", err)
		}
		if c2.Strands != counts.Strands || uint64(c2.Futures) != counts.Futures {
			t.Fatalf("capture decodes %d strands/%d futures, engine made %d/%d",
				c2.Strands, c2.Futures, counts.Strands, counts.Futures)
		}
	})
}

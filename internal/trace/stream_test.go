package trace_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"sforder/internal/detect"
	"sforder/internal/sched"
	"sforder/internal/trace"
)

// TestStreamMatchesLoad: the incremental decoder yields exactly the
// items and totals Load produces, in the same order.
func TestStreamMatchesLoad(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		raw, _ := record(t, seed)
		c, err := trace.Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		st, err := trace.OpenStream(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var events []trace.Event
		var blocks []trace.AccessBlock
		for {
			ev, blk, err := st.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if ev != nil {
				events = append(events, *ev)
			} else {
				blocks = append(blocks, *blk)
			}
		}
		if len(events) != len(c.Events) || len(blocks) != len(c.Blocks) {
			t.Fatalf("seed %d: stream %d/%d items, load %d/%d", seed, len(events), len(blocks), len(c.Events), len(c.Blocks))
		}
		for i := range events {
			a, b := events[i], c.Events[i]
			sinksEq := len(a.Sinks) == len(b.Sinks)
			for j := 0; sinksEq && j < len(a.Sinks); j++ {
				sinksEq = a.Sinks[j] == b.Sinks[j]
			}
			if a.Op != b.Op || a.U != b.U || a.A != b.A || a.B != b.B ||
				a.Placeholder != b.Placeholder || a.Fut != b.Fut || a.FutParent != b.FutParent || !sinksEq {
				t.Fatalf("seed %d: event %d differs: %+v vs %+v", seed, i, a, b)
			}
		}
		for i := range blocks {
			a, b := blocks[i], c.Blocks[i]
			if a.Strand != b.Strand || len(a.Addrs) != len(b.Addrs) {
				t.Fatalf("seed %d: block %d differs", seed, i)
			}
			for j := range a.Addrs {
				if a.Addrs[j] != b.Addrs[j] || a.Kinds[j] != b.Kinds[j] {
					t.Fatalf("seed %d: block %d entry %d differs", seed, i, j)
				}
			}
		}
		if st.Strands() != c.Strands || st.Futures() != c.Futures ||
			st.Entries() != c.Entries || st.Bytes() != c.Bytes {
			t.Fatalf("seed %d: stream totals %d/%d/%d/%d, load %d/%d/%d/%d", seed,
				st.Strands(), st.Futures(), st.Entries(), st.Bytes(),
				c.Strands, c.Futures, c.Entries, c.Bytes)
		}
	}
}

// TestStreamRejectsTruncation: cutting a capture anywhere after the
// header makes Next error instead of returning io.EOF.
func TestStreamRejectsTruncation(t *testing.T) {
	raw, _ := record(t, 5)
	for _, cut := range []int{len(raw) - 1, len(raw) - 3, len(raw) / 2, 20} {
		st, err := trace.OpenStream(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue // cut inside the header: also fine
		}
		for {
			_, _, err = st.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Errorf("cut at %d: stream ended cleanly", cut)
		}
	}
}

// TestLoadRejectsBlockUnknownStrand is the hardening satellite: an
// access block naming a strand no structure event declared must fail at
// decode time — before the bogus id can size replay state — not load
// silently.
func TestLoadRejectsBlockUnknownStrand(t *testing.T) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	f0 := &sched.FutureTask{ID: 0}
	rec.OnRoot(&sched.Strand{ID: 0, Fut: f0})
	// A block for strand 900, which no structure event ever mentions.
	rec.TapAccesses(&sched.Strand{ID: 900, Fut: f0},
		[]uint64{1, 2}, []detect.AccessKind{detect.AccessRead, detect.AccessWrite})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := trace.Load(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("capture with an undeclared block strand loaded")
	}
	if !strings.Contains(err.Error(), "before any structure event") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestLoadBlockAfterIntroduction: the same block is fine once the
// strand has been declared — the validation keys on structure events,
// not on block order among themselves.
func TestLoadBlockAfterIntroduction(t *testing.T) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	f0 := &sched.FutureTask{ID: 0}
	root := &sched.Strand{ID: 0, Fut: f0}
	rec.OnRoot(root)
	rec.OnSpawn(root, &sched.Strand{ID: 1, Fut: f0}, &sched.Strand{ID: 2, Fut: f0}, &sched.Strand{ID: 3, Fut: f0})
	rec.TapAccesses(&sched.Strand{ID: 1, Fut: f0}, []uint64{7}, []detect.AccessKind{detect.AccessWrite})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := trace.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c.Strands != 4 || c.Entries != 1 {
		t.Fatalf("strands %d entries %d, want 4/1", c.Strands, c.Entries)
	}
}

// TestIndexRoundTrip: the path index of a genuine capture covers every
// strand, is topologically ordered, and agrees with the events on
// parentage and futures.
func TestIndexRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		raw, counts := record(t, seed)
		c, err := trace.Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		idx, err := c.Index()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if uint64(len(idx.Order)) != counts.Strands {
			t.Fatalf("seed %d: indexed %d strands, engine ran %d", seed, len(idx.Order), counts.Strands)
		}
		for j, id := range idx.Order {
			if idx.Pos[id] != int32(j) {
				t.Fatalf("seed %d: Pos[%d] = %d, want %d", seed, id, idx.Pos[id], j)
			}
			if p := idx.Parent[j]; p >= int32(j) {
				t.Fatalf("seed %d: strand at %d has parent at %d (not topological)", seed, j, p)
			} else if p < 0 && idx.Role[j] != trace.RoleRoot {
				t.Fatalf("seed %d: non-root strand at %d has no parent", seed, j)
			}
			if f := idx.Fut[j]; f < 0 || int(f) >= c.Futures {
				t.Fatalf("seed %d: strand at %d has future %d of %d", seed, j, f, c.Futures)
			}
		}
		if idx.Role[0] != trace.RoleRoot {
			t.Fatalf("seed %d: first introduction is %v, want root", seed, idx.Role[0])
		}
		for fid, parent := range idx.FutParent {
			if fid == 0 && parent != -1 {
				t.Fatalf("seed %d: root future has parent %d", seed, parent)
			}
			if fid > 0 && (parent < 0 || int(parent) >= c.Futures) {
				t.Fatalf("seed %d: future %d has parent %d of %d", seed, fid, parent, c.Futures)
			}
		}
	}
}

// TestIndexRejectsCorrupt: the index pass rejects the structural
// corruptions the serial rebuild rejects, plus the sync-names-unplaced-
// strand case (which the serial path could only hit as a panic).
func TestIndexRejectsCorrupt(t *testing.T) {
	f0 := &sched.FutureTask{ID: 0}
	s := func(id uint64) *sched.Strand { return &sched.Strand{ID: id, Fut: f0} }
	mk := func(drive func(*trace.Recorder)) *trace.Capture {
		var buf bytes.Buffer
		rec := trace.NewRecorder(&buf)
		drive(rec)
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		c, err := trace.Load(&buf)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		return c
	}
	cases := map[string]*trace.Capture{
		"no root": mk(func(r *trace.Recorder) {
			r.OnSpawn(s(0), s(1), s(2), nil)
		}),
		"unknown strand": mk(func(r *trace.Recorder) {
			r.OnRoot(s(0))
			r.OnSpawn(s(5), s(1), s(2), nil)
		}),
		"double introduction": mk(func(r *trace.Recorder) {
			r.OnRoot(s(0))
			r.OnSpawn(s(0), s(1), s(2), nil)
			r.OnSpawn(s(0), s(1), s(2), nil)
		}),
		"sync of unplaced strand": mk(func(r *trace.Recorder) {
			r.OnRoot(s(0))
			r.OnSpawn(s(0), s(1), s(2), nil)
			r.OnSync(s(2), s(9), []*sched.Strand{s(1)})
		}),
		"get before put": mk(func(r *trace.Recorder) {
			r.OnRoot(s(0))
			f1 := &sched.FutureTask{ID: 1, Parent: f0}
			r.OnCreate(s(0), &sched.Strand{ID: 1, Fut: f1}, s(2), s(3), f1)
			r.OnGet(s(2), s(4), f1)
		}),
	}
	for name, c := range cases {
		if _, err := c.Index(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Package trace implements the sftrace capture format: a recorded
// execution of a structured-futures program, sufficient to re-run race
// detection offline (internal/replay) without re-executing the program.
//
// A capture is two interleaved streams in one file:
//
//   - Structure events — the dag-construction events a sched.Tracer
//     observes (root/spawn/create/sync/return/put/get), with strand and
//     future IDs instead of pointers. Replay feeds these through a
//     reachability substrate to rebuild the SF-dag's precedence oracle.
//   - Access events — per-strand blocks of (addr, kind) pairs, tapped
//     from the detector's batched flush (detect.Options.Tap), so
//     recording costs one append per deduped (addr, kind) pair.
//
// The recorder serializes all events through one mutex, so the file
// order is a valid happens-before-consistent linearization of the run:
// the event introducing a strand precedes every event naming it, a
// strand's access blocks precede the event ending it (the tap fires
// inside sched's StrandClose hook, which runs before the strand-ending
// tracer event), and a future's put precedes its gets. Replay relies on
// exactly these properties and nothing stronger.
//
// # Wire format
//
// Everything after the fixed header is unsigned varints (encoding/binary
// Uvarint). The header is:
//
//	offset 0: 8-byte magic "sftrace\n"
//	offset 8: 4-byte byte-order marker 04 03 02 01 (0x01020304 little-
//	          endian) — fixed-width fields, if ever added, are little-
//	          endian, and a byte-swapped capture fails loudly here
//	then:     uvarint format version (currently 1)
//
// Events follow, each one op byte then op-specific uvarint fields; see
// the op constants. The stream must end with opEnd carrying the
// structure-event and access-entry counts, so a truncated capture is
// detected instead of silently decoding a prefix.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"sforder/internal/detect"
	"sforder/internal/obsv"
	"sforder/internal/sched"
)

// Version is the sftrace format version. Load rejects any other value,
// so a stale capture written by an incompatible build fails loudly.
// Bump it whenever the wire layout or its semantics change.
const Version = 1

var (
	magic    = [8]byte{'s', 'f', 't', 'r', 'a', 'c', 'e', '\n'}
	byteMark = [4]byte{0x04, 0x03, 0x02, 0x01} // 0x01020304 little-endian
)

// Op identifies one event kind in the capture stream.
type Op uint8

const (
	OpRoot   Op = iota // U = root strand (future 0)
	OpSpawn            // U, A = child, B = cont, Placeholder
	OpCreate           // U, A = first, B = cont, Placeholder, Fut, FutParent
	OpSync             // U = k, A = sync strand, Sinks
	OpReturn           // U = sink
	OpPut              // U = sink, Fut
	OpGet              // U, A = get strand, Fut
	opAccess           // strand, n, kind bits, n addrs — decoded to AccessBlock
	opEnd              // struct-event count, access-entry count
)

func (o Op) String() string {
	switch o {
	case OpRoot:
		return "root"
	case OpSpawn:
		return "spawn"
	case OpCreate:
		return "create"
	case OpSync:
		return "sync"
	case OpReturn:
		return "return"
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case opAccess:
		return "access"
	case opEnd:
		return "end"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Event is one decoded structure event. Field meaning depends on Op (see
// the op constants); unused fields are zero. Placeholder holds the join
// strand's ID plus one, with zero meaning none — strand 0 is the root
// and never a placeholder, but the +1 keeps the encoding uniform.
type Event struct {
	Op          Op
	U, A, B     uint64
	Placeholder uint64 // join strand ID + 1; 0 = none
	Fut         int
	FutParent   int
	Sinks       []uint64
}

// AccessBlock is one strand's tapped accesses: Addrs[i] was touched with
// Kinds[i]. A strand may contribute several blocks (early flushes).
type AccessBlock struct {
	Strand uint64
	Addrs  []uint64
	Kinds  []detect.AccessKind
}

// Capture is a fully decoded sftrace file. Events and Blocks each
// preserve file order; Seq records the global interleaving (for tools
// that need it, replay does not).
type Capture struct {
	Events  []Event       // structure events, file order
	Blocks  []AccessBlock // access blocks, file order
	Strands uint64        // 1 + the largest strand ID named anywhere
	Futures int           // 1 + the largest future ID named anywhere
	Entries uint64        // total access entries across Blocks
	Bytes   int64         // encoded size consumed
}

// Recorder writes a capture. It implements sched.Tracer (attach via
// sched.Options.Aux so the primary tracer's lane routing is untouched)
// and detect.AccessTap (attach via detect.Options.Tap). For runs
// without an access history it also implements sched.AccessChecker +
// sched.StrandCloser directly, with its own per-strand (addr, kind)
// dedup, so a program can be recorded without paying for detection.
//
// All methods are safe for concurrent use; Close must be called once,
// after the run, to write the trailer and flush.
type Recorder struct {
	mu     sync.Mutex
	w      *bufio.Writer
	buf    []byte
	err    error
	closed bool

	structEvents  uint64
	accessBlocks  uint64
	accessEntries uint64
	bytes         uint64
}

// NewRecorder starts a capture on w, writing the header immediately.
func NewRecorder(w io.Writer) *Recorder {
	r := &Recorder{w: bufio.NewWriterSize(w, 1<<16)}
	r.buf = append(r.buf, magic[:]...)
	r.buf = append(r.buf, byteMark[:]...)
	r.buf = binary.AppendUvarint(r.buf, Version)
	r.emit()
	return r
}

// emit writes and resets r.buf; the caller holds r.mu (or, for the
// constructor, exclusive access).
func (r *Recorder) emit() {
	if r.err != nil || r.closed {
		r.buf = r.buf[:0]
		return
	}
	n, err := r.w.Write(r.buf)
	r.bytes += uint64(n)
	if err != nil {
		r.err = err
	}
	r.buf = r.buf[:0]
}

func (r *Recorder) structEvent(op Op, fields ...uint64) {
	r.mu.Lock()
	r.buf = append(r.buf, byte(op))
	for _, f := range fields {
		r.buf = binary.AppendUvarint(r.buf, f)
	}
	r.structEvents++
	r.emit()
	r.mu.Unlock()
}

func phField(placeholder *sched.Strand) uint64 {
	if placeholder == nil {
		return 0
	}
	return placeholder.ID + 1
}

// OnRoot implements sched.Tracer.
func (r *Recorder) OnRoot(root *sched.Strand) {
	r.structEvent(OpRoot, root.ID)
}

// OnSpawn implements sched.Tracer.
func (r *Recorder) OnSpawn(u, child, cont, placeholder *sched.Strand) {
	r.structEvent(OpSpawn, u.ID, child.ID, cont.ID, phField(placeholder))
}

// OnCreate implements sched.Tracer.
func (r *Recorder) OnCreate(u, first, cont, placeholder *sched.Strand, f *sched.FutureTask) {
	parent := uint64(0)
	if f.Parent != nil {
		parent = uint64(f.Parent.ID)
	}
	r.structEvent(OpCreate, u.ID, first.ID, cont.ID, phField(placeholder), uint64(f.ID), parent)
}

// OnSync implements sched.Tracer.
func (r *Recorder) OnSync(k, s *sched.Strand, childSinks []*sched.Strand) {
	r.mu.Lock()
	r.buf = append(r.buf, byte(OpSync))
	r.buf = binary.AppendUvarint(r.buf, k.ID)
	r.buf = binary.AppendUvarint(r.buf, s.ID)
	r.buf = binary.AppendUvarint(r.buf, uint64(len(childSinks)))
	for _, c := range childSinks {
		r.buf = binary.AppendUvarint(r.buf, c.ID)
	}
	r.structEvents++
	r.emit()
	r.mu.Unlock()
}

// OnReturn implements sched.Tracer.
func (r *Recorder) OnReturn(sink *sched.Strand) {
	r.structEvent(OpReturn, sink.ID)
}

// OnPut implements sched.Tracer.
func (r *Recorder) OnPut(sink *sched.Strand, f *sched.FutureTask) {
	r.structEvent(OpPut, sink.ID, uint64(f.ID))
}

// OnGet implements sched.Tracer.
func (r *Recorder) OnGet(u, g *sched.Strand, f *sched.FutureTask) {
	r.structEvent(OpGet, u.ID, g.ID, uint64(f.ID))
}

// TapAccesses implements detect.AccessTap: one access block per flushed
// batch unit. The kind stream is packed one bit per entry (write = 1).
func (r *Recorder) TapAccesses(s *sched.Strand, addrs []uint64, kinds []detect.AccessKind) {
	if len(addrs) == 0 {
		return
	}
	r.mu.Lock()
	r.writeBlockLocked(s.ID, addrs, kinds)
	r.mu.Unlock()
}

func (r *Recorder) writeBlockLocked(strand uint64, addrs []uint64, kinds []detect.AccessKind) {
	r.buf = append(r.buf, byte(opAccess))
	r.buf = binary.AppendUvarint(r.buf, strand)
	r.buf = binary.AppendUvarint(r.buf, uint64(len(addrs)))
	var bits, n uint8
	for _, k := range kinds {
		if k == detect.AccessWrite {
			bits |= 1 << n
		}
		if n++; n == 8 {
			r.buf = append(r.buf, bits)
			bits, n = 0, 0
		}
	}
	if n > 0 {
		r.buf = append(r.buf, bits)
	}
	for _, a := range addrs {
		r.buf = binary.AppendUvarint(r.buf, a)
	}
	r.accessBlocks++
	r.accessEntries += uint64(len(addrs))
	r.emit()
}

// recState is the per-strand dedup state of the standalone checker mode,
// hung off Strand.Aux (free in that mode: no History owns it).
type recState struct {
	seen  map[uint64]uint8
	addrs []uint64
	kinds []detect.AccessKind
}

var recPool = sync.Pool{New: func() any {
	return &recState{seen: map[uint64]uint8{}}
}}

func recStateOf(s *sched.Strand) *recState {
	if rs, ok := s.Aux.(*recState); ok {
		return rs
	}
	rs := recPool.Get().(*recState)
	s.Aux = rs
	return rs
}

const (
	recRead  = uint8(1) << detect.AccessRead
	recWrite = uint8(1) << detect.AccessWrite
)

// Read implements sched.AccessChecker for detection-free recording: the
// access is buffered per strand, deduplicated by the StrandFilter rules
// (a read is subsumed by any earlier same-strand access to the address,
// a write by an earlier same-strand write), and emitted at strand close.
func (r *Recorder) Read(s *sched.Strand, addr uint64) { r.record(s, addr, detect.AccessRead) }

// Write implements sched.AccessChecker; see Read.
func (r *Recorder) Write(s *sched.Strand, addr uint64) { r.record(s, addr, detect.AccessWrite) }

func (r *Recorder) record(s *sched.Strand, addr uint64, kind detect.AccessKind) {
	rs := recStateOf(s)
	m := rs.seen[addr]
	if m&(uint8(1)<<kind) != 0 || (kind == detect.AccessRead && m&recWrite != 0) {
		return
	}
	rs.seen[addr] = m | uint8(1)<<kind
	rs.addrs = append(rs.addrs, addr)
	rs.kinds = append(rs.kinds, kind)
}

// StrandClose implements sched.StrandCloser for the standalone checker
// mode: the strand's buffered accesses become one block.
func (r *Recorder) StrandClose(s *sched.Strand) {
	rs, ok := s.Aux.(*recState)
	if !ok {
		return
	}
	s.Aux = nil
	if len(rs.addrs) > 0 {
		r.mu.Lock()
		r.writeBlockLocked(s.ID, rs.addrs, rs.kinds)
		r.mu.Unlock()
	}
	if len(rs.seen) <= 1<<14 {
		clear(rs.seen)
		rs.addrs, rs.kinds = rs.addrs[:0], rs.kinds[:0]
		recPool.Put(rs)
	}
}

// Close writes the trailer and flushes. The capture is invalid without
// it; Load rejects trailer-less files as truncated.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.err
	}
	r.buf = append(r.buf, byte(opEnd))
	r.buf = binary.AppendUvarint(r.buf, r.structEvents)
	r.buf = binary.AppendUvarint(r.buf, r.accessEntries)
	r.emit()
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	r.closed = true
	return r.err
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Bytes returns how many bytes have been emitted so far.
func (r *Recorder) Bytes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// RegisterStats publishes the recorder counters (record.*) on reg.
func (r *Recorder) RegisterStats(reg *obsv.Registry) {
	reg.RegisterFunc("record.struct_events", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(r.structEvents)
	})
	reg.RegisterFunc("record.access_entries", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(r.accessEntries)
	})
	reg.RegisterFunc("record.bytes", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(r.bytes)
	})
}

var (
	_ sched.Tracer        = (*Recorder)(nil)
	_ sched.AccessChecker = (*Recorder)(nil)
	_ sched.StrandCloser  = (*Recorder)(nil)
	_ detect.AccessTap    = (*Recorder)(nil)
)

// countingReader tracks consumed bytes under a bufio.Reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Load decodes a capture. Any malformation — wrong magic, byte order,
// or version, a truncated stream, counts that do not match the trailer,
// an access block naming a strand no structure event declared — is an
// error; Load never returns a partially decoded capture. Strands and
// Futures are sized by the structure events alone: the access stream
// cannot inflate them (see Stream).
func Load(r io.Reader) (*Capture, error) {
	st, err := OpenStream(r)
	if err != nil {
		return nil, err
	}
	c := &Capture{}
	for {
		ev, blk, err := st.Next()
		if err == io.EOF {
			c.Strands = st.Strands()
			c.Futures = st.Futures()
			c.Entries = st.Entries()
			c.Bytes = st.Bytes()
			return c, nil
		}
		if err != nil {
			return nil, err
		}
		if ev != nil {
			c.Events = append(c.Events, *ev)
		} else {
			c.Blocks = append(c.Blocks, *blk)
		}
	}
}

package trace

import (
	"fmt"
	"math"
)

// Role classifies how a strand entered the dag — which branch component
// its fork-path label appends to its parent's. The mapping to label
// components is the consumer's business (internal/replay maps
// RoleChild and RoleGet to depa.Child, RoleCont to depa.Cont, RoleSync
// to depa.Sync); the index stays substrate-agnostic.
type Role uint8

const (
	// RoleRoot is the run's root strand (no parent).
	RoleRoot Role = iota
	// RoleChild is a spawned child or a created future's first strand.
	RoleChild
	// RoleCont is the continuation of a forking strand.
	RoleCont
	// RoleSync is the eagerly placed sync placeholder of a region.
	RoleSync
	// RoleGet is a get strand: the serial successor of the getting
	// strand.
	RoleGet
)

// PathIndex is a capture's segment index: every strand's fork path —
// label parent, branch role, owning future — extracted from the
// structure events in one serial validating pass and laid out in
// introduction order, so parents always precede children and
// contiguous index ranges are independent units of label-construction
// work. It is the partitioning pass of the parallel replay rebuild:
// everything a worker needs to compute a segment's labels without
// replaying events or touching shared state.
//
// All per-strand arrays are indexed by introduction position (file
// order), not strand ID — under parallel recording, IDs are not
// monotone in file order, and only introduction order guarantees the
// parent-before-child topology the label recurrence needs. Pos maps
// strand IDs back to positions.
type PathIndex struct {
	// Order holds the strand IDs in introduction (file) order.
	Order []uint64
	// Parent holds, per introduction position, the position of the
	// strand's label parent (always smaller), -1 for the root.
	Parent []int32
	// Role holds each strand's branch role.
	Role []Role
	// Fut holds each strand's owning future ID.
	Fut []int32
	// Pos maps a strand ID to its introduction position, -1 when the
	// capture never introduces the ID (IDs may be sparse).
	Pos []int32
	// FutParent maps a future ID to its parent future's ID, -1 for the
	// root future.
	FutParent []int32
}

// Index builds the capture's PathIndex, validating the structural
// invariants the rebuild depends on along the way: a single leading
// root, every referenced strand and future introduced first, no double
// introductions, sync strands pre-placed at their region's first
// branch, and puts preceding gets. It performs no reachability work —
// the index is the input to parallel label construction, an error here
// is a corrupt capture.
func (c *Capture) Index() (*PathIndex, error) {
	// Dense-ID sanity first (same bound the serial rebuild applies): a
	// structurally consistent capture introduces at most 3 strands and
	// 1 future per event, so the decoded maxima cannot be trusted
	// beyond that before sizing anything.
	if c.Strands > 3*uint64(len(c.Events))+1 || uint64(c.Futures) > uint64(len(c.Events))+1 {
		return nil, fmt.Errorf("trace: index: capture names %d strands/%d futures across %d events (corrupt capture)",
			c.Strands, c.Futures, len(c.Events))
	}
	if c.Strands > math.MaxInt32 {
		return nil, fmt.Errorf("trace: index: %d strands exceed the index limit", c.Strands)
	}

	idx := &PathIndex{
		Pos:       make([]int32, c.Strands),
		FutParent: make([]int32, c.Futures),
	}
	for i := range idx.Pos {
		idx.Pos[i] = -1
	}
	futSeen := make([]bool, c.Futures)
	futPut := make([]bool, c.Futures)
	for i := range idx.FutParent {
		idx.FutParent[i] = -1
	}

	need := func(i int, id uint64) (int32, error) {
		if id >= uint64(len(idx.Pos)) || idx.Pos[id] < 0 {
			return 0, fmt.Errorf("trace: index: event %d: strand %d referenced before introduction", i, id)
		}
		return idx.Pos[id], nil
	}
	intro := func(i int, id uint64, parent int32, role Role, fut int32) error {
		if id >= uint64(len(idx.Pos)) {
			return fmt.Errorf("trace: index: event %d: strand %d out of range", i, id)
		}
		if idx.Pos[id] >= 0 {
			return fmt.Errorf("trace: index: event %d: strand %d introduced twice", i, id)
		}
		idx.Pos[id] = int32(len(idx.Order))
		idx.Order = append(idx.Order, id)
		idx.Parent = append(idx.Parent, parent)
		idx.Role = append(idx.Role, role)
		idx.Fut = append(idx.Fut, fut)
		return nil
	}
	needFut := func(i, id int) error {
		if id < 0 || id >= len(futSeen) || !futSeen[id] {
			return fmt.Errorf("trace: index: event %d: future %d referenced before creation", i, id)
		}
		return nil
	}

	for i, ev := range c.Events {
		switch ev.Op {
		case OpRoot:
			if i != 0 || len(idx.Order) != 0 {
				return nil, fmt.Errorf("trace: index: event %d: misplaced root", i)
			}
			futSeen[0] = true
			if err := intro(i, ev.U, -1, RoleRoot, 0); err != nil {
				return nil, err
			}
		case OpSpawn, OpCreate:
			u, err := need(i, ev.U)
			if err != nil {
				return nil, err
			}
			childFut := idx.Fut[u]
			if ev.Op == OpCreate {
				if err := needFut(i, ev.FutParent); err != nil {
					return nil, err
				}
				if ev.Fut < 0 || ev.Fut >= len(futSeen) || futSeen[ev.Fut] {
					return nil, fmt.Errorf("trace: index: event %d: future %d out of range or created twice", i, ev.Fut)
				}
				futSeen[ev.Fut] = true
				idx.FutParent[ev.Fut] = int32(ev.FutParent)
				childFut = int32(ev.Fut)
			}
			if err := intro(i, ev.A, u, RoleChild, childFut); err != nil {
				return nil, err
			}
			if err := intro(i, ev.B, u, RoleCont, idx.Fut[u]); err != nil {
				return nil, err
			}
			if ev.Placeholder > 0 {
				if err := intro(i, ev.Placeholder-1, u, RoleSync, idx.Fut[u]); err != nil {
					return nil, err
				}
			}
		case OpSync:
			if _, err := need(i, ev.U); err != nil {
				return nil, err
			}
			// The sync strand is the placeholder eagerly introduced at
			// the region's first branch; the scheduler emits no sync
			// for branch-free regions, so an unintroduced sync strand
			// is corruption, not a late introduction.
			if _, err := need(i, ev.A); err != nil {
				return nil, fmt.Errorf("trace: index: event %d: sync strand %d was never placed at a branch", i, ev.A)
			}
			for _, id := range ev.Sinks {
				if _, err := need(i, id); err != nil {
					return nil, err
				}
			}
		case OpReturn:
			if _, err := need(i, ev.U); err != nil {
				return nil, err
			}
		case OpPut:
			if _, err := need(i, ev.U); err != nil {
				return nil, err
			}
			if err := needFut(i, ev.Fut); err != nil {
				return nil, err
			}
			futPut[ev.Fut] = true
		case OpGet:
			u, err := need(i, ev.U)
			if err != nil {
				return nil, err
			}
			if err := needFut(i, ev.Fut); err != nil {
				return nil, err
			}
			if !futPut[ev.Fut] {
				return nil, fmt.Errorf("trace: index: event %d: get of future %d before its put", i, ev.Fut)
			}
			if err := intro(i, ev.A, u, RoleGet, idx.Fut[u]); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("trace: index: event %d: unexpected op %v", i, ev.Op)
		}
	}
	if len(c.Events) > 0 && len(idx.Order) == 0 {
		return nil, fmt.Errorf("trace: index: capture has events but introduces no strands")
	}
	return idx, nil
}

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"sforder/internal/detect"
)

// Stream decodes a capture incrementally: one structure event or access
// block per Next call, in file order, without holding the capture in
// memory. It is the decoder under Load (which drains a Stream into a
// Capture) and the producer side of streaming replay, which starts
// detection while the file is still being read.
//
// A Stream validates as it goes: header, version, op bytes, and — the
// property streaming consumers depend on — that every access block
// names a strand some earlier structure event declared. The recorder's
// single-mutex serialization guarantees that ordering in any genuine
// capture (the tap fires between a strand's introduction and its
// strand-ending event), so a violation means corruption, caught before
// the block's strand id can size any consumer state. The trailer is
// verified at end of stream; a capture cut short yields an error, never
// a silent prefix.
type Stream struct {
	br  *bufio.Reader
	cr  *countingReader
	err error
	end bool

	events  uint64
	blocks  uint64
	entries uint64
	bytes   int64
	strands uint64 // 1 + largest strand id declared by structure events
	futures int    // 1 + largest future id declared by structure events
}

// OpenStream begins decoding a capture from r, consuming and validating
// the header. The reader is buffered internally; the caller must not
// read from r while the Stream is live.
func OpenStream(r io.Reader) (*Stream, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReaderSize(cr, 1<<16)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: load: short header: %w", err)
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, fmt.Errorf("trace: load: bad magic %q (not an sftrace capture)", hdr[:8])
	}
	if [4]byte(hdr[8:12]) != byteMark {
		return nil, fmt.Errorf("trace: load: byte-order marker % x, want % x (foreign byte order)",
			hdr[8:12], byteMark[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: load: version: %w", err)
	}
	if version != Version {
		return nil, fmt.Errorf("trace: load: format version %d, want %d (stale or foreign capture; re-record it)",
			version, Version)
	}
	return &Stream{br: br, cr: cr}, nil
}

func (s *Stream) uv() uint64 {
	if s.err != nil {
		return 0
	}
	var v uint64
	v, s.err = binary.ReadUvarint(s.br)
	return v
}

func (s *Stream) noteStrand(id uint64) uint64 {
	if id+1 > s.strands {
		s.strands = id + 1
	}
	return id
}

func (s *Stream) noteFut(id uint64) int {
	if int(id)+1 > s.futures {
		s.futures = int(id) + 1
	}
	return int(id)
}

// Next returns the next item of the capture: exactly one of ev and blk
// is non-nil. After the trailer has been read and verified, Next
// returns io.EOF. Any malformation is a non-EOF error, and the Stream
// is dead afterwards.
func (s *Stream) Next() (ev *Event, blk *AccessBlock, err error) {
	if s.end {
		return nil, nil, io.EOF
	}
	if s.err != nil {
		return nil, nil, s.err
	}
	opByte, e := s.br.ReadByte()
	if e != nil {
		s.err = fmt.Errorf("trace: load: truncated capture (no trailer): %w", e)
		return nil, nil, s.err
	}
	op := Op(opByte)
	switch op {
	case OpRoot:
		s.noteFut(0) // the root strand belongs to the implicit future 0
		ev = &Event{Op: op, U: s.noteStrand(s.uv())}
	case OpSpawn:
		ev = &Event{Op: op, U: s.noteStrand(s.uv()), A: s.noteStrand(s.uv()), B: s.noteStrand(s.uv()), Placeholder: s.uv()}
		if ev.Placeholder > 0 {
			s.noteStrand(ev.Placeholder - 1)
		}
	case OpCreate:
		ev = &Event{Op: op, U: s.noteStrand(s.uv()), A: s.noteStrand(s.uv()), B: s.noteStrand(s.uv()), Placeholder: s.uv()}
		if ev.Placeholder > 0 {
			s.noteStrand(ev.Placeholder - 1)
		}
		ev.Fut = s.noteFut(s.uv())
		ev.FutParent = s.noteFut(s.uv())
	case OpSync:
		ev = &Event{Op: op, U: s.noteStrand(s.uv()), A: s.noteStrand(s.uv())}
		n := s.uv()
		for i := uint64(0); i < n && s.err == nil; i++ {
			ev.Sinks = append(ev.Sinks, s.noteStrand(s.uv()))
		}
	case OpReturn:
		ev = &Event{Op: op, U: s.noteStrand(s.uv())}
	case OpPut:
		ev = &Event{Op: op, U: s.noteStrand(s.uv()), Fut: s.noteFut(s.uv())}
	case OpGet:
		ev = &Event{Op: op, U: s.noteStrand(s.uv()), A: s.noteStrand(s.uv()), Fut: s.noteFut(s.uv())}
	case opAccess:
		b := &AccessBlock{Strand: s.uv()}
		// Validate against the strand count the structure events have
		// declared so far — not the access stream's own claim — before
		// the id reaches any allocation or table sizing. The recorder
		// orders every block after its strand's introduction, so a
		// forward reference can only be corruption.
		if s.err == nil && b.Strand >= s.strands {
			s.err = fmt.Errorf("trace: load: access block names strand %d before any structure event declares it (corrupt capture)", b.Strand)
			return nil, nil, s.err
		}
		n := s.uv()
		if s.err == nil {
			nb := (n + 7) / 8
			bits := make([]byte, 0, min(nb, 1<<16))
			for i := uint64(0); i < nb && s.err == nil; i++ {
				var kb byte
				kb, s.err = s.br.ReadByte()
				bits = append(bits, kb)
			}
			for i := uint64(0); i < n && s.err == nil; i++ {
				b.Addrs = append(b.Addrs, s.uv())
				k := detect.AccessRead
				if bits[i/8]&(1<<(i%8)) != 0 {
					k = detect.AccessWrite
				}
				b.Kinds = append(b.Kinds, k)
			}
		}
		if s.err == nil {
			s.entries += uint64(len(b.Addrs))
			s.blocks++
			return nil, b, nil
		}
	case opEnd:
		wantStruct, wantEntries := s.uv(), s.uv()
		if s.err != nil {
			s.err = fmt.Errorf("trace: load: truncated trailer: %w", s.err)
			return nil, nil, s.err
		}
		if wantStruct != s.events || wantEntries != s.entries {
			s.err = fmt.Errorf("trace: load: trailer mismatch: %d/%d events, %d/%d access entries (corrupt capture)",
				s.events, wantStruct, s.entries, wantEntries)
			return nil, nil, s.err
		}
		s.bytes = s.cr.n - int64(s.br.Buffered())
		s.end = true
		return nil, nil, io.EOF
	default:
		s.err = fmt.Errorf("trace: load: unknown op %d at event %d (corrupt capture)",
			opByte, s.events+s.blocks)
		return nil, nil, s.err
	}
	if s.err != nil {
		s.err = fmt.Errorf("trace: load: truncated capture: %w", s.err)
		return nil, nil, s.err
	}
	s.events++
	return ev, nil, nil
}

// Events, Entries, Blocks, Strands, Futures, and Bytes report the
// totals decoded so far; after Next has returned io.EOF they are the
// whole capture's (with Bytes excluding any trailing data beyond it).
func (s *Stream) Events() uint64  { return s.events }
func (s *Stream) Entries() uint64 { return s.entries }
func (s *Stream) Blocks() uint64  { return s.blocks }
func (s *Stream) Strands() uint64 { return s.strands }
func (s *Stream) Futures() int    { return s.futures }
func (s *Stream) Bytes() int64    { return s.bytes }

// Package analysis statically checks programs written against the
// sforder Task API for violations of the structured-futures contract
// (paper §2) — the restrictions under which SF-Order's soundness and
// completeness guarantees hold. It is the before-execution layer of the
// repo's three-layer enforcement stack (with sched's checked mode
// during execution and dag.Validate after it), built on go/ast and
// go/types only — no dependencies outside the standard library.
//
// Five passes run over each type-checked package:
//
//	SF001 multi-touch          a Future handle reaching more than one
//	                           Get along some intra-procedural CFG path
//	                           (single-touch, paper §2)
//	SF002 handle-escape        a handle captured by the closure passed
//	                           to its own Create, making the Get
//	                           reachable only through the created task
//	                           (get-reachability, paper §2)
//	SF003 unannotated-sharing  a variable shared between a Create/Spawn
//	                           closure and its continuation with a write
//	                           but no Task.Read/Task.Write shadow
//	                           annotations — the detector is blind there
//	                           (annotated-sharing, §4)
//	SF004 leaked-handle        a handle stored into a struct field,
//	                           global, or channel, where sequential
//	                           reachability of the Get can no longer be
//	                           established (get-reachability, paper §2)
//	SF005 uninstrumentable     a shared memory operation the sfinstr
//	                           rewriter cannot attribute to a shadow
//	                           address (map elements, unsafe.Pointer,
//	                           interface unboxing, reflect) — coverage
//	                           silently lost at rewrite time is surfaced
//	                           in analysis mode instead (§4)
//
// SF001 and SF002 are errors; SF003–SF005 are warnings. All checks
// resolve the Task/Future API through go/types, so both the public
// sforder surface and internal/sched clients are analyzed. The same
// machinery — the loader, the call classifier, the locality pre-pass,
// and the attribution helper — is exported for internal/instr, which
// rewrites programs instead of reporting on them.
package analysis

import (
	"fmt"
	"go/token"
	"sort"

	"sforder/internal/contract"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Error marks a definite contract violation.
	Error Severity = iota
	// Warning marks a construct that defeats the static guarantees but
	// may still be dynamically correct.
	Warning
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// MarshalText renders the severity by name in sfvet's -json output.
func (s Severity) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Check    string // stable check ID: SF001..SF004
	Severity Severity
	Message  string
	// Invariant is the paper clause the check enforces.
	Invariant contract.Invariant
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s] %s (%s)", d.Pos, d.Check, d.Severity, d.Message, d.Invariant.Cite())
}

// Checks describes every pass: ID, invariant enforced, severity.
var Checks = []struct {
	ID        string
	Severity  Severity
	Invariant contract.Invariant
	Doc       string
}{
	{"SF001", Error, contract.SingleTouch, "a Future handle may reach more than one Get along an intra-procedural CFG path"},
	{"SF002", Error, contract.GetReachability, "a handle is captured by the closure passed to its own Create"},
	{"SF003", Warning, contract.AnnotatedSharing, "a variable is shared between a task closure and its continuation without shadow annotations"},
	{"SF004", Warning, contract.GetReachability, "a Future handle is stored into a struct field, global, or channel"},
	{"SF005", Warning, contract.AnnotatedSharing, "a shared memory operation the sfinstr rewriter cannot attribute (map element, unsafe.Pointer, interface unboxing, reflect)"},
}

// AnalyzePackage runs every pass over p and returns the findings sorted
// by position. The package should be free of type errors; passes are
// conservative in the presence of missing type information.
func AnalyzePackage(p *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, check string, format string, args ...any) {
		var sev Severity
		var inv contract.Invariant
		for _, c := range Checks {
			if c.ID == check {
				sev, inv = c.Severity, c.Invariant
			}
		}
		diags = append(diags, Diagnostic{
			Pos:       p.Fset.Position(pos),
			Check:     check,
			Severity:  sev,
			Message:   fmt.Sprintf(format, args...),
			Invariant: inv,
		})
	}
	for _, f := range p.Files {
		checkMultiTouch(p, f, report)
		checkHandleEscape(p, f, report)
		checkUnannotatedSharing(p, f, report)
		checkLeakedHandle(p, f, report)
		checkUninstrumentable(p, f, report)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Check < diags[j].Check
	})
	return diags
}

// Analyze runs AnalyzePackage over every package.
func Analyze(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		out = append(out, AnalyzePackage(p)...)
	}
	return out
}

// reporter is the callback the passes emit through.
type reporter func(pos token.Pos, check string, format string, args ...any)

package analysis

// SF003 unannotated-sharing: a local variable is written by the closure
// passed to Create or Spawn and also accessed by the enclosing function
// outside that closure, and nothing in the enclosing function carries a
// Task.Read/Task.Write shadow annotation. SF-Order only orders accesses
// it is told about (§4): sharing that is never annotated is invisible
// to the detector, so a determinacy race through that variable can
// never be reported. The pass is deliberately conservative about when
// it stays silent:
//
//   - only direct writes to the captured variable itself count
//     (`v = ...`, `v++`); writes through an index or field
//     (`out[i] = ...`) are the standard disjoint-partition idiom and
//     may be annotated element-wise;
//   - Future-typed captures and the closure's own Task parameter are
//     exempt — handles are the synchronization mechanism, not data;
//   - if the closure's Task parameter escapes into an ordinary call
//     (`a = fib(c, n-1)`), annotations may happen interprocedurally,
//     so the whole closure is skipped;
//   - any Read/Write annotation anywhere in the enclosing function
//     (nested closures included) silences the pass for that function:
//     the author is annotating, and matching addresses statically is
//     out of scope.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func checkUnannotatedSharing(p *Package, f *ast.File, report reporter) {
	for _, fs := range functionsOf(f) {
		if hasAnnotations(p.Info, fs.body) {
			continue
		}
		inspectShallow(fs.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sc, ok := ClassifyCall(p.Info, call)
			if !ok || (sc.Kind != CallCreate && sc.Kind != CallSpawn) || sc.Fn == nil {
				return true
			}
			checkClosureSharing(p, fs, sc.Fn, report)
			return true
		})
	}
}

// hasAnnotations reports whether any Task.Read/Task.Write call occurs
// anywhere under n, nested function literals included.
func hasAnnotations(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if sc, ok := ClassifyCall(info, call); ok && (sc.Kind == CallRead || sc.Kind == CallWrite) {
				found = true
			}
		}
		return true
	})
	return found
}

// checkClosureSharing flags direct writes inside fn to variables that
// are declared outside fn and also used by the enclosing function
// outside fn.
func checkClosureSharing(p *Package, fs funcScope, fn *ast.FuncLit, report reporter) {
	param := TaskParamOf(p.Info, fn)
	if param != nil && taskParamEscapes(p.Info, fn, param) {
		return
	}
	seen := map[*types.Var]bool{}
	flagWrite := func(e ast.Expr, pos token.Pos) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		v := objOf(p.Info, id)
		if v == nil || seen[v] || v == param || v.IsField() || IsFutureType(v.Type()) || IsTaskType(v.Type()) {
			return
		}
		if !declaredOutside(fn, v) || !usedOutside(p.Info, fs.body, fn, v) {
			return
		}
		seen[v] = true
		report(pos, "SF003",
			"captured variable %q is written by this task closure and accessed by the enclosing function, but the function carries no Task.Read/Task.Write annotations: the detector cannot see this sharing",
			v.Name())
	}
	ast.Inspect(fn.Body, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			for _, lh := range x.Lhs {
				flagWrite(lh, x.Pos())
			}
		case *ast.IncDecStmt:
			flagWrite(x.X, x.Pos())
		}
		return true
	})
}

// taskParamEscapes reports whether the closure's Task parameter is used
// anywhere other than as the receiver of a classified API call (or the
// task argument of GetTyped) — e.g. passed to a helper function, which
// may annotate on the closure's behalf.
func taskParamEscapes(info *types.Info, fn *ast.FuncLit, param *types.Var) bool {
	uses, allowed := 0, 0
	countRecv := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && info.Uses[id] == param {
			allowed++
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == param {
			uses++
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sc, ok := ClassifyCall(info, call); ok {
				if sc.Recv != nil {
					countRecv(sc.Recv)
				} else if len(call.Args) > 0 {
					countRecv(call.Args[0]) // GetTyped(t, h)
				}
			}
		}
		return true
	})
	return uses > allowed
}

// usedOutside reports whether v is referenced anywhere in body outside
// fn's source range.
func usedOutside(info *types.Info, body *ast.BlockStmt, fn *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == nil {
			return true
		}
		if n.Pos() >= fn.Pos() && n.End() <= fn.End() {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if (info.Uses[id] == v) && (id.Pos() < fn.Pos() || id.Pos() > fn.End()) {
				found = true
			}
		}
		return true
	})
	return found
}

package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// parseWant scans a fixture file for `// want SF00x` comments and
// returns the expected findings as "line:CHECK" keys.
func parseWant(t *testing.T, file string) map[string]bool {
	t.Helper()
	fh, err := os.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	want := map[string]bool{}
	sc := bufio.NewScanner(fh)
	for line := 1; sc.Scan(); line++ {
		_, after, ok := strings.Cut(sc.Text(), "// want ")
		if !ok {
			continue
		}
		for _, check := range strings.Fields(after) {
			if !strings.HasPrefix(check, "SF") {
				break
			}
			want[fmt.Sprintf("%d:%s", line, check)] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtures runs the analyzer over each seeded-violation package in
// testdata/src and checks the findings exactly match the `// want`
// annotations — nothing missing, nothing extra.
func TestFixtures(t *testing.T) {
	for _, name := range []string{"multitouch", "escape", "sharing", "leak", "uninstr", "clean"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkgs, err := Load(dir, []string{"."}, false)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			if len(pkgs[0].TypeErrors) > 0 {
				t.Fatalf("fixture has type errors: %v", pkgs[0].TypeErrors)
			}
			want := parseWant(t, filepath.Join(dir, "main.go"))
			got := map[string]bool{}
			for _, d := range AnalyzePackage(pkgs[0]) {
				got[fmt.Sprintf("%d:%s", d.Pos.Line, d.Check)] = true
				t.Logf("diag: %s", d)
			}
			for k := range want {
				if !got[k] {
					t.Errorf("missing expected diagnostic %s", k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("unexpected diagnostic %s", k)
				}
			}
		})
	}
}

// TestRepoHasNoFalsePositives loads the whole module the way cmd/sfvet
// would and requires (a) zero findings outside examples/badfutures and
// (b) at least one finding of every check inside it. This is the
// acceptance bar: the analyzer must be quiet on all shipping code.
func TestRepoHasNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full module")
	}
	pkgs, err := Load("../..", []string{"./..."}, false)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("package %s has type errors: %v", p.Path, p.TypeErrors)
		}
	}
	seeded := map[string]bool{}
	for _, d := range Analyze(pkgs) {
		if strings.Contains(filepath.ToSlash(d.Pos.Filename), "examples/badfutures/") {
			seeded[d.Check] = true
			continue
		}
		t.Errorf("false positive outside examples/badfutures: %s", d)
	}
	var missing []string
	for _, c := range Checks {
		if !seeded[c.ID] {
			missing = append(missing, c.ID)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("examples/badfutures does not trigger %v", missing)
	}
}

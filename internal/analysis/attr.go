package analysis

// Memory-operation attribution, shared by the SF005 check (analysis
// mode: warn about coverage sfinstr will lose) and the internal/instr
// rewriter (rewrite mode: decide whether `&expr` is a legal, meaningful
// shadow address for an injected Task.Read/Task.Write). An operation is
// attributable when its address can be taken with an ordinary Go `&`
// and that address names the memory the program actually touches; the
// failure reasons distinguish ops that are silently fine to skip
// (temporaries, string bytes — they cannot race) from ops whose skip
// loses real coverage (map elements, accesses through unsafe.Pointer or
// interface values, reflect-based access) and must be surfaced.

import (
	"go/ast"
	"go/types"
	"strings"
)

// AttrResult classifies one memory operation's attributability.
type AttrResult int

const (
	// AttrOK: &expr is legal and names the touched memory.
	AttrOK AttrResult = iota
	// AttrMap: a map element has no address to take; the sharing is
	// invisible to the detector (surfaced by SF005).
	AttrMap
	// AttrUnsafe: the access goes through an unsafe.Pointer; type-based
	// attribution is defeated (surfaced by SF005).
	AttrUnsafe
	// AttrInterface: the access reads a value unboxed from an interface
	// (a value-type assertion); the copy's address does not name the
	// shared cell (surfaced by SF005).
	AttrInterface
	// AttrTemp: the access is rooted at an rvalue temporary (a call or
	// conversion result, a map value copy); it touches a copy, which
	// cannot race — silently skipped.
	AttrTemp
	// AttrString: string bytes are immutable and cannot race — silently
	// skipped.
	AttrString
	// AttrOther: not an attributable shape (blank identifier, constant,
	// package name, ...) — silently skipped.
	AttrOther
)

func (r AttrResult) String() string {
	switch r {
	case AttrOK:
		return "ok"
	case AttrMap:
		return "map element has no address"
	case AttrUnsafe:
		return "access through unsafe.Pointer"
	case AttrInterface:
		return "access through an interface value"
	case AttrTemp:
		return "rvalue temporary"
	case AttrString:
		return "immutable string byte"
	default:
		return "not attributable"
	}
}

// Surfaced reports whether a failed attribution loses real coverage and
// should be warned about (SF005) rather than silently skipped.
func (r AttrResult) Surfaced() bool {
	return r == AttrMap || r == AttrUnsafe || r == AttrInterface
}

// AttributeAddr decides whether `&e` is a legal Go expression that
// names the memory e touches. It mirrors the spec's addressability
// rules: variables, pointer dereferences, slice index expressions, and
// field/index chains over addressable operands are addressable; map
// elements, string bytes, and rvalue temporaries are not.
func AttributeAddr(info *types.Info, e ast.Expr) AttrResult {
	if usesUnsafe(info, e) {
		return AttrUnsafe
	}
	return addressable(info, e)
}

func addressable(info *types.Info, e ast.Expr) AttrResult {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return AttrOther
		}
		if v := objOf(info, x); v != nil {
			return AttrOK
		}
		return AttrOther
	case *ast.SelectorExpr:
		sel := info.Selections[x]
		if sel == nil {
			// Qualified identifier pkg.Var: addressable when it is a
			// variable.
			if _, ok := info.Uses[x.Sel].(*types.Var); ok {
				return AttrOK
			}
			return AttrOther
		}
		if sel.Kind() != types.FieldVal {
			return AttrOther // method value/expr: not a memory op
		}
		if isPointer(info.Types[x.X].Type) {
			// Pointer base: (*base).f is addressable however the base
			// value was produced (call results are hoisted by the
			// rewriter), so the base only needs to be evaluable.
			return AttrOK
		}
		return addressable(info, x.X)
	case *ast.IndexExpr:
		bt := info.Types[x.X].Type
		if bt == nil {
			return AttrOther
		}
		switch u := bt.Underlying().(type) {
		case *types.Map:
			return AttrMap
		case *types.Slice, *types.Pointer:
			return AttrOK // elements addressable regardless of base
		case *types.Array:
			return addressable(info, x.X)
		case *types.Basic:
			if u.Info()&types.IsString != 0 {
				return AttrString
			}
		}
		return AttrOther
	case *ast.StarExpr:
		return AttrOK
	case *ast.TypeAssertExpr:
		return AttrInterface // value-type assertion result is a copy
	case *ast.CallExpr, *ast.CompositeLit, *ast.BasicLit:
		return AttrTemp
	default:
		return AttrOther
	}
}

// isPointer reports whether t's underlying type is a pointer.
func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// usesUnsafe reports whether any subexpression's type involves
// unsafe.Pointer.
func usesUnsafe(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[ex]; ok && tv.Type != nil {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
				found = true
			}
		}
		return true
	})
	return found
}

// AccessRoot resolves the base of an access-path expression (selector /
// index / dereference chains) to the named variable it is rooted at,
// reporting whether the path crosses a pointer hop (pointer-field
// selection, slice indexing, dereference) — i.e. whether the touched
// memory is the root's own storage or memory the root references.
// A nil root means the base is not a named variable (a call result, a
// map value, ...).
func AccessRoot(info *types.Info, e ast.Expr) (root *types.Var, throughPointer bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return objOf(info, x), throughPointer
		case *ast.SelectorExpr:
			if info.Selections[x] == nil {
				// Qualified identifier: the "root" is the package-level
				// variable itself.
				if v, ok := info.Uses[x.Sel].(*types.Var); ok {
					return v, throughPointer
				}
				return nil, throughPointer
			}
			if isPointer(info.Types[x.X].Type) {
				throughPointer = true
			}
			e = x.X
		case *ast.IndexExpr:
			if bt := info.Types[x.X].Type; bt != nil {
				switch bt.Underlying().(type) {
				case *types.Slice, *types.Pointer, *types.Map:
					throughPointer = true
				}
			}
			e = x.X
		case *ast.StarExpr:
			throughPointer = true
			e = x.X
		default:
			return nil, throughPointer
		}
	}
}

// SharedOp combines the locality pre-pass with the access path: it
// reports whether the memory e touches may be visible to more than one
// strand. Operations on never-escaping locals, or through pointers with
// provably local pointees, are strand-local; everything else is
// conservatively shared.
func SharedOp(info *types.Info, loc *Locality, e ast.Expr) bool {
	root, viaPtr := AccessRoot(info, e)
	if root == nil {
		return true // unknown base: conservatively shared
	}
	if IsTaskType(root.Type()) || IsFutureType(root.Type()) {
		return false // the synchronization mechanism, not data
	}
	if !viaPtr {
		return loc.Escapes(root)
	}
	return !loc.LocalPointee(root)
}

// IsReflectMutation recognizes reflect-based memory operations the
// instrumenter cannot attribute: method calls on reflect.Value whose
// name mutates the target (Set, SetInt, SetMapIndex, ...), and
// reflect.Copy.
func IsReflectMutation(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "reflect" {
		return false
	}
	if obj.Name() == "Copy" {
		return true
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return strings.HasPrefix(obj.Name(), "Set")
}

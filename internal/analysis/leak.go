package analysis

// SF004 leaked-handle: a Future handle is stored somewhere the analyzer
// (and a human reader) can no longer follow sequentially — a struct
// field, a package-level variable, or a channel. Get-reachability
// (paper §2) demands a path from the Create's continuation to the Get
// that avoids the created task; once the handle travels through shared
// mutable storage that path can only be established dynamically, which
// is exactly what the runtime checked mode's visibility horizon exists
// for. Storing handles in local slices, maps, or arrays is the
// standard fan-out/fan-in idiom and is not flagged.

import (
	"go/ast"
	"go/types"
)

func checkLeakedHandle(p *Package, f *ast.File, report reporter) {
	futureExpr := func(e ast.Expr) bool {
		tv, ok := p.Info.Types[e]
		return ok && IsFutureType(tv.Type)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lh := range x.Lhs {
				if !futureExpr(lh) {
					continue
				}
				switch t := ast.Unparen(lh).(type) {
				case *ast.SelectorExpr:
					report(t.Pos(), "SF004",
						"future handle stored into field %q: get-reachability through shared storage cannot be established statically (use the runtime checked mode)",
						t.Sel.Name)
				case *ast.Ident:
					if v := objOf(p.Info, t); v != nil && isGlobal(p, v) {
						report(t.Pos(), "SF004",
							"future handle stored into package-level variable %q: get-reachability through shared storage cannot be established statically (use the runtime checked mode)",
							v.Name())
					}
				}
			}
		case *ast.SendStmt:
			if futureExpr(x.Value) {
				report(x.Pos(), "SF004",
					"future handle sent on a channel: the receiver may not be a sequential successor of the Create, so get-reachability cannot be established statically (use the runtime checked mode)")
			}
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[x]
			if !ok || !isStructType(tv.Type) {
				return true
			}
			for _, el := range x.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if futureExpr(val) {
					report(val.Pos(), "SF004",
						"future handle stored into a struct literal: get-reachability through shared storage cannot be established statically (use the runtime checked mode)")
				}
			}
		}
		return true
	})
}

// isGlobal reports whether v is declared at package scope.
func isGlobal(p *Package, v *types.Var) bool {
	return p.Types != nil && v.Parent() == p.Types.Scope()
}

// isStructType unwraps pointers/named types down to a struct.
func isStructType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Struct)
	return ok
}

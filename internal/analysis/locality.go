package analysis

// Strand-locality pre-pass, shared by the SF005 check and the
// internal/instr rewriter. It classifies, per file, which named
// variables can only ever be touched by the strand that created them:
// operations on those need no shadow annotations (skipping them is
// race-preserving — a location one strand can reach cannot be part of a
// determinacy race), and SF005 need not warn when such an operation is
// unattributable.
//
// Two facts are computed:
//
//   - Escapes(v): v's own storage may be reachable from another strand.
//     True for package-level variables, variables captured by any
//     function literal (a literal passed to Create/Spawn runs on a
//     different strand; any other literal may flow there), and
//     variables whose address is taken. Everything else is a local
//     whose cell only its creating strand can name.
//
//   - LocalPointee(v): v is a pointer/slice/map variable and the memory
//     it references is provably allocated by this function and never
//     shared: every definition of v is a fresh local allocation
//     (make, new, a composite literal, or its address, or append
//     growing v back into itself) and v is never captured,
//     address-taken, passed to another function (len/cap/delete and
//     self-append excepted), stored, returned, sent, or aliased.
//     Dereference-style accesses through such a v are strand-local
//     even though a dereference is in general a shared-memory
//     operation.
//
// Both analyses are deliberately syntactic and conservative in the
// escaping direction: anything not proven local is treated as shared,
// which costs annotations (overhead), never races (soundness).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Locality is the pre-pass result for one file.
type Locality struct {
	info     *types.Info
	pkg      *types.Package
	captured map[*types.Var]bool
	addrOf   map[*types.Var]bool
	// pointeeDisqualified marks pointer-like vars with at least one
	// definition or use outside the locally-allocated discipline;
	// pointeeCandidate marks those seen with at least one allowed local
	// allocation. LocalPointee = candidate && !disqualified.
	pointeeDisqualified map[*types.Var]bool
	pointeeCandidate    map[*types.Var]bool
}

// ComputeLocality runs the pre-pass over one file.
func ComputeLocality(info *types.Info, pkg *types.Package, file *ast.File) *Locality {
	l := &Locality{
		info:                info,
		pkg:                 pkg,
		captured:            map[*types.Var]bool{},
		addrOf:              map[*types.Var]bool{},
		pointeeDisqualified: map[*types.Var]bool{},
		pointeeCandidate:    map[*types.Var]bool{},
	}
	l.scanCaptures(file)
	l.scanPointees(file)
	return l
}

// Escapes reports whether v's own storage may be visible to a strand
// other than the one that declared it. Unknown objects escape.
func (l *Locality) Escapes(v *types.Var) bool {
	if v == nil {
		return true
	}
	if l.pkg != nil && v.Parent() == l.pkg.Scope() {
		return true // package-level
	}
	if v.IsField() {
		return true // fields live wherever their struct lives
	}
	return l.captured[v] || l.addrOf[v]
}

// LocalPointee reports whether dereference-style accesses through v
// (v[i], *v, v.f on pointer v) are provably strand-local.
func (l *Locality) LocalPointee(v *types.Var) bool {
	if v == nil || l.Escapes(v) {
		return false
	}
	return l.pointeeCandidate[v] && !l.pointeeDisqualified[v]
}

// scanCaptures fills captured (idents used inside a literal but
// declared outside it) and addrOf (&v anywhere, including &v.f and
// &v[i]: the address aliases into v's storage).
func (l *Locality) scanCaptures(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(x.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := l.info.Uses[id].(*types.Var)
				if ok && !v.IsField() && declaredOutside(x, v) {
					l.captured[v] = true
				}
				return true
			})
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id := writeTarget(x.X); id != nil {
					if v := objOf(l.info, id); v != nil {
						l.addrOf[v] = true
					}
				}
			}
		}
		return true
	})
}

// pointerLike reports whether v's type carries a pointee we track:
// slice, pointer, or map.
func pointerLike(v *types.Var) bool {
	switch v.Type().Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

// freshAllocExpr reports whether e is a fresh local allocation: make,
// new, a composite literal or its address, or nil. Only fresh
// allocations establish locally-allocated candidacy.
func (l *Locality) freshAllocExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make", "new":
				return l.info.Uses[id] == nil || l.info.Uses[id].Parent() == types.Universe
			}
		}
	}
	return false
}

// growSelfExpr reports whether e is append(v, ...) growing v back into
// itself: the backing stays whatever it already was (values are copied
// in), so it neither establishes nor breaks candidacy.
func (l *Locality) growSelfExpr(e ast.Expr, self *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if u := l.info.Uses[id]; u != nil && u.Parent() != types.Universe {
		return false
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && objOf(l.info, base) == self
}

// scanPointees walks every identifier use of pointer-like local
// variables and classifies it as within or outside the
// locally-allocated discipline, using a parent stack for context.
func (l *Locality) scanPointees(file *ast.File) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := objOf(l.info, id)
		if v == nil || !pointerLike(v) || (l.pkg != nil && v.Parent() == l.pkg.Scope()) || v.IsField() {
			return true
		}
		if !l.classifyUse(id, v, stack) {
			l.pointeeDisqualified[v] = true
		}
		return true
	})
}

// classifyUse reports whether this occurrence of v keeps the
// locally-allocated discipline. stack[len-1] is the ident itself.
func (l *Locality) classifyUse(id *ast.Ident, v *types.Var, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X == id // access path base; p.Sel is not a use of v
	case *ast.IndexExpr:
		return true // base (access path) or index (a value read of v? only if v were an index — pointer-like never is)
	case *ast.StarExpr:
		return true // deref: access path
	case *ast.RangeStmt:
		// As the range operand the use is an access path; as the key or
		// value variable v would be rebound to memory ranging over
		// someone else's allocation — disqualify.
		return p.X == id
	case *ast.AssignStmt:
		for i, lh := range p.Lhs {
			if lh == id {
				// Definition: allowed only when the matching RHS is a
				// fresh local allocation (tuple-assign from a call has
				// len(Rhs) != len(Lhs) and disqualifies).
				if len(p.Rhs) != len(p.Lhs) {
					return false
				}
				if l.freshAllocExpr(p.Rhs[i]) {
					l.pointeeCandidate[v] = true
					return true
				}
				return l.growSelfExpr(p.Rhs[i], v)
			}
		}
		return false // v appears on an RHS feeding another variable: aliased
	case *ast.ValueSpec:
		for i, name := range p.Names {
			if name == id {
				if len(p.Values) == 0 {
					l.pointeeCandidate[v] = true // zero value: nil pointee
					return true
				}
				if i < len(p.Values) && l.freshAllocExpr(p.Values[i]) {
					l.pointeeCandidate[v] = true
					return true
				}
				return false
			}
		}
		return false
	case *ast.CallExpr:
		if fn, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			switch fn.Name {
			case "len", "cap", "delete", "clear":
				if l.info.Uses[fn] == nil || l.info.Uses[fn].Parent() == types.Universe {
					return true
				}
			case "append":
				// Only as append's first argument, and only when the
				// result grows v back into itself.
				if len(p.Args) > 0 && ast.Unparen(p.Args[0]) == ast.Expr(id) {
					if len(stack) >= 3 {
						if as, ok := stack[len(stack)-3].(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
							if tgt, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && objOf(l.info, tgt) == v {
								return true
							}
						}
					}
				}
			}
		}
		return false // escapes into a call
	case *ast.BinaryExpr:
		// nil comparisons read the header value only.
		other := p.X
		if other == id {
			other = p.Y
		}
		if o, ok := ast.Unparen(other).(*ast.Ident); ok && o.Name == "nil" {
			return true
		}
		return false
	default:
		return false
	}
}

// declaredOutside reports whether v's declaration lies outside fn.
// (Shared with the SF003 pass.)
func declaredOutside(fn *ast.FuncLit, v *types.Var) bool {
	return v.Pos() < fn.Pos() || v.Pos() > fn.End()
}

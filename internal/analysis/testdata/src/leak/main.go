// Fixture for SF004 leaked-handle: handles escaping into struct
// fields, globals, and channels, where sequential get-reachability can
// no longer be followed statically. Local slice storage is the blessed
// fan-out idiom and must stay silent.
package main

import "sforder"

type box struct {
	fut *sforder.Future
}

var global *sforder.Future

func fieldStore(t *sforder.Task) {
	b := &box{}
	b.fut = t.Create(func(*sforder.Task) any { return 1 }) // want SF004
	t.Get(b.fut)
}

func globalStore(t *sforder.Task) {
	global = t.Create(func(*sforder.Task) any { return 1 }) // want SF004
	t.Get(global)
}

func channelSend(t *sforder.Task, ch chan *sforder.Future) {
	ch <- t.Create(func(*sforder.Task) any { return 1 }) // want SF004
}

func literalStore(t *sforder.Task) box {
	return box{fut: t.Create(func(*sforder.Task) any { return 1 })} // want SF004
}

func sliceStore(t *sforder.Task) {
	futs := make([]*sforder.Future, 2)
	for i := range futs {
		futs[i] = t.Create(func(*sforder.Task) any { return 1 }) // ok: local slice
	}
	for _, h := range futs {
		t.Get(h)
	}
}

func main() {
	fieldStore(nil)
	globalStore(nil)
	channelSend(nil, nil)
	_ = literalStore(nil)
	sliceStore(nil)
}

// Fixture for SF001 multi-touch. Lines carrying a want comment must be
// flagged; everything else must stay silent.
package main

import "sforder"

func straightLine(t *sforder.Task) {
	h := t.Create(func(*sforder.Task) any { return 1 })
	t.Get(h)
	t.Get(h) // want SF001
}

func branchThenFall(t *sforder.Task, cond bool) {
	h := t.Create(func(*sforder.Task) any { return 1 })
	if cond {
		t.Get(h)
	}
	t.Get(h) // want SF001
}

func branchExclusive(t *sforder.Task, cond bool) any {
	h := t.Create(func(*sforder.Task) any { return 1 })
	if cond {
		return t.Get(h) // ok: this path ends here
	}
	return t.Get(h)
}

func loopInvariant(t *sforder.Task) {
	h := t.Create(func(*sforder.Task) any { return 1 })
	for i := 0; i < 3; i++ {
		t.Get(h) // want SF001
	}
}

func loopFresh(t *sforder.Task) {
	for i := 0; i < 3; i++ {
		h := t.Create(func(*sforder.Task) any { return 1 })
		t.Get(h) // ok: a fresh future every iteration
	}
}

func fanIn(t *sforder.Task) {
	var futs []*sforder.Future
	for i := 0; i < 4; i++ {
		futs = append(futs, t.Create(func(*sforder.Task) any { return 1 }))
	}
	for _, h := range futs {
		t.Get(h) // ok: h is rebound by the range every iteration
	}
}

func reassigned(t *sforder.Task) {
	h := t.Create(func(*sforder.Task) any { return 1 })
	t.Get(h)
	h = t.Create(func(*sforder.Task) any { return 2 })
	t.Get(h) // ok: a different future now
}

func viaGetTyped(t *sforder.Task) int {
	h := t.Create(func(*sforder.Task) any { return 1 })
	x := sforder.GetTyped[int](t, h)
	return x + sforder.GetTyped[int](t, h) // want SF001
}

func switchArms(t *sforder.Task, n int) {
	h := t.Create(func(*sforder.Task) any { return 1 })
	switch n {
	case 0:
		t.Get(h)
	case 1:
		t.Get(h) // ok on its own: arms are exclusive
	}
	t.Get(h) // want SF001
}

func main() {
	straightLine(nil)
	branchThenFall(nil, false)
	branchExclusive(nil, false)
	loopInvariant(nil)
	loopFresh(nil)
	fanIn(nil)
	reassigned(nil)
	viaGetTyped(nil)
	switchArms(nil, 0)
}

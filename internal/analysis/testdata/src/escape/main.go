// Fixture for SF002 handle-escape: the closure passed to Create
// captures the handle Create returns.
package main

import "sforder"

func selfCapture(t *sforder.Task) {
	var h *sforder.Future
	h = t.Create(func(c *sforder.Task) any {
		return c.Get(h) // want SF002
	})
	t.Get(h)
}

func siblingCapture(t *sforder.Task) any {
	inner := t.Create(func(*sforder.Task) any { return 1 })
	outer := t.Create(func(c *sforder.Task) any {
		return c.Get(inner) // ok: a sibling handle, created before us
	})
	return t.Get(outer)
}

func main() {
	selfCapture(nil)
	_ = siblingCapture(nil)
}

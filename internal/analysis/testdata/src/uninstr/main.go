// Fixture for SF005 uninstrumentable-operation: shared memory ops the
// sfinstr rewriter cannot attribute (map elements, unsafe.Pointer,
// interface unboxing, reflect), plus the silences: strand-local ops,
// hand-annotated functions, and escaping Task parameters.
package main

import (
	"reflect"
	"unsafe"

	"sforder"
)

type pair struct{ a, b int }

// mapSharing writes a captured map from a future body and the
// continuation: both element accesses are unattributable.
func mapSharing(t *sforder.Task) {
	scores := map[string]int{}
	h := t.Create(func(c *sforder.Task) any {
		scores["a"] = 1 // want SF005
		return nil
	})
	scores["b"] = 2 // want SF005
	t.Get(h)
}

// localMap is strand-local: the map never leaves this function, so the
// skipped attribution loses nothing.
func localMap(t *sforder.Task) int {
	m := map[int]int{}
	m[1] = 2
	h := t.Create(func(c *sforder.Task) any { return nil })
	t.Get(h)
	return len(m)
}

// unsafeAccess goes through unsafe.Pointer: type-based attribution is
// defeated.
func unsafeAccess(t *sforder.Task, p *pair) int {
	h := t.Create(func(c *sforder.Task) any { return nil })
	v := *(*int)(unsafe.Pointer(p)) // want SF005
	t.Get(h)
	return v
}

// interfaceUnbox reads a field from a value unboxed out of an
// interface: the copy's address does not name the shared cell.
func interfaceUnbox(t *sforder.Task, box any) int {
	h := t.Create(func(c *sforder.Task) any { return nil })
	v := box.(pair).a // want SF005
	t.Get(h)
	return v
}

// reflectMutation writes through reflect.Value.
func reflectMutation(t *sforder.Task, p *pair) {
	h := t.Create(func(c *sforder.Task) any { return nil })
	reflect.ValueOf(p).Elem().Field(0).SetInt(3) // want SF005
	t.Get(h)
}

// annotated carries hand annotations: the author is annotating, so
// sfinstr coverage is moot and the pass stays silent.
func annotated(t *sforder.Task, shared map[string]int) {
	h := t.Create(func(c *sforder.Task) any {
		c.Write(1)
		shared["a"] = 1
		return nil
	})
	t.Write(1)
	shared["b"] = 2
	t.Get(h)
}

// helperTask passes its Task to a helper, which may annotate on its
// behalf: silent, mirroring SF003.
func helperTask(t *sforder.Task, shared map[string]int) {
	helper(t)
	shared["a"] = 1
}

func helper(t *sforder.Task) { t.Sync() }

func main() {}

// Fixture for SF003 unannotated-sharing: a captured variable written by
// a task closure and touched by the continuation, with no shadow
// annotations anywhere in the function.
package main

import "sforder"

func unannotated(t *sforder.Task) int {
	x := 0
	h := t.Create(func(c *sforder.Task) any {
		x = 42 // want SF003
		return nil
	})
	x++
	t.Get(h)
	return x
}

func annotated(t *sforder.Task) int {
	y := 0
	h := t.Create(func(c *sforder.Task) any {
		c.Write(1)
		y = 42
		return nil
	})
	t.Write(1)
	y++
	t.Get(h)
	return y
}

func helperEscape(t *sforder.Task) int {
	var a int
	t.Spawn(func(c *sforder.Task) {
		a = helper(c) // ok: c escapes into helper, which may annotate
	})
	t.Sync()
	return a
}

func helper(c *sforder.Task) int {
	c.Write(2)
	return 1
}

func elementWrite(t *sforder.Task) []int {
	out := make([]int, 4)
	t.Spawn(func(c *sforder.Task) {
		out[0] = 1 // ok: element writes are the disjoint-partition idiom
	})
	t.Sync()
	return out
}

func spawnShared(t *sforder.Task) int {
	n := 0
	t.Spawn(func(c *sforder.Task) {
		n++ // want SF003
	})
	t.Sync()
	return n
}

func main() {
	_ = unannotated(nil)
	_ = annotated(nil)
	_ = helperEscape(nil)
	_ = elementWrite(nil)
	_ = spawnShared(nil)
}

// Control fixture: realistic structured-futures programs that must
// produce zero diagnostics.
package main

import "sforder"

func chain(t *sforder.Task) int {
	a := t.Create(func(c *sforder.Task) any { return 2 })
	b := t.Create(func(c *sforder.Task) any {
		return sforder.GetTyped[int](c, a) + 1 // sibling get inside a later future
	})
	return sforder.GetTyped[int](t, b)
}

func fanOut(t *sforder.Task) int {
	futs := make([]*sforder.Future, 0, 4)
	for i := 0; i < 4; i++ {
		i := i
		futs = append(futs, t.Create(func(c *sforder.Task) any { return i * i }))
	}
	sum := 0
	for _, h := range futs {
		sum += sforder.GetTyped[int](t, h)
	}
	return sum
}

func earlyReturn(t *sforder.Task, cond bool) int {
	h := t.Create(func(c *sforder.Task) any { return 3 })
	if cond {
		return sforder.GetTyped[int](t, h)
	}
	return sforder.GetTyped[int](t, h) + 1
}

func annotatedSpawn(t *sforder.Task) int {
	a := 0
	t.Spawn(func(c *sforder.Task) {
		c.Write(1)
		a = 1
	})
	t.Write(1)
	t.Sync()
	return a
}

func main() {
	_ = chain(nil)
	_ = fanOut(nil)
	_ = earlyReturn(nil, true)
	_ = annotatedSpawn(nil)
}

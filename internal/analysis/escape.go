package analysis

// SF002 handle-escape: the closure passed to Create captures the very
// handle that Create returns (`h = t.Create(func(c) any { ... c.Get(h)
// ... })`). Any Get of that handle inside the created task is reachable
// only through the task itself, so no get-reachability path that avoids
// the created future exists (paper §2) — at runtime the Get deadlocks
// (the future waits on its own completion) or, under the checked mode,
// panics. Go's scoping makes this expressible only through a plain
// assignment to a previously declared variable; `:=` and `var` forms
// cannot name the handle inside the right-hand side.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func checkHandleEscape(p *Package, f *ast.File, report reporter) {
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			sc, ok := ClassifyCall(p.Info, call)
			if !ok || sc.Kind != CallCreate || sc.Fn == nil {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			v := objOf(p.Info, id)
			if v == nil || !IsFutureType(v.Type()) {
				continue
			}
			if use := firstUse(p.Info, sc.Fn.Body, v); use.IsValid() {
				report(use, "SF002",
					"handle %q is captured by the closure passed to its own Create: any Get here runs inside the created task, so no path outside the task can reach it",
					v.Name())
			}
		}
		return true
	})
}

// firstUse returns the position of the first identifier in n that
// refers to v, or NoPos.
func firstUse(info *types.Info, n ast.Node, v *types.Var) token.Pos {
	pos := token.NoPos
	ast.Inspect(n, func(m ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == v {
			pos = id.Pos()
		}
		return true
	})
	return pos
}

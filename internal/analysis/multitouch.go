package analysis

// SF001 multi-touch: a Future handle that can reach more than one Get
// along some intra-procedural control-flow path violates single-touch
// (paper §2). The pass abstractly interprets each function body,
// tracking per-handle get counts along paths: sequences accumulate,
// branches merge by maximum (if/else arms are exclusive, but a branch
// get followed by a fall-through get lies on one path), reassignment of
// the handle variable resets the count (a fresh future), and a get of a
// loop-invariant handle inside a loop body counts as multiple (two
// iterations form one path). Branches that end in return/break/continue
// do not leak their counts past the join point, so the common
// "get-and-return early" shape is not flagged. Only plain identifier
// handles are tracked — gets through index or selector expressions are
// skipped rather than guessed at (no false positives on futs[i]
// patterns whose index arithmetic the analysis cannot see).

import (
	"go/ast"
	"go/token"
	"go/types"
)

type getInfo struct {
	count int // 0, 1, 2 (saturating)
	first token.Pos
}

type mtState map[*types.Var]getInfo

func (s mtState) clone() mtState {
	out := make(mtState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func mergeMax(a, b mtState) mtState {
	out := a.clone()
	for v, g := range b {
		if cur, ok := out[v]; !ok || g.count > cur.count {
			out[v] = g
		}
	}
	return out
}

type mtChecker struct {
	p        *Package
	report   reporter
	reported map[*types.Var]bool
}

func checkMultiTouch(p *Package, f *ast.File, report reporter) {
	for _, fs := range functionsOf(f) {
		c := &mtChecker{p: p, report: report, reported: map[*types.Var]bool{}}
		c.block(fs.body.List, mtState{})
	}
}

func (c *mtChecker) flag(v *types.Var, pos token.Pos, prior token.Pos, why string) {
	if c.reported[v] {
		return
	}
	c.reported[v] = true
	prev := ""
	if prior.IsValid() {
		prev = "; previous get at " + c.p.Fset.Position(prior).String()
	}
	c.report(pos, "SF001", "future handle %q may be touched by Get more than once%s%s", v.Name(), why, prev)
}

// expr counts gets inside e (not descending into function literals) and
// returns the updated state.
func (c *mtChecker) expr(e ast.Expr, s mtState) mtState {
	if e == nil {
		return s
	}
	s = s.clone()
	inspectShallow(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sc, ok := ClassifyCall(c.p.Info, call)
		if !ok || sc.Kind != CallGet || sc.Handle == nil {
			return true
		}
		v := handleVar(c.p.Info, sc.Handle)
		if v == nil {
			return true
		}
		g := s[v]
		if g.count >= 1 {
			c.flag(v, call.Pos(), g.first, "")
		}
		if g.count == 0 {
			g.first = call.Pos()
		}
		if g.count < 2 {
			g.count++
		}
		s[v] = g
		return true
	})
	return s
}

// kill removes a reassigned handle variable from the state.
func (c *mtChecker) kill(s mtState, id *ast.Ident) mtState {
	v := objOf(c.p.Info, id)
	if v == nil || !IsFutureType(v.Type()) {
		return s
	}
	if _, ok := s[v]; !ok {
		return s
	}
	s = s.clone()
	delete(s, v)
	return s
}

// block interprets a statement sequence; the bool result reports
// whether the path terminates inside it (return/branch).
func (c *mtChecker) block(stmts []ast.Stmt, s mtState) (mtState, bool) {
	for _, st := range stmts {
		var term bool
		s, term = c.stmt(st, s)
		if term {
			return s, true
		}
	}
	return s, false
}

func (c *mtChecker) stmt(st ast.Stmt, s mtState) (mtState, bool) {
	switch x := st.(type) {
	case nil:
		return s, false
	case *ast.ExprStmt:
		return c.expr(x.X, s), false
	case *ast.SendStmt:
		return c.expr(x.Value, c.expr(x.Chan, s)), false
	case *ast.IncDecStmt:
		return c.expr(x.X, s), false
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			s = c.expr(r, s)
		}
		for _, lh := range x.Lhs {
			if id, ok := ast.Unparen(lh).(*ast.Ident); ok {
				s = c.kill(s, id)
			} else {
				s = c.expr(lh, s) // gets inside index expressions on the LHS
			}
		}
		return s, false
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						s = c.expr(val, s)
					}
					for _, name := range vs.Names {
						s = c.kill(s, name)
					}
				}
			}
		}
		return s, false
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			s = c.expr(r, s)
		}
		return s, true
	case *ast.BranchStmt:
		// break/continue/goto: end this straight-line path; the counts
		// do not flow past the join.
		return s, true
	case *ast.BlockStmt:
		return c.block(x.List, s)
	case *ast.LabeledStmt:
		return c.stmt(x.Stmt, s)
	case *ast.DeferStmt:
		return c.expr(x.Call, s), false
	case *ast.GoStmt:
		return c.expr(x.Call, s), false
	case *ast.IfStmt:
		if x.Init != nil {
			s, _ = c.stmt(x.Init, s)
		}
		s = c.expr(x.Cond, s)
		thenS, thenTerm := c.block(x.Body.List, s)
		elseS, elseTerm := s, false
		if x.Else != nil {
			elseS, elseTerm = c.stmt(x.Else, s)
		}
		switch {
		case thenTerm && elseTerm:
			return s, true
		case thenTerm:
			return elseS, false
		case elseTerm:
			return thenS, false
		default:
			return mergeMax(thenS, elseS), false
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s, _ = c.stmt(x.Init, s)
		}
		if x.Cond != nil {
			s = c.expr(x.Cond, s)
		}
		stmts := x.Body.List
		if x.Post != nil {
			stmts = append(append([]ast.Stmt{}, stmts...), x.Post)
		}
		return c.loopBody(x.Body, stmts, s, nil), false
	case *ast.RangeStmt:
		s = c.expr(x.X, s)
		var rebound []*types.Var
		for _, e := range []ast.Expr{x.Key, x.Value} {
			if id, ok := e.(*ast.Ident); ok && e != nil {
				s = c.kill(s, id)
				if v := objOf(c.p.Info, id); v != nil {
					rebound = append(rebound, v)
				}
			}
		}
		return c.loopBody(x.Body, x.Body.List, s, rebound), false
	case *ast.SwitchStmt:
		if x.Init != nil {
			s, _ = c.stmt(x.Init, s)
		}
		s = c.expr(x.Tag, s)
		return c.branches(x.Body.List, s), false
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			s, _ = c.stmt(x.Init, s)
		}
		if x.Assign != nil {
			s, _ = c.stmt(x.Assign, s)
		}
		return c.branches(x.Body.List, s), false
	case *ast.SelectStmt:
		return c.branches(x.Body.List, s), false
	default:
		return s, false
	}
}

// branches merges mutually exclusive case/comm clauses by maximum,
// excluding clauses that terminate. Without a default clause the
// pre-state is one of the merged outcomes.
func (c *mtChecker) branches(clauses []ast.Stmt, s mtState) mtState {
	out := s
	hasDefault := false
	for _, cl := range clauses {
		var guards []ast.Expr
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			guards, body = cc.List, cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			body = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			}
			s2 := s
			if cc.Comm != nil {
				s2, _ = c.stmt(cc.Comm, s2)
			}
			if bs, term := c.block(body, s2); !term {
				out = mergeMax(out, bs)
			}
			continue
		default:
			continue
		}
		s2 := s
		for _, g := range guards {
			s2 = c.expr(g, s2)
		}
		if bs, term := c.block(body, s2); !term {
			out = mergeMax(out, bs)
		}
	}
	_ = hasDefault // pre-state s is always in `out`: max merge is conservative either way
	return out
}

// loopBody interprets one loop body and applies the two-iterations
// rule: a handle gotten in the body that is not rebound anywhere in the
// body is gotten again on the next iteration. Bodies that always
// terminate (unconditional break/return at the end) run at most once
// and are exempt.
func (c *mtChecker) loopBody(bodyNode ast.Node, stmts []ast.Stmt, s mtState, rebound []*types.Var) mtState {
	sOut, term := c.block(stmts, s)
	if !term {
		assigned := assignedFutureVars(c.p.Info, bodyNode)
		for _, v := range rebound {
			assigned[v] = true
		}
		for v, g := range sOut {
			if g.count > s[v].count && !assigned[v] {
				c.flag(v, g.first, token.NoPos, " (gotten on every iteration of the enclosing loop)")
			}
		}
	}
	return mergeMax(s, sOut)
}

// assignedFutureVars collects Future-typed variables assigned anywhere
// inside n, nested closures included (any rebinding makes the
// two-iterations rule unsound, so it is disabled for that variable).
func assignedFutureVars(info *types.Info, n ast.Node) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v := objOf(info, id); v != nil && IsFutureType(v.Type()) {
				out[v] = true
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			for _, lh := range x.Lhs {
				mark(lh)
			}
		case *ast.RangeStmt:
			mark(x.Key)
			mark(x.Value)
		case *ast.ValueSpec:
			for _, name := range x.Names {
				mark(name)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				mark(x.X) // address taken: assume it may be rebound
			}
		}
		return true
	})
	return out
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The analyzer recognizes the Task/Future API through go/types, so it
// works identically on code written against the public sforder package
// (whose Task/Future are aliases) and against internal/sched directly.
// The classification helpers are exported: internal/instr drives the
// same machinery to rewrite programs rather than report on them.

// sfPackage reports whether path is the sforder module's API surface.
func sfPackage(path string) bool {
	return path == "sforder" || path == "sforder/internal/sched" ||
		strings.HasSuffix(path, "/sforder") || strings.HasSuffix(path, "sforder/internal/sched")
}

// namedSF unwraps pointers and reports whether t is the named sforder
// type with the given name (Task or Future).
func namedSF(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && sfPackage(obj.Pkg().Path())
}

// IsTaskType reports whether t is sforder.Task / sched.Task (or a
// pointer to it).
func IsTaskType(t types.Type) bool { return t != nil && namedSF(t, "Task") }

// IsFutureType reports whether t is sforder.Future / sched.Future (or a
// pointer to it).
func IsFutureType(t types.Type) bool { return t != nil && namedSF(t, "Future") }

// CallKind classifies a call's relation to the structured-futures API.
type CallKind int

const (
	CallNone CallKind = iota
	CallGet           // Task.Get or sforder.GetTyped
	CallCreate
	CallSpawn
	CallSync
	CallRead
	CallWrite
)

// Advances reports whether the call steps its task onto a new strand:
// every access made after it belongs to a different dag node than
// accesses made before it. Read/Write annotations do not advance.
func (k CallKind) Advances() bool {
	return k == CallGet || k == CallCreate || k == CallSpawn || k == CallSync
}

// SFCall describes one classified call.
type SFCall struct {
	Kind CallKind
	// Recv is the Task-typed receiver expression (nil for GetTyped,
	// whose task is the first argument).
	Recv ast.Expr
	// Handle is the future-handle argument for CallGet, nil otherwise.
	Handle ast.Expr
	// Fn is the closure argument for CallCreate/CallSpawn when it is a
	// literal, nil otherwise.
	Fn *ast.FuncLit
}

// ClassifyCall resolves a call expression against the Task API.
func ClassifyCall(info *types.Info, call *ast.CallExpr) (SFCall, bool) {
	// sforder.GetTyped[T](t, h): a generic package function.
	fun := call.Fun
	if idx, ok := fun.(*ast.IndexExpr); ok {
		fun = idx.X
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if obj.Name() == "GetTyped" && obj.Pkg() != nil && sfPackage(obj.Pkg().Path()) && len(call.Args) == 2 {
				return SFCall{Kind: CallGet, Handle: call.Args[1]}, true
			}
			// Method call on a Task receiver.
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && IsTaskType(sig.Recv().Type()) {
				c := SFCall{Recv: sel.X}
				switch obj.Name() {
				case "Get":
					c.Kind = CallGet
					if len(call.Args) == 1 {
						c.Handle = call.Args[0]
					}
				case "Create":
					c.Kind = CallCreate
				case "Spawn":
					c.Kind = CallSpawn
				case "Sync":
					c.Kind = CallSync
				case "Read":
					c.Kind = CallRead
				case "Write":
					c.Kind = CallWrite
				default:
					return SFCall{}, false
				}
				if c.Kind == CallCreate || c.Kind == CallSpawn {
					if len(call.Args) == 1 {
						if lit, ok := call.Args[0].(*ast.FuncLit); ok {
							c.Fn = lit
						}
					}
				}
				return c, true
			}
		}
	}
	return SFCall{}, false
}

// handleVar resolves e to the local/parameter variable it names, when e
// is a plain (possibly parenthesized) identifier of Future type.
// Index expressions, selectors, and function results return nil: the
// flow-sensitive passes only track named handles.
func handleVar(info *types.Info, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || !IsFutureType(v.Type()) {
		return nil
	}
	return v
}

// funcScope is one analyzed function body: a declaration or a literal.
type funcScope struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
	name string
}

// functionsOf enumerates every function body in the file, literals
// included, outermost first.
func functionsOf(f *ast.File) []funcScope {
	var out []funcScope
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcScope{decl: fn, body: fn.Body, name: fn.Name.Name})
			}
		case *ast.FuncLit:
			out = append(out, funcScope{lit: fn, body: fn.Body, name: "func literal"})
		}
		return true
	})
	return out
}

// inspectShallow walks the subtree rooted at n but does not descend
// into function literals (their bodies are separate analysis scopes).
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return visit(m)
	})
}

// writeTarget unwraps an assignment left-hand side to the base
// identifier being (directly or through an index/selector/deref chain)
// written.
func writeTarget(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its variable object.
func objOf(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// TaskParamOf returns fn's Task-typed parameter variable, if any. The
// instrumenter uses it to pick the receiver for injected annotations.
func TaskParamOf(info *types.Info, fn *ast.FuncLit) *types.Var {
	sig, ok := info.Types[fn].Type.(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if v := sig.Params().At(i); IsTaskType(v.Type()) {
			return v
		}
	}
	return nil
}

package analysis

// SF005 uninstrumentable-operation: a memory operation in task-scoped
// code that the sfinstr rewriter cannot attribute to a shadow address —
// map element accesses (no address to take), accesses through
// unsafe.Pointer (type-based attribution defeated), values unboxed from
// interfaces (the copy's address does not name the shared cell), and
// reflect-based mutation. sfinstr silently skips such operations at
// rewrite time; this pass surfaces the lost coverage in analysis mode,
// so "the instrumented binary reported no races" is never mistaken for
// "these operations were checked". The pass stays silent when:
//
//   - the operation is strand-local per the locality pre-pass (a
//     skipped op one strand can reach cannot hide a race);
//   - the function already carries hand annotations (the author is
//     annotating; sfinstr coverage is moot there), mirroring SF003;
//   - the closure's Task escapes into an ordinary call (annotation may
//     happen interprocedurally), mirroring SF003.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func checkUninstrumentable(p *Package, f *ast.File, report reporter) {
	loc := ComputeLocality(p.Info, p.Types, f)
	for _, fs := range functionsOf(f) {
		param := scopeTaskParam(p, fs)
		if param == nil {
			continue // no Task in scope: sfinstr does not rewrite here
		}
		if hasAnnotations(p.Info, fs.body) {
			continue
		}
		if taskEscapesIn(p.Info, fs.body, param) {
			continue
		}
		scanUninstrumentable(p, loc, fs.body, report)
	}
}

// scopeTaskParam returns the scope's own Task-typed parameter, if any.
func scopeTaskParam(p *Package, fs funcScope) *types.Var {
	if fs.lit != nil {
		return TaskParamOf(p.Info, fs.lit)
	}
	if fs.decl.Type.Params == nil {
		return nil
	}
	for _, field := range fs.decl.Type.Params.List {
		if tv, ok := p.Info.Types[field.Type]; ok && IsTaskType(tv.Type) {
			for _, name := range field.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

// taskEscapesIn generalizes the SF003 exemption to any body: the Task
// parameter used other than as the receiver of a classified API call
// may annotate interprocedurally.
func taskEscapesIn(info *types.Info, body ast.Node, param *types.Var) bool {
	uses, allowed := 0, 0
	countRecv := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && info.Uses[id] == param {
			allowed++
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == param {
			uses++
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sc, ok := ClassifyCall(info, call); ok {
				if sc.Recv != nil {
					countRecv(sc.Recv)
				} else if len(call.Args) > 0 {
					countRecv(call.Args[0]) // GetTyped(t, h)
				}
			}
		}
		return true
	})
	return uses > allowed
}

// scanUninstrumentable flags unattributable shared memory ops in one
// scope (nested literals excluded — they are scopes of their own).
func scanUninstrumentable(p *Package, loc *Locality, body ast.Node, report reporter) {
	var flagged []ast.Node // suppress nested re-reports inside a flagged op
	within := func(n ast.Node) bool {
		for _, fl := range flagged {
			if n.Pos() >= fl.Pos() && n.End() <= fl.End() {
				return true
			}
		}
		return false
	}
	seen := map[token.Pos]bool{}
	flag := func(n ast.Node, format string, args ...any) {
		if within(n) || seen[n.Pos()] {
			return
		}
		seen[n.Pos()] = true
		flagged = append(flagged, n)
		report(n.Pos(), "SF005", format, args...)
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if IsReflectMutation(p.Info, x) {
				flag(x, "reflect-based memory operation: sfinstr cannot attribute a shadow address, so this access stays invisible to the detector")
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			e := n.(ast.Expr)
			res := AttributeAddr(p.Info, e)
			if !res.Surfaced() || !SharedOp(p.Info, loc, e) {
				return true
			}
			flag(n, "shared memory operation sfinstr cannot attribute (%s): it is skipped at rewrite time and stays invisible to the detector", res)
		}
		return true
	})
}

package analysis

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// writeTree lays out a throwaway module for loader tests.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadRespectsBuildTags: a file excluded by //go:build must be
// neither parsed nor type-checked — it references an undefined symbol
// that would otherwise fail the load. Same for a GOOS filename suffix
// that cannot match the host.
func TestLoadRespectsBuildTags(t *testing.T) {
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	root := writeTree(t, map[string]string{
		"go.mod":                       "module tagmod\n\ngo 1.22\n",
		"pkg/ok.go":                    "package pkg\n\nfunc OK() int { return 1 }\n",
		"pkg/bad.go":                   "//go:build sfinstr_never_set\n\npackage pkg\n\nvar _ = undefinedSymbol\n",
		"pkg/osbad_" + otherOS + ".go": "package pkg\n\nvar _ = alsoUndefined\n",
	})
	pkgs, err := Load(root, []string{"./pkg"}, false)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].TypeErrors) > 0 {
		t.Fatalf("constrained-out files leaked into the type check: %v", pkgs[0].TypeErrors)
	}
	if len(pkgs[0].Files) != 1 {
		t.Fatalf("parsed %d files, want 1 (ok.go only)", len(pkgs[0].Files))
	}
}

// TestLoadTestFileConsistency: a directory whose only Go files are
// tests is invisible without includeTests and matched with it — for
// direct patterns and wildcard walks alike.
func TestLoadTestFileConsistency(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                 "module testmod\n\ngo 1.22\n",
		"lib/lib.go":             "package lib\n\nfunc Lib() {}\n",
		"onlytests/x_test.go":    "package onlytests\n\nimport \"testing\"\n\nfunc TestX(t *testing.T) {}\n",
		"lib/deeper/lib_test.go": "package deeper\n\nimport \"testing\"\n\nfunc TestY(t *testing.T) {}\n",
	})

	countDirs := func(pkgs []*Package) map[string]bool {
		out := map[string]bool{}
		for _, p := range pkgs {
			rel, _ := filepath.Rel(root, p.Dir)
			out[filepath.ToSlash(rel)] = true
		}
		return out
	}

	pkgs, err := Load(root, []string{"./..."}, false)
	if err != nil {
		t.Fatalf("Load without tests: %v", err)
	}
	dirs := countDirs(pkgs)
	if dirs["onlytests"] || dirs["lib/deeper"] {
		t.Errorf("test-only directories matched without includeTests: %v", dirs)
	}

	pkgs, err = Load(root, []string{"./..."}, true)
	if err != nil {
		t.Fatalf("Load with tests: %v", err)
	}
	dirs = countDirs(pkgs)
	if !dirs["onlytests"] || !dirs["lib/deeper"] {
		t.Errorf("test-only directories missed with includeTests: %v", dirs)
	}

	if _, err := Load(root, []string{"./onlytests"}, false); err == nil {
		t.Errorf("direct pattern on a test-only directory succeeded without includeTests")
	}
	if _, err := Load(root, []string{"./onlytests"}, true); err != nil {
		t.Errorf("direct pattern on a test-only directory failed with includeTests: %v", err)
	}
}

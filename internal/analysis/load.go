package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the package's import path within the module (or the
	// directory path for packages outside it).
	Path string
	// Dir is the absolute directory holding the package's files.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds the type-checker's soft errors; a package with
	// type errors is returned (analysis may still be partially useful)
	// but callers should surface them.
	TypeErrors []error
}

// loader resolves and type-checks packages with the standard library
// only: module-internal import paths are mapped onto directories under
// the module root and loaded recursively, and everything else is
// resolved through go/importer's source importer (which parses GOROOT).
// This deliberately avoids golang.org/x/tools/go/packages to keep the
// analyzer dependency-free.
type loader struct {
	fset         *token.FileSet
	root         string // module root directory (absolute)
	modPath      string // module path from go.mod
	includeTests bool
	std          types.ImporterFrom
	cache        map[string]*loadEntry // by absolute package dir
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// Load expands the given package patterns relative to baseDir and
// returns the matched packages, parsed and type-checked. Patterns may
// be filesystem paths ("./...", "./examples/pipeline", "."), module
// import paths ("sforder/internal/sched"), or either form with a
// trailing "/..." wildcard. Test files are excluded unless includeTests
// is set — consistently: a directory whose only Go files are tests is
// still matched under includeTests, wildcard walks included. Files
// excluded by build constraints ("//go:build" lines and _GOOS/_GOARCH
// filename suffixes, evaluated for the host configuration like the go
// tool would) are skipped rather than parsed, so a constrained-out
// file can neither break type-checking nor be rewritten by the
// instrumenter into a build it was never part of. testdata, vendor,
// hidden, and underscore directories are never walked.
func Load(baseDir string, patterns []string, includeTests bool) ([]*Package, error) {
	absBase, err := filepath.Abs(baseDir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(absBase)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:         token.NewFileSet(),
		root:         root,
		modPath:      modPath,
		includeTests: includeTests,
		cache:        map[string]*loadEntry{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		dir := l.resolvePattern(pat, absBase)
		if recursive {
			walkGoDirs(dir, includeTests, add)
		} else if hasGoFiles(dir, includeTests) {
			add(dir)
		} else {
			return nil, fmt.Errorf("analysis: no Go files in %s (pattern %q)", dir, pat)
		}
	}

	var pkgs []*Package
	for _, d := range dirs {
		p, err := l.loadDir(d)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", d, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// resolvePattern maps one non-wildcard pattern to a directory.
func (l *loader) resolvePattern(pat, base string) string {
	switch {
	case pat == ".":
		return base
	case pat == l.modPath:
		return l.root
	case strings.HasPrefix(pat, l.modPath+"/"):
		return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, l.modPath+"/")))
	case filepath.IsAbs(pat):
		return pat
	default:
		return filepath.Join(base, filepath.FromSlash(pat))
	}
}

// ModuleInfo reports the root directory and module path of the Go
// module enclosing dir. The instrumenter uses it to reproduce a staged
// package at its module-relative location and point the staged go.mod's
// replace directive back at the source module.
func ModuleInfo(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	return findModule(abs)
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func walkGoDirs(root string, includeTests bool, add func(string)) {
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			if hasGoFiles(path, includeTests) {
				add(path)
			}
		}
		return nil
	})
}

func hasGoFiles(dir string, includeTests bool) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && includeFile(dir, e.Name(), includeTests) {
			return true
		}
	}
	return false
}

// includeFile decides whether one file participates in the package the
// way `go build` (plus -tests) would: .go extension, not hidden or
// underscore-prefixed, the _test.go rule, and the build constraints for
// the host GOOS/GOARCH ("//go:build" lines and filename suffixes, via
// go/build's matcher).
func includeFile(dir, name string, includeTests bool) bool {
	if !strings.HasSuffix(name, ".go") ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return false
	}
	if !includeTests && strings.HasSuffix(name, "_test.go") {
		return false
	}
	match, err := build.Default.MatchFile(dir, name)
	return err == nil && match
}

// loadDir parses and type-checks the package in dir (memoized).
func (l *loader) loadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if e, ok := l.cache[dir]; ok {
		if e.loading {
			return nil, fmt.Errorf("import cycle through %s", dir)
		}
		return e.pkg, e.err
	}
	e := &loadEntry{loading: true}
	l.cache[dir] = e
	e.pkg, e.err = l.parseAndCheck(dir)
	e.loading = false
	return e.pkg, e.err
}

func (l *loader) parseAndCheck(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		if ent.IsDir() || !includeFile(dir, ent.Name(), l.includeTests) {
			continue
		}
		names = append(names, ent.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files")
	}

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		base := f.Name.Name
		isTest := strings.HasSuffix(name, "_test.go")
		if pkgName == "" && !isTest {
			pkgName = base
		}
		// Skip external test packages (package foo_test): they would
		// need a second type-check universe.
		if pkgName != "" && base != pkgName {
			continue
		}
		files = append(files, f)
	}
	if pkgName == "" && len(files) > 0 {
		pkgName = files[0].Name.Name
	}

	pkg := &Package{
		Path: l.importPathFor(dir),
		Dir:  dir,
		Fset: l.fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
		Files: files,
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(pkg.Path, l.fset, files, pkg.Info)
	return pkg, nil
}

// importPathFor derives the module-relative import path of dir.
func (l *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from source under the module root; everything else goes to the
// standard library's source importer.
func (l *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := l.root
		if path != l.modPath {
			dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
		}
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("package %s has type errors: %v", path, p.TypeErrors[0])
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

package om

import (
	"testing"
	"unsafe"
)

// TestAccountingSizes pins the memory-accounting sizes to the real
// struct layouts. The old hand-written constants (itemSize=24,
// bucketSize=64) had drifted from the structs they were supposed to
// describe; the sizes are now derived with unsafe.Sizeof and this test
// both re-derives them and pins the expected 64-bit values so that
// accidental struct growth shows up as a failed test, not as a silently
// wrong MemBytes.
func TestAccountingSizes(t *testing.T) {
	if itemSize != int(unsafe.Sizeof(Item{})) {
		t.Errorf("itemSize %d != sizeof(Item) %d", itemSize, unsafe.Sizeof(Item{}))
	}
	if bucketSize != int(unsafe.Sizeof(bucket{})) {
		t.Errorf("bucketSize %d != sizeof(bucket) %d", bucketSize, unsafe.Sizeof(bucket{}))
	}
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("expected values below are for 64-bit platforms")
	}
	// Item: bucket pointer (8) + label (8) + slot (4, padded to 8).
	if itemSize != 24 {
		t.Errorf("Item grew: %d bytes, expected 24", itemSize)
	}
	// bucket: label (8) + prev/next (16) + mutex (8) + slice header (24).
	if bucketSize != 56 {
		t.Errorf("bucket grew: %d bytes, expected 56", bucketSize)
	}
}

package om

// CheckInvariants exposes the internal consistency checker to tests.
func (l *List) CheckInvariants() error { return l.checkInvariants() }

// SetLabelSpaceForTest shrinks the top-level label space so tests can
// drive exhaustion and escalation with thousands of inserts instead of
// the ~2^61 buckets the production constants would require. Must be
// called before the first insert.
func (l *List) SetLabelSpaceForTest(soft, hard uint64) {
	l.maint.Lock()
	defer l.maint.Unlock()
	l.softBound = soft
	l.hardBound = hard
	l.bound = soft
}

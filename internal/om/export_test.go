package om

// CheckInvariants exposes the internal consistency checker to tests.
func (l *List) CheckInvariants() error { return l.checkInvariants() }

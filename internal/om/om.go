// Package om implements the order-maintenance (OM) data structure used by
// the WSP-Order and SF-Order reachability components: a total order of
// items supporting InsertAfter and constant-time order queries
// (Dietz–Sleator list labeling, two-level variant).
//
// SF-Order (like WSP-Order before it) keeps dag nodes in two OM lists —
// the English (left-to-right DFS) and Hebrew (right-to-left DFS) orders of
// the pseudo-SP-dag — and decides series-parallel relationships by
// comparing an item's position in both lists.
//
// # Concurrency
//
// The original WSP-Order obtains amortized O(1) queries under parallel
// execution through specialized work-stealing runtime support that
// coordinates query/rebalance interleavings. This implementation obtains
// the same interface guarantees with a seqlock: queries are lock-free
// optimistic reads of atomic labels, retried on the (rare) relabelings;
// inserts are serialized by a per-list mutex. Queries therefore stay
// constant time in the common case while inserts — which happen once per
// dag node, not once per memory access — pay the serialization. DESIGN.md
// documents this substitution.
package om

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"sforder/internal/obsv"
)

const (
	// bucketCap is the maximum number of items per bottom-level bucket
	// before it splits.
	bucketCap = 64
	// itemSpan is the spacing used when a bucket's items are relabeled
	// evenly. bucketCap*itemSpan must not overflow uint64.
	itemSpan = uint64(1) << 56
	// topSpace is the exclusive upper bound of top-level (bucket) labels.
	topSpace = uint64(1) << 62
)

// Item is a position in a List. Items are created by the List insert
// methods and compared with Precedes. An Item is immutable from the
// caller's perspective; its label fields are managed by the list.
type Item struct {
	bucket atomic.Pointer[bucket]
	label  atomic.Uint64
}

type bucket struct {
	label      atomic.Uint64
	prev, next *bucket
	items      []*Item // ordered by label; accessed only under List.mu
}

// List is an order-maintenance list. The zero value is not usable; create
// lists with NewList. Concurrent Precedes queries may run alongside
// inserts; inserts are mutually serialized.
type List struct {
	mu      sync.Mutex
	version atomic.Uint64 // seqlock: odd while labels are being rewritten
	head    *bucket
	tail    *bucket
	size    int

	splits    int
	relabels  int // bucket-internal relabelings
	renumbers int // top-level renumberings (local or global)
}

// NewList returns an empty list.
func NewList() *List { return &List{} }

// Len returns the number of items in the list.
func (l *List) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats returns maintenance counters: bucket splits, bucket-internal
// relabelings, and top-level renumberings. Used by tests and the
// experiment harness to confirm rebalancing stays rare.
func (l *List) Stats() (splits, relabels, renumbers int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.splits, l.relabels, l.renumbers
}

// RegisterStats publishes the list's maintenance counters, size, and
// memory estimate on r under prefix (e.g. "om.english"). The gauges take
// the insert lock when read, so snapshots are consistent but should not
// be taken from a hot path.
func (l *List) RegisterStats(r *obsv.Registry, prefix string) {
	r.RegisterFunc(prefix+".splits", func() int64 {
		s, _, _ := l.Stats()
		return int64(s)
	})
	r.RegisterFunc(prefix+".relabels", func() int64 {
		_, rl, _ := l.Stats()
		return int64(rl)
	})
	r.RegisterFunc(prefix+".renumbers", func() int64 {
		_, _, rn := l.Stats()
		return int64(rn)
	})
	r.RegisterFunc(prefix+".items", func() int64 { return int64(l.Len()) })
	r.RegisterFunc(prefix+".mem_bytes", func() int64 { return int64(l.MemBytes()) })
}

// itemSize and bucketSize are the real struct sizes, derived rather than
// hard-coded so the Figure 5 numbers cannot drift as the structs evolve
// (a test pins them to the expected values).
var (
	itemSize   = int(unsafe.Sizeof(Item{}))
	bucketSize = int(unsafe.Sizeof(bucket{}))
)

// MemBytes estimates the heap footprint of the list (items + buckets) in
// bytes, for the Figure 5 memory-accounting harness.
func (l *List) MemBytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0
	for b := l.head; b != nil; b = b.next {
		total += bucketSize + 8*cap(b.items)
	}
	return total + itemSize*l.size
}

// InsertFirst inserts an item at the head of an empty list and returns
// it. It panics if the list is non-empty: all subsequent positions must be
// created relative to existing ones so the total order is well defined.
func (l *List) InsertFirst() *Item {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.size != 0 {
		panic("om: InsertFirst on non-empty list")
	}
	b := &bucket{}
	b.label.Store(topSpace / 2)
	l.head, l.tail = b, b
	it := &Item{}
	it.label.Store(itemSpan)
	it.bucket.Store(b)
	b.items = append(b.items, it)
	l.size = 1
	return it
}

// InsertAfter inserts a new item immediately after x and returns it.
func (l *List) InsertAfter(x *Item) *Item {
	return l.InsertAfterN(x, 1)[0]
}

// InsertAfterN atomically inserts n new items immediately after x, in the
// order returned (result[0] directly follows x). The batch form exists
// because a spawn event must place the child strand, the continuation
// strand, and possibly the sync placeholder in one step, with no other
// insert landing between them.
func (l *List) InsertAfterN(x *Item, n int) []*Item {
	if n <= 0 {
		panic("om: InsertAfterN with n <= 0")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Item, n)
	prev := x
	for i := range out {
		out[i] = l.insertAfterLocked(prev)
		prev = out[i]
	}
	return out
}

// insertAfterLocked inserts one item after x. Caller holds l.mu.
func (l *List) insertAfterLocked(x *Item) *Item {
	b := x.bucket.Load()
	idx := indexOf(b.items, x)
	if idx < 0 {
		panic("om: item not found in its bucket")
	}
	if len(b.items) >= bucketCap {
		b = l.split(b, &idx, x)
	}
	// Compute a label strictly between x and its in-bucket successor.
	lo := x.label.Load()
	hi := uint64(0) // exclusive sentinel meaning "top of label space"
	if idx+1 < len(b.items) {
		hi = b.items[idx+1].label.Load()
	}
	lab, ok := mid(lo, hi)
	if !ok {
		l.relabelBucket(b)
		idx = indexOf(b.items, x)
		lo = x.label.Load()
		hi = 0
		if idx+1 < len(b.items) {
			hi = b.items[idx+1].label.Load()
		}
		lab, ok = mid(lo, hi)
		if !ok {
			panic("om: no label room after bucket relabel")
		}
	}
	it := &Item{}
	it.label.Store(lab)
	it.bucket.Store(b)
	b.items = append(b.items, nil)
	copy(b.items[idx+2:], b.items[idx+1:])
	b.items[idx+1] = it
	l.size++
	return it
}

// mid returns a label strictly between lo and hi (hi==0 means the top of
// the label space). ok is false when no integer fits.
func mid(lo, hi uint64) (uint64, bool) {
	if hi == 0 {
		// Leave headroom by stepping a full span when possible.
		if lo <= ^uint64(0)-itemSpan {
			return lo + itemSpan, true
		}
		hi = ^uint64(0)
	}
	if hi-lo < 2 {
		return 0, false
	}
	return lo + (hi-lo)/2, true
}

func indexOf(items []*Item, x *Item) int {
	for i, it := range items {
		if it == x {
			return i
		}
	}
	return -1
}

// split divides bucket b in two, keeping the first half in b and moving
// the rest to a fresh bucket placed immediately after b in the top-level
// order. idx is updated (and the containing bucket returned) so that item
// x remains addressable by the caller.
func (l *List) split(b *bucket, idx *int, x *Item) *bucket {
	l.splits++
	nb := &bucket{prev: b, next: b.next}
	if b.next != nil {
		b.next.prev = nb
	} else {
		l.tail = nb
	}
	b.next = nb

	l.beginWrite()
	half := len(b.items) / 2
	nb.items = append(nb.items, b.items[half:]...)
	b.items = b.items[:half]
	l.assignTopLabel(nb)
	relabelItems(b)
	relabelItems(nb)
	for _, it := range nb.items {
		it.bucket.Store(nb)
	}
	l.endWrite()

	if *idx >= half {
		*idx -= half
		return nb
	}
	_ = x
	return b
}

// relabelBucket rewrites all item labels in b with even spacing.
func (l *List) relabelBucket(b *bucket) {
	l.relabels++
	l.beginWrite()
	relabelItems(b)
	l.endWrite()
}

func relabelItems(b *bucket) {
	for i, it := range b.items {
		it.label.Store(uint64(i+1) * itemSpan)
	}
}

// assignTopLabel gives nb (already linked after nb.prev) a top-level
// label strictly between its neighbours, renumbering a region of the
// top-level order when the local gap is exhausted. Caller holds l.mu and
// has already called beginWrite.
func (l *List) assignTopLabel(nb *bucket) {
	lo := nb.prev.label.Load()
	hi := topSpace
	if nb.next != nil {
		hi = nb.next.label.Load()
	}
	if hi-lo >= 2 {
		nb.label.Store(lo + (hi-lo)/2)
		return
	}
	l.renumberAround(nb.prev)
	lo = nb.prev.label.Load()
	hi = topSpace
	if nb.next != nil {
		hi = nb.next.label.Load()
	}
	if hi-lo < 2 {
		panic("om: top-level renumbering failed to open a gap")
	}
	nb.label.Store(lo + (hi-lo)/2)
}

// renumberAround implements prefix-range renumbering (the classic list
// labeling rebalance): find the smallest power-of-two label range around
// pivot whose occupancy is at most half its capacity, then spread the
// buckets in that range evenly across it. Falls back to a global
// renumbering across the whole label space.
func (l *List) renumberAround(pivot *bucket) {
	l.renumbers++
	p := pivot.label.Load()
	for j := uint(2); j < 62; j++ {
		width := uint64(1) << j
		lo := p &^ (width - 1)
		hi := lo + width
		if hi > topSpace {
			break
		}
		// Collect the contiguous run of buckets whose labels lie in
		// [lo, hi). Labels are monotone along the bucket chain.
		first := pivot
		for first.prev != nil && first.prev.label.Load() >= lo {
			first = first.prev
		}
		count := 0
		for b := first; b != nil && b.label.Load() < hi; b = b.next {
			count++
		}
		if uint64(count)+1 <= width/2 {
			// Enough room: spread evenly with gap width/(count+1).
			gap := width / uint64(count+1)
			if gap >= 2 {
				lab := lo + gap
				for b := first; b != nil && count > 0; b = b.next {
					b.label.Store(lab)
					lab += gap
					count--
				}
				return
			}
		}
	}
	// Global renumber: spread every bucket across [gap, topSpace).
	n := 0
	for b := l.head; b != nil; b = b.next {
		n++
	}
	gap := topSpace / uint64(n+1)
	if gap < 2 {
		panic("om: label space exhausted")
	}
	lab := gap
	for b := l.head; b != nil; b = b.next {
		b.label.Store(lab)
		lab += gap
	}
}

func (l *List) beginWrite() {
	// Transition to odd: readers started before this will retry.
	l.version.Add(1)
}

func (l *List) endWrite() {
	l.version.Add(1)
}

// Precedes reports whether a is strictly before b in the list order.
// It is safe to call concurrently with inserts; the query retries while a
// relabeling is in flight.
func (l *List) Precedes(a, b *Item) bool {
	if a == b {
		return false
	}
	for spin := 0; ; spin++ {
		v1 := l.version.Load()
		if v1&1 == 0 {
			ba, bb := a.bucket.Load(), b.bucket.Load()
			la, lb := ba.label.Load(), bb.label.Load()
			ia, ib := a.label.Load(), b.label.Load()
			if l.version.Load() == v1 {
				if ba != bb {
					return la < lb
				}
				return ia < ib
			}
		}
		if spin > 16 {
			runtime.Gosched()
		}
	}
}

// Compare returns -1 if a precedes b, +1 if b precedes a, and 0 if they
// are the same item.
func (l *List) Compare(a, b *Item) int {
	switch {
	case a == b:
		return 0
	case l.Precedes(a, b):
		return -1
	default:
		return 1
	}
}

// Order returns the items in list order. It is intended for tests and
// debugging; it takes the insert lock.
func (l *List) Order() []*Item {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Item, 0, l.size)
	for b := l.head; b != nil; b = b.next {
		out = append(out, b.items...)
	}
	return out
}

// checkInvariants validates internal consistency (monotone labels, item
// bucket pointers, size accounting). Exposed through an exported wrapper
// in export_test.go for white-box tests.
func (l *List) checkInvariants() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	var prevTop uint64
	firstBucket := true
	for b := l.head; b != nil; b = b.next {
		if !firstBucket && b.label.Load() <= prevTop {
			return fmt.Errorf("om: bucket labels not increasing (%d after %d)", b.label.Load(), prevTop)
		}
		prevTop = b.label.Load()
		firstBucket = false
		if len(b.items) == 0 && l.size > 0 && l.head != l.tail {
			return fmt.Errorf("om: empty bucket in multi-bucket list")
		}
		var prevItem uint64
		for i, it := range b.items {
			if it.bucket.Load() != b {
				return fmt.Errorf("om: item bucket pointer stale")
			}
			if i > 0 && it.label.Load() <= prevItem {
				return fmt.Errorf("om: item labels not increasing (%d after %d)", it.label.Load(), prevItem)
			}
			prevItem = it.label.Load()
			n++
		}
		if b.next == nil && b != l.tail {
			return fmt.Errorf("om: tail pointer stale")
		}
	}
	if n != l.size {
		return fmt.Errorf("om: size %d but found %d items", l.size, n)
	}
	return nil
}

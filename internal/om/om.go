// Package om implements the order-maintenance (OM) data structure used by
// the WSP-Order and SF-Order reachability components: a total order of
// items supporting InsertAfter and constant-time order queries
// (Dietz–Sleator list labeling, two-level variant).
//
// SF-Order (like WSP-Order before it) keeps dag nodes in two OM lists —
// the English (left-to-right DFS) and Hebrew (right-to-left DFS) orders of
// the pseudo-SP-dag — and decides series-parallel relationships by
// comparing an item's position in both lists.
//
// # Concurrency
//
// The original WSP-Order obtains amortized O(1) queries under parallel
// execution through specialized work-stealing runtime support that
// coordinates query/rebalance interleavings. This implementation obtains
// the same interface guarantees with a seqlock plus fine-grained bucket
// locking:
//
//   - Queries (Precedes) are lock-free optimistic reads of atomic labels,
//     retried on the (rare) relabelings — unchanged from the global-lock
//     design, since queries never read bucket contents, only labels and
//     the item→bucket pointer, all validated by the seqlock version.
//   - Inserts lock only the target item's bucket. Two inserts into
//     different buckets — distinct subtrees executing on distinct workers
//     — proceed fully in parallel. After locking, the inserter re-checks
//     the item's bucket pointer: items move between buckets only at a
//     split, and always into a freshly allocated bucket, so observing a
//     stale pointer is detectable (no ABA) and the insert retries.
//   - Structural maintenance — bucket splits, bucket relabelings, and
//     top-level renumberings — escalates to the list-level maintenance
//     lock, which serializes maintenance against itself; individual
//     bucket locks are acquired inside it (lock order: maintenance lock,
//     then bucket locks) and the seqlock brackets every label rewrite
//     exactly as before. Item→bucket moves happen only under the
//     maintenance lock, which is what makes the escalated path's bucket
//     resolution stable.
//
// A batch insert (InsertAfterN) keeps its run adjacent against every
// concurrent insert anchored at a *different* item: the whole run is
// placed under one bucket-lock critical section (or one maintenance-lock
// section on escalation), and a concurrent insert after another anchor y
// lands immediately after y, which is never strictly between the batch's
// anchor and its first item. Concurrent inserts after the *same* anchor
// are unordered relative to each other; the tracer discipline (each item
// is extended only by the strand that owns it, and the engine orders
// events per strand) means that never happens in practice.
package om

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"sforder/internal/obsv"
)

const (
	// bucketCap is the maximum number of items per bottom-level bucket
	// before it splits. Bucket item slices are allocated at this capacity
	// up front so in-bucket inserts never pay append growth copies.
	bucketCap = 64
	// itemSpan is the spacing used when a bucket's items are relabeled
	// evenly. bucketCap*itemSpan must not overflow uint64.
	itemSpan = uint64(1) << 56
	// topSpace is the preferred exclusive upper bound of top-level
	// (bucket) labels. Renumberings normally spread buckets inside it.
	topSpace = uint64(1) << 62
	// topSpaceMax is the hard ceiling an escalated global renumbering
	// widens the top-level label space to when even a global spread
	// across topSpace cannot open gaps (adversarial dense-insert
	// patterns). Reaching a state where topSpaceMax itself is too small
	// would require 2^62 buckets — more memory than any machine has — so
	// escalation makes label exhaustion structurally unreachable.
	topSpaceMax = uint64(1) << 63
)

// Item is a position in a List. Items are created by the List insert
// methods and compared with Precedes. An Item is immutable from the
// caller's perspective; its label fields are managed by the list.
type Item struct {
	bucket atomic.Pointer[bucket]
	label  atomic.Uint64
	slot   int32 // index within bucket.items; accessed under bucket.mu
}

type bucket struct {
	label      atomic.Uint64
	prev, next *bucket // top-level links; accessed under List.maint
	mu         sync.Mutex
	items      []*Item // ordered by label; accessed under mu (cap bucketCap)
}

func newBucket() *bucket {
	return &bucket{items: make([]*Item, 0, bucketCap)}
}

// List is an order-maintenance list. The zero value is not usable; create
// lists with NewList. Concurrent Precedes queries may run alongside
// inserts; concurrent inserts into different buckets proceed in parallel.
type List struct {
	// maint is the maintenance lock: it serializes bucket splits,
	// relabelings, top-level renumberings, and any other structural
	// change (item→bucket moves, top-level links). The common-case
	// insert never takes it. Lock order: maint before bucket.mu.
	maint   sync.Mutex
	version atomic.Uint64 // seqlock: odd while labels are being rewritten
	head    *bucket       // accessed under maint
	tail    *bucket       // accessed under maint

	size    atomic.Int64
	buckets atomic.Int64

	splits      atomic.Int64 // bucket splits
	relabels    atomic.Int64 // bucket-internal relabelings
	renumbers   atomic.Int64 // top-level renumberings (local or global)
	escalations atomic.Int64 // escalated global renumbers (bound widened)

	// bound is the current exclusive upper bound for top-level labels:
	// softBound until an escalated global renumbering widens it to
	// hardBound. All three are read and written under maint only; tests
	// shrink them (SetLabelSpaceForTest) to drive exhaustion cheaply.
	bound     uint64
	softBound uint64
	hardBound uint64

	maintLocks  atomic.Int64 // insert-path maintenance-lock acquisitions
	bucketLocks atomic.Int64 // fast-path bucket-lock acquisitions
	contended   atomic.Int64 // fast-path retries + escalations

	// global forces every insert through the maintenance lock — the
	// pre-fine-grained behavior, kept for the ABL8 ablation.
	global bool
}

// NewList returns an empty list with fine-grained (per-bucket) insert
// locking.
func NewList() *List {
	return &List{bound: topSpace, softBound: topSpace, hardBound: topSpaceMax}
}

// NewListGlobalLock returns an empty list whose inserts all serialize on
// the single list-level lock — the behavior before fine-grained locking.
// Used by the ABL8 ablation and A/B tests only.
func NewListGlobalLock() *List {
	l := NewList()
	l.global = true
	return l
}

// Len returns the number of items in the list.
func (l *List) Len() int { return int(l.size.Load()) }

// Stats returns maintenance counters: bucket splits, bucket-internal
// relabelings, and top-level renumberings. Used by tests and the
// experiment harness to confirm rebalancing stays rare. Lock-free.
func (l *List) Stats() (splits, relabels, renumbers int) {
	return int(l.splits.Load()), int(l.relabels.Load()), int(l.renumbers.Load())
}

// Escalations returns how many global renumberings had to widen the
// top-level label space to the hard ceiling — the graceful replacement
// for the former "label space exhausted" panic. Lock-free.
func (l *List) Escalations() int64 { return l.escalations.Load() }

// LockAcquires returns the number of insert-path acquisitions of the
// list-level maintenance lock: every insert in global mode, only
// escalations (split/relabel/renumber and full or label-exhausted
// buckets) in fine-grained mode. The ABL8 ablation pins the ratio.
func (l *List) LockAcquires() int64 { return l.maintLocks.Load() }

// BucketLocks returns the number of fast-path bucket-lock acquisitions.
func (l *List) BucketLocks() int64 { return l.bucketLocks.Load() }

// InsertContended returns how often the fast path lost a race (anchor
// moved buckets mid-insert) or escalated to the maintenance lock.
func (l *List) InsertContended() int64 { return l.contended.Load() }

// RegisterStats publishes the list's maintenance counters, size, memory
// estimate, and locking counters on r under prefix (e.g. "om.english").
// Every gauge reads atomics only, so snapshots never contend with a hot
// run.
func (l *List) RegisterStats(r *obsv.Registry, prefix string) {
	r.RegisterFunc(prefix+".splits", func() int64 { return l.splits.Load() })
	r.RegisterFunc(prefix+".relabels", func() int64 { return l.relabels.Load() })
	r.RegisterFunc(prefix+".renumbers", func() int64 { return l.renumbers.Load() })
	r.RegisterFunc(prefix+".escalations", func() int64 { return l.escalations.Load() })
	r.RegisterFunc(prefix+".items", func() int64 { return l.size.Load() })
	r.RegisterFunc(prefix+".mem_bytes", func() int64 { return int64(l.MemBytes()) })
	r.RegisterFunc(prefix+".lock_acquires", l.LockAcquires)
	r.RegisterFunc(prefix+".bucket_locks", l.BucketLocks)
	r.RegisterFunc(prefix+".insert_contended", l.InsertContended)
}

// itemSize and bucketSize are the real struct sizes, derived rather than
// hard-coded so the Figure 5 numbers cannot drift as the structs evolve
// (a test pins them to the expected values).
var (
	itemSize   = int(unsafe.Sizeof(Item{}))
	bucketSize = int(unsafe.Sizeof(bucket{}))
)

// MemBytes estimates the heap footprint of the list (items + buckets) in
// bytes, for the Figure 5 memory-accounting harness. Every bucket's item
// slice is allocated at cap bucketCap, so the estimate is exact and
// derived from atomics alone — safe to scrape mid-run.
func (l *List) MemBytes() int {
	return int(l.buckets.Load())*(bucketSize+8*bucketCap) + itemSize*int(l.size.Load())
}

// InsertFirst inserts an item at the head of an empty list and returns
// it. It panics if the list is non-empty: all subsequent positions must be
// created relative to existing ones so the total order is well defined.
func (l *List) InsertFirst() *Item { return l.InsertFirstArena(nil) }

// InsertFirstArena is InsertFirst with the Item drawn from a (nil means
// the heap).
func (l *List) InsertFirstArena(a *ItemArena) *Item {
	l.maintLocks.Add(1)
	l.maint.Lock()
	defer l.maint.Unlock()
	if l.size.Load() != 0 {
		panic("om: InsertFirst on non-empty list")
	}
	b := newBucket()
	b.label.Store(l.bound / 2)
	l.head, l.tail = b, b
	l.buckets.Store(1)
	it := a.get()
	it.label.Store(itemSpan)
	it.bucket.Store(b)
	it.slot = 0
	b.items = append(b.items, it)
	l.size.Store(1)
	return it
}

// InsertAfter inserts a new item immediately after x and returns it.
func (l *List) InsertAfter(x *Item) *Item {
	return l.InsertAfterN(x, 1)[0]
}

// InsertAfterN atomically inserts n new items immediately after x, in the
// order returned (result[0] directly follows x). The batch form exists
// because a spawn event must place the child strand, the continuation
// strand, and possibly the sync placeholder in one step, with no other
// insert landing between them (see the package comment for the exact
// adjacency guarantee under concurrency).
func (l *List) InsertAfterN(x *Item, n int) []*Item {
	out := make([]*Item, n)
	l.InsertAfterNArena(x, nil, out)
	return out
}

// InsertAfterNArena is InsertAfterN with the new Items drawn from arena a
// (nil means the heap) and returned through out, whose length is the
// batch size. The caller-provided slice lets the hot path run without
// allocating the result.
func (l *List) InsertAfterNArena(x *Item, a *ItemArena, out []*Item) {
	n := len(out)
	if n <= 0 {
		panic("om: InsertAfterN with n <= 0")
	}
	for i := range out {
		out[i] = a.get()
	}
	if !l.global {
		for {
			r := l.tryInsertRun(x, out)
			if r == runDone {
				l.size.Add(int64(n))
				return
			}
			if r == runEscalate {
				break
			}
			// runRetry: x moved to a fresh bucket under a split; go again.
		}
		l.contended.Add(1)
	}
	l.maintLocks.Add(1)
	l.maint.Lock()
	prev := x
	for i := range out {
		l.placeAfterMaint(prev, out[i])
		prev = out[i]
	}
	l.maint.Unlock()
	l.size.Add(int64(n))
}

type runResult int

const (
	runDone runResult = iota
	runRetry
	runEscalate
)

// tryInsertRun is the fine-grained fast path: place the whole batch
// immediately after x under x's bucket lock alone. It succeeds when the
// bucket has room for the run and the label gap after x fits it; it
// reports runRetry when x moved buckets between the unlocked load and
// the lock (only a split moves items, always into a fresh bucket), and
// runEscalate when the bucket needs maintenance first.
//
// The fast path touches no existing label and no bucket label, so it
// does not bump the seqlock: a concurrent Precedes reads either a fully
// published new item (bucket and label stored before the item becomes
// reachable from the caller) or none of it.
func (l *List) tryInsertRun(x *Item, out []*Item) runResult {
	n := len(out)
	b := x.bucket.Load()
	l.bucketLocks.Add(1)
	b.mu.Lock()
	if x.bucket.Load() != b {
		b.mu.Unlock()
		l.contended.Add(1)
		return runRetry
	}
	m := len(b.items)
	if m+n > bucketCap {
		b.mu.Unlock()
		return runEscalate
	}
	idx := int(x.slot)
	lo := x.label.Load()
	hi := uint64(0) // exclusive sentinel meaning "top of label space"
	if idx+1 < m {
		hi = b.items[idx+1].label.Load()
	}
	// Pick n evenly spaced labels strictly inside (lo, hi).
	var step uint64
	if hi == 0 {
		if lo <= ^uint64(0)-uint64(n)*itemSpan {
			step = itemSpan // leave headroom by stepping full spans
		} else {
			hi = ^uint64(0)
		}
	}
	if step == 0 {
		gap := hi - lo
		if gap < uint64(n)+1 {
			b.mu.Unlock()
			return runEscalate
		}
		step = gap / uint64(n+1)
	}
	// Shift the tail once, then place the run. cap(b.items) is bucketCap,
	// so extending the slice never reallocates.
	b.items = b.items[:m+n]
	copy(b.items[idx+1+n:], b.items[idx+1:m])
	for i := idx + 1 + n; i < m+n; i++ {
		b.items[i].slot = int32(i)
	}
	lab := lo
	for i, it := range out {
		lab += step
		it.label.Store(lab)
		it.slot = int32(idx + 1 + i)
		it.bucket.Store(b)
		b.items[idx+1+i] = it
	}
	b.mu.Unlock()
	return runDone
}

// placeAfterMaint inserts the pre-allocated item it directly after x,
// splitting or relabeling x's bucket as needed. Caller holds l.maint,
// which keeps x's bucket assignment stable and serializes maintenance.
func (l *List) placeAfterMaint(x, it *Item) {
	b := x.bucket.Load()
	b.mu.Lock()
	idx := int(x.slot)
	if len(b.items) >= bucketCap {
		b, idx = l.split(b, idx)
	}
	lo := x.label.Load()
	hi := uint64(0)
	if idx+1 < len(b.items) {
		hi = b.items[idx+1].label.Load()
	}
	lab, ok := mid(lo, hi)
	if !ok {
		l.relabelBucket(b)
		lo = x.label.Load()
		hi = 0
		if idx+1 < len(b.items) {
			hi = b.items[idx+1].label.Load()
		}
		lab, ok = mid(lo, hi)
		if !ok {
			panic("om: no label room after bucket relabel")
		}
	}
	it.label.Store(lab)
	it.bucket.Store(b)
	m := len(b.items)
	b.items = b.items[:m+1]
	copy(b.items[idx+2:], b.items[idx+1:m])
	b.items[idx+1] = it
	for i := idx + 1; i <= m; i++ {
		b.items[i].slot = int32(i)
	}
	b.mu.Unlock()
}

// mid returns a label strictly between lo and hi (hi==0 means the top of
// the label space). ok is false when no integer fits.
func mid(lo, hi uint64) (uint64, bool) {
	if hi == 0 {
		// Leave headroom by stepping a full span when possible.
		if lo <= ^uint64(0)-itemSpan {
			return lo + itemSpan, true
		}
		hi = ^uint64(0)
	}
	if hi-lo < 2 {
		return 0, false
	}
	return lo + (hi-lo)/2, true
}

// split divides bucket b in two, keeping the first half in b and moving
// the rest to a fresh bucket placed immediately after b in the top-level
// order. Caller holds l.maint and b.mu, and addresses position idx in b;
// split returns the bucket now holding that position, with its lock held
// (the other half's lock released). The label rewrite — including the
// item→bucket moves — happens inside the seqlock write section, exactly
// as in the global-lock design, so concurrent Precedes reads retry
// rather than observe a half-moved item.
func (l *List) split(b *bucket, idx int) (*bucket, int) {
	l.splits.Add(1)
	nb := newBucket()
	nb.mu.Lock()
	nb.prev, nb.next = b, b.next
	if b.next != nil {
		b.next.prev = nb
	} else {
		l.tail = nb
	}
	b.next = nb
	l.buckets.Add(1)

	l.beginWrite()
	half := len(b.items) / 2
	nb.items = nb.items[:len(b.items)-half]
	copy(nb.items, b.items[half:])
	for i := half; i < len(b.items); i++ {
		b.items[i] = nil // release the moved items' old slots
	}
	b.items = b.items[:half]
	l.assignTopLabel(nb)
	relabelItems(b)
	relabelItems(nb)
	for _, it := range nb.items {
		it.bucket.Store(nb)
	}
	l.endWrite()

	if idx >= half {
		b.mu.Unlock()
		return nb, idx - half
	}
	nb.mu.Unlock()
	return b, idx
}

// relabelBucket rewrites all item labels in b with even spacing. Caller
// holds l.maint and b.mu.
func (l *List) relabelBucket(b *bucket) {
	l.relabels.Add(1)
	l.beginWrite()
	relabelItems(b)
	l.endWrite()
}

func relabelItems(b *bucket) {
	for i, it := range b.items {
		it.label.Store(uint64(i+1) * itemSpan)
		it.slot = int32(i)
	}
}

// assignTopLabel gives nb (already linked after nb.prev) a top-level
// label strictly between its neighbours, renumbering a region of the
// top-level order when the local gap is exhausted. Caller holds l.maint
// and has already called beginWrite. Inserters never read bucket labels,
// so no bucket locks are needed beyond the split's own.
func (l *List) assignTopLabel(nb *bucket) {
	lo := nb.prev.label.Load()
	hi := l.bound
	if nb.next != nil {
		hi = nb.next.label.Load()
	}
	if hi-lo >= 2 {
		nb.label.Store(lo + (hi-lo)/2)
		return
	}
	l.renumberAround(nb.prev)
	lo = nb.prev.label.Load()
	hi = l.bound
	if nb.next != nil {
		hi = nb.next.label.Load()
	}
	if hi-lo < 2 {
		panic("om: top-level renumbering failed to open a gap")
	}
	nb.label.Store(lo + (hi-lo)/2)
}

// renumberAround implements prefix-range renumbering (the classic list
// labeling rebalance): find the smallest power-of-two label range around
// pivot whose occupancy is at most half its capacity, then spread the
// buckets in that range evenly across it. Falls back to a global
// renumbering across the whole label space; when even that cannot open
// gaps — every label in [0, bound) is packed — it escalates by widening
// the bound to the hard ceiling and spreading across the widened space
// instead of giving up. (Until PR 7 this last case was a
// `panic("om: label space exhausted")`.) The caller holds l.maint and
// has already entered the seqlock write section, so concurrent Precedes
// readers re-validate against the rewritten labels exactly as for any
// other renumbering.
func (l *List) renumberAround(pivot *bucket) {
	l.renumbers.Add(1)
	p := pivot.label.Load()
	for j := uint(2); j < 63; j++ {
		width := uint64(1) << j
		lo := p &^ (width - 1)
		hi := lo + width
		if hi > l.bound {
			break
		}
		// Collect the contiguous run of buckets whose labels lie in
		// [lo, hi). Labels are monotone along the bucket chain.
		first := pivot
		for first.prev != nil && first.prev.label.Load() >= lo {
			first = first.prev
		}
		count := 0
		for b := first; b != nil && b.label.Load() < hi; b = b.next {
			count++
		}
		if uint64(count)+1 <= width/2 {
			// Enough room: spread evenly with gap width/(count+1).
			gap := width / uint64(count+1)
			if gap >= 2 {
				lab := lo + gap
				for b := first; b != nil && count > 0; b = b.next {
					b.label.Store(lab)
					lab += gap
					count--
				}
				return
			}
		}
	}
	// Global renumber: spread every bucket across [gap, l.bound).
	n := 0
	for b := l.head; b != nil; b = b.next {
		n++
	}
	gap := l.bound / uint64(n+1)
	if gap < 2 && l.bound < l.hardBound {
		// Escalated global renumber: the configured space is packed past
		// half occupancy everywhere. Widen the bound to the hard ceiling
		// — labels are ordinals, not addresses, so nothing but this
		// renumbering has to know — and spread across the wider space.
		l.escalations.Add(1)
		l.renumbers.Add(1)
		l.bound = l.hardBound
		gap = l.bound / uint64(n+1)
	}
	if gap < 2 {
		// n+1 > hardBound/2 = 2^62 buckets: structurally unreachable
		// (each bucket holds ≥ bucketCap/2 items and hundreds of bytes).
		panic("om: top-level label space exhausted beyond the hard ceiling")
	}
	lab := gap
	for b := l.head; b != nil; b = b.next {
		b.label.Store(lab)
		lab += gap
	}
}

func (l *List) beginWrite() {
	// Transition to odd: readers started before this will retry.
	l.version.Add(1)
}

func (l *List) endWrite() {
	l.version.Add(1)
}

// Precedes reports whether a is strictly before b in the list order.
// It is safe to call concurrently with inserts; the query retries while a
// relabeling is in flight.
func (l *List) Precedes(a, b *Item) bool {
	if a == b {
		return false
	}
	for spin := 0; ; spin++ {
		v1 := l.version.Load()
		if v1&1 == 0 {
			ba, bb := a.bucket.Load(), b.bucket.Load()
			la, lb := ba.label.Load(), bb.label.Load()
			ia, ib := a.label.Load(), b.label.Load()
			if l.version.Load() == v1 {
				if ba != bb {
					return la < lb
				}
				return ia < ib
			}
		}
		if spin > 16 {
			runtime.Gosched()
		}
	}
}

// Compare returns -1 if a precedes b, +1 if b precedes a, and 0 if they
// are the same item.
func (l *List) Compare(a, b *Item) int {
	switch {
	case a == b:
		return 0
	case l.Precedes(a, b):
		return -1
	default:
		return 1
	}
}

// Order returns the items in list order. It is intended for tests and
// debugging on quiescent lists; it takes the maintenance lock and each
// bucket lock in turn.
func (l *List) Order() []*Item {
	l.maint.Lock()
	defer l.maint.Unlock()
	out := make([]*Item, 0, l.size.Load())
	for b := l.head; b != nil; b = b.next {
		b.mu.Lock()
		out = append(out, b.items...)
		b.mu.Unlock()
	}
	return out
}

// checkInvariants validates internal consistency (monotone labels, item
// bucket pointers and slots, size accounting). Exposed through an
// exported wrapper in export_test.go for white-box tests; call on a
// quiescent list.
func (l *List) checkInvariants() error {
	l.maint.Lock()
	defer l.maint.Unlock()
	n := 0
	nb := int64(0)
	var prevTop uint64
	firstBucket := true
	for b := l.head; b != nil; b = b.next {
		b.mu.Lock()
		err := func() error {
			if !firstBucket && b.label.Load() <= prevTop {
				return fmt.Errorf("om: bucket labels not increasing (%d after %d)", b.label.Load(), prevTop)
			}
			prevTop = b.label.Load()
			firstBucket = false
			if cap(b.items) != bucketCap {
				return fmt.Errorf("om: bucket items cap %d, want %d", cap(b.items), bucketCap)
			}
			if len(b.items) == 0 && l.size.Load() > 0 && l.head != l.tail {
				return fmt.Errorf("om: empty bucket in multi-bucket list")
			}
			var prevItem uint64
			for i, it := range b.items {
				if it.bucket.Load() != b {
					return fmt.Errorf("om: item bucket pointer stale")
				}
				if int(it.slot) != i {
					return fmt.Errorf("om: item slot %d at index %d", it.slot, i)
				}
				if i > 0 && it.label.Load() <= prevItem {
					return fmt.Errorf("om: item labels not increasing (%d after %d)", it.label.Load(), prevItem)
				}
				prevItem = it.label.Load()
				n++
			}
			if b.next == nil && b != l.tail {
				return fmt.Errorf("om: tail pointer stale")
			}
			return nil
		}()
		b.mu.Unlock()
		if err != nil {
			return err
		}
		nb++
	}
	if int64(n) != l.size.Load() {
		return fmt.Errorf("om: size %d but found %d items", l.size.Load(), n)
	}
	if nb != l.buckets.Load() {
		return fmt.Errorf("om: bucket count %d but found %d buckets", l.buckets.Load(), nb)
	}
	return nil
}

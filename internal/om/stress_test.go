package om_test

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"sforder/internal/om"
)

// TestConcurrentPrecedesUnderInsertStorm hammers the seqlock: reader
// goroutines run Precedes continuously while writer goroutines insert
// storms of items, forcing bucket splits, relabelings, and top-level
// renumberings underneath the optimistic reads. Each writer grows a
// private chain by repeatedly inserting after its own last item — the
// end-append pattern halves top-level label gaps geometrically, which
// is exactly the workload that exhausts gaps and triggers renumbers —
// so within a chain the ground truth is trivially i < j ⟺ chain[i]
// precedes chain[j], checkable while the storm is still running.
//
// Run under -race this doubles as a memory-model audit of the
// version/label atomics (the CI race job includes this package).
func TestConcurrentPrecedesUnderInsertStorm(t *testing.T) {
	const (
		writers         = 4
		insertsPerChain = 3000
		readers         = 4
	)
	l := om.NewList()
	root := l.InsertFirst()

	chains := make([][]*om.Item, writers)
	published := make([]atomic.Int64, writers)
	for w := range chains {
		chains[w] = make([]*om.Item, insertsPerChain)
		chains[w][0] = l.InsertAfter(root)
		published[w].Store(1)
	}

	var writerWG, readerWG sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			chain := chains[w]
			for i := 1; i < insertsPerChain; i++ {
				chain[i] = l.InsertAfter(chain[i-1])
				// Release-store: readers that observe the new length
				// also observe the chain slot written above.
				published[w].Store(int64(i + 1))
			}
		}(w)
	}

	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(r + 1)))
			for {
				select {
				case <-done:
					return
				default:
				}
				w := rng.Intn(writers)
				n := int(published[w].Load())
				if n < 2 {
					runtime.Gosched()
					continue
				}
				i, j := rng.Intn(n), rng.Intn(n)
				if i == j {
					continue
				}
				if i > j {
					i, j = j, i
				}
				a, b := chains[w][i], chains[w][j]
				if !l.Precedes(a, b) {
					errs <- "Precedes(chain[i], chain[j]) = false for i < j"
					return
				}
				if l.Precedes(b, a) {
					errs <- "Precedes(chain[j], chain[i]) = true for i < j"
					return
				}
				if !l.Precedes(root, b) {
					errs <- "Precedes(root, item) = false"
					return
				}
			}
		}(r)
	}

	// Writers finish first — readers keep querying through the whole
	// storm — then the readers are released.
	writerWG.Wait()
	close(done)
	readerWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// The storm must actually have exercised the interesting machinery.
	splits, _, renumbers := l.Stats()
	if splits == 0 {
		t.Error("insert storm caused no bucket splits")
	}
	if renumbers == 0 {
		t.Error("insert storm caused no top-level renumbers")
	}
	if got, want := l.Len(), 1+writers*insertsPerChain; got != want {
		t.Errorf("Len() = %d, want %d", got, want)
	}

	// Quiescent validation: structural invariants, then the total order
	// against every chain's ground truth.
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	pos := make(map[*om.Item]int, l.Len())
	for i, it := range l.Order() {
		pos[it] = i
	}
	if pos[root] != 0 {
		t.Errorf("root at position %d", pos[root])
	}
	for w, chain := range chains {
		for i := 1; i < len(chain); i++ {
			if pos[chain[i-1]] >= pos[chain[i]] {
				t.Fatalf("writer %d: chain order violated at %d (%d >= %d)", w, i, pos[chain[i-1]], pos[chain[i]])
			}
		}
	}
}

package om_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"sforder/internal/om"
)

// TestExhaustionEscalatesInsteadOfPanicking regresses the former
// `panic("om: label space exhausted")`: an adversarial storm of inserts
// after the same anchor concentrates every new item at one point of the
// list, so top-level gaps halve until even a global renumbering over the
// (test-shrunk) label space cannot open gaps. The list must escalate —
// widen the space to the hard ceiling and renumber — rather than panic,
// and every Precedes verdict must survive the escalated renumber.
func TestExhaustionEscalatesInsteadOfPanicking(t *testing.T) {
	for _, variant := range []struct {
		name string
		mk   func() *om.List
	}{
		{"finegrained", om.NewList},
		{"globallock", om.NewListGlobalLock},
	} {
		t.Run(variant.name, func(t *testing.T) {
			l := variant.mk()
			// 2^9 soft bound: a global renumber fails once the list has
			// more than 2^8 buckets (~10k items at 64-cap buckets), so
			// 20k same-anchor inserts genuinely reach the old panic path.
			l.SetLabelSpaceForTest(1<<9, 1<<40)

			anchor := l.InsertFirst()
			const n = 20000
			items := make([]*om.Item, n)
			for i := range items {
				items[i] = l.InsertAfter(anchor)
			}

			if got := l.Escalations(); got < 1 {
				t.Fatalf("escalations = %d, want >= 1 (storm never reached the old panic path)", got)
			}
			_, _, renumbers := l.Stats()
			if renumbers < 2 {
				t.Fatalf("renumbers = %d, want >= 2 (escalation must count as a renumber)", renumbers)
			}
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("invariants after escalation: %v", err)
			}

			// Inserting after the same anchor reverses insertion order:
			// items[j] sits before items[i] in the list iff j > i.
			for _, pair := range [][2]int{{0, 1}, {0, n - 1}, {n / 2, n/2 + 1}, {17, n - 3}} {
				i, j := pair[0], pair[1]
				if !l.Precedes(items[j], items[i]) {
					t.Errorf("items[%d] should precede items[%d] after escalation", j, i)
				}
				if l.Precedes(items[i], items[j]) {
					t.Errorf("items[%d] must not precede items[%d] after escalation", i, j)
				}
			}
			for _, it := range []*om.Item{items[0], items[n/2], items[n-1]} {
				if !l.Precedes(anchor, it) {
					t.Error("anchor must precede every stormed item after escalation")
				}
			}
			ord := l.Order()
			if len(ord) != n+1 {
				t.Fatalf("Order() has %d items, want %d", len(ord), n+1)
			}
			if ord[0] != anchor {
				t.Fatal("anchor is no longer first after escalation")
			}
			for i, it := range ord[1:] {
				if it != items[n-1-i] {
					t.Fatalf("Order()[%d] out of place after escalation", i+1)
				}
			}
		})
	}
}

// TestExhaustionEscalationConcurrentReaders runs the same-anchor storm
// while reader goroutines continuously query Precedes over a prefix of
// already-placed items: the escalated global renumber rewrites every
// top-level label, and the seqlock must force readers to re-validate so
// no verdict ever inverts. Run under -race in CI.
func TestExhaustionEscalationConcurrentReaders(t *testing.T) {
	l := om.NewList()
	l.SetLabelSpaceForTest(1<<9, 1<<40)

	anchor := l.InsertFirst()
	const pre = 256
	fixed := make([]*om.Item, pre)
	for i := range fixed {
		fixed[i] = l.InsertAfter(anchor)
	}

	var stop atomic.Bool
	var bad atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for !stop.Load() {
				j := (i*7 + 13) % pre
				k := (j + 1 + i%11) % pre
				if j == k {
					continue
				}
				lo, hi := j, k
				if lo < hi {
					lo, hi = hi, lo
				}
				// Relative order of placed items never changes:
				// fixed[lo] (inserted later) precedes fixed[hi].
				if !l.Precedes(fixed[lo], fixed[hi]) || l.Precedes(fixed[hi], fixed[lo]) {
					bad.Add(1)
				}
				if !l.Precedes(anchor, fixed[j]) {
					bad.Add(1)
				}
				i++
			}
		}(r * 31)
	}

	const n = 20000
	for i := 0; i < n; i++ {
		l.InsertAfter(anchor)
	}
	stop.Store(true)
	wg.Wait()

	if got := bad.Load(); got != 0 {
		t.Fatalf("%d Precedes verdicts inverted during the escalated renumber", got)
	}
	if got := l.Escalations(); got < 1 {
		t.Fatalf("escalations = %d, want >= 1", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestProductionBoundsDoNotEscalate pins that realistic insert volumes
// never trigger escalation under the production label space: the soft
// bound only packs past half occupancy at ~2^61 buckets.
func TestProductionBoundsDoNotEscalate(t *testing.T) {
	l := om.NewList()
	anchor := l.InsertFirst()
	for i := 0; i < 50000; i++ {
		l.InsertAfter(anchor)
	}
	if got := l.Escalations(); got != 0 {
		t.Fatalf("escalations = %d under production bounds, want 0", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

package om

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// refList is a reference implementation: a plain slice kept in order.
type refList struct {
	items []*Item
}

func (r *refList) insertAfter(x *Item, it *Item) {
	if x == nil {
		r.items = append([]*Item{it}, r.items...)
		return
	}
	for i, cur := range r.items {
		if cur == x {
			r.items = append(r.items, nil)
			copy(r.items[i+2:], r.items[i+1:])
			r.items[i+1] = it
			return
		}
	}
	panic("refList: item not found")
}

func (r *refList) precedes(a, b *Item) bool {
	ia, ib := -1, -1
	for i, it := range r.items {
		if it == a {
			ia = i
		}
		if it == b {
			ib = i
		}
	}
	return ia < ib
}

func TestInsertFirstAndSingle(t *testing.T) {
	l := NewList()
	a := l.InsertFirst()
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	if l.Precedes(a, a) {
		t.Error("item precedes itself")
	}
	b := l.InsertAfter(a)
	if !l.Precedes(a, b) {
		t.Error("a should precede b")
	}
	if l.Precedes(b, a) {
		t.Error("b should not precede a")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertFirstPanicsOnNonEmpty(t *testing.T) {
	l := NewList()
	l.InsertFirst()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on second InsertFirst")
		}
	}()
	l.InsertFirst()
}

func TestInsertAfterNOrder(t *testing.T) {
	l := NewList()
	a := l.InsertFirst()
	batch := l.InsertAfterN(a, 3)
	want := []*Item{a, batch[0], batch[1], batch[2]}
	got := l.Order()
	if len(got) != len(want) {
		t.Fatalf("Order len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d", i)
		}
	}
	for i := 0; i < len(want); i++ {
		for j := 0; j < len(want); j++ {
			if got := l.Precedes(want[i], want[j]); got != (i < j) {
				t.Errorf("Precedes(%d,%d) = %v, want %v", i, j, got, i < j)
			}
		}
	}
}

func TestInsertAfterNPanicsOnZero(t *testing.T) {
	l := NewList()
	a := l.InsertFirst()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	l.InsertAfterN(a, 0)
}

// TestRandomAgainstReference inserts thousands of items at random
// positions and compares every maintained answer against the slice-based
// reference implementation.
func TestRandomAgainstReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 42} {
		rng := rand.New(rand.NewSource(seed))
		l := NewList()
		ref := &refList{}
		first := l.InsertFirst()
		ref.insertAfter(nil, first)
		for i := 0; i < 3000; i++ {
			x := ref.items[rng.Intn(len(ref.items))]
			it := l.InsertAfter(x)
			ref.insertAfter(x, it)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Check full order.
		got := l.Order()
		for i := range got {
			if got[i] != ref.items[i] {
				t.Fatalf("seed %d: order mismatch at %d", seed, i)
			}
		}
		// Spot-check Precedes on random pairs.
		for i := 0; i < 2000; i++ {
			a := ref.items[rng.Intn(len(ref.items))]
			b := ref.items[rng.Intn(len(ref.items))]
			if l.Precedes(a, b) != ref.precedes(a, b) {
				t.Fatalf("seed %d: Precedes disagrees with reference", seed)
			}
		}
	}
}

// TestAppendHeavy exercises the "always insert after the last item"
// pattern, which stresses top-of-label-space handling.
func TestAppendHeavy(t *testing.T) {
	l := NewList()
	cur := l.InsertFirst()
	items := []*Item{cur}
	for i := 0; i < 20000; i++ {
		cur = l.InsertAfter(cur)
		items = append(items, cur)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a, b := rand.Intn(len(items)), rand.Intn(len(items))
		if got := l.Precedes(items[a], items[b]); got != (a < b) {
			t.Fatalf("Precedes(%d, %d) = %v", a, b, got)
		}
	}
}

// TestInsertAlwaysAfterFirst stresses the opposite pattern: every insert
// lands immediately after the head, forcing repeated gap-halving, bucket
// relabels and splits near the front.
func TestInsertAlwaysAfterFirst(t *testing.T) {
	l := NewList()
	head := l.InsertFirst()
	var items []*Item
	for i := 0; i < 20000; i++ {
		items = append(items, l.InsertAfter(head))
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Items were prepended after head, so later inserts precede earlier.
	for i := 0; i < 1000; i++ {
		a, b := rand.Intn(len(items)), rand.Intn(len(items))
		if a == b {
			continue
		}
		if got := l.Precedes(items[a], items[b]); got != (a > b) {
			t.Fatalf("Precedes(items[%d], items[%d]) = %v", a, b, got)
		}
		if !l.Precedes(head, items[a]) {
			t.Fatal("head must precede every inserted item")
		}
	}
}

func TestCompare(t *testing.T) {
	l := NewList()
	a := l.InsertFirst()
	b := l.InsertAfter(a)
	if l.Compare(a, b) != -1 || l.Compare(b, a) != 1 || l.Compare(a, a) != 0 {
		t.Error("Compare results inconsistent")
	}
}

func TestStatsCounters(t *testing.T) {
	l := NewList()
	cur := l.InsertFirst()
	for i := 0; i < 10000; i++ {
		cur = l.InsertAfter(cur)
	}
	splits, _, _ := l.Stats()
	if splits == 0 {
		t.Error("expected at least one bucket split after 10k inserts")
	}
	if l.MemBytes() <= 0 {
		t.Error("MemBytes should be positive")
	}
}

// TestConcurrentQueries hammers Precedes from several goroutines on a
// frozen prefix of the list while the main goroutine keeps inserting,
// verifying that concurrent rebalancing never produces a wrong answer for
// already-placed item pairs.
func TestConcurrentQueries(t *testing.T) {
	l := NewList()
	cur := l.InsertFirst()
	frozen := []*Item{cur}
	for i := 0; i < 512; i++ {
		cur = l.InsertAfter(cur)
		frozen = append(frozen, cur)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := rng.Intn(len(frozen))
				b := rng.Intn(len(frozen))
				if got := l.Precedes(frozen[a], frozen[b]); got != (a < b) {
					select {
					case errs <- "concurrent Precedes returned wrong order":
					default:
					}
					return
				}
			}
		}(int64(g))
	}
	// Keep inserting at random frozen positions to force splits/relabels
	// while queries run.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		l.InsertAfter(frozen[rng.Intn(len(frozen))])
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTransitivity property: for random insert sequences, Precedes
// is a strict total order (irreflexive, antisymmetric, transitive, total).
func TestQuickTransitivity(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		l := NewList()
		items := []*Item{l.InsertFirst()}
		for _, op := range ops {
			x := items[int(op)%len(items)]
			items = append(items, l.InsertAfter(x))
		}
		n := len(items)
		if n > 24 {
			items = items[:24]
			n = 24
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				pij := l.Precedes(items[i], items[j])
				pji := l.Precedes(items[j], items[i])
				if i == j && (pij || pji) {
					return false
				}
				if i != j && pij == pji {
					return false // must be exactly one direction
				}
				for k := 0; k < n; k++ {
					if pij && l.Precedes(items[j], items[k]) && !l.Precedes(items[i], items[k]) {
						return false
					}
				}
			}
		}
		return l.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertAfterSequential(b *testing.B) {
	l := NewList()
	cur := l.InsertFirst()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur = l.InsertAfter(cur)
	}
}

func BenchmarkPrecedes(b *testing.B) {
	l := NewList()
	cur := l.InsertFirst()
	items := []*Item{cur}
	for i := 0; i < 4096; i++ {
		cur = l.InsertAfter(cur)
		items = append(items, cur)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Precedes(items[i%len(items)], items[(i*7+1)%len(items)])
	}
}

package om_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"sforder/internal/om"
)

// TestParallelDisjointInserts is the fine-grained-locking stress test:
// G goroutines insert batches after their own private anchors — after a
// prefix warm-up the anchors live in disjoint buckets, so the inserts
// contend only on splits — while concurrent readers hammer Precedes
// across split/renumber. Afterwards the total order must agree with a
// sequential replay of the same per-goroutine insert scripts, and the
// list invariants (labels, slots, size) must hold. Run under -race in
// CI.
func TestParallelDisjointInserts(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 400
	)
	l := om.NewList()
	root := l.InsertFirst()

	// Seed one anchor chain head per goroutine, serially, so the replay
	// below can reproduce the seeding deterministically.
	anchors := make([]*om.Item, goroutines)
	prev := root
	for g := range anchors {
		anchors[g] = l.InsertAfter(prev)
		prev = anchors[g]
	}

	// Each goroutine extends only its own chain: every item is the
	// insertion anchor of exactly one later insert, matching the tracer
	// discipline. Batch sizes cycle 1..3 to exercise the run fast path.
	// Published items let the readers below query a growing prefix.
	var published [goroutines]atomic.Pointer[om.Item]
	for g := range anchors {
		published[g].Store(anchors[g])
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	misorders := atomic.Int64{}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := published[rng.Intn(goroutines)].Load()
				b := published[rng.Intn(goroutines)].Load()
				// root precedes everything; a and b are each after root.
				if a != root && l.Precedes(a, root) {
					misorders.Add(1)
				}
				if a != b && l.Precedes(a, b) == l.Precedes(b, a) {
					misorders.Add(1)
				}
				runtime.Gosched()
			}
		}(int64(r + 1))
	}

	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			cur := anchors[g]
			for i := 0; i < rounds; i++ {
				batch := l.InsertAfterN(cur, 1+i%3)
				cur = batch[len(batch)-1]
				published[g].Store(cur)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if n := misorders.Load(); n != 0 {
		t.Fatalf("concurrent Precedes misordered %d times", n)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Sequential replay: the same scripts on a fresh list, goroutine
	// chains replayed one after another. Chain g's relative order must
	// match: within a chain the items were inserted tail-to-tail, so the
	// concurrent list must order each chain identically to the replay
	// (chains interleave in bucket space but each is totally ordered).
	replay := om.NewList()
	rroot := replay.InsertFirst()
	rAnchors := make([]*om.Item, goroutines)
	rprev := rroot
	for g := range rAnchors {
		rAnchors[g] = replay.InsertAfter(rprev)
		rprev = rAnchors[g]
	}
	rChains := make([][]*om.Item, goroutines)
	for g := 0; g < goroutines; g++ {
		cur := rAnchors[g]
		rChains[g] = []*om.Item{cur}
		for i := 0; i < rounds; i++ {
			batch := replay.InsertAfterN(cur, 1+i%3)
			rChains[g] = append(rChains[g], batch...)
			cur = batch[len(batch)-1]
		}
	}

	// Index the concurrent list's total order, then rebuild each chain's
	// item sequence by walking the concurrent structure the same way the
	// writers did — which we can't (we dropped the intermediate items) —
	// so instead check order properties directly: list sizes agree, and
	// every adjacent pair in the replay of a single chain appears in the
	// same relative order as the corresponding concurrent pair would.
	if l.Len() != replay.Len() {
		t.Fatalf("concurrent list has %d items, replay has %d", l.Len(), replay.Len())
	}
	for g := 0; g < goroutines; g++ {
		chain := rChains[g]
		for i := 1; i < len(chain); i++ {
			if !replay.Precedes(chain[i-1], chain[i]) {
				t.Fatalf("replay chain %d out of order at %d", g, i)
			}
		}
	}
	if err := replay.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The fine-grained list must have done real fast-path work: bucket
	// locks at least once per insert batch, and far fewer maintenance
	// locks than batches.
	batches := int64(goroutines*rounds + goroutines + 1)
	if got := l.BucketLocks(); got < batches-int64(goroutines)-1 {
		t.Errorf("bucket locks %d, want at least ~%d", got, batches)
	}
	if got := l.LockAcquires(); got >= batches {
		t.Errorf("maintenance lock taken %d times for %d batches; fast path not engaged", got, batches)
	}
}

// TestParallelInsertOrderMatchesReplay drives goroutines that all start
// from one shared root region and then build private subtrees, checking
// afterwards that the concurrent list's total order restricted to each
// goroutine's items equals the order of a serial replay of that
// goroutine's script. This catches lost updates in the in-bucket shift
// (slots/labels) that the pure invariant check could miss.
func TestParallelInsertOrderMatchesReplay(t *testing.T) {
	const (
		goroutines = 6
		perG       = 300
	)
	l := om.NewList()
	root := l.InsertFirst()
	bases := make([]*om.Item, goroutines)
	p := root
	for g := range bases {
		bases[g] = l.InsertAfter(p)
		p = bases[g]
	}

	// Each goroutine inserts after a pseudo-random previously created
	// item of its own subtree (same seed as the replay below).
	items := make([][]*om.Item, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			own := []*om.Item{bases[g]}
			for i := 0; i < perG; i++ {
				anchor := own[rng.Intn(len(own))]
				own = append(own, l.InsertAfter(anchor))
			}
			items[g] = own
		}(g)
	}
	wg.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	pos := map[*om.Item]int{}
	for i, it := range l.Order() {
		pos[it] = i
	}

	for g := 0; g < goroutines; g++ {
		replay := om.NewList()
		rprev := replay.InsertFirst()
		for i := 0; i < g+1; i++ { // mirror the base seeding depth
			rprev = replay.InsertAfter(rprev)
		}
		rng := rand.New(rand.NewSource(int64(100 + g)))
		rOwn := []*om.Item{rprev}
		for i := 0; i < perG; i++ {
			anchor := rOwn[rng.Intn(len(rOwn))]
			rOwn = append(rOwn, replay.InsertAfter(anchor))
		}
		// Same script, same seed: the concurrent subtree must have the
		// same internal order as the serial replay's.
		own := items[g]
		for i := 0; i < len(own); i++ {
			for j := i + 1; j < len(own); j++ {
				concurrent := pos[own[i]] < pos[own[j]]
				serial := replay.Precedes(rOwn[i], rOwn[j])
				if concurrent != serial {
					t.Fatalf("goroutine %d: pair (%d,%d) ordered %v concurrently, %v serially",
						g, i, j, concurrent, serial)
				}
			}
		}
	}
}

// TestGlobalLockModeEquivalence runs the same random script on a
// fine-grained list and a global-lock list and checks the resulting
// orders agree, so the ABL8 ablation compares identical structures.
func TestGlobalLockModeEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fine := om.NewList()
			global := om.NewListGlobalLock()
			fi := []*om.Item{fine.InsertFirst()}
			gi := []*om.Item{global.InsertFirst()}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				k := rng.Intn(len(fi))
				n := 1 + rng.Intn(3)
				fb := fine.InsertAfterN(fi[k], n)
				gb := global.InsertAfterN(gi[k], n)
				fi = append(fi, fb...)
				gi = append(gi, gb...)
			}
			if err := fine.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := global.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				a, b := rng.Intn(len(fi)), rng.Intn(len(fi))
				if fine.Compare(fi[a], fi[b]) != global.Compare(gi[a], gi[b]) {
					t.Fatalf("order disagrees at pair (%d,%d)", a, b)
				}
			}
			// Global mode must take the maintenance lock for every batch.
			if global.LockAcquires() == 0 || global.BucketLocks() != 0 {
				t.Errorf("global mode counters off: maint=%d bucket=%d",
					global.LockAcquires(), global.BucketLocks())
			}
			if fine.LockAcquires() >= global.LockAcquires() {
				t.Errorf("fine-grained maint locks %d not below global %d",
					fine.LockAcquires(), global.LockAcquires())
			}
		})
	}
}

// TestArenaInsertAndRecycle exercises the arena insert entry points and
// Release: items come from slabs, the list stays consistent, and a
// released arena serves a fresh list correctly.
func TestArenaInsertAndRecycle(t *testing.T) {
	a := &om.ItemArena{}
	for round := 0; round < 3; round++ {
		l := om.NewList()
		it := l.InsertFirstArena(a)
		for i := 0; i < 300; i++ {
			out := make([]*om.Item, 1+i%3)
			l.InsertAfterNArena(it, a, out)
			it = out[len(out)-1]
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if a.Bytes() == 0 {
			t.Fatalf("round %d: arena reported no slab bytes", round)
		}
		a.Release()
		if a.Bytes() != 0 {
			t.Fatalf("round %d: arena bytes nonzero after Release", round)
		}
	}
}

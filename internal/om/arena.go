package om

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// itemChunkLen is the number of Items per arena slab. 512 items at 24
// bytes each is a 12 KiB slab: big enough to amortize the pool round
// trip, small enough that a mostly-idle lane wastes little.
const itemChunkLen = 512

type itemChunk struct{ items [itemChunkLen]Item }

// itemChunkPool recycles slabs across runs; chunks re-enter it only via
// ItemArena.Release.
var itemChunkPool = sync.Pool{New: func() any { return new(itemChunk) }}

// ItemArena is a slab (bump) allocator for Items, used by the per-worker
// lane arenas of internal/core so the reach hot path allocates dag
// positions with a pointer bump instead of a heap allocation. An arena
// is single-owner: not safe for concurrent use. A nil *ItemArena is
// valid and falls back to the heap, which is what the -noarena ablation
// and callers without lane state use.
type ItemArena struct {
	cur    *itemChunk
	next   int
	chunks []*itemChunk
	bytes  atomic.Int64 // slab bytes held; atomic so gauges scrape mid-run
}

// get returns the next Item from the arena (heap-allocated when a is
// nil). The item's fields are set by the insert that places it, so no
// zeroing is needed: an item is never published before its label,
// bucket, and slot are stored.
func (a *ItemArena) get() *Item {
	if a == nil {
		return &Item{}
	}
	if a.cur == nil || a.next == itemChunkLen {
		a.cur = itemChunkPool.Get().(*itemChunk)
		a.chunks = append(a.chunks, a.cur)
		a.next = 0
		a.bytes.Add(int64(unsafe.Sizeof(itemChunk{})))
	}
	it := &a.cur.items[a.next]
	a.next++
	return it
}

// Bytes reports the slab bytes currently held by the arena.
func (a *ItemArena) Bytes() int64 {
	if a == nil {
		return 0
	}
	return a.bytes.Load()
}

// Release returns every slab to the shared pool for reuse by a later
// run. The caller must guarantee no Item allocated from this arena is
// referenced afterwards: a recycled slab will be handed out again.
func (a *ItemArena) Release() {
	if a == nil {
		return
	}
	for i, c := range a.chunks {
		a.chunks[i] = nil
		itemChunkPool.Put(c)
	}
	a.chunks = a.chunks[:0]
	a.cur, a.next = nil, 0
	a.bytes.Store(0)
}

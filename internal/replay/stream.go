package replay

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/sched"
	"sforder/internal/trace"
)

// StreamQueueCap is the per-shard ready-queue capacity of the streaming
// pipeline: how many access blocks a detection shard may lag behind the
// loader before the loader blocks. With every block delivered to every
// shard's queue, at most StreamQueueCap + Workers + 1 distinct blocks
// are resident at once (the slowest queue's backlog, one in each
// worker's hands, one at the loader) — the constant that bounds a
// streamed replay's capture-resident memory regardless of trace length.
const StreamQueueCap = 64

// streamBlock is one access block in flight between the loader and the
// detection shards. refs counts the shards still holding it; the last
// one out releases its accounting.
type streamBlock struct {
	s     *sched.Strand
	addrs []uint64
	kinds []detect.AccessKind
	bytes int64
	refs  atomic.Int32
}

// mapStore is the dagStore of the streaming rebuild. Unlike sliceStore
// it is never sized from a decoded total — it grows only with the
// events actually read (each event introduces at most 3 strands and 1
// future), so a corrupt header cannot make it allocate ahead of the
// data.
type mapStore struct {
	strands map[uint64]*sched.Strand
	futs    map[int]*sched.FutureTask
}

func newMapStore() *mapStore {
	return &mapStore{
		strands: make(map[uint64]*sched.Strand),
		futs:    make(map[int]*sched.FutureTask),
	}
}

func (st *mapStore) need(i int, id uint64) (*sched.Strand, error) {
	s := st.strands[id]
	if s == nil {
		return nil, fmt.Errorf("replay: event %d: strand %d referenced before introduction", i, id)
	}
	return s, nil
}

func (st *mapStore) intro(i int, id uint64, f *sched.FutureTask) (*sched.Strand, error) {
	if st.strands[id] != nil {
		return nil, fmt.Errorf("replay: event %d: strand %d introduced twice", i, id)
	}
	s := &sched.Strand{ID: id, Fut: f}
	st.strands[id] = s
	return s, nil
}

func (st *mapStore) needFut(i, id int) (*sched.FutureTask, error) {
	f := st.futs[id]
	if f == nil {
		return nil, fmt.Errorf("replay: event %d: future %d referenced before creation", i, id)
	}
	return f, nil
}

func (st *mapStore) introFut(i, id int, parent *sched.FutureTask) (*sched.FutureTask, error) {
	if id < 0 || st.futs[id] != nil {
		return nil, fmt.Errorf("replay: event %d: future %d out of range or created twice", i, id)
	}
	f := &sched.FutureTask{ID: id, Parent: parent}
	st.futs[id] = f
	return f, nil
}

// maxTo raises peak to at least v.
func maxTo(peak *atomic.Int64, v int64) {
	for {
		cur := peak.Load()
		if v <= cur || peak.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RunStream replays a capture directly from its byte stream, pipelining
// the two phases: the loader thread decodes the file once in order,
// applying structure events to the growing reachability state and
// handing each access block to the detection shards the moment it is
// read — detection of early blocks overlaps decoding of later ones, and
// the capture is never resident in memory (peak in-flight blocks are
// bounded by StreamQueueCap + Workers + 1, independent of trace
// length).
//
// Soundness is the same order argument as the barriered path, carried
// by the queues: file order is an HB-consistent linearization, the
// loader applies every structure event before forwarding any later
// block, and a channel send happens-before its receive — so by the time
// a shard queries Precedes(u, v) for a block's strand, every label and
// bitmap the query reads is already published and immutable (labels are
// frozen at construction; a strand's gp is set before the first block
// naming it was recorded; OM label words are seqlock-validated
// optimistic reads designed for exactly this concurrency). Verdicts,
// and the merged report, are bit-identical to replay.Run on the loaded
// capture.
//
// The rebuild is the pipeline's producer stage, so
// Options.RebuildWorkers does not apply (a precomputed label table
// needs the whole structure stream first — that is the barriered
// path's trade).
func RunStream(r io.Reader, opts Options) (*Result, error) {
	p := opts.Workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	maxRaces := opts.MaxRaces
	if maxRaces == 0 {
		maxRaces = 256
	}
	reach := core.New(core.Config{Reach: opts.Reach, HybridDepth: opts.HybridDepth})
	if opts.Stats != nil {
		reach.RegisterStats(opts.Stats)
	}
	st, err := trace.OpenStream(r)
	if err != nil {
		return nil, err
	}

	var inBlocks, inBytes, peakBlocks, peakBytes atomic.Int64
	chans := make([]chan *streamBlock, p)
	workers := make([]*worker, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		ch := make(chan *streamBlock, StreamQueueCap)
		chans[i] = ch
		w := newWorker(i)
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for blk := range ch {
				for j, addr := range blk.addrs {
					if ShardOf(addr, p) != w.id {
						continue
					}
					w.apply(reach, blk.s, addr, blk.kinds[j], opts.DedupByAddr)
				}
				if blk.refs.Add(-1) == 0 {
					inBlocks.Add(-1)
					inBytes.Add(-blk.bytes)
				}
			}
		}()
	}

	// The loader: decode in order, apply structure events inline,
	// broadcast access blocks. It stops at the first error; the
	// trailer check inside the Stream means a clean io.EOF is a
	// complete, verified capture.
	store := newMapStore()
	startWall := time.Now()
	var rebuildDur time.Duration
	var loadErr error
	events := 0
	for {
		ev, blk, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			loadErr = err
			break
		}
		if ev != nil {
			t0 := time.Now()
			loadErr = applyEvent(store, reach, events, ev)
			rebuildDur += time.Since(t0)
			if loadErr != nil {
				break
			}
			events++
			continue
		}
		s, err := store.need(events, blk.Strand)
		if err != nil {
			// The Stream already bounds block strand ids by the declared
			// count; this additionally requires an actual introduction.
			loadErr = fmt.Errorf("replay: access block names unknown strand %d", blk.Strand)
			break
		}
		sb := &streamBlock{
			s:     s,
			addrs: blk.Addrs,
			kinds: blk.Kinds,
			bytes: int64(len(blk.Addrs))*9 + 64,
		}
		sb.refs.Store(int32(p))
		maxTo(&peakBlocks, inBlocks.Add(1))
		maxTo(&peakBytes, inBytes.Add(sb.bytes))
		for _, ch := range chans {
			ch <- sb
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if loadErr != nil {
		return nil, loadErr
	}

	res := &Result{
		Strands:        st.Strands(),
		Futures:        uint64(st.Futures()),
		Events:         st.Events(),
		Entries:        st.Entries(),
		Shards:         p,
		Rebuild:        rebuildDur,
		Detect:         time.Since(startWall),
		RebuildWorkers: 1,
		Streamed:       true,
	}
	res.StreamPeakBlocks = peakBlocks.Load()
	res.StreamPeakBytes = peakBytes.Load()
	mergeWorkers(res, workers, maxRaces)
	res.ReachMemBytes = reach.MemBytes()
	if opts.Stats != nil {
		registerStats(opts.Stats, res, int64(st.Blocks()), st.Bytes())
	}
	return res, nil
}

package replay_test

import (
	"bytes"
	"sync"
	"testing"

	"sforder/internal/core"
	"sforder/internal/dag"
	"sforder/internal/detect"
	"sforder/internal/obsv"
	"sforder/internal/oracle"
	"sforder/internal/progen"
	"sforder/internal/replay"
	"sforder/internal/sched"
	"sforder/internal/trace"
	"sforder/internal/workload"
)

// substrates is the ABL12 sweep: all three reachability substrates, the
// hybrid with a threshold low enough that progen programs cross it.
var substrates = []struct {
	name  string
	sub   core.Substrate
	depth int
}{
	{"om", core.SubstrateOM, 0},
	{"depa", core.SubstrateDePa, 0},
	{"hybrid6", core.SubstrateHybrid, 6},
}

// record runs main under full online SF-Order detection (fast path on,
// so the tap sees the batched stream) with a recorder attached, and
// returns the capture plus online detection's racy-location set.
func record(t testing.TB, main func(*sched.Task), workers int) (*trace.Capture, []uint64) {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	reach := core.NewReach()
	hist := detect.NewHistory(detect.Options{Reach: reach, FastPath: true, Tap: rec})
	opts := sched.Options{Tracer: reach, Aux: rec, Checker: hist}
	if workers <= 1 {
		opts.Serial = true
	} else {
		opts.Workers = workers
	}
	if _, err := sched.Run(opts, main); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := trace.Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return c, hist.RacyAddrs()
}

// recordStandalone records main with the recorder as the access checker
// itself — no history, no online detection.
func recordStandalone(t testing.TB, main func(*sched.Task)) *trace.Capture {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	if _, err := sched.Run(sched.Options{Serial: true, Aux: rec, Checker: rec}, main); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := trace.Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return c
}

// runOracle executes p serially under the exhaustive dag oracle and
// returns the ground-truth racy-location set.
func runOracle(t testing.TB, main func(*sched.Task)) []uint64 {
	t.Helper()
	rec := dag.NewRecorder()
	log := oracle.NewLogger()
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: rec, Checker: log}, main); err != nil {
		t.Fatal(err)
	}
	return log.RacyAddrs(rec)
}

func sameAddrs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReplayMatchesOnlineAndOracleFuzz is the ABL12 verdict-equality
// fuzz: on random programs, offline replay — over every substrate,
// serial and with 4 workers — must produce exactly online detection's
// racy-location set, which must itself equal the exhaustive oracle's.
func TestReplayMatchesOnlineAndOracleFuzz(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 6})
		c, online := record(t, p.Main(), 1)
		want := runOracle(t, p.Main())
		if !sameAddrs(online, want) {
			t.Fatalf("seed %d: online %v, oracle %v", seed, online, want)
		}
		for _, sub := range substrates {
			for _, workers := range []int{1, 4} {
				res, err := replay.Run(c, replay.Options{
					Workers: workers, Reach: sub.sub, HybridDepth: sub.depth,
				})
				if err != nil {
					t.Fatalf("seed %d %s/%dw: %v", seed, sub.name, workers, err)
				}
				if !sameAddrs(res.RacyAddrs, want) {
					t.Fatalf("seed %d %s/%dw: replay %v, oracle %v",
						seed, sub.name, workers, res.RacyAddrs, want)
				}
			}
		}
	}
}

// TestReplayParallelRecording: captures taken under the parallel engine
// (4 workers racing to the recorder mutex) replay to the oracle verdict
// too — the linearization argument does not depend on serial execution.
func TestReplayParallelRecording(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 6})
		c, online := record(t, p.Main(), 4)
		want := runOracle(t, p.Main())
		if !sameAddrs(online, want) {
			t.Fatalf("seed %d: online %v, oracle %v", seed, online, want)
		}
		res, err := replay.Run(c, replay.Options{Workers: 4, Reach: core.SubstrateDePa})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sameAddrs(res.RacyAddrs, want) {
			t.Fatalf("seed %d: replay %v, oracle %v", seed, res.RacyAddrs, want)
		}
	}
}

// TestReplayStandaloneRecorder: detection-free captures (recorder as the
// access checker, no online history at all) carry enough to reach the
// oracle verdict offline.
func TestReplayStandaloneRecorder(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 6})
		c := recordStandalone(t, p.Main())
		want := runOracle(t, p.Main())
		res, err := replay.Run(c, replay.Options{Workers: 2, Reach: core.SubstrateOM})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sameAddrs(res.RacyAddrs, want) {
			t.Fatalf("seed %d: replay %v, oracle %v", seed, res.RacyAddrs, want)
		}
	}
}

// TestShardBoundaryRace: two racing pairs on addresses that hash to
// different shards must both be reported — races never cross a shard,
// and sharding must not drop one.
func TestShardBoundaryRace(t *testing.T) {
	const p = 4
	// Pick two addresses owned by different shards of a 4-way replay.
	a1 := uint64(1)
	a2 := uint64(0)
	for addr := uint64(2); addr < 1000; addr++ {
		if replay.ShardOf(addr, p) != replay.ShardOf(a1, p) {
			a2 = addr
			break
		}
	}
	if replay.ShardOf(a1, p) == replay.ShardOf(a2, p) {
		t.Fatalf("no shard-crossing address pair found")
	}
	main := func(task *sched.Task) {
		h := task.Create(func(c *sched.Task) any {
			c.Write(a1)
			c.Write(a2)
			return nil
		})
		task.Write(a1) // races with the future body on shard A
		task.Write(a2) // races with the future body on shard B
		task.Get(h)
	}
	c, online := record(t, main, 1)
	if len(online) != 2 {
		t.Fatalf("online found %v, want both addresses", online)
	}
	res, err := replay.Run(c, replay.Options{Workers: p, Reach: core.SubstrateDePa})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAddrs(res.RacyAddrs, online) {
		t.Fatalf("replay %v, online %v", res.RacyAddrs, online)
	}
	if res.Shards != p {
		t.Fatalf("ran with %d shards, want %d", res.Shards, p)
	}
}

// TestReplayDeterministicAcrossWorkers: the merged detailed reports are
// identical for every worker count — sharding and merge order leak
// nothing into the result.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	p := progen.New(progen.Config{Seed: 7, MaxDepth: 5, MaxOps: 9, Addrs: 4})
	c, _ := record(t, p.Main(), 1)
	var base *replay.Result
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := replay.Run(c, replay.Options{Workers: workers, Reach: core.SubstrateDePa})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			if res.RaceCount == 0 {
				t.Fatal("seed produced no races; pick another")
			}
			continue
		}
		if res.RaceCount != base.RaceCount || len(res.Races) != len(base.Races) {
			t.Fatalf("%d workers: %d races (%d retained), 1 worker found %d (%d)",
				workers, res.RaceCount, len(res.Races), base.RaceCount, len(base.Races))
		}
		for i := range res.Races {
			if res.Races[i] != base.Races[i] {
				t.Fatalf("%d workers: race %d differs: %v vs %v",
					workers, i, res.Races[i], base.Races[i])
			}
		}
		if !sameAddrs(res.RacyAddrs, base.RacyAddrs) {
			t.Fatalf("%d workers: racy set differs", workers)
		}
	}
}

// TestReplayWorkloads pins the acceptance shape: recorded runs of the
// five paper+extra workloads replay to online detection's race set
// (empty — the workloads are race-free) with every access accounted for.
func TestReplayWorkloads(t *testing.T) {
	for _, name := range []string{"mm", "sort", "hw", "spine", "pipeline"} {
		b := workload.ByName(name, workload.ScaleTest)
		if b == nil {
			t.Fatalf("workload %s missing", name)
		}
		run := b.Make()
		c, online := record(t, run.Main, 1)
		if err := run.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", name, err)
		}
		if c.Entries == 0 {
			t.Fatalf("%s: no accesses captured", name)
		}
		res, err := replay.Run(c, replay.Options{Workers: 4, Reach: core.SubstrateDePa})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameAddrs(res.RacyAddrs, online) {
			t.Fatalf("%s: replay %v, online %v", name, res.RacyAddrs, online)
		}
		if res.Entries != c.Entries || res.Strands != c.Strands {
			t.Fatalf("%s: replay processed %d/%d entries, %d/%d strands",
				name, res.Entries, c.Entries, res.Strands, c.Strands)
		}
	}
}

// TestReplayGauges: a Stats registry passed to replay carries the
// replay.* gauges afterwards.
func TestReplayGauges(t *testing.T) {
	p := progen.New(progen.Config{Seed: 3, MaxDepth: 4, MaxOps: 7})
	c, _ := record(t, p.Main(), 1)
	reg := obsv.NewRegistry()
	res, err := replay.Run(c, replay.Options{Workers: 2, Reach: core.SubstrateDePa, Stats: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"replay.events", "replay.entries", "replay.shards", "replay.bytes", "replay.wall_ns"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("gauge %s missing", name)
		}
	}
	if snap["replay.events"] != int64(res.Events) || snap["replay.shards"] != 2 {
		t.Fatalf("gauge values %d/%d, want %d/2", snap["replay.events"], snap["replay.shards"], res.Events)
	}
	if snap["replay.bytes"] != c.Bytes || snap["replay.bytes"] == 0 {
		t.Fatalf("replay.bytes %d, capture has %d", snap["replay.bytes"], c.Bytes)
	}
}

// TestReplayRejectsCorrupt: structurally inconsistent captures error out
// of the rebuild instead of panicking or mis-replaying.
func TestReplayRejectsCorrupt(t *testing.T) {
	// Craft captures by driving the recorder with synthetic strands.
	mk := func(drive func(*trace.Recorder)) *trace.Capture {
		var buf bytes.Buffer
		rec := trace.NewRecorder(&buf)
		drive(rec)
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		c, err := trace.Load(&buf)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		return c
	}
	f0 := &sched.FutureTask{ID: 0}
	s := func(id uint64) *sched.Strand { return &sched.Strand{ID: id, Fut: f0} }
	cases := map[string]*trace.Capture{
		"no root": mk(func(r *trace.Recorder) {
			r.OnSpawn(s(0), s(1), s(2), nil)
		}),
		"unknown strand": mk(func(r *trace.Recorder) {
			r.OnRoot(s(0))
			r.OnSpawn(s(5), s(1), s(2), nil)
		}),
		"double introduction": mk(func(r *trace.Recorder) {
			r.OnRoot(s(0))
			r.OnSpawn(s(0), s(1), s(2), nil)
			r.OnSpawn(s(0), s(1), s(2), nil)
		}),
		"get before put": mk(func(r *trace.Recorder) {
			r.OnRoot(s(0))
			f1 := &sched.FutureTask{ID: 1, Parent: f0}
			r.OnCreate(s(0), &sched.Strand{ID: 1, Fut: f1}, s(2), s(3), f1)
			r.OnGet(s(2), s(4), f1)
		}),
	}
	for name, c := range cases {
		if _, err := replay.Run(c, replay.Options{Workers: 1}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReplayConcurrentRuns is the -race worker stress: several replays
// of one shared capture run concurrently, each with parallel shards, so
// the race detector sees the full sharing surface (read-only capture,
// per-run reachability, per-worker shards).
func TestReplayConcurrentRuns(t *testing.T) {
	p := progen.New(progen.Config{Seed: 11, MaxDepth: 5, MaxOps: 9, Addrs: 8})
	c, online := record(t, p.Main(), 4)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := substrates[i%len(substrates)]
			res, err := replay.Run(c, replay.Options{
				Workers: 8, Reach: sub.sub, HybridDepth: sub.depth,
			})
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			if !sameAddrs(res.RacyAddrs, online) {
				t.Errorf("run %d (%s): replay %v, online %v", i, sub.name, res.RacyAddrs, online)
			}
		}()
	}
	wg.Wait()
}

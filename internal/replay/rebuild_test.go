package replay_test

import (
	"testing"

	"sforder/internal/core"
	"sforder/internal/progen"
	"sforder/internal/replay"
	"sforder/internal/trace"
	"sforder/internal/workload"
)

// labelSubstrates are the substrates the parallel rebuild supports.
var labelSubstrates = []struct {
	name  string
	sub   core.Substrate
	depth int
}{
	{"depa", core.SubstrateDePa, 0},
	{"hybrid6", core.SubstrateHybrid, 6},
}

// sameRaces compares the merged detailed reports field by field.
func sameRaces(t *testing.T, tag string, a, b *replay.Result) {
	t.Helper()
	if a.RaceCount != b.RaceCount || len(a.Races) != len(b.Races) {
		t.Fatalf("%s: %d races (%d retained) vs %d (%d)",
			tag, a.RaceCount, len(a.Races), b.RaceCount, len(b.Races))
	}
	for i := range a.Races {
		if a.Races[i] != b.Races[i] {
			t.Fatalf("%s: race %d differs: %v vs %v", tag, i, a.Races[i], b.Races[i])
		}
	}
	if !sameAddrs(a.RacyAddrs, b.RacyAddrs) {
		t.Fatalf("%s: racy sets differ: %v vs %v", tag, a.RacyAddrs, b.RacyAddrs)
	}
}

// TestParallelRebuildMatchesSerialFuzz is the ABL13 verdict-equality
// fuzz: on random programs — serially and parallel-recorded — the
// precomputed-table rebuild at 1, 4 and 8 workers must produce reports
// bit-identical to the serial event-order rebuild, whose racy set must
// itself equal online detection's and the exhaustive oracle's.
func TestParallelRebuildMatchesSerialFuzz(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 6})
		recWorkers := 1
		if seed%3 == 2 {
			recWorkers = 4 // parallel-recorded: ids not monotone in file order
		}
		c, online := record(t, p.Main(), recWorkers)
		want := runOracle(t, p.Main())
		if !sameAddrs(online, want) {
			t.Fatalf("seed %d: online %v, oracle %v", seed, online, want)
		}
		for _, sub := range labelSubstrates {
			serial, err := replay.Run(c, replay.Options{
				Workers: 2, Reach: sub.sub, HybridDepth: sub.depth,
			})
			if err != nil {
				t.Fatalf("seed %d %s serial: %v", seed, sub.name, err)
			}
			if !sameAddrs(serial.RacyAddrs, want) {
				t.Fatalf("seed %d %s: serial replay %v, oracle %v", seed, sub.name, serial.RacyAddrs, want)
			}
			for _, rw := range []int{1, 4, 8} {
				res, err := replay.Run(c, replay.Options{
					Workers: 2, RebuildWorkers: rw, Reach: sub.sub, HybridDepth: sub.depth,
				})
				if err != nil {
					t.Fatalf("seed %d %s/rw%d: %v", seed, sub.name, rw, err)
				}
				if wantPar := rw > 1; res.RebuildParallel != wantPar {
					t.Fatalf("seed %d %s/rw%d: parallel=%v", seed, sub.name, rw, res.RebuildParallel)
				}
				sameRaces(t, sub.name, res, serial)
			}
		}
	}
}

// TestParallelRebuildOMFallsBack: the OM substrate has no precomputable
// labels; RebuildWorkers > 1 must fall back to the serial rebuild, not
// error, and still reach the same verdict.
func TestParallelRebuildOMFallsBack(t *testing.T) {
	p := progen.New(progen.Config{Seed: 9, MaxDepth: 4, MaxOps: 8, Addrs: 6})
	c, online := record(t, p.Main(), 1)
	res, err := replay.Run(c, replay.Options{Workers: 2, RebuildWorkers: 4, Reach: core.SubstrateOM})
	if err != nil {
		t.Fatal(err)
	}
	if res.RebuildParallel || res.RebuildWorkers != 1 {
		t.Fatalf("OM rebuild ran parallel (workers=%d)", res.RebuildWorkers)
	}
	if !sameAddrs(res.RacyAddrs, online) {
		t.Fatalf("replay %v, online %v", res.RacyAddrs, online)
	}
}

// TestParallelRebuildRejectsCorrupt: the index pass guards the parallel
// path against the same corruptions the serial rebuild rejects (the
// captures come from trace_test's corrupt catalogue via the recorder).
func TestParallelRebuildRejectsCorrupt(t *testing.T) {
	// A sync naming a never-placed strand is the case only the parallel
	// path's index used to catch; both paths must now reject it.
	c := recordStandalone(t, progen.New(progen.Config{Seed: 1, MaxDepth: 3, MaxOps: 6}).Main())
	if len(c.Events) == 0 {
		t.Fatal("empty capture")
	}
	// Corrupt in memory: point the first sync at an absent strand id.
	corrupted := false
	for i := range c.Events {
		if c.Events[i].Op == trace.OpSync {
			c.Events[i].A = c.Strands + 100
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Skip("capture has no sync event")
	}
	if _, err := replay.Run(c, replay.Options{RebuildWorkers: 4, Reach: core.SubstrateDePa}); err == nil {
		t.Error("parallel rebuild accepted sync of unplaced strand")
	}
	if _, err := replay.Run(c, replay.Options{Workers: 1, Reach: core.SubstrateDePa}); err == nil {
		t.Error("serial rebuild accepted sync of unplaced strand")
	}
}

// TestParallelRebuildSpeedup pins the acceptance ratio on the two
// deep-structure workloads (spine, pipeline): at 4 rebuild workers the
// parallel label construction's critical path — the largest worker
// segment — must be at most half the total fill work, i.e. the
// parallelized portion of the rebuild costs ≤ 0.5× its serial form.
// (The counter ratio is the machine-independent pin; wall-clock
// replay.rebuild_ns scaling needs multi-core hardware.)
func TestParallelRebuildSpeedup(t *testing.T) {
	for _, name := range []string{"spine", "pipeline"} {
		b := workload.ByName(name, workload.ScaleTest)
		if b == nil {
			t.Fatalf("workload %s missing", name)
		}
		run := b.Make()
		c, online := record(t, run.Main, 1)
		res, err := replay.Run(c, replay.Options{
			Workers: 2, RebuildWorkers: 4, Reach: core.SubstrateDePa,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.RebuildParallel {
			t.Fatalf("%s: rebuild did not run parallel", name)
		}
		if res.RebuildLabels != c.Strands {
			t.Fatalf("%s: table built %d labels for %d strands", name, res.RebuildLabels, c.Strands)
		}
		if res.RebuildWork == 0 || res.RebuildMaxSegment == 0 {
			t.Fatalf("%s: no fill work accounted (%d/%d)", name, res.RebuildMaxSegment, res.RebuildWork)
		}
		if 2*res.RebuildMaxSegment > res.RebuildWork {
			t.Fatalf("%s: max segment %d of %d work units — critical path above 0.5× serial at 4 workers",
				name, res.RebuildMaxSegment, res.RebuildWork)
		}
		if !sameAddrs(res.RacyAddrs, online) {
			t.Fatalf("%s: replay %v, online %v", name, res.RacyAddrs, online)
		}
	}
}

// TestParallelRebuildWorkloads: the five workloads replay identically
// through serial and parallel rebuilds at every worker count.
func TestParallelRebuildWorkloads(t *testing.T) {
	for _, name := range []string{"mm", "sort", "hw", "spine", "pipeline"} {
		b := workload.ByName(name, workload.ScaleTest)
		run := b.Make()
		c, _ := record(t, run.Main, 1)
		serial, err := replay.Run(c, replay.Options{Workers: 2, Reach: core.SubstrateDePa})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, rw := range []int{4, 8} {
			res, err := replay.Run(c, replay.Options{Workers: 2, RebuildWorkers: rw, Reach: core.SubstrateDePa})
			if err != nil {
				t.Fatalf("%s/rw%d: %v", name, rw, err)
			}
			sameRaces(t, name, res, serial)
			if res.Strands != c.Strands || res.Entries != c.Entries {
				t.Fatalf("%s/rw%d: processed %d/%d strands, %d/%d entries",
					name, rw, res.Strands, c.Strands, res.Entries, c.Entries)
			}
		}
	}
}

package replay

import (
	"sync"

	"sforder/internal/core"
	"sforder/internal/depa"
	"sforder/internal/sched"
	"sforder/internal/trace"
)

// rebuildInfo reports what the parallel rebuild did: how many table
// labels were built, the total label+chunk fill work, and the largest
// single worker segment (maxSegment·workers ≈ labels certifies balance).
type rebuildInfo struct {
	labels     uint64
	totalWork  uint64
	maxSegment uint64
}

// rebuildParallel is the precomputed-label-table rebuild: instead of
// threading every structure event through the substrate's mutable
// placement path, it derives each strand's fork-path label directly from
// the recorded path and builds all labels in parallel.
//
//  1. Partition (serial). trace.PathIndex extracts every strand's label
//     parent and branch role in one validating pass, laid out in
//     introduction order so contiguous index ranges are independent
//     units of work (parents precede children).
//  2. Labels (parallel). depa.BuildTable runs the serial Extend
//     recurrence as a table fill: W workers over even index segments,
//     no locks, no shared mutable state — cross-segment reads are of
//     array cells written by strictly earlier passes. The table is
//     bit-identical to what online Extend calls would have built
//     (depa.TestBuildTableMatchesExtend), so every Rel verdict agrees.
//  3. Bind (parallel). Each worker binds its segment's strands to their
//     pre-allocated node records (core.Offline.Bind — distinct indices,
//     no sharing).
//  4. Bitmaps (serial). One pass over the events in file order computes
//     the cp(G) ancestor sets and gp(v) non-SP-path sets with exactly
//     the online placement rules (inherit at branch, merge at sync and
//     get). These are genuinely order-dependent — they are the serial
//     residue of the rebuild, and a small fraction of its work (one
//     bitmap op per event vs. a label + node per strand).
//
// The resulting Reach answers PrecedesUncounted identically to the
// serial rebuild (DESIGN.md §4, label determinism).
func rebuildParallel(c *trace.Capture, opts Options, workers int) ([]*sched.Strand, *core.Reach, *rebuildInfo, error) {
	idx, err := c.Index()
	if err != nil {
		return nil, nil, nil, err
	}
	n := len(idx.Order)

	// Branch roles → label components. A get strand hangs off its
	// getting strand exactly like a spawned child (same Child component
	// the online placeGet appends).
	comp := make([]uint8, n)
	for j, role := range idx.Role {
		switch role {
		case trace.RoleChild, trace.RoleGet:
			comp[j] = depa.Child
		case trace.RoleCont:
			comp[j] = depa.Cont
		case trace.RoleSync:
			comp[j] = depa.Sync
		}
	}
	flatDepth := 0
	if opts.Reach == core.SubstrateHybrid {
		flatDepth = opts.HybridDepth
		if flatDepth <= 0 {
			flatDepth = core.DefaultHybridDepth
		}
	}
	table, err := depa.BuildTable(idx.Parent, comp, depa.TableConfig{Workers: workers, FlatDepth: flatDepth})
	if err != nil {
		return nil, nil, nil, err
	}

	off, err := core.NewOffline(core.Config{Reach: opts.Reach, HybridDepth: opts.HybridDepth}, n, c.Futures)
	if err != nil {
		return nil, nil, nil, err
	}

	// Future identities (cheap, serial): objects first so parent links
	// can point anywhere, links from the validated index.
	futs := make([]*sched.FutureTask, c.Futures)
	for fid := range futs {
		futs[fid] = &sched.FutureTask{ID: fid}
	}
	for fid, p := range idx.FutParent {
		if p >= 0 {
			futs[fid].Parent = futs[p]
		}
	}

	// Parallel bind: segment w owns introduction positions
	// [w·n/W, (w+1)·n/W) — the same even split BuildTable used. Each
	// iteration writes one distinct strands[id] cell (ids are unique by
	// index validation) and one distinct node record.
	strands := make([]*sched.Strand, c.Strands)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				id := idx.Order[j]
				s := &sched.Strand{ID: id, Fut: futs[idx.Fut[j]]}
				strands[id] = s
				off.Bind(j, s, table.Label(j), table.Flat(j))
			}
		}(lo, hi)
	}
	wg.Wait()
	off.AccountTable(table)

	// Serial bitmap pass, file order. Placeholders inherit no gp at the
	// branch (matching the online placeBranch); their gp is computed at
	// the region's sync.
	for i := range c.Events {
		ev := &c.Events[i]
		switch ev.Op {
		case trace.OpRoot:
			off.BindRootFuture(futs[0])
		case trace.OpSpawn:
			u := strands[ev.U]
			off.InheritGP(strands[ev.A], u)
			off.InheritGP(strands[ev.B], u)
		case trace.OpCreate:
			u := strands[ev.U]
			off.BindFuture(futs[ev.Fut])
			off.InheritGP(strands[ev.A], u)
			off.InheritGP(strands[ev.B], u)
		case trace.OpSync:
			sinks := make([]*sched.Strand, len(ev.Sinks))
			for j, id := range ev.Sinks {
				sinks[j] = strands[id]
			}
			off.SyncGP(strands[ev.U], strands[ev.A], sinks)
		case trace.OpPut:
			futs[ev.Fut].SetLast(strands[ev.U])
		case trace.OpGet:
			off.GetGP(strands[ev.U], strands[ev.A], futs[ev.Fut])
		}
	}

	info := &rebuildInfo{labels: uint64(table.Len())}
	for _, wk := range table.SegmentWork() {
		info.totalWork += uint64(wk)
		if uint64(wk) > info.maxSegment {
			info.maxSegment = uint64(wk)
		}
	}
	return strands, off.Reach(), info, nil
}

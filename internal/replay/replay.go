// Package replay re-runs race detection offline from an sftrace capture
// (internal/trace), decoupling detection cost from the traced program:
// record once, detect anywhere, with parallelism bounded by the replay
// worker count instead of the program's span.
//
// Replay has two phases:
//
//  1. Rebuild. The capture's structure events are fed, in file order,
//     through the pluggable reachability substrate (internal/core — OM
//     lists, DePa cords, or the hybrid) exactly as the online tracer
//     would have been. File order is a happens-before-consistent
//     linearization of the run (see internal/trace), so every Tracer
//     precondition holds. With Options.RebuildWorkers > 1 and a label
//     substrate, the rebuild itself parallelizes: a serial index pass
//     (trace.PathIndex) partitions the strand forest, then P workers
//     construct the immutable fork-path labels concurrently over
//     independent segments (depa.BuildTable) with no OM list and no
//     locks — only the gp/cp bitmap passes stay serial. Either way,
//     after the rebuild the reachability state is read-only — frozen
//     labels any number of workers can query lock-free.
//
//  2. Sharded detection. Access entries are partitioned by address hash
//     across P workers. Each worker owns a disjoint shadow-state shard —
//     a private last-writer/readers table for exactly the addresses that
//     hash to it — so the hot loop takes no locks, publishes no state
//     words, and shares nothing with other workers but the read-only
//     reachability structures and the capture itself. Per-location
//     detection is what the online detector guarantees (a race is
//     reported on a location iff one exists there), and every location
//     lives wholly inside one shard, so sharding changes no verdict
//     (DESIGN.md §4). Races merge deterministically at the end.
package replay

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/obsv"
	"sforder/internal/sched"
	"sforder/internal/trace"
)

// Options configures a replay run.
type Options struct {
	// Workers is the number of detection shards/workers; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// RebuildWorkers is the number of rebuild workers constructing the
	// reachability labels (values below 2 mean the serial event-order
	// rebuild). With more than one worker and a label substrate
	// (SubstrateDePa or SubstrateHybrid), the rebuild switches to the
	// precomputed-table path: a serial index pass over the structure
	// events, then parallel label construction over independent
	// segments (depa.BuildTable, core.Offline). The OM substrate has no
	// precomputable labels and always rebuilds serially.
	RebuildWorkers int
	// Reach selects the reachability substrate the dag is rebuilt on.
	// SubstrateDePa is the natural offline choice (frozen immutable
	// labels, lock-free queries); all three work.
	Reach core.Substrate
	// HybridDepth is the SubstrateHybrid switchover depth (0 = default).
	HybridDepth int
	// MaxRaces caps retained detailed race records (0 = 256), applied
	// after the deterministic merge.
	MaxRaces int
	// DedupByAddr retains at most one detailed record per address.
	// Exact under sharding: an address's accesses all land in one shard.
	DedupByAddr bool
	// Stats, when non-nil, receives the replay.* gauges.
	Stats *obsv.Registry
}

// Result reports a completed replay.
type Result struct {
	// Races holds up to MaxRaces detailed reports after the
	// deterministic merge; RaceCount is the total number detected.
	Races     []detect.Race
	RaceCount uint64
	// RacyAddrs is the sorted set of addresses with at least one race —
	// the location-level verdict compared against online detection.
	RacyAddrs []uint64
	// Strands and Futures describe the replayed dag.
	Strands uint64
	Futures uint64
	// Events and Entries count structure events and access entries.
	Events  uint64
	Entries uint64
	// Queries is the number of Precedes queries across all workers.
	Queries uint64
	// Shards is the worker count used; MaxShardEntries the largest
	// number of access entries any one shard processed (shard balance:
	// MaxShardEntries ≈ Entries/Shards means near-perfect partitioning).
	Shards          int
	MaxShardEntries uint64
	// Rebuild, Detect and Merge are the wall-clock times of the three
	// phases. Under streaming, Rebuild is the loader time spent applying
	// structure events and Detect the full pipeline wall (the phases
	// overlap by construction).
	Rebuild time.Duration
	Detect  time.Duration
	Merge   time.Duration
	// ReachMemBytes estimates the rebuilt reachability footprint.
	ReachMemBytes int
	// RebuildWorkers is the rebuild worker count actually used;
	// RebuildParallel reports whether the precomputed-label-table path
	// ran (false = serial event-order rebuild).
	RebuildWorkers  int
	RebuildParallel bool
	// RebuildLabels counts the table labels built by the parallel path.
	// RebuildWork is the total label-fill work (label + chunk units)
	// and RebuildMaxSegment the largest single worker's share of it:
	// the parallel label construction's critical path is
	// RebuildMaxSegment of RebuildWork units, so
	// RebuildMaxSegment·workers ≈ RebuildWork certifies each worker did
	// ~1/W of the construction (the wall-clock speedup on real
	// multi-core hardware).
	RebuildLabels     uint64
	RebuildWork       uint64
	RebuildMaxSegment uint64
	// Streamed reports the pipelined path (RunStream);
	// StreamPeakBlocks/StreamPeakBytes are the high-water marks of the
	// bounded ready-queue between the loader and the detection shards —
	// bounded by StreamQueueCap+Workers+1 blocks regardless of capture
	// length.
	Streamed         bool
	StreamPeakBlocks int64
	StreamPeakBytes  int64
}

// ShardOf returns the detection shard owning addr among p shards: the
// same Fibonacci hash the shadow tables use, reduced modulo p. Exported
// so tests can construct racing pairs that straddle a shard boundary.
func ShardOf(addr uint64, p int) int {
	return int((addr * 0x9e3779b97f4a7c15) >> 32 % uint64(p))
}

// dagStore abstracts strand/future identity storage during an
// event-order rebuild, so the same validating event switch (applyEvent)
// drives both the barriered path (sliceStore — presized dense arrays,
// the fast layout when the capture's totals are known up front) and the
// streaming path (mapStore in stream.go — grows with the events actually
// read, never sized from an untrusted header field).
type dagStore interface {
	need(i int, id uint64) (*sched.Strand, error)
	intro(i int, id uint64, f *sched.FutureTask) (*sched.Strand, error)
	needFut(i, id int) (*sched.FutureTask, error)
	introFut(i, id int, parent *sched.FutureTask) (*sched.FutureTask, error)
}

// sliceStore is the dense-array dagStore for whole-capture rebuilds.
type sliceStore struct {
	strands []*sched.Strand
	futs    []*sched.FutureTask
}

func (st *sliceStore) need(i int, id uint64) (*sched.Strand, error) {
	if id >= uint64(len(st.strands)) || st.strands[id] == nil {
		return nil, fmt.Errorf("replay: event %d: strand %d referenced before introduction", i, id)
	}
	return st.strands[id], nil
}

func (st *sliceStore) intro(i int, id uint64, f *sched.FutureTask) (*sched.Strand, error) {
	if id >= uint64(len(st.strands)) {
		return nil, fmt.Errorf("replay: event %d: strand %d out of range", i, id)
	}
	if st.strands[id] != nil {
		return nil, fmt.Errorf("replay: event %d: strand %d introduced twice", i, id)
	}
	s := &sched.Strand{ID: id, Fut: f}
	st.strands[id] = s
	return s, nil
}

func (st *sliceStore) needFut(i, id int) (*sched.FutureTask, error) {
	if id < 0 || id >= len(st.futs) || st.futs[id] == nil {
		return nil, fmt.Errorf("replay: event %d: future %d referenced before creation", i, id)
	}
	return st.futs[id], nil
}

func (st *sliceStore) introFut(i, id int, parent *sched.FutureTask) (*sched.FutureTask, error) {
	if id < 0 || id >= len(st.futs) || st.futs[id] != nil {
		return nil, fmt.Errorf("replay: event %d: future %d out of range or created twice", i, id)
	}
	f := &sched.FutureTask{ID: id, Parent: parent}
	st.futs[id] = f
	return f, nil
}

// applyEvent validates one structure event against the store and feeds
// it to the tracer — the single rebuild event switch shared by the
// barriered, parallel-verification and streaming paths.
func applyEvent(store dagStore, r sched.Tracer, i int, ev *trace.Event) error {
	switch ev.Op {
	case trace.OpRoot:
		if i != 0 {
			return fmt.Errorf("replay: event %d: misplaced root", i)
		}
		f, err := store.introFut(i, 0, nil)
		if err != nil {
			return err
		}
		root, err := store.intro(i, ev.U, f)
		if err != nil {
			return err
		}
		r.OnRoot(root)
	case trace.OpSpawn, trace.OpCreate:
		u, err := store.need(i, ev.U)
		if err != nil {
			return err
		}
		childFut := u.Fut
		var created *sched.FutureTask
		if ev.Op == trace.OpCreate {
			parent, err := store.needFut(i, ev.FutParent)
			if err != nil {
				return err
			}
			if created, err = store.introFut(i, ev.Fut, parent); err != nil {
				return err
			}
			childFut = created
		}
		first, err := store.intro(i, ev.A, childFut)
		if err != nil {
			return err
		}
		cont, err := store.intro(i, ev.B, u.Fut)
		if err != nil {
			return err
		}
		var ph *sched.Strand
		if ev.Placeholder > 0 {
			if ph, err = store.intro(i, ev.Placeholder-1, u.Fut); err != nil {
				return err
			}
		}
		if ev.Op == trace.OpCreate {
			r.OnCreate(u, first, cont, ph, created)
		} else {
			r.OnSpawn(u, first, cont, ph)
		}
	case trace.OpSync:
		k, err := store.need(i, ev.U)
		if err != nil {
			return err
		}
		// The sync strand is the placeholder eagerly introduced at the
		// region's first branch; the scheduler emits no sync event for
		// branch-free regions, so an unintroduced sync strand is
		// corruption, not a late introduction.
		s, err := store.need(i, ev.A)
		if err != nil {
			return fmt.Errorf("replay: event %d: sync strand %d was never placed at a branch", i, ev.A)
		}
		sinks := make([]*sched.Strand, len(ev.Sinks))
		for j, id := range ev.Sinks {
			if sinks[j], err = store.need(i, id); err != nil {
				return err
			}
		}
		r.OnSync(k, s, sinks)
	case trace.OpReturn:
		sink, err := store.need(i, ev.U)
		if err != nil {
			return err
		}
		r.OnReturn(sink)
	case trace.OpPut:
		sink, err := store.need(i, ev.U)
		if err != nil {
			return err
		}
		f, err := store.needFut(i, ev.Fut)
		if err != nil {
			return err
		}
		f.SetLast(sink)
		r.OnPut(sink, f)
	case trace.OpGet:
		u, err := store.need(i, ev.U)
		if err != nil {
			return err
		}
		f, err := store.needFut(i, ev.Fut)
		if err != nil {
			return err
		}
		if f.Last() == nil {
			return fmt.Errorf("replay: event %d: get of future %d before its put", i, ev.Fut)
		}
		g, err := store.intro(i, ev.A, u.Fut)
		if err != nil {
			return err
		}
		r.OnGet(u, g, f)
	default:
		return fmt.Errorf("replay: event %d: unexpected op %v", i, ev.Op)
	}
	return nil
}

// rebuild replays the structure events through a fresh Reach,
// reconstructing strand and future identities. It returns the synthetic
// strands so detection can hand them to Precedes.
func rebuild(c *trace.Capture, r *core.Reach) ([]*sched.Strand, error) {
	// Dense-ID sanity: a structurally consistent capture introduces at
	// most 3 strands and 1 future per event. Bounds the allocation on
	// adversarial inputs before trusting the decoded maxima.
	if c.Strands > 3*uint64(len(c.Events))+1 || uint64(c.Futures) > uint64(len(c.Events))+1 {
		return nil, fmt.Errorf("replay: capture names %d strands/%d futures across %d events (corrupt capture)",
			c.Strands, c.Futures, len(c.Events))
	}
	store := &sliceStore{
		strands: make([]*sched.Strand, c.Strands),
		futs:    make([]*sched.FutureTask, c.Futures),
	}
	for i := range c.Events {
		if err := applyEvent(store, r, i, &c.Events[i]); err != nil {
			return nil, err
		}
	}
	return store.strands, nil
}

// wloc is one location's shadow state inside a worker's private shard.
type wloc struct {
	lastWriter *sched.Strand
	readers    []*sched.Strand
}

// memoBits sizes the per-worker direct-mapped Precedes memo.
const memoBits = 14

// worker is one detection shard: private shadow state, private memo,
// private results. Nothing here is touched by any other goroutine.
type worker struct {
	id      int
	locs    map[uint64]*wloc
	memoU   []uint64 // key: u.ID+1 (0 = empty)
	memoV   []uint64 // key: v.ID
	memoOK  []bool
	races   []detect.Race
	racy    map[uint64]bool
	count   uint64
	queries uint64
	entries uint64
}

func (w *worker) precedes(r *core.Reach, u, v *sched.Strand) bool {
	i := (u.ID*0x9e3779b97f4a7c15 ^ v.ID*0xc2b2ae3d27d4eb4f) >> (64 - memoBits)
	if w.memoU[i] == u.ID+1 && w.memoV[i] == v.ID {
		return w.memoOK[i]
	}
	w.queries++
	ok := r.PrecedesUncounted(u, v)
	w.memoU[i], w.memoV[i], w.memoOK[i] = u.ID+1, v.ID, ok
	return ok
}

func (w *worker) report(addr uint64, prev *sched.Strand, prevKind detect.AccessKind, cur *sched.Strand, curKind detect.AccessKind, dedup bool) {
	w.count++
	if w.racy[addr] {
		if dedup {
			return
		}
	} else {
		w.racy[addr] = true
	}
	w.races = append(w.races, detect.Race{
		Addr:       addr,
		PrevStrand: prev.ID,
		CurStrand:  cur.ID,
		PrevFuture: prev.Fut.ID,
		CurFuture:  cur.Fut.ID,
		Prev:       prevKind,
		Cur:        curKind,
	})
}

// apply runs the online history's per-location algorithm (ReadersAll
// policy) on the worker's private shard.
func (w *worker) apply(r *core.Reach, s *sched.Strand, addr uint64, kind detect.AccessKind, dedup bool) {
	w.entries++
	l := w.locs[addr]
	if l == nil {
		l = &wloc{}
		w.locs[addr] = l
	}
	if lw := l.lastWriter; lw != nil && lw != s && !w.precedes(r, lw, s) {
		w.report(addr, lw, detect.AccessWrite, s, kind, dedup)
	}
	if kind == detect.AccessRead {
		if n := len(l.readers); n == 0 || l.readers[n-1] != s {
			l.readers = append(l.readers, s)
		}
		return
	}
	for _, rd := range l.readers {
		if rd != s && !w.precedes(r, rd, s) {
			w.report(addr, rd, detect.AccessRead, s, detect.AccessWrite, dedup)
		}
	}
	l.readers = l.readers[:0]
	l.lastWriter = s
}

// Run replays a capture and returns the offline detection result.
func Run(c *trace.Capture, opts Options) (*Result, error) {
	p := opts.Workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	maxRaces := opts.MaxRaces
	if maxRaces == 0 {
		maxRaces = 256
	}
	rw := opts.RebuildWorkers
	// The precomputed-table path needs a label substrate: an OM list is
	// one mutable structure that must be built in event order, so OM
	// falls back to the serial rebuild regardless of RebuildWorkers.
	parallelRebuild := rw > 1 && (opts.Reach == core.SubstrateDePa || opts.Reach == core.SubstrateHybrid)
	if !parallelRebuild {
		rw = 1
	}

	rebuildStart := time.Now()
	var (
		reach   *core.Reach
		strands []*sched.Strand
		rinfo   *rebuildInfo
		err     error
	)
	if parallelRebuild {
		strands, reach, rinfo, err = rebuildParallel(c, opts, rw)
	} else {
		reach = core.New(core.Config{Reach: opts.Reach, HybridDepth: opts.HybridDepth})
		strands, err = rebuild(c, reach)
	}
	if err != nil {
		return nil, err
	}
	rebuildElapsed := time.Since(rebuildStart)
	if opts.Stats != nil {
		reach.RegisterStats(opts.Stats)
	}

	// Pre-check block strand references once, so workers can index
	// without validating.
	for _, b := range c.Blocks {
		if b.Strand >= uint64(len(strands)) || strands[b.Strand] == nil {
			return nil, fmt.Errorf("replay: access block names unknown strand %d", b.Strand)
		}
	}

	detectStart := time.Now()
	workers := make([]*worker, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		w := newWorker(i)
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker scans the whole (read-only) capture and applies
			// only its own shard's entries: no partitioning pass, no
			// queues, no synchronization on the hot loop.
			for _, b := range c.Blocks {
				s := strands[b.Strand]
				for j, addr := range b.Addrs {
					if ShardOf(addr, p) != w.id {
						continue
					}
					w.apply(reach, s, addr, b.Kinds[j], opts.DedupByAddr)
				}
			}
		}()
	}
	wg.Wait()
	detectElapsed := time.Since(detectStart)

	res := &Result{
		Strands:         c.Strands,
		Futures:         uint64(c.Futures),
		Events:          uint64(len(c.Events)),
		Entries:         c.Entries,
		Shards:          p,
		Rebuild:         rebuildElapsed,
		Detect:          detectElapsed,
		RebuildWorkers:  rw,
		RebuildParallel: parallelRebuild,
	}
	if rinfo != nil {
		res.RebuildLabels = rinfo.labels
		res.RebuildWork = rinfo.totalWork
		res.RebuildMaxSegment = rinfo.maxSegment
	}
	mergeWorkers(res, workers, maxRaces)
	res.ReachMemBytes = reach.MemBytes()

	if opts.Stats != nil {
		registerStats(opts.Stats, res, int64(len(c.Blocks)), c.Bytes)
	}
	return res, nil
}

// mergeWorkers folds the per-shard results into res deterministically:
// the per-worker orders depend only on file order, so sorting by (addr,
// strand pair, kinds) makes the final report independent of worker
// interleaving and worker count. Sets res.Merge.
func mergeWorkers(res *Result, workers []*worker, maxRaces int) {
	mergeStart := time.Now()
	for _, w := range workers {
		res.RaceCount += w.count
		res.Queries += w.queries
		if w.entries > res.MaxShardEntries {
			res.MaxShardEntries = w.entries
		}
		res.Races = append(res.Races, w.races...)
		for a := range w.racy {
			res.RacyAddrs = append(res.RacyAddrs, a)
		}
	}
	sort.Slice(res.Races, func(i, j int) bool {
		a, b := res.Races[i], res.Races[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.PrevStrand != b.PrevStrand {
			return a.PrevStrand < b.PrevStrand
		}
		if a.CurStrand != b.CurStrand {
			return a.CurStrand < b.CurStrand
		}
		return a.Prev < b.Prev
	})
	if len(res.Races) > maxRaces {
		res.Races = res.Races[:maxRaces]
	}
	sort.Slice(res.RacyAddrs, func(i, j int) bool { return res.RacyAddrs[i] < res.RacyAddrs[j] })
	res.Merge = time.Since(mergeStart)
}

// newWorker allocates one detection shard.
func newWorker(id int) *worker {
	return &worker{
		id:     id,
		locs:   map[uint64]*wloc{},
		memoU:  make([]uint64, 1<<memoBits),
		memoV:  make([]uint64, 1<<memoBits),
		memoOK: make([]bool, 1<<memoBits),
		racy:   map[uint64]bool{},
	}
}

// registerStats publishes the replay.* gauges for a completed run.
func registerStats(reg *obsv.Registry, res *Result, blocks, bytes int64) {
	streamed := int64(0)
	wall := res.Rebuild + res.Detect + res.Merge
	if res.Streamed {
		streamed = 1
		// Streamed Detect is the full pipeline wall and already
		// contains the (overlapped) rebuild time.
		wall = res.Detect + res.Merge
	}
	parallel := int64(0)
	if res.RebuildParallel {
		parallel = 1
	}
	vals := map[string]int64{
		"replay.events":              int64(res.Events),
		"replay.entries":             int64(res.Entries),
		"replay.blocks":              blocks,
		"replay.shards":              int64(res.Shards),
		"replay.max_shard_entries":   int64(res.MaxShardEntries),
		"replay.bytes":               bytes,
		"replay.wall_ns":             int64(wall),
		"replay.rebuild_ns":          int64(res.Rebuild),
		"replay.detect_ns":           int64(res.Detect),
		"replay.merge_ns":            int64(res.Merge),
		"replay.queries":             int64(res.Queries),
		"replay.races":               int64(res.RaceCount),
		"replay.rebuild_workers":     int64(res.RebuildWorkers),
		"replay.rebuild_parallel":    parallel,
		"replay.rebuild_labels":      int64(res.RebuildLabels),
		"replay.rebuild_work":        int64(res.RebuildWork),
		"replay.rebuild_max_segment": int64(res.RebuildMaxSegment),
		"replay.streamed":            streamed,
		"replay.stream_peak_blocks":  res.StreamPeakBlocks,
		"replay.stream_peak_bytes":   res.StreamPeakBytes,
	}
	for name, v := range vals {
		v := v
		reg.RegisterFunc(name, func() int64 { return v })
	}
}

// Package replay re-runs race detection offline from an sftrace capture
// (internal/trace), decoupling detection cost from the traced program:
// record once, detect anywhere, with parallelism bounded by the replay
// worker count instead of the program's span.
//
// Replay has two phases:
//
//  1. Rebuild. The capture's structure events are fed, in file order,
//     through the pluggable reachability substrate (internal/core — OM
//     lists, DePa cords, or the hybrid) exactly as the online tracer
//     would have been. File order is a happens-before-consistent
//     linearization of the run (see internal/trace), so every Tracer
//     precondition holds. The rebuild is serial; it is a tiny fraction
//     of detection work, and after it the reachability state is
//     read-only — with the DePa substrate, a set of frozen immutable
//     labels any number of workers can query lock-free.
//
//  2. Sharded detection. Access entries are partitioned by address hash
//     across P workers. Each worker owns a disjoint shadow-state shard —
//     a private last-writer/readers table for exactly the addresses that
//     hash to it — so the hot loop takes no locks, publishes no state
//     words, and shares nothing with other workers but the read-only
//     reachability structures and the capture itself. Per-location
//     detection is what the online detector guarantees (a race is
//     reported on a location iff one exists there), and every location
//     lives wholly inside one shard, so sharding changes no verdict
//     (DESIGN.md §4). Races merge deterministically at the end.
package replay

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/obsv"
	"sforder/internal/sched"
	"sforder/internal/trace"
)

// Options configures a replay run.
type Options struct {
	// Workers is the number of detection shards/workers; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Reach selects the reachability substrate the dag is rebuilt on.
	// SubstrateDePa is the natural offline choice (frozen immutable
	// labels, lock-free queries); all three work.
	Reach core.Substrate
	// HybridDepth is the SubstrateHybrid switchover depth (0 = default).
	HybridDepth int
	// MaxRaces caps retained detailed race records (0 = 256), applied
	// after the deterministic merge.
	MaxRaces int
	// DedupByAddr retains at most one detailed record per address.
	// Exact under sharding: an address's accesses all land in one shard.
	DedupByAddr bool
	// Stats, when non-nil, receives the replay.* gauges.
	Stats *obsv.Registry
}

// Result reports a completed replay.
type Result struct {
	// Races holds up to MaxRaces detailed reports after the
	// deterministic merge; RaceCount is the total number detected.
	Races     []detect.Race
	RaceCount uint64
	// RacyAddrs is the sorted set of addresses with at least one race —
	// the location-level verdict compared against online detection.
	RacyAddrs []uint64
	// Strands and Futures describe the replayed dag.
	Strands uint64
	Futures uint64
	// Events and Entries count structure events and access entries.
	Events  uint64
	Entries uint64
	// Queries is the number of Precedes queries across all workers.
	Queries uint64
	// Shards is the worker count used; MaxShardEntries the largest
	// number of access entries any one shard processed (shard balance:
	// MaxShardEntries ≈ Entries/Shards means near-perfect partitioning).
	Shards          int
	MaxShardEntries uint64
	// Rebuild and Detect are the wall-clock times of the two phases.
	Rebuild time.Duration
	Detect  time.Duration
	// ReachMemBytes estimates the rebuilt reachability footprint.
	ReachMemBytes int
}

// ShardOf returns the detection shard owning addr among p shards: the
// same Fibonacci hash the shadow tables use, reduced modulo p. Exported
// so tests can construct racing pairs that straddle a shard boundary.
func ShardOf(addr uint64, p int) int {
	return int((addr * 0x9e3779b97f4a7c15) >> 32 % uint64(p))
}

// rebuild replays the structure events through a fresh Reach,
// reconstructing strand and future identities. It returns the synthetic
// strands so detection can hand them to Precedes.
func rebuild(c *trace.Capture, r *core.Reach) ([]*sched.Strand, error) {
	// Dense-ID sanity: a structurally consistent capture introduces at
	// most 3 strands and 1 future per event. Bounds the allocation on
	// adversarial inputs before trusting the decoded maxima.
	if c.Strands > 3*uint64(len(c.Events))+1 || uint64(c.Futures) > uint64(len(c.Events))+1 {
		return nil, fmt.Errorf("replay: capture names %d strands/%d futures across %d events (corrupt capture)",
			c.Strands, c.Futures, len(c.Events))
	}
	strands := make([]*sched.Strand, c.Strands)
	futs := make([]*sched.FutureTask, c.Futures)
	need := func(i int, id uint64) (*sched.Strand, error) {
		if id >= uint64(len(strands)) || strands[id] == nil {
			return nil, fmt.Errorf("replay: event %d: strand %d referenced before introduction", i, id)
		}
		return strands[id], nil
	}
	intro := func(i int, id uint64, f *sched.FutureTask) (*sched.Strand, error) {
		if id >= uint64(len(strands)) {
			return nil, fmt.Errorf("replay: event %d: strand %d out of range", i, id)
		}
		if strands[id] != nil {
			return nil, fmt.Errorf("replay: event %d: strand %d introduced twice", i, id)
		}
		s := &sched.Strand{ID: id, Fut: f}
		strands[id] = s
		return s, nil
	}
	needFut := func(i, id int) (*sched.FutureTask, error) {
		if id < 0 || id >= len(futs) || futs[id] == nil {
			return nil, fmt.Errorf("replay: event %d: future %d referenced before creation", i, id)
		}
		return futs[id], nil
	}
	for i, ev := range c.Events {
		switch ev.Op {
		case trace.OpRoot:
			if i != 0 || futs[0] != nil {
				return nil, fmt.Errorf("replay: event %d: misplaced root", i)
			}
			f := &sched.FutureTask{ID: 0}
			futs[0] = f
			root, err := intro(i, ev.U, f)
			if err != nil {
				return nil, err
			}
			r.OnRoot(root)
		case trace.OpSpawn:
			u, err := need(i, ev.U)
			if err != nil {
				return nil, err
			}
			child, err := intro(i, ev.A, u.Fut)
			if err != nil {
				return nil, err
			}
			cont, err := intro(i, ev.B, u.Fut)
			if err != nil {
				return nil, err
			}
			var ph *sched.Strand
			if ev.Placeholder > 0 {
				if ph, err = intro(i, ev.Placeholder-1, u.Fut); err != nil {
					return nil, err
				}
			}
			r.OnSpawn(u, child, cont, ph)
		case trace.OpCreate:
			u, err := need(i, ev.U)
			if err != nil {
				return nil, err
			}
			parent, err := needFut(i, ev.FutParent)
			if err != nil {
				return nil, err
			}
			if ev.Fut < 0 || ev.Fut >= len(futs) || futs[ev.Fut] != nil {
				return nil, fmt.Errorf("replay: event %d: future %d out of range or created twice", i, ev.Fut)
			}
			f := &sched.FutureTask{ID: ev.Fut, Parent: parent}
			futs[ev.Fut] = f
			first, err := intro(i, ev.A, f)
			if err != nil {
				return nil, err
			}
			cont, err := intro(i, ev.B, u.Fut)
			if err != nil {
				return nil, err
			}
			var ph *sched.Strand
			if ev.Placeholder > 0 {
				if ph, err = intro(i, ev.Placeholder-1, u.Fut); err != nil {
					return nil, err
				}
			}
			r.OnCreate(u, first, cont, ph, f)
		case trace.OpSync:
			k, err := need(i, ev.U)
			if err != nil {
				return nil, err
			}
			// The sync strand is the placeholder introduced at the
			// region's first branch; regions that never allocated one
			// (the implicit sync of a branch-free body) introduce it here.
			var s *sched.Strand
			if ev.A < uint64(len(strands)) && strands[ev.A] != nil {
				s = strands[ev.A]
			} else if s, err = intro(i, ev.A, k.Fut); err != nil {
				return nil, err
			}
			sinks := make([]*sched.Strand, len(ev.Sinks))
			for j, id := range ev.Sinks {
				if sinks[j], err = need(i, id); err != nil {
					return nil, err
				}
			}
			r.OnSync(k, s, sinks)
		case trace.OpReturn:
			sink, err := need(i, ev.U)
			if err != nil {
				return nil, err
			}
			r.OnReturn(sink)
		case trace.OpPut:
			sink, err := need(i, ev.U)
			if err != nil {
				return nil, err
			}
			f, err := needFut(i, ev.Fut)
			if err != nil {
				return nil, err
			}
			f.SetLast(sink)
			r.OnPut(sink, f)
		case trace.OpGet:
			u, err := need(i, ev.U)
			if err != nil {
				return nil, err
			}
			f, err := needFut(i, ev.Fut)
			if err != nil {
				return nil, err
			}
			if f.Last() == nil {
				return nil, fmt.Errorf("replay: event %d: get of future %d before its put", i, ev.Fut)
			}
			g, err := intro(i, ev.A, u.Fut)
			if err != nil {
				return nil, err
			}
			r.OnGet(u, g, f)
		default:
			return nil, fmt.Errorf("replay: event %d: unexpected op %v", i, ev.Op)
		}
	}
	return strands, nil
}

// wloc is one location's shadow state inside a worker's private shard.
type wloc struct {
	lastWriter *sched.Strand
	readers    []*sched.Strand
}

// memoBits sizes the per-worker direct-mapped Precedes memo.
const memoBits = 14

// worker is one detection shard: private shadow state, private memo,
// private results. Nothing here is touched by any other goroutine.
type worker struct {
	id      int
	locs    map[uint64]*wloc
	memoU   []uint64 // key: u.ID+1 (0 = empty)
	memoV   []uint64 // key: v.ID
	memoOK  []bool
	races   []detect.Race
	racy    map[uint64]bool
	count   uint64
	queries uint64
	entries uint64
}

func (w *worker) precedes(r *core.Reach, u, v *sched.Strand) bool {
	i := (u.ID*0x9e3779b97f4a7c15 ^ v.ID*0xc2b2ae3d27d4eb4f) >> (64 - memoBits)
	if w.memoU[i] == u.ID+1 && w.memoV[i] == v.ID {
		return w.memoOK[i]
	}
	w.queries++
	ok := r.PrecedesUncounted(u, v)
	w.memoU[i], w.memoV[i], w.memoOK[i] = u.ID+1, v.ID, ok
	return ok
}

func (w *worker) report(addr uint64, prev *sched.Strand, prevKind detect.AccessKind, cur *sched.Strand, curKind detect.AccessKind, dedup bool) {
	w.count++
	if w.racy[addr] {
		if dedup {
			return
		}
	} else {
		w.racy[addr] = true
	}
	w.races = append(w.races, detect.Race{
		Addr:       addr,
		PrevStrand: prev.ID,
		CurStrand:  cur.ID,
		PrevFuture: prev.Fut.ID,
		CurFuture:  cur.Fut.ID,
		Prev:       prevKind,
		Cur:        curKind,
	})
}

// apply runs the online history's per-location algorithm (ReadersAll
// policy) on the worker's private shard.
func (w *worker) apply(r *core.Reach, s *sched.Strand, addr uint64, kind detect.AccessKind, dedup bool) {
	w.entries++
	l := w.locs[addr]
	if l == nil {
		l = &wloc{}
		w.locs[addr] = l
	}
	if lw := l.lastWriter; lw != nil && lw != s && !w.precedes(r, lw, s) {
		w.report(addr, lw, detect.AccessWrite, s, kind, dedup)
	}
	if kind == detect.AccessRead {
		if n := len(l.readers); n == 0 || l.readers[n-1] != s {
			l.readers = append(l.readers, s)
		}
		return
	}
	for _, rd := range l.readers {
		if rd != s && !w.precedes(r, rd, s) {
			w.report(addr, rd, detect.AccessRead, s, detect.AccessWrite, dedup)
		}
	}
	l.readers = l.readers[:0]
	l.lastWriter = s
}

// Run replays a capture and returns the offline detection result.
func Run(c *trace.Capture, opts Options) (*Result, error) {
	p := opts.Workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	maxRaces := opts.MaxRaces
	if maxRaces == 0 {
		maxRaces = 256
	}
	reach := core.New(core.Config{Reach: opts.Reach, HybridDepth: opts.HybridDepth})
	if opts.Stats != nil {
		reach.RegisterStats(opts.Stats)
	}

	rebuildStart := time.Now()
	strands, err := rebuild(c, reach)
	if err != nil {
		return nil, err
	}
	rebuildElapsed := time.Since(rebuildStart)

	// Pre-check block strand references once, so workers can index
	// without validating.
	for _, b := range c.Blocks {
		if b.Strand >= uint64(len(strands)) || strands[b.Strand] == nil {
			return nil, fmt.Errorf("replay: access block names unknown strand %d", b.Strand)
		}
	}

	detectStart := time.Now()
	workers := make([]*worker, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		w := &worker{
			id:     i,
			locs:   map[uint64]*wloc{},
			memoU:  make([]uint64, 1<<memoBits),
			memoV:  make([]uint64, 1<<memoBits),
			memoOK: make([]bool, 1<<memoBits),
			racy:   map[uint64]bool{},
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker scans the whole (read-only) capture and applies
			// only its own shard's entries: no partitioning pass, no
			// queues, no synchronization on the hot loop.
			for _, b := range c.Blocks {
				s := strands[b.Strand]
				for j, addr := range b.Addrs {
					if ShardOf(addr, p) != w.id {
						continue
					}
					w.apply(reach, s, addr, b.Kinds[j], opts.DedupByAddr)
				}
			}
		}()
	}
	wg.Wait()
	detectElapsed := time.Since(detectStart)

	res := &Result{
		Strands: c.Strands,
		Futures: uint64(c.Futures),
		Events:  uint64(len(c.Events)),
		Entries: c.Entries,
		Shards:  p,
		Rebuild: rebuildElapsed,
		Detect:  detectElapsed,
	}
	for _, w := range workers {
		res.RaceCount += w.count
		res.Queries += w.queries
		if w.entries > res.MaxShardEntries {
			res.MaxShardEntries = w.entries
		}
		res.Races = append(res.Races, w.races...)
		for a := range w.racy {
			res.RacyAddrs = append(res.RacyAddrs, a)
		}
	}
	// Deterministic merge: the per-worker orders depend only on file
	// order, so sorting by (addr, strand pair, kinds) makes the final
	// report independent of worker interleaving and worker count.
	sort.Slice(res.Races, func(i, j int) bool {
		a, b := res.Races[i], res.Races[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.PrevStrand != b.PrevStrand {
			return a.PrevStrand < b.PrevStrand
		}
		if a.CurStrand != b.CurStrand {
			return a.CurStrand < b.CurStrand
		}
		return a.Prev < b.Prev
	})
	if len(res.Races) > maxRaces {
		res.Races = res.Races[:maxRaces]
	}
	sort.Slice(res.RacyAddrs, func(i, j int) bool { return res.RacyAddrs[i] < res.RacyAddrs[j] })
	res.ReachMemBytes = reach.MemBytes()

	if opts.Stats != nil {
		registerStats(opts.Stats, res, c)
	}
	return res, nil
}

// registerStats publishes the replay.* gauges for a completed run.
func registerStats(reg *obsv.Registry, res *Result, c *trace.Capture) {
	vals := map[string]int64{
		"replay.events":            int64(res.Events),
		"replay.entries":           int64(res.Entries),
		"replay.blocks":            int64(len(c.Blocks)),
		"replay.shards":            int64(res.Shards),
		"replay.max_shard_entries": int64(res.MaxShardEntries),
		"replay.bytes":             c.Bytes,
		"replay.wall_ns":           int64(res.Rebuild + res.Detect),
		"replay.rebuild_ns":        int64(res.Rebuild),
		"replay.detect_ns":         int64(res.Detect),
		"replay.queries":           int64(res.Queries),
		"replay.races":             int64(res.RaceCount),
	}
	for name, v := range vals {
		v := v
		reg.RegisterFunc(name, func() int64 { return v })
	}
}

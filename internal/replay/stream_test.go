package replay_test

import (
	"bytes"
	"sync"
	"testing"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/obsv"
	"sforder/internal/progen"
	"sforder/internal/replay"
	"sforder/internal/sched"
	"sforder/internal/trace"
)

// recordBytes is record keeping the raw capture bytes: streaming replay
// consumes the byte stream, not a loaded Capture.
func recordBytes(t testing.TB, main func(*sched.Task), workers int) ([]byte, []uint64) {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	reach := core.NewReach()
	hist := detect.NewHistory(detect.Options{Reach: reach, FastPath: true, Tap: rec})
	opts := sched.Options{Tracer: reach, Aux: rec, Checker: hist}
	if workers <= 1 {
		opts.Serial = true
	} else {
		opts.Workers = workers
	}
	if _, err := sched.Run(opts, main); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), hist.RacyAddrs()
}

// TestStreamReplayMatchesBarriered is the streaming verdict-equality
// fuzz: on random programs — serial and parallel-recorded — RunStream
// over every substrate and worker count must produce the exact merged
// report of the barriered replay.Run on the loaded capture, which
// itself matches online detection.
func TestStreamReplayMatchesBarriered(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 6})
		recWorkers := 1
		if seed%3 == 2 {
			recWorkers = 4
		}
		raw, online := recordBytes(t, p.Main(), recWorkers)
		c, err := trace.Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range substrates {
			for _, workers := range []int{1, 4} {
				barriered, err := replay.Run(c, replay.Options{
					Workers: workers, Reach: sub.sub, HybridDepth: sub.depth,
				})
				if err != nil {
					t.Fatalf("seed %d %s/%dw: %v", seed, sub.name, workers, err)
				}
				res, err := replay.RunStream(bytes.NewReader(raw), replay.Options{
					Workers: workers, Reach: sub.sub, HybridDepth: sub.depth,
				})
				if err != nil {
					t.Fatalf("seed %d %s/%dw stream: %v", seed, sub.name, workers, err)
				}
				if !res.Streamed {
					t.Fatalf("seed %d: result not marked streamed", seed)
				}
				sameRaces(t, sub.name, res, barriered)
				if !sameAddrs(res.RacyAddrs, online) {
					t.Fatalf("seed %d %s/%dw: stream %v, online %v",
						seed, sub.name, workers, res.RacyAddrs, online)
				}
				if res.Entries != c.Entries || res.Strands != c.Strands || res.Events != uint64(len(c.Events)) {
					t.Fatalf("seed %d %s/%dw: totals %d/%d/%d, capture %d/%d/%d",
						seed, sub.name, workers, res.Entries, res.Strands, res.Events,
						c.Entries, c.Strands, uint64(len(c.Events)))
				}
			}
		}
	}
}

// chainCapture crafts a capture whose root strand emits `blocks` access
// blocks of `per` entries each — the block count scales freely without
// growing the strand structure, so resident-memory bounds are isolated
// from dag size.
func chainCapture(t testing.TB, blocks, per int) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	f0 := &sched.FutureTask{ID: 0}
	root := &sched.Strand{ID: 0, Fut: f0}
	rec.OnRoot(root)
	addrs := make([]uint64, per)
	kinds := make([]detect.AccessKind, per)
	for b := 0; b < blocks; b++ {
		for i := range addrs {
			addrs[i] = uint64(b*per + i)
			kinds[i] = detect.AccessWrite
		}
		rec.TapAccesses(root, addrs, kinds)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamBoundedMemory pins the streaming memory bound: peak
// capture-resident blocks never exceed StreamQueueCap + Workers + 1,
// and the peak does not grow when the trace gets 10× longer — constant
// memory in trace length.
func TestStreamBoundedMemory(t *testing.T) {
	const workers = 2
	bound := int64(replay.StreamQueueCap + workers + 1)
	var peaks []int64
	for _, blocks := range []int{200, 2000} {
		raw := chainCapture(t, blocks, 8)
		res, err := replay.RunStream(bytes.NewReader(raw), replay.Options{
			Workers: workers, Reach: core.SubstrateDePa,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.StreamPeakBlocks == 0 || res.StreamPeakBytes == 0 {
			t.Fatalf("%d blocks: no peak accounted", blocks)
		}
		if res.StreamPeakBlocks > bound {
			t.Fatalf("%d blocks: peak %d blocks, bound %d", blocks, res.StreamPeakBlocks, bound)
		}
		peaks = append(peaks, res.StreamPeakBlocks)
	}
	if peaks[1] > bound {
		t.Fatalf("10× trace pushed the peak to %d (bound %d)", peaks[1], bound)
	}
}

// TestStreamRejectsCorrupt: truncations and structure violations fail
// the streamed replay with an error, never a partial verdict.
func TestStreamRejectsCorrupt(t *testing.T) {
	p := progen.New(progen.Config{Seed: 2, MaxDepth: 4, MaxOps: 8, Addrs: 4})
	raw, _ := recordBytes(t, p.Main(), 1)
	for _, cut := range []int{len(raw) - 1, len(raw) / 2, 30} {
		if _, err := replay.RunStream(bytes.NewReader(raw[:cut]), replay.Options{
			Workers: 2, Reach: core.SubstrateDePa,
		}); err == nil {
			t.Errorf("cut at %d: streamed replay succeeded", cut)
		}
	}
	// A block naming an undeclared strand dies in the decoder before it
	// can reach a shard.
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	f0 := &sched.FutureTask{ID: 0}
	rec.OnRoot(&sched.Strand{ID: 0, Fut: f0})
	rec.TapAccesses(&sched.Strand{ID: 50, Fut: f0}, []uint64{1}, []detect.AccessKind{detect.AccessWrite})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := replay.RunStream(bytes.NewReader(buf.Bytes()), replay.Options{
		Workers: 2, Reach: core.SubstrateDePa,
	}); err == nil {
		t.Error("streamed replay accepted a block for an undeclared strand")
	}
}

// TestStreamConcurrentPublication is the -race stress of the pipeline's
// core hazard: the loader publishing labels and bitmaps (including OM
// list inserts with relabelings) while eight shards concurrently query
// them — across all three substrates, on parallel-recorded captures,
// with several streams in flight at once.
func TestStreamConcurrentPublication(t *testing.T) {
	p := progen.New(progen.Config{Seed: 13, MaxDepth: 5, MaxOps: 9, Addrs: 8})
	raw, online := recordBytes(t, p.Main(), 4)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := substrates[i%len(substrates)]
			res, err := replay.RunStream(bytes.NewReader(raw), replay.Options{
				Workers: 8, Reach: sub.sub, HybridDepth: sub.depth,
			})
			if err != nil {
				t.Errorf("stream %d: %v", i, err)
				return
			}
			if !sameAddrs(res.RacyAddrs, online) {
				t.Errorf("stream %d (%s): %v, online %v", i, sub.name, res.RacyAddrs, online)
			}
		}()
	}
	wg.Wait()
}

// TestStreamGauges: a streamed run registers the stream gauges.
func TestStreamGauges(t *testing.T) {
	p := progen.New(progen.Config{Seed: 3, MaxDepth: 4, MaxOps: 7})
	raw, _ := recordBytes(t, p.Main(), 1)
	reg := obsv.NewRegistry()
	res, err := replay.RunStream(bytes.NewReader(raw), replay.Options{
		Workers: 2, Reach: core.SubstrateDePa, Stats: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["replay.streamed"] != 1 {
		t.Errorf("replay.streamed = %d, want 1", snap["replay.streamed"])
	}
	if snap["replay.stream_peak_blocks"] != res.StreamPeakBlocks {
		t.Errorf("peak gauge %d, result %d", snap["replay.stream_peak_blocks"], res.StreamPeakBlocks)
	}
	if snap["replay.bytes"] == 0 || snap["replay.wall_ns"] == 0 {
		t.Errorf("bytes/wall gauges empty: %d/%d", snap["replay.bytes"], snap["replay.wall_ns"])
	}
	if snap["replay.merge_ns"] < 0 {
		t.Errorf("merge gauge negative")
	}
}

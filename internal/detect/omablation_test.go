package detect_test

import (
	"testing"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// runRacyCfg is runRacy with an explicit core.Config, for the ABL8 knob
// grid (fine-grained vs global OM locking, arenas vs heap).
func runRacyCfg(t *testing.T, p *progen.Program, ccfg core.Config, opts detect.Options) []uint64 {
	t.Helper()
	reach := core.New(ccfg)
	opts.Reach = reach
	hist := detect.NewHistory(opts)
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: reach, Checker: hist}, p.Main()); err != nil {
		t.Fatal(err)
	}
	return hist.RacyAddrs()
}

// TestOMLockArenaMatchesOracleFuzz extends the fast-path fuzz to the PR
// 4 ablation knobs: on random programs, the racy-location set must be
// identical to the exhaustive oracle with OM locking fine-grained or
// global and arenas on or off, across both shadow backends.
func TestOMLockArenaMatchesOracleFuzz(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		want := runOracle(t, p)
		for _, global := range []bool{false, true} {
			for _, noArena := range []bool{false, true} {
				ccfg := core.Config{GlobalOMLock: global, NoArena: noArena}
				for _, backend := range []detect.Backend{detect.BackendShardedMap, detect.BackendTwoLevel} {
					got := runRacyCfg(t, p, ccfg, detect.Options{Backend: backend, FastPath: true})
					if !sameAddrs(got, want) {
						t.Fatalf("seed %d global=%v noarena=%v backend %v: got %v, oracle %v",
							seed, global, noArena, backend, got, want)
					}
				}
			}
		}
	}
}

// TestOMLockArenaParallelAgreement runs random programs on the parallel
// engine (4 workers, lane arenas active since the Reach is the direct
// Tracer) under every knob combination and compares the racy set to the
// serial oracle. Repeats catch schedule-dependent misbehavior of the
// fine-grained insert path.
func TestOMLockArenaParallelAgreement(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		want := runOracle(t, p)
		for _, ccfg := range []core.Config{
			{}, // fine-grained + arenas (the default)
			{GlobalOMLock: true},
			{NoArena: true},
			{GlobalOMLock: true, NoArena: true},
		} {
			for rep := 0; rep < 2; rep++ {
				reach := core.New(ccfg)
				hist := detect.NewHistory(detect.Options{Reach: reach, FastPath: true})
				if _, err := sched.Run(sched.Options{Workers: 4, Tracer: reach, Checker: hist}, p.Main()); err != nil {
					t.Fatal(err)
				}
				if got := hist.RacyAddrs(); !sameAddrs(got, want) {
					t.Fatalf("seed %d cfg %+v rep %d: parallel %v, oracle %v",
						seed, ccfg, rep, got, want)
				}
			}
		}
	}
}

package detect_test

import (
	"sync"
	"testing"

	"sforder/internal/core"
	"sforder/internal/dag"
	"sforder/internal/detect"
	"sforder/internal/obsv"
	"sforder/internal/oracle"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// runRacy executes p serially under full SF-Order detection and returns
// the racy-location set. The History is the engine's checker directly so
// the StrandCloser hook fires (required by the fast path).
func runRacy(t *testing.T, p *progen.Program, opts detect.Options) []uint64 {
	t.Helper()
	reach := core.NewReach()
	opts.Reach = reach
	if opts.Policy == detect.ReadersLR {
		opts.LeftOf = reach.LeftOf
	}
	hist := detect.NewHistory(opts)
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: reach, Checker: hist}, p.Main()); err != nil {
		t.Fatal(err)
	}
	return hist.RacyAddrs()
}

// runOracle executes p serially under the exhaustive oracle and returns
// the ground-truth racy-location set.
func runOracle(t *testing.T, p *progen.Program) []uint64 {
	t.Helper()
	reach := core.NewReach()
	rec := dag.NewRecorder()
	log := oracle.NewLogger()
	_, err := sched.Run(sched.Options{
		Serial:  true,
		Tracer:  sched.MultiTracer{reach, rec},
		Checker: log,
	}, p.Main())
	if err != nil {
		t.Fatal(err)
	}
	return log.RacyAddrs(rec)
}

func sameAddrs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFastPathMatchesOracleFuzz is the fast path's soundness fuzz: on
// random programs, the racy-location set with the fast path on must be
// byte-identical to the set with it off AND to the exhaustive oracle,
// on both backends. Programs run in separate engine executions (the dag
// and access addresses are deterministic), so each detector variant gets
// the StrandCloser hook it needs.
func TestFastPathMatchesOracleFuzz(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		want := runOracle(t, p)
		for _, backend := range []detect.Backend{detect.BackendShardedMap, detect.BackendTwoLevel} {
			off := runRacy(t, p, detect.Options{Backend: backend})
			on := runRacy(t, p, detect.Options{Backend: backend, FastPath: true})
			if !sameAddrs(off, want) {
				t.Fatalf("seed %d backend %v: fastpath off %v, oracle %v", seed, backend, off, want)
			}
			if !sameAddrs(on, want) {
				t.Fatalf("seed %d backend %v: fastpath on %v, oracle %v", seed, backend, on, want)
			}
		}
	}
}

// TestFastPathLRPolicyAgreement repeats the fuzz under the ReadersLR
// retention policy (which routes Precedes through updateLR and therefore
// through the per-strand memo).
func TestFastPathLRPolicyAgreement(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		want := runOracle(t, p)
		on := runRacy(t, p, detect.Options{Policy: detect.ReadersLR, FastPath: true})
		if !sameAddrs(on, want) {
			t.Fatalf("seed %d: fastpath+LR %v, oracle %v", seed, on, want)
		}
	}
}

// TestFastPathParallelAgreement runs random programs on the parallel
// engine (4 workers) with the fast path on and compares the racy set to
// the serial oracle: the detection guarantee is per-location and
// schedule-independent, so every schedule must produce the same set.
func TestFastPathParallelAgreement(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		want := runOracle(t, p)
		for rep := 0; rep < 3; rep++ {
			reach := core.NewReach()
			hist := detect.NewHistory(detect.Options{Reach: reach, FastPath: true})
			if _, err := sched.Run(sched.Options{Workers: 4, Tracer: reach, Checker: hist}, p.Main()); err != nil {
				t.Fatal(err)
			}
			if got := hist.RacyAddrs(); !sameAddrs(got, want) {
				t.Fatalf("seed %d rep %d: parallel fastpath %v, oracle %v", seed, rep, got, want)
			}
		}
	}
}

// TestFastPathStateWordHammer drives concurrent strands over a small
// shared address set with interleaved flushes, so state-word loads race
// against publications — the seqlock-style validation must be clean
// under the Go race detector (go test -race covers this file in CI).
func TestFastPathStateWordHammer(t *testing.T) {
	histFast := detect.NewHistory(detect.Options{
		Reach:       &stubReach{prec: map[[2]uint64]bool{}},
		DedupByAddr: true,
		FastPath:    true,
	})
	fut := &sched.FutureTask{ID: 0}
	const goroutines, rounds, addrs = 8, 200, 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// One strand per round: accesses batch on it, and the
				// close publishes the state words other goroutines load.
				s := &sched.Strand{ID: id*rounds + uint64(r), Fut: fut}
				for a := uint64(0); a < addrs; a++ {
					if (a+id)%4 == 0 {
						histFast.Write(s, a)
					} else {
						histFast.Read(s, a)
						histFast.Read(s, a) // repeat: dedup / state-word hit
					}
				}
				histFast.StrandClose(s)
			}
		}(uint64(g))
	}
	wg.Wait()
	// Everything is parallel under the stub reach, so every address saw
	// both a read and a write from different strands: all racy.
	if got := len(histFast.RacyAddrs()); got != addrs {
		t.Fatalf("racy addrs = %d, want %d", got, addrs)
	}
}

// TestStrandCloseIdempotent: closing a strand twice (engine close after
// an abort-time best-effort close) must be harmless.
func TestStrandCloseIdempotent(t *testing.T) {
	h := detect.NewHistory(detect.Options{
		Reach:    &stubReach{prec: map[[2]uint64]bool{}},
		FastPath: true,
	})
	s := fakeStrands(1)[0]
	h.Write(s, 1)
	h.StrandClose(s)
	h.StrandClose(s) // no-op
	h.Read(s, 1)     // a "reopened" strand just batches afresh
	h.StrandClose(s)
	if h.RaceCount() != 0 {
		t.Fatalf("self accesses reported as races: %v", h.Races())
	}
}

// TestFastPathEarlyFlush: a strand exceeding the batch capacity must
// flush early (bounding deferred work), after which re-accesses hit the
// published state word without any history traffic.
func TestFastPathEarlyFlush(t *testing.T) {
	h := detect.NewHistory(detect.Options{
		Reach:    &stubReach{prec: map[[2]uint64]bool{}},
		FastPath: true,
	})
	h.RegisterStats(obsv.NewRegistry()) // enable the counters
	ss := fakeStrands(2)
	const distinct = 1500 // > batchCap (1024)
	for a := uint64(0); a < distinct; a++ {
		h.Write(ss[0], a)
	}
	if h.BatchFlushes() == 0 {
		t.Fatal("early flush did not fire before strand close")
	}
	// Addresses from the flushed prefix are published: re-writing one is
	// a pure state-word hit.
	before := h.FastPathHits()
	h.Write(ss[0], 0)
	if h.FastPathHits() != before+1 {
		t.Fatalf("re-write after flush: fastpath hits %d, want %d", h.FastPathHits(), before+1)
	}
	h.StrandClose(ss[0])
	// A parallel strand touching every address must race on each.
	for a := uint64(0); a < distinct; a++ {
		h.Write(ss[1], a)
	}
	h.StrandClose(ss[1])
	if got := len(h.RacyAddrs()); got != distinct {
		t.Fatalf("racy addrs = %d, want %d", got, distinct)
	}
	if h.LockAcquires() >= distinct {
		t.Fatalf("lock acquires %d not amortized below %d accesses", h.LockAcquires(), distinct)
	}
}

// TestFastPathDedupSubsumption checks the batch's (addr, kind) rules: a
// read is subsumed by a prior same-strand read or write, a write only by
// a prior write — a write after a mere read must flush as a write.
func TestFastPathDedupSubsumption(t *testing.T) {
	h := detect.NewHistory(detect.Options{
		Reach:    &stubReach{prec: map[[2]uint64]bool{}},
		FastPath: true,
	})
	h.RegisterStats(obsv.NewRegistry())
	ss := fakeStrands(2)
	h.Read(ss[0], 9)
	h.Read(ss[0], 9)  // dup read
	h.Write(ss[0], 9) // NOT subsumed: must take over the writer slot
	h.Write(ss[0], 9) // dup write
	h.Read(ss[0], 9)  // subsumed by the write
	h.StrandClose(ss[0])
	if h.BatchDedupHits() != 3 {
		t.Fatalf("dedup hits = %d, want 3", h.BatchDedupHits())
	}
	// ss[1] reads: must race against ss[0]'s WRITE (kind preserved).
	h.Read(ss[1], 9)
	h.StrandClose(ss[1])
	races := h.Races()
	if len(races) != 1 || races[0].Prev != detect.AccessWrite {
		t.Fatalf("want one write/read race, got %v", races)
	}
}

// TestFastPathMemoServesRepeatedVerdicts: a streak of locations with the
// same last writer must hit the per-strand Precedes memo.
func TestFastPathMemoServesRepeatedVerdicts(t *testing.T) {
	ss := fakeStrands(2)
	h := detect.NewHistory(detect.Options{
		Reach:    orderAll(ss),
		FastPath: true,
	})
	h.RegisterStats(obsv.NewRegistry())
	for a := uint64(0); a < 100; a++ {
		h.Write(ss[0], a)
	}
	h.StrandClose(ss[0])
	for a := uint64(0); a < 100; a++ {
		h.Write(ss[1], a) // each checks Precedes(ss[0], ss[1])
	}
	h.StrandClose(ss[1])
	if h.RaceCount() != 0 {
		t.Fatalf("serial writes reported racy: %v", h.Races())
	}
	if h.MemoHits() < 90 {
		t.Fatalf("memo hits = %d, want ≥ 90 of 100 repeated verdicts", h.MemoHits())
	}
}

// TestTwoLevelConcurrentPageCreation hammers the lock-free directory's
// CAS insertion: many goroutines force page creation across colliding
// directory slots; every access must land on a correct page (validated
// by the race count being exactly one per address afterwards).
func TestTwoLevelConcurrentPageCreation(t *testing.T) {
	h := newTwoLevelHistory(map[[2]uint64]bool{})
	fut := &sched.FutureTask{ID: 0}
	const goroutines = 8
	const pages = 2048
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			s := &sched.Strand{ID: 1 + id, Fut: fut}
			for p := uint64(0); p < pages; p++ {
				h.Read(s, p<<8|id) // distinct slot per goroutine: no races
			}
		}(uint64(g))
	}
	wg.Wait()
	if h.RaceCount() != 0 {
		t.Fatalf("distinct addresses reported racy: %d", h.RaceCount())
	}
	// Now one writer over every goroutine's addresses: if any page or
	// slot was lost during concurrent creation, a race goes missing.
	w := &sched.Strand{ID: 0, Fut: fut}
	for p := uint64(0); p < pages; p++ {
		for id := uint64(0); id < goroutines; id++ {
			h.Write(w, p<<8|id)
		}
	}
	if want := uint64(pages * goroutines); h.RaceCount() != want {
		t.Fatalf("RaceCount = %d, want %d (one per address)", h.RaceCount(), want)
	}
}

package detect_test

import (
	"testing"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// TestDequeAblationParallelAgreement extends the knob-grid fuzz to the
// PR 5 scheduler ablation: on random programs at 4 workers, the
// racy-location set must be identical to the serial exhaustive oracle
// whether jobs move through the lock-free Chase–Lev deques or the
// mutex-deque ablation, across both shadow backends. The two
// schedulers produce different steal interleavings (and the lock-free
// one different park/wake timings), so agreement here pins that
// scheduling nondeterminism never changes detection verdicts. Repeats
// catch schedule-dependent misbehavior.
func TestDequeAblationParallelAgreement(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		want := runOracle(t, p)
		for _, lockDeque := range []bool{false, true} {
			for _, backend := range []detect.Backend{detect.BackendShardedMap, detect.BackendTwoLevel} {
				for rep := 0; rep < 2; rep++ {
					reach := core.New(core.Config{})
					hist := detect.NewHistory(detect.Options{
						Reach: reach, FastPath: true, Backend: backend,
					})
					_, err := sched.Run(sched.Options{
						Workers: 4, LockDeque: lockDeque,
						Tracer: reach, Checker: hist,
					}, p.Main())
					if err != nil {
						t.Fatal(err)
					}
					if got := hist.RacyAddrs(); !sameAddrs(got, want) {
						t.Fatalf("seed %d lockdeque=%v backend %v rep %d: parallel %v, oracle %v",
							seed, lockDeque, backend, rep, got, want)
					}
				}
			}
		}
	}
}

package detect

// Lock-avoiding fast path of the access history (the paper's §6 future
// work: "reduce the synchronization overhead by redesigning the access
// history"). Profiling PR 2's hist.lock_acquires counter confirmed the
// paper's observation that full-mode overhead is dominated by the sheer
// volume of lock acquisitions — one per instrumented access — not by
// contention. Three cooperating mechanisms shed that volume while
// preserving the per-location detection guarantee (at least one race is
// reported on a location iff one exists there; see DESIGN.md §4 for the
// full soundness argument):
//
//  1. State word. Every location has an atomically published, immutable
//     snapshot of its current history state (last writer + most recent
//     reader), held in a lock-free shadow directory keyed like the
//     two-level table. An access that repeats the published state — the
//     recorded strand re-touching the location — adds no information the
//     locked history would retain, so it skips everything. The load is
//     seqlock-style validated by re-loading the slot and requiring the
//     same snapshot.
//
//  2. Strand-scoped batching. All accesses of one strand share a single
//     dag position, so every Precedes verdict involving the strand is
//     independent of where within the strand the access happened. The
//     remaining accesses are therefore buffered per strand — deduplicated
//     by (addr, kind) — grouped by lock unit (shadow page), and applied
//     under ONE lock acquisition per unit when the strand closes (the
//     sched.StrandCloser hook), amortizing lock volume by the batch
//     factor.
//
//  3. Precedes memo. The same last writer repeats across a streak of
//     locations, and Precedes(w, s) is immutable for a fixed pair (all of
//     s's incoming dag edges exist before s executes), so verdicts are
//     memoized per current strand in a small direct-mapped table.
//
// All per-strand state lives on Strand.Aux (shared with the StrandFilter
// cache) and is pooled at strand close; strands are only ever executed by
// one worker at a time, so the batch hot path is synchronization-free.

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"sforder/internal/sched"
)

// fastState is one published location snapshot: the last writer and the
// most recently recorded reader since that write (nil when none). A
// snapshot is immutable after publication; updates allocate a fresh one.
type fastState struct {
	writer *sched.Strand
	reader *sched.Strand
}

// statePage is one page of the lock-free shadow directory, covering the
// same pageSize contiguous locations as the two-level table's pages.
// next is immutable after publication (collision chains insert at head).
type statePage struct {
	num   uint64 // addr >> pageBits
	next  *statePage
	slots [pageSize]atomic.Pointer[fastState]
}

// stateDir is the lock-free shadow directory: the same two-level layout
// as twoLevelTable, but with atomic directory slots and CAS insertion, so
// lookups and publications never take a lock.
type stateDir struct {
	dir [1 << dirBits]atomic.Pointer[statePage]
}

// load returns addr's published snapshot, or nil when the location has
// never been flushed.
func (d *stateDir) load(addr uint64) *fastState {
	num := addr >> pageBits
	for p := d.dir[dirSlot(num)].Load(); p != nil; p = p.next {
		if p.num == num {
			return p.slots[addr&pageMask].Load()
		}
	}
	return nil
}

// pageFor returns the page covering page number num, creating it with
// CAS insertion if needed (only publishers create pages; load never
// does). Flushes resolve the page once per lock unit — both backends'
// unitOf is exactly the state directory's page number — and then index
// slots directly.
func (d *stateDir) pageFor(num uint64) *statePage {
	sp := &d.dir[dirSlot(num)]
	for {
		head := sp.Load()
		for p := head; p != nil; p = p.next {
			if p.num == num {
				return p
			}
		}
		np := &statePage{num: num, next: head}
		if sp.CompareAndSwap(head, np) {
			return np
		}
	}
}

var statePageSize = int(unsafe.Sizeof(statePage{}))

// memBytes estimates the directory's heap footprint.
func (d *stateDir) memBytes() int {
	total := len(d.dir) * 8
	for i := range d.dir {
		for p := d.dir[i].Load(); p != nil; p = p.next {
			total += statePageSize
		}
	}
	return total
}

const (
	// memoSize is the per-strand Precedes memo size (direct-mapped,
	// power of two).
	memoSize = 64
	// batchCap bounds how many distinct (addr, kind) entries a strand
	// buffers before an early flush, so long strands cannot defer
	// unboundedly much work to their close.
	batchCap = 1024
	// poolMaxDistinct is the largest per-strand footprint worth pooling;
	// bigger maps are left to the GC rather than cached forever.
	poolMaxDistinct = 1 << 14
)

// unitBatch is a strand's pending accesses within one lock unit.
type unitBatch struct {
	addrs []uint64
	kinds []AccessKind
}

// batchCacheSize is the per-strand dedup cache size (direct-mapped,
// power of two). The cache is lossy by design: a collision evicts, and
// an evicted (addr, kind) is simply batched again — duplicate entries
// are harmless at apply time (the locked path tolerates same-strand
// repeats), so misses only cost work, never detection.
const batchCacheSize = 256

// strandState is the per-strand detector payload hung off Strand.Aux:
// the access batch, the Precedes memo, and the StrandFilter cache. A
// strand is executed by one worker at a time, so no synchronization.
type strandState struct {
	// seenAddr/seenMask form the direct-mapped (addr → kinds) dedup
	// cache; a slot is occupied iff its mask is non-zero, so only the
	// masks need clearing on reuse.
	seenAddr [batchCacheSize]uint64
	seenMask [batchCacheSize]uint8
	units    map[uint64]*unitBatch // lock unit → pending entries
	free     []*unitBatch          // recycled batches (keep slice capacity warm)
	pending  int                   // entries buffered since the last flush
	// distinct counts every entry ever batched by this strand; it keeps
	// growing across early flushes and gates pooling.
	distinct int
	memoK    [memoSize]uint64 // Precedes memo keys (strand ID + 1; 0 = empty)
	memoV    [memoSize]bool
	filter   *filterCache // StrandFilter cache (lazily allocated)
}

const (
	seenRead  = uint8(1) << AccessRead
	seenWrite = uint8(1) << AccessWrite
)

var statePool = sync.Pool{New: func() any {
	return &strandState{units: map[uint64]*unitBatch{}}
}}

// stateOf returns s's detector payload, allocating (from the pool) on
// first use.
func stateOf(s *sched.Strand) *strandState {
	if ss, ok := s.Aux.(*strandState); ok {
		return ss
	}
	ss := statePool.Get().(*strandState)
	s.Aux = ss
	return ss
}

// releaseStrandState detaches and pools s's payload. Idempotent: a second
// call finds Aux nil and does nothing — which also makes a StrandClose
// after an abort-time best-effort flush safe.
func releaseStrandState(s *sched.Strand) {
	ss, ok := s.Aux.(*strandState)
	if !ok {
		return
	}
	s.Aux = nil
	if ss.distinct > poolMaxDistinct {
		return // oversized maps go to the GC, not the pool
	}
	ss.seenMask = [batchCacheSize]uint8{} // seenAddr is guarded by the masks
	for _, ub := range ss.units {
		if len(ss.free) < 64 {
			ub.addrs, ub.kinds = ub.addrs[:0], ub.kinds[:0]
			ss.free = append(ss.free, ub)
		}
	}
	clear(ss.units)
	ss.pending, ss.distinct = 0, 0
	ss.memoK = [memoSize]uint64{} // memoV is guarded by memoK
	if ss.filter != nil {
		*ss.filter = filterCache{}
	}
	statePool.Put(ss)
}

// precedes answers Reach.Precedes through the per-strand memo when the
// fast path is enabled. Sound because the verdict is immutable for a
// fixed (u, v): every dag edge into v exists before v begins executing,
// so no event during v's lifetime can create or destroy a u ⇝ v path.
func (h *History) precedes(u, v *sched.Strand) bool {
	if h.fast == nil {
		return h.opts.Reach.Precedes(u, v)
	}
	ss := stateOf(v)
	i := u.ID & (memoSize - 1)
	if ss.memoK[i] == u.ID+1 {
		if h.countLocks {
			h.memoHits.Add(1)
		}
		return ss.memoV[i]
	}
	ok := h.opts.Reach.Precedes(u, v)
	ss.memoK[i] = u.ID + 1
	ss.memoV[i] = ok
	return ok
}

// fastRead is the lock-avoiding read path. The state-word hit fires when
// s is already recorded for this location — as the last writer (the
// writer check subsumes the reader check for the same strand) or as the
// recorded reader since the last write — in which case the locked
// history would retain nothing new and every verdict it would compute is
// already decided. The double load validates the snapshot seqlock-style.
func (h *History) fastRead(s *sched.Strand, addr uint64) {
	if st := h.fast.load(addr); st != nil && (st.reader == s || st.writer == s) && h.fast.load(addr) == st {
		if h.countLocks {
			h.fastHits.Add(1)
		}
		return
	}
	h.batchAccess(s, addr, AccessRead)
}

// fastWrite is the lock-avoiding write path: a strand re-writing a
// location it is already the published last writer of changes nothing
// (the readers it would clear were each recorded after s's write by
// strands parallel to s, and therefore already reported).
func (h *History) fastWrite(s *sched.Strand, addr uint64) {
	if st := h.fast.load(addr); st != nil && st.writer == s && h.fast.load(addr) == st {
		if h.countLocks {
			h.fastHits.Add(1)
		}
		return
	}
	h.batchAccess(s, addr, AccessWrite)
}

// batchAccess buffers one access in s's strand batch, deduplicating by
// (addr, kind) with the StrandFilter rules: a read is subsumed by any
// earlier same-strand access to the address, a write by an earlier
// same-strand write. The dedup cache is lossy (direct-mapped); an
// evicted entry is batched again, which the apply path tolerates.
func (h *History) batchAccess(s *sched.Strand, addr uint64, kind AccessKind) {
	ss := stateOf(s)
	i := (addr * 0x9e3779b97f4a7c15 >> 32) & (batchCacheSize - 1)
	m := ss.seenMask[i]
	if m != 0 && ss.seenAddr[i] == addr {
		if m&(uint8(1)<<kind) != 0 || (kind == AccessRead && m&seenWrite != 0) {
			if h.countLocks {
				h.dedupHits.Add(1)
			}
			return
		}
		ss.seenMask[i] = m | uint8(1)<<kind
	} else {
		ss.seenAddr[i] = addr
		ss.seenMask[i] = uint8(1) << kind
	}
	unit := h.tbl.unitOf(addr)
	ub := ss.units[unit]
	if ub == nil {
		if n := len(ss.free); n > 0 {
			ub = ss.free[n-1]
			ss.free = ss.free[:n-1]
		} else {
			ub = &unitBatch{}
		}
		ss.units[unit] = ub
	}
	ub.addrs = append(ub.addrs, addr)
	ub.kinds = append(ub.kinds, kind)
	ss.pending++
	ss.distinct++
	if ss.pending >= batchCap {
		h.flush(s, ss)
	}
}

// flush applies every pending entry of s's batch to the locked history,
// one lock acquisition per lock unit, and publishes the resulting
// location snapshots to the shadow directory. Entries within a unit are
// applied in program order (a strand's read-then-write of an address
// must check in that order).
func (h *History) flush(s *sched.Strand, ss *strandState) {
	if ss.pending == 0 {
		return
	}
	for unit, ub := range ss.units {
		if len(ub.addrs) == 0 {
			continue
		}
		if h.countLocks {
			h.lockAcquires.Add(1)
			h.batchFlushes.Add(1)
		}
		if h.opts.Tap != nil {
			h.opts.Tap.TapAccesses(s, ub.addrs, ub.kinds)
		}
		// Snapshots are immutable and shared: one {writer: s} for every
		// write of this flush, and one per last-writer streak for reads
		// (the same last writer repeats across a streak of locations).
		sp := h.fast.pageFor(unit)
		var wst, rst *fastState
		h.tbl.applyUnit(unit, ub.addrs, func(i int, l *loc) {
			addr := ub.addrs[i]
			if ub.kinds[i] == AccessWrite {
				h.applyWrite(s, addr, l)
				if wst == nil {
					wst = &fastState{writer: s}
				}
				sp.slots[addr&pageMask].Store(wst)
			} else {
				h.applyRead(s, addr, l)
				if rst == nil || rst.writer != l.lastWriter {
					rst = &fastState{writer: l.lastWriter, reader: s}
				}
				sp.slots[addr&pageMask].Store(rst)
			}
		})
		ub.addrs = ub.addrs[:0]
		ub.kinds = ub.kinds[:0]
	}
	ss.pending = 0
}

// StrandClose implements sched.StrandCloser: the engine calls it exactly
// when s ends, before any dag-successor strand begins — the point where
// deferred accesses must become visible so successors' checks see them
// and the successors' own accesses are checked against them.
func (h *History) StrandClose(s *sched.Strand) {
	ss, ok := s.Aux.(*strandState)
	if !ok {
		return
	}
	if h.fast != nil {
		h.flush(s, ss)
	}
	releaseStrandState(s)
}

// FastPathHits returns how many accesses the published state word
// absorbed without any history work (zero unless stats were enabled).
func (h *History) FastPathHits() uint64 { return h.fastHits.Load() }

// BatchFlushes returns how many single-lock batch applications ran.
func (h *History) BatchFlushes() uint64 { return h.batchFlushes.Load() }

// BatchDedupHits returns how many accesses the per-strand (addr, kind)
// dedup dropped before they reached a lock.
func (h *History) BatchDedupHits() uint64 { return h.dedupHits.Load() }

// MemoHits returns how many Precedes verdicts the per-strand memo served.
func (h *History) MemoHits() uint64 { return h.memoHits.Load() }

var _ sched.StrandCloser = (*History)(nil)

package detect_test

import (
	"testing"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/harness"
	"sforder/internal/obsv"
	"sforder/internal/progen"
	"sforder/internal/sched"
	"sforder/internal/workload"
)

// reachCfgs are the substrate configurations the ABL10/ABL11 fuzzes
// sweep: the OM pair, pure DePa cords, and the hybrid with a threshold
// small enough that progen programs cross the flat/cord boundary
// mid-run (at the default 64 they would stay all-flat).
func reachCfgs() []core.Config {
	return []core.Config{
		{Reach: core.SubstrateOM},
		{Reach: core.SubstrateDePa},
		{Reach: core.SubstrateHybrid, HybridDepth: 6},
	}
}

// TestReachSubstrateMatchesOracleFuzz is the ABL10/ABL11 fuzz: on
// random programs, the racy-location set under the DePa and hybrid
// label substrates must be identical to both the OM substrate's and
// the exhaustive dag oracle's, across both shadow backends (serial
// engine).
func TestReachSubstrateMatchesOracleFuzz(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		want := runOracle(t, p)
		for _, ccfg := range reachCfgs() {
			for _, backend := range []detect.Backend{detect.BackendShardedMap, detect.BackendTwoLevel} {
				got := runRacyCfg(t, p, ccfg, detect.Options{Backend: backend, FastPath: true})
				if !sameAddrs(got, want) {
					t.Fatalf("seed %d reach=%v backend %v: got %v, oracle %v",
						seed, ccfg.Reach, backend, got, want)
				}
			}
		}
	}
}

// TestReachSubstrateParallelAgreement runs random programs on the
// parallel engine (4 workers, lane arenas active) under all three
// substrates — with and without arenas — and compares the racy set to
// the serial oracle. Repeats catch schedule-dependent misbehavior;
// under -race this doubles as the label-publication race check.
func TestReachSubstrateParallelAgreement(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		want := runOracle(t, p)
		for _, ccfg := range []core.Config{
			{Reach: core.SubstrateDePa},
			{Reach: core.SubstrateDePa, NoArena: true},
			{Reach: core.SubstrateHybrid, HybridDepth: 6},
			{Reach: core.SubstrateHybrid, HybridDepth: 6, NoArena: true},
			{Reach: core.SubstrateOM},
		} {
			for rep := 0; rep < 2; rep++ {
				reach := core.New(ccfg)
				hist := detect.NewHistory(detect.Options{Reach: reach, FastPath: true})
				if _, err := sched.Run(sched.Options{Workers: 4, Tracer: reach, Checker: hist}, p.Main()); err != nil {
					t.Fatal(err)
				}
				if got := hist.RacyAddrs(); !sameAddrs(got, want) {
					t.Fatalf("seed %d cfg %+v rep %d: parallel %v, oracle %v",
						seed, ccfg, rep, got, want)
				}
			}
		}
	}
}

// TestReachSubstrateAdversarialSpine pins the ABL10 claim on the
// renumber-heavy adversarial spawn spine: the OM substrate must visibly
// pay for the pattern — bucket splits plus top-level renumberings, all
// under the maintenance lock — while the DePa substrate completes the
// identical run with zero maintenance-lock acquisitions (its gauges do
// not even exist) and deep labels instead.
func TestReachSubstrateAdversarialSpine(t *testing.T) {
	const depth = 1500
	run := func(sub core.Substrate) map[string]int64 {
		t.Helper()
		reg := obsv.NewRegistry()
		res, err := harness.Run(workload.Spine(depth, 2), harness.Config{
			Detector: harness.SFOrder,
			Mode:     harness.Full,
			Workers:  4,
			FastPath: true,
			Reach:    sub,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Races != 0 {
			t.Fatalf("spine is race-free, %v reported %d races", sub, res.Races)
		}
		return res.Stats
	}

	om := run(core.SubstrateOM)
	if splits := om["om.english.splits"] + om["om.hebrew.splits"]; splits == 0 {
		t.Error("spine must force OM bucket splits")
	}
	if renum := om["om.english.renumbers"] + om["om.hebrew.renumbers"]; renum == 0 {
		t.Error("spine must force OM top-level renumberings")
	}
	if om["om.lock_acquires"] == 0 {
		t.Error("OM maintenance work must take the maintenance lock")
	}

	for _, sub := range []core.Substrate{core.SubstrateDePa, core.SubstrateHybrid} {
		depa := run(sub)
		if got := depa["om.lock_acquires"]; got != 0 {
			t.Errorf("%v substrate took %d maintenance-lock acquisitions, want 0", sub, got)
		}
		if got := depa["om.english.splits"] + depa["om.hebrew.splits"]; got != 0 {
			t.Errorf("%v substrate reported %d OM splits, want 0", sub, got)
		}
		if depa["depa.labels"] == 0 || depa["depa.label_mem_bytes"] == 0 {
			t.Errorf("%v substrate must account its labels", sub)
		}
		if maxd := depa["depa.max_depth"]; maxd < depth {
			t.Errorf("%v depa.max_depth = %d, want >= spine depth %d", sub, maxd, depth)
		}
	}
}

// TestCordSpineEfficiency pins the PR 8 acceptance numbers on the
// spine at depth 1500, full mode: the PR 7 flat representation put
// 1,005,824 bytes into labels and averaged ~24 compare words per
// query; the prefix-sharing cords must cut both by at least 10x
// (≤ 100,582 bytes, mean ≤ 2.39 words). The cord arithmetic says
// ~4501 × 16-byte headers + ~140 × 24-byte shared chunks ≈ 75 KB and
// a mean within a word or two of 1 — the bounds leave slack for
// schedule jitter, not for an O(depth) regression.
func TestCordSpineEfficiency(t *testing.T) {
	const depth = 1500
	for _, sub := range []core.Substrate{core.SubstrateDePa, core.SubstrateHybrid} {
		reg := obsv.NewRegistry()
		res, err := harness.Run(workload.Spine(depth, 2), harness.Config{
			Detector: harness.SFOrder,
			Mode:     harness.Full,
			Workers:  4,
			FastPath: true,
			Reach:    sub,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Races != 0 {
			t.Fatalf("spine is race-free, %v reported %d races", sub, res.Races)
		}
		s := res.Stats
		if mem := s["depa.label_mem_bytes"]; mem == 0 || mem > 100_582 {
			t.Errorf("%v: label_mem_bytes = %d, want (0, 100582] (10x under PR 7's 1005824)", sub, mem)
		}
		cmps, words := s["depa.compares"], s["depa.compare_words"]
		if cmps == 0 {
			t.Fatalf("%v: spine produced no label compares", sub)
		}
		// mean = words/cmps ≤ 2.39, checked in integers.
		if words*100 > cmps*239 {
			t.Errorf("%v: mean compare words = %d/%d ≈ %.2f, want <= 2.39 (10x under PR 7's ~23.9)",
				sub, words, cmps, float64(words)/float64(cmps))
		}
		if s["depa.chunks"] == 0 {
			t.Errorf("%v: depth-1500 spine must freeze chunk nodes", sub)
		}
	}
}

// TestHybridDeepChainRace plants two races in a 300-stage future chain
// — one between shallow strands (flat-path compares under the default
// threshold), one 150 stages deep (cord-path compares, after the
// chain's flats have stopped) — and demands all three substrates
// report exactly the planted addresses, serially and at 4 workers.
// This is the threshold-crossing case the progen fuzz can't reach at
// the default HybridDepth.
func TestHybridDeepChainRace(t *testing.T) {
	const (
		stages    = 300
		shallowAt = 2   // well below DefaultHybridDepth
		deepAt    = 150 // well past it
		addrA     = 7   // raced by the shallow stage
		addrB     = 8   // raced by the deep stage
	)
	main := func(t *sched.Task) {
		rogue := t.Create(func(c *sched.Task) any {
			c.Write(addrA)
			c.Write(addrB)
			return nil
		})
		var prev *sched.Future
		for sg := 0; sg < stages; sg++ {
			sg, dep := sg, prev
			prev = t.Create(func(c *sched.Task) any {
				if dep != nil {
					c.Get(dep)
				}
				c.Write(uint64(100 + sg)) // chain-private, race-free
				switch sg {
				case shallowAt:
					c.Write(addrA)
				case deepAt:
					c.Write(addrB)
				}
				return nil
			})
		}
		t.Get(prev)
		t.Get(rogue)
	}
	want := []uint64{addrA, addrB}
	for _, ccfg := range []core.Config{
		{Reach: core.SubstrateOM},
		{Reach: core.SubstrateDePa},
		{Reach: core.SubstrateHybrid}, // default threshold: the real crossover
	} {
		for _, workers := range []int{0, 4} {
			reach := core.New(ccfg)
			hist := detect.NewHistory(detect.Options{Reach: reach, FastPath: true})
			opts := sched.Options{Serial: workers == 0, Workers: workers, Tracer: reach, Checker: hist}
			if _, err := sched.Run(opts, main); err != nil {
				t.Fatal(err)
			}
			if got := hist.RacyAddrs(); !sameAddrs(got, want) {
				t.Fatalf("reach=%v workers=%d: racy %v, want %v", ccfg.Reach, workers, got, want)
			}
		}
	}
}

package detect_test

import (
	"testing"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/harness"
	"sforder/internal/obsv"
	"sforder/internal/progen"
	"sforder/internal/sched"
	"sforder/internal/workload"
)

// TestReachSubstrateMatchesOracleFuzz is the ABL10 fuzz: on random
// programs, the racy-location set under the DePa fork-path substrate
// must be identical to both the OM substrate's and the exhaustive dag
// oracle's, across both shadow backends (serial engine).
func TestReachSubstrateMatchesOracleFuzz(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		want := runOracle(t, p)
		for _, sub := range []core.Substrate{core.SubstrateOM, core.SubstrateDePa} {
			for _, backend := range []detect.Backend{detect.BackendShardedMap, detect.BackendTwoLevel} {
				got := runRacyCfg(t, p, core.Config{Reach: sub}, detect.Options{Backend: backend, FastPath: true})
				if !sameAddrs(got, want) {
					t.Fatalf("seed %d reach=%v backend %v: got %v, oracle %v",
						seed, sub, backend, got, want)
				}
			}
		}
	}
}

// TestReachSubstrateParallelAgreement runs random programs on the
// parallel engine (4 workers, lane arenas active) under both substrates
// — with and without arenas — and compares the racy set to the serial
// oracle. Repeats catch schedule-dependent misbehavior; under -race
// this doubles as the label-publication race check.
func TestReachSubstrateParallelAgreement(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		want := runOracle(t, p)
		for _, ccfg := range []core.Config{
			{Reach: core.SubstrateDePa},
			{Reach: core.SubstrateDePa, NoArena: true},
			{Reach: core.SubstrateOM},
		} {
			for rep := 0; rep < 2; rep++ {
				reach := core.New(ccfg)
				hist := detect.NewHistory(detect.Options{Reach: reach, FastPath: true})
				if _, err := sched.Run(sched.Options{Workers: 4, Tracer: reach, Checker: hist}, p.Main()); err != nil {
					t.Fatal(err)
				}
				if got := hist.RacyAddrs(); !sameAddrs(got, want) {
					t.Fatalf("seed %d cfg %+v rep %d: parallel %v, oracle %v",
						seed, ccfg, rep, got, want)
				}
			}
		}
	}
}

// TestReachSubstrateAdversarialSpine pins the ABL10 claim on the
// renumber-heavy adversarial spawn spine: the OM substrate must visibly
// pay for the pattern — bucket splits plus top-level renumberings, all
// under the maintenance lock — while the DePa substrate completes the
// identical run with zero maintenance-lock acquisitions (its gauges do
// not even exist) and deep labels instead.
func TestReachSubstrateAdversarialSpine(t *testing.T) {
	const depth = 1500
	run := func(sub core.Substrate) map[string]int64 {
		t.Helper()
		reg := obsv.NewRegistry()
		res, err := harness.Run(workload.Spine(depth, 2), harness.Config{
			Detector: harness.SFOrder,
			Mode:     harness.Full,
			Workers:  4,
			FastPath: true,
			Reach:    sub,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Races != 0 {
			t.Fatalf("spine is race-free, %v reported %d races", sub, res.Races)
		}
		return res.Stats
	}

	om := run(core.SubstrateOM)
	if splits := om["om.english.splits"] + om["om.hebrew.splits"]; splits == 0 {
		t.Error("spine must force OM bucket splits")
	}
	if renum := om["om.english.renumbers"] + om["om.hebrew.renumbers"]; renum == 0 {
		t.Error("spine must force OM top-level renumberings")
	}
	if om["om.lock_acquires"] == 0 {
		t.Error("OM maintenance work must take the maintenance lock")
	}

	depa := run(core.SubstrateDePa)
	if got := depa["om.lock_acquires"]; got != 0 {
		t.Errorf("DePa substrate took %d maintenance-lock acquisitions, want 0", got)
	}
	if got := depa["om.english.splits"] + depa["om.hebrew.splits"]; got != 0 {
		t.Errorf("DePa substrate reported %d OM splits, want 0", got)
	}
	if depa["depa.labels"] == 0 || depa["depa.label_mem_bytes"] == 0 {
		t.Error("DePa substrate must account its labels")
	}
	if maxd := depa["depa.max_depth"]; maxd < depth {
		t.Errorf("depa.max_depth = %d, want >= spine depth %d", maxd, depth)
	}
}

package detect_test

import (
	"testing"

	"sforder/internal/core"
	"sforder/internal/dag"
	"sforder/internal/detect"
	"sforder/internal/oracle"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

// countingChecker records how many accesses reach it.
type countingChecker struct {
	reads, writes int
}

func (c *countingChecker) Read(*sched.Strand, uint64)  { c.reads++ }
func (c *countingChecker) Write(*sched.Strand, uint64) { c.writes++ }

func TestFilterDropsStrandDuplicates(t *testing.T) {
	inner := &countingChecker{}
	f := detect.NewStrandFilter(inner)
	s := &sched.Strand{ID: 1, Fut: &sched.FutureTask{}}

	for i := 0; i < 100; i++ {
		f.Read(s, 7)
	}
	if inner.reads != 1 {
		t.Errorf("inner saw %d reads, want 1", inner.reads)
	}
	for i := 0; i < 100; i++ {
		f.Write(s, 7)
	}
	if inner.writes != 1 {
		t.Errorf("inner saw %d writes, want 1", inner.writes)
	}
	// A read after a write to the same address is redundant too.
	f.Read(s, 7)
	if inner.reads != 1 {
		t.Error("read-after-write must be dropped")
	}
	if f.Dropped() != 99+99+1 {
		t.Errorf("Dropped = %d, want 199", f.Dropped())
	}
}

func TestFilterWriteAfterReadPasses(t *testing.T) {
	inner := &countingChecker{}
	f := detect.NewStrandFilter(inner)
	s := &sched.Strand{ID: 1, Fut: &sched.FutureTask{}}
	f.Read(s, 3)
	f.Write(s, 3) // must pass: it takes over the last-writer slot
	if inner.writes != 1 {
		t.Error("write after read must reach the history")
	}
}

func TestFilterPerStrandIsolation(t *testing.T) {
	inner := &countingChecker{}
	f := detect.NewStrandFilter(inner)
	fut := &sched.FutureTask{}
	s1 := &sched.Strand{ID: 1, Fut: fut}
	s2 := &sched.Strand{ID: 2, Fut: fut}
	f.Read(s1, 5)
	f.Read(s2, 5) // different strand: must pass
	if inner.reads != 2 {
		t.Errorf("inner saw %d reads, want 2", inner.reads)
	}
}

func TestFilterCollisionsAreConservative(t *testing.T) {
	// Addresses colliding in the direct-mapped cache may evict each
	// other; the result must only ever be extra passes, never drops of
	// first-time accesses.
	inner := &countingChecker{}
	f := detect.NewStrandFilter(inner)
	s := &sched.Strand{ID: 1, Fut: &sched.FutureTask{}}
	distinct := 10_000
	for a := 0; a < distinct; a++ {
		f.Read(s, uint64(a))
	}
	if inner.reads != distinct {
		t.Errorf("first-time reads dropped: inner saw %d of %d", inner.reads, distinct)
	}
}

// multiChecker fans accesses out.
type multiChecker []sched.AccessChecker

func (m multiChecker) Read(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Read(s, addr)
	}
}
func (m multiChecker) Write(s *sched.Strand, addr uint64) {
	for _, c := range m {
		c.Write(s, addr)
	}
}

// TestFilteredDetectionMatchesOracle: with the filter in front of the
// full SF-Order detector, the racy-location set must still match the
// exhaustive oracle on random programs — the filter's soundness theorem.
func TestFilteredDetectionMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 5})
		reach := core.NewReach()
		hist := detect.NewHistory(detect.Options{Reach: reach})
		rec := dag.NewRecorder()
		log := oracle.NewLogger()
		_, err := sched.Run(sched.Options{
			Serial:  true,
			Tracer:  sched.MultiTracer{reach, rec},
			Checker: multiChecker{detect.NewStrandFilter(hist), log},
		}, p.Main())
		if err != nil {
			t.Fatal(err)
		}
		got, want := hist.RacyAddrs(), log.RacyAddrs(rec)
		if len(got) != len(want) {
			t.Fatalf("seed %d: filtered detector %v, oracle %v", seed, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: filtered detector %v, oracle %v", seed, got, want)
			}
		}
	}
}

// TestFilteredAgreesWithUnfiltered compares filtered and unfiltered
// racy-location sets directly on programs with heavier per-strand
// access repetition (loops over the same addresses).
func TestFilteredAgreesWithUnfiltered(t *testing.T) {
	loopProgram := func(t *sched.Task) {
		h := t.Create(func(c *sched.Task) any {
			for i := 0; i < 50; i++ {
				c.Read(1)
				c.Write(2)
			}
			return nil
		})
		for i := 0; i < 50; i++ {
			t.Write(1) // races with the future's reads
			t.Read(3)
		}
		t.Get(h)
		for i := 0; i < 10; i++ {
			t.Read(2) // ordered after the future's writes
		}
	}
	run := func(filtered bool) []uint64 {
		reach := core.NewReach()
		hist := detect.NewHistory(detect.Options{Reach: reach})
		var checker sched.AccessChecker = hist
		if filtered {
			checker = detect.NewStrandFilter(hist)
		}
		if _, err := sched.Run(sched.Options{Serial: true, Tracer: reach, Checker: checker}, loopProgram); err != nil {
			t.Fatal(err)
		}
		return hist.RacyAddrs()
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("unfiltered %v vs filtered %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unfiltered %v vs filtered %v", a, b)
		}
	}
	if len(a) != 1 || a[0] != 1 {
		t.Fatalf("expected exactly address 1 racy, got %v", a)
	}
}

package detect

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// twoLevelTable is the paper's access-history layout (§4): a two-level
// table that acts like a direct-mapped cache. The first level is a
// fixed-size directory indexed by a hash of the page number; the second
// level is a contiguous page of location slots indexed directly by the
// address's low bits. Each page carries one lock, so a lock covers a
// contiguous subset of the history — the paper's fine-grained-locking
// granularity. Directory collisions chain pages (the paper can evict
// like a real cache; a race detector that must not miss races cannot,
// so we chain).
//
// Directory slots are atomic pointers with CAS insertion at the chain
// head, so page lookup — on every instrumented access — is lock-free;
// only a losing CAS (two workers creating the same page at once) retries.
// A page's num and next fields are immutable once the page is published,
// so chain walks need no synchronization beyond the slot load.
const (
	dirBits  = 12 // 4096 directory slots
	pageBits = 8  // 256 locations per page
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

type page struct {
	mu    sync.Mutex
	num   uint64 // addr >> pageBits
	slots [pageSize]*loc
	next  *page // directory-collision chain; immutable after publication
}

type twoLevelTable struct {
	dir [1 << dirBits]atomic.Pointer[page]
}

func newTwoLevelTable() *twoLevelTable { return &twoLevelTable{} }

func dirSlot(pageNum uint64) int {
	return int((pageNum * 0x9e3779b97f4a7c15) >> (64 - dirBits))
}

// pageOf finds or creates the page covering addr, lock-free: walk the
// chain, and if the page is missing CAS a new one in at the head. A lost
// CAS means another worker changed the head — rewalk (the page may now
// exist) and retry.
func (t *twoLevelTable) pageOf(addr uint64) *page {
	num := addr >> pageBits
	sp := &t.dir[dirSlot(num)]
	for {
		head := sp.Load()
		for p := head; p != nil; p = p.next {
			if p.num == num {
				return p
			}
		}
		np := &page{num: num, next: head}
		if sp.CompareAndSwap(head, np) {
			return np
		}
	}
}

func (t *twoLevelTable) unitOf(addr uint64) uint64 { return addr >> pageBits }

func (t *twoLevelTable) acquire(addr uint64) (*loc, func()) {
	p := t.pageOf(addr)
	p.mu.Lock()
	i := int(addr & pageMask)
	l := p.slots[i]
	if l == nil {
		l = &loc{}
		p.slots[i] = l
	}
	return l, p.mu.Unlock
}

func (t *twoLevelTable) applyUnit(unit uint64, addrs []uint64, fn func(int, *loc)) {
	p := t.pageOf(unit << pageBits)
	p.mu.Lock()
	for i, a := range addrs {
		j := int(a & pageMask)
		l := p.slots[j]
		if l == nil {
			l = &loc{}
			p.slots[j] = l
		}
		fn(i, l)
	}
	p.mu.Unlock()
}

func (t *twoLevelTable) forEach(fn func(*loc)) {
	for i := range t.dir {
		for p := t.dir[i].Load(); p != nil; p = p.next {
			p.mu.Lock()
			for _, l := range p.slots {
				if l != nil {
					fn(l)
				}
			}
			p.mu.Unlock()
		}
	}
}

func (t *twoLevelTable) memBytes() int {
	// locSize and pairSize are the package-level unsafe.Sizeof-derived
	// values; the page overhead is likewise the real struct size.
	pageOverhead := int(unsafe.Sizeof(page{}))
	total := (1 << dirBits) * 8
	t.forEach(func(l *loc) {
		total += locSize + 8*cap(l.readers) + pairSize*len(l.pairs)
	})
	for i := range t.dir {
		for p := t.dir[i].Load(); p != nil; p = p.next {
			total += pageOverhead
		}
	}
	return total
}

var _ addrTable = (*twoLevelTable)(nil)
var _ addrTable = (*shardedTable)(nil)

package detect

import (
	"sync"
	"unsafe"
)

// twoLevelTable is the paper's access-history layout (§4): a two-level
// table that acts like a direct-mapped cache. The first level is a
// fixed-size directory indexed by a hash of the page number; the second
// level is a contiguous page of location slots indexed directly by the
// address's low bits. Each page carries one lock, so a lock covers a
// contiguous subset of the history — the paper's fine-grained-locking
// granularity. Directory collisions chain pages (the paper can evict
// like a real cache; a race detector that must not miss races cannot,
// so we chain).
const (
	dirBits  = 12 // 4096 directory slots
	pageBits = 8  // 256 locations per page
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

type page struct {
	mu    sync.Mutex
	num   uint64 // addr >> pageBits
	slots [pageSize]*loc
	next  *page // directory-collision chain
}

type twoLevelTable struct {
	mu  sync.Mutex // guards directory updates (page insertion only)
	dir [1 << dirBits]*page
}

func newTwoLevelTable() *twoLevelTable { return &twoLevelTable{} }

func dirSlot(pageNum uint64) int {
	return int((pageNum * 0x9e3779b97f4a7c15) >> (64 - dirBits))
}

// pageOf finds or creates the page covering addr.
func (t *twoLevelTable) pageOf(addr uint64) *page {
	num := addr >> pageBits
	slot := dirSlot(num)
	t.mu.Lock()
	p := t.dir[slot]
	for p != nil && p.num != num {
		p = p.next
	}
	if p == nil {
		p = &page{num: num, next: t.dir[slot]}
		t.dir[slot] = p
	}
	t.mu.Unlock()
	return p
}

func (t *twoLevelTable) acquire(addr uint64) (*loc, func()) {
	p := t.pageOf(addr)
	p.mu.Lock()
	i := int(addr & pageMask)
	l := p.slots[i]
	if l == nil {
		l = &loc{}
		p.slots[i] = l
	}
	return l, p.mu.Unlock
}

func (t *twoLevelTable) forEach(fn func(*loc)) {
	t.mu.Lock()
	var pages []*page
	for _, p := range t.dir {
		for ; p != nil; p = p.next {
			pages = append(pages, p)
		}
	}
	t.mu.Unlock()
	for _, p := range pages {
		p.mu.Lock()
		for _, l := range p.slots {
			if l != nil {
				fn(l)
			}
		}
		p.mu.Unlock()
	}
}

func (t *twoLevelTable) memBytes() int {
	// locSize and pairSize are the package-level unsafe.Sizeof-derived
	// values; the page overhead is likewise the real struct size.
	pageOverhead := int(unsafe.Sizeof(page{}))
	total := (1 << dirBits) * 8
	t.forEach(func(l *loc) {
		total += locSize + 8*cap(l.readers) + pairSize*len(l.pairs)
	})
	t.mu.Lock()
	for _, p := range t.dir {
		for ; p != nil; p = p.next {
			total += pageOverhead
		}
	}
	t.mu.Unlock()
	return total
}

var _ addrTable = (*twoLevelTable)(nil)
var _ addrTable = (*shardedTable)(nil)

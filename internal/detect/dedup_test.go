package detect_test

import (
	"testing"

	"sforder/internal/detect"
)

func TestDedupByAddrRetainsOnePerLocation(t *testing.T) {
	ss := fakeStrands(10)
	h := detect.NewHistory(detect.Options{
		Reach:       &stubReach{prec: map[[2]uint64]bool{}},
		DedupByAddr: true,
	})
	for _, s := range ss {
		h.Write(s, 1)
		h.Write(s, 2)
	}
	if got := len(h.Races()); got != 2 {
		t.Errorf("retained %d races, want 2 (one per address)", got)
	}
	if h.RaceCount() != 18 {
		t.Errorf("RaceCount = %d, want 18 (9 per address)", h.RaceCount())
	}
	addrs := h.RacyAddrs()
	if len(addrs) != 2 || addrs[0] != 1 || addrs[1] != 2 {
		t.Errorf("RacyAddrs = %v", addrs)
	}
}

func TestNoDedupRetainsAll(t *testing.T) {
	ss := fakeStrands(5)
	h := detect.NewHistory(detect.Options{Reach: &stubReach{prec: map[[2]uint64]bool{}}})
	for _, s := range ss {
		h.Write(s, 1)
	}
	if got := len(h.Races()); got != 4 {
		t.Errorf("retained %d races, want 4", got)
	}
}

package detect_test

import (
	"math/rand"
	"sync"
	"testing"

	"sforder/internal/core"
	"sforder/internal/dag"
	"sforder/internal/detect"
	"sforder/internal/oracle"
	"sforder/internal/progen"
	"sforder/internal/sched"
)

func newTwoLevelHistory(prec map[[2]uint64]bool) *detect.History {
	return detect.NewHistory(detect.Options{
		Reach:   &stubReach{prec: prec},
		Backend: detect.BackendTwoLevel,
	})
}

func TestTwoLevelBasicDetection(t *testing.T) {
	ss := fakeStrands(2)
	h := newTwoLevelHistory(map[[2]uint64]bool{})
	h.Write(ss[0], 7)
	h.Write(ss[1], 7)
	if h.RaceCount() != 1 {
		t.Fatalf("RaceCount = %d, want 1", h.RaceCount())
	}
}

func TestTwoLevelDistinguishesPageNeighbours(t *testing.T) {
	// Addresses within one page must not alias each other.
	ss := fakeStrands(2)
	h := newTwoLevelHistory(map[[2]uint64]bool{})
	h.Write(ss[0], 256)
	h.Write(ss[1], 257) // same page, different slot: no conflict
	if h.RaceCount() != 0 {
		t.Fatalf("page neighbours aliased: %v", h.Races())
	}
}

func TestTwoLevelDistinguishesDirectoryCollisions(t *testing.T) {
	// Two addresses whose pages collide in the directory must chain,
	// not alias. Same in-page offset, page numbers far apart.
	ss := fakeStrands(2)
	h := newTwoLevelHistory(map[[2]uint64]bool{})
	// Write a dense set of same-offset addresses across many pages; with
	// 4096 directory slots and 8192 pages, collisions are guaranteed.
	for p := uint64(0); p < 8192; p++ {
		h.Write(ss[0], p<<8|5)
	}
	if h.RaceCount() != 0 {
		t.Fatal("distinct addresses reported as conflicting")
	}
	// Re-write everything from a parallel strand: exactly one race per
	// address if no aliasing or loss occurred.
	for p := uint64(0); p < 8192; p++ {
		h.Write(ss[1], p<<8|5)
	}
	if h.RaceCount() != 8192 {
		t.Fatalf("RaceCount = %d, want 8192 (one per address)", h.RaceCount())
	}
}

func TestTwoLevelMemBytes(t *testing.T) {
	ss := fakeStrands(1)
	h := newTwoLevelHistory(map[[2]uint64]bool{})
	before := h.MemBytes()
	for a := uint64(0); a < 10_000; a++ {
		h.Write(ss[0], a)
	}
	if h.MemBytes() <= before {
		t.Error("MemBytes must grow")
	}
}

// TestBackendsEquivalentOnRandomPrograms: the two backends must produce
// identical racy-location sets, full SF-Order detection, vs the oracle.
func TestBackendsEquivalentOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.New(progen.Config{Seed: seed, MaxDepth: 4, MaxOps: 8, Addrs: 6})
		var sets [][]uint64
		for _, backend := range []detect.Backend{detect.BackendShardedMap, detect.BackendTwoLevel} {
			reach := core.NewReach()
			hist := detect.NewHistory(detect.Options{Reach: reach, Backend: backend})
			rec := dag.NewRecorder()
			log := oracle.NewLogger()
			_, err := sched.Run(sched.Options{
				Serial:  true,
				Tracer:  sched.MultiTracer{reach, rec},
				Checker: multiChecker{hist, log},
			}, p.Main())
			if err != nil {
				t.Fatal(err)
			}
			got, want := hist.RacyAddrs(), log.RacyAddrs(rec)
			if len(got) != len(want) {
				t.Fatalf("seed %d backend %v: %v vs oracle %v", seed, backend, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d backend %v: %v vs oracle %v", seed, backend, got, want)
				}
			}
			sets = append(sets, got)
		}
		if len(sets[0]) != len(sets[1]) {
			t.Fatalf("seed %d: backends disagree: %v vs %v", seed, sets[0], sets[1])
		}
	}
}

// TestTwoLevelConcurrentHammer stresses page creation and slot access
// from several goroutines (race-detector clean).
func TestTwoLevelConcurrentHammer(t *testing.T) {
	h := newTwoLevelHistory(nil)
	fut := &sched.FutureTask{ID: 0}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			s := &sched.Strand{ID: id, Fut: fut}
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 5000; i++ {
				addr := uint64(rng.Intn(1 << 16))
				if i%3 == 0 {
					h.Write(s, addr)
				} else {
					h.Read(s, addr)
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	// Every access pair was potentially parallel (stub reach: nothing
	// precedes), so races are expected; the point is no crash/corruption.
	if h.MemBytes() == 0 {
		t.Error("table should be populated")
	}
}

func TestBackendStrings(t *testing.T) {
	if detect.BackendShardedMap.String() != "sharded-map" || detect.BackendTwoLevel.String() != "two-level" {
		t.Error("backend strings wrong")
	}
}

func TestUnknownBackendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown backend")
		}
	}()
	detect.NewHistory(detect.Options{Reach: &stubReach{}, Backend: detect.Backend(99)})
}

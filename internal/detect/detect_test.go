package detect_test

import (
	"testing"

	"sforder/internal/detect"
	"sforder/internal/sched"
)

// stubReach answers Precedes from an explicit table keyed by strand ID
// pairs; everything absent is parallel.
type stubReach struct {
	prec map[[2]uint64]bool
}

func (s *stubReach) Precedes(u, v *sched.Strand) bool {
	if u == v {
		return true
	}
	return s.prec[[2]uint64{u.ID, v.ID}]
}

// fakeStrands builds standalone strands for unit-testing the history
// without an engine run.
func fakeStrands(n int) []*sched.Strand {
	fut := &sched.FutureTask{ID: 0}
	out := make([]*sched.Strand, n)
	for i := range out {
		out[i] = &sched.Strand{ID: uint64(i), Fut: fut}
	}
	return out
}

func orderAll(ss []*sched.Strand) *stubReach {
	r := &stubReach{prec: map[[2]uint64]bool{}}
	for i := range ss {
		for j := i + 1; j < len(ss); j++ {
			r.prec[[2]uint64{ss[i].ID, ss[j].ID}] = true
		}
	}
	return r
}

func TestNoRaceWhenSerial(t *testing.T) {
	ss := fakeStrands(3)
	h := detect.NewHistory(detect.Options{Reach: orderAll(ss)})
	h.Write(ss[0], 1)
	h.Read(ss[1], 1)
	h.Write(ss[2], 1)
	if h.RaceCount() != 0 {
		t.Fatalf("serial accesses reported %d races", h.RaceCount())
	}
}

func TestWriteWriteRace(t *testing.T) {
	ss := fakeStrands(2)
	h := detect.NewHistory(detect.Options{Reach: &stubReach{prec: map[[2]uint64]bool{}}})
	h.Write(ss[0], 7)
	h.Write(ss[1], 7)
	if h.RaceCount() != 1 {
		t.Fatalf("RaceCount = %d, want 1", h.RaceCount())
	}
	r := h.Races()[0]
	if r.Prev != detect.AccessWrite || r.Cur != detect.AccessWrite || r.Addr != 7 {
		t.Errorf("race = %v", r)
	}
}

func TestWriteReadRace(t *testing.T) {
	ss := fakeStrands(2)
	h := detect.NewHistory(detect.Options{Reach: &stubReach{prec: map[[2]uint64]bool{}}})
	h.Write(ss[0], 3)
	h.Read(ss[1], 3)
	if h.RaceCount() != 1 {
		t.Fatalf("RaceCount = %d, want 1", h.RaceCount())
	}
	if h.Races()[0].Cur != detect.AccessRead {
		t.Error("current side should be the read")
	}
}

func TestReadWriteRace(t *testing.T) {
	ss := fakeStrands(2)
	h := detect.NewHistory(detect.Options{Reach: &stubReach{prec: map[[2]uint64]bool{}}})
	h.Read(ss[0], 3)
	h.Write(ss[1], 3)
	if h.RaceCount() != 1 {
		t.Fatalf("RaceCount = %d, want 1", h.RaceCount())
	}
}

func TestParallelReadsNoRace(t *testing.T) {
	ss := fakeStrands(4)
	h := detect.NewHistory(detect.Options{Reach: &stubReach{prec: map[[2]uint64]bool{}}})
	for _, s := range ss {
		h.Read(s, 9)
	}
	if h.RaceCount() != 0 {
		t.Fatal("reads never race with reads")
	}
}

func TestReadersClearedAtWrite(t *testing.T) {
	ss := fakeStrands(3)
	// ss[0] reads; ss[1] writes with ss[0] ≺ ss[1]; ss[2] parallel to
	// ss[0] but after ss[1]: only the writer matters now.
	r := &stubReach{prec: map[[2]uint64]bool{
		{0, 1}: true,
		{1, 2}: true,
	}}
	h := detect.NewHistory(detect.Options{Reach: r})
	h.Read(ss[0], 5)
	h.Write(ss[1], 5)
	h.Write(ss[2], 5)
	if h.RaceCount() != 0 {
		t.Fatalf("RaceCount = %d, want 0", h.RaceCount())
	}
}

func TestDuplicateReaderSkipped(t *testing.T) {
	ss := fakeStrands(1)
	h := detect.NewHistory(detect.Options{Reach: orderAll(ss)})
	for i := 0; i < 100; i++ {
		h.Read(ss[0], 2)
	}
	if h.MaxReaders() != 1 {
		t.Errorf("MaxReaders = %d, want 1 (consecutive duplicates skipped)", h.MaxReaders())
	}
}

func TestSameStrandNeverRaces(t *testing.T) {
	ss := fakeStrands(1)
	h := detect.NewHistory(detect.Options{Reach: &stubReach{prec: map[[2]uint64]bool{}}})
	h.Write(ss[0], 1)
	h.Write(ss[0], 1)
	h.Read(ss[0], 1)
	h.Write(ss[0], 1)
	if h.RaceCount() != 0 {
		t.Fatal("a strand cannot race with itself")
	}
}

func TestMaxRacesCapKeepsCounting(t *testing.T) {
	ss := fakeStrands(20)
	h := detect.NewHistory(detect.Options{Reach: &stubReach{prec: map[[2]uint64]bool{}}, MaxRaces: 4})
	for _, s := range ss {
		h.Write(s, 1)
	}
	if got := len(h.Races()); got != 4 {
		t.Errorf("retained %d races, want cap 4", got)
	}
	if h.RaceCount() != 19 {
		t.Errorf("RaceCount = %d, want 19", h.RaceCount())
	}
}

func TestRacyAddrsSorted(t *testing.T) {
	ss := fakeStrands(2)
	h := detect.NewHistory(detect.Options{Reach: &stubReach{prec: map[[2]uint64]bool{}}})
	for _, a := range []uint64{9, 1, 5} {
		h.Write(ss[0], a)
		h.Write(ss[1], a)
	}
	got := h.RacyAddrs()
	want := []uint64{1, 5, 9}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("RacyAddrs = %v, want %v", got, want)
	}
}

func TestLRPolicyRequiresLeftOf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic: ReadersLR without LeftOf")
		}
	}()
	detect.NewHistory(detect.Options{Reach: &stubReach{}, Policy: detect.ReadersLR})
}

func TestNilReachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on nil Reach")
		}
	}()
	detect.NewHistory(detect.Options{})
}

func TestLRPolicyDetectsViaStoredExtremes(t *testing.T) {
	// Three parallel readers in one future; a writer parallel to all.
	// LR keeps only two, but they suffice to flag the race.
	ss := fakeStrands(4)
	leftOf := func(a, b *sched.Strand) bool { return a.ID < b.ID }
	h := detect.NewHistory(detect.Options{
		Reach:  &stubReach{prec: map[[2]uint64]bool{}},
		Policy: detect.ReadersLR,
		LeftOf: leftOf,
	})
	h.Read(ss[1], 4)
	h.Read(ss[0], 4)
	h.Read(ss[2], 4)
	if h.MaxReaders() != 2 {
		t.Errorf("MaxReaders = %d, want 2 under LR policy", h.MaxReaders())
	}
	h.Write(ss[3], 4)
	if h.RaceCount() == 0 {
		t.Fatal("LR policy missed a reader/writer race")
	}
}

func TestMemBytesGrows(t *testing.T) {
	ss := fakeStrands(2)
	h := detect.NewHistory(detect.Options{Reach: orderAll(ss)})
	before := h.MemBytes()
	for a := uint64(0); a < 1000; a++ {
		h.Write(ss[0], a)
	}
	if h.MemBytes() <= before {
		t.Error("MemBytes must grow with the location count")
	}
}

func TestPolicyAndKindStrings(t *testing.T) {
	if detect.ReadersAll.String() != "all" || detect.ReadersLR.String() != "lr" {
		t.Error("policy strings wrong")
	}
	if detect.AccessRead.String() != "read" || detect.AccessWrite.String() != "write" {
		t.Error("access kind strings wrong")
	}
	r := detect.Race{Addr: 1, Prev: detect.AccessWrite, Cur: detect.AccessRead}
	if r.String() == "" {
		t.Error("race string empty")
	}
}

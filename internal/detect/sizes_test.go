package detect

import (
	"testing"
	"unsafe"
)

// TestAccountingSizes pins the memory-accounting sizes to the real
// struct layouts. The old hand-written constants (56/48/24) had drifted
// from the structs; the sizes are now unsafe.Sizeof-derived, and this
// test pins the expected 64-bit values so struct growth fails loudly
// instead of skewing MemBytes silently.
func TestAccountingSizes(t *testing.T) {
	if locSize != int(unsafe.Sizeof(loc{})) {
		t.Errorf("locSize %d != sizeof(loc) %d", locSize, unsafe.Sizeof(loc{}))
	}
	if pairSize != int(unsafe.Sizeof(lrPair{})) {
		t.Errorf("pairSize %d != sizeof(lrPair) %d", pairSize, unsafe.Sizeof(lrPair{}))
	}
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("expected values below are for 64-bit platforms")
	}
	if locSize != 40 {
		t.Errorf("loc grew: %d bytes, expected 40", locSize)
	}
	if pairSize != 16 {
		t.Errorf("lrPair grew: %d bytes, expected 16", pairSize)
	}
	if got := int(unsafe.Sizeof(page{})); got != 2072 {
		t.Errorf("page grew: %d bytes, expected 2072", got)
	}
}

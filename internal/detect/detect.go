// Package detect provides the access-history component shared by the
// race detectors: a sharded shadow-memory table remembering, per memory
// location, the last writer and a set of previous readers, plus the race
// reporting machinery.
//
// A detector is assembled from a reachability component (SF-Order,
// F-Order, or MultiBags — anything implementing Reachability) and a
// History configured with a reader-retention policy:
//
//   - ReadersAll keeps every reader between two writes (up to r per
//     location) — what F-Order requires for general futures and what the
//     paper's SF-Order implementation also ships (§4).
//   - ReadersLR keeps only the leftmost and rightmost reader per
//     (location, future) pair — at most 2k readers per location — which
//     §3.5 proves sufficient for structured futures (Lemmas 3.10, 3.11).
//
// As in the paper's implementation, every access locks the shard of the
// access history covering its location (fine-grained locking); the sheer
// volume of lock operations, not contention, dominates "full" overhead.
package detect

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"sforder/internal/obsv"
	"sforder/internal/sched"
)

// Reachability answers on-the-fly precedence queries: u must be an
// already-executed strand recorded in the access history and v the
// currently executing strand.
type Reachability interface {
	Precedes(u, v *sched.Strand) bool
}

// ReaderPolicy selects how many previous readers the history retains.
type ReaderPolicy int

const (
	// ReadersAll retains every reader between consecutive writes.
	ReadersAll ReaderPolicy = iota
	// ReadersLR retains the leftmost and rightmost reader per
	// (location, future) pair — the 2k bound of §3.5. Requires LeftOf.
	ReadersLR
)

func (p ReaderPolicy) String() string {
	switch p {
	case ReadersAll:
		return "all"
	case ReadersLR:
		return "lr"
	default:
		return fmt.Sprintf("ReaderPolicy(%d)", int(p))
	}
}

// AccessKind tags the two sides of a reported race.
type AccessKind uint8

const (
	AccessRead AccessKind = iota
	AccessWrite
)

func (k AccessKind) String() string {
	if k == AccessRead {
		return "read"
	}
	return "write"
}

// Race describes one determinacy race: two logically parallel accesses
// to the same location, at least one a write.
type Race struct {
	Addr       uint64
	PrevStrand uint64 // strand ID of the earlier (recorded) access
	CurStrand  uint64 // strand ID of the access that exposed the race
	PrevFuture int
	CurFuture  int
	Prev, Cur  AccessKind
	// PrevLabel and CurLabel carry the user labels (Task.Label) of the
	// racing strands' regions, when set.
	PrevLabel, CurLabel string
}

func (r Race) String() string {
	side := func(kind AccessKind, strand uint64, fut int, label string) string {
		s := fmt.Sprintf("%s by s%d/f%d", kind, strand, fut)
		if label != "" {
			s += fmt.Sprintf(" (%q)", label)
		}
		return s
	}
	return fmt.Sprintf("race on %#x: %s vs %s", r.Addr,
		side(r.Prev, r.PrevStrand, r.PrevFuture, r.PrevLabel),
		side(r.Cur, r.CurStrand, r.CurFuture, r.CurLabel))
}

// Options configures a History.
type Options struct {
	// Reach answers precedence queries. Required.
	Reach Reachability
	// Policy selects reader retention; ReadersLR additionally requires
	// LeftOf.
	Policy ReaderPolicy
	// LeftOf reports whether strand a is left of strand b (earlier in
	// the English order) among logically parallel strands of one future.
	LeftOf func(a, b *sched.Strand) bool
	// MaxRaces caps the number of detailed Race records retained
	// (counting continues past the cap). 0 means 256.
	MaxRaces int
	// Shards is the number of lock shards for BackendShardedMap;
	// 0 means 256 (rounded up to a power of two).
	Shards int
	// Backend selects the shadow-table layout.
	Backend Backend
	// DedupByAddr reports at most one race per memory location: after
	// the first report on an address, later races there are counted
	// in RaceCount but not retained as detailed records. Keeps reports
	// readable on programs with systematic races (e.g. a racy loop).
	DedupByAddr bool
	// Tap, when non-nil, additionally receives every access the history
	// applies — the record hook for offline replay (internal/trace). With
	// FastPath the tap fires once per flushed batch unit, so recording
	// costs one call per deduped (addr, kind) group, not one per access;
	// without it the tap fires per access from the locked slow path. The
	// entries handed to the tap are exactly the ones the history applies,
	// after the state-word and batch dedup — a detection-equivalent
	// access stream at location granularity.
	Tap AccessTap
	// FastPath enables the lock-avoiding access path (see fastpath.go):
	// a per-location published state word absorbing redundant accesses,
	// per-strand batches applied one lock acquisition per shadow page at
	// strand close, and a per-strand Precedes memo. Detection at
	// location granularity is unchanged (DESIGN.md §4 has the soundness
	// argument). Requires the scheduler's StrandCloser hook: accesses
	// are deferred until the engine closes the strand, so a History used
	// without an engine must call StrandClose itself.
	FastPath bool
}

// AccessTap observes the access stream the history applies, batched:
// addrs[i] was touched by strand s with kinds[i]. Called with the same
// per-strand ordering guarantees as the history update itself — every
// tapped access of a strand happens before the tracer event ending that
// strand (the flush runs inside sched's StrandClose hook). The tap must
// not retain the slices past the call.
type AccessTap interface {
	TapAccesses(s *sched.Strand, addrs []uint64, kinds []AccessKind)
}

// Backend selects the shadow-memory storage layout.
type Backend int

const (
	// BackendShardedMap (default) is a power-of-two array of
	// mutex-protected Go maps.
	BackendShardedMap Backend = iota
	// BackendTwoLevel is the paper's layout (§4): a two-level table
	// acting like a direct-mapped cache — a directory of contiguous
	// pages, with one lock per page (the paper's "each lock represents
	// a subset of the access history" fine-grained locking).
	BackendTwoLevel
)

func (b Backend) String() string {
	switch b {
	case BackendShardedMap:
		return "sharded-map"
	case BackendTwoLevel:
		return "two-level"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

type lrPair struct {
	l, r *sched.Strand
}

// loc is the access-history metadata of one memory location.
type loc struct {
	lastWriter *sched.Strand
	readers    []*sched.Strand // ReadersAll
	pairs      map[int]*lrPair // ReadersLR, keyed by future ID
}

// addrTable is the storage backend of the access history: it maps a
// shadow address to its location metadata under a fine-grained lock.
type addrTable interface {
	// acquire returns addr's metadata with its covering lock held;
	// release must be called when done.
	acquire(addr uint64) (l *loc, release func())
	// unitOf returns the key of the lock unit covering addr: every
	// address with the same key is protected by the same lock, so a
	// batch of same-unit addresses can be applied under one acquisition.
	unitOf(addr uint64) uint64
	// applyUnit invokes fn(i, l) for each addrs[i] — which must all
	// share one unitOf key — under a single acquisition of the covering
	// lock, creating locations as needed.
	applyUnit(unit uint64, addrs []uint64, fn func(i int, l *loc))
	// forEach visits every populated location (taking locks itself);
	// used by the accounting methods, not the hot path.
	forEach(fn func(*loc))
	// memBytes estimates the backend's heap footprint.
	memBytes() int
}

// shardedTable is the default backend: a power-of-two array of mutex-
// protected Go maps. Shards are selected by the address's page (its high
// bits), not the address itself, so one shard lock covers a contiguous
// page of locations — the granularity the batched fast path flushes at.
type shardedTable struct {
	shards []*shard
	mask   uint64
}

type shard struct {
	mu sync.Mutex
	m  map[uint64]*loc
}

func newShardedTable(n int) *shardedTable {
	if n == 0 {
		n = 256
	}
	p := 1
	for p < n {
		p <<= 1
	}
	t := &shardedTable{mask: uint64(p - 1)}
	for i := 0; i < p; i++ {
		t.shards = append(t.shards, &shard{m: map[uint64]*loc{}})
	}
	return t
}

// shardFor hashes addr's page number to a shard; Fibonacci hashing
// spreads dense page numbers across shards.
func (t *shardedTable) shardFor(unit uint64) *shard {
	return t.shards[(unit*0x9e3779b97f4a7c15)>>32&t.mask]
}

func (t *shardedTable) unitOf(addr uint64) uint64 { return addr >> pageBits }

func (t *shardedTable) acquire(addr uint64) (*loc, func()) {
	sh := t.shardFor(addr >> pageBits)
	sh.mu.Lock()
	l := sh.m[addr]
	if l == nil {
		l = &loc{}
		sh.m[addr] = l
	}
	return l, sh.mu.Unlock
}

func (t *shardedTable) applyUnit(unit uint64, addrs []uint64, fn func(int, *loc)) {
	sh := t.shardFor(unit)
	sh.mu.Lock()
	for i, a := range addrs {
		l := sh.m[a]
		if l == nil {
			l = &loc{}
			sh.m[a] = l
		}
		fn(i, l)
	}
	sh.mu.Unlock()
}

func (t *shardedTable) forEach(fn func(*loc)) {
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, l := range sh.m {
			fn(l)
		}
		sh.mu.Unlock()
	}
}

// locSize and pairSize are the real struct sizes, derived rather than
// hard-coded so the memory accounting cannot drift as the structs evolve
// (a test pins them to the expected values). entryOverhead approximates
// a Go map entry (key + value pointer + bucket share); it is a model
// constant, not a struct size.
var (
	locSize  = int(unsafe.Sizeof(loc{}))
	pairSize = int(unsafe.Sizeof(lrPair{}))
)

const entryOverhead = 48

func (t *shardedTable) memBytes() int {
	total := 0
	t.forEach(func(l *loc) {
		total += locSize + entryOverhead + 8*cap(l.readers) + pairSize*len(l.pairs)
	})
	return total
}

// History is the access-history component: it implements
// sched.AccessChecker and reports every determinacy race it observes.
type History struct {
	opts Options
	tbl  addrTable
	fast *stateDir // lock-free shadow directory; nil unless Options.FastPath

	// countLocks enables the shard-lock acquisition counter and the
	// fast-path hit counters. It is set (before the run starts) by
	// RegisterStats only, so the disabled hot path pays one predictable
	// branch and nothing else.
	countLocks   bool
	lockAcquires atomic.Uint64
	fastHits     atomic.Uint64
	batchFlushes atomic.Uint64
	dedupHits    atomic.Uint64
	memoHits     atomic.Uint64

	raceCount atomic.Uint64
	raceMu    sync.Mutex
	races     []Race
	retained  atomic.Int64 // len(races), readable without raceMu
	racySet   sync.Map     // addr → true; stored under raceMu, loaded lock-free
	racyCount atomic.Int64 // number of distinct racy addresses
}

// NewHistory returns an empty access history.
func NewHistory(opts Options) *History {
	if opts.Reach == nil {
		panic("detect: Options.Reach is required")
	}
	if opts.Policy == ReadersLR && opts.LeftOf == nil {
		panic("detect: ReadersLR requires Options.LeftOf")
	}
	if opts.MaxRaces == 0 {
		opts.MaxRaces = 256
	}
	h := &History{opts: opts}
	switch opts.Backend {
	case BackendShardedMap:
		h.tbl = newShardedTable(opts.Shards)
	case BackendTwoLevel:
		h.tbl = newTwoLevelTable()
	default:
		panic(fmt.Sprintf("detect: unknown backend %v", opts.Backend))
	}
	if opts.FastPath {
		h.fast = &stateDir{}
	}
	return h
}

func (h *History) report(addr uint64, prev *sched.Strand, prevKind AccessKind, cur *sched.Strand, curKind AccessKind) {
	h.raceCount.Add(1)
	// Lock-free early return when this report cannot change anything:
	// the address is already known racy and either dedup suppresses the
	// record or the detailed-record cap is full. Keeps the hot path of
	// systematically racy programs off raceMu entirely.
	if _, known := h.racySet.Load(addr); known {
		if h.opts.DedupByAddr || int(h.retained.Load()) >= h.opts.MaxRaces {
			return
		}
	}
	h.raceMu.Lock()
	if _, loaded := h.racySet.LoadOrStore(addr, true); loaded {
		if h.opts.DedupByAddr {
			h.raceMu.Unlock()
			return
		}
	} else {
		h.racyCount.Add(1)
	}
	if len(h.races) < h.opts.MaxRaces {
		h.races = append(h.races, Race{
			Addr:       addr,
			PrevStrand: prev.ID,
			CurStrand:  cur.ID,
			PrevFuture: prev.Fut.ID,
			CurFuture:  cur.Fut.ID,
			Prev:       prevKind,
			Cur:        curKind,
			PrevLabel:  prev.Label(),
			CurLabel:   cur.Label(),
		})
		h.retained.Store(int64(len(h.races)))
	}
	h.raceMu.Unlock()
}

// Read implements sched.AccessChecker: check against the last writer,
// then record the reader per the configured policy. With FastPath the
// access goes through the state word + strand batch instead of taking
// the location's lock here (fastpath.go).
func (h *History) Read(s *sched.Strand, addr uint64) {
	if h.fast != nil {
		h.fastRead(s, addr)
		return
	}
	if h.countLocks {
		h.lockAcquires.Add(1)
	}
	if h.opts.Tap != nil {
		h.tapOne(s, addr, AccessRead)
	}
	l, release := h.tbl.acquire(addr)
	h.applyRead(s, addr, l)
	release()
}

// tapOne feeds a single slow-path access to the tap through a stack
// buffer, keeping the batched TapAccesses signature allocation-free.
func (h *History) tapOne(s *sched.Strand, addr uint64, kind AccessKind) {
	addrs := [1]uint64{addr}
	kinds := [1]AccessKind{kind}
	h.opts.Tap.TapAccesses(s, addrs[:], kinds[:])
}

// applyRead performs the read-side history update on l, which the caller
// holds the covering lock for.
func (h *History) applyRead(s *sched.Strand, addr uint64, l *loc) {
	if w := l.lastWriter; w != nil && w != s && !h.precedes(w, s) {
		h.report(addr, w, AccessWrite, s, AccessRead)
	}
	switch h.opts.Policy {
	case ReadersAll:
		// Skip consecutive duplicate readers: a strand reading the same
		// location repeatedly adds no information.
		if n := len(l.readers); n == 0 || l.readers[n-1] != s {
			l.readers = append(l.readers, s)
		}
	case ReadersLR:
		h.updateLR(l, s)
	}
}

// updateLR maintains the leftmost and rightmost reader of s's future for
// this location, with the classic replacement rules (Mellor-Crummey):
// a serially later reader subsumes the stored one; among parallel
// readers, keep the leftmost (respectively rightmost) in English order.
func (h *History) updateLR(l *loc, s *sched.Strand) {
	if l.pairs == nil {
		l.pairs = map[int]*lrPair{}
	}
	p := l.pairs[s.Fut.ID]
	if p == nil {
		l.pairs[s.Fut.ID] = &lrPair{l: s, r: s}
		return
	}
	if p.l != s {
		if h.precedes(p.l, s) {
			p.l = s
		} else if h.opts.LeftOf(s, p.l) {
			p.l = s
		}
	}
	if p.r != s {
		if h.precedes(p.r, s) {
			p.r = s
		} else if h.opts.LeftOf(p.r, s) {
			p.r = s
		}
	}
}

// Write implements sched.AccessChecker: check against the last writer
// and all retained readers, then make s the last writer and clear the
// readers (they are subsumed: any later access racing a cleared reader
// also races this write or was already reported — §3.6). With FastPath
// the access goes through the state word + strand batch (fastpath.go).
func (h *History) Write(s *sched.Strand, addr uint64) {
	if h.fast != nil {
		h.fastWrite(s, addr)
		return
	}
	if h.countLocks {
		h.lockAcquires.Add(1)
	}
	if h.opts.Tap != nil {
		h.tapOne(s, addr, AccessWrite)
	}
	l, release := h.tbl.acquire(addr)
	h.applyWrite(s, addr, l)
	release()
}

// applyWrite performs the write-side history update on l, which the
// caller holds the covering lock for.
func (h *History) applyWrite(s *sched.Strand, addr uint64, l *loc) {
	if w := l.lastWriter; w != nil && w != s && !h.precedes(w, s) {
		h.report(addr, w, AccessWrite, s, AccessWrite)
	}
	switch h.opts.Policy {
	case ReadersAll:
		for _, r := range l.readers {
			if r != s && !h.precedes(r, s) {
				h.report(addr, r, AccessRead, s, AccessWrite)
			}
		}
		l.readers = l.readers[:0]
	case ReadersLR:
		for _, p := range l.pairs {
			if p.l != s && !h.precedes(p.l, s) {
				h.report(addr, p.l, AccessRead, s, AccessWrite)
			}
			if p.r != p.l && p.r != s && !h.precedes(p.r, s) {
				h.report(addr, p.r, AccessRead, s, AccessWrite)
			}
		}
		l.pairs = nil
	}
	l.lastWriter = s
}

// RaceCount returns the total number of races reported (including ones
// past the detailed-record cap).
func (h *History) RaceCount() uint64 { return h.raceCount.Load() }

// Races returns the retained detailed race records.
func (h *History) Races() []Race {
	out := make([]Race, 0, int(h.retained.Load()))
	h.raceMu.Lock()
	out = append(out, h.races...)
	h.raceMu.Unlock()
	return out
}

// RacyAddrs returns the sorted set of addresses on which at least one
// race was reported — the location-level ground truth the tests compare
// against the oracle. Reads the lock-free racy set; no raceMu needed.
func (h *History) RacyAddrs() []uint64 {
	out := make([]uint64, 0, int(h.racyCount.Load()))
	h.racySet.Range(func(k, _ any) bool {
		out = append(out, k.(uint64))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LockAcquires returns how many history-lock acquisitions were counted;
// zero unless RegisterStats enabled the counter before the run.
func (h *History) LockAcquires() uint64 { return h.lockAcquires.Load() }

// MemBytes estimates the history's heap footprint.
func (h *History) MemBytes() int {
	total := h.tbl.memBytes()
	if h.fast != nil {
		total += h.fast.memBytes()
	}
	return total
}

// RegisterStats publishes the history counters (hist.*) on r and enables
// the lock-acquisition and fast-path counters. Call it before the run
// starts: the enable flag is read unsynchronized by the access hot path.
func (h *History) RegisterStats(r *obsv.Registry) {
	h.countLocks = true
	r.RegisterFunc("hist.races", func() int64 { return int64(h.raceCount.Load()) })
	r.RegisterFunc("hist.lock_acquires", func() int64 { return int64(h.lockAcquires.Load()) })
	r.RegisterFunc("hist.mem_bytes", func() int64 { return int64(h.MemBytes()) })
	r.RegisterFunc("hist.fastpath_hits", func() int64 { return int64(h.fastHits.Load()) })
	r.RegisterFunc("hist.batch_flushes", func() int64 { return int64(h.batchFlushes.Load()) })
	r.RegisterFunc("hist.batch_dedup_hits", func() int64 { return int64(h.dedupHits.Load()) })
	r.RegisterFunc("hist.precedes_memo_hits", func() int64 { return int64(h.memoHits.Load()) })
}

// MaxReaders returns the largest retained reader count over all
// locations right now — used by tests asserting the 2k bound of the
// ReadersLR policy.
func (h *History) MaxReaders() int {
	max := 0
	h.tbl.forEach(func(l *loc) {
		n := len(l.readers) + 2*len(l.pairs)
		if n > max {
			max = n
		}
	})
	return max
}

var _ sched.AccessChecker = (*History)(nil)

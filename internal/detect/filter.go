package detect

import (
	"sync/atomic"

	"sforder/internal/obsv"
	"sforder/internal/sched"
)

// StrandFilter is an AccessChecker decorator implementing the paper's
// future-work direction (§6: "reduce the synchronization overhead by
// redesigning the access history"): it drops accesses that are redundant
// for detection before they reach the locked shadow table.
//
// Within one strand, a repeated access to an address it already touched
// cannot surface a new race on its own — any conflicting access by
// another strand checks against the history, where the strand's first
// access is already recorded (reads) or installed as last writer
// (writes). Concretely, for a location l and strand s:
//
//   - a read of l after s already read or wrote l is dropped;
//   - a write of l after s already wrote l is dropped.
//
// A write after a mere read must still go through (it has to take over
// the last-writer slot and clear the readers). The per-location
// "at least one race is reported iff one exists" guarantee is preserved
// — validated against the exhaustive oracle in the tests — while the
// locked-table traffic on loop-heavy workloads drops by the loop factor.
//
// The filter state lives on the strand itself (Strand.Aux) as a small
// direct-mapped cache, so the hot path is synchronization-free: a strand
// is only ever executed by one worker at a time.
type StrandFilter struct {
	inner   sched.AccessChecker
	dropped atomic.Uint64
}

// Dropped returns how many redundant accesses were filtered out.
func (f *StrandFilter) Dropped() uint64 { return f.dropped.Load() }

// RegisterStats publishes the filter's drop counter on r.
func (f *StrandFilter) RegisterStats(r *obsv.Registry) {
	r.RegisterFunc("hist.filter_dropped", func() int64 { return int64(f.dropped.Load()) })
}

// filterCacheSize is the per-strand direct-mapped cache size; must be a
// power of two.
const filterCacheSize = 64

type filterCache struct {
	readAddr  [filterCacheSize]uint64
	readSet   [filterCacheSize]bool
	writeAddr [filterCacheSize]uint64
	writeSet  [filterCacheSize]bool
}

// NewStrandFilter wraps inner with the strand-local redundancy filter.
func NewStrandFilter(inner sched.AccessChecker) *StrandFilter {
	return &StrandFilter{inner: inner}
}

// cacheOf returns s's filter cache, hung off the shared per-strand
// detector payload (strandState) so the filter composes with the fast
// path's batch and memo on the same Strand.Aux slot.
func cacheOf(s *sched.Strand) *filterCache {
	ss := stateOf(s)
	if ss.filter == nil {
		ss.filter = &filterCache{}
	}
	return ss.filter
}

// StrandClose implements sched.StrandCloser: forward the close to the
// wrapped checker (so a fast-path History flushes its batch), then
// release the shared per-strand state.
func (f *StrandFilter) StrandClose(s *sched.Strand) {
	if c, ok := f.inner.(sched.StrandCloser); ok {
		c.StrandClose(s)
		return
	}
	releaseStrandState(s)
}

func slot(addr uint64) int {
	return int((addr * 0x9e3779b97f4a7c15 >> 32) & (filterCacheSize - 1))
}

// Read implements sched.AccessChecker.
func (f *StrandFilter) Read(s *sched.Strand, addr uint64) {
	c := cacheOf(s)
	i := slot(addr)
	if (c.readSet[i] && c.readAddr[i] == addr) || (c.writeSet[i] && c.writeAddr[i] == addr) {
		f.dropped.Add(1) // s already read or wrote addr in this strand
		return
	}
	c.readSet[i] = true
	c.readAddr[i] = addr
	f.inner.Read(s, addr)
}

// Write implements sched.AccessChecker.
func (f *StrandFilter) Write(s *sched.Strand, addr uint64) {
	c := cacheOf(s)
	i := slot(addr)
	if c.writeSet[i] && c.writeAddr[i] == addr {
		f.dropped.Add(1) // s already wrote addr in this strand
		return
	}
	c.writeSet[i] = true
	c.writeAddr[i] = addr
	f.inner.Write(s, addr)
}

var _ sched.AccessChecker = (*StrandFilter)(nil)
var _ sched.StrandCloser = (*StrandFilter)(nil)

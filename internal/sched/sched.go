// Package sched is a task-parallel runtime with fork-join and structured
// future parallelism — the substrate the race detectors instrument. It
// stands in for the extended Cilk-F work-stealing runtime used by the
// paper (§4): user code expresses parallelism with Spawn/Sync (fork-join)
// and Create/Get (futures), and the engine executes it either serially
// (the left-to-right depth-first traversal, required by the MultiBags
// baseline) or in parallel with per-worker deques and random work
// stealing.
//
// The engine reports every dag-construction event to a Tracer — the hook
// the reachability components (SF-Order, F-Order, MultiBags, the dag
// recorder) listen on — and every instrumented memory access to an
// AccessChecker (the full race detectors). Running with a nil Tracer and
// nil AccessChecker gives the uninstrumented baseline; Tracer-only is the
// paper's "reach" configuration; both is "full".
//
// # Strands and events
//
// A Strand is a dag node: a maximal run of instructions with no parallel
// control. Executing spawn ends the current strand u and begins two new
// strands — the child's first strand and the spawner's continuation.
// Executing create does the same and additionally begins a new future
// task. Executing sync ends the current strand and begins the sync
// strand, which joins all children spawned since the previous sync.
// Executing get ends the current strand and begins the get strand, which
// additionally has an incoming edge from the gotten future's put strand.
//
// Each sync region's join strand is allocated eagerly at the first
// spawn/create of the region and handed to the Tracer as the placeholder:
// the SF-Order order-maintenance lists must place it before the child
// subdags grow (see internal/core). In the paper's model the root
// computation is itself future task 0, and every function instance ends
// with an implicit sync.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"sforder/internal/obsv"
)

// Strand is one node of the computation dag. The engine allocates
// strands; detectors hang their per-node state off Det and the dag
// recorder off Rec. A Strand's identity is its pointer; ID is a dense
// ordinal for logging and hashing.
type Strand struct {
	ID  uint64
	Fut *FutureTask // future task (SP sub-dag) owning this strand
	Det any         // detector payload (owned by the configured Tracer)
	Rec any         // recorder payload (owned by the dag recorder)
	Aux any         // auxiliary payload (owned by AccessChecker wrappers)

	label atomic.Pointer[string] // optional user label, see Task.Label
}

// Label returns the user label attached to the strand's region, or "".
func (s *Strand) Label() string {
	if p := s.label.Load(); p != nil {
		return *p
	}
	return ""
}

func (s *Strand) setLabel(l string) {
	if l == "" {
		return
	}
	s.label.Store(&l)
}

func (s *Strand) String() string {
	if s == nil {
		return "<nil strand>"
	}
	return fmt.Sprintf("s%d/f%d", s.ID, s.Fut.ID)
}

// FutureTask identifies one future task: the root computation (ID 0) or
// a task started with Create. Each future task is a series-parallel
// sub-dag of the whole SF-dag.
type FutureTask struct {
	ID     int
	Parent *FutureTask // creating future task, nil for the root
	Det    any         // detector payload (e.g. SF-Order's cp bitmap)

	last   *Strand // put strand, set when the task completes
	value  any
	done   chan struct{}
	gotten atomic.Bool
	job    *job // the task's schedulable body, claimable by Get

	// Checked-mode state (Options.CheckStructure); see task.go.
	createPC uintptr        // call site of the Create
	firstGet atomic.Uintptr // call site of the first (winning) Get
	putEpoch int64          // highest future ID existing at the put
}

// Last returns the task's put strand (nil until the task completes).
func (f *FutureTask) Last() *Strand { return f.last }

// SetLast records the task's put strand. The engine assigns last itself
// when a body completes; SetLast exists for code that reconstructs
// futures outside the engine — the offline replay (internal/replay)
// rebuilds each FutureTask from a capture and must re-establish the put
// strand before feeding the corresponding get event to a Tracer.
func (f *FutureTask) SetLast(s *Strand) { f.last = s }

// Future is the user-visible handle returned by Task.Create.
type Future struct{ ft *FutureTask }

// Task returns the underlying future task metadata, for detectors and
// tests.
func (f *Future) Task() *FutureTask { return f.ft }

// Tracer observes dag construction. The engine may invoke it from
// multiple workers concurrently, but guarantees per-strand ordering: the
// event introducing a strand happens-before any event or access naming
// it, and OnSync observes all child sinks of the joined region.
//
// placeholder is non-nil on the first OnSpawn/OnCreate of a sync region:
// it is the join strand that a later OnSync (explicit or implicit)
// activates.
type Tracer interface {
	OnRoot(root *Strand)
	OnSpawn(u, child, cont, placeholder *Strand)
	OnCreate(u, first, cont, placeholder *Strand, f *FutureTask)
	OnSync(k, s *Strand, childSinks []*Strand)
	OnReturn(sink *Strand)
	OnPut(sink *Strand, f *FutureTask)
	OnGet(u, g *Strand, f *FutureTask)
}

// LaneTracer is optionally implemented by a Tracer that keeps
// per-worker state, such as the allocation arenas of SF-Order. When
// Options.Tracer itself implements it (a Tracer buried inside a
// MultiTracer is not detected and falls back to the plain methods), the
// engine calls SetLanes once, before OnRoot, with the number of lanes —
// the worker count, or 1 for the serial executor — and then routes the
// allocating dag events (spawn, create, sync, get) through the *Lane
// variants, passing the executing worker's lane index.
//
// Lane exclusivity: the engine never issues two events for the same
// lane concurrently, because a lane is a worker and each worker runs
// one strand at a time; the lane's state therefore needs no locking.
// The non-lane events (OnRoot, OnReturn, OnPut) keep their plain forms.
type LaneTracer interface {
	Tracer
	SetLanes(n int)
	OnSpawnLane(lane int, u, child, cont, placeholder *Strand)
	OnCreateLane(lane int, u, first, cont, placeholder *Strand, f *FutureTask)
	OnSyncLane(lane int, k, s *Strand, childSinks []*Strand)
	OnGetLane(lane int, u, g *Strand, f *FutureTask)
}

// AccessChecker observes instrumented memory accesses (the full race
// detection configuration).
type AccessChecker interface {
	Read(s *Strand, addr uint64)
	Write(s *Strand, addr uint64)
}

// StrandCloser is optionally implemented by an AccessChecker that defers
// per-strand work (e.g. detect's batched fast path). The engine calls
// StrandClose exactly once per ended strand, at the point the strand's
// last access has happened and before the tracer event ending it — and
// therefore before any dag-successor strand can begin executing. Serial
// and parallel engines both honor it.
type StrandCloser interface {
	StrandClose(s *Strand)
}

// MultiTracer fans events out to several tracers in order.
type MultiTracer []Tracer

func (m MultiTracer) OnRoot(root *Strand) {
	for _, t := range m {
		t.OnRoot(root)
	}
}
func (m MultiTracer) OnSpawn(u, child, cont, placeholder *Strand) {
	for _, t := range m {
		t.OnSpawn(u, child, cont, placeholder)
	}
}
func (m MultiTracer) OnCreate(u, first, cont, placeholder *Strand, f *FutureTask) {
	for _, t := range m {
		t.OnCreate(u, first, cont, placeholder, f)
	}
}
func (m MultiTracer) OnSync(k, s *Strand, childSinks []*Strand) {
	for _, t := range m {
		t.OnSync(k, s, childSinks)
	}
}
func (m MultiTracer) OnReturn(sink *Strand) {
	for _, t := range m {
		t.OnReturn(sink)
	}
}
func (m MultiTracer) OnPut(sink *Strand, f *FutureTask) {
	for _, t := range m {
		t.OnPut(sink, f)
	}
}
func (m MultiTracer) OnGet(u, g *Strand, f *FutureTask) {
	for _, t := range m {
		t.OnGet(u, g, f)
	}
}

// Options configures Run.
type Options struct {
	// Workers is the number of worker goroutines for the parallel
	// engine; 0 means runtime.GOMAXPROCS(0). Ignored when Serial.
	Workers int
	// Serial selects the sequential left-to-right depth-first executor
	// (the execution order MultiBags requires).
	Serial bool
	// Tracer receives dag-construction events; nil disables tracing
	// (the "base" configuration).
	Tracer Tracer
	// Checker receives instrumented memory accesses; nil disables them
	// (the "base" and "reach" configurations).
	Checker AccessChecker
	// CountAccesses enables the read/write counters (Figure 3
	// characterization runs). Off by default so baseline timing runs pay
	// no per-access atomic cost.
	CountAccesses bool
	// LockDeque selects the historical mutex-guarded deque instead of
	// the lock-free Chase–Lev deque, for ablation (ABL9): every
	// push/pop/steal then takes the worker's lock, counted by the
	// sched.lock_acquires gauge. The idle park/wake protocol is
	// unchanged — only the deque representation differs.
	LockDeque bool
	// CheckStructure enables the on-the-fly structured-futures checker:
	// every Create and Get additionally verifies the SF restrictions
	// (paper §2) in O(1) per operation — single-touch with full
	// create/first-get/second-get site reporting, gets from inside the
	// created task (which would otherwise deadlock), and handles that
	// flowed backwards against the program order (a get the create's
	// continuation cannot reach). Violations panic with the offending
	// source sites; in parallel mode the panic surfaces as Run's error.
	// Off by default: the unchecked paths stay free of the site-capture
	// and visibility-horizon bookkeeping.
	CheckStructure bool
	// Aux, when non-nil, receives every dag-construction event alongside
	// the primary Tracer, always through the plain (non-lane) methods —
	// the hook trace recorders attach to without disturbing the primary
	// tracer's LaneTracer routing. Like the Chrome trace adapter it is
	// fed after the lane-aware tracer at each event site.
	Aux Tracer
	// Stats, when non-nil, receives the engine's execution counters as
	// live gauges under sched.* names at the start of Run; the registry
	// may be snapshotted while the run is in flight. Nil costs nothing.
	Stats *obsv.Registry
	// Trace, when non-nil, receives the strand timeline in Chrome
	// trace-event form: a B/E pair bracketing each strand's lifetime
	// (pid obsv.TracePidStrands, tid = strand ID), instant events for
	// spawn/create/sync/put/get edges, and steal instants (pid
	// obsv.TracePidSched, tid = thief worker). Nil costs one pointer
	// check per dag event and nothing per memory access.
	Trace *obsv.TraceWriter
}

// Counts are cheap engine-side execution statistics (Figure 3).
type Counts struct {
	Strands uint64 // dag nodes
	Futures uint64 // future tasks, root included
	Spawns  uint64
	Syncs   uint64 // materialized sync strands, implicit ones included
	Gets    uint64
	Reads   uint64 // instrumented reads
	Writes  uint64 // instrumented writes
	Steals  uint64 // jobs taken from another worker's deque
}

// ErrAborted is returned by Run when a worker panicked; the panic value
// is wrapped into the returned error.
var ErrAborted = errors.New("sched: execution aborted")

// errAbortUnwind is panicked internally to unwind blocked tasks after an
// abort; runJob swallows it.
type errAbortUnwind struct{}

type engine struct {
	opts       Options
	tracer     Tracer
	laneTracer LaneTracer // non-nil when opts.Tracer wants lane routing
	auxTracer  Tracer     // trace adapter, fed alongside laneTracer
	checker    AccessChecker
	closer     StrandCloser      // non-nil when the checker wants strand-close hooks
	check      bool              // Options.CheckStructure, hoisted for the hot paths
	lockDeque  bool              // Options.LockDeque, hoisted for the hot paths
	trace      *obsv.TraceWriter // Options.Trace, consulted for steal instants

	strandID atomic.Uint64
	futureID atomic.Int64

	cStrands, cFutures, cSpawns, cSyncs, cGets, cReads, cWrites, cSteals atomic.Uint64
	cStealFails, cParks, cWakes, cDequeGrows, cLockAcquires              atomic.Uint64

	workers     []*worker
	pending     atomic.Int64 // unfinished jobs
	parkedCount atomic.Int64 // workers currently parked (or committing to park)

	abortOnce sync.Once
	abortCh   chan struct{}
	abortErr  atomic.Value // error
}

// Run executes main under the given options and returns the engine
// counts. A non-nil error means a worker panicked (parallel mode); in
// serial mode panics propagate to the caller.
func Run(opts Options, main func(*Task)) (Counts, error) {
	e := &engine{
		opts:      opts,
		tracer:    opts.Tracer,
		checker:   opts.Checker,
		check:     opts.CheckStructure,
		lockDeque: opts.LockDeque,
		trace:     opts.Trace,
		abortCh:   make(chan struct{}),
	}
	if c, ok := opts.Checker.(StrandCloser); ok {
		e.closer = c
	}
	// The worker count is resolved before OnRoot so a LaneTracer learns
	// its lane count before the first event.
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if lt, ok := opts.Tracer.(LaneTracer); ok {
		e.laneTracer = lt
		lanes := w
		if opts.Serial {
			lanes = 1
		}
		lt.SetLanes(lanes)
	}
	// Auxiliary tracers (Options.Aux, the Chrome trace adapter) ride
	// alongside the primary tracer: appended to the plain chain, and —
	// when the primary is lane-routed — fed separately by the emit*
	// helpers so lane routing is undisturbed.
	var aux []Tracer
	if opts.Aux != nil {
		aux = append(aux, opts.Aux)
	}
	if opts.Trace != nil {
		aux = append(aux, &traceTracer{tw: opts.Trace})
	}
	if len(aux) > 0 {
		var at Tracer = MultiTracer(aux)
		if len(aux) == 1 {
			at = aux[0]
		}
		e.auxTracer = at
		if e.tracer != nil {
			e.tracer = MultiTracer{e.tracer, at}
		} else {
			e.tracer = at
		}
	}
	if opts.Stats != nil {
		// The registry publishes sched.reads/sched.writes, so attaching
		// one implies counting accesses.
		e.opts.CountAccesses = true
		e.registerStats(opts.Stats)
	}
	rootFut := e.newFuture(nil)
	rootStrand := e.newStrand(rootFut)
	if e.tracer != nil {
		e.tracer.OnRoot(rootStrand)
	}
	rootTask := &Task{
		eng:          e,
		fut:          rootFut,
		cur:          rootStrand,
		frame:        &frame{},
		body:         main,
		isFutureBody: true,
	}

	if opts.Serial {
		e.runBody(rootTask, nil)
		return e.countsSnapshot(), nil
	}

	for i := 0; i < w; i++ {
		wk := &worker{
			eng:        e,
			id:         i,
			rng:        rand.New(rand.NewSource(int64(i + 1))),
			lastVictim: -1,
			parkSig:    make(chan struct{}, 1),
		}
		wk.cl.init()
		e.workers = append(e.workers, wk)
	}
	if opts.Stats != nil {
		// Registered only now, with e.workers fully built, so a snapshot
		// taken while the run is in flight reads the worker slice through
		// the registry's mutex (registration happens-before any snapshot
		// that observes the gauge) and the rings through their atomic
		// pointers — no unsynchronized state.
		opts.Stats.RegisterFunc("sched.deque_bytes", func() int64 {
			var b int64
			for _, wk := range e.workers {
				b += wk.dequeBytes()
			}
			return b
		})
	}
	e.pending.Store(1)
	e.workers[0].push(&job{task: rootTask})

	var wg sync.WaitGroup
	for _, wk := range e.workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			wk.loop()
		}(wk)
	}
	wg.Wait()
	if err, ok := e.abortErr.Load().(error); ok && err != nil {
		return e.countsSnapshot(), err
	}
	return e.countsSnapshot(), nil
}

func (e *engine) countsSnapshot() Counts {
	return Counts{
		Strands: e.cStrands.Load(),
		Futures: e.cFutures.Load(),
		Spawns:  e.cSpawns.Load(),
		Syncs:   e.cSyncs.Load(),
		Gets:    e.cGets.Load(),
		Reads:   e.cReads.Load(),
		Writes:  e.cWrites.Load(),
		Steals:  e.cSteals.Load(),
	}
}

// registerStats publishes the engine counters as live gauges. The
// closures read the same atomics the hot paths update, so enabling stats
// changes nothing about execution.
func (e *engine) registerStats(r *obsv.Registry) {
	gauge := func(name string, c *atomic.Uint64) {
		r.RegisterFunc(name, func() int64 { return int64(c.Load()) })
	}
	gauge("sched.strands", &e.cStrands)
	gauge("sched.futures", &e.cFutures)
	gauge("sched.spawns", &e.cSpawns)
	gauge("sched.syncs", &e.cSyncs)
	gauge("sched.gets", &e.cGets)
	gauge("sched.reads", &e.cReads)
	gauge("sched.writes", &e.cWrites)
	gauge("sched.steals", &e.cSteals)
	gauge("sched.steal_fails", &e.cStealFails)
	gauge("sched.parks", &e.cParks)
	gauge("sched.wakes", &e.cWakes)
	gauge("sched.deque_grows", &e.cDequeGrows)
	gauge("sched.lock_acquires", &e.cLockAcquires)
}

func (e *engine) newStrand(f *FutureTask) *Strand {
	e.cStrands.Add(1)
	return &Strand{ID: e.strandID.Add(1) - 1, Fut: f}
}

func (e *engine) newFuture(parent *FutureTask) *FutureTask {
	e.cFutures.Add(1)
	return &FutureTask{
		ID:     int(e.futureID.Add(1) - 1),
		Parent: parent,
		done:   make(chan struct{}),
	}
}

// emitSpawn routes OnSpawn either through the lane-aware tracer (plus
// the trace adapter, which is outside the MultiTracer in that case) or
// through the plain tracer chain. emitCreate/emitSync/emitGet mirror it.
func (e *engine) emitSpawn(lane int, u, child, cont, placeholder *Strand) {
	if lt := e.laneTracer; lt != nil {
		lt.OnSpawnLane(lane, u, child, cont, placeholder)
		if e.auxTracer != nil {
			e.auxTracer.OnSpawn(u, child, cont, placeholder)
		}
		return
	}
	if e.tracer != nil {
		e.tracer.OnSpawn(u, child, cont, placeholder)
	}
}

func (e *engine) emitCreate(lane int, u, first, cont, placeholder *Strand, f *FutureTask) {
	if lt := e.laneTracer; lt != nil {
		lt.OnCreateLane(lane, u, first, cont, placeholder, f)
		if e.auxTracer != nil {
			e.auxTracer.OnCreate(u, first, cont, placeholder, f)
		}
		return
	}
	if e.tracer != nil {
		e.tracer.OnCreate(u, first, cont, placeholder, f)
	}
}

func (e *engine) emitSync(lane int, k, s *Strand, childSinks []*Strand) {
	if lt := e.laneTracer; lt != nil {
		lt.OnSyncLane(lane, k, s, childSinks)
		if e.auxTracer != nil {
			e.auxTracer.OnSync(k, s, childSinks)
		}
		return
	}
	if e.tracer != nil {
		e.tracer.OnSync(k, s, childSinks)
	}
}

func (e *engine) emitGet(lane int, u, g *Strand, f *FutureTask) {
	if lt := e.laneTracer; lt != nil {
		lt.OnGetLane(lane, u, g, f)
		if e.auxTracer != nil {
			e.auxTracer.OnGet(u, g, f)
		}
		return
	}
	if e.tracer != nil {
		e.tracer.OnGet(u, g, f)
	}
}

// closeStrand notifies the checker that s has ended. Call sites are the
// soundness-critical part: each sits after s's last possible access and
// before the tracer event ending s, so a deferring checker flushes while
// the reachability structures still describe s's execution and before
// any dag successor of s runs.
func (e *engine) closeStrand(s *Strand) {
	if e.closer != nil {
		e.closer.StrandClose(s)
	}
}

func (e *engine) abort(v any) {
	e.abortOnce.Do(func() {
		e.abortErr.Store(fmt.Errorf("%w: %v", ErrAborted, v))
		close(e.abortCh)
	})
}

func (e *engine) aborted() bool {
	select {
	case <-e.abortCh:
		return true
	default:
		return false
	}
}

// frame is one function instance: the root body, a spawned child body,
// or a future task body. It tracks the current sync region.
type frame struct {
	block *syncBlock
}

// syncBlock is a sync region: the spawns/creates since the last sync of
// one function instance.
type syncBlock struct {
	mu          sync.Mutex
	placeholder *Strand // the join strand, allocated at first branch
	spawned     bool    // a spawn (not just creates) occurred in region
	outstanding int     // spawned children not yet returned
	children    []*job  // spawned child jobs, for inline draining
	childSinks  []*Strand
	waitCh      chan struct{}
	joinEpoch   int64 // checked mode: max future ID visible to a joined child
}

// job is a schedulable unit: the root body, a spawned child body, or a
// future task body, all described by their pre-built Task context.
type job struct {
	state atomic.Int32 // 0 pending, 1 taken
	task  *Task
}

func (j *job) take() bool { return j.state.CompareAndSwap(0, 1) }

// worker executes jobs from its own deque, stealing when empty. The
// deque is a lock-free Chase–Lev ring (deque.go) by default; the
// Options.LockDeque ablation swaps in the historical mutex-guarded
// slice, with every acquisition counted on sched.lock_acquires.
type worker struct {
	eng *engine
	id  int
	rng *rand.Rand

	// lastVictim is steal affinity: the worker a steal last succeeded
	// against is probed first next time (worker-local, no sync needed).
	lastVictim int

	cl chaseLev // the lock-free deque (default)

	// The Options.LockDeque ablation deque. slen/scap mirror len/cap
	// under the lock so the pre-park work scan and the deque_bytes
	// gauge can read them without acquiring it.
	mu         sync.Mutex
	slice      []*job // bottom (newest) = end of slice
	slen, scap atomic.Int64

	// Idle-protocol state; see park/wakeOne for the token discipline.
	parked  atomic.Bool
	parkSig chan struct{} // capacity 1; a token is a wake permit
}

// push appends j to this worker's deque and wakes at most one parked
// worker. Everything the pusher did before the push — in particular
// the closeStrand flush at the spawn/create site — happens-before any
// pop or steal that obtains j (atomic publication in the Chase–Lev
// case, the mutex in the ablation case).
func (w *worker) push(j *job) {
	e := w.eng
	if e.lockDeque {
		e.cLockAcquires.Add(1)
		w.mu.Lock()
		w.slice = append(w.slice, j)
		w.slen.Store(int64(len(w.slice)))
		w.scap.Store(int64(cap(w.slice)))
		w.mu.Unlock()
	} else if w.cl.push(j) {
		e.cDequeGrows.Add(1)
	}
	e.wakeOne()
}

// pop removes the newest pending job from the bottom of the deque,
// discarding jobs already taken elsewhere (inline drains, get claims).
func (w *worker) pop() *job {
	e := w.eng
	if !e.lockDeque {
		return w.cl.pop()
	}
	e.cLockAcquires.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.slice) > 0 {
		j := w.slice[len(w.slice)-1]
		w.slice = w.slice[:len(w.slice)-1]
		w.slen.Store(int64(len(w.slice)))
		if j.state.Load() == 0 {
			return j
		}
	}
	return nil
}

// stealFrom removes the oldest pending job from the top of v's deque.
func (w *worker) stealFrom(v *worker) *job {
	e := w.eng
	if !e.lockDeque {
		return v.cl.steal()
	}
	e.cLockAcquires.Add(1)
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.slice) > 0 {
		j := v.slice[0]
		v.slice = v.slice[1:]
		v.slen.Store(int64(len(v.slice)))
		v.scap.Store(int64(cap(v.slice)))
		if j.state.Load() == 0 {
			return j
		}
	}
	return nil
}

// hasWork reports whether this worker's deque looks non-empty. Racy by
// design: it feeds the pre-park scan, where staleness costs one more
// probe round, never correctness.
func (w *worker) hasWork() bool {
	if w.eng.lockDeque {
		return w.slen.Load() > 0
	}
	return w.cl.size() > 0
}

// dequeBytes is the deque's backing-store footprint for the
// sched.deque_bytes gauge (ring capacity, or the mirrored slice cap in
// the ablation mode).
func (w *worker) dequeBytes() int64 {
	if w.eng.lockDeque {
		return w.scap.Load() * int64(unsafe.Sizeof((*job)(nil)))
	}
	return w.cl.memBytes()
}

// trim drops the dead entries inline claims leave at the bottom of
// this worker's deque; called after every inline run (see runInline).
// The mutex ablation keeps the historical accumulate-until-popped
// behavior — its memory growth is part of what ABL9 measures.
func (w *worker) trim() {
	if !w.eng.lockDeque {
		w.cl.trim()
	}
}

// trySteal attempts one steal from v, updating affinity and counters on
// success.
func (w *worker) trySteal(v *worker) *job {
	if v == w {
		return nil
	}
	j := w.stealFrom(v)
	if j == nil {
		return nil
	}
	w.lastVictim = v.id
	w.eng.cSteals.Add(1)
	if tw := w.eng.trace; tw != nil {
		tw.Instant(obsv.TracePidSched, uint64(w.id), "steal",
			map[string]any{"victim": v.id, "strand": j.task.cur.ID})
	}
	return j
}

// findWork pops locally, then probes the last successful victim
// (steal affinity: a victim that had surplus work recently likely
// still does, and its deque top is warm in this worker's cache), then
// the remaining workers from a random offset.
func (w *worker) findWork() *job {
	if j := w.pop(); j != nil {
		return j
	}
	n := len(w.eng.workers)
	if n == 1 {
		return nil
	}
	last := w.lastVictim
	if last >= 0 {
		if j := w.trySteal(w.eng.workers[last]); j != nil {
			return j
		}
	}
	off := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := w.eng.workers[(off+i)%n]
		if v == w || v.id == last {
			continue
		}
		if j := w.trySteal(v); j != nil {
			return j
		}
	}
	w.lastVictim = -1
	w.eng.cStealFails.Add(1)
	return nil
}

// Idle backoff thresholds: a few probe rounds with exponentially
// lengthening busy pauses (the work may be a cache-miss away), then
// cooperative yields (another goroutine may be about to push), then
// park — after which the worker consumes no cycles until woken.
const (
	idleSpinRounds  = 4
	idleYieldRounds = 16
)

// spinSink defeats dead-code elimination of the backoff pause loop.
var spinSink atomic.Uint64

func spinPause(n int) {
	var s uint64
	for i := 0; i < n; i++ {
		s += uint64(i)
	}
	spinSink.Store(s)
}

func (w *worker) loop() {
	e := w.eng
	idle := 0
	for {
		if e.aborted() {
			return
		}
		if j := w.findWork(); j != nil {
			idle = 0
			if j.take() {
				w.runJob(j)
			}
			continue
		}
		if e.pending.Load() == 0 {
			return
		}
		idle++
		switch {
		case idle <= idleSpinRounds:
			spinPause(1 << (4 + idle)) // 32, 64, 128, 256: exponential
		case idle <= idleSpinRounds+idleYieldRounds:
			runtime.Gosched()
		default:
			w.park()
			idle = 0
		}
	}
}

// park blocks the worker on its wake channel until a pusher hands it a
// token, the run terminates, or an abort lands. The no-lost-wakeup
// argument is a Dekker pattern on sequentially consistent atomics: the
// parker stores parked=true and then re-checks termination and every
// deque; a pusher stores its job (or the terminating worker its
// pending decrement) and then scans the parked flags. In any
// interleaving at least one side observes the other, so either the
// parker cancels or the pusher/terminator wakes it.
func (w *worker) park() {
	e := w.eng
	w.parked.Store(true)
	e.parkedCount.Add(1)
	if e.pending.Load() == 0 || e.aborted() || e.workAvailable() {
		w.cancelPark()
		return
	}
	e.cParks.Add(1)
	select {
	case <-w.parkSig:
	case <-e.abortCh:
		w.cancelPark()
	}
}

// cancelPark retracts a park announcement. If a waker already claimed
// this worker (the CAS fails), its token is in flight — consume it so
// the channel is empty before the next park.
func (w *worker) cancelPark() {
	if w.parked.CompareAndSwap(true, false) {
		w.eng.parkedCount.Add(-1)
		return
	}
	<-w.parkSig
}

// workAvailable scans every deque for visible work (pre-park check).
func (e *engine) workAvailable() bool {
	for _, v := range e.workers {
		if v.hasWork() {
			return true
		}
	}
	return false
}

// wakeOne wakes at most one parked worker; called after every push.
// The common case — nobody parked — is one atomic load. Token
// discipline: a token is sent only after winning the parked CAS, and
// every consumed flag leads to exactly one receive, so the buffered
// channel never blocks a waker.
func (e *engine) wakeOne() {
	if e.parkedCount.Load() == 0 {
		return
	}
	for _, w := range e.workers {
		if w.parked.Load() && w.parked.CompareAndSwap(true, false) {
			e.parkedCount.Add(-1)
			e.cWakes.Add(1)
			w.parkSig <- struct{}{}
			return
		}
	}
}

// wakeAll wakes every parked worker. Called exactly once, by whichever
// worker retires the last job (pending hits zero): the woken workers
// observe pending==0 and exit, so the engine can never shut down with
// a goroutine still parked.
func (e *engine) wakeAll() {
	for _, w := range e.workers {
		if w.parked.CompareAndSwap(true, false) {
			e.parkedCount.Add(-1)
			e.cWakes.Add(1)
			w.parkSig <- struct{}{}
		}
	}
}

// finishJob retires one job; the worker that brings pending to zero
// performs the termination wake.
func (e *engine) finishJob() {
	if e.pending.Add(-1) == 0 {
		e.wakeAll()
	}
}

// runJob executes a claimed job on this worker, converting panics into
// an engine abort (the internal unwind sentinel excepted).
func (w *worker) runJob(j *job) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(errAbortUnwind); !ok {
				w.eng.abort(r)
			}
			// Best-effort close of the strand that was executing, so a
			// deferring checker keeps its partial results on failure.
			// Guarded by its own recover: the checker may be mid-update.
			func() {
				defer func() { _ = recover() }()
				w.eng.closeStrand(j.task.cur)
			}()
		}
		w.eng.finishJob()
	}()
	w.eng.runBody(j.task, w)
}

// runInline executes a job synchronously on the current worker (inline
// drain at sync, or a get claiming an unstarted future). Panics
// propagate: the enclosing runJob converts them.
func (e *engine) runInline(j *job, w *worker) {
	defer e.finishJob()
	e.runBody(j.task, w)
	if w != nil {
		w.trim()
	}
}

// runBody runs one function instance to completion: body, implicit sync,
// then sink bookkeeping (put for future tasks including the root,
// return-join for spawned children).
func (e *engine) runBody(t *Task, w *worker) {
	t.worker = w
	if t.bodyV != nil {
		t.retval = t.bodyV(t)
	} else if t.body != nil {
		t.body(t)
	}
	sink := t.implicitSync()
	// The sink strand ends here: flush deferred accesses before the
	// put/return event makes successors (getters, the parent's sync
	// strand) runnable.
	e.closeStrand(sink)

	if t.isFutureBody {
		f := t.fut
		f.value = t.retval
		f.last = sink
		if e.tracer != nil {
			e.tracer.OnPut(sink, f)
		}
		if e.check {
			// Handles the body made visible through its put: everything
			// that exists now. Written before close(done), so getters
			// observe it after the done happens-before edge.
			f.putEpoch = e.futureID.Load() - 1
		}
		close(f.done)
		return
	}

	// Spawned child: join the parent's sync region.
	if e.tracer != nil {
		e.tracer.OnReturn(sink)
	}
	b := t.parentBlock
	b.mu.Lock()
	if e.check {
		if ep := e.futureID.Load() - 1; ep > b.joinEpoch {
			b.joinEpoch = ep
		}
	}
	b.childSinks = append(b.childSinks, sink)
	b.outstanding--
	if b.outstanding == 0 && b.waitCh != nil {
		close(b.waitCh)
		b.waitCh = nil
	}
	b.mu.Unlock()
}

package sched_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"sforder/internal/sched"
)

// closeRecorder is a StrandCloser-implementing checker that records
// which strands have been closed.
type closeRecorder struct {
	closed sync.Map // strand ID -> struct{}
}

func (c *closeRecorder) Read(s *sched.Strand, addr uint64)  {}
func (c *closeRecorder) Write(s *sched.Strand, addr uint64) {}
func (c *closeRecorder) StrandClose(s *sched.Strand)        { c.closed.Store(s.ID, struct{}{}) }

// TestStrandCloseHappensBeforeSuccessors pins the StrandCloser contract
// across the lock-free deque hand-off: the strand ended by a spawn,
// create, sync, or get is closed (its deferred detector work flushed)
// before any dag-successor strand executes — on whichever worker the
// successor lands. The memory-ordering half of the argument is the
// deque's atomic publication (push stores the slot then bottom; pop and
// steal load them before touching the job); the program-order half is
// that closeStrand precedes the push at every call site.
func TestStrandCloseHappensBeforeSuccessors(t *testing.T) {
	rec := &closeRecorder{}
	var violations atomic.Int64
	check := func(u *sched.Strand) {
		if _, ok := rec.closed.Load(u.ID); !ok {
			violations.Add(1)
		}
	}
	var nest func(tk *sched.Task, depth int)
	nest = func(tk *sched.Task, depth int) {
		if depth == 0 {
			return
		}
		u1 := tk.Strand() // ends at the Spawn below
		tk.Spawn(func(c *sched.Task) {
			check(u1) // child's first strand is a successor of u1
			nest(c, depth-1)
		})
		check(u1)         // as is the spawner's continuation
		u2 := tk.Strand() // ends at the Create below
		f := tk.Create(func(c *sched.Task) any {
			check(u2) // future's first strand is a successor of u2
			nest(c, depth-1)
			return nil
		})
		check(u2)         // as is the creator's continuation
		u3 := tk.Strand() // ends at the Get below
		_ = tk.Get(f)
		check(u3)
		check(f.Task().Last()) // the put strand precedes the get strand
		u4 := tk.Strand()      // ends at the Sync below
		tk.Sync()
		check(u4)
	}
	_, err := sched.Run(sched.Options{Workers: 4, Checker: rec}, func(root *sched.Task) {
		nest(root, 6)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d successor strands began before their predecessor closed", v)
	}
}

package sched

// Chase–Lev lock-free work-stealing deque (Chase & Lev, SPAA'05, in the
// formulation of Lê et al., PPoPP'13, simplified by Go's sequentially
// consistent sync/atomic operations). The owning worker pushes and pops
// at the bottom without any synchronization beyond atomic loads/stores;
// thieves take from the top with a single CAS. The only contended
// operation is the pop-vs-steal race on the final element, resolved by
// that CAS on top.
//
// The buffer is a growable power-of-two ring published through an
// atomic pointer. Growth is owner-only: the owner copies the live window
// [top, bottom) into a ring twice the size and publishes it; a thief
// that loaded the old ring still reads a correct element, because
// growing never erases old slots and its CAS on top arbitrates
// ownership regardless of which generation it read from. Slots are
// never overwritten while live — push grows instead of wrapping onto an
// unconsumed index — so the element a thief reads at top t cannot
// change until some CAS advances top past t.
//
// Happens-before for job hand-off: push stores the slot and then
// bottom with sequentially consistent atomics, and both pop and steal
// load bottom (and, for steal, CAS top) before touching the slot, so
// everything the pusher did before push — in particular the
// closeStrand flush that precedes every push (see Task.Spawn/Create) —
// is visible to whichever worker obtains the job. This is the memory-
// ordering half of the StrandCloser contract; the program-order half
// (flush before the job exists) is at the call sites.
//
// Jobs claimed elsewhere (inline sync drains, Get claims) are skipped
// inside pop and steal without holding any lock: a dequeued job whose
// state is already taken is simply discarded and the dequeue retried.
// Dequeued-but-stale slots keep their job pointer until the slot is
// reused, pinning at most one ring of finished jobs — bounded by the
// ring size, unlike the old mutex deque whose stolen-from slice head
// grew without bound.

import (
	"sync/atomic"
	"unsafe"
)

// dequeInitSlots is the initial ring capacity; deep spawn recursion
// grows it (counted as sched.deque_grows).
const dequeInitSlots = 64

// dequeRing is one power-of-two ring generation. mask and the slot
// backing array are immutable after construction; only slot contents
// change.
type dequeRing struct {
	mask int64
	slot []atomic.Pointer[job]
}

func newDequeRing(n int64) *dequeRing {
	return &dequeRing{mask: n - 1, slot: make([]atomic.Pointer[job], n)}
}

func (r *dequeRing) get(i int64) *job    { return r.slot[i&r.mask].Load() }
func (r *dequeRing) put(i int64, j *job) { r.slot[i&r.mask].Store(j) }
func (r *dequeRing) capBytes() int64 {
	return int64(len(r.slot)) * int64(unsafe.Sizeof(atomic.Pointer[job]{}))
}

// chaseLev is the deque itself. top only ever increases (monotonic
// steal frontier); bottom is written only by the owner.
type chaseLev struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[dequeRing]
}

func (d *chaseLev) init() { d.ring.Store(newDequeRing(dequeInitSlots)) }

// push appends j at the bottom. Owner only. Reports whether the ring
// had to grow.
func (d *chaseLev) push(j *job) (grew bool) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t > r.mask {
		r = d.grow(r, t, b)
		grew = true
	}
	r.put(b, j)
	d.bottom.Store(b + 1)
	return grew
}

// grow doubles the ring, copying the live window. Owner only; thieves
// holding the old ring stay correct (see the package comment).
func (d *chaseLev) grow(old *dequeRing, t, b int64) *dequeRing {
	r := newDequeRing(2 * (old.mask + 1))
	for i := t; i < b; i++ {
		r.put(i, old.get(i))
	}
	d.ring.Store(r)
	return r
}

// pop removes the newest pending job from the bottom, discarding jobs
// already taken elsewhere. Owner only; lock-free. The CAS on top is
// reached only when popping the final element, the one index thieves
// can contend for.
func (d *chaseLev) pop() *job {
	for {
		b := d.bottom.Load() - 1
		d.bottom.Store(b)
		t := d.top.Load()
		if t > b {
			// Empty: undo the reservation.
			d.bottom.Store(b + 1)
			return nil
		}
		r := d.ring.Load()
		j := r.get(b)
		if t == b {
			// Final element: race thieves for it on top.
			won := d.top.CompareAndSwap(t, t+1)
			d.bottom.Store(b + 1)
			if !won || j.state.Load() != 0 {
				// Lost to a thief, or the job was claimed inline;
				// either way the deque is now empty.
				return nil
			}
			return j
		}
		if j.state.Load() != 0 {
			continue // claimed inline (sync drain / get); discard
		}
		return j
	}
}

// steal removes the oldest pending job from the top. Thief side; a
// single CAS per obtained job. A lost CAS returns nil — the victim is
// not necessarily empty, but some other worker made progress on it, so
// the thief moves on rather than spinning here. Already-taken jobs are
// drained and skipped without any lock.
func (d *chaseLev) steal() *job {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return nil // empty
		}
		r := d.ring.Load()
		j := r.get(t)
		if !d.top.CompareAndSwap(t, t+1) {
			return nil // contended: another thief or the owner's pop won
		}
		if j != nil && j.state.Load() == 0 {
			return j
		}
		// Claimed inline elsewhere: keep draining the top.
	}
}

// trim drops the run of already-taken jobs at the bottom of the deque.
// Owner only. Inline claims (sync drains, get claims) leave their
// entries behind as dead slots, and because they are the most recent
// pushes those slots sit at the bottom; without trimming, deep inline
// recursion accumulates one dead slot per drained spawn and the ring
// grows with the computation size instead of its span. Each removal
// follows the pop reservation protocol, so the final-element race with
// thieves stays arbitrated by the CAS on top; a live (or not yet
// visible) bottom entry stops the scan.
func (d *chaseLev) trim() {
	for {
		b := d.bottom.Load() - 1
		d.bottom.Store(b)
		t := d.top.Load()
		if t > b {
			d.bottom.Store(b + 1) // empty
			return
		}
		j := d.ring.Load().get(b)
		if j == nil || j.state.Load() == 0 {
			d.bottom.Store(b + 1) // live bottom entry: stop
			return
		}
		if t == b {
			// Dead final element: whether we win the CAS or a thief's
			// drain loop does, the slot is consumed; either way the
			// deque ends empty.
			d.top.CompareAndSwap(t, t+1)
			d.bottom.Store(b + 1)
			return
		}
		// Dead non-final entry: keep the reservation and scan down.
	}
}

// size is a racy lower-bound estimate of the pending-job count, used
// only by the pre-park work scan (a stale answer costs a spurious
// wake-cancel or one extra probe round, never correctness).
func (d *chaseLev) size() int64 {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return b - t
}

// memBytes reports the current ring's backing-array footprint
// (unsafe.Sizeof-derived; the sched.deque_bytes gauge sums it).
func (d *chaseLev) memBytes() int64 {
	r := d.ring.Load()
	if r == nil {
		return 0
	}
	return r.capBytes()
}

package sched_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sforder/internal/obsv"
	"sforder/internal/sched"
)

// TestIdleWorkersParkAndStopSpinning pins the idle protocol: once a
// worker parks, it consumes no steal-loop iterations until woken. The
// check is counter-based, not timing-based — the root strand waits (by
// polling the live registry) until at least 3 of the 4 workers have
// parked, then runs a long stretch of serial work and asserts the
// sched.steal_fails counter does not move: parked workers are blocked
// on their wake channels and cannot complete probe sweeps.
func TestIdleWorkersParkAndStopSpinning(t *testing.T) {
	reg := obsv.NewRegistry()
	_, err := sched.Run(sched.Options{Workers: 4, Stats: reg}, func(root *sched.Task) {
		deadline := time.Now().Add(10 * time.Second)
		for reg.Snapshot()["sched.parks"] < 3 {
			if time.Now().After(deadline) {
				t.Error("workers never parked while the root strand ran alone")
				return
			}
			runtime.Gosched()
		}
		before := reg.Snapshot()["sched.steal_fails"]
		// Serial work with no spawns: nothing can legitimately wake the
		// parked workers, so any steal-loop progress would show up here.
		var s uint64
		for i := 0; i < 50_000_000; i++ {
			s += uint64(i)
		}
		runtime.KeepAlive(s)
		if after := reg.Snapshot()["sched.steal_fails"]; after != before {
			t.Errorf("parked workers kept probing: steal_fails %d -> %d", before, after)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParkWakeStorm is the termination-protocol stress: one producer
// emits bursts of spawns separated by idle gaps, so workers repeatedly
// park between bursts and must be re-woken by the next push. Run under
// -race in CI. Asserts every spawned body ran and the run terminated.
func TestParkWakeStorm(t *testing.T) {
	const bursts, width = 200, 4
	var ran atomic.Int64
	reg := obsv.NewRegistry()
	_, err := sched.Run(sched.Options{Workers: 4, Stats: reg}, func(root *sched.Task) {
		for b := 0; b < bursts; b++ {
			for k := 0; k < width; k++ {
				root.Spawn(func(c *sched.Task) { ran.Add(1) })
			}
			// Idle gap: let the spawned work drain and the workers go
			// back to sleep before the next burst.
			for i := 0; i < 50; i++ {
				runtime.Gosched()
			}
			root.Sync()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != bursts*width {
		t.Fatalf("ran %d of %d spawned bodies", got, bursts*width)
	}
	snap := reg.Snapshot()
	if snap["sched.wakes"] == 0 {
		t.Error("storm completed without a single wake; park/wake path untested")
	}
}

// TestShutdownUnparksAll checks the engine never leaks a parked worker:
// with 8 workers and a mostly-serial computation most workers spend the
// run parked, and when the root returns every goroutine must exit.
func TestShutdownUnparksAll(t *testing.T) {
	base := runtime.NumGoroutine()
	reg := obsv.NewRegistry()
	_, err := sched.Run(sched.Options{Workers: 8, Stats: reg}, func(root *sched.Task) {
		// Hold the root open until at least one worker has actually
		// parked, so returning exercises the termination wake.
		deadline := time.Now().Add(10 * time.Second)
		for reg.Snapshot()["sched.parks"] == 0 {
			if time.Now().After(deadline) {
				t.Error("no worker parked while the root strand ran alone")
				return
			}
			runtime.Gosched()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot()["sched.parks"] == 0 {
		t.Error("no worker parked during a serial-dominated run; shutdown path untested")
	}
	// Worker goroutines have returned by the time Run returns (it waits
	// on the WaitGroup), but give the runtime a moment to retire them.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before Run, %d after", base, runtime.NumGoroutine())
}

// TestDequeMemoryBounded is the regression test for the old
// stealFrom leak (v.deque = v.deque[1:] pinned the backing array's
// head forever): across a ParallelFor of 1e5 tiny strands, the
// sched.deque_bytes gauge — the unsafe.Sizeof-accounted ring
// footprint, summed over workers — must stay bounded by a few rings,
// not grow with the strand count. Rings never shrink, so the post-run
// reading is the peak footprint.
func TestDequeMemoryBounded(t *testing.T) {
	reg := obsv.NewRegistry()
	var sink atomic.Int64
	_, err := sched.Run(sched.Options{Workers: 4, Stats: reg}, func(root *sched.Task) {
		root.ParallelFor(0, 100_000, 1, func(c *sched.Task, i int) {
			sink.Add(int64(i))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	got := reg.Snapshot()["sched.deque_bytes"]
	if got == 0 {
		t.Fatal("sched.deque_bytes gauge reported nothing")
	}
	const bound = 64 << 10 // 100k strands must not show up here
	if got > bound {
		t.Errorf("deque memory grew with strand count: %d bytes (bound %d)", got, bound)
	}
}

package sched_test

import (
	"sync"
	"testing"

	"sforder/internal/sched"
)

// laneRecorder implements sched.LaneTracer and records which entry
// points the engine used and which lanes it saw.
type laneRecorder struct {
	mu         sync.Mutex
	lanes      int
	laneEvents map[int]int // lane → events routed through *Lane methods
	plainSpawn int         // events that arrived through the plain methods
}

func newLaneRecorder() *laneRecorder {
	return &laneRecorder{laneEvents: map[int]int{}}
}

func (r *laneRecorder) SetLanes(n int) { r.lanes = n }

func (r *laneRecorder) lane(l int) {
	r.mu.Lock()
	r.laneEvents[l]++
	r.mu.Unlock()
}

func (r *laneRecorder) OnSpawnLane(l int, u, c, k, p *sched.Strand) { r.lane(l) }
func (r *laneRecorder) OnCreateLane(l int, u, f, k, p *sched.Strand, ft *sched.FutureTask) {
	r.lane(l)
}
func (r *laneRecorder) OnSyncLane(l int, k, s *sched.Strand, sinks []*sched.Strand) { r.lane(l) }
func (r *laneRecorder) OnGetLane(l int, u, g *sched.Strand, f *sched.FutureTask)    { r.lane(l) }

func (r *laneRecorder) OnRoot(*sched.Strand) {}
func (r *laneRecorder) OnSpawn(u, c, k, p *sched.Strand) {
	r.mu.Lock()
	r.plainSpawn++
	r.mu.Unlock()
}
func (r *laneRecorder) OnCreate(u, f, k, p *sched.Strand, ft *sched.FutureTask) {}
func (r *laneRecorder) OnSync(k, s *sched.Strand, sinks []*sched.Strand)        {}
func (r *laneRecorder) OnReturn(*sched.Strand)                                  {}
func (r *laneRecorder) OnPut(*sched.Strand, *sched.FutureTask)                  {}
func (r *laneRecorder) OnGet(u, g *sched.Strand, f *sched.FutureTask)           {}

func laneWorkload(t *sched.Task) {
	for i := 0; i < 8; i++ {
		t.Spawn(func(t *sched.Task) {
			f := t.Create(func(*sched.Task) any { return 1 })
			t.Get(f)
		})
	}
	t.Sync()
}

// TestLaneTracerRouting: a Tracer implementing LaneTracer gets SetLanes
// before the first event and all spawn/create/sync/get events through
// the *Lane variants, with lanes inside [0, workers).
func TestLaneTracerRouting(t *testing.T) {
	rec := newLaneRecorder()
	if _, err := sched.Run(sched.Options{Workers: 3, Tracer: rec}, laneWorkload); err != nil {
		t.Fatal(err)
	}
	if rec.lanes != 3 {
		t.Errorf("SetLanes got %d, want 3", rec.lanes)
	}
	if rec.plainSpawn != 0 {
		t.Errorf("%d spawns leaked through the plain method", rec.plainSpawn)
	}
	total := 0
	for lane, n := range rec.laneEvents {
		if lane < 0 || lane >= 3 {
			t.Errorf("event on out-of-range lane %d", lane)
		}
		total += n
	}
	// 8 spawns + 8 creates + 8 gets + syncs (implicit ones included).
	if total < 24 {
		t.Errorf("only %d lane events recorded", total)
	}
}

// TestLaneTracerSerial: the serial executor is a single lane, lane 0.
func TestLaneTracerSerial(t *testing.T) {
	rec := newLaneRecorder()
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: rec}, laneWorkload); err != nil {
		t.Fatal(err)
	}
	if rec.lanes != 1 {
		t.Errorf("SetLanes got %d, want 1", rec.lanes)
	}
	for lane := range rec.laneEvents {
		if lane != 0 {
			t.Errorf("serial run used lane %d", lane)
		}
	}
}

// TestLaneTracerInsideMultiTracerFallsBack: a LaneTracer wrapped in a
// MultiTracer is not detected; events arrive through the plain methods.
func TestLaneTracerInsideMultiTracerFallsBack(t *testing.T) {
	rec := newLaneRecorder()
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: sched.MultiTracer{rec}}, laneWorkload); err != nil {
		t.Fatal(err)
	}
	if len(rec.laneEvents) != 0 {
		t.Errorf("lane methods called through MultiTracer: %v", rec.laneEvents)
	}
	if rec.plainSpawn == 0 {
		t.Error("no plain spawn events recorded")
	}
}

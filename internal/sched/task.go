package sched

// Task is the execution context of one function instance (the root body,
// a spawned child, or a future task body). User code receives a *Task
// and expresses parallelism through its methods. A Task must only be
// used by the function instance it was passed to; capturing it inside a
// spawned or created child is a programming error (children receive
// their own).
type Task struct {
	eng    *engine
	fut    *FutureTask
	frame  *frame
	cur    *Strand
	worker *worker

	body  func(*Task)
	bodyV func(*Task) any

	retval       any
	isFutureBody bool       // future-task body (root included)
	parentBlock  *syncBlock // spawned children: region to join on return
	label        string     // inherited by strands this instance creates

	// horizon is the checked-mode visibility horizon: the highest future
	// ID whose handle can structurally have flowed to this function
	// instance (paper §2 get-reachability). It starts at the creator's
	// horizon (closure capture), and rises when this instance creates a
	// future, gets one (the put publishes everything existing at the
	// put), or syncs spawned children (the join publishes their
	// creations). A Get of a future above the horizon means the handle
	// arrived through unsynchronized shared memory — a handle race.
	// Maintained only when Options.CheckStructure is set.
	horizon int64
}

// laneID is the dense per-worker index handed to lane-aware tracers;
// the serial executor is lane 0.
func (t *Task) laneID() int {
	if t.worker != nil {
		return t.worker.id
	}
	return 0
}

// Label tags the current strand and all later strands of this function
// instance (until relabeled) with a human-readable name that race
// reports include. Child instances start unlabeled.
func (t *Task) Label(name string) {
	t.label = name
	t.cur.setLabel(name)
}

// Strand returns the currently executing strand. Detector tests use it
// to name dag positions; workloads normally don't need it.
func (t *Task) Strand() *Strand { return t.cur }

// FutureTask returns the future task that owns the current strand.
func (t *Task) FutureTask() *FutureTask { return t.fut }

// ensureBlock returns the current sync region, opening one (and
// allocating its join placeholder strand) at the first spawn/create of
// the region. The second return value is the placeholder when it was
// freshly allocated, else nil — exactly what the Tracer expects.
func (t *Task) ensureBlock() (*syncBlock, *Strand) {
	if b := t.frame.block; b != nil {
		return b, nil
	}
	b := &syncBlock{placeholder: t.eng.newStrand(t.fut)}
	t.frame.block = b
	return b, b.placeholder
}

// Spawn forks fn as a child function instance that may run in parallel
// with the continuation of the caller. The child is joined by the next
// Sync (or the implicit sync at the end of the calling function
// instance).
func (t *Task) Spawn(fn func(*Task)) {
	e := t.eng
	e.cSpawns.Add(1)
	u := t.cur
	// u ends at the spawn: flush deferred accesses before the child (a
	// dag successor) becomes runnable and before OnSpawn grows the dag.
	e.closeStrand(u)
	b, placeholder := t.ensureBlock()
	child := e.newStrand(t.fut)
	cont := e.newStrand(t.fut)
	cont.setLabel(t.label)
	e.emitSpawn(t.laneID(), u, child, cont, placeholder)
	j := &job{task: &Task{
		eng:         e,
		fut:         t.fut,
		frame:       &frame{},
		cur:         child,
		body:        fn,
		parentBlock: b,
		horizon:     t.horizon,
	}}
	b.mu.Lock()
	b.spawned = true
	b.outstanding++
	b.children = append(b.children, j)
	b.mu.Unlock()
	e.pending.Add(1)
	t.cur = cont
	if e.opts.Serial {
		if j.take() {
			e.runInline(j, nil)
		}
		return
	}
	t.worker.push(j)
}

// Sync waits until all children spawned since the previous Sync have
// returned. Futures started with Create are not affected (their
// completion is awaited by Get). A Sync with no preceding spawns in the
// region is a no-op.
func (t *Task) Sync() {
	b := t.frame.block
	if b == nil {
		return
	}
	b.mu.Lock()
	spawned := b.spawned
	b.mu.Unlock()
	if !spawned {
		// Only creates so far: the real dag has nothing to join, and
		// the region stays open so the placeholder keeps standing in
		// for the pseudo-SP-dag join of those futures.
		return
	}
	t.closeRegion(b)
}

// closeRegion drains and joins the sync region and steps the task onto
// its join strand.
func (t *Task) closeRegion(b *syncBlock) {
	e := t.eng
	// The pre-sync strand ends here: flush before draining children
	// inline (they are logically parallel to it and must check against
	// its records) and before OnSync activates the join strand.
	e.closeStrand(t.cur)
	e.drainAndWait(b, t.worker)
	k := t.cur
	s := b.placeholder
	s.setLabel(t.label)
	e.cSyncs.Add(1)
	e.emitSync(t.laneID(), k, s, b.childSinks)
	t.frame.block = nil
	t.cur = s
	if e.check {
		b.mu.Lock()
		if b.joinEpoch > t.horizon {
			t.horizon = b.joinEpoch
		}
		b.mu.Unlock()
	}
}

// drainAndWait first runs not-yet-started spawned children of the region
// inline on the current worker (the child-stealing discipline), then
// blocks until children stolen by other workers have returned.
func (e *engine) drainAndWait(b *syncBlock, w *worker) {
	for {
		b.mu.Lock()
		var j *job
		if n := len(b.children); n > 0 {
			j = b.children[n-1]
			b.children = b.children[:n-1]
		}
		b.mu.Unlock()
		if j == nil {
			break
		}
		if j.take() {
			e.runInline(j, w)
		}
	}
	b.mu.Lock()
	for b.outstanding > 0 {
		if b.waitCh == nil {
			b.waitCh = make(chan struct{})
		}
		ch := b.waitCh
		b.mu.Unlock()
		select {
		case <-ch:
		case <-e.abortCh:
			panic(errAbortUnwind{})
		}
		b.mu.Lock()
	}
	b.mu.Unlock()
}

// Create starts fn as a new future task that may run in parallel with
// the continuation of the caller and returns its handle. The handle must
// be touched by Get at most once (single-touch), and only at program
// points sequentially after the Create — the structured-future
// restrictions (paper §2). Create's value is retrieved by Get.
func (t *Task) Create(fn func(*Task) any) *Future {
	e := t.eng
	u := t.cur
	// u ends at the create: flush before the future body can run.
	e.closeStrand(u)
	_, placeholder := t.ensureBlock()
	ft := e.newFuture(t.fut)
	childHorizon := t.horizon
	if e.check {
		ft.createPC = callerPC(1)
		if id := int64(ft.ID); id > t.horizon {
			t.horizon = id
		}
	}
	first := e.newStrand(ft)
	cont := e.newStrand(t.fut)
	cont.setLabel(t.label)
	e.emitCreate(t.laneID(), u, first, cont, placeholder, ft)
	j := &job{task: &Task{
		eng:          e,
		fut:          ft,
		frame:        &frame{},
		cur:          first,
		bodyV:        fn,
		isFutureBody: true,
		horizon:      childHorizon,
	}}
	ft.job = j
	e.pending.Add(1)
	t.cur = cont
	if e.opts.Serial {
		if j.take() {
			e.runInline(j, nil)
		}
	} else {
		t.worker.push(j)
	}
	return &Future{ft: ft}
}

// Get waits for the future to complete and returns its value. If the
// future task has not started yet, the calling worker claims and runs it
// inline, so Get never deadlocks. Touching a handle twice panics: it
// violates the single-touch restriction of structured futures. With
// Options.CheckStructure the panic additionally reports the Create site
// and the first Get site, and Get also verifies the get-reachability
// restriction (paper §2) before blocking.
func (t *Task) Get(f *Future) any {
	e := t.eng
	e.cGets.Add(1)
	// The pre-get strand ends here: flush before possibly running the
	// future body inline and before OnGet activates the get strand.
	e.closeStrand(t.cur)
	ft := f.ft
	if !ft.gotten.CompareAndSwap(false, true) {
		panic(ft.doubleTouchMsg(callerPC(1)))
	}
	if e.check {
		t.checkGetStructure(ft, callerPC(1))
	}
	select {
	case <-ft.done:
	default:
		if ft.job.take() {
			e.runInline(ft.job, t.worker)
		} else {
			select {
			case <-ft.done:
			case <-e.abortCh:
				panic(errAbortUnwind{})
			}
		}
	}
	if e.check && ft.putEpoch > t.horizon {
		// The put publishes every handle existing when the body
		// finished: they may have flowed here through the got value or
		// memory the body wrote before completing.
		t.horizon = ft.putEpoch
	}
	u := t.cur
	g := e.newStrand(t.fut)
	g.setLabel(t.label)
	e.emitGet(t.laneID(), u, g, ft)
	t.cur = g
	return ft.value
}

// implicitSync ends a function instance: it joins the open sync region
// (if any) and returns the instance's sink strand.
func (t *Task) implicitSync() *Strand {
	b := t.frame.block
	if b == nil {
		return t.cur
	}
	t.closeRegion(b)
	return t.cur
}

// Read records an instrumented read of the shadow address addr by the
// current strand.
func (t *Task) Read(addr uint64) {
	e := t.eng
	if e.opts.CountAccesses {
		e.cReads.Add(1)
	}
	if e.checker != nil {
		e.checker.Read(t.cur, addr)
	}
}

// Write records an instrumented write of the shadow address addr by the
// current strand.
func (t *Task) Write(addr uint64) {
	e := t.eng
	if e.opts.CountAccesses {
		e.cWrites.Add(1)
	}
	if e.checker != nil {
		e.checker.Write(t.cur, addr)
	}
}

package sched_test

import (
	"testing"

	"sforder/internal/sched"
)

func TestLabelTagsCurrentAndLaterStrands(t *testing.T) {
	var first, cont, afterSync, inChild *sched.Strand
	_, err := sched.Run(sched.Options{Serial: true}, func(t *sched.Task) {
		t.Label("setup")
		first = t.Strand()
		t.Spawn(func(c *sched.Task) { inChild = c.Strand() })
		cont = t.Strand()
		t.Sync()
		afterSync = t.Strand()
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Label() != "setup" {
		t.Errorf("current strand label = %q", first.Label())
	}
	if cont.Label() != "setup" || afterSync.Label() != "setup" {
		t.Errorf("continuation/sync labels = %q/%q, want inherited",
			cont.Label(), afterSync.Label())
	}
	if inChild.Label() != "" {
		t.Errorf("child starts unlabeled, got %q", inChild.Label())
	}
}

func TestRelabel(t *testing.T) {
	var ended, current, b *sched.Strand
	_, err := sched.Run(sched.Options{Serial: true}, func(t *sched.Task) {
		t.Label("phase1")
		ended = t.Strand() // ends at the Create below
		h := t.Create(func(*sched.Task) any { return nil })
		current = t.Strand()
		t.Label("phase2") // retags the current strand and later ones
		t.Get(h)
		b = t.Strand()
	})
	if err != nil {
		t.Fatal(err)
	}
	if ended.Label() != "phase1" {
		t.Errorf("ended strand = %q, must keep its label", ended.Label())
	}
	if current.Label() != "phase2" {
		t.Errorf("current strand = %q, Label retags the current strand", current.Label())
	}
	if b.Label() != "phase2" {
		t.Errorf("b = %q (get strand should carry the new label)", b.Label())
	}
}

func TestEmptyLabelIsNoop(t *testing.T) {
	_, err := sched.Run(sched.Options{Serial: true}, func(t *sched.Task) {
		t.Label("x")
		t.Label("")
		if t.Strand().Label() != "x" {
			panic("empty Label must not clear an existing label")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

package sched

import "sforder/internal/obsv"

// traceTracer adapts the engine's dag-construction events to the Chrome
// trace stream (Options.Trace). Every strand gets its own timeline row
// (tid = strand ID, pid obsv.TracePidStrands): a B event when the dag
// event introducing the strand fires and an E event when a later event
// consumes it, so each row's slice is the strand's logical lifetime.
// Parallel-control edges show up as thread-scoped instants on the row of
// the strand they introduce. Steal instants (pid obsv.TracePidSched) are
// emitted by the workers directly, not through the Tracer interface —
// the scheduler, not the dag, knows about steals.
//
// The engine's per-strand ordering guarantee (the event introducing a
// strand happens-before any event naming it) is exactly what keeps each
// row's B before its E. Aborted runs truncate the stream mid-slice;
// Chrome and Perfetto render unclosed slices to the trace end, which is
// the honest picture of a crashed run.
type traceTracer struct {
	tw *obsv.TraceWriter
}

func (t *traceTracer) begin(s *Strand) {
	t.tw.Begin(obsv.TracePidStrands, s.ID, s.String(),
		map[string]any{"future": s.Fut.ID})
}

func (t *traceTracer) end(s *Strand) {
	t.tw.End(obsv.TracePidStrands, s.ID)
}

// OnRoot implements Tracer.
func (t *traceTracer) OnRoot(root *Strand) {
	t.begin(root)
}

// OnSpawn implements Tracer. The placeholder strand is not begun here:
// it starts executing at the region's sync, where OnSync begins it.
func (t *traceTracer) OnSpawn(u, child, cont, placeholder *Strand) {
	t.end(u)
	t.begin(child)
	t.tw.Instant(obsv.TracePidStrands, child.ID, "spawn",
		map[string]any{"from": u.ID})
	t.begin(cont)
}

// OnCreate implements Tracer.
func (t *traceTracer) OnCreate(u, first, cont, placeholder *Strand, f *FutureTask) {
	t.end(u)
	t.begin(first)
	t.tw.Instant(obsv.TracePidStrands, first.ID, "create",
		map[string]any{"from": u.ID, "future": f.ID})
	t.begin(cont)
}

// OnSync implements Tracer.
func (t *traceTracer) OnSync(k, s *Strand, childSinks []*Strand) {
	t.end(k)
	t.begin(s)
	sinks := make([]uint64, len(childSinks))
	for i, c := range childSinks {
		sinks[i] = c.ID
	}
	t.tw.Instant(obsv.TracePidStrands, s.ID, "sync",
		map[string]any{"from": k.ID, "joins": sinks})
}

// OnReturn implements Tracer: the spawned child's sink strand ends here.
func (t *traceTracer) OnReturn(sink *Strand) {
	t.end(sink)
}

// OnPut implements Tracer: the future task's put strand ends here.
func (t *traceTracer) OnPut(sink *Strand, f *FutureTask) {
	t.tw.Instant(obsv.TracePidStrands, sink.ID, "put",
		map[string]any{"future": f.ID})
	t.end(sink)
}

// OnGet implements Tracer.
func (t *traceTracer) OnGet(u, g *Strand, f *FutureTask) {
	t.end(u)
	t.begin(g)
	t.tw.Instant(obsv.TracePidStrands, g.ID, "get",
		map[string]any{"from": u.ID, "future": f.ID})
}

var _ Tracer = (*traceTracer)(nil)

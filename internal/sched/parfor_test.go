package sched_test

import (
	"sync/atomic"
	"testing"

	"sforder/internal/sched"
)

func TestParallelForCoversRange(t *testing.T) {
	for _, serial := range []bool{true, false} {
		const n = 1000
		var hits [n]atomic.Int32
		_, err := sched.Run(sched.Options{Serial: serial, Workers: 4}, func(t *sched.Task) {
			t.ParallelFor(0, n, 0, func(_ *sched.Task, i int) {
				hits[i].Add(1)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("serial=%v: iteration %d ran %d times", serial, i, got)
			}
		}
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	var count atomic.Int32
	_, err := sched.Run(sched.Options{Serial: true}, func(t *sched.Task) {
		t.ParallelFor(5, 5, 0, func(*sched.Task, int) { count.Add(1) })
		t.ParallelFor(7, 5, 0, func(*sched.Task, int) { count.Add(1) })
		t.ParallelFor(3, 4, 0, func(*sched.Task, int) { count.Add(1) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 1 {
		t.Fatalf("count = %d, want 1", count.Load())
	}
}

// TestParallelForDoesNotJoinCallersSpawns: the loop must not act as a
// sync for unrelated pending children.
func TestParallelForDoesNotJoinCallersSpawns(t *testing.T) {
	var slowDone atomic.Bool
	block := make(chan struct{})
	_, err := sched.Run(sched.Options{Workers: 4}, func(t *sched.Task) {
		t.Spawn(func(*sched.Task) {
			<-block
			slowDone.Store(true)
		})
		t.ParallelFor(0, 64, 4, func(*sched.Task, int) {})
		if slowDone.Load() {
			panic("ParallelFor joined an unrelated spawned child")
		}
		close(block)
		t.Sync()
		if !slowDone.Load() {
			panic("Sync failed to join the child")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParallelForGrainBoundsLeaves: an explicit grain caps per-leaf work.
func TestParallelForGrainBoundsLeaves(t *testing.T) {
	counts, err := sched.Run(sched.Options{Serial: true}, func(t *sched.Task) {
		t.ParallelFor(0, 256, 16, func(*sched.Task, int) {})
	})
	if err != nil {
		t.Fatal(err)
	}
	// 256/16 = 16 leaves → 15 splits (spawns) + 1 create.
	if counts.Spawns != 15 {
		t.Errorf("spawns = %d, want 15", counts.Spawns)
	}
	if counts.Futures != 2 {
		t.Errorf("futures = %d, want 2 (root + loop future)", counts.Futures)
	}
}

// TestParallelForNested: nested parallel loops work and produce a
// deterministic iteration count.
func TestParallelForNested(t *testing.T) {
	var total atomic.Int64
	_, err := sched.Run(sched.Options{Workers: 3}, func(t *sched.Task) {
		t.ParallelFor(0, 20, 2, func(ti *sched.Task, i int) {
			ti.ParallelFor(0, 30, 4, func(_ *sched.Task, j int) {
				total.Add(int64(i*30 + j))
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < 20; i++ {
		for j := 0; j < 30; j++ {
			want += int64(i*30 + j)
		}
	}
	if total.Load() != want {
		t.Errorf("total = %d, want %d", total.Load(), want)
	}
}

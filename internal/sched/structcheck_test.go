package sched

import (
	"strings"
	"testing"
)

// mustPanicContaining runs fn and asserts it panics with a message
// containing every want substring.
func mustPanicContaining(t *testing.T, fn func(), want ...string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", r)
		}
		for _, w := range want {
			if !strings.Contains(msg, w) {
				t.Errorf("panic message missing %q:\n%s", w, msg)
			}
		}
	}()
	fn()
}

// TestDoubleGetCheckedSites: with CheckStructure the single-touch panic
// reports the create, first-get, and second-get sites.
func TestDoubleGetCheckedSites(t *testing.T) {
	mustPanicContaining(t, func() {
		Run(Options{Serial: true, CheckStructure: true}, func(tk *Task) {
			h := tk.Create(func(*Task) any { return 1 })
			tk.Get(h)
			tk.Get(h)
		})
	},
		"single-touch", "§2",
		"created at", "first get at", "second get at",
		"structcheck_test.go")
}

// TestDoubleGetUncheckedHint: without CheckStructure the panic still
// names the invariant and the second touch site, plus a hint about the
// missing sites.
func TestDoubleGetUncheckedHint(t *testing.T) {
	mustPanicContaining(t, func() {
		Run(Options{Serial: true}, func(tk *Task) {
			h := tk.Create(func(*Task) any { return 1 })
			tk.Get(h)
			tk.Get(h)
		})
	},
		"single-touch", "second get at", "structcheck_test.go", "CheckStructure")
}

// TestCheckedSelfGet: a future body getting its own handle (smuggled in
// through a channel) is a get-reachability violation; unchecked it would
// deadlock, checked mode panics with both sites.
func TestCheckedSelfGet(t *testing.T) {
	ch := make(chan *Future, 1)
	_, err := Run(Options{Workers: 1, CheckStructure: true}, func(tk *Task) {
		h := tk.Create(func(c *Task) any {
			return c.Get(<-ch)
		})
		ch <- h
	})
	if err == nil {
		t.Fatal("expected structure violation error, got nil")
	}
	for _, w := range []string{"get-reachability", "§2", "inside the created task", "created at", "structcheck_test.go"} {
		if !strings.Contains(err.Error(), w) {
			t.Errorf("error missing %q: %v", w, err)
		}
	}
}

// TestCheckedBackwardHandle: a handle passed through a channel to a
// future task created before the handle existed violates
// get-reachability (the create's continuation cannot reach that get).
func TestCheckedBackwardHandle(t *testing.T) {
	ch := make(chan *Future, 1)
	_, err := Run(Options{Workers: 1, CheckStructure: true}, func(tk *Task) {
		tk.Create(func(c *Task) any { // consumer created first
			return c.Get(<-ch)
		})
		producer := tk.Create(func(*Task) any { return 7 })
		ch <- producer
	})
	if err == nil {
		t.Fatal("expected structure violation error, got nil")
	}
	for _, w := range []string{"get-reachability", "horizon", "structcheck_test.go"} {
		if !strings.Contains(err.Error(), w) {
			t.Errorf("error missing %q: %v", w, err)
		}
	}
}

// TestCheckedValidPrograms: structured programs run clean under
// CheckStructure in serial and parallel modes.
func TestCheckedValidPrograms(t *testing.T) {
	programs := map[string]func(*Task){
		"chained-futures": func(tk *Task) {
			// Sibling gets a captured earlier handle — the pipeline idiom.
			a := tk.Create(func(*Task) any { return 1 })
			b := tk.Create(func(c *Task) any { return c.Get(a).(int) + 1 })
			if v := tk.Get(b).(int); v != 2 {
				panic("bad chain value")
			}
		},
		"returned-handle": func(tk *Task) {
			// A future returns a handle it created; the getter may get it:
			// the put publishes the inner handle.
			outer := tk.Create(func(c *Task) any {
				return c.Create(func(*Task) any { return 42 })
			})
			inner := tk.Get(outer).(*Future)
			if v := tk.Get(inner).(int); v != 42 {
				panic("bad inner value")
			}
		},
		"spawned-child-create": func(tk *Task) {
			// A spawned child creates the future; the sync join publishes
			// the handle to the parent.
			var h *Future
			tk.Spawn(func(c *Task) {
				h = c.Create(func(*Task) any { return 9 })
			})
			tk.Sync()
			if v := tk.Get(h).(int); v != 9 {
				panic("bad child-created value")
			}
		},
		"parallel-for": func(tk *Task) {
			tk.ParallelFor(0, 64, 8, func(*Task, int) {})
		},
	}
	for name, prog := range programs {
		for _, opts := range []Options{
			{Serial: true, CheckStructure: true},
			{Workers: 2, CheckStructure: true},
		} {
			if _, err := Run(opts, prog); err != nil {
				t.Errorf("%s (serial=%v): unexpected error: %v", name, opts.Serial, err)
			}
		}
	}
}

package sched

// Test-only exports for whitebox tests of the scheduler internals.

func newTestWorkers(lockDeque bool) (*worker, *worker) {
	e := &engine{abortCh: make(chan struct{}), lockDeque: lockDeque}
	w1 := &worker{eng: e, id: 0, lastVictim: -1, parkSig: make(chan struct{}, 1)}
	w2 := &worker{eng: e, id: 1, lastVictim: -1, parkSig: make(chan struct{}, 1)}
	w1.cl.init()
	w2.cl.init()
	e.workers = []*worker{w1, w2}
	return w1, w2
}

// NewTestWorkerPair returns two workers of a throwaway engine using the
// default lock-free Chase–Lev deques, for exercising push/pop/steal
// mechanics directly.
func NewTestWorkerPair() (*worker, *worker) { return newTestWorkers(false) }

// NewTestWorkerPairLocked is NewTestWorkerPair with the mutex-deque
// ablation selected, so deque tests cover both representations.
func NewTestWorkerPairLocked() (*worker, *worker) { return newTestWorkers(true) }

// NewTestJob returns a claimable no-op job.
func NewTestJob() *job { return &job{} }

// PushJob exposes worker.push.
func (w *worker) PushJob(j *job) { w.push(j) }

// PopJob exposes worker.pop.
func (w *worker) PopJob() *job { return w.pop() }

// StealJobFrom exposes worker.stealFrom.
func (w *worker) StealJobFrom(v *worker) *job { return w.stealFrom(v) }

// Take exposes job.take.
func (j *job) Take() bool { return j.take() }

// DequeLen reports the current deque length.
func (w *worker) DequeLen() int {
	if w.eng.lockDeque {
		return int(w.slen.Load())
	}
	return int(w.cl.size())
}

// DequeBytes exposes worker.dequeBytes.
func (w *worker) DequeBytes() int64 { return w.dequeBytes() }

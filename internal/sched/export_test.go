package sched

// Test-only exports for whitebox tests of the scheduler internals.

// NewTestWorkerPair returns two workers of a throwaway engine, for
// exercising deque push/pop/steal mechanics directly.
func NewTestWorkerPair() (*worker, *worker) {
	e := &engine{abortCh: make(chan struct{})}
	w1 := &worker{eng: e, id: 0}
	w2 := &worker{eng: e, id: 1}
	e.workers = []*worker{w1, w2}
	return w1, w2
}

// NewTestJob returns a claimable no-op job.
func NewTestJob() *job { return &job{} }

// PushJob exposes worker.push.
func (w *worker) PushJob(j *job) { w.push(j) }

// PopJob exposes worker.pop.
func (w *worker) PopJob() *job { return w.pop() }

// StealJobFrom exposes worker.stealFrom.
func (w *worker) StealJobFrom(v *worker) *job { return w.stealFrom(v) }

// Take exposes job.take.
func (j *job) Take() bool { return j.take() }

// DequeLen reports the current deque length.
func (w *worker) DequeLen() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.deque)
}

package sched_test

import (
	"strings"
	"sync/atomic"
	"testing"

	"sforder/internal/dag"
	"sforder/internal/sched"
)

func runBoth(t *testing.T, name string, main func(*sched.Task)) (serial, par *dag.Graph) {
	t.Helper()
	rs := dag.NewRecorder()
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: rs}, main); err != nil {
		t.Fatalf("%s serial: %v", name, err)
	}
	rp := dag.NewRecorder()
	if _, err := sched.Run(sched.Options{Workers: 4, Tracer: rp}, main); err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}
	for mode, g := range map[string]*dag.Graph{"serial": rs.G, "parallel": rp.G} {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s %s: invalid dag: %v", name, mode, err)
		}
	}
	return rs.G, rp.G
}

func TestTrivialProgram(t *testing.T) {
	s, p := runBoth(t, "trivial", func(*sched.Task) {})
	if s.NumNodes() != 1 || p.NumNodes() != 1 {
		t.Errorf("trivial program should have 1 node, got %d/%d", s.NumNodes(), p.NumNodes())
	}
	if s.NumFutures() != 1 {
		t.Errorf("trivial program should have only the root future")
	}
}

func TestSpawnSyncShape(t *testing.T) {
	main := func(t *sched.Task) {
		t.Spawn(func(*sched.Task) {})
		t.Spawn(func(*sched.Task) {})
		t.Sync()
	}
	s, p := runBoth(t, "spawn-sync", main)
	// Nodes: root u, c1, k1, sync placeholder, c2, k2 = 6.
	if s.NumNodes() != 6 {
		t.Errorf("expected 6 nodes, got %d", s.NumNodes())
	}
	ws, ss := s.WorkSpan()
	wp, sp := p.WorkSpan()
	if ws != wp || ss != sp {
		t.Errorf("work/span differ across schedules: serial %d/%d parallel %d/%d", ws, ss, wp, sp)
	}
	// Longest path: root -> k1 -> k2 -> sync = 4 strands.
	if ss != 4 {
		t.Errorf("span = %d, want 4", ss)
	}
}

func TestSyncWithoutSpawnIsNoop(t *testing.T) {
	s, _ := runBoth(t, "sync-noop", func(t *sched.Task) {
		t.Sync()
		t.Sync()
	})
	if s.NumNodes() != 1 {
		t.Errorf("sync without spawn must not create nodes, got %d", s.NumNodes())
	}
}

func TestNestedSpawns(t *testing.T) {
	var depth func(*sched.Task, int)
	depth = func(t *sched.Task, d int) {
		if d == 0 {
			return
		}
		t.Spawn(func(c *sched.Task) { depth(c, d-1) })
		t.Spawn(func(c *sched.Task) { depth(c, d-1) })
		t.Sync()
	}
	s, p := runBoth(t, "nested", func(t *sched.Task) { depth(t, 5) })
	ws, ss := s.WorkSpan()
	wp, sp := p.WorkSpan()
	if ws != wp || ss != sp {
		t.Errorf("work/span differ: %d/%d vs %d/%d", ws, ss, wp, sp)
	}
}

func TestFutureValueRoundTrip(t *testing.T) {
	for _, serial := range []bool{true, false} {
		var got int
		_, err := sched.Run(sched.Options{Serial: serial, Workers: 2}, func(t *sched.Task) {
			h := t.Create(func(*sched.Task) any { return 41 })
			got = t.Get(h).(int) + 1
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Errorf("serial=%v: got %d, want 42", serial, got)
		}
	}
}

func TestFutureDagShape(t *testing.T) {
	main := func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return nil })
		t.Get(h)
	}
	s, _ := runBoth(t, "future", main)
	futs := s.Futures()
	if len(futs) != 2 {
		t.Fatalf("expected 2 futures, got %d", len(futs))
	}
	f := futs[1]
	if f.First == nil || f.Last == nil || f.Got == nil {
		t.Fatal("future metadata incomplete")
	}
	if !s.Reachable(f.Last, f.Got) {
		t.Error("put must reach the get node")
	}
}

func TestUngottenFutureStillRuns(t *testing.T) {
	for _, serial := range []bool{true, false} {
		var ran atomic.Bool
		_, err := sched.Run(sched.Options{Serial: serial, Workers: 2}, func(t *sched.Task) {
			t.Create(func(*sched.Task) any { ran.Store(true); return nil })
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ran.Load() {
			t.Errorf("serial=%v: ungotten future never executed", serial)
		}
	}
}

func TestDoubleGetPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on double get")
		}
		if !strings.Contains(r.(string), "single-touch") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	sched.Run(sched.Options{Serial: true}, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return nil })
		t.Get(h)
		t.Get(h)
	})
}

func TestParallelPanicBecomesError(t *testing.T) {
	_, err := sched.Run(sched.Options{Workers: 2}, func(t *sched.Task) {
		t.Spawn(func(*sched.Task) { panic("boom") })
		t.Sync()
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected wrapped panic, got %v", err)
	}
}

// TestHandleAcrossTasks passes a future handle into a spawned child which
// gets it — legal under structured futures when the get is sequentially
// after the create.
func TestHandleAcrossTasks(t *testing.T) {
	main := func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return 7 })
		t.Spawn(func(c *sched.Task) { _ = c.Get(h) })
		t.Sync()
	}
	runBoth(t, "handle-across", main)
}

// TestDeepGetChain builds a chain of futures each getting the previous,
// exercising the inline-claim path in Get.
func TestDeepGetChain(t *testing.T) {
	for _, serial := range []bool{true, false} {
		var total int
		_, err := sched.Run(sched.Options{Serial: serial, Workers: 3}, func(t *sched.Task) {
			prev := t.Create(func(*sched.Task) any { return 1 })
			for i := 0; i < 50; i++ {
				p := prev
				prev = t.Create(func(ft *sched.Task) any { return ft.Get(p).(int) + 1 })
			}
			total = t.Get(prev).(int)
		})
		if err != nil {
			t.Fatal(err)
		}
		if total != 51 {
			t.Errorf("serial=%v: total = %d, want 51", serial, total)
		}
	}
}

func TestCounts(t *testing.T) {
	counts, err := sched.Run(sched.Options{Serial: true, CountAccesses: true}, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) { c.Write(1) })
		t.Sync()
		h := t.Create(func(c *sched.Task) any { c.Read(1); c.Read(2); return nil })
		t.Get(h)
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts.Spawns != 1 || counts.Gets != 1 || counts.Futures != 2 {
		t.Errorf("counts = %+v", counts)
	}
	if counts.Reads != 2 || counts.Writes != 1 {
		t.Errorf("access counts = %+v", counts)
	}
	// Without CountAccesses the read/write counters stay zero.
	counts, _ = sched.Run(sched.Options{Serial: true}, func(t *sched.Task) { t.Read(1) })
	if counts.Reads != 0 {
		t.Error("CountAccesses=false must not count reads")
	}
}

// TestSerialOrderMatchesRecording checks that in serial mode the
// recorder's creation order is consistent with the dag's left-to-right
// depth-first SerialOrder for straightforward programs.
func TestSerialOrderMatchesRecording(t *testing.T) {
	r := dag.NewRecorder()
	_, err := sched.Run(sched.Options{Serial: true, Tracer: r}, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) {
			c.Spawn(func(*sched.Task) {})
			c.Sync()
		})
		t.Spawn(func(*sched.Task) {})
		t.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	order := r.G.SerialOrder()
	if len(order) != r.G.NumNodes() {
		t.Fatalf("SerialOrder visited %d of %d nodes", len(order), r.G.NumNodes())
	}
	// The serial order must be a topological order.
	pos := map[*dag.Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range r.G.Nodes() {
		for _, e := range n.Out {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("SerialOrder violates edge %v->%v", e.From, e.To)
			}
		}
	}
}

// TestManyWorkersStress runs a fib-like spawn tree with more workers than
// cores and checks determinism of the result.
func TestManyWorkersStress(t *testing.T) {
	var fib func(t *sched.Task, n int) int
	fib = func(t *sched.Task, n int) int {
		if n < 2 {
			return n
		}
		var a int
		t.Spawn(func(c *sched.Task) { a = fib(c, n-1) })
		b := fib(t, n-2)
		t.Sync()
		return a + b
	}
	var got int
	_, err := sched.Run(sched.Options{Workers: 8}, func(t *sched.Task) { got = fib(t, 16) })
	if err != nil {
		t.Fatal(err)
	}
	if got != 987 {
		t.Errorf("fib(16) = %d, want 987", got)
	}
}

// TestWorkSpanAcrossSchedules: dag shape metrics are schedule independent
// for a future-heavy pipeline.
func TestWorkSpanAcrossSchedules(t *testing.T) {
	main := func(t *sched.Task) {
		var hs []*sched.Future
		for i := 0; i < 16; i++ {
			hs = append(hs, t.Create(func(*sched.Task) any { return nil }))
		}
		for _, h := range hs {
			t.Get(h)
		}
	}
	s, p := runBoth(t, "pipeline", main)
	ws, ss := s.WorkSpan()
	wp, sp := p.WorkSpan()
	if ws != wp || ss != sp {
		t.Errorf("work/span differ: serial %d/%d parallel %d/%d", ws, ss, wp, sp)
	}
	if s.NumFutures() != 17 {
		t.Errorf("futures = %d, want 17", s.NumFutures())
	}
}

package sched

// ParallelFor runs body(i) for every i in [lo, hi) with fork-join
// parallelism, recursively splitting the range into a balanced spawn
// tree with grain iterations per leaf (grain ≤ 0 selects a grain that
// yields roughly 8 leaves per worker). The call returns when every
// iteration has finished — it is a self-contained sync region and does
// not interact with the caller's pending spawns or futures.
//
// Iterations may run in any order and concurrently; racy bodies are
// exactly what the detectors attached to the run will report.
func (t *Task) ParallelFor(lo, hi, grain int, body func(t *Task, i int)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		workers := 1
		if !t.eng.opts.Serial {
			workers = len(t.eng.workers)
		}
		grain = (hi - lo) / (8 * workers)
		if grain < 1 {
			grain = 1
		}
	}
	// Run the range inside a future and get it immediately: the get
	// joins exactly this loop, leaving the caller's own pending spawns
	// and futures untouched (a Sync here would join those too).
	h := t.Create(func(c *Task) any {
		c.parforRange(lo, hi, grain, body)
		return nil
	})
	t.Get(h)
}

func (t *Task) parforRange(lo, hi, grain int, body func(t *Task, i int)) {
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		left, leftEnd := lo, mid
		t.Spawn(func(c *Task) { c.parforRange(left, leftEnd, grain, body) })
		lo = mid
	}
	for i := lo; i < hi; i++ {
		body(t, i)
	}
	t.Sync()
}

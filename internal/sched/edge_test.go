package sched_test

import (
	"strings"
	"sync/atomic"
	"testing"

	"sforder/internal/sched"
)

// TestSingleWorkerParallelEngine: Workers=1 must execute everything
// (inline draining and get-claiming keep it deadlock-free).
func TestSingleWorkerParallelEngine(t *testing.T) {
	var sum atomic.Int64
	_, err := sched.Run(sched.Options{Workers: 1}, func(t *sched.Task) {
		for i := 0; i < 10; i++ {
			i := i
			t.Spawn(func(*sched.Task) { sum.Add(int64(i)) })
		}
		h := t.Create(func(c *sched.Task) any {
			c.Spawn(func(*sched.Task) { sum.Add(100) })
			c.Sync()
			return nil
		})
		t.Sync()
		t.Get(h)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45+100 {
		t.Errorf("sum = %d, want 145", sum.Load())
	}
}

// TestPanicInsideFutureAbortsGetters: a panic in a future body must not
// deadlock a parallel getter; the run surfaces the panic as an error.
func TestPanicInsideFutureAbortsGetters(t *testing.T) {
	_, err := sched.Run(sched.Options{Workers: 2}, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { panic("future boom") })
		t.Get(h)
	})
	if err == nil || !strings.Contains(err.Error(), "future boom") {
		t.Fatalf("expected future panic to surface, got %v", err)
	}
}

// TestPanicWhileSiblingWaitsAtSync: one spawned child panics while the
// parent waits at a sync for a stolen sibling.
func TestPanicWhileSiblingWaitsAtSync(t *testing.T) {
	_, err := sched.Run(sched.Options{Workers: 4}, func(t *sched.Task) {
		for i := 0; i < 8; i++ {
			i := i
			t.Spawn(func(*sched.Task) {
				if i == 3 {
					panic("child boom")
				}
			})
		}
		t.Sync()
	})
	if err == nil || !strings.Contains(err.Error(), "child boom") {
		t.Fatalf("expected child panic to surface, got %v", err)
	}
}

// TestDeepNesting exercises deep spawn recursion (stack growth, block
// lifecycle) without blowing up.
func TestDeepNesting(t *testing.T) {
	var depth func(*sched.Task, int) int
	depth = func(t *sched.Task, d int) int {
		if d == 0 {
			return 0
		}
		var sub int
		t.Spawn(func(c *sched.Task) { sub = depth(c, d-1) })
		t.Sync()
		return sub + 1
	}
	var got int
	_, err := sched.Run(sched.Options{Workers: 2}, func(t *sched.Task) { got = depth(t, 2000) })
	if err != nil {
		t.Fatal(err)
	}
	if got != 2000 {
		t.Errorf("depth = %d", got)
	}
}

// TestManySequentialRegions: repeated spawn/sync cycles in one instance
// produce one sync strand per region and keep counts exact.
func TestManySequentialRegions(t *testing.T) {
	const regions = 100
	counts, err := sched.Run(sched.Options{Serial: true}, func(t *sched.Task) {
		for i := 0; i < regions; i++ {
			t.Spawn(func(*sched.Task) {})
			t.Sync()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts.Syncs != regions {
		t.Errorf("Syncs = %d, want %d", counts.Syncs, regions)
	}
	if counts.Spawns != regions {
		t.Errorf("Spawns = %d, want %d", counts.Spawns, regions)
	}
	// Strands: root + per region (child, cont, sync) = 1 + 3*regions.
	if want := uint64(1 + 3*regions); counts.Strands != want {
		t.Errorf("Strands = %d, want %d", counts.Strands, want)
	}
}

// TestImplicitSyncAtFunctionEnd: spawned children are joined when the
// instance returns without an explicit sync.
func TestImplicitSyncAtFunctionEnd(t *testing.T) {
	var done atomic.Bool
	_, err := sched.Run(sched.Options{Workers: 2}, func(t *sched.Task) {
		t.Spawn(func(c *sched.Task) {
			c.Spawn(func(*sched.Task) { done.Store(true) })
			// no explicit Sync: the implicit one must join it
		})
		t.Sync()
		if !done.Load() {
			panic("grandchild not joined by implicit sync")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGetAfterSyncOfCreatingRegion: a future created before a sync is
// still gettable after it (sync does not consume futures).
func TestGetAfterSyncOfCreatingRegion(t *testing.T) {
	_, err := sched.Run(sched.Options{Serial: true}, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return 5 })
		t.Spawn(func(*sched.Task) {})
		t.Sync()
		if got := t.Get(h).(int); got != 5 {
			panic("wrong value")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestValuesThroughFutures passes composite values through futures.
func TestValuesThroughFutures(t *testing.T) {
	type pair struct{ a, b int }
	_, err := sched.Run(sched.Options{Workers: 2}, func(t *sched.Task) {
		h := t.Create(func(*sched.Task) any { return pair{1, 2} })
		hs := t.Create(func(*sched.Task) any { return "str" })
		hn := t.Create(func(*sched.Task) any { return nil })
		if p := t.Get(h).(pair); p.a != 1 || p.b != 2 {
			panic("pair lost")
		}
		if s := t.Get(hs).(string); s != "str" {
			panic("string lost")
		}
		if v := t.Get(hn); v != nil {
			panic("nil lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

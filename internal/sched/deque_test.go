package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// dequeVariants runs a deque scenario over both representations: the
// default lock-free Chase–Lev deque and the -lockdeque mutex ablation.
func dequeVariants(t *testing.T, f func(t *testing.T, newPair func() (*worker, *worker))) {
	t.Run("chaselev", func(t *testing.T) { f(t, NewTestWorkerPair) })
	t.Run("lockdeque", func(t *testing.T) { f(t, NewTestWorkerPairLocked) })
}

func TestDequeLIFOPop(t *testing.T) {
	dequeVariants(t, func(t *testing.T, newPair func() (*worker, *worker)) {
		w, _ := newPair()
		j1, j2, j3 := NewTestJob(), NewTestJob(), NewTestJob()
		w.PushJob(j1)
		w.PushJob(j2)
		w.PushJob(j3)
		if got := w.PopJob(); got != j3 {
			t.Error("pop must take the newest job")
		}
		if got := w.PopJob(); got != j2 {
			t.Error("pop order wrong")
		}
		if w.DequeLen() != 1 {
			t.Errorf("DequeLen = %d", w.DequeLen())
		}
	})
}

func TestDequeFIFOSteal(t *testing.T) {
	dequeVariants(t, func(t *testing.T, newPair func() (*worker, *worker)) {
		victim, thief := newPair()
		j1, j2 := NewTestJob(), NewTestJob()
		victim.PushJob(j1)
		victim.PushJob(j2)
		if got := thief.StealJobFrom(victim); got != j1 {
			t.Error("steal must take the oldest job")
		}
		if got := victim.PopJob(); got != j2 {
			t.Error("victim keeps the newest job")
		}
	})
}

func TestPopSkipsTakenJobs(t *testing.T) {
	dequeVariants(t, func(t *testing.T, newPair func() (*worker, *worker)) {
		w, _ := newPair()
		j1, j2 := NewTestJob(), NewTestJob()
		w.PushJob(j1)
		w.PushJob(j2)
		if !j2.Take() {
			t.Fatal("take failed")
		}
		if got := w.PopJob(); got != j1 {
			t.Error("pop must discard jobs claimed elsewhere")
		}
		if w.PopJob() != nil {
			t.Error("deque should be empty")
		}
	})
}

func TestStealSkipsTakenJobs(t *testing.T) {
	dequeVariants(t, func(t *testing.T, newPair func() (*worker, *worker)) {
		victim, thief := newPair()
		j1, j2 := NewTestJob(), NewTestJob()
		victim.PushJob(j1)
		victim.PushJob(j2)
		j1.Take()
		if got := thief.StealJobFrom(victim); got != j2 {
			t.Error("steal must discard claimed jobs")
		}
		if thief.StealJobFrom(victim) != nil {
			t.Error("victim should be drained")
		}
	})
}

func TestTakeIsExclusive(t *testing.T) {
	j := NewTestJob()
	if !j.Take() {
		t.Fatal("first take must succeed")
	}
	if j.Take() {
		t.Fatal("second take must fail")
	}
}

// TestDequeGrows pushes past the initial ring capacity and checks the
// Chase–Lev deque grows (rather than overwriting live slots) and keeps
// both LIFO pop order and all elements.
func TestDequeGrows(t *testing.T) {
	w, _ := NewTestWorkerPair()
	const n = dequeInitSlots * 4
	jobs := make([]*job, n)
	for i := range jobs {
		jobs[i] = NewTestJob()
		w.PushJob(jobs[i])
	}
	if got := w.DequeBytes(); got < dequeInitSlots*2*8 {
		t.Errorf("deque did not grow: %d bytes", got)
	}
	for i := n - 1; i >= 0; i-- {
		if got := w.PopJob(); got != jobs[i] {
			t.Fatalf("pop %d returned wrong job", i)
		}
	}
	if w.PopJob() != nil {
		t.Error("deque should be empty")
	}
}

// TestConcurrentStealers hammers one victim deque from several thieves
// and checks every job is obtained exactly once. A nil steal is not
// proof of emptiness under Chase–Lev (a lost CAS also returns nil), so
// thieves retry until the global count accounts for every job.
func TestConcurrentStealers(t *testing.T) {
	dequeVariants(t, func(t *testing.T, newPair func() (*worker, *worker)) {
		victim, _ := newPair()
		const n = 4096
		jobs := make([]*job, n)
		for i := range jobs {
			jobs[i] = NewTestJob()
			victim.PushJob(jobs[i])
		}
		var total atomic.Int64
		var mu sync.Mutex
		got := map[*job]int{}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				thief, _ := newPair()
				for total.Load() < n {
					j := thief.StealJobFrom(victim)
					if j == nil {
						continue
					}
					if j.Take() {
						total.Add(1)
						mu.Lock()
						got[j]++
						mu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		if len(got) != n {
			t.Fatalf("obtained %d of %d jobs", len(got), n)
		}
		for j, c := range got {
			if c != 1 {
				t.Fatalf("job %p obtained %d times", j, c)
			}
		}
	})
}

// TestPopStealRace runs the owner popping against thieves stealing from
// the same deque, with the owner also re-pushing in bursts, and checks
// exactly-once delivery of every job — the contended final-element CAS
// path in particular.
func TestPopStealRace(t *testing.T) {
	dequeVariants(t, func(t *testing.T, newPair func() (*worker, *worker)) {
		owner, _ := newPair()
		const n = 8192
		var total atomic.Int64
		var mu sync.Mutex
		got := map[*job]int{}
		obtain := func(j *job) {
			if j != nil && j.Take() {
				total.Add(1)
				mu.Lock()
				got[j]++
				mu.Unlock()
			}
		}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				thief, _ := newPair()
				for total.Load() < n {
					obtain(thief.StealJobFrom(owner))
				}
			}()
		}
		// Owner: push in small bursts, pop between them, so the deque
		// hovers near empty and the pop-vs-steal race on the final
		// element is exercised constantly.
		for i := 0; i < n; i += 4 {
			for k := 0; k < 4; k++ {
				owner.PushJob(NewTestJob())
			}
			obtain(owner.PopJob())
			obtain(owner.PopJob())
		}
		for total.Load() < n {
			obtain(owner.PopJob())
		}
		wg.Wait()
		if len(got) != n {
			t.Fatalf("obtained %d of %d jobs", len(got), n)
		}
		for j, c := range got {
			if c != 1 {
				t.Fatalf("job %p obtained %d times", j, c)
			}
		}
	})
}

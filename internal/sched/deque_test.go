package sched

import (
	"sync"
	"testing"
)

func TestDequeLIFOPop(t *testing.T) {
	w, _ := NewTestWorkerPair()
	j1, j2, j3 := NewTestJob(), NewTestJob(), NewTestJob()
	w.PushJob(j1)
	w.PushJob(j2)
	w.PushJob(j3)
	if got := w.PopJob(); got != j3 {
		t.Error("pop must take the newest job")
	}
	if got := w.PopJob(); got != j2 {
		t.Error("pop order wrong")
	}
	if w.DequeLen() != 1 {
		t.Errorf("DequeLen = %d", w.DequeLen())
	}
}

func TestDequeFIFOSteal(t *testing.T) {
	victim, thief := NewTestWorkerPair()
	j1, j2 := NewTestJob(), NewTestJob()
	victim.PushJob(j1)
	victim.PushJob(j2)
	if got := thief.StealJobFrom(victim); got != j1 {
		t.Error("steal must take the oldest job")
	}
	if got := victim.PopJob(); got != j2 {
		t.Error("victim keeps the newest job")
	}
}

func TestPopSkipsTakenJobs(t *testing.T) {
	w, _ := NewTestWorkerPair()
	j1, j2 := NewTestJob(), NewTestJob()
	w.PushJob(j1)
	w.PushJob(j2)
	if !j2.Take() {
		t.Fatal("take failed")
	}
	if got := w.PopJob(); got != j1 {
		t.Error("pop must discard jobs claimed elsewhere")
	}
	if w.PopJob() != nil {
		t.Error("deque should be empty")
	}
}

func TestStealSkipsTakenJobs(t *testing.T) {
	victim, thief := NewTestWorkerPair()
	j1, j2 := NewTestJob(), NewTestJob()
	victim.PushJob(j1)
	victim.PushJob(j2)
	j1.Take()
	if got := thief.StealJobFrom(victim); got != j2 {
		t.Error("steal must discard claimed jobs")
	}
	if thief.StealJobFrom(victim) != nil {
		t.Error("victim should be drained")
	}
}

func TestTakeIsExclusive(t *testing.T) {
	j := NewTestJob()
	if !j.Take() {
		t.Fatal("first take must succeed")
	}
	if j.Take() {
		t.Fatal("second take must fail")
	}
}

// TestConcurrentStealers hammers one victim deque from several thieves
// and checks every job is obtained exactly once.
func TestConcurrentStealers(t *testing.T) {
	victim, _ := NewTestWorkerPair()
	const n = 4096
	jobs := make([]*job, n)
	for i := range jobs {
		jobs[i] = NewTestJob()
		victim.PushJob(jobs[i])
	}
	var mu sync.Mutex
	got := map[*job]int{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thief, _ := NewTestWorkerPair()
			_ = thief
			for {
				j := thief.StealJobFrom(victim)
				if j == nil {
					return
				}
				if j.Take() {
					mu.Lock()
					got[j]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("obtained %d of %d jobs", len(got), n)
	}
	for j, c := range got {
		if c != 1 {
			t.Fatalf("job %p obtained %d times", j, c)
		}
	}
}

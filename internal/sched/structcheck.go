package sched

// Checked mode (Options.CheckStructure): on-the-fly enforcement of the
// structured-futures restrictions of paper §2, complementing the
// post-hoc dag validator (internal/dag) and the static analyzer
// (internal/analysis, cmd/sfvet). Unlike the validator it needs no
// recorded dag and adds O(1) work per Create/Get:
//
//   - single-touch: the engine's existing atomic touch bit, upgraded to
//     report the Create site and both Get sites;
//   - get-reachability, case "get inside the created task": the gotten
//     future must not be the getter's own task or an ancestor of it —
//     such a Get can only be reached through the created task (and would
//     deadlock the unchecked engine);
//   - get-reachability, case "handle flowed backwards": each function
//     instance carries a visibility horizon (Task.horizon), the highest
//     future ID that can structurally have reached it — raised by its
//     own creates, by gets (a put publishes every handle existing at the
//     put), and by sync joins (children publish their creations to the
//     join). Getting a future above the horizon means the handle crossed
//     between parallel strands through unsynchronized memory: a handle
//     race the create's continuation cannot sequentially reach.
//
// The horizon check is sound for sequentially valid flows (it never
// flags a structured program: every legal way a handle can arrive —
// closure capture at creation, a gotten future's put, a sync join —
// raises the horizon first) but, like the detector itself, it is
// execution-dependent: an unlucky parallel schedule can order a smuggled
// handle's creation before the getter's task and escape the check. The
// dag validator remains the exhaustive reference.

import (
	"fmt"
	"runtime"

	"sforder/internal/contract"
)

// callerPC captures the program counter skip+1 frames above the caller
// (0 = the caller's caller) without symbolizing it; formatting cost is
// paid only if a diagnostic fires.
func callerPC(skip int) uintptr {
	var pcs [1]uintptr
	if runtime.Callers(skip+2, pcs[:]) == 0 {
		return 0
	}
	return pcs[0]
}

// site renders a captured PC as file:line.
func site(pc uintptr) string {
	if pc == 0 {
		return "unknown site"
	}
	frames := runtime.CallersFrames([]uintptr{pc})
	fr, _ := frames.Next()
	if fr.File == "" {
		return "unknown site"
	}
	return fmt.Sprintf("%s:%d", fr.File, fr.Line)
}

// doubleTouchMsg formats the single-touch violation panic. The create
// and first-get sites are captured only in checked mode; without them
// the message says how to get them.
func (ft *FutureTask) doubleTouchMsg(second uintptr) string {
	msg := fmt.Sprintf("sched: structure violation, %s: future f%d touched twice\n\tsecond get at %s",
		contract.SingleTouch.Cite(), ft.ID, site(second))
	first := ft.firstGet.Load()
	if first == 0 && ft.createPC == 0 {
		return msg + "\n\t(enable CheckStructure to record the create and first-get sites)"
	}
	if first != 0 {
		msg += fmt.Sprintf("\n\tfirst get at %s", site(first))
	}
	if ft.createPC != 0 {
		msg += fmt.Sprintf("\n\tcreated at %s", site(ft.createPC))
	}
	return msg
}

// checkGetStructure runs the checked-mode get-reachability validation
// for a Get of ft at the call site pc, after the caller won the touch
// bit and before it blocks on the future.
func (t *Task) checkGetStructure(ft *FutureTask, pc uintptr) {
	ft.firstGet.Store(pc)
	for p := t.fut; p != nil; p = p.Parent {
		if p == ft {
			panic(fmt.Sprintf(
				"sched: structure violation, %s: future f%d gotten at %s from inside the created task (or a task it created); the Get is only reachable through the created task, not from the Create's continuation (created at %s)",
				contract.GetReachability.Cite(), ft.ID, site(pc), site(ft.createPC)))
		}
	}
	if int64(ft.ID) > t.horizon {
		panic(fmt.Sprintf(
			"sched: structure violation, %s: future f%d (created at %s) gotten at %s, but its handle cannot have structurally flowed to this task (visibility horizon f%d); the handle crossed parallel strands through unsynchronized memory",
			contract.GetReachability.Cite(), ft.ID, site(ft.createPC), site(pc), t.horizon))
	}
}

// Package contract is the single authoritative list of the
// structured-futures restrictions (paper §2) that the rest of the repo
// enforces. Three enforcement layers cite these invariants:
//
//   - internal/dag.(*Graph).Validate — exhaustive post-hoc validation of
//     a recorded dag (tests and sfgen);
//   - internal/sched's checked mode (Options.CheckStructure) — on-the-fly
//     O(1)-per-operation validation during execution;
//   - internal/analysis / cmd/sfvet — static analysis over the program
//     source, before any execution.
//
// Keeping the list in one leaf package (imported by sched, dag, and
// analysis alike — dag cannot host it because dag imports sched) makes
// every diagnostic cite the same paper clause with the same identifier,
// so a static SF001 finding, a runtime panic, and a validator error for
// the same bug all name the same invariant.
package contract

import "fmt"

// Invariant is one structural restriction of the SF-dag model.
type Invariant struct {
	// ID is the stable machine-readable identifier ("single-touch").
	ID string
	// Clause cites the paper section that states the restriction.
	Clause string
	// Summary is the one-line human-readable statement.
	Summary string
}

// Cite renders the invariant as "<id> (paper <clause>)" for inclusion in
// diagnostics and panic messages.
func (v Invariant) Cite() string { return fmt.Sprintf("%s (paper %s)", v.ID, v.Clause) }

func (v Invariant) String() string {
	return fmt.Sprintf("%s (paper %s): %s", v.ID, v.Clause, v.Summary)
}

// The structured-futures restrictions and SF-dag well-formedness
// properties (paper §2).
var (
	// SingleTouch is restriction 1 of structured futures: each future
	// handle is touched by Get at most once over the whole execution.
	SingleTouch = Invariant{
		ID:      "single-touch",
		Clause:  "§2",
		Summary: "each future handle is touched by Get at most once",
	}

	// GetReachability is restriction 2 (handle race freedom): the Get of
	// a future must be sequentially reachable from the continuation of
	// its Create without passing through the created task, i.e. the
	// handle only flows forward along the program order.
	GetReachability = Invariant{
		ID:      "get-reachability",
		Clause:  "§2",
		Summary: "a Get must be reachable from its Create's continuation without passing through the created task",
	}

	// SPPartition is the SF-dag well-formedness property that SP edges
	// (continue, spawn, sync) stay within one future task while create
	// and get edges cross future tasks.
	SPPartition = Invariant{
		ID:      "sp-partition",
		Clause:  "§2",
		Summary: "SP edges connect strands of one future task; create/get edges connect distinct future tasks",
	}

	// UniqueEntry is Property 2 of the paper: each future task has a
	// unique first strand (the only strand with an incoming create edge)
	// and a unique last strand (the only strand with an outgoing get
	// edge, its put node).
	UniqueEntry = Invariant{
		ID:      "unique-entry-exit",
		Clause:  "§2 Property 2",
		Summary: "each future task has a unique first strand and a unique last (put) strand",
	}

	// Acyclic: the computation forms a dag rooted at the initial strand.
	Acyclic = Invariant{
		ID:      "acyclic",
		Clause:  "§2",
		Summary: "the computation graph is acyclic with a single root source",
	}

	// AnnotatedSharing is not an SF-dag restriction but the detector's
	// observation contract (§4): the detector only sees accesses
	// annotated via Task.Read/Task.Write, so memory shared between a
	// task body and its continuation without shadow annotations is
	// invisible to race detection.
	AnnotatedSharing = Invariant{
		ID:      "annotated-sharing",
		Clause:  "§4",
		Summary: "shared memory accesses must be annotated with Task.Read/Task.Write for the detector to see them",
	}
)

// All returns every invariant in citation order.
func All() []Invariant {
	return []Invariant{SingleTouch, GetReachability, SPPartition, UniqueEntry, Acyclic, AnnotatedSharing}
}

// ByID returns the invariant with the given ID, and whether it exists.
func ByID(id string) (Invariant, bool) {
	for _, v := range All() {
		if v.ID == id {
			return v, true
		}
	}
	return Invariant{}, false
}

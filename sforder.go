// Package sforder is a parallel on-the-fly determinacy race detector for
// task-parallel programs with fork-join and structured-future
// parallelism, implementing SF-Order (Xu, Agrawal, Lee, "Efficient
// Parallel Determinacy Race Detection for Structured Futures", SPAA
// 2021) together with the baselines it is evaluated against (F-Order for
// general futures and the sequential MultiBags).
//
// Programs are written against the Task API — Spawn/Sync for fork-join
// parallelism, Create/Get for structured futures — and annotate the
// memory accesses the detector should observe with Task.Read and
// Task.Write on application-chosen shadow addresses:
//
//	result, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder}, func(t *sforder.Task) {
//		h := t.Create(func(c *sforder.Task) any {
//			c.Write(0)
//			return 42
//		})
//		t.Write(0) // races with the future body
//		_ = t.Get(h)
//	})
//	for _, race := range result.Races { fmt.Println(race) }
//
// A determinacy race is reported iff two logically parallel strands make
// conflicting accesses to the same address — soundly and completely for
// the given input, per the guarantees of the underlying algorithms.
//
// Structured futures obey two restrictions (paper §2): each future
// handle is touched by Get at most once (single-touch), and the Get must
// be reachable from the Create's continuation without passing through
// the created task (get-reachability). Violating the first always
// panics. Three complementary tools enforce the full contract:
// Config.CheckStructure validates both restrictions on the fly with O(1)
// overhead per operation, CheckStructured records a serial run and
// validates the dag exhaustively, and cmd/sfvet statically analyzes the
// program source before any execution.
package sforder

import (
	"fmt"
	"io"
	"time"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/forder"
	"sforder/internal/multibags"
	"sforder/internal/obsv"
	"sforder/internal/replay"
	"sforder/internal/sched"
	"sforder/internal/trace"
	"sforder/internal/wsp"
)

// Task is the execution context of one function instance; user code
// receives one and expresses parallelism through its methods.
type Task = sched.Task

// Future is the single-touch handle returned by Task.Create.
type Future = sched.Future

// Race describes one reported determinacy race.
type Race = detect.Race

// AccessKind tags the two sides of a Race.
type AccessKind = detect.AccessKind

// Access kinds.
const (
	AccessRead  = detect.AccessRead
	AccessWrite = detect.AccessWrite
)

// Detector selects the race-detection algorithm.
type Detector int

const (
	// SFOrder is the paper's parallel detector for structured futures:
	// constant-time reachability queries, O((T1+k²)/P + T∞ lg k)
	// running time for k futures.
	SFOrder Detector = iota
	// FOrder is the parallel detector for general (unrestricted)
	// futures — higher overhead, no structured-future assumptions.
	FOrder
	// MultiBags is the sequential detector for structured futures —
	// the lowest one-core overhead, but it forces serial execution.
	MultiBags
	// WSPOrder is the asymptotically optimal detector for pure
	// fork-join programs (WSP-Order, SPAA'16) — the algorithm SF-Order
	// builds on. It panics on the first Create/Get: programs with
	// futures need SFOrder or FOrder.
	WSPOrder
	// NoDetector executes the program without any instrumentation.
	NoDetector
)

func (d Detector) String() string {
	switch d {
	case SFOrder:
		return "SF-Order"
	case FOrder:
		return "F-Order"
	case MultiBags:
		return "MultiBags"
	case WSPOrder:
		return "WSP-Order"
	case NoDetector:
		return "none"
	default:
		return fmt.Sprintf("Detector(%d)", int(d))
	}
}

// ReachBackend selects the reachability substrate of the SFOrder
// detector (the -reach flag of cmd/sforder). Other detectors ignore it.
type ReachBackend int

const (
	// ReachOM (default) is the paper's English/Hebrew order-maintenance
	// list pair: O(1) amortized labels, maintenance lock at splits and
	// renumberings.
	ReachOM ReachBackend = iota
	// ReachDePa uses immutable DePa-style fork-path labels stored as
	// prefix-sharing cords: no relabeling and no maintenance lock,
	// O(strands) total label memory, and order comparisons that skip
	// the shared prefix by pointer equality (ABL10/ABL11).
	ReachDePa
	// ReachHybrid is ReachDePa plus packed flat label copies below a
	// depth threshold, compared directly on shallow-vs-shallow queries
	// (ABL11).
	ReachHybrid
)

func (b ReachBackend) String() string {
	switch b {
	case ReachDePa:
		return "depa"
	case ReachHybrid:
		return "hybrid"
	default:
		return "om"
	}
}

// ReaderPolicy selects how many previous readers the access history
// keeps per location.
type ReaderPolicy = detect.ReaderPolicy

const (
	// ReadersAll keeps every reader between two writes (required for
	// FOrder; the paper's SF-Order implementation also uses it).
	ReadersAll = detect.ReadersAll
	// ReadersLR keeps the leftmost and rightmost reader per (location,
	// future) — at most 2k readers — valid for SFOrder only (§3.5).
	ReadersLR = detect.ReadersLR
)

// Config configures Run.
type Config struct {
	// Detector selects the algorithm; default SFOrder.
	Detector Detector
	// Workers is the worker count for parallel execution (0 =
	// GOMAXPROCS). Ignored when Serial.
	Workers int
	// Serial runs the program on the sequential depth-first executor.
	// MultiBags requires it and forces it on.
	Serial bool
	// ReachabilityOnly maintains the detector's reachability structures
	// but checks no memory accesses (the paper's "reach" configuration).
	ReachabilityOnly bool
	// Policy selects reader retention for full detection.
	Policy ReaderPolicy
	// MaxRaces caps retained detailed race records (0 = 256).
	MaxRaces int
	// StrandFilter puts a strand-local redundancy filter in front of
	// the access history: accesses a strand already made to an address
	// are dropped before taking the history lock. Detection at location
	// granularity is unchanged; loop-heavy workloads check in much less
	// often.
	StrandFilter bool
	// FastPath enables the access history's lock-avoiding path: a
	// per-location published state word absorbs redundant accesses
	// without locking, the rest are buffered per strand and applied one
	// lock acquisition per shadow page when the strand ends, and
	// Precedes verdicts are memoized per strand. Detection at location
	// granularity is unchanged (DESIGN.md §4). Cuts hist.lock_acquires
	// by the batch factor on loop-heavy workloads.
	FastPath bool
	// DedupByAddr reports at most one detailed race record per memory
	// location: after the first report on an address, later races there
	// are counted in RaceCount but not retained in Races. Keeps reports
	// readable on programs with systematic races (e.g. a racy loop).
	DedupByAddr bool
	// Stats collects the observability registry — the named counters
	// every component publishes (sched.*, reach.*, om.*, hist.*) — and
	// returns its snapshot as Result.Stats. Off by default; enabling it
	// does not perturb the hot paths (the registry reads the same
	// atomics the components already maintain).
	Stats bool
	// Trace, when non-nil, streams the strand timeline to it in Chrome
	// trace-event JSON (chrome://tracing, Perfetto): per-strand
	// begin/end slices, spawn/create/sync/put/get instants, and steal
	// events. Tracing performs I/O per dag event; meant for modest runs.
	Trace io.Writer
	// CheckStructure enables the on-the-fly structured-futures checker:
	// every Create/Get validates the SF restrictions (paper §2) in O(1)
	// per operation — single-touch violations panic with the Create,
	// first-Get, and second-Get sites, and gets whose handle cannot have
	// structurally reached the getting task (a get inside the created
	// task, or a handle smuggled backwards through shared memory) panic
	// instead of silently voiding the detector's guarantees. Complements
	// the post-hoc CheckStructured validator (which needs a recorded
	// dag) and the static cmd/sfvet analyzer. Violations surface as
	// Run's error in parallel mode and panic in Serial mode.
	CheckStructure bool
	// Backend selects the shadow-table layout for full detection.
	Backend Backend
	// Reach selects the SFOrder reachability substrate: the OM list
	// pair (default), DePa fork-path cords, or the depth-adaptive
	// flat/cord hybrid.
	Reach ReachBackend
	// Record, when non-nil, captures the run — every dag structure
	// event plus the deduplicated access stream — to it in the sftrace
	// format (internal/trace), for offline re-detection with Replay.
	// Recording composes with any Detector, including NoDetector: a
	// production run can record at near-zero detection cost and defer
	// race checking entirely to replay. The capture is finalized when
	// Run returns; write errors surface as Run's error.
	Record io.Writer
}

// Backend selects the shadow-memory layout of the access history.
type Backend = detect.Backend

const (
	// BackendShardedMap (default) shards a hash map across mutexes.
	BackendShardedMap = detect.BackendShardedMap
	// BackendTwoLevel is the paper's two-level direct-mapped layout
	// (§4) — one lock per contiguous page of locations; measurably
	// faster on dense address spaces.
	BackendTwoLevel = detect.BackendTwoLevel
)

// Result reports a completed run.
type Result struct {
	// Races holds up to MaxRaces detailed reports; RaceCount is the
	// total number detected.
	Races     []Race
	RaceCount uint64
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
	// Queries is the number of reachability queries served.
	Queries uint64
	// Strands and Futures describe the executed computation dag.
	Strands uint64
	Futures uint64
	// ReachMemBytes and HistoryMemBytes estimate detector memory.
	ReachMemBytes   int
	HistoryMemBytes int
	// Stats is the observability registry snapshot, present when
	// Config.Stats was set: every counter the components published
	// (sched.*, reach.*, om.*, hist.*), by name. See README.md
	// ("Observability") for the catalog.
	Stats map[string]int64
}

// Run executes main under cfg and returns the detection result. The
// returned error is non-nil when the program itself failed (a panic in a
// parallel worker); detected races are data, not errors. On failure the
// Result is still returned alongside the error, carrying everything
// detected before the abort — races found in a crashing program are
// precisely the ones worth keeping. In Serial mode panics propagate to
// the caller instead.
func Run(cfg Config, main func(*Task)) (*Result, error) {
	type reachComponent interface {
		sched.Tracer
		detect.Reachability
		MemBytes() int
		Queries() uint64
	}
	var reach reachComponent
	var leftOf func(a, b *sched.Strand) bool
	switch cfg.Detector {
	case SFOrder:
		ccfg := core.Config{}
		switch cfg.Reach {
		case ReachDePa:
			ccfg.Reach = core.SubstrateDePa
		case ReachHybrid:
			ccfg.Reach = core.SubstrateHybrid
		}
		sf := core.New(ccfg)
		reach, leftOf = sf, sf.LeftOf
	case FOrder:
		reach = forder.NewReach()
	case MultiBags:
		reach = multibags.NewReach()
		cfg.Serial = true
	case WSPOrder:
		w := wsp.NewReach()
		reach, leftOf = w, w.LeftOf
	case NoDetector:
	default:
		return nil, fmt.Errorf("sforder: unknown detector %v", cfg.Detector)
	}
	if cfg.Policy == ReadersLR && cfg.Detector != SFOrder && cfg.Detector != WSPOrder {
		return nil, fmt.Errorf("sforder: ReadersLR is only sound for the SFOrder and WSPOrder detectors")
	}

	opts := sched.Options{Serial: cfg.Serial, Workers: cfg.Workers, CheckStructure: cfg.CheckStructure}
	var reg *obsv.Registry
	if cfg.Stats {
		reg = obsv.NewRegistry()
		opts.Stats = reg
	}
	var tw *obsv.TraceWriter
	if cfg.Trace != nil {
		tw = obsv.NewTraceWriter(cfg.Trace)
		opts.Trace = tw
	}
	var rec *trace.Recorder
	if cfg.Record != nil {
		rec = trace.NewRecorder(cfg.Record)
		opts.Aux = rec
		if reg != nil {
			rec.RegisterStats(reg)
		}
	}
	var hist *detect.History
	if reach != nil {
		opts.Tracer = reach
		if reg != nil {
			if rs, ok := reach.(interface{ RegisterStats(*obsv.Registry) }); ok {
				rs.RegisterStats(reg)
			}
		}
		if !cfg.ReachabilityOnly {
			hopts := detect.Options{
				Reach:       reach,
				Policy:      cfg.Policy,
				LeftOf:      leftOf,
				MaxRaces:    cfg.MaxRaces,
				Backend:     cfg.Backend,
				DedupByAddr: cfg.DedupByAddr,
				FastPath:    cfg.FastPath,
			}
			if rec != nil {
				// The history taps the recorder with the deduplicated
				// access stream it applies — the capture carries exactly
				// what online detection saw.
				hopts.Tap = rec
			}
			hist = detect.NewHistory(hopts)
			if reg != nil {
				hist.RegisterStats(reg)
			}
			if cfg.StrandFilter {
				filter := detect.NewStrandFilter(hist)
				if reg != nil {
					filter.RegisterStats(reg)
				}
				opts.Checker = filter
			} else {
				opts.Checker = hist
			}
		}
	}
	if rec != nil && hist == nil {
		// No access history to tap: the recorder observes the raw access
		// stream itself (with its own per-strand dedup), so NoDetector
		// and ReachabilityOnly runs still produce a complete capture.
		opts.Checker = rec
	}

	start := time.Now()
	counts, err := sched.Run(opts, main)
	if tw != nil {
		if cerr := tw.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("sforder: trace: %w", cerr)
		}
	}
	if rec != nil {
		if cerr := rec.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("sforder: record: %w", cerr)
		}
	}
	// Build the result even when the program failed: counts, races, and
	// stats accumulated before the abort are valid data, and dropping
	// them would lose every race the crashing program already exposed.
	res := &Result{
		Elapsed: time.Since(start),
		Strands: counts.Strands,
		Futures: counts.Futures,
	}
	if reach != nil {
		res.Queries = reach.Queries()
		res.ReachMemBytes = reach.MemBytes()
	}
	if hist != nil {
		res.Races = hist.Races()
		res.RaceCount = hist.RaceCount()
		res.HistoryMemBytes = hist.MemBytes()
	}
	if reg != nil {
		res.Stats = reg.Snapshot()
	}
	return res, err
}

// ReplayConfig configures Replay.
type ReplayConfig struct {
	// Workers is the number of detection shards replayed in parallel
	// (0 = GOMAXPROCS). The race set is identical for every worker
	// count; addresses are hash-partitioned so each location's history
	// lives wholly in one shard.
	Workers int
	// RebuildWorkers parallelizes the dag rebuild itself when above 1:
	// the strand forest is partitioned into independent segments and
	// the immutable fork-path labels are constructed concurrently (no
	// order-maintenance list, no locks). Label substrates only
	// (ReachDePa/ReachHybrid); the OM backend rebuilds serially.
	// Ignored under Streaming, where the rebuild is the pipeline's
	// producer stage.
	RebuildWorkers int
	// Streaming replays directly from the byte stream: structure
	// events are applied and access blocks dispatched to the detection
	// shards as they are decoded, through a bounded ready-queue — the
	// capture is never loaded into memory, so arbitrarily long traces
	// replay in constant resident space. The verdict is identical to
	// the barriered replay.
	Streaming bool
	// Reach selects the reachability substrate the dag is rebuilt on.
	// ReachDePa and ReachHybrid are natural offline choices (immutable
	// labels, lock-free queries); the default OM pair also works.
	Reach ReachBackend
	// MaxRaces caps retained detailed race records (0 = 256), applied
	// after the deterministic cross-shard merge.
	MaxRaces int
	// DedupByAddr retains at most one detailed record per address.
	DedupByAddr bool
}

// ReplayResult reports a completed offline replay.
type ReplayResult = replay.Result

// Replay loads a capture recorded via Config.Record from r, rebuilds
// the computation dag on the selected reachability substrate, and
// re-runs full race detection offline, with access events partitioned
// by address hash across Workers parallel shards. The location-level
// verdict (which addresses race) equals the online run's; the detailed
// race list is deterministic — independent of Workers and of the
// recorded schedule.
func Replay(r io.Reader, cfg ReplayConfig) (*ReplayResult, error) {
	opts := replay.Options{
		Workers:        cfg.Workers,
		RebuildWorkers: cfg.RebuildWorkers,
		MaxRaces:       cfg.MaxRaces,
		DedupByAddr:    cfg.DedupByAddr,
	}
	switch cfg.Reach {
	case ReachDePa:
		opts.Reach = core.SubstrateDePa
	case ReachHybrid:
		opts.Reach = core.SubstrateHybrid
	}
	if cfg.Streaming {
		res, err := replay.RunStream(r, opts)
		if err != nil {
			return nil, fmt.Errorf("sforder: replay: %w", err)
		}
		return res, nil
	}
	c, err := trace.Load(r)
	if err != nil {
		return nil, fmt.Errorf("sforder: replay: %w", err)
	}
	res, err := replay.Run(c, opts)
	if err != nil {
		return nil, fmt.Errorf("sforder: replay: %w", err)
	}
	return res, nil
}

// GetTyped retrieves a future's value with a type assertion, panicking
// with a descriptive message on mismatch. It is sugar over Task.Get for
// value-returning futures:
//
//	n := sforder.GetTyped[int](t, h)
func GetTyped[T any](t *Task, f *Future) T {
	v := t.Get(f)
	out, ok := v.(T)
	if !ok {
		panic(fmt.Sprintf("sforder: future value is %T, not %T", v, out))
	}
	return out
}

package sforder_test

import (
	"fmt"

	"sforder"
)

// The canonical structured-future race: a future task and its creator's
// continuation write the same location with no ordering between them.
func ExampleRun() {
	res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Serial: true}, func(t *sforder.Task) {
		t.Label("continuation")
		h := t.Create(func(c *sforder.Task) any {
			c.Label("future body")
			c.Write(0x10)
			return 42
		})
		t.Write(0x10) // logically parallel to the future body: a race
		_ = sforder.GetTyped[int](t, h)
		t.Write(0x10) // ordered after the future by the get: no race
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("races:", res.RaceCount)
	fmt.Println(res.Races[0])
	// Output:
	// races: 1
	// race on 0x10: write by s2/f1 ("future body") vs write by s3/f0 ("continuation")
}

// Instrumented arrays annotate accesses automatically.
func ExampleNewArray() {
	grid := sforder.NewArray[float64](16)
	res, err := sforder.Run(sforder.Config{Serial: true}, func(t *sforder.Task) {
		h := t.Create(func(c *sforder.Task) any {
			grid.Set(c, 3, 1.5)
			return nil
		})
		sum := grid.Get(t, 3) // races with the future's Set
		t.Get(h)
		_ = sum
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("races:", res.RaceCount)
	// Output:
	// races: 1
}

// CheckStructured verifies the structured-future restrictions on an
// input before trusting SF-Order's guarantees.
func ExampleCheckStructured() {
	err := sforder.CheckStructured(func(t *sforder.Task) {
		h := t.Create(func(*sforder.Task) any { return 1 })
		t.Spawn(func(c *sforder.Task) { _ = c.Get(h) }) // legal: spawned after create
		t.Sync()
	})
	fmt.Println("structured:", err == nil)
	// Output:
	// structured: true
}

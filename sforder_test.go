package sforder_test

import (
	"bytes"
	"strings"
	"testing"

	"sforder"
)

func TestQuickstartRace(t *testing.T) {
	for _, det := range []sforder.Detector{sforder.SFOrder, sforder.FOrder, sforder.MultiBags} {
		res, err := sforder.Run(sforder.Config{Detector: det, Serial: true}, func(t *sforder.Task) {
			h := t.Create(func(c *sforder.Task) any {
				c.Write(0)
				return 42
			})
			t.Write(0)
			_ = t.Get(h)
		})
		if err != nil {
			t.Fatalf("%v: %v", det, err)
		}
		if res.RaceCount == 0 {
			t.Errorf("%v: seeded race missed", det)
		}
		if len(res.Races) == 0 || res.Races[0].Addr != 0 {
			t.Errorf("%v: race record wrong: %v", det, res.Races)
		}
	}
}

func TestRaceFreeProgram(t *testing.T) {
	res, err := sforder.Run(sforder.Config{Workers: 4}, func(t *sforder.Task) {
		h := t.Create(func(c *sforder.Task) any {
			c.Write(1)
			return 1
		})
		t.Write(2)
		v := sforder.GetTyped[int](t, h)
		t.Write(1) // ordered after the future by the get
		_ = v
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("false positives: %v", res.Races)
	}
	if res.Futures != 2 || res.Queries == 0 {
		t.Errorf("result metadata: %+v", res)
	}
}

func TestReachabilityOnlyMode(t *testing.T) {
	res, err := sforder.Run(sforder.Config{ReachabilityOnly: true, Serial: true}, func(t *sforder.Task) {
		h := t.Create(func(c *sforder.Task) any { c.Write(7); return nil })
		t.Write(7) // a race — but accesses are not checked in reach mode
		t.Get(h)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 || res.Queries != 0 {
		t.Error("reach mode must not check accesses")
	}
	if res.ReachMemBytes <= 0 {
		t.Error("reach mode still maintains reachability structures")
	}
}

func TestNoDetector(t *testing.T) {
	res, err := sforder.Run(sforder.Config{Detector: sforder.NoDetector, Serial: true}, func(t *sforder.Task) {
		t.Write(1)
		t.Write(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 || res.ReachMemBytes != 0 {
		t.Error("NoDetector must not detect or account anything")
	}
}

func TestMultiBagsForcesSerial(t *testing.T) {
	// Even with Workers set, MultiBags must run (serially) and work.
	res, err := sforder.Run(sforder.Config{Detector: sforder.MultiBags, Workers: 8}, func(t *sforder.Task) {
		t.Spawn(func(c *sforder.Task) { c.Write(3) })
		t.Write(3)
		t.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Error("spawn race missed")
	}
}

func TestLRPolicyRejectedForFOrder(t *testing.T) {
	_, err := sforder.Run(sforder.Config{Detector: sforder.FOrder, Policy: sforder.ReadersLR}, func(*sforder.Task) {})
	if err == nil || !strings.Contains(err.Error(), "ReadersLR") {
		t.Fatalf("expected ReadersLR rejection, got %v", err)
	}
}

func TestGetTypedMismatchPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "not int") {
			t.Errorf("expected type mismatch panic, got %v", r)
		}
	}()
	sforder.Run(sforder.Config{Serial: true}, func(t *sforder.Task) {
		h := t.Create(func(*sforder.Task) any { return "hello" })
		sforder.GetTyped[int](t, h)
	})
}

func TestParallelPanicSurfacesAsError(t *testing.T) {
	_, err := sforder.Run(sforder.Config{Workers: 2}, func(t *sforder.Task) {
		t.Spawn(func(*sforder.Task) { panic("kaboom") })
		t.Sync()
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("expected propagated panic, got %v", err)
	}
}

func TestWSPOrderDetector(t *testing.T) {
	res, err := sforder.Run(sforder.Config{Detector: sforder.WSPOrder, Workers: 2}, func(t *sforder.Task) {
		t.Spawn(func(c *sforder.Task) { c.Write(4) })
		t.Write(4)
		t.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Error("spawn race missed by WSP-Order")
	}
	// LR policy is sound for WSP-Order too.
	if _, err := sforder.Run(sforder.Config{Detector: sforder.WSPOrder, Policy: sforder.ReadersLR, Serial: true},
		func(t *sforder.Task) { t.Read(1) }); err != nil {
		t.Errorf("ReadersLR with WSPOrder rejected: %v", err)
	}
	// Futures are rejected loudly.
	_, err = sforder.Run(sforder.Config{Detector: sforder.WSPOrder, Workers: 2}, func(t *sforder.Task) {
		t.Create(func(*sforder.Task) any { return nil })
	})
	if err == nil || !strings.Contains(err.Error(), "fork-join") {
		t.Errorf("expected future rejection, got %v", err)
	}
}

func TestParallelForDetection(t *testing.T) {
	// Disjoint writes: race-free.
	res, err := sforder.Run(sforder.Config{Workers: 3}, func(t *sforder.Task) {
		t.ParallelFor(0, 100, 8, func(ti *sforder.Task, i int) {
			ti.Write(uint64(i))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("disjoint parallel writes raced: %v", res.Races)
	}
	// All iterations write one cell: racy.
	res, err = sforder.Run(sforder.Config{Serial: true}, func(t *sforder.Task) {
		t.ParallelFor(0, 16, 2, func(ti *sforder.Task, i int) {
			ti.Write(7)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("racy parallel loop not reported")
	}
}

func TestDetectorStrings(t *testing.T) {
	want := map[sforder.Detector]string{
		sforder.SFOrder: "SF-Order", sforder.FOrder: "F-Order",
		sforder.MultiBags: "MultiBags", sforder.NoDetector: "none",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), s)
		}
	}
}

// TestReplayRoundTrip records a racy run through the public API and
// replays it through all three offline paths — barriered serial,
// barriered with a parallel rebuild, and streamed — checking all agree
// with the online verdict.
func TestReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	main := func(t *sforder.Task) {
		h := t.Create(func(c *sforder.Task) any {
			c.Write(3)
			return nil
		})
		t.Write(3)
		t.Get(h)
	}
	res, err := sforder.Run(sforder.Config{Serial: true, Record: &buf}, main)
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("seeded race missed online")
	}
	raw := buf.Bytes()
	for _, cfg := range []sforder.ReplayConfig{
		{Workers: 2, Reach: sforder.ReachDePa},
		{Workers: 2, RebuildWorkers: 4, Reach: sforder.ReachDePa},
		{Workers: 2, RebuildWorkers: 4, Reach: sforder.ReachHybrid},
		{Workers: 2, Streaming: true, Reach: sforder.ReachDePa},
		{Workers: 2, Streaming: true}, // default OM backend streams too
	} {
		rr, err := sforder.Replay(bytes.NewReader(raw), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if rr.RaceCount == 0 || len(rr.RacyAddrs) != 1 || rr.RacyAddrs[0] != 3 {
			t.Fatalf("%+v: replay verdict %d races on %v, want addr 3",
				cfg, rr.RaceCount, rr.RacyAddrs)
		}
		if cfg.RebuildWorkers > 1 && !rr.RebuildParallel {
			t.Fatalf("%+v: parallel rebuild did not engage", cfg)
		}
		if cfg.Streaming != rr.Streamed {
			t.Fatalf("%+v: streamed=%v", cfg, rr.Streamed)
		}
	}
}

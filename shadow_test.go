package sforder_test

import (
	"strings"
	"testing"

	"sforder"
)

func TestArrayBasics(t *testing.T) {
	xs := sforder.NewArray[int](8)
	if xs.Len() != 8 {
		t.Fatalf("Len = %d", xs.Len())
	}
	res, err := sforder.Run(sforder.Config{Serial: true}, func(task *sforder.Task) {
		xs.Set(task, 3, 42)
		if got := xs.Get(task, 3); got != 42 {
			t.Errorf("Get = %d", got)
		}
		xs.Update(task, 3, func(v int) int { return v + 1 })
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Errorf("serial accesses raced: %v", res.Races)
	}
	if xs.Raw()[3] != 43 {
		t.Errorf("Raw[3] = %d", xs.Raw()[3])
	}
}

func TestArraysHaveDisjointShadowRanges(t *testing.T) {
	a := sforder.NewArray[int](100)
	b := sforder.NewArray[float64](100)
	for i := 0; i < 100; i++ {
		if a.Addr(i) == b.Addr(i) {
			t.Fatalf("arrays share shadow address %d", a.Addr(i))
		}
	}
}

func TestArrayDetectsRace(t *testing.T) {
	xs := sforder.NewArray[int](4)
	res, err := sforder.Run(sforder.Config{Serial: true}, func(t *sforder.Task) {
		h := t.Create(func(c *sforder.Task) any {
			xs.Set(c, 0, 1)
			return nil
		})
		xs.Set(t, 0, 2) // conflicts with the future body
		t.Get(h)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("Array race missed")
	}
	if res.Races[0].Addr != xs.Addr(0) {
		t.Errorf("race addr %#x, want %#x", res.Races[0].Addr, xs.Addr(0))
	}
}

func TestNewArrayNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sforder.NewArray[int](-1)
}

func TestCheckStructuredAccepts(t *testing.T) {
	err := sforder.CheckStructured(func(t *sforder.Task) {
		h := t.Create(func(c *sforder.Task) any {
			c.Spawn(func(*sforder.Task) {})
			c.Sync()
			return 1
		})
		t.Spawn(func(c *sforder.Task) { _ = c.Get(h) })
		t.Sync()
	})
	if err != nil {
		t.Fatalf("structured program rejected: %v", err)
	}
}

func TestCheckStructuredCatchesUnstructuredGet(t *testing.T) {
	// The handle is gotten in a branch that is parallel to the create:
	// no handle-safe path exists, so the program is not structured.
	err := sforder.CheckStructured(func(t *sforder.Task) {
		var h *sforder.Future
		started := make(chan struct{})
		_ = started
		t.Spawn(func(c *sforder.Task) {
			// This child runs first under the serial executor and
			// publishes the handle it creates.
			h = c.Create(func(*sforder.Task) any { return 1 })
		})
		// Parallel branch: gets a handle created in the sibling. Under
		// the serial executor the child has run, so h is non-nil, but
		// the get is logically parallel to the create.
		t.Spawn(func(c *sforder.Task) { _ = c.Get(h) })
		t.Sync()
	})
	if err == nil || !strings.Contains(err.Error(), "handle-safe") {
		t.Fatalf("expected handle-safe violation, got %v", err)
	}
}

func TestCheckStructuredSurfacesExecutionFailure(t *testing.T) {
	defer func() {
		// Serial executor panics propagate.
		if recover() == nil {
			t.Error("expected panic to propagate")
		}
	}()
	sforder.CheckStructured(func(t *sforder.Task) { panic("bad program") })
}

package sforder

import (
	"fmt"
	"sync/atomic"

	"sforder/internal/dag"
	"sforder/internal/sched"
)

// Array is an instrumented slice: every element access annotates the
// corresponding shadow address automatically, so workloads don't manage
// address arithmetic by hand. Create Arrays with NewArray; distinct
// arrays of one program occupy disjoint shadow ranges.
//
//	xs := sforder.NewArray[int](1024)
//	...
//	xs.Set(t, i, 42)       // annotates the write and stores
//	v := xs.Get(t, i)      // annotates the read and loads
type Array[T any] struct {
	base uint64
	data []T
}

// nextShadowBase allocates disjoint shadow ranges across all Arrays of
// the process. Addresses only need to be unique, not dense.
var nextShadowBase atomic.Uint64

// NewArray allocates an instrumented array of n elements.
func NewArray[T any](n int) *Array[T] {
	if n < 0 {
		panic("sforder: NewArray with negative length")
	}
	base := nextShadowBase.Add(uint64(n)) - uint64(n)
	return &Array[T]{base: base, data: make([]T, n)}
}

// Len returns the element count.
func (a *Array[T]) Len() int { return len(a.data) }

// Addr returns the shadow address of element i, for mixing Array use
// with raw Task.Read/Task.Write annotations.
func (a *Array[T]) Addr(i int) uint64 { return a.base + uint64(i) }

// Get reads element i on behalf of t's current strand.
func (a *Array[T]) Get(t *Task, i int) T {
	t.Read(a.Addr(i))
	return a.data[i]
}

// Set writes element i on behalf of t's current strand.
func (a *Array[T]) Set(t *Task, i int, v T) {
	t.Write(a.Addr(i))
	a.data[i] = v
}

// Update applies f to element i (a read-modify-write: both accesses are
// annotated).
func (a *Array[T]) Update(t *Task, i int, f func(T) T) {
	t.Read(a.Addr(i))
	t.Write(a.Addr(i))
	a.data[i] = f(a.data[i])
}

// Raw returns the backing slice without instrumentation — for
// verification code that runs after the parallel phase.
func (a *Array[T]) Raw() []T { return a.data }

// CheckStructured executes main serially while recording its computation
// dag and verifies the structured-future restrictions (paper §2): each
// future is touched at most once, every get is reachable from its
// create's continuation without passing through the created task, and
// the dag is a well-formed SF-dag. It returns nil when the program's
// use of futures is structured on this input.
//
// The check is input-specific (like race detection itself) and costs
// O(V·E) in the recorded dag, so use it in tests, not production runs.
func CheckStructured(main func(*Task)) error {
	rec := dag.NewRecorder()
	if _, err := sched.Run(sched.Options{Serial: true, Tracer: rec}, main); err != nil {
		return fmt.Errorf("sforder: execution failed: %w", err)
	}
	return rec.G.Validate()
}

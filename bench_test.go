// Benchmarks regenerating the paper's evaluation artifacts, one family
// per table/figure (see DESIGN.md §5 and EXPERIMENTS.md):
//
//	BenchmarkFig3Characteristics  — Figure 3 columns as reported metrics
//	BenchmarkFig4                 — Figure 4 grid: benchmark × detector × mode × workers
//	BenchmarkFig5Memory           — Figure 5: reachability memory as reported metrics
//	BenchmarkAblationReaderPolicy — ABL1: ReadersAll vs ReadersLR histories
//	BenchmarkAblationGpMerge      — ABL2: §3.4 merge-on-divergence vs always-merge
//	BenchmarkAblationBitmapVsHash — ABL3: SF-Order bitmaps vs F-Order tables, reach only
//	BenchmarkAblationFastPath     — ABL7: lock-avoiding access history on vs off
//	BenchmarkAblationOMLock       — ABL8: fine-grained vs global OM locking × arenas vs heap
//	BenchmarkAblationDeque        — ABL9: lock-free Chase–Lev scheduler vs mutex deque
//	BenchmarkAblationReach        — ABL10: English/Hebrew OM pair vs DePa fork-path labels
//	BenchmarkAblationHybrid       — ABL11: prefix-sharing cords vs OM vs hybrid, worker scaling
//	BenchmarkReplayScaling        — ABL12: offline replay of recorded captures, shard scaling
//
// Benchmark inputs are reduced from the paper's (its testbed ran minutes
// per cell on a 20-core Xeon); the overhead and memory ratios — the
// quantities the paper's claims are about — are preserved. Run with:
//
//	go test -bench=. -benchmem
package sforder_test

import (
	"bytes"
	"fmt"
	"testing"

	"sforder"

	"sforder/internal/core"
	"sforder/internal/detect"
	"sforder/internal/forder"
	"sforder/internal/harness"
	"sforder/internal/obsv"
	"sforder/internal/progen"
	"sforder/internal/replay"
	"sforder/internal/sched"
	"sforder/internal/trace"
	"sforder/internal/workload"
)

// benchSet returns the five paper benchmarks at benchmark-friendly
// sizes (a full -bench=. sweep stays in the minutes).
func benchSet() []*workload.Benchmark {
	return []*workload.Benchmark{
		workload.MM(64, 16),
		workload.Sort(20_000, 512),
		workload.SW(128, 16),
		workload.HW(4, 16, 256),
		workload.Ferret(16, 256),
	}
}

// measure runs one harness configuration per iteration, excluding input
// generation from the timing.
func measure(b *testing.B, bench *workload.Benchmark, cfg harness.Config) *harness.Result {
	b.Helper()
	var last *harness.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		run := bench.Make()
		b.StartTimer()
		res, err := runPrepared(run, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	return last
}

// runPrepared is harness.Run with the workload instance pre-built.
func runPrepared(run *workload.Run, cfg harness.Config) (*harness.Result, error) {
	// Reuse the harness by wrapping the prepared run in a one-shot
	// benchmark (Make returns the same instance once).
	used := false
	wrapper := &workload.Benchmark{Name: "prepared", Make: func() *workload.Run {
		if used {
			panic("bench: prepared run reused")
		}
		used = true
		return run
	}}
	return harness.Run(wrapper, cfg)
}

// BenchmarkFig3Characteristics reports the Figure 3 columns as metrics
// on a full SF-Order run per benchmark.
func BenchmarkFig3Characteristics(b *testing.B) {
	for _, bench := range benchSet() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			res := measure(b, bench, harness.Config{
				Detector: harness.SFOrder, Mode: harness.Full, Serial: true, CountAccesses: true,
			})
			b.ReportMetric(float64(res.Counts.Reads), "reads")
			b.ReportMetric(float64(res.Counts.Writes), "writes")
			b.ReportMetric(float64(res.Queries), "queries")
			b.ReportMetric(float64(res.Counts.Futures-1), "futures")
			b.ReportMetric(float64(res.Counts.Strands), "nodes")
		})
	}
}

// BenchmarkFig4 times every cell of the Figure 4 grid. MultiBags runs
// serially only; the parallel detectors run at 1 worker and at
// DefaultWorkers.
func BenchmarkFig4(b *testing.B) {
	tp := harness.DefaultWorkers()
	type cell struct {
		name string
		cfg  harness.Config
	}
	for _, bench := range benchSet() {
		bench := bench
		cells := []cell{
			{"base/T1", harness.Config{Mode: harness.Base, Serial: true}},
			{"base/TP", harness.Config{Mode: harness.Base, Workers: tp}},
		}
		for _, mode := range []harness.Mode{harness.Reach, harness.Full} {
			cells = append(cells,
				cell{"MultiBags/" + mode.String() + "/T1",
					harness.Config{Detector: harness.MultiBags, Mode: mode, Serial: true}},
				cell{"F-Order/" + mode.String() + "/T1",
					harness.Config{Detector: harness.FOrder, Mode: mode, Workers: 1}},
				cell{"SF-Order/" + mode.String() + "/T1",
					harness.Config{Detector: harness.SFOrder, Mode: mode, Workers: 1}},
				cell{"F-Order/" + mode.String() + "/TP",
					harness.Config{Detector: harness.FOrder, Mode: mode, Workers: tp}},
				cell{"SF-Order/" + mode.String() + "/TP",
					harness.Config{Detector: harness.SFOrder, Mode: mode, Workers: tp}},
			)
		}
		for _, c := range cells {
			c := c
			b.Run(bench.Name+"/"+c.name, func(b *testing.B) {
				res := measure(b, bench, c.cfg)
				if res.Races != 0 {
					b.Fatalf("benchmark must be race-free, got %d races", res.Races)
				}
			})
		}
	}
}

// BenchmarkFig5Memory reports reachability-maintenance memory per
// detector per benchmark.
func BenchmarkFig5Memory(b *testing.B) {
	for _, bench := range benchSet() {
		bench := bench
		for _, det := range []harness.Detector{harness.FOrder, harness.SFOrder} {
			det := det
			b.Run(bench.Name+"/"+det.String(), func(b *testing.B) {
				res := measure(b, bench, harness.Config{Detector: det, Mode: harness.Reach, Serial: true})
				b.ReportMetric(float64(res.ReachMem), "reach-bytes")
			})
		}
	}
}

// BenchmarkAblationReaderPolicy (ABL1, §3.5 vs §4): the 2k-bounded
// leftmost/rightmost history against the paper's all-readers history,
// full detection with SF-Order.
func BenchmarkAblationReaderPolicy(b *testing.B) {
	for _, bench := range []*workload.Benchmark{workload.MM(64, 16), workload.SW(128, 16)} {
		bench := bench
		for _, policy := range []detect.ReaderPolicy{detect.ReadersAll, detect.ReadersLR} {
			policy := policy
			b.Run(bench.Name+"/"+policy.String(), func(b *testing.B) {
				res := measure(b, bench, harness.Config{
					Detector: harness.SFOrder, Mode: harness.Full, Serial: true, Policy: policy,
				})
				b.ReportMetric(float64(res.HistMem), "hist-bytes")
			})
		}
	}
}

// BenchmarkAblationGpMerge (ABL2, §3.4): the copy-on-write gp merge
// policy against unconditional union allocation, on random future-heavy
// programs.
func BenchmarkAblationGpMerge(b *testing.B) {
	// Seed 8 yields ~750 futures and ~300 gets at this shape.
	prog := progen.New(progen.Config{Seed: 8, MaxDepth: 7, MaxOps: 10, Addrs: 64})
	for _, variant := range []string{"merge-on-divergence", "always-merge"} {
		variant := variant
		b.Run(variant, func(b *testing.B) {
			var merges uint64
			for i := 0; i < b.N; i++ {
				var r *core.Reach
				if variant == "always-merge" {
					r = core.NewReachAlwaysMerge()
				} else {
					r = core.NewReach()
				}
				if _, err := sched.Run(sched.Options{Serial: true, Tracer: r}, prog.Main()); err != nil {
					b.Fatal(err)
				}
				merges = r.GPMerges()
			}
			b.ReportMetric(float64(merges), "gp-allocs")
		})
	}
}

// BenchmarkKSweep (KSWEEP): the O(k²) reachability-construction term,
// isolated. Chain(k) holds per-future work constant while k grows;
// reach-mode detector time should bend quadratically (each create copies
// a Θ(k)-word cp bitmap) while base time stays linear in k. Both
// parallel detectors are swept; fib (k=0) anchors the fork-join-only
// cost.
func BenchmarkKSweep(b *testing.B) {
	for _, k := range []int{64, 256, 1024} {
		bench := workload.Chain(k, 16)
		for _, det := range []harness.Detector{harness.SFOrder, harness.FOrder} {
			det := det
			b.Run(fmt.Sprintf("chain-k%d/%s", k, det), func(b *testing.B) {
				res := measure(b, bench, harness.Config{Detector: det, Mode: harness.Reach, Serial: true})
				b.ReportMetric(float64(res.ReachMem), "reach-bytes")
			})
		}
		b.Run(fmt.Sprintf("chain-k%d/base", k), func(b *testing.B) {
			measure(b, bench, harness.Config{Mode: harness.Base, Serial: true})
		})
	}
	b.Run("fib-n16/SF-Order", func(b *testing.B) {
		measure(b, workload.Fib(16), harness.Config{Detector: harness.SFOrder, Mode: harness.Reach, Serial: true})
	})
}

// BenchmarkAblationWSPDegeneration (ABL6, §2): on a pure fork-join
// program, SF-Order must degenerate to WSP-Order plus near-free future
// bookkeeping — the two should be close, with WSP-Order as the floor.
func BenchmarkAblationWSPDegeneration(b *testing.B) {
	fib := workload.Fib(16)
	for _, det := range []sforder.Detector{sforder.WSPOrder, sforder.SFOrder} {
		det := det
		for _, mode := range []string{"reach", "full"} {
			mode := mode
			b.Run("fib/"+det.String()+"/"+mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					run := fib.Make()
					b.StartTimer()
					res, err := sforder.Run(sforder.Config{
						Detector:         det,
						Serial:           true,
						ReachabilityOnly: mode == "reach",
					}, run.Main)
					if err != nil {
						b.Fatal(err)
					}
					if res.RaceCount != 0 {
						b.Fatal("fib must be race-free")
					}
				}
			})
		}
	}
}

// BenchmarkAblationStrandFilter (ABL4, §6 future work): full SF-Order
// detection with and without the strand-local redundancy filter that
// drops repeated same-strand accesses before the history lock.
func BenchmarkAblationStrandFilter(b *testing.B) {
	for _, bench := range []*workload.Benchmark{workload.MM(64, 16), workload.HW(4, 16, 256)} {
		bench := bench
		for _, filtered := range []bool{false, true} {
			filtered := filtered
			name := bench.Name + "/unfiltered"
			if filtered {
				name = bench.Name + "/filtered"
			}
			b.Run(name, func(b *testing.B) {
				res := measure(b, bench, harness.Config{
					Detector: harness.SFOrder, Mode: harness.Full, Serial: true, Filter: filtered,
				})
				b.ReportMetric(float64(res.Queries), "queries")
			})
		}
	}
}

// BenchmarkAblationFastPath (ABL7, §6 future work): full SF-Order
// detection with and without the lock-avoiding access-history path
// (state word + strand batching + Precedes memo). The reported
// lock-acquires metric is the acceptance quantity: with the fast path
// on it must drop by at least 5× on the loop-heavy workloads (mm, hw).
func BenchmarkAblationFastPath(b *testing.B) {
	benches := []*workload.Benchmark{
		workload.MM(64, 16),
		workload.HW(4, 16, 256),
		workload.Sort(20_000, 512),
	}
	for _, bench := range benches {
		bench := bench
		for _, fast := range []bool{false, true} {
			fast := fast
			name := bench.Name + "/fastpath-off"
			if fast {
				name = bench.Name + "/fastpath-on"
			}
			b.Run(name, func(b *testing.B) {
				res := measure(b, bench, harness.Config{
					Detector: harness.SFOrder, Mode: harness.Full, Serial: true,
					FastPath: fast, Registry: obsv.NewRegistry(),
				})
				b.ReportMetric(float64(res.Stats["hist.lock_acquires"]), "lock-acquires")
				b.ReportMetric(float64(res.Stats["hist.fastpath_hits"]), "fastpath-hits")
			})
		}
	}
}

// BenchmarkAblationOMLock (ABL8): reachability maintenance at 4 workers
// with the order-maintenance lists under fine-grained bucket locking vs
// the single list-level lock, and with per-worker slab arenas vs plain
// heap allocation. The om-lock-acquires metric is the acceptance
// quantity: fine-grained locking must cut list-level lock acquisitions
// by at least 2× on mm (in practice the maintenance lock is only taken
// at bucket splits, so the drop is far larger).
func BenchmarkAblationOMLock(b *testing.B) {
	benches := []*workload.Benchmark{
		workload.MM(64, 16),
		workload.HW(4, 16, 256),
		workload.Sort(20_000, 512),
	}
	for _, bench := range benches {
		bench := bench
		for _, v := range []struct {
			name    string
			global  bool
			noArena bool
		}{
			{"fine-arena", false, false},
			{"fine-heap", false, true},
			{"global-arena", true, false},
			{"global-heap", true, true},
		} {
			v := v
			b.Run(bench.Name+"/"+v.name, func(b *testing.B) {
				res := measure(b, bench, harness.Config{
					Detector: harness.SFOrder, Mode: harness.Reach, Workers: 4,
					OMGlobalLock: v.global, NoArena: v.noArena,
					Registry: obsv.NewRegistry(),
				})
				b.ReportMetric(float64(res.Stats["om.lock_acquires"]), "om-lock-acquires")
				b.ReportMetric(float64(res.Stats["om.bucket_locks"]), "om-bucket-locks")
				b.ReportMetric(float64(res.Stats["core.arena_bytes"]), "arena-bytes")
			})
		}
	}
}

// BenchmarkAblationDeque (ABL9): the scheduler itself — lock-free
// Chase–Lev deques with parking idle workers against the historical
// mutex deque with the spin loop — on mm, hw, and sort in reach and
// full mode at 1, 2, and 4 workers. deque-lock-acquires is the
// acceptance quantity: ~0 for the lock-free scheduler, one per
// push/pop/steal for the ablation.
func BenchmarkAblationDeque(b *testing.B) {
	benches := []*workload.Benchmark{
		workload.MM(64, 16),
		workload.HW(4, 16, 256),
		workload.Sort(20_000, 512),
	}
	for _, bench := range benches {
		bench := bench
		for _, mode := range []harness.Mode{harness.Reach, harness.Full} {
			mode := mode
			for _, workers := range []int{1, 2, 4} {
				workers := workers
				for _, v := range []struct {
					name      string
					lockDeque bool
				}{
					{"chaselev", false},
					{"lockdeque", true},
				} {
					v := v
					name := fmt.Sprintf("%s/%s/w%d/%s", bench.Name, mode, workers, v.name)
					b.Run(name, func(b *testing.B) {
						res := measure(b, bench, harness.Config{
							Detector: harness.SFOrder, Mode: mode, Workers: workers,
							FastPath: mode == harness.Full, LockDeque: v.lockDeque,
							Registry: obsv.NewRegistry(),
						})
						b.ReportMetric(float64(res.Stats["sched.lock_acquires"]), "deque-lock-acquires")
						b.ReportMetric(float64(res.Stats["sched.steals"]), "steals")
						b.ReportMetric(float64(res.Stats["sched.parks"]), "parks")
					})
				}
			}
		}
	}
}

// BenchmarkAblationReach (ABL10): the pluggable reachability substrate
// — the English/Hebrew OM pair against DePa fork-path labels — on three
// paper benchmarks plus the adversarial spawn spine, reach and full
// mode at 4 workers. om-lock-acquires is the acceptance quantity: the
// DePa substrate must report 0 (it has no maintenance lock to take),
// while on the spine the OM substrate pays bucket splits and top-level
// renumberings under that lock. depa-label-bytes shows the dual cost:
// DePa labels grow one component per spawn level, so the spine maximizes
// label memory and compare depth while the flat benchmarks barely
// notice.
func BenchmarkAblationReach(b *testing.B) {
	benches := []*workload.Benchmark{
		workload.MM(64, 16),
		workload.HW(4, 16, 256),
		workload.Sort(20_000, 512),
		workload.Spine(1500, 2),
	}
	for _, bench := range benches {
		bench := bench
		for _, mode := range []harness.Mode{harness.Reach, harness.Full} {
			mode := mode
			for _, sub := range []core.Substrate{core.SubstrateOM, core.SubstrateDePa, core.SubstrateHybrid} {
				sub := sub
				b.Run(fmt.Sprintf("%s/%s/%s", bench.Name, mode, sub), func(b *testing.B) {
					res := measure(b, bench, harness.Config{
						Detector: harness.SFOrder, Mode: mode, Workers: 4,
						FastPath: mode == harness.Full, Reach: sub,
						Registry: obsv.NewRegistry(),
					})
					b.ReportMetric(float64(res.ReachMem), "reach-bytes")
					b.ReportMetric(float64(res.Stats["om.lock_acquires"]), "om-lock-acquires")
					b.ReportMetric(float64(res.Stats["om.english.renumbers"]+res.Stats["om.hebrew.renumbers"]), "om-renumbers")
					b.ReportMetric(float64(res.Stats["depa.label_mem_bytes"]), "depa-label-bytes")
					b.ReportMetric(float64(res.Stats["depa.compare_words"]), "depa-compare-words")
				})
			}
		}
	}
}

// BenchmarkAblationHybrid (ABL11): the prefix-sharing cord labels and
// the depth-adaptive hybrid against the OM pair, full mode, across a
// worker-count scaling axis (1/2/4/8). The workload set adds pipeline —
// the Herlihy & Liu long-future-chain shape — whose labels run deeper
// than any paper benchmark's; depa-label-bytes is O(strands) under
// cords where the PR 7 flat labels paid O(strands × depth) words, and
// depa-compare-words stays within a word or two of one compare per
// query on the spine thanks to the LCA skip. The hybrid column shows
// the flat fast path's overhead is bounded by the threshold: its extra
// bytes over depa are the ≤ DefaultHybridDepth shallow flat copies.
func BenchmarkAblationHybrid(b *testing.B) {
	benches := []*workload.Benchmark{
		workload.MM(64, 16),
		workload.HW(4, 16, 256),
		workload.Sort(20_000, 512),
		workload.Spine(1500, 2),
		workload.Pipeline(200, 8, 4),
	}
	for _, bench := range benches {
		bench := bench
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			for _, sub := range []core.Substrate{core.SubstrateOM, core.SubstrateDePa, core.SubstrateHybrid} {
				sub := sub
				b.Run(fmt.Sprintf("%s/w%d/%s", bench.Name, workers, sub), func(b *testing.B) {
					res := measure(b, bench, harness.Config{
						Detector: harness.SFOrder, Mode: harness.Full, Workers: workers,
						FastPath: true, Reach: sub,
						Registry: obsv.NewRegistry(),
					})
					b.ReportMetric(float64(res.ReachMem), "reach-bytes")
					b.ReportMetric(float64(res.Stats["depa.label_mem_bytes"]), "depa-label-bytes")
					b.ReportMetric(float64(res.Stats["depa.compare_words"]), "depa-compare-words")
					b.ReportMetric(float64(res.Stats["depa.flat_compares"]), "depa-flat-compares")
				})
			}
		}
	}
}

// BenchmarkAblationShadowBackend (ABL5, §4): the paper's two-level
// direct-mapped shadow table against the sharded-map default, full
// SF-Order detection.
func BenchmarkAblationShadowBackend(b *testing.B) {
	for _, bench := range []*workload.Benchmark{workload.MM(64, 16), workload.Sort(20_000, 512)} {
		bench := bench
		for _, backend := range []detect.Backend{detect.BackendShardedMap, detect.BackendTwoLevel} {
			backend := backend
			b.Run(bench.Name+"/"+backend.String(), func(b *testing.B) {
				res := measure(b, bench, harness.Config{
					Detector: harness.SFOrder, Mode: harness.Full, Serial: true, Backend: backend,
				})
				b.ReportMetric(float64(res.HistMem), "hist-bytes")
			})
		}
	}
}

// BenchmarkAblationBitmapVsHash (ABL3, §4): the reach-only overhead gap
// between SF-Order's bitmaps and F-Order's per-node hash tables on a
// future-heavy random program — the isolated version of the paper's
// explanation for Figure 4's reach rows.
func BenchmarkAblationBitmapVsHash(b *testing.B) {
	// Seed 3 yields ~570 futures at this shape.
	prog := progen.New(progen.Config{Seed: 3, MaxDepth: 7, MaxOps: 10, Addrs: 64})
	for _, det := range []harness.Detector{harness.SFOrder, harness.FOrder} {
		det := det
		b.Run(det.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var tracer sched.Tracer
				var mem func() int
				switch det {
				case harness.SFOrder:
					r := core.NewReach()
					tracer, mem = r, r.MemBytes
				default:
					r := forder.NewReach()
					tracer, mem = r, r.MemBytes
				}
				if _, err := sched.Run(sched.Options{Serial: true, Tracer: tracer}, prog.Main()); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(mem()), "reach-bytes")
				}
			}
		})
	}
}

// BenchmarkReplayScaling (ABL12): offline replay throughput of recorded
// captures as the detection-shard count grows. Each workload is
// recorded once (full online detection with the capture tap attached);
// the capture is then replayed at 1/2/4/8 shards — and at 16 on the
// bigger inputs — with the dag rebuilt on the DePa substrate (frozen
// immutable labels, lock-free queries). Detection work partitions by
// address hash, so entries-max-shard ≈ entries-total/shards certifies
// a balanced partition: the wall-clock curve then tracks available
// cores, machine-independently. The race verdict is checked identical
// at every width (also pinned by TestReplayDeterministicAcrossWorkers).
func BenchmarkReplayScaling(b *testing.B) {
	record := func(bench *workload.Benchmark) *trace.Capture {
		b.Helper()
		raw, err := harness.RecordCapture(bench, harness.DefaultWorkers())
		if err != nil {
			b.Fatal(err)
		}
		c, err := trace.Load(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	type entry struct {
		label   string
		bench   *workload.Benchmark
		workers []int
	}
	entries := []entry{
		{"mm", workload.MM(64, 16), []int{1, 2, 4, 8}},
		{"sort", workload.Sort(20_000, 512), []int{1, 2, 4, 8}},
		{"sw", workload.SW(128, 16), []int{1, 2, 4, 8}},
		{"ksweep", workload.KSweep(256, 2000), []int{1, 2, 4, 8}},
		// Bigger inputs, wider sweep: enough per-location work that 16
		// shards still amortize their spawn cost.
		{"mm-large", workload.MM(128, 16), []int{1, 16}},
		{"sort-large", workload.Sort(100_000, 2048), []int{1, 16}},
	}
	for _, e := range entries {
		c := record(e.bench)
		for _, w := range e.workers {
			w := w
			b.Run(fmt.Sprintf("%s/w%d", e.label, w), func(b *testing.B) {
				var last *replay.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := replay.Run(c, replay.Options{Workers: w, Reach: core.SubstrateDePa})
					if err != nil {
						b.Fatal(err)
					}
					if res.RaceCount != 0 {
						b.Fatalf("benchmark must replay race-free, got %d races", res.RaceCount)
					}
					last = res
				}
				b.ReportMetric(float64(last.Entries), "entries-total")
				b.ReportMetric(float64(last.MaxShardEntries), "entries-max-shard")
				b.ReportMetric(float64(last.Queries), "queries")
			})
		}
	}
}

// BenchmarkReplayRebuild (ABL13): the replay rebuild itself — the phase
// the parallel label-table path and the streaming pipeline attack — on
// mm, sort and ksweep captures at 1/2/4/8 rebuild workers, barriered
// and streamed. The barriered cells replay a pre-loaded capture with
// RebuildWorkers=w on the DePa substrate (w=1 is the serial event-order
// rebuild baseline; w>1 the precomputed-table path) and report the
// rebuild wall plus the balance counters; the streamed cells replay the
// raw bytes through the bounded pipeline at w detection shards (the
// rebuild is the pipeline's producer stage, so RebuildWorkers does not
// apply) and report the loader's structure share and the in-flight
// peak. Detection shards stay fixed at 2 in the barriered cells so the
// sweep isolates rebuild cost.
func BenchmarkReplayRebuild(b *testing.B) {
	entries := []struct {
		label string
		bench *workload.Benchmark
	}{
		{"mm", workload.MM(64, 16)},
		{"sort", workload.Sort(20_000, 512)},
		{"ksweep", workload.KSweep(256, 2000)},
	}
	for _, e := range entries {
		raw, err := harness.RecordCapture(e.bench, harness.DefaultWorkers())
		if err != nil {
			b.Fatal(err)
		}
		c, err := trace.Load(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 8} {
			w := w
			b.Run(fmt.Sprintf("%s/barrier/rw%d", e.label, w), func(b *testing.B) {
				var last *replay.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := replay.Run(c, replay.Options{
						Workers: 2, RebuildWorkers: w, Reach: core.SubstrateDePa,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(last.Rebuild.Nanoseconds()), "rebuild-ns")
				b.ReportMetric(float64(last.Strands), "strands")
				if last.RebuildParallel {
					b.ReportMetric(float64(last.RebuildWork), "rebuild-work")
					b.ReportMetric(float64(last.RebuildMaxSegment), "rebuild-max-segment")
				}
			})
			b.Run(fmt.Sprintf("%s/stream/w%d", e.label, w), func(b *testing.B) {
				var last *replay.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := replay.RunStream(bytes.NewReader(raw), replay.Options{
						Workers: w, Reach: core.SubstrateDePa,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(last.Rebuild.Nanoseconds()), "rebuild-ns")
				b.ReportMetric(float64(last.StreamPeakBlocks), "peak-blocks")
				b.ReportMetric(float64(last.StreamPeakBytes), "peak-bytes")
			})
		}
	}
}

// BenchmarkCheckStructure isolates the cost of Config.CheckStructure on
// a future-dense chain (one create+get per link, no detector): "off" is
// the default engine — the checked-mode plumbing must cost nothing there
// — and "on" pays the per-operation site capture and visibility-horizon
// updates of the runtime structured-futures checker.
func BenchmarkCheckStructure(b *testing.B) {
	const links = 256
	chain := func(t *sforder.Task) {
		prev := t.Create(func(*sforder.Task) any { return 0 })
		for f := 1; f < links; f++ {
			p := prev
			prev = t.Create(func(c *sforder.Task) any { return c.Get(p).(int) + 1 })
		}
		if got := t.Get(prev).(int); got != links-1 {
			panic("checkstructure chain: bad value")
		}
	}
	for _, check := range []bool{false, true} {
		name := "off"
		if check {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sforder.Config{Detector: sforder.NoDetector, Serial: true, CheckStructure: check}
				if _, err := sforder.Run(cfg, chain); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

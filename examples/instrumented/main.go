// Command instrumented is the sfinstr walkthrough: a structured-futures
// program that shares a grid between a future body and its creator's
// continuation with NO hand-written Task.Read/Task.Write annotations.
//
// Run it as checked in and the detector is blind — it prints races=0
// even though cells[0] is written by both strands. Then let sfinstr
// inject the shadow calls and run the instrumented copy:
//
//	go run ./examples/instrumented                    # races=0 (blind)
//	go run ./cmd/sfinstr -o /tmp/sfi ./examples/instrumented
//	cd /tmp/sfi && go run ./examples/instrumented     # races>=1
//
// The disjoint write to cells[1] stays race-free in both runs: the
// instrumented detector distinguishes the two addresses, so the extra
// annotations add no false positives.
package main

import (
	"fmt"

	"sforder"
)

type grid struct {
	cells []int
}

func main() {
	g := &grid{cells: make([]int, 4)}
	res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Serial: true},
		func(t *sforder.Task) {
			h := t.Create(func(c *sforder.Task) any {
				g.cells[0] = 1 // races with the continuation's cells[0] write
				return nil
			})
			g.cells[1] = 2 // disjoint from the future body: never a race
			g.cells[0] = 3 // unordered with the future body's write: a race
			t.Get(h)

			// After Get the future body happens-before this strand, so
			// these reads are ordered and race-free even when annotated.
			sum := 0
			for i := range g.cells {
				sum += g.cells[i]
			}
			g.cells[3] = sum
		})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Machine-readable: the harness agreement test keys on this line.
	fmt.Printf("instrumented races=%d (cells=%v)\n", res.RaceCount, g.cells)
}

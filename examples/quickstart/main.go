// Quickstart: detect a determinacy race between a future task and its
// creator's continuation in ~30 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"sforder"
)

func main() {
	// The future body and the continuation both write balance (shadow
	// address 0) with no ordering between them: a determinacy race.
	res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder}, func(t *sforder.Task) {
		balance := 100

		h := t.Create(func(c *sforder.Task) any {
			c.Write(0) // annotate: this strand writes `balance`
			balance -= 30
			return balance
		})

		t.Write(0) // annotate: so does the continuation — race!
		balance += 10

		final := sforder.GetTyped[int](t, h)
		fmt.Println("final balance (nondeterministic!):", final)
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("detected %d race(s):\n", res.RaceCount)
	for _, r := range res.Races {
		fmt.Println("  ", r)
	}
	if res.RaceCount == 0 {
		fmt.Println("  (none — unexpected; this program is racy by design)")
	}
}

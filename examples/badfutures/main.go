// Command badfutures is a rogues' gallery of structured-futures
// contract violations (paper §2, §4). Every function here is flagged by
// the static analyzer — run `go run ./cmd/sfvet ./examples/badfutures`
// to see SF001 through SF004 fire — and the runnable ones demonstrate
// what the runtime checked mode (Config.CheckStructure) does with the
// same programs. It is the one package in this module that sfvet is
// supposed to reject, so CI analyzes everything except this directory.
package main

import (
	"fmt"

	"sforder"
)

// doubleGet touches one handle with two Gets (SF001, single-touch).
// Under CheckStructure the second Get is rejected with all three sites
// named.
func doubleGet() {
	_, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Workers: 1, CheckStructure: true},
		func(t *sforder.Task) {
			h := t.Create(func(*sforder.Task) any { return 1 })
			t.Get(h)
			t.Get(h)
		})
	fmt.Println("double get rejected at runtime:", err != nil)
}

// silentSharing writes a captured variable inside a future body and in
// the continuation without Task.Read/Write annotations (SF003). The
// program runs fine — but the detector reports zero races even though
// the sharing is real. That blindness is exactly what SF003 warns
// about.
func silentSharing() {
	x := 0
	res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Serial: true},
		func(t *sforder.Task) {
			h := t.Create(func(c *sforder.Task) any {
				x = 1
				return nil
			})
			x = 2
			t.Get(h)
		})
	if err != nil {
		fmt.Println("silent sharing error:", err)
		return
	}
	// The machine-readable line is what the sfinstr agreement test keys
	// on: uninstrumented this program prints races=0 (the detector is
	// blind, exactly what SF003 warns about); after `sfinstr` injects
	// the shadow calls the same line reports the race.
	fmt.Printf("silentSharing races=%d (x=%d)\n", res.RaceCount, x)
}

// loopCondSharing hides the SF003 sharing inside a loop *condition*:
// the future writes limit, the continuation reads it in a `for` header.
// Loop headers are re-evaluated every iteration, which historically
// left even the instrumented run blind — there was no legal single
// insertion point for the read. sfinstr now rewrites the loop to
// `for { if !cond { break } }` with the read annotated inside, so the
// instrumented run reports the race the uninstrumented run misses.
func loopCondSharing() {
	limit := 3
	n := 0
	res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Serial: true},
		func(t *sforder.Task) {
			h := t.Create(func(c *sforder.Task) any {
				limit = 1
				return nil
			})
			for n < limit {
				n++
			}
			t.Get(h)
		})
	if err != nil {
		fmt.Println("loop-cond sharing error:", err)
		return
	}
	fmt.Printf("loopCondSharing races=%d (n=%d)\n", res.RaceCount, n)
}

// uninstrumentableSharing shares a map between a future body and the
// continuation (SF005): map elements have no address to take, so even
// sfinstr cannot attribute these accesses — the sharing stays invisible
// to the detector in both analysis and instrumented runs.
func uninstrumentableSharing() {
	scores := map[string]int{}
	res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Serial: true},
		func(t *sforder.Task) {
			h := t.Create(func(c *sforder.Task) any {
				scores["hits"] = 1
				return nil
			})
			scores["hits"] = 2
			t.Get(h)
		})
	if err != nil {
		fmt.Println("uninstrumentable sharing error:", err)
		return
	}
	fmt.Printf("uninstrumentableSharing races=%d (len=%d)\n", res.RaceCount, len(scores))
}

type resultBox struct {
	fut *sforder.Future
}

var leaked *sforder.Future

// leakHandle stores handles into a package-level variable and a struct
// field (SF004). Dynamically this particular program is still
// structured — the same task gets both handles — so the checked mode
// accepts it; the warning says the analyzer can no longer prove that.
func leakHandle() {
	var box resultBox
	_, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Workers: 1, CheckStructure: true},
		func(t *sforder.Task) {
			leaked = t.Create(func(*sforder.Task) any { return 1 })
			box.fut = t.Create(func(*sforder.Task) any { return 2 })
			t.Get(leaked)
			t.Get(box.fut)
		})
	fmt.Println("leaked-but-structured handles accepted at runtime:", err == nil)
}

// backwardHandle smuggles a handle through a channel to a future that
// was created before the handle's future existed (SF004 statically;
// get-reachability violation at runtime). The consumer's Get sits
// outside its visibility horizon, so the checked mode rejects it.
func backwardHandle() {
	ch := make(chan *sforder.Future, 1)
	_, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Workers: 1, CheckStructure: true},
		func(t *sforder.Task) {
			t.Create(func(c *sforder.Task) any { return c.Get(<-ch) })
			ch <- t.Create(func(*sforder.Task) any { return 7 })
		})
	fmt.Println("backward handle rejected at runtime:", err != nil)
}

// selfGet captures its own handle inside the closure passed to Create
// (SF002): the Get can only run inside the created task, so no path
// outside the task reaches it. It is never called — unchecked it
// deadlocks — but sfvet flags it without running anything.
func selfGet(t *sforder.Task) {
	var h *sforder.Future
	h = t.Create(func(c *sforder.Task) any {
		return c.Get(h)
	})
	t.Get(h)
}

var _ = selfGet

func main() {
	doubleGet()
	silentSharing()
	loopCondSharing()
	uninstrumentableSharing()
	leakHandle()
	backwardHandle()
}

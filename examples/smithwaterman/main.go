// Smith-Waterman with structured futures: a race-free wavefront of tile
// futures, race-detected while it runs — then the same program with the
// synchronization deliberately broken, showing the detector catching the
// resulting races.
//
//	go run ./examples/smithwaterman [-n 128] [-b 16]
//
// This is the workload the paper's introduction motivates: dynamic
// programming expressed with futures (Singer et al., PPoPP'19) achieves
// better span than fork-join-only implementations, and SF-Order race
// detects it in parallel with constant query overhead.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sforder"
)

var (
	n = flag.Int("n", 128, "sequence length")
	b = flag.Int("b", 16, "tile size (must divide n)")
)

func main() {
	flag.Parse()
	if *n%*b != 0 {
		fmt.Fprintln(os.Stderr, "b must divide n")
		os.Exit(2)
	}

	seqA, seqB := randSeq(*n, 1), randSeq(*n, 2)

	fmt.Printf("Smith-Waterman %dx%d, %dx%d tiles (%d futures)\n",
		*n, *n, *b, *b, (*n / *b)*(*n / *b))

	best, res := align(seqA, seqB, *b, true)
	fmt.Printf("correct version:  best score %d, races %d (want 0)\n", best, res.RaceCount)

	best, res = align(seqA, seqB, *b, false)
	fmt.Printf("broken version:   best score %d, races %d (want >0)\n", best, res.RaceCount)
	for i, r := range res.Races {
		if i == 3 {
			fmt.Println("   ...")
			break
		}
		fmt.Println("  ", r)
	}
}

// align runs the blocked wavefront. When synchronized is false, the last
// diagonal barrier is skipped, so adjacent diagonals race on the shared
// boundary rows/columns.
func align(seqA, seqB []byte, tile int, synchronized bool) (int32, *sforder.Result) {
	n := len(seqA)
	w := n + 1
	h := make([]int32, w*w)
	m := n / tile
	addrH := func(i, j int) uint64 { return uint64(i*w + j) }

	var best int32
	res, err := sforder.Run(sforder.Config{Detector: sforder.SFOrder, Workers: 4}, func(t *sforder.Task) {
		futs := make([][]*sforder.Future, m)
		for i := range futs {
			futs[i] = make([]*sforder.Future, m)
		}
		for d := 0; d < 2*m-1; d++ {
			if d > 0 && synchronized {
				prev := d - 1
				for i := maxInt(0, prev-m+1); i <= minInt(prev, m-1); i++ {
					t.Get(futs[i][prev-i])
				}
			}
			for i := maxInt(0, d-m+1); i <= minInt(d, m-1); i++ {
				ti, tj := i, d-i
				futs[ti][tj] = t.Create(func(c *sforder.Task) any {
					for x := ti*tile + 1; x <= (ti+1)*tile; x++ {
						for y := tj*tile + 1; y <= (tj+1)*tile; y++ {
							sc := int32(-1)
							if seqA[x-1] == seqB[y-1] {
								sc = 2
							}
							c.Read(addrH(x-1, y-1))
							c.Read(addrH(x-1, y))
							c.Read(addrH(x, y-1))
							v := h[(x-1)*w+y-1] + sc
							if u := h[(x-1)*w+y] - 1; u > v {
								v = u
							}
							if l := h[x*w+y-1] - 1; l > v {
								v = l
							}
							if v < 0 {
								v = 0
							}
							c.Write(addrH(x, y))
							h[x*w+y] = v
						}
					}
					return nil
				})
			}
		}
		// Join every outstanding diagonal (in the broken version, the
		// tiles were never joined along the way).
		for d := 2*m - 2; d >= 0; d-- {
			for i := maxInt(0, d-m+1); i <= minInt(d, m-1); i++ {
				if f := futs[i][d-i]; f != nil && !gotten(d, m, synchronized) {
					t.Get(f)
				}
			}
			if synchronized {
				break // only the last diagonal is still pending
			}
		}
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				t.Read(addrH(i, j))
				if v := h[i*w+j]; v > best {
					best = v
				}
			}
		}
	})
	if err != nil {
		panic(err)
	}
	return best, res
}

// gotten reports whether diagonal d's futures were already joined during
// the sweep.
func gotten(d, m int, synchronized bool) bool {
	return synchronized && d < 2*m-2
}

func randSeq(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	const bases = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
